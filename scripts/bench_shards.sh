#!/usr/bin/env sh
# Benchstat-style before/after comparison for the sharded execution path:
# runs BenchmarkFigure4b (write-only max throughput, r7g.16xlarge) for the
# single-workloop arm and the sharded arm, and prints the throughput
# ratio. On runners with >= 4 vCPUs the sharded arm must reach at least
# 1.8x the single-workloop arm (the PR's acceptance bar); on smaller
# runners the ratio is informational — commit-pipelining still helps, but
# the bar is calibrated for real parallelism.
set -eu
cd "$(dirname "$0")/.."

OUT=$(go test -run xxx -bench 'Figure4b/r7g.16xlarge/(MemoryDB|MemoryDB-sharded)$' -benchtime 2x . 2>&1)
echo "$OUT"

# The -N GOMAXPROCS suffix is omitted on single-proc runners.
BASE=$(echo "$OUT" | awk '$1 ~ /\/MemoryDB(-[0-9]+)?$/ {for (i=1;i<NF;i++) if ($(i+1)=="ops/s") print $i}')
SHARDED=$(echo "$OUT" | awk '$1 ~ /\/MemoryDB-sharded(-[0-9]+)?$/ {for (i=1;i<NF;i++) if ($(i+1)=="ops/s") print $i}')
if [ -z "$BASE" ] || [ -z "$SHARDED" ]; then
    echo "bench_shards: could not parse ops/s from benchmark output" >&2
    exit 1
fi

NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case "$NCPU" in ''|*[!0-9]*) NCPU=1;; esac

awk -v base="$BASE" -v sharded="$SHARDED" -v ncpu="$NCPU" 'BEGIN {
    ratio = sharded / base
    printf "Figure4b r7g.16xlarge: single-workloop %.0f ops/s, sharded %.0f ops/s, ratio %.2fx\n", base, sharded, ratio
    if (ncpu >= 4 && ratio < 1.8) {
        printf "bench_shards: FAIL — sharded/single ratio %.2fx < 1.8x on a %d-vCPU runner\n", ratio, ncpu
        exit 1
    }
    if (ncpu < 4) {
        printf "bench_shards: %d vCPU runner — 1.8x bar not enforced (needs >= 4 vCPUs)\n", ncpu
    }
}'
