#!/usr/bin/env sh
# Tier-1 verification gate (same steps as `make check`): vet, build, the
# full test suite, and a race-detector pass over the concurrency-heavy
# packages (core workloop/group commit, tracker, transaction log).
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/tracker/ ./internal/txlog/
