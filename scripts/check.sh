#!/usr/bin/env sh
# Tier-1 verification gate (same steps as `make check`): vet, build, the
# full test suite, and a race-detector pass over the concurrency-heavy
# packages (core workloop/group commit, tracker, transaction log).
set -eux
cd "$(dirname "$0")/.."
go vet ./...
# staticcheck is optional tooling: run it when the runner has it on PATH,
# skip silently otherwise (the container image does not bake it in).
if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; fi
go build ./...
go test ./...
go test -race ./internal/core/ ./internal/tracker/ ./internal/txlog/
# Fixed-seed chaos gate: the fault schedules (AZ outages, rolling
# maintenance, flaky-AZ storm, randomized fault storm) must reproduce at
# two pinned seeds so fault-path regressions are deterministic. Pinned to
# one execution shard — the legacy single-workloop configuration — so the
# schedules don't drift with the runner's GOMAXPROCS; the `shards` gate
# below repeats them at eight.
MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=1 go test -race -run Chaos ./internal/cluster/
MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=2 go test -race -run Chaos ./internal/cluster/
# Fixed-seed crash gate: the deterministic crash-fault schedules (kill /
# restart / zombie resurrection at registered fault sites, torn-snapshot
# fallback, committed-but-unacknowledged writes) must hold linearizability
# and lose zero acknowledged writes at two pinned seeds under the race
# detector.
MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=1 go test -race -run CrashRestart ./internal/cluster/
MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=2 go test -race -run CrashRestart ./internal/cluster/
# Sharded-execution gate (same as `make shards`): the core suite plus the
# chaos and crash schedules must also hold at eight execution shards —
# cross-shard barriers, the shared sequencer, and per-shard group commit
# all under the race detector — and the Figure 4b single-vs-sharded
# comparison must show the sharded arm ahead (1.8x enforced on >= 4-vCPU
# runners).
MEMORYDB_SHARDS=1 go test -race ./internal/core/
MEMORYDB_SHARDS=8 go test -race ./internal/core/
MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=1 go test -race -run Chaos ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=2 go test -race -run Chaos ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=1 go test -race -run CrashRestart ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=2 go test -race -run CrashRestart ./internal/cluster/
sh scripts/bench_shards.sh
# Consistent replica-read gate (same as `make reads`): the replica-read
# fault schedules — failover storm, bounded-staleness partition,
# log-trim rebootstrap — must hold linearizability at two pinned seeds,
# at one and eight execution shards, under the race detector: no stale
# value is ever served as linearizable and bounded-stale serves stay
# within their declared bound. Then the replica-read throughput figure
# must show reads scaling with the replica count while the primary's
# write throughput holds (bars enforced on >= 4-vCPU runners).
MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=1 go test -race -run ReplicaReads ./internal/cluster/
MEMORYDB_SHARDS=1 MEMORYDB_CHAOS_SEED=2 go test -race -run ReplicaReads ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=1 go test -race -run ReplicaReads ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CHAOS_SEED=2 go test -race -run ReplicaReads ./internal/cluster/
sh scripts/bench_reads.sh
# Metrics-overhead guard: with sampling off the instrumented hot path
# must record zero allocations per command (internal/obs) and cost no
# more than 5% of write throughput against a NoObs node (internal/core);
# the Tracing variant repeats the core comparison with distributed-trace
# sampling and the flight recorder enabled and holds the same 5% bar.
MEMORYDB_OBS_GUARD=1 go test -run TestObsOverheadGuard -count=1 ./internal/obs/ ./internal/core/
# Bounded-log soak gate: with the snapshot scheduler and trim coordinator
# running at their normal cadence, sustained write load must never push
# the live transaction log past twice the segment threshold — trimming
# has to keep up, not just happen once.
MEMORYDB_SOAK=1 go test -run TestSoakBoundedLog -count=1 ./internal/cluster/
# Forkless-snapshot gate (same as `make forkless`): the log-tailing
# builder's crash schedules — crash mid-delta, crash mid-compaction,
# corrupt-delta-in-chain fallback, restore from a deep full+delta chain —
# must restore the exact acknowledged state at two pinned seeds, at one
# and eight execution shards, under the race detector, with zero
# trimmed-gap retries and zero restore failures through quarantined
# chains; plus the chain-fallback property test and the builder-vs-trim
# race in the snapshot package.
MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=1 go test -race -run 'SnapshotCrash' ./internal/cluster/
MEMORYDB_SHARDS=1 MEMORYDB_CRASH_SEED=2 go test -race -run 'SnapshotCrash' ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=1 go test -race -run 'SnapshotCrash' ./internal/cluster/
MEMORYDB_SHARDS=8 MEMORYDB_CRASH_SEED=2 go test -race -run 'SnapshotCrash' ./internal/cluster/
go test -race -run 'Builder|ChainFallback' ./internal/snapshot/
