#!/usr/bin/env sh
# Replica-read scaling check: runs the consistent-replica-read figure
# (cmd/memorydb-bench -fig reads) and enforces the PR's acceptance bars
# on runners with >= 4 vCPUs:
#   - read throughput scales with the replica count (replicas=4 must
#     reach at least 2.5x replicas=1 — near-linear minus proof overhead);
#   - offloading reads protects the write path (replicas=1 primary write
#     throughput within 5% of the write-only baseline).
# On smaller runners the numbers are informational: the whole fleet
# shares too few cores for either ratio to be meaningful, exactly like
# the bench_shards 1.8x bar.
set -eu
cd "$(dirname "$0")/.."

OUT=$(go run ./cmd/memorydb-bench -fig reads -duration 1s 2>&1)
echo "$OUT"

field() {
    echo "$OUT" | awk -v label="$1" -v key="$2" '
        $1 == label {
            for (i = 2; i <= NF; i++) {
                n = split($i, kv, "=")
                if (n == 2 && kv[1] == key) print kv[2]
            }
        }'
}

BASE_W=$(field "write-only" "write_ops")
R1_R=$(field "replicas=1" "read_ops")
R1_W=$(field "replicas=1" "write_ops")
R4_R=$(field "replicas=4" "read_ops")
if [ -z "$BASE_W" ] || [ -z "$R1_R" ] || [ -z "$R1_W" ] || [ -z "$R4_R" ]; then
    echo "bench_reads: could not parse figure output" >&2
    exit 1
fi

NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case "$NCPU" in ''|*[!0-9]*) NCPU=1;; esac

awk -v basew="$BASE_W" -v r1r="$R1_R" -v r1w="$R1_W" -v r4r="$R4_R" -v ncpu="$NCPU" 'BEGIN {
    scale = r4r / r1r
    prot = r1w / basew
    printf "replica reads: 1->4 replicas read scaling %.2fx; replicas=1 write throughput %.0f%% of write-only baseline\n", scale, prot * 100
    if (ncpu >= 4) {
        if (scale < 2.5) {
            printf "bench_reads: FAIL — read scaling %.2fx < 2.5x on a %d-vCPU runner\n", scale, ncpu
            exit 1
        }
        if (prot < 0.95) {
            printf "bench_reads: FAIL — replica read offload left primary writes at %.0f%% of baseline (< 95%%) on a %d-vCPU runner\n", prot * 100, ncpu
            exit 1
        }
    } else {
        printf "bench_reads: %d vCPU runner — scaling/write-protection bars not enforced (needs >= 4 vCPUs)\n", ncpu
    }
}'
