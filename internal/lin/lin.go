// Package lin is a linearizability checker in the spirit of Porcupine
// (paper §7.2.2): it takes a concurrent history of client operations and
// decides whether the history is linearizable with respect to a
// sequential model, using the Wing & Gong / Lowe algorithm with
// memoization. MemoryDB's consistency testing framework records
// per-key histories under fault injection and feeds them here.
package lin

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Operation is one client operation with its real-time window.
type Operation struct {
	ClientID int
	Key      string
	Input    Input
	Output   Output
	Call     int64 // invocation time (ns, monotonic)
	Return   int64 // response time (ns, monotonic)
}

// Input describes the operation issued.
type Input struct {
	Kind  string // "get", "set", "incr", ...
	Value string // for writes
}

// Output describes the observed result.
type Output struct {
	Value string // for reads / incr results
	Err   bool   // the operation failed or timed out (outcome unknown)
}

// Model is a sequential specification. State must be encodable to a
// comparable key for memoization.
type Model interface {
	// Init returns the initial state.
	Init() string
	// Step applies (input, output) to state. ok=false means the observed
	// output is impossible from this state.
	Step(state string, in Input, out Output) (newState string, ok bool)
}

// RegisterModel is a read/write register: the sequential model of a
// single Redis string key under GET/SET.
type RegisterModel struct{}

// Init implements Model; "" means unset (GET returns nil/"").
func (RegisterModel) Init() string { return "" }

// Step implements Model.
func (RegisterModel) Step(state string, in Input, out Output) (string, bool) {
	switch in.Kind {
	case "set":
		if out.Err {
			// The write's outcome is unknown: it may or may not have
			// taken effect. Callers encode this ambiguity by allowing
			// both; here we treat an err'd set as having possibly
			// happened, which Check handles by trying both branches via
			// the "maybe" kind.
			return in.Value, true
		}
		return in.Value, true
	case "get":
		if out.Err {
			return state, true // failed read constrains nothing
		}
		return state, out.Value == state
	}
	return state, false
}

// CounterModel models INCR on an integer key (string-encoded).
type CounterModel struct{}

// Init implements Model.
func (CounterModel) Init() string { return "0" }

// Step implements Model.
func (CounterModel) Step(state string, in Input, out Output) (string, bool) {
	switch in.Kind {
	case "incr":
		next := incrString(state)
		if out.Err {
			return next, true
		}
		return next, out.Value == next
	case "get":
		if out.Err {
			return state, true
		}
		return state, out.Value == state
	}
	return state, false
}

func incrString(s string) string {
	n := int64(0)
	for _, c := range s {
		n = n*10 + int64(c-'0')
	}
	n++
	buf := [20]byte{}
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if i == len(buf) {
		i--
		buf[i] = '0'
	}
	return string(buf[i:])
}

// CheckKey decides whether the single-key history ops is linearizable
// under model. Histories are expected to be modest (tens of operations);
// the search is exponential in the worst case but memoized.
func CheckKey(model Model, ops []Operation) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 63 {
		// The search state uses a 64-bit linearized mask, and the WGL
		// search is exponential regardless — callers must keep per-key
		// histories small (the §7.2.2 framework uses short rounds).
		// Returning false would be a false accusation, so fail loudly.
		panic("lin: per-key history exceeds 63 operations; record shorter rounds")
	}
	sorted := append([]Operation(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })

	type memoKey struct {
		mask  uint64
		state string
	}
	seen := make(map[memoKey]bool)

	var dfs func(mask uint64, state string) bool
	dfs = func(mask uint64, state string) bool {
		if mask == (uint64(1)<<n)-1 {
			return true
		}
		mk := memoKey{mask, state}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// minReturn over unlinearized ops bounds which op may go next.
		minReturn := int64(1<<62 - 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && sorted[i].Return < minReturn {
				minReturn = sorted[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			if sorted[i].Call > minReturn {
				continue
			}
			if next, ok := model.Step(state, sorted[i].Input, sorted[i].Output); ok {
				if dfs(mask|(1<<i), next) {
					return true
				}
			}
			// An errored mutation might also have NOT taken effect: try
			// the skip-state branch where the op linearizes as a no-op.
			if sorted[i].Output.Err {
				if dfs(mask|(1<<i), state) {
					return true
				}
			}
		}
		return false
	}
	return dfs(0, model.Init())
}

// Check partitions the history by key and checks each key independently
// (Redis string operations on distinct keys commute). It returns the
// first offending key, if any.
func Check(model Model, history []Operation) (linearizable bool, badKey string) {
	byKey := make(map[string][]Operation)
	for _, op := range history {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !CheckKey(model, byKey[k]) {
			return false, k
		}
	}
	return true, ""
}

// Recorder collects a concurrent history with monotonic timestamps. Safe
// for concurrent use by many client goroutines.
type Recorder struct {
	start time.Time
	mu    sync.Mutex
	ops   []Operation
	seq   atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now()}
}

// Invoke stamps an operation's call time; pass the returned token to
// Complete.
func (r *Recorder) Invoke() int64 {
	return time.Since(r.start).Nanoseconds()
}

// Complete records a finished operation.
func (r *Recorder) Complete(clientID int, key string, in Input, out Output, callAt int64) {
	ret := time.Since(r.start).Nanoseconds()
	r.mu.Lock()
	r.ops = append(r.ops, Operation{
		ClientID: clientID, Key: key, Input: in, Output: out,
		Call: callAt, Return: ret,
	})
	r.mu.Unlock()
}

// History returns the recorded operations.
func (r *Recorder) History() []Operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Operation(nil), r.ops...)
}
