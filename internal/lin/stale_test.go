package lin

import "testing"

func msec(n int64) int64 { return n * 1_000_000 }

func setOp(key, val string, call, ret int64, errd bool) Operation {
	return Operation{
		Key:   key,
		Input: Input{Kind: "set", Value: val},
		Output: Output{
			Err: errd,
		},
		Call:   call,
		Return: ret,
	}
}

func TestBoundedStalenessFreshReadOK(t *testing.T) {
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
		setOp("k", "v1", msec(10), msec(11), false),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "v1", Call: msec(12), Bound: msec(5)},
	}
	if ok, detail := CheckBoundedStaleness(writes, reads); !ok {
		t.Fatalf("fresh read flagged: %s", detail)
	}
}

func TestBoundedStalenessWithinBoundOK(t *testing.T) {
	// v1 acked at t=11ms; reading v0 at t=14ms with a 5ms bound is fine:
	// the allowed horizon is 9ms, before v1's ack.
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
		setOp("k", "v1", msec(10), msec(11), false),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "v0", Call: msec(14), Bound: msec(5)},
	}
	if ok, detail := CheckBoundedStaleness(writes, reads); !ok {
		t.Fatalf("in-bound read flagged: %s", detail)
	}
}

func TestBoundedStalenessViolation(t *testing.T) {
	// v1 acked at t=11ms; reading v0 at t=20ms with a 5ms bound means a
	// write acked 4ms before the horizon was missed.
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
		setOp("k", "v1", msec(10), msec(11), false),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "v0", Call: msec(20), Bound: msec(5)},
	}
	if ok, _ := CheckBoundedStaleness(writes, reads); ok {
		t.Fatal("stale read beyond bound not flagged")
	}
}

func TestBoundedStalenessErroredWriteNeverConvicts(t *testing.T) {
	// v1's outcome is unknown: it may never have committed, so missing it
	// is not evidence of staleness.
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
		setOp("k", "v1", msec(10), msec(11), true),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "v0", Call: msec(100), Bound: msec(5)},
	}
	if ok, detail := CheckBoundedStaleness(writes, reads); !ok {
		t.Fatalf("errored write convicted a read: %s", detail)
	}
}

func TestBoundedStalenessLaterGenerationConvicts(t *testing.T) {
	// Even if the immediate successor's outcome is unknown, an
	// acknowledged later generation still convicts.
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
		setOp("k", "v1", msec(10), msec(11), true),
		setOp("k", "v2", msec(20), msec(21), false),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "v0", Call: msec(40), Bound: msec(5)},
	}
	if ok, _ := CheckBoundedStaleness(writes, reads); ok {
		t.Fatal("read missing an acked later generation not flagged")
	}
}

func TestBoundedStalenessNeverWrittenValue(t *testing.T) {
	writes := []Operation{
		setOp("k", "v0", msec(0), msec(1), false),
	}
	reads := []BoundedRead{
		{Key: "k", Value: "ghost", Call: msec(5), Bound: msec(5)},
	}
	if ok, _ := CheckBoundedStaleness(writes, reads); ok {
		t.Fatal("never-written value not flagged")
	}
}

func TestBoundedStalenessInitialValue(t *testing.T) {
	// Reading "" (generation -1) is convicted once generation 0 is acked
	// beyond the bound, and allowed before that.
	writes := []Operation{
		setOp("k", "v0", msec(10), msec(11), false),
	}
	early := []BoundedRead{{Key: "k", Value: "", Call: msec(12), Bound: msec(5)}}
	if ok, detail := CheckBoundedStaleness(writes, early); !ok {
		t.Fatalf("in-bound initial read flagged: %s", detail)
	}
	late := []BoundedRead{{Key: "k", Value: "", Call: msec(30), Bound: msec(5)}}
	if ok, _ := CheckBoundedStaleness(writes, late); ok {
		t.Fatal("stale initial read not flagged")
	}
	unwritten := []BoundedRead{{Key: "other", Value: "", Call: msec(30), Bound: msec(5)}}
	if ok, detail := CheckBoundedStaleness(writes, unwritten); !ok {
		t.Fatalf("read of unwritten key flagged: %s", detail)
	}
}
