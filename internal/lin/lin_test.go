package lin

import (
	"testing"
)

// op builds an Operation succinctly for hand-written histories.
func op(client int, kind, val, out string, call, ret int64) Operation {
	return Operation{
		ClientID: client,
		Key:      "k",
		Input:    Input{Kind: kind, Value: val},
		Output:   Output{Value: out},
		Call:     call,
		Return:   ret,
	}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	h := []Operation{
		op(1, "set", "a", "", 0, 10),
		op(1, "get", "", "a", 20, 30),
		op(1, "set", "b", "", 40, 50),
		op(1, "get", "", "b", 60, 70),
	}
	if ok, _ := Check(RegisterModel{}, h); !ok {
		t.Fatal("sequential history rejected")
	}
}

func TestStaleReadNotLinearizable(t *testing.T) {
	h := []Operation{
		op(1, "set", "a", "", 0, 10),
		op(1, "set", "b", "", 20, 30),
		// A read strictly after both writes returning the older value.
		op(2, "get", "", "a", 40, 50),
	}
	if ok, key := Check(RegisterModel{}, h); ok {
		t.Fatal("stale read accepted")
	} else if key != "k" {
		t.Fatalf("bad key = %q", key)
	}
}

func TestConcurrentWriteEitherOrderOK(t *testing.T) {
	// Two overlapping writes; a later read may see either.
	base := []Operation{
		op(1, "set", "a", "", 0, 100),
		op(2, "set", "b", "", 0, 100),
	}
	for _, final := range []string{"a", "b"} {
		h := append(append([]Operation(nil), base...), op(3, "get", "", final, 200, 210))
		if ok, _ := Check(RegisterModel{}, h); !ok {
			t.Fatalf("read of %q after concurrent writes rejected", final)
		}
	}
	// But not a value never written.
	h := append(append([]Operation(nil), base...), op(3, "get", "", "c", 200, 210))
	if ok, _ := Check(RegisterModel{}, h); ok {
		t.Fatal("phantom value accepted")
	}
}

func TestReadMustNotTravelBackwards(t *testing.T) {
	// get=b completes before get=a starts, but b was written after a:
	// the second read travels backwards in time.
	h := []Operation{
		op(1, "set", "a", "", 0, 10),
		op(1, "set", "b", "", 20, 30),
		op(2, "get", "", "b", 40, 50),
		op(2, "get", "", "a", 60, 70),
	}
	if ok, _ := Check(RegisterModel{}, h); ok {
		t.Fatal("time-travelling read accepted")
	}
}

func TestConcurrentReadDuringWriteSeesEither(t *testing.T) {
	for _, seen := range []string{"", "a"} {
		h := []Operation{
			op(1, "set", "a", "", 10, 50),
			op(2, "get", "", seen, 20, 40), // overlaps the write
		}
		if ok, _ := Check(RegisterModel{}, h); !ok {
			t.Fatalf("concurrent read seeing %q rejected", seen)
		}
	}
}

func TestErroredWriteMayOrMayNotApply(t *testing.T) {
	failedSet := Operation{
		ClientID: 1, Key: "k",
		Input:  Input{Kind: "set", Value: "x"},
		Output: Output{Err: true},
		Call:   0, Return: 10,
	}
	// Later read sees it (write did happen).
	h1 := []Operation{failedSet, op(2, "get", "", "x", 20, 30)}
	if ok, _ := Check(RegisterModel{}, h1); !ok {
		t.Fatal("ambiguous write (applied) rejected")
	}
	// Later read does not see it (write never happened).
	h2 := []Operation{failedSet, op(2, "get", "", "", 20, 30)}
	if ok, _ := Check(RegisterModel{}, h2); !ok {
		t.Fatal("ambiguous write (not applied) rejected")
	}
}

func TestCounterModel(t *testing.T) {
	h := []Operation{
		{ClientID: 1, Key: "c", Input: Input{Kind: "incr"}, Output: Output{Value: "1"}, Call: 0, Return: 10},
		{ClientID: 2, Key: "c", Input: Input{Kind: "incr"}, Output: Output{Value: "2"}, Call: 20, Return: 30},
		{ClientID: 1, Key: "c", Input: Input{Kind: "get"}, Output: Output{Value: "2"}, Call: 40, Return: 50},
	}
	if ok, _ := Check(CounterModel{}, h); !ok {
		t.Fatal("valid counter history rejected")
	}
	// Duplicate INCR result is impossible sequentially.
	bad := []Operation{
		{ClientID: 1, Key: "c", Input: Input{Kind: "incr"}, Output: Output{Value: "1"}, Call: 0, Return: 10},
		{ClientID: 2, Key: "c", Input: Input{Kind: "incr"}, Output: Output{Value: "1"}, Call: 20, Return: 30},
	}
	if ok, _ := Check(CounterModel{}, bad); ok {
		t.Fatal("duplicate INCR results accepted")
	}
}

func TestCheckPartitionsByKey(t *testing.T) {
	h := []Operation{
		op(1, "set", "a", "", 0, 10),
		{ClientID: 1, Key: "other", Input: Input{Kind: "get"}, Output: Output{Value: ""}, Call: 20, Return: 30},
		op(1, "get", "", "a", 40, 50),
	}
	if ok, _ := Check(RegisterModel{}, h); !ok {
		t.Fatal("independent keys interfered")
	}
}

func TestEmptyHistory(t *testing.T) {
	if ok, _ := Check(RegisterModel{}, nil); !ok {
		t.Fatal("empty history rejected")
	}
}

func TestGeneratorBiasedArguments(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 1, Keys: 3, WriteRatio: 0.5})
	keys := map[string]bool{}
	kinds := map[string]int{}
	for i := 0; i < 500; i++ {
		key, in, argv := g.Next(i)
		keys[key] = true
		kinds[in.Kind]++
		if len(argv) == 0 {
			t.Fatal("empty argv")
		}
	}
	if len(keys) > 3 {
		t.Fatalf("generator used %d keys, want <= 3 (contention bias)", len(keys))
	}
	if kinds["set"] == 0 || kinds["get"] == 0 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	c1 := r.Invoke()
	r.Complete(1, "k", Input{Kind: "set", Value: "v"}, Output{}, c1)
	h := r.History()
	if len(h) != 1 || h[0].Return < h[0].Call {
		t.Fatalf("history = %+v", h)
	}
}
