package lin

import (
	"fmt"
	"math/rand"
)

// Command generation with argument biasing (paper §7.2.2.2): the
// framework generates commands from the engine's command table, biasing
// arguments toward a small key space and edge-case values so concurrent
// histories actually collide.

// GenConfig controls generation.
type GenConfig struct {
	Seed int64
	// Keys is the size of the key space; small values maximize contention.
	Keys int
	// WriteRatio is the fraction of generated operations that mutate.
	WriteRatio float64
}

// Generator produces biased register operations.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
}

// NewGenerator returns a Generator.
func NewGenerator(cfg GenConfig) *Generator {
	if cfg.Keys <= 0 {
		cfg.Keys = 3
	}
	if cfg.WriteRatio == 0 {
		cfg.WriteRatio = 0.5
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// biased edge-case values: empty-ish, huge-ish, numeric boundaries.
var biasedValues = []string{
	"0", "1", "-1", "9223372036854775807", "-9223372036854775808",
	"x", "value", "",
}

// Next returns the next operation to issue: a key, an input, and the
// argv to send.
func (g *Generator) Next(round int) (key string, in Input, argv []string) {
	key = fmt.Sprintf("lin-k%d", g.rng.Intn(g.cfg.Keys))
	if g.rng.Float64() < g.cfg.WriteRatio {
		// Bias values: mostly unique (so the checker can distinguish
		// writes), sometimes edge cases.
		v := fmt.Sprintf("v%d", round)
		if g.rng.Intn(4) == 0 {
			v = biasedValues[g.rng.Intn(len(biasedValues))] + fmt.Sprintf("-%d", round)
		}
		return key, Input{Kind: "set", Value: v}, []string{"SET", key, v}
	}
	return key, Input{Kind: "get"}, []string{"GET", key}
}
