package lin

import (
	"fmt"
	"sort"
)

// BoundedRead is one replica read served from the bounded-staleness rung
// of the read ladder: the replica could not prove linearizable freshness
// but had proven itself caught up within the client's declared bound.
// Such reads do not participate in the linearizability check — they are
// allowed to miss recent writes — but the miss must be bounded: the
// checker convicts any bounded read that failed to observe a write
// acknowledged more than Bound before the read was invoked.
type BoundedRead struct {
	ClientID int
	Key      string
	Value    string // observed value
	Call     int64  // invocation time (ns, same clock as Operation.Call)
	Bound    int64  // declared staleness bound (ns)
}

// CheckBoundedStaleness validates bounded-staleness reads against the
// write history.
//
// Requirements on the history (which the chaos workloads guarantee):
// each key is written by a single sequential writer, and every write to
// a key carries a distinct value. Writes to a key therefore form a
// monotone generation sequence g = 0, 1, 2, ... in issue (Call) order.
//
// The rule: a bounded read of generation g at invocation time C with
// bound B is a violation iff some later generation g' > g was
// acknowledged to its writer at or before C - B. Soundness: the replica
// served the read at local time S >= C with a freshness proof F >= S - B
// >= C - B, and its state includes every write committed before F; a
// write is committed no later than it is acknowledged, so a write acked
// by C - B must be visible. Writes whose outcome is unknown (Err) never
// convict — they may not have committed at all.
//
// Reads of a never-written value are violations outright (the register
// starts at ""; reading "" maps to generation -1).
func CheckBoundedStaleness(writes []Operation, reads []BoundedRead) (ok bool, detail string) {
	byKey := make(map[string][]Operation)
	for _, w := range writes {
		if w.Input.Kind != "set" {
			continue
		}
		byKey[w.Key] = append(byKey[w.Key], w)
	}
	for k := range byKey {
		ws := byKey[k]
		sort.Slice(ws, func(i, j int) bool { return ws[i].Call < ws[j].Call })
		byKey[k] = ws
	}
	// For each key, earliestLaterAck[g] = min ack time over acknowledged
	// writes with generation >= g (1<<62-1 when none). A read of
	// generation g is convicted against earliestLaterAck[g+1].
	type keyIndex struct {
		genOf    map[string]int
		minAckGE []int64
	}
	idx := make(map[string]keyIndex, len(byKey))
	const inf = int64(1<<62 - 1)
	for k, ws := range byKey {
		genOf := make(map[string]int, len(ws))
		for g, w := range ws {
			genOf[w.Input.Value] = g
		}
		minAckGE := make([]int64, len(ws)+1)
		minAckGE[len(ws)] = inf
		for g := len(ws) - 1; g >= 0; g-- {
			minAckGE[g] = minAckGE[g+1]
			if !ws[g].Output.Err && ws[g].Return < minAckGE[g] {
				minAckGE[g] = ws[g].Return
			}
		}
		idx[k] = keyIndex{genOf: genOf, minAckGE: minAckGE}
	}
	for _, r := range reads {
		ki, haveWrites := idx[r.Key]
		gen := -1
		if r.Value != "" {
			if !haveWrites {
				return false, fmt.Sprintf("key %q: bounded read observed %q but key was never written", r.Key, r.Value)
			}
			g, found := ki.genOf[r.Value]
			if !found {
				return false, fmt.Sprintf("key %q: bounded read observed never-written value %q", r.Key, r.Value)
			}
			gen = g
		}
		if !haveWrites {
			continue // read "" on an unwritten key: trivially fresh
		}
		next := gen + 1
		if next > len(ki.minAckGE)-1 {
			continue // read the newest generation: cannot be stale
		}
		if ack := ki.minAckGE[next]; ack <= r.Call-r.Bound {
			return false, fmt.Sprintf(
				"key %q: bounded read (client %d, call %dns, bound %dns) observed generation %d but generation >=%d was acked at %dns, %dns before the allowed horizon",
				r.Key, r.ClientID, r.Call, r.Bound, gen, next, ack, r.Call-r.Bound-ack)
		}
	}
	return true, ""
}
