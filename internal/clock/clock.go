// Package clock abstracts time so that every subsystem can run against
// either the wall clock or a deterministic simulated clock. All MemoryDB
// components take a Clock; tests and the discrete-event experiments
// (Figure 6/7) drive a Sim clock manually.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time surface used across the repository.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// NewReal returns the wall Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a manually advanced clock. Goroutines blocked in Sleep or on an
// After channel are released when Advance moves the clock past their
// deadline. The zero value is not usable; call NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
}

type simWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSim returns a simulated clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past
// now+d.
func (s *Sim) Sleep(d time.Duration) {
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &simWaiter{deadline: s.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- s.now
		return w.ch
	}
	s.waiters = append(s.waiters, w)
	return w.ch
}

// Advance moves the simulated time forward by d, waking every waiter whose
// deadline has passed.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	var remaining []*simWaiter
	var fire []*simWaiter
	for _, w := range s.waiters {
		if !w.deadline.After(now) {
			fire = append(fire, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	s.waiters = remaining
	s.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// PendingWaiters reports how many goroutines are blocked on this clock.
func (s *Sim) PendingWaiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
