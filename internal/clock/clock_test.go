package clock

import (
	"testing"
	"time"
)

func TestRealClockMonotonicish(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("time did not advance")
	}
}

func TestSimNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewSim(start)
	if !c.Now().Equal(start) {
		t.Fatal("start time")
	}
	c.Advance(5 * time.Second)
	if !c.Now().Equal(start.Add(5 * time.Second)) {
		t.Fatal("Advance")
	}
}

func TestSimAfterFiresAtDeadline(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at deadline")
	}
	if c.PendingWaiters() != 0 {
		t.Fatalf("pending waiters = %d", c.PendingWaiters())
	}
}

func TestSimAfterNonPositive(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
}

func TestSimSleepWakesGoroutine(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper registers.
	for c.PendingWaiters() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestSimMultipleWaitersWakeInAnyOrder(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	ch1 := c.After(time.Second)
	ch2 := c.After(2 * time.Second)
	c.Advance(90 * time.Minute)
	<-ch1
	<-ch2
}
