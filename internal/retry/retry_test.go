package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffJitterBoundedAndGrowing(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 8 * time.Millisecond, Seed: 1}
	b := p.New()
	ceil := time.Millisecond
	for i := 0; i < 12; i++ {
		d := b.Next()
		if d < minSleep {
			t.Fatalf("draw %d = %v below the %v floor", i, d, minSleep)
		}
		if d > ceil {
			t.Fatalf("draw %d = %v above the cap %v", i, d, ceil)
		}
		if ceil < 8*time.Millisecond {
			ceil *= 2
		}
	}
	if b.Attempts() != 12 {
		t.Fatalf("Attempts = %d, want 12", b.Attempts())
	}
	if b.Slept() <= 0 {
		t.Fatalf("Slept = %v, want > 0", b.Slept())
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: 16 * time.Millisecond, Seed: 42}
	a, b := p.New(), p.New()
	for i := 0; i < 10; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("draw %d diverged under the same seed: %v vs %v", i, da, db)
		}
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	transientErr := errors.New("transient")
	fatalErr := errors.New("fatal")
	isTransient := func(err error) bool { return errors.Is(err, transientErr) }
	p := Policy{Base: 200 * time.Microsecond, Max: time.Millisecond, Attempts: 5}

	// Succeeds after two transient failures.
	calls := 0
	err := p.Do(context.Background(), isTransient, func() error {
		calls++
		if calls < 3 {
			return transientErr
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil after 3 calls", err, calls)
	}

	// Fatal errors are returned immediately, no retry.
	calls = 0
	err = p.Do(context.Background(), isTransient, func() error {
		calls++
		return fatalErr
	})
	if !errors.Is(err, fatalErr) || calls != 1 {
		t.Fatalf("fatal: err = %v, calls = %d; want 1 call", err, calls)
	}

	// Attempt budget bounds persistent transient failures.
	calls = 0
	err = p.Do(context.Background(), isTransient, func() error {
		calls++
		return transientErr
	})
	if !errors.Is(err, transientErr) || calls != 5 {
		t.Fatalf("exhaustion: err = %v, calls = %d; want 5 calls", err, calls)
	}
}

func TestDoStopsOnCancelledContext(t *testing.T) {
	transientErr := errors.New("transient")
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Policy{Base: 100 * time.Microsecond, Attempts: 100}.Do(ctx,
		func(error) bool { return true },
		func() error {
			calls++
			if calls == 2 {
				cancel()
			}
			return transientErr
		})
	if !errors.Is(err, transientErr) || calls != 2 {
		t.Fatalf("err = %v, calls = %d; want transient after 2 calls", err, calls)
	}
}

func TestSaltSeedDistinct(t *testing.T) {
	if SaltSeed(5) == SaltSeed(5) {
		t.Fatal("SaltSeed must differ across calls with the same base")
	}
}
