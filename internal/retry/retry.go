// Package retry implements the transient-failure retry discipline shared
// by every client of the durable substrates (transaction log, S3): capped
// exponential backoff with full jitter. The paper's availability story
// (§4.1, §4.2) depends on clients absorbing brief service blips — a
// single-AZ outage, a slow quorum, a throttled S3 PUT — instead of
// escalating them into leader churn or failed snapshots. Only *fatal*
// errors (fencing, corrupted state) may bypass this package.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"memorydb/internal/clock"
)

// Policy parameterizes a backoff sequence.
type Policy struct {
	// Base is the cap of the first retry's sleep. Defaults to 1ms.
	Base time.Duration
	// Max caps every individual sleep (the exponential growth plateau).
	// Defaults to 50ms.
	Max time.Duration
	// Attempts bounds Do to this many calls of the operation (the initial
	// call counts). Defaults to 6. Backoff loops driven by Next ignore it
	// (their deadline is external, e.g. a leadership lease).
	Attempts int
	// Clock drives the sleeps. Defaults to the wall clock.
	Clock clock.Clock
	// Seed makes the jitter deterministic for fixed-seed chaos tests.
	// The zero seed is valid (and deterministic too).
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 50 * time.Millisecond
	}
	if p.Attempts <= 0 {
		p.Attempts = 6
	}
	if p.Clock == nil {
		p.Clock = clock.NewReal()
	}
	return p
}

// minSleep is the floor under full jitter so a retry loop always yields
// the CPU instead of busy-spinning on a zero draw.
const minSleep = 100 * time.Microsecond

// Backoff is one in-progress retry sequence. Not safe for concurrent use:
// each retrying operation owns its own Backoff.
type Backoff struct {
	pol     Policy
	rng     *rand.Rand
	attempt int
	slept   time.Duration
}

// New starts a backoff sequence under the policy.
func (p Policy) New() *Backoff {
	p = p.withDefaults()
	return &Backoff{pol: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Next returns the sleep before the next attempt: full jitter over an
// exponentially growing cap, i.e. uniform in (0, min(Max, Base<<attempt)].
func (b *Backoff) Next() time.Duration {
	ceil := b.pol.Base << b.attempt
	if ceil > b.pol.Max || ceil <= 0 { // shift overflow guard
		ceil = b.pol.Max
	}
	b.attempt++
	d := time.Duration(b.rng.Int63n(int64(ceil)))
	if d < minSleep {
		d = minSleep
	}
	b.slept += d
	return d
}

// Sleep blocks for Next() on the policy's clock.
func (b *Backoff) Sleep() { b.pol.Clock.Sleep(b.Next()) }

// Attempts returns how many retry sleeps have been drawn.
func (b *Backoff) Attempts() int { return b.attempt }

// Slept returns the cumulative sleep time drawn so far — the caller's
// measure of time spent in degraded state.
func (b *Backoff) Slept() time.Duration { return b.slept }

// Do runs f, retrying while transient(err) reports the failure is
// retryable, the attempt budget lasts, and ctx is alive. It returns nil on
// the first success, the last error otherwise. Fatal errors (transient
// returns false) are returned immediately.
func (p Policy) Do(ctx context.Context, transient func(error) bool, f func() error) error {
	p = p.withDefaults()
	b := p.New()
	for {
		err := f()
		if err == nil || !transient(err) {
			return err
		}
		if b.Attempts() >= p.Attempts-1 {
			return err
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
		b.Sleep()
	}
}

// seedCounter salts DefaultSeed so concurrently created policies do not
// share jitter phase.
var (
	seedMu      sync.Mutex
	seedCounter int64
)

// SaltSeed derives a distinct deterministic seed from base: repeated calls
// with the same base yield different (but reproducible in order) seeds, so
// a fleet of nodes built from one configured seed does not retry in
// lockstep.
func SaltSeed(base int64) int64 {
	seedMu.Lock()
	defer seedMu.Unlock()
	seedCounter++
	return base*1000003 + seedCounter
}
