// Package netsim provides latency models and fault flags that simulate the
// network between MemoryDB components: the multi-AZ quorum commit of the
// transaction log, cluster-bus gossip, and client links. Partitions and
// latency spikes are injected here so the rest of the system exercises the
// same code paths it would against a real network.
package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyModel produces per-operation latencies.
type LatencyModel interface {
	// Sample returns one latency draw.
	Sample() time.Duration
}

// Zero is a LatencyModel that always returns 0 (for unit tests).
type Zero struct{}

// Sample implements LatencyModel.
func (Zero) Sample() time.Duration { return 0 }

// Fixed always returns the same latency.
type Fixed time.Duration

// Sample implements LatencyModel.
func (f Fixed) Sample() time.Duration { return time.Duration(f) }

// Uniform draws uniformly from [Min, Max]. Safe for concurrent use.
type Uniform struct {
	Min, Max time.Duration
	mu       sync.Mutex
	rng      *rand.Rand
}

// NewUniform returns a Uniform model with a deterministic seed.
func NewUniform(min, max time.Duration, seed int64) *Uniform {
	return &Uniform{Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Sample implements LatencyModel.
func (u *Uniform) Sample() time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	u.mu.Lock()
	d := u.Min + time.Duration(u.rng.Int63n(int64(u.Max-u.Min)))
	u.mu.Unlock()
	return d
}

// LogNormalish approximates a long-tailed latency distribution: a base
// latency plus an exponential tail, which matches observed AZ-to-AZ RTTs
// far better than a uniform draw. Safe for concurrent use.
type LogNormalish struct {
	Base time.Duration // minimum latency
	Mean time.Duration // mean of the additional exponential component
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewLogNormalish returns the model with a deterministic seed.
func NewLogNormalish(base, mean time.Duration, seed int64) *LogNormalish {
	return &LogNormalish{Base: base, Mean: mean, rng: rand.New(rand.NewSource(seed))}
}

// Sample implements LatencyModel.
func (l *LogNormalish) Sample() time.Duration {
	l.mu.Lock()
	x := l.rng.ExpFloat64()
	l.mu.Unlock()
	return l.Base + time.Duration(float64(l.Mean)*x)
}

// Flag is an atomically switchable fault condition (e.g. a partition).
// The zero value is "healthy".
type Flag struct {
	v atomic.Bool
}

// Set raises or clears the fault.
func (f *Flag) Set(on bool) { f.v.Store(on) }

// On reports whether the fault is active.
func (f *Flag) On() bool { return f.v.Load() }

// Prob is a seeded Bernoulli fault gate: each Hit independently fires
// with the configured probability. Used for flaky-link and flaky-AZ
// injection where faults must be probabilistic but reproducible under a
// fixed seed. The zero value never fires. Safe for concurrent use.
type Prob struct {
	mu  sync.Mutex
	p   float64
	rng *rand.Rand
}

// NewProb returns a gate with probability p and a deterministic seed.
func NewProb(p float64, seed int64) *Prob {
	return &Prob{p: p, rng: rand.New(rand.NewSource(seed))}
}

// SetP updates the fault probability (0 disables).
func (f *Prob) SetP(p float64) {
	f.mu.Lock()
	f.p = p
	f.mu.Unlock()
}

// Hit draws once: true means the fault fires.
func (f *Prob) Hit() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.p <= 0 || f.rng == nil {
		return false
	}
	return f.rng.Float64() < f.p
}

// Link models one directional network link: a latency distribution plus a
// partition flag. A partitioned link drops traffic (callers surface an
// error or timeout).
type Link struct {
	Latency     LatencyModel
	Partitioned Flag
}

// NewLink returns a healthy link with the given latency model.
func NewLink(m LatencyModel) *Link {
	if m == nil {
		m = Zero{}
	}
	return &Link{Latency: m}
}
