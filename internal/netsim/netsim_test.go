package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestFixedAndZero(t *testing.T) {
	if (Zero{}).Sample() != 0 {
		t.Fatal("Zero")
	}
	if Fixed(5*time.Millisecond).Sample() != 5*time.Millisecond {
		t.Fatal("Fixed")
	}
}

func TestUniformBounds(t *testing.T) {
	u := NewUniform(time.Millisecond, 5*time.Millisecond, 1)
	for i := 0; i < 1000; i++ {
		d := u.Sample()
		if d < time.Millisecond || d > 5*time.Millisecond {
			t.Fatalf("sample %v out of bounds", d)
		}
	}
	// Degenerate range returns Min.
	u2 := NewUniform(time.Millisecond, time.Millisecond, 1)
	if u2.Sample() != time.Millisecond {
		t.Fatal("degenerate uniform")
	}
}

func TestLogNormalishTail(t *testing.T) {
	l := NewLogNormalish(2*time.Millisecond, time.Millisecond, 1)
	var sum time.Duration
	max := time.Duration(0)
	const n = 10000
	for i := 0; i < n; i++ {
		d := l.Sample()
		if d < 2*time.Millisecond {
			t.Fatalf("sample %v below base", d)
		}
		sum += d
		if d > max {
			max = d
		}
	}
	mean := sum / n
	if mean < 2500*time.Microsecond || mean > 3500*time.Microsecond {
		t.Fatalf("mean = %v, want ~3ms", mean)
	}
	if max < 6*time.Millisecond {
		t.Fatalf("max = %v — exponential tail missing", max)
	}
}

func TestModelsConcurrentSafe(t *testing.T) {
	models := []LatencyModel{
		NewUniform(0, time.Millisecond, 1),
		NewLogNormalish(time.Millisecond, time.Millisecond, 2),
	}
	var wg sync.WaitGroup
	for _, m := range models {
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(m LatencyModel) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					m.Sample()
				}
			}(m)
		}
	}
	wg.Wait()
}

func TestFlagAndLink(t *testing.T) {
	var f Flag
	if f.On() {
		t.Fatal("zero Flag must be off")
	}
	f.Set(true)
	if !f.On() {
		t.Fatal("Set(true)")
	}
	l := NewLink(nil)
	if l.Latency.Sample() != 0 {
		t.Fatal("nil latency must default to Zero")
	}
	l.Partitioned.Set(true)
	if !l.Partitioned.On() {
		t.Fatal("partition flag")
	}
}
