package s3

import (
	"errors"
	"testing"
	"time"

	"memorydb/internal/netsim"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.Put("a/b", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b")
	if err != nil || string(got) != "data" {
		t.Fatalf("Get = %q %v", got, err)
	}
	if err := s.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a/b"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("Get after delete: %v", err)
	}
	// Deleting a missing key is idempotent.
	if err := s.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte("abc"))
	got, _ := s.Get("k")
	got[0] = 'X'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get returned aliased storage")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	data := []byte("abc")
	s.Put("k", data)
	data[0] = 'X'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller's buffer")
	}
}

func TestListPrefixSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"snaps/s1/002", "snaps/s1/001", "snaps/s2/001", "other"} {
		s.Put(k, []byte("x"))
	}
	keys, err := s.List("snaps/s1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "snaps/s1/001" || keys[1] != "snaps/s1/002" {
		t.Fatalf("List = %v", keys)
	}
	all, _ := s.List("")
	if len(all) != 4 {
		t.Fatalf("List(\"\") = %v", all)
	}
}

func TestOutageInjection(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	s.SetUnavailable(true)
	if _, err := s.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Get during outage: %v", err)
	}
	if err := s.Put("k2", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put during outage: %v", err)
	}
	if _, err := s.List(""); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("List during outage: %v", err)
	}
	s.SetUnavailable(false)
	if _, err := s.Get("k"); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := New(WithLatency(netsim.Fixed(5 * time.Millisecond)))
	start := time.Now()
	s.Put("k", []byte("v"))
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("latency not applied: %v", elapsed)
	}
}

func TestSize(t *testing.T) {
	s := New()
	s.Put("k", make([]byte, 123))
	if s.Size("k") != 123 {
		t.Fatalf("Size = %d", s.Size("k"))
	}
	if s.Size("missing") != 0 {
		t.Fatal("Size of missing key")
	}
}
