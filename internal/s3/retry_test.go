package s3

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"memorydb/internal/retry"
)

// flaky fails the first n calls of every operation with ErrUnavailable.
type flaky struct {
	Interface
	failures atomic.Int64
}

func (f *flaky) gate() error {
	if f.failures.Add(-1) >= 0 {
		return ErrUnavailable
	}
	return nil
}

func (f *flaky) Put(key string, data []byte) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.Interface.Put(key, data)
}

func (f *flaky) Get(key string) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.Interface.Get(key)
}

func TestRetryingAbsorbsTransientOutage(t *testing.T) {
	inner := &flaky{Interface: New()}
	inner.failures.Store(3)
	st := WithRetry(inner, retry.Policy{Base: 100 * time.Microsecond, Max: time.Millisecond, Attempts: 6})

	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put through 3 transient failures: %v", err)
	}
	inner.failures.Store(2)
	data, err := st.Get("k")
	if err != nil || string(data) != "v" {
		t.Fatalf("Get through 2 transient failures: %q %v", data, err)
	}
}

func TestRetryingDoesNotRetryNoSuchKey(t *testing.T) {
	calls := 0
	inner := &countingStore{inner: New(), calls: &calls}
	st := WithRetry(inner, retry.Policy{Base: 100 * time.Microsecond, Attempts: 6})
	if _, err := st.Get("missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("err = %v, want ErrNoSuchKey", err)
	}
	if calls != 1 {
		t.Fatalf("Get called %d times for a fatal error, want 1", calls)
	}
}

func TestRetryingGivesUpOnPersistentOutage(t *testing.T) {
	inner := New()
	inner.SetUnavailable(true)
	st := WithRetry(inner, retry.Policy{Base: 100 * time.Microsecond, Max: time.Millisecond, Attempts: 3})
	if err := st.Put("k", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable after exhaustion", err)
	}
}

type countingStore struct {
	inner Interface
	calls *int
}

func (c *countingStore) Put(key string, data []byte) error { return c.inner.Put(key, data) }
func (c *countingStore) Get(key string) ([]byte, error) {
	*c.calls++
	return c.inner.Get(key)
}
func (c *countingStore) Delete(key string) error         { return c.inner.Delete(key) }
func (c *countingStore) List(p string) ([]string, error) { return c.inner.List(p) }
