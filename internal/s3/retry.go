package s3

import (
	"errors"

	"memorydb/internal/retry"
)

// Interface is the object-store surface MemoryDB consumes. *Store
// implements it directly; Retrying wraps any implementation with the
// shared transient-failure backoff so a brief storage blip does not fail
// a snapshot save or restore.
type Interface interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List(prefix string) ([]string, error)
}

// IsTransient reports whether err is a retryable storage condition.
// ErrNoSuchKey is NOT transient: the object genuinely is not there and
// retrying cannot make it appear.
func IsTransient(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// Retrying decorates an Interface with capped-exponential-backoff retries
// of transient failures. Every operation here is idempotent (PUTs are
// whole-object, DELETE is idempotent by S3 semantics), so blind re-issue
// is safe.
type Retrying struct {
	Store  Interface
	Policy retry.Policy
}

// WithRetry wraps st with the given policy (zero Policy = library
// defaults: 6 attempts, 1ms base, 50ms cap).
func WithRetry(st Interface, pol retry.Policy) *Retrying {
	return &Retrying{Store: st, Policy: pol}
}

// Put implements Interface.
func (r *Retrying) Put(key string, data []byte) error {
	return r.Policy.Do(nil, IsTransient, func() error {
		return r.Store.Put(key, data)
	})
}

// Get implements Interface.
func (r *Retrying) Get(key string) ([]byte, error) {
	var data []byte
	err := r.Policy.Do(nil, IsTransient, func() error {
		var e error
		data, e = r.Store.Get(key)
		return e
	})
	return data, err
}

// Delete implements Interface.
func (r *Retrying) Delete(key string) error {
	return r.Policy.Do(nil, IsTransient, func() error {
		return r.Store.Delete(key)
	})
}

// List implements Interface.
func (r *Retrying) List(prefix string) ([]string, error) {
	var keys []string
	err := r.Policy.Do(nil, IsTransient, func() error {
		var e error
		keys, e = r.Store.List(prefix)
		return e
	})
	return keys, err
}
