// Package s3 simulates the Simple Storage Service as MemoryDB uses it: a
// durable object store for snapshots (paper §4.2.1). Objects are immutable
// blobs addressed by key; List supports the prefix scans the snapshot
// scheduler and recovery path rely on. An injectable latency model and
// outage flag let tests exercise slow or unreachable storage.
package s3

import (
	"errors"
	"sort"
	"strings"
	"sync"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
)

// Errors returned by the store.
var (
	ErrNoSuchKey   = errors.New("s3: no such key")
	ErrUnavailable = errors.New("s3: service unavailable")
)

// Store is an in-memory object store.
type Store struct {
	clk     clock.Clock
	latency netsim.LatencyModel
	down    netsim.Flag

	mu      sync.RWMutex
	objects map[string][]byte
}

// Option configures a Store.
type Option func(*Store)

// WithLatency injects a per-operation latency model.
func WithLatency(m netsim.LatencyModel) Option {
	return func(s *Store) { s.latency = m }
}

// WithClock overrides the clock used for latency simulation.
func WithClock(c clock.Clock) Option {
	return func(s *Store) { s.clk = c }
}

// New returns an empty store.
func New(opts ...Option) *Store {
	s := &Store{
		clk:     clock.NewReal(),
		latency: netsim.Zero{},
		objects: make(map[string][]byte),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetUnavailable injects (or clears) a storage outage.
func (s *Store) SetUnavailable(down bool) { s.down.Set(down) }

func (s *Store) simulate() error {
	if s.down.On() {
		return ErrUnavailable
	}
	if d := s.latency.Sample(); d > 0 {
		s.clk.Sleep(d)
	}
	return nil
}

// Put stores data under key, copying the bytes.
func (s *Store) Put(key string, data []byte) error {
	if err := s.simulate(); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.objects[key] = cp
	s.mu.Unlock()
	return nil
}

// Get returns a copy of the object at key.
func (s *Store) Get(key string) ([]byte, error) {
	if err := s.simulate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNoSuchKey
	}
	return append([]byte(nil), data...), nil
}

// Delete removes the object at key (idempotent, like S3).
func (s *Store) Delete(key string) error {
	if err := s.simulate(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// List returns the keys with the given prefix, sorted ascending.
func (s *Store) List(prefix string) ([]string, error) {
	if err := s.simulate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Size returns the stored size of key, or 0 if absent.
func (s *Store) Size(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects[key])
}
