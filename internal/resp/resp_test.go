package resp

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteValue(v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err := NewReader(&buf).ReadValue()
	if err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	return got
}

func TestRoundTripSimpleString(t *testing.T) {
	v := Simple("OK")
	if got := roundTrip(t, v); !got.Equal(v) {
		t.Fatalf("got %v want %v", got, v)
	}
}

func TestRoundTripError(t *testing.T) {
	v := Err("ERR something went wrong")
	got := roundTrip(t, v)
	if !got.IsError() || got.Text() != "ERR something went wrong" {
		t.Fatalf("got %v", got)
	}
}

func TestRoundTripInteger(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 1<<62 - 1, -(1 << 62)} {
		v := Int64(n)
		if got := roundTrip(t, v); got.Int != n {
			t.Fatalf("got %d want %d", got.Int, n)
		}
	}
}

func TestRoundTripBulk(t *testing.T) {
	cases := [][]byte{nil, {}, []byte("hello"), []byte("with\r\nnewlines"), bytes.Repeat([]byte{0}, 1000)}
	for _, b := range cases {
		v := Bulk(b)
		got := roundTrip(t, v)
		if !bytes.Equal(got.Str, b) {
			t.Fatalf("got %q want %q", got.Str, b)
		}
	}
}

func TestRoundTripNullBulk(t *testing.T) {
	got := roundTrip(t, Nil)
	if !got.Null || got.Type != BulkString {
		t.Fatalf("got %#v", got)
	}
}

func TestRoundTripNullArray(t *testing.T) {
	got := roundTrip(t, NullArray())
	if !got.Null || got.Type != Array {
		t.Fatalf("got %#v", got)
	}
}

func TestRoundTripNestedArray(t *testing.T) {
	v := ArrayV(BulkStr("a"), Int64(2), ArrayV(Simple("x"), Nil), BulkArray("p", "q"))
	got := roundTrip(t, v)
	if !got.Equal(v) {
		t.Fatalf("got %v want %v", got, v)
	}
}

func TestRoundTripEmptyArray(t *testing.T) {
	got := roundTrip(t, ArrayV())
	if got.Null || len(got.Array) != 0 || got.Type != Array {
		t.Fatalf("got %#v", got)
	}
}

func TestReadCommandMultibulk(t *testing.T) {
	r := NewReader(strings.NewReader("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	argv, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(argv) != 3 || string(argv[0]) != "SET" || string(argv[2]) != "v" {
		t.Fatalf("argv = %q", argv)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\nSET  k   v\r\n"))
	argv, err := r.ReadCommand()
	if err != nil || len(argv) != 1 || string(argv[0]) != "PING" {
		t.Fatalf("argv=%q err=%v", argv, err)
	}
	argv, err = r.ReadCommand()
	if err != nil || len(argv) != 3 || string(argv[1]) != "k" {
		t.Fatalf("argv=%q err=%v", argv, err)
	}
}

func TestReadCommandRejectsBadLength(t *testing.T) {
	for _, in := range []string{
		"*-2\r\n",
		"*1\r\n$-5\r\n",
		"*1\r\n$3\r\nab\r\n", // short bulk
		"*1\r\n:5\r\n",       // non-bulk element
	} {
		r := NewReader(strings.NewReader(in))
		if _, err := r.ReadCommand(); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestReaderRejectsMissingCRLF(t *testing.T) {
	r := NewReader(strings.NewReader("$3\r\nabcXX"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("expected error for missing CRLF terminator")
	}
}

func TestReaderRejectsUnknownType(t *testing.T) {
	r := NewReader(strings.NewReader("!3\r\nabc\r\n"))
	if _, err := r.ReadValue(); err == nil {
		t.Fatal("expected protocol error")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.ReadValue(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestEncodeCommandMatchesWriter(t *testing.T) {
	argv := [][]byte{[]byte("HSET"), []byte("key"), []byte("f"), []byte("value with spaces")}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand(argv...); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := EncodeCommand(argv...); !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("EncodeCommand = %q, writer = %q", got, buf.Bytes())
	}
}

func TestEncodeCommandRoundTripQuick(t *testing.T) {
	f := func(args [][]byte) bool {
		if len(args) == 0 {
			args = [][]byte{[]byte("X")}
		}
		enc := EncodeCommand(args...)
		r := NewReader(bytes.NewReader(enc))
		got, err := r.ReadCommand()
		if err != nil || len(got) != len(args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(got[i], args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueRoundTripQuick(t *testing.T) {
	f := func(s []byte, n int64) bool {
		v := ArrayV(Bulk(s), Int64(n), Nil)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.WriteValue(v) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadValue()
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Simple("OK"), "+OK"},
		{Int64(7), ":7"},
		{Nil, "(nil)"},
		{BulkStr("x"), `"x"`},
		{ArrayV(Int64(1), Int64(2)), "[:1 :2]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
