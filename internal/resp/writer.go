package resp

import (
	"bufio"
	"io"
	"strconv"
)

// Writer encodes RESP values onto a stream with internal buffering; callers
// must Flush to push bytes to the underlying writer.
type Writer struct {
	bw *bufio.Writer
	// scratch assembles small frames (type byte + integer + CRLF) so each
	// header costs one buffered Write instead of three; it is reused across
	// calls to keep the per-reply hot path allocation-free.
	scratch []byte
}

// NewWriter wraps w in a RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// WriteValue encodes v.
func (w *Writer) WriteValue(v Value) error {
	switch v.Type {
	case SimpleString, Error:
		if err := w.bw.WriteByte(byte(v.Type)); err != nil {
			return err
		}
		if _, err := w.bw.Write(v.Str); err != nil {
			return err
		}
		return w.crlf()
	case Integer:
		return w.writeHeader(':', v.Int)
	case BulkString:
		if v.Null {
			_, err := w.bw.WriteString("$-1\r\n")
			return err
		}
		if err := w.writeHeader('$', int64(len(v.Str))); err != nil {
			return err
		}
		if _, err := w.bw.Write(v.Str); err != nil {
			return err
		}
		return w.crlf()
	case Array:
		if v.Null {
			_, err := w.bw.WriteString("*-1\r\n")
			return err
		}
		if err := w.writeHeader('*', int64(len(v.Array))); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := w.WriteValue(e); err != nil {
				return err
			}
		}
		return nil
	}
	return ErrProtocol
}

// WriteCommand encodes argv as an array of bulk strings (the client →
// server command format, also used in the replication stream).
func (w *Writer) WriteCommand(argv ...[]byte) error {
	if err := w.writeHeader('*', int64(len(argv))); err != nil {
		return err
	}
	for _, a := range argv {
		if err := w.writeHeader('$', int64(len(a))); err != nil {
			return err
		}
		if _, err := w.bw.Write(a); err != nil {
			return err
		}
		if err := w.crlf(); err != nil {
			return err
		}
	}
	return nil
}

// WriteCommandStrings is WriteCommand over string arguments.
func (w *Writer) WriteCommandStrings(argv ...string) error {
	bs := make([][]byte, len(argv))
	for i, s := range argv {
		bs[i] = []byte(s)
	}
	return w.WriteCommand(bs...)
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered reports the number of bytes waiting to be flushed.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

func (w *Writer) crlf() error {
	_, err := w.bw.WriteString("\r\n")
	return err
}

// writeHeader emits a one-line frame header — the type byte, a decimal
// integer, and CRLF — as a single buffered Write, formatting the integer
// with strconv.AppendInt into the writer's reusable scratch buffer.
func (w *Writer) writeHeader(prefix byte, n int64) error {
	w.scratch = append(w.scratch[:0], prefix)
	w.scratch = strconv.AppendInt(w.scratch, n, 10)
	w.scratch = append(w.scratch, '\r', '\n')
	_, err := w.bw.Write(w.scratch)
	return err
}

// EncodeCommand renders argv in RESP command format into a fresh byte
// slice. Used for replication records, AOF, and snapshots.
func EncodeCommand(argv ...[]byte) []byte {
	size := 1 + intLen(int64(len(argv))) + 2
	for _, a := range argv {
		size += 1 + intLen(int64(len(a))) + 2 + len(a) + 2
	}
	out := make([]byte, 0, size)
	out = append(out, '*')
	out = strconv.AppendInt(out, int64(len(argv)), 10)
	out = append(out, '\r', '\n')
	for _, a := range argv {
		out = append(out, '$')
		out = strconv.AppendInt(out, int64(len(a)), 10)
		out = append(out, '\r', '\n')
		out = append(out, a...)
		out = append(out, '\r', '\n')
	}
	return out
}

// EncodeCommandStrings is EncodeCommand over strings.
func EncodeCommandStrings(argv ...string) []byte {
	bs := make([][]byte, len(argv))
	for i, s := range argv {
		bs[i] = []byte(s)
	}
	return EncodeCommand(bs...)
}

func intLen(n int64) int {
	if n == 0 {
		return 1
	}
	l := 0
	if n < 0 {
		l = 1
		n = -n
	}
	for n > 0 {
		l++
		n /= 10
	}
	return l
}
