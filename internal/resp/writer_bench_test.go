package resp

import (
	"io"
	"testing"
)

// BenchmarkWriteValue measures the per-reply encoding hot path: the server
// calls WriteValue once per command response, so it must stay
// allocation-free.
func BenchmarkWriteValue(b *testing.B) {
	cases := []struct {
		name string
		v    Value
	}{
		{"simple", OK},
		{"int", Int64(123456789)},
		{"bulk", BulkStr("hello-world-value")},
		{"array", ArrayV(BulkStr("a"), BulkStr("bb"), Int64(42))},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w := NewWriter(io.Discard)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.WriteValue(c.v); err != nil {
					b.Fatal(err)
				}
				if w.Buffered() > 32<<10 {
					w.Flush()
				}
			}
		})
	}
}

// BenchmarkWriteCommand measures the replication/client command encoder.
func BenchmarkWriteCommand(b *testing.B) {
	w := NewWriter(io.Discard)
	argv := [][]byte{[]byte("SET"), []byte("key:123456"), []byte("some-moderate-value")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteCommand(argv...); err != nil {
			b.Fatal(err)
		}
		if w.Buffered() > 32<<10 {
			w.Flush()
		}
	}
}
