package resp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// MaxBulkLen caps a single bulk string (512 MB, like Redis proto-max-bulk-len).
const MaxBulkLen = 512 << 20

// MaxArrayLen caps a single array (defensive bound).
const MaxArrayLen = 1 << 20

// Reader decodes RESP values from a stream. It also accepts the inline
// command format ("PING\r\n") that redis-cli style tools emit.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// ReadValue decodes the next RESP value.
func (r *Reader) ReadValue() (Value, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Type(t) {
	case SimpleString, Error:
		line, err := r.readLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Type(t), Str: line}, nil
	case Integer:
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: Integer, Int: n}, nil
	case BulkString:
		return r.readBulk()
	case Array:
		return r.readArray()
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, t)
	}
}

// ReadCommand decodes the next client command: either a RESP array of bulk
// strings or an inline command line. It returns the arguments as byte
// slices (argv[0] is the command name).
func (r *Reader) ReadCommand() ([][]byte, error) {
	t, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if Type(t) != Array {
		// Inline command: rest of the line, space separated.
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		return splitInline(line), nil
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxArrayLen {
		return nil, fmt.Errorf("%w: bad multibulk length %d", ErrProtocol, n)
	}
	argv := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		tb, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if Type(tb) != BulkString {
			return nil, fmt.Errorf("%w: expected bulk string in command array, got %q", ErrProtocol, tb)
		}
		v, err := r.readBulk()
		if err != nil {
			return nil, err
		}
		if v.Null {
			return nil, fmt.Errorf("%w: null bulk in command", ErrProtocol)
		}
		argv = append(argv, v.Str)
	}
	return argv, nil
}

func splitInline(line []byte) [][]byte {
	var out [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

func (r *Reader) readBulk() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Type: BulkString, Null: true}, nil
	}
	if n < 0 || n > MaxBulkLen {
		return Value{}, fmt.Errorf("%w: bad bulk length %d", ErrProtocol, n)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Value{}, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return Value{}, fmt.Errorf("%w: bulk not CRLF terminated", ErrProtocol)
	}
	return Value{Type: BulkString, Str: buf[:n]}, nil
}

func (r *Reader) readArray() (Value, error) {
	n, err := r.readInt()
	if err != nil {
		return Value{}, err
	}
	if n == -1 {
		return Value{Type: Array, Null: true}, nil
	}
	if n < 0 || n > MaxArrayLen {
		return Value{}, fmt.Errorf("%w: bad array length %d", ErrProtocol, n)
	}
	vs := make([]Value, 0, n)
	for i := int64(0); i < n; i++ {
		v, err := r.ReadValue()
		if err != nil {
			return Value{}, err
		}
		vs = append(vs, v)
	}
	return Value{Type: Array, Array: vs}, nil
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF terminated", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(string(line), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
	}
	return n, nil
}
