// Package resp implements the Redis Serialization Protocol (RESP2) used on
// the wire between clients and servers and inside the replication stream.
// It provides a value model, a streaming Reader, and a buffered Writer.
package resp

import (
	"errors"
	"fmt"
	"strconv"
)

// Type identifies the kind of a RESP value.
type Type byte

// RESP2 value kinds.
const (
	SimpleString Type = '+'
	Error        Type = '-'
	Integer      Type = ':'
	BulkString   Type = '$'
	Array        Type = '*'
)

// Value is a decoded RESP value. Bulk strings and simple strings both carry
// their bytes in Str; Null distinguishes the RESP null bulk/array.
type Value struct {
	Type  Type
	Str   []byte  // SimpleString, Error, BulkString payload
	Int   int64   // Integer payload
	Array []Value // Array elements
	Null  bool    // null bulk string ($-1) or null array (*-1)
}

// Common reusable values.
var (
	OK     = Value{Type: SimpleString, Str: []byte("OK")}
	Pong   = Value{Type: SimpleString, Str: []byte("PONG")}
	Nil    = Value{Type: BulkString, Null: true}
	Queued = Value{Type: SimpleString, Str: []byte("QUEUED")}
)

// Simple returns a simple-string value.
func Simple(s string) Value { return Value{Type: SimpleString, Str: []byte(s)} }

// Err returns an error value with the given message (including any prefix
// like "ERR" or "MOVED").
func Err(msg string) Value { return Value{Type: Error, Str: []byte(msg)} }

// Errf returns a formatted error value.
func Errf(format string, args ...any) Value { return Err(fmt.Sprintf(format, args...)) }

// Int64 returns an integer value.
func Int64(n int64) Value { return Value{Type: Integer, Int: n} }

// Bulk returns a bulk-string value holding b. The slice is retained.
func Bulk(b []byte) Value { return Value{Type: BulkString, Str: b} }

// BulkString2 returns a bulk-string value holding s.
func BulkStr(s string) Value { return Value{Type: BulkString, Str: []byte(s)} }

// ArrayV returns an array value over vs.
func ArrayV(vs ...Value) Value { return Value{Type: Array, Array: vs} }

// NullArray is the RESP null array (*-1).
func NullArray() Value { return Value{Type: Array, Null: true} }

// BulkArray builds an array of bulk strings from ss.
func BulkArray(ss ...string) Value {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = BulkStr(s)
	}
	return ArrayV(vs...)
}

// IsError reports whether v is a RESP error.
func (v Value) IsError() bool { return v.Type == Error }

// Text returns the payload of a string-like value as a Go string.
func (v Value) Text() string { return string(v.Str) }

// String renders v for debugging (not wire format).
func (v Value) String() string {
	switch v.Type {
	case SimpleString:
		return "+" + string(v.Str)
	case Error:
		return "-" + string(v.Str)
	case Integer:
		return ":" + strconv.FormatInt(v.Int, 10)
	case BulkString:
		if v.Null {
			return "(nil)"
		}
		return strconv.Quote(string(v.Str))
	case Array:
		if v.Null {
			return "(nil array)"
		}
		s := "["
		for i, e := range v.Array {
			if i > 0 {
				s += " "
			}
			s += e.String()
		}
		return s + "]"
	}
	return "(?)"
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type || v.Null != o.Null || v.Int != o.Int {
		return false
	}
	if string(v.Str) != string(o.Str) {
		return false
	}
	if len(v.Array) != len(o.Array) {
		return false
	}
	for i := range v.Array {
		if !v.Array[i].Equal(o.Array[i]) {
			return false
		}
	}
	return true
}

// ErrProtocol is returned by the Reader on malformed input.
var ErrProtocol = errors.New("resp: protocol error")
