package election

import (
	"testing"
	"time"

	"memorydb/internal/clock"
)

func TestSkewedClockOffsetAndDrift(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	// Slow clock: 200ms behind and running at half speed.
	skew := NewSkewedClock(sim, -200*time.Millisecond, 0.5)
	if got := skew.Now().Sub(sim.Now()); got != -200*time.Millisecond {
		t.Fatalf("initial offset = %v", got)
	}
	sim.Advance(time.Second)
	// One real second elapsed; the slow clock saw only 500ms of it.
	want := time.Unix(0, 0).Add(-200*time.Millisecond + 500*time.Millisecond)
	if !skew.Now().Equal(want) {
		t.Fatalf("skewed now = %v, want %v", skew.Now(), want)
	}
	// Sleeping 100ms of skewed time costs 200ms of real time.
	if d := skew.scale(100 * time.Millisecond); d != 200*time.Millisecond {
		t.Fatalf("scaled sleep = %v", d)
	}
	// A fast clock shortens sleeps instead.
	fast := NewSkewedClock(sim, 0, 2.0)
	if d := fast.scale(100 * time.Millisecond); d != 50*time.Millisecond {
		t.Fatalf("fast scaled sleep = %v", d)
	}
}

func TestSeededSkewDeterministic(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	a := NewSeededSkew(sim, 42, 500*time.Millisecond, 0.5)
	b := NewSeededSkew(sim, 42, 500*time.Millisecond, 0.5)
	if a.Offset() != b.Offset() || a.Rate() != b.Rate() {
		t.Fatalf("same seed drew different skews: (%v, %v) vs (%v, %v)",
			a.Offset(), a.Rate(), b.Offset(), b.Rate())
	}
	c := NewSeededSkew(sim, 43, 500*time.Millisecond, 0.5)
	if a.Offset() == c.Offset() && a.Rate() == c.Rate() {
		t.Fatal("different seeds drew identical skew")
	}
	if c.Offset() < -500*time.Millisecond || c.Offset() > 500*time.Millisecond {
		t.Fatalf("offset %v outside bound", c.Offset())
	}
	if c.Rate() < 0.5 || c.Rate() > 1.5 {
		t.Fatalf("rate %v outside bound", c.Rate())
	}
}

// A primary on a slow clock believes its lease lives twice as long as the
// honest observers do. The lease abstraction itself cannot save us — this
// test documents that the window exists (lease still "valid" on the slow
// clock after the honest backoff elapsed), which is exactly why commit
// fencing, not clocks, is the safety mechanism (§4.1). The core-level
// TestSkewedPrimaryIsFenced proves the fencing half.
func TestSkewedLeaseOutlivesHonestBackoff(t *testing.T) {
	sim := clock.NewSim(time.Unix(0, 0))
	slow := NewSkewedClock(sim, 0, 0.5)
	c := cfg(slow, "skewed")
	lease := NewLease(c, 1)
	honest := NewObserver(cfg(sim, "honest"))
	sim.Advance(131 * time.Millisecond)
	if !honest.CanCampaign() {
		t.Fatal("honest backoff should have elapsed")
	}
	if !lease.Valid() {
		t.Fatal("slow-clock lease should still look valid — that is the hazard")
	}
}
