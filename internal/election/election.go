// Package election implements MemoryDB's leader election atop the
// transaction log (paper §4.1). Leadership is acquired by appending a
// leadership entry with the conditional-append API: only a replica that
// has observed the latest committed entry can name the current tail, so
// only fully caught-up replicas can win (consistent failover). Leases
// appended to the log keep exactly one primary active at a time (leader
// singularity): replicas back off for strictly longer than the lease
// duration after observing a renewal, and a primary that cannot renew
// self-demotes at lease expiry.
package election

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/txlog"
)

// Role is a node's current role within its shard.
type Role int32

// Roles.
const (
	RoleReplica Role = iota
	RolePrimary
	RoleDemoted
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	case RoleDemoted:
		return "demoted"
	}
	return "unknown"
}

// Claim is the payload of an EntryLeadership record.
type Claim struct {
	NodeID string `json:"node"`
	Epoch  uint64 `json:"epoch"`
	// LeaseMs is the lease duration granted by this claim.
	LeaseMs int64 `json:"lease_ms"`
}

// Renewal is the payload of an EntryLease record (heartbeat + extension).
type Renewal struct {
	NodeID  string `json:"node"`
	Epoch   uint64 `json:"epoch"`
	LeaseMs int64  `json:"lease_ms"`
}

// EncodeClaim serializes a leadership claim.
func EncodeClaim(c Claim) []byte {
	b, _ := json.Marshal(c)
	return b
}

// DecodeClaim parses a leadership claim payload.
func DecodeClaim(b []byte) (Claim, error) {
	var c Claim
	if err := json.Unmarshal(b, &c); err != nil {
		return Claim{}, fmt.Errorf("election: bad claim payload: %w", err)
	}
	return c, nil
}

// EncodeRenewal serializes a lease renewal.
func EncodeRenewal(r Renewal) []byte {
	b, _ := json.Marshal(r)
	return b
}

// DecodeRenewal parses a lease renewal payload.
func DecodeRenewal(b []byte) (Renewal, error) {
	var r Renewal
	if err := json.Unmarshal(b, &r); err != nil {
		return Renewal{}, fmt.Errorf("election: bad renewal payload: %w", err)
	}
	return r, nil
}

// Config holds the lease timing parameters. Backoff must be strictly
// greater than Lease: a replica refrains from campaigning for Backoff
// after each observed renewal, while the primary self-demotes once its
// lease (Lease after the last successful renewal) expires — so the old
// primary is always silent before a new one can be elected.
type Config struct {
	NodeID  string
	Lease   time.Duration
	Backoff time.Duration
	// RenewEvery is how often the primary appends renewals; must be
	// comfortably below Lease.
	RenewEvery time.Duration
	Clock      clock.Clock
}

// Validate checks the safety constraint between lease and backoff.
func (c Config) Validate() error {
	if c.Backoff <= c.Lease {
		return fmt.Errorf("election: backoff (%v) must be strictly greater than lease (%v)", c.Backoff, c.Lease)
	}
	if c.RenewEvery >= c.Lease {
		return fmt.Errorf("election: renew interval (%v) must be below lease (%v)", c.RenewEvery, c.Lease)
	}
	return nil
}

// Observer is the replica-side lease state machine: it watches lease and
// leadership entries streaming from the log and answers "may I campaign?".
type Observer struct {
	cfg          Config
	lastRenewal  time.Time
	everObserved bool
}

// NewObserver returns an observer that, having seen nothing, starts its
// backoff window at construction time (a fresh replica must not instantly
// campaign against a healthy primary it hasn't heard from yet).
func NewObserver(cfg Config) *Observer {
	return &Observer{cfg: cfg, lastRenewal: cfg.Clock.Now()}
}

// ObserveRenewal records a lease renewal or leadership claim seen in the
// log at the observer's local clock.
func (o *Observer) ObserveRenewal() {
	o.lastRenewal = o.cfg.Clock.Now()
	o.everObserved = true
}

// CanCampaign reports whether the backoff window since the last observed
// renewal has fully elapsed.
func (o *Observer) CanCampaign() bool {
	return o.cfg.Clock.Now().Sub(o.lastRenewal) > o.cfg.Backoff
}

// Lease is the primary-side state: the wall-clock deadline until which
// this node may serve reads and writes. Safe for concurrent use (the
// workloop renews while the primary loop validates).
type Lease struct {
	cfg   Config
	epoch uint64

	mu        sync.Mutex
	expiresAt time.Time
}

// NewLease returns the lease state granted by winning epoch at now.
func NewLease(cfg Config, epoch uint64) *Lease {
	return &Lease{cfg: cfg, epoch: epoch, expiresAt: cfg.Clock.Now().Add(cfg.Lease)}
}

// Epoch returns the leadership epoch this lease belongs to.
func (l *Lease) Epoch() uint64 { return l.epoch }

// Renewed extends the lease after a successful renewal append. The
// extension is measured from the time the renewal was *issued*, not
// acknowledged, so clock skew on commit latency cannot overextend it;
// issuedAt is when the primary created the renewal entry.
func (l *Lease) Renewed(issuedAt time.Time) {
	exp := issuedAt.Add(l.cfg.Lease)
	l.mu.Lock()
	if exp.After(l.expiresAt) {
		l.expiresAt = exp
	}
	l.mu.Unlock()
}

// Valid reports whether the lease still holds.
func (l *Lease) Valid() bool {
	return l.cfg.Clock.Now().Before(l.ExpiresAt())
}

// ExpiresAt returns the current lease deadline.
func (l *Lease) ExpiresAt() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expiresAt
}

// Campaign attempts to win leadership for cfg.NodeID by appending a
// leadership claim conditioned on observedTail. It returns the new lease
// on success. txlog.ErrConditionFailed means another node appended first
// (or we were not truly caught up) — the caller resumes tailing.
func Campaign(ctx context.Context, log *txlog.Log, cfg Config, observedTail txlog.EntryID) (*Lease, txlog.EntryID, error) {
	epoch := log.CurrentEpoch() + 1
	claim := Claim{NodeID: cfg.NodeID, Epoch: epoch, LeaseMs: cfg.Lease.Milliseconds()}
	issued := cfg.Clock.Now()
	id, err := log.Append(ctx, observedTail, txlog.Entry{
		Type:    txlog.EntryLeadership,
		Epoch:   epoch,
		Payload: EncodeClaim(claim),
	})
	if err != nil {
		return nil, txlog.ZeroID, err
	}
	lease := NewLease(cfg, epoch)
	lease.Renewed(issued)
	return lease, id, nil
}

// Renew appends a lease renewal entry conditioned on after (the primary's
// last appended entry). On success it extends lease and returns the new
// tail. Any error means the primary could not renew — on lease expiry it
// must self-demote.
func Renew(ctx context.Context, log *txlog.Log, cfg Config, lease *Lease, after txlog.EntryID) (txlog.EntryID, error) {
	r := Renewal{NodeID: cfg.NodeID, Epoch: lease.Epoch(), LeaseMs: cfg.Lease.Milliseconds()}
	issued := cfg.Clock.Now()
	id, err := log.Append(ctx, after, txlog.Entry{
		Type:    txlog.EntryLease,
		Epoch:   lease.Epoch(),
		Payload: EncodeRenewal(r),
	})
	if err != nil {
		return txlog.ZeroID, err
	}
	lease.Renewed(issued)
	return id, nil
}
