package election

import (
	"math/rand"
	"time"

	"memorydb/internal/clock"
)

// SkewedClock wraps a clock with a fixed offset and a drift rate — the
// fault model for a node whose local time is wrong. Leases are the one
// place MemoryDB depends on clocks at all (§4.1: bounded clock drift is
// assumed only for lease validity, never for correctness of the log), so
// the interesting fault is a primary whose slow clock makes it believe its
// lease is still valid long after every honest observer saw it expire.
// Safety must then come from fencing: the deposed primary's conditional
// appends fail because a successor's claim entry moved the tail, so none
// of its writes can commit — regardless of what its clock says.
//
// Now() = epoch + offset + (inner.Now() - epoch) * rate, so rate < 1 is a
// slow clock (time dilates), rate > 1 a fast one. Sleep and After scale
// the requested duration by 1/rate: a slow clock's "100ms" lasts longer in
// real time, exactly like a slow oscillator driving a timer wheel.
type SkewedClock struct {
	inner  clock.Clock
	offset time.Duration
	rate   float64
	epoch  time.Time
}

// NewSkewedClock wraps inner with a constant offset and drift rate.
// rate must be > 0; 1.0 means no drift.
func NewSkewedClock(inner clock.Clock, offset time.Duration, rate float64) *SkewedClock {
	if rate <= 0 {
		rate = 1
	}
	return &SkewedClock{inner: inner, offset: offset, rate: rate, epoch: inner.Now()}
}

// NewSeededSkew draws a reproducible skew from seed: offset uniform in
// [-maxOffset, +maxOffset], rate uniform in [1-maxDrift, 1+maxDrift].
// Fixed-seed chaos schedules get the same broken clock every run.
func NewSeededSkew(inner clock.Clock, seed int64, maxOffset time.Duration, maxDrift float64) *SkewedClock {
	rng := rand.New(rand.NewSource(seed))
	offset := time.Duration((rng.Float64()*2 - 1) * float64(maxOffset))
	rate := 1 + (rng.Float64()*2-1)*maxDrift
	return NewSkewedClock(inner, offset, rate)
}

// Offset returns the configured constant offset.
func (s *SkewedClock) Offset() time.Duration { return s.offset }

// Rate returns the configured drift rate.
func (s *SkewedClock) Rate() float64 { return s.rate }

// Now returns the skewed wall-clock reading.
func (s *SkewedClock) Now() time.Time {
	elapsed := s.inner.Now().Sub(s.epoch)
	return s.epoch.Add(s.offset + time.Duration(float64(elapsed)*s.rate))
}

// Sleep sleeps for d of *skewed* time: a slow clock sleeps longer in real
// time, a fast one shorter.
func (s *SkewedClock) Sleep(d time.Duration) { s.inner.Sleep(s.scale(d)) }

// After fires after d of skewed time.
func (s *SkewedClock) After(d time.Duration) <-chan time.Time { return s.inner.After(s.scale(d)) }

func (s *SkewedClock) scale(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return time.Duration(float64(d) / s.rate)
}
