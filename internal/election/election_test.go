package election

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/txlog"
)

func cfg(clk clock.Clock, id string) Config {
	return Config{
		NodeID:     id,
		Lease:      100 * time.Millisecond,
		Backoff:    130 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond,
		Clock:      clk,
	}
}

func TestConfigValidate(t *testing.T) {
	c := cfg(clock.NewReal(), "n")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Backoff = c.Lease // must be strictly greater
	if err := bad.Validate(); err == nil {
		t.Fatal("backoff == lease accepted")
	}
	bad2 := c
	bad2.RenewEvery = c.Lease
	if err := bad2.Validate(); err == nil {
		t.Fatal("renew >= lease accepted")
	}
}

func TestClaimRenewalPayloadRoundTrip(t *testing.T) {
	c := Claim{NodeID: "n1", Epoch: 7, LeaseMs: 100}
	got, err := DecodeClaim(EncodeClaim(c))
	if err != nil || got != c {
		t.Fatalf("claim round trip: %v %v", got, err)
	}
	r := Renewal{NodeID: "n1", Epoch: 7, LeaseMs: 100}
	gr, err := DecodeRenewal(EncodeRenewal(r))
	if err != nil || gr != r {
		t.Fatalf("renewal round trip: %v %v", gr, err)
	}
	if _, err := DecodeClaim([]byte("{garbage")); err == nil {
		t.Fatal("garbage claim accepted")
	}
	if _, err := DecodeRenewal([]byte("{garbage")); err == nil {
		t.Fatal("garbage renewal accepted")
	}
}

func TestObserverBackoffWindow(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	o := NewObserver(cfg(clk, "n"))
	if o.CanCampaign() {
		t.Fatal("fresh observer must wait out the backoff")
	}
	clk.Advance(131 * time.Millisecond)
	if !o.CanCampaign() {
		t.Fatal("backoff elapsed; campaigning must be allowed")
	}
	o.ObserveRenewal()
	if o.CanCampaign() {
		t.Fatal("renewal observed; backoff must restart")
	}
	clk.Advance(131 * time.Millisecond)
	if !o.CanCampaign() {
		t.Fatal("second backoff elapsed")
	}
}

func TestLeaseValidityAndRenewal(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	l := NewLease(cfg(clk, "n"), 1)
	if !l.Valid() {
		t.Fatal("fresh lease invalid")
	}
	clk.Advance(99 * time.Millisecond)
	if !l.Valid() {
		t.Fatal("lease expired early")
	}
	issued := clk.Now()
	l.Renewed(issued)
	clk.Advance(99 * time.Millisecond)
	if !l.Valid() {
		t.Fatal("renewed lease expired early")
	}
	clk.Advance(2 * time.Millisecond)
	if l.Valid() {
		t.Fatal("lease must expire Lease after last renewal issue time")
	}
}

func TestLeaseRenewalNeverShortens(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	l := NewLease(cfg(clk, "n"), 1)
	exp := l.ExpiresAt()
	l.Renewed(clk.Now().Add(-time.Hour)) // stale issue time
	if l.ExpiresAt().Before(exp) {
		t.Fatal("stale renewal shortened the lease")
	}
}

// Safety invariant: lease (primary silence deadline) always ends before
// backoff (replica campaign earliest time), measured from the same
// renewal observation — so at most one node can act as leader.
func TestLeaseBackoffDisjointness(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	c := cfg(clk, "n")
	lease := NewLease(c, 1)
	obs := NewObserver(c)
	// The replica observes the renewal some time after it was issued.
	issue := clk.Now()
	lease.Renewed(issue)
	clk.Advance(10 * time.Millisecond) // replication delay
	obs.ObserveRenewal()
	// Walk the clock forward; whenever the observer may campaign the
	// lease must already be invalid.
	for i := 0; i < 300; i++ {
		clk.Advance(time.Millisecond)
		if obs.CanCampaign() && lease.Valid() {
			t.Fatalf("at +%dms both lease valid and campaign allowed", 10+i)
		}
	}
}

func TestCampaignOnlyFromTail(t *testing.T) {
	svc := txlog.NewService(txlog.Config{})
	log, _ := svc.CreateLog("s")
	ctx := context.Background()
	tail, err := log.Append(ctx, txlog.ZeroID, txlog.Entry{Type: txlog.EntryData, Payload: []byte("w")})
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewReal()
	// A lagging replica (observed ZeroID) cannot win.
	if _, _, err := Campaign(ctx, log, cfg(clk, "laggard"), txlog.ZeroID); !errors.Is(err, txlog.ErrConditionFailed) {
		t.Fatalf("lagging campaign: %v", err)
	}
	// The caught-up replica wins.
	lease, claimID, err := Campaign(ctx, log, cfg(clk, "caughtup"), tail)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch() != 1 || claimID.Seq != tail.Seq+1 {
		t.Fatalf("lease epoch %d claim %v", lease.Epoch(), claimID)
	}
	// The claim is readable and carries the claimant.
	e, ok := log.Get(claimID)
	if !ok || e.Type != txlog.EntryLeadership {
		t.Fatalf("claim entry: %v %v", e, ok)
	}
	c, err := DecodeClaim(e.Payload)
	if err != nil || c.NodeID != "caughtup" {
		t.Fatalf("claim payload: %v %v", c, err)
	}
}

func TestConcurrentCampaignsOneWinner(t *testing.T) {
	svc := txlog.NewService(txlog.Config{})
	log, _ := svc.CreateLog("s")
	ctx := context.Background()
	clk := clock.NewReal()
	var mu sync.Mutex
	winners := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := Campaign(ctx, log, cfg(clk, "n"+string(rune('0'+i))), txlog.ZeroID); err == nil {
				mu.Lock()
				winners++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if winners != 1 {
		t.Fatalf("winners = %d", winners)
	}
}

func TestRenewExtendsAndChains(t *testing.T) {
	svc := txlog.NewService(txlog.Config{})
	log, _ := svc.CreateLog("s")
	ctx := context.Background()
	clk := clock.NewSim(time.Unix(0, 0))
	c := cfg(clk, "n1")
	lease, claimID, err := Campaign(ctx, log, c, txlog.ZeroID)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)
	id, err := Renew(ctx, log, c, lease, claimID)
	if err != nil {
		t.Fatal(err)
	}
	if id.Seq != claimID.Seq+1 {
		t.Fatalf("renewal id = %v", id)
	}
	// Lease now extends 100ms past the renewal issue (t=50ms).
	clk.Advance(99 * time.Millisecond)
	if !lease.Valid() {
		t.Fatal("lease should extend from renewal")
	}
	// Renewal from a stale tail fails (fencing).
	if _, err := Renew(ctx, log, c, lease, claimID); !errors.Is(err, txlog.ErrConditionFailed) {
		t.Fatalf("stale renew: %v", err)
	}
}

func TestRoleString(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleReplica.String() != "replica" || RoleDemoted.String() != "demoted" {
		t.Fatal("role names")
	}
}
