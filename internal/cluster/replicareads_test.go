package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/lin"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// Replica-read chaos schedules (tentpole: lease-gated linearizable
// replica reads). Each schedule drives sustained READONLY load through
// the cluster client while a nemesis attacks exactly the machinery the
// freshness proof depends on — leadership (failover storm), the log
// feed (asymmetric replica partition), and the tailer's position (trim
// past a frozen replica). Replica reads served with a linearizable
// claim join the same concurrent history as the writers and must check
// out under the Porcupine-style checker; bounded-stale serves are
// checked against the client's declared bound; nothing is ever allowed
// to hang or to pass off stale state as fresh.
//
// The CI gate (scripts/check.sh, `make reads`) runs these at fixed
// seeds via MEMORYDB_CHAOS_SEED under -race at 1 and 8 execution shards.

// replicaReadCluster provisions a cluster tuned for the replica-read
// schedules: small log segments (so trim schedules can rotate and seal),
// seeded commit latency and retry jitter, chaos-grade lease timings.
func replicaReadCluster(t *testing.T, seed int64, numShards, replicas int) (*txlog.Service, *Cluster, *snapshot.Manager) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{
		Clock:          clock.NewReal(),
		CommitLatency:  netsim.NewUniform(100*time.Microsecond, time.Millisecond, seed),
		Seed:           seed,
		SegmentEntries: 16,
	})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "readstorm", NumShards: numShards, ReplicasPerShard: replicas,
		LogService: svc, Snapshots: snaps,
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		RetrySeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	dumpTimelineOnFailure(t, c)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return svc, c, snaps
}

// readLadderTally counts which rungs of the degradation ladder the
// readers actually hit, so each schedule can assert its target path was
// exercised rather than silently skipped.
type readLadderTally struct {
	linearized atomic.Int64 // replica serves with a successful freshness proof
	stale      atomic.Int64 // bounded-stale serves under a declared bound
	redirects  atomic.Int64 // REDIRECT errors that survived client retries
}

// runGenWriters drives writer clients over the shared generator keyspace
// (mixed SET/GET through the default routing client), recording into the
// shared recorder. Blocks until all writers finish.
func runGenWriters(c *Cluster, rec *lin.Recorder, seed int64, writers, ops, keys int, pace time.Duration) {
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: seed + int64(clientID), Keys: keys, WriteRatio: 0.5})
			client := c.Client()
			for i := 0; i < ops; i++ {
				time.Sleep(pace)
				key, in, args := gen.Next(clientID*100000 + i)
				cctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				call := rec.Invoke()
				v, err := client.Do(cctx, args...)
				cancel()
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				} else if in.Kind == "get" {
					out.Value = v.Text()
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(w)
	}
	wg.Wait()
}

// runReaders drives READONLY clients at the given consistency level.
// Reads served with a linearizable claim (on a replica with a proof, or
// retried onto the primary) join the shared lin history; bounded-stale
// serves are collected separately for the staleness checker; failures
// are recorded as ambiguous. Blocks until all readers finish.
func runReaders(c *Cluster, rec *lin.Recorder, seed int64, readers, ops int,
	keyFn func(*rand.Rand) string, pace time.Duration, opts core.ReadOpts, tally *readLadderTally) []lin.BoundedRead {
	var mu sync.Mutex
	var bounded []lin.BoundedRead
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ int64(0xbead+clientID)))
			rc := c.ReadClient(opts)
			for i := 0; i < ops; i++ {
				time.Sleep(pace)
				key := keyFn(rng)
				argv := [][]byte{[]byte("GET"), []byte(key)}
				cctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				call := rec.Invoke()
				v, outcome, err := rc.DoArgvOutcome(cctx, argv)
				cancel()
				failed := err != nil || v.IsError()
				if !failed && outcome == core.ReadOutcomeStale {
					// Served under the client's declared bound: checked by
					// the bounded-staleness checker, never admitted into
					// the linearizable history.
					tally.stale.Add(1)
					mu.Lock()
					bounded = append(bounded, lin.BoundedRead{
						ClientID: clientID, Key: key, Value: v.Text(),
						Call: call, Bound: opts.StalenessBound.Nanoseconds(),
					})
					mu.Unlock()
					continue
				}
				out := lin.Output{}
				if failed {
					out.Err = true
					if err == nil && core.IsRedirect(v) {
						tally.redirects.Add(1)
					}
				} else {
					out.Value = v.Text()
					if outcome == core.ReadOutcomeLinearizable {
						tally.linearized.Add(1)
					}
				}
				rec.Complete(1000+clientID, key, lin.Input{Kind: "get"}, out, call)
			}
		}(r)
	}
	wg.Wait()
	return bounded
}

// TestReplicaReadsFailoverStorm: READONLY load continues through a storm
// of primary step-downs and replacements. Every read served with a
// linearizable claim — replica-proved or redirected onto the (possibly
// brand-new) primary — participates in the history as a first-class
// operation; the storm must not produce a single stale linearizable read.
func TestReplicaReadsFailoverStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-read chaos skipped in -short mode")
	}
	seed := chaosSeed(t)
	_, c, _ := replicaReadCluster(t, seed, 2, 2)

	done := make(chan struct{})
	var windows atomic.Int64
	var sched sync.WaitGroup
	sched.Add(1)
	go func() {
		defer sched.Done()
		rng := rand.New(rand.NewSource(seed ^ 0xfa110))
		for {
			shards := c.Shards()
			sh := shards[rng.Intn(len(shards))]
			if p, ok := sh.Primary(); ok {
				if rng.Intn(2) == 0 {
					cctx, cancel := context.WithTimeout(context.Background(), time.Second)
					if err := p.StepDown(cctx); err == nil {
						windows.Add(1)
					}
					cancel()
				} else if _, err := c.ReplaceNode(p.ID()); err == nil {
					windows.Add(1)
				}
			}
			select {
			case <-done:
				return
			case <-time.After(time.Duration(150+rng.Intn(150)) * time.Millisecond):
			}
		}
	}()

	rec := lin.NewRecorder()
	var tally readLadderTally
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		runGenWriters(c, rec, seed, 2, 50, 16, 5*time.Millisecond)
	}()
	go func() {
		defer wg.Done()
		runReaders(c, rec, seed, 3, 60, func(rng *rand.Rand) string {
			return fmt.Sprintf("lin-k%d", rng.Intn(16))
		}, 5*time.Millisecond, core.ReadOpts{}, &tally)
	}()
	wg.Wait()
	close(done)
	sched.Wait()

	if w := windows.Load(); w < 2 {
		t.Fatalf("only %d failovers completed — storm too tame to mean anything", w)
	}
	if tally.linearized.Load() == 0 {
		t.Fatal("no replica read was ever served with a freshness proof — the gated path was not exercised")
	}
	history := rec.History()
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("failover-storm history with replica reads not linearizable (key %s, %d ops)", badKey, len(history))
	}
	t.Logf("failover storm: %d failovers, %d ops, %d replica-proved reads, %d redirects",
		windows.Load(), len(history), tally.linearized.Load(), tally.redirects.Load())
}

// TestReplicaReadsBoundedStalenessPartition: the replica is repeatedly
// cut off from the log feed while staying reachable by clients — the
// asymmetric shape. Clients declare a 120ms staleness tolerance: early
// in each partition window the replica serves under the bound, past it
// the reads bounce to the primary. Both checkers must pass: linearizable
// claims against the register model, bounded serves against the bound.
func TestReplicaReadsBoundedStalenessPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-read chaos skipped in -short mode")
	}
	seed := chaosSeed(t)
	_, c, _ := replicaReadCluster(t, seed, 1, 1)
	sh := c.Shards()[0]
	reps := sh.Replicas()
	if len(reps) != 1 {
		t.Fatalf("want exactly 1 replica, have %d", len(reps))
	}
	flag := c.NodePartition(reps[0].ID())

	// Single sequential writer per key — the bounded-staleness checker's
	// generation ordering relies on it.
	const writerCount, keysPerWriter = 2, 4
	ownKeys := make([][]string, writerCount)
	var allKeys []string
	for w := range ownKeys {
		for j := 0; j < keysPerWriter; j++ {
			k := fmt.Sprintf("bs-w%d-k%d", w, j)
			ownKeys[w] = append(ownKeys[w], k)
			allKeys = append(allKeys, k)
		}
	}

	done := make(chan struct{})
	var windows atomic.Int64
	var sched sync.WaitGroup
	sched.Add(1)
	go func() {
		defer sched.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x9a37))
		for {
			flag.Set(true)
			select {
			case <-done:
				flag.Set(false)
				return
			case <-time.After(time.Duration(80+rng.Intn(80)) * time.Millisecond):
			}
			flag.Set(false)
			windows.Add(1)
			select {
			case <-done:
				return
			case <-time.After(80 * time.Millisecond):
			}
		}
	}()

	rec := lin.NewRecorder()
	var tally readLadderTally
	var wg sync.WaitGroup
	wg.Add(1 + writerCount)
	for w := 0; w < writerCount; w++ {
		go func(w int) {
			defer wg.Done()
			client := c.Client()
			for i := 0; i < 50; i++ {
				time.Sleep(10 * time.Millisecond)
				key := ownKeys[w][i%keysPerWriter]
				val := fmt.Sprintf("g%d", i)
				cctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				call := rec.Invoke()
				v, err := client.Do(cctx, "SET", key, val)
				cancel()
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				}
				rec.Complete(w, key, lin.Input{Kind: "set", Value: val}, out, call)
			}
		}(w)
	}
	var bounded []lin.BoundedRead
	go func() {
		defer wg.Done()
		bounded = runReaders(c, rec, seed, 2, 120, func(rng *rand.Rand) string {
			return allKeys[rng.Intn(len(allKeys))]
		}, 5*time.Millisecond,
			core.ReadOpts{Consistency: core.ReadBoundedStale, StalenessBound: 120 * time.Millisecond}, &tally)
	}()
	wg.Wait()
	close(done)
	sched.Wait()

	if w := windows.Load(); w < 2 {
		t.Fatalf("only %d partition windows completed — schedule too short to mean anything", w)
	}
	if tally.stale.Load() == 0 {
		t.Fatal("no read was served under the staleness bound — the degradation rung was not exercised")
	}
	history := rec.History()
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("bounded-staleness schedule's linearizable history failed (key %s, %d ops)", badKey, len(history))
	}
	var writes []lin.Operation
	for _, op := range history {
		if op.Input.Kind == "set" {
			writes = append(writes, op)
		}
	}
	if ok, detail := lin.CheckBoundedStaleness(writes, bounded); !ok {
		t.Fatalf("bounded-staleness violation: %s", detail)
	}
	t.Logf("bounded staleness: %d windows, %d lin ops, %d stale serves checked, %d redirects",
		windows.Load(), len(history), tally.stale.Load(), tally.redirects.Load())
}

// TestReplicaReadsTrimRebootstrap: a replica is frozen, the log is
// trimmed past its tailer, and it is resurrected mid-load — forcing the
// ErrTrimmed → snapshot re-bootstrap path while READONLY clients keep
// reading. Reads must drain or degrade around the rebuild; a half-built
// store must never serve, which the linearizable history would expose.
func TestReplicaReadsTrimRebootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-read chaos skipped in -short mode")
	}
	seed := chaosSeed(t)
	_, c, snaps := replicaReadCluster(t, seed, 1, 2)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()

	rec := lin.NewRecorder()
	var tally readLadderTally
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		runGenWriters(c, rec, seed, 1, 40, 8, 10*time.Millisecond)
	}()
	go func() {
		defer wg.Done()
		runReaders(c, rec, seed, 2, 80, func(rng *rand.Rand) string {
			return fmt.Sprintf("lin-k%d", rng.Intn(8))
		}, 5*time.Millisecond, core.ReadOpts{}, &tally)
	}()

	// Nemesis: freeze one replica, push the trim base past its tailer,
	// then wake it into a log that no longer contains its next entry.
	lag := sh.Replicas()[0]
	if err := c.Kill(lag.ID()); err != nil {
		t.Fatal(err)
	}
	frozen := lag.AppliedSeq()
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1}
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	for round := 0; round < 10 && sh.Log.TrimBase().Seq <= frozen; round++ {
		for i := 0; i < 40; i++ {
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if v, err := client.Do(cctx, "SET", fmt.Sprintf("bulk-%d-%d", round, i), "x"); err != nil || v.IsError() {
				cancel()
				t.Fatalf("bulk SET: %v %v", v, err)
			}
			cancel()
		}
		if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
			t.Fatal(err)
		}
		trimmer.Tick()
	}
	if base := sh.Log.TrimBase().Seq; base <= frozen {
		t.Fatalf("setup: trim base %d never passed the frozen tailer at %d", base, frozen)
	}
	tail := sh.Log.CommittedTail().Seq
	if err := c.Resurrect(lag.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && lag.Stats().ReaderRebootstraps.Load() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if lag.Stats().ReaderRebootstraps.Load() == 0 {
		t.Fatal("woken replica never re-bootstrapped from snapshot")
	}
	for time.Now().Before(deadline) && lag.AppliedSeq() < tail {
		time.Sleep(2 * time.Millisecond)
	}
	if got := lag.AppliedSeq(); got < tail {
		t.Fatalf("re-bootstrapped replica stuck at %d, want >= %d", got, tail)
	}

	wg.Wait()
	if tally.linearized.Load() == 0 {
		t.Fatal("no replica read was ever served with a freshness proof")
	}
	history := rec.History()
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("trim-rebootstrap history with replica reads not linearizable (key %s, %d ops)", badKey, len(history))
	}
	if gaps := lag.Stats().LogGapRetries.Load(); gaps != 0 {
		t.Fatalf("replica hit %d trimmed-gap retries — it served or applied across a gap", gaps)
	}
	t.Logf("trim rebootstrap: %d ops, %d replica-proved reads, %d redirects, rebootstraps=%d",
		len(history), tally.linearized.Load(), tally.redirects.Load(), lag.Stats().ReaderRebootstraps.Load())
}
