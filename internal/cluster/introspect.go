package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"memorydb/internal/crc16"
	"memorydb/internal/resp"
)

// ClusterCommand serves the CLUSTER introspection subcommands clients use
// to discover the slot-to-shard mapping (§2.1): SLOTS, SHARDS, KEYSLOT,
// COUNTKEYSINSLOT, INFO. The server front-end routes "CLUSTER ..." here.
func (c *Cluster) ClusterCommand(ctx context.Context, argv [][]byte) resp.Value {
	if len(argv) < 2 {
		return resp.Err("ERR wrong number of arguments for 'cluster' command")
	}
	switch strings.ToUpper(string(argv[1])) {
	case "SLOTS":
		return c.clusterSlots()
	case "SHARDS":
		return c.clusterShards()
	case "KEYSLOT":
		if len(argv) != 3 {
			return resp.Err("ERR wrong number of arguments for 'cluster|keyslot' command")
		}
		return resp.Int64(int64(crc16.Slot(string(argv[2]))))
	case "COUNTKEYSINSLOT":
		if len(argv) != 3 {
			return resp.Err("ERR wrong number of arguments for 'cluster|countkeysinslot' command")
		}
		n, err := strconv.ParseUint(string(argv[2]), 10, 16)
		if err != nil {
			return resp.Err("ERR Invalid slot")
		}
		return c.countKeysInSlot(ctx, uint16(n))
	case "INFO":
		return resp.BulkStr(c.clusterInfoText())
	case "MYID", "NODES":
		// Minimal stubs: enough for clients that probe these.
		return resp.BulkStr(c.cfg.Name)
	}
	return resp.Errf("ERR Unknown CLUSTER subcommand or wrong number of arguments for '%s'", string(argv[1]))
}

// clusterSlots renders the CLUSTER SLOTS reply: one row per contiguous
// slot range: [start, end, [primaryID], [replicaID]...].
func (c *Cluster) clusterSlots() resp.Value {
	c.mu.RLock()
	owners := c.slotOwner
	c.mu.RUnlock()
	var rows []resp.Value
	start := 0
	for s := 1; s <= crc16.NumSlots; s++ {
		if s < crc16.NumSlots && owners[s] == owners[start] {
			continue
		}
		if sh := owners[start]; sh != nil {
			row := []resp.Value{resp.Int64(int64(start)), resp.Int64(int64(s - 1))}
			if p, ok := sh.Primary(); ok {
				row = append(row, resp.ArrayV(resp.BulkStr(p.ID()), resp.Int64(0)))
			} else {
				row = append(row, resp.ArrayV(resp.BulkStr(sh.ID), resp.Int64(0)))
			}
			for _, r := range sh.Replicas() {
				row = append(row, resp.ArrayV(resp.BulkStr(r.ID()), resp.Int64(0)))
			}
			rows = append(rows, resp.ArrayV(row...))
		}
		start = s
	}
	return resp.ArrayV(rows...)
}

// clusterShards renders a CLUSTER SHARDS-shaped reply: per shard, its
// slot ranges and node list with roles.
func (c *Cluster) clusterShards() resp.Value {
	var rows []resp.Value
	for _, sh := range c.Shards() {
		slots := c.OwnedSlots(sh.ID)
		var ranges []resp.Value
		for i := 0; i < len(slots); {
			j := i
			for j+1 < len(slots) && slots[j+1] == slots[j]+1 {
				j++
			}
			ranges = append(ranges, resp.Int64(int64(slots[i])), resp.Int64(int64(slots[j])))
			i = j + 1
		}
		var nodes []resp.Value
		for _, n := range sh.Nodes() {
			nodes = append(nodes, resp.ArrayV(
				resp.BulkStr("id"), resp.BulkStr(n.ID()),
				resp.BulkStr("role"), resp.BulkStr(n.Role().String()),
				resp.BulkStr("availability-zone"), resp.BulkStr(n.AZ()),
			))
		}
		rows = append(rows, resp.ArrayV(
			resp.BulkStr("slots"), resp.ArrayV(ranges...),
			resp.BulkStr("nodes"), resp.ArrayV(nodes...),
		))
	}
	return resp.ArrayV(rows...)
}

func (c *Cluster) countKeysInSlot(ctx context.Context, slot uint16) resp.Value {
	sh := c.SlotOwner(slot)
	if sh == nil {
		return resp.Int64(0)
	}
	p, ok := sh.Primary()
	if !ok {
		return resp.Err("CLUSTERDOWN no primary for slot's shard")
	}
	n, err := p.SlotKeyCount(ctx, slot)
	if err != nil {
		return resp.Errf("ERR %v", err)
	}
	return resp.Int64(int64(n))
}

func (c *Cluster) clusterInfoText() string {
	shards := c.Shards()
	assigned := 0
	ok := true
	for s := 0; s < crc16.NumSlots; s++ {
		if c.SlotOwner(uint16(s)) != nil {
			assigned++
		} else {
			ok = false
		}
	}
	state := "ok"
	if !ok {
		state = "fail"
	}
	nodes := 0
	for _, sh := range shards {
		nodes += len(sh.Nodes())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster_enabled:1\r\n")
	fmt.Fprintf(&b, "cluster_state:%s\r\n", state)
	fmt.Fprintf(&b, "cluster_slots_assigned:%d\r\n", assigned)
	fmt.Fprintf(&b, "cluster_known_nodes:%d\r\n", nodes)
	fmt.Fprintf(&b, "cluster_size:%d\r\n", len(shards))
	// Execution-shard pressure, aggregated across every node: total and
	// max queued tasks, so a hot sub-shard (skewed slot) shows up from
	// one INFO call without scraping each node.
	execShards, depthTotal, depthMax := 0, 0, 0
	for _, sh := range shards {
		for _, n := range sh.Nodes() {
			execShards += n.NumShards()
			for _, d := range n.QueueDepths() {
				depthTotal += d
				if d > depthMax {
					depthMax = d
				}
			}
		}
	}
	fmt.Fprintf(&b, "cluster_exec_shards:%d\r\n", execShards)
	fmt.Fprintf(&b, "cluster_exec_queue_depth_total:%d\r\n", depthTotal)
	fmt.Fprintf(&b, "cluster_exec_queue_depth_max:%d\r\n", depthMax)
	// Per-AZ transaction-log health: served/dropped ack counts plus the
	// ack latency distribution, so a flaky or slow zone is identifiable
	// from one INFO call (drops climb, or its p99 diverges from its
	// peers').
	if svc := c.cfg.LogService; svc != nil {
		for i, az := range svc.AZs() {
			served, dropped := az.Acks()
			q := az.AckLatency().Quantiles()
			fmt.Fprintf(&b, "az%d_name:%s\r\n", i, az.Name())
			fmt.Fprintf(&b, "az%d_acks_served:%d\r\n", i, served)
			fmt.Fprintf(&b, "az%d_acks_dropped:%d\r\n", i, dropped)
			fmt.Fprintf(&b, "az%d_ack_p50_usec:%d\r\n", i, int64(q.P50/time.Microsecond))
			fmt.Fprintf(&b, "az%d_ack_p99_usec:%d\r\n", i, int64(q.P99/time.Microsecond))
			fmt.Fprintf(&b, "az%d_ack_max_usec:%d\r\n", i, int64(q.Max/time.Microsecond))
			held, missing, resynced := az.Segments()
			fmt.Fprintf(&b, "az%d_segments_held:%d\r\n", i, held)
			fmt.Fprintf(&b, "az%d_segments_missing:%d\r\n", i, missing)
			fmt.Fprintf(&b, "az%d_segments_resynced:%d\r\n", i, resynced)
		}
	}
	return b.String()
}
