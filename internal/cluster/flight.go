package cluster

import (
	"memorydb/internal/trace"
)

// Flight-recorder plumbing. Each node identity gets one ring, keyed like
// the fault registries: a restarted node's replacement process keeps
// appending to its predecessor's ring, so the merged timeline shows the
// whole identity's history (kill → restart → rejoin) in one place.

// nodeFlight returns (creating on first use) nodeID's flight ring.
func (c *Cluster) nodeFlight(nodeID string) *trace.Flight {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flights == nil {
		c.flights = make(map[string]*trace.Flight)
	}
	f, ok := c.flights[nodeID]
	if !ok {
		f = trace.NewFlight(nodeID, c.cfg.FlightEvents)
		c.flights[nodeID] = f
	}
	return f
}

// NodeFlight exposes nodeID's flight-recorder ring.
func (c *Cluster) NodeFlight(nodeID string) *trace.Flight {
	return c.nodeFlight(nodeID)
}

// MergedTimeline merges every node's flight ring — plus the shared log
// service's, which records segment seals, trims and quarantines — into
// one causally-ordered cluster timeline. This is the black-box readout:
// call it when a test fails, a node demotes unexpectedly, or an operator
// runs DEBUG FLIGHT DUMP and wants more than one node's view.
func (c *Cluster) MergedTimeline() []trace.Event {
	c.mu.RLock()
	flights := make([]*trace.Flight, 0, len(c.flights)+1)
	for _, f := range c.flights {
		flights = append(flights, f)
	}
	c.mu.RUnlock()
	if c.cfg.LogService != nil {
		flights = append(flights, c.cfg.LogService.Flight())
	}
	return trace.Merge(flights...)
}

// TimelineReport renders MergedTimeline as a readable incident report.
func (c *Cluster) TimelineReport() string {
	return trace.FormatTimeline(c.MergedTimeline())
}
