package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"memorydb/internal/core"
	"memorydb/internal/engine"
	"memorydb/internal/txlog"
)

// Slot ownership transfer messages, durably committed to both shards'
// transaction logs as a 2-phase-commit protocol (paper §5.2). If either
// side fails mid-protocol, the recorded phase determines the outcome:
// anything before commit aborts cleanly (the target deletes transferred
// data); after both commit records the new owner serves the slot.
type slotMsg struct {
	Phase string `json:"phase"` // "prepare", "commit", "abort"
	Slot  uint16 `json:"slot"`
	From  string `json:"from"`
	To    string `json:"to"`
}

func encodeSlotMsg(m slotMsg) []byte {
	b, _ := json.Marshal(m)
	return b
}

// DecodeSlotMsg parses an EntrySlot payload (exported for log audits and
// tests).
func DecodeSlotMsg(b []byte) (phase string, slot uint16, from, to string, err error) {
	var m slotMsg
	if err = json.Unmarshal(b, &m); err != nil {
		return
	}
	return m.Phase, m.Slot, m.From, m.To, nil
}

// MigrateSlot atomically moves one slot from its current owner to the
// shard toID. Nodes continue servicing requests during data movement;
// writes to the slot are blocked only for the brief ownership transfer
// (a few round trips plus log commit latencies, §5.2).
func (c *Cluster) MigrateSlot(ctx context.Context, slot uint16, toID string) (err error) {
	src := c.SlotOwner(slot)
	if src == nil {
		return fmt.Errorf("cluster: slot %d not served", slot)
	}
	dst, ok := c.ShardByID(toID)
	if !ok {
		return fmt.Errorf("cluster: no shard %q", toID)
	}
	if src.ID == dst.ID {
		return nil
	}
	srcP, err := src.WaitForPrimary(c.cfg.Clock, waitPrimaryTimeout)
	if err != nil {
		return err
	}
	dstP, err := dst.WaitForPrimary(c.cfg.Clock, waitPrimaryTimeout)
	if err != nil {
		return err
	}

	// Phase 0: durably record intent on both logs.
	prep := encodeSlotMsg(slotMsg{Phase: "prepare", Slot: slot, From: src.ID, To: dst.ID})
	if _, err := srcP.AppendControl(ctx, txlog.EntrySlot, prep); err != nil {
		return fmt.Errorf("cluster: prepare on source: %w", err)
	}
	if _, err := dstP.AppendControl(ctx, txlog.EntrySlot, prep); err != nil {
		return fmt.Errorf("cluster: prepare on target: %w", err)
	}

	// Data movement: stream dump + live mutations, in source-serial
	// order, applying each item on the target primary (which commits it
	// to its own transaction log so target replicas converge too).
	stream := srcP.StartSlotMigration(slot)
	forwardErr := make(chan error, 1)
	go func() {
		forwardErr <- forwardStream(ctx, stream, dstP)
	}()

	abort := func(cause error) error {
		c.setSlotBlocked(slot, false)
		srcP.EndSlotMigration(slot)
		<-forwardErr
		// Direct the target to delete all transferred data; resuming
		// writes on the source makes the abort externally invisible.
		msg := encodeSlotMsg(slotMsg{Phase: "abort", Slot: slot, From: src.ID, To: dst.ID})
		_, _ = srcP.AppendControl(ctx, txlog.EntrySlot, msg)
		_, _ = dstP.AppendControl(ctx, txlog.EntrySlot, msg)
		deleteSlotKeys(ctx, dstP, slot)
		return cause
	}

	if err := srcP.EnqueueSlotDump(ctx, slot); err != nil {
		return abort(fmt.Errorf("cluster: slot dump: %w", err))
	}

	// Ownership transfer: block new writes, flush in-progress ones (the
	// final re-dump is serialized behind them in the source workloop and
	// is idempotent), then handshake.
	c.setSlotBlocked(slot, true)
	if err := srcP.EnqueueSlotDump(ctx, slot); err != nil {
		return abort(fmt.Errorf("cluster: final slot dump: %w", err))
	}
	srcP.EndSlotMigration(slot)
	if err := <-forwardErr; err != nil {
		return abort(fmt.Errorf("cluster: forwarding: %w", err))
	}

	// Data integrity handshake: both sides must agree on the slot's key
	// count before ownership changes hands.
	srcCount, err := slotKeyCount(ctx, srcP, slot)
	if err != nil {
		return abort(err)
	}
	dstCount, err := slotKeyCount(ctx, dstP, slot)
	if err != nil {
		return abort(err)
	}
	if srcCount != dstCount {
		return abort(fmt.Errorf("cluster: integrity handshake failed: source has %d keys, target %d", srcCount, dstCount))
	}

	// Phase 2: durably commit the ownership change on both logs.
	com := encodeSlotMsg(slotMsg{Phase: "commit", Slot: slot, From: src.ID, To: dst.ID})
	if _, err := srcP.AppendControl(ctx, txlog.EntrySlot, com); err != nil {
		return abort(fmt.Errorf("cluster: commit on source: %w", err))
	}
	if _, err := dstP.AppendControl(ctx, txlog.EntrySlot, com); err != nil {
		// The source recorded commit; recovery would roll forward. For
		// the in-process orchestration we surface the inconsistency.
		return fmt.Errorf("cluster: commit on target after source committed: %w", err)
	}
	c.mu.Lock()
	c.slotOwner[slot] = dst
	delete(c.blockedSlots, slot)
	c.mu.Unlock()

	// The old owner now redirects (the gate consults slotOwner) and
	// deletes the transferred data in a rate-limited background task.
	go func() {
		bg := context.Background()
		deleteSlotKeysRateLimited(bg, c.cfg.Clock, srcP, slot)
	}()
	return nil
}

func (c *Cluster) setSlotBlocked(slot uint16, blocked bool) {
	c.mu.Lock()
	if blocked {
		c.blockedSlots[slot] = true
	} else {
		delete(c.blockedSlots, slot)
	}
	c.mu.Unlock()
}

// forwardStream applies the migration stream to the target primary in
// order. Dump items arrive as decoded commands; live effects arrive as
// RESP-encoded payloads.
func forwardStream(ctx context.Context, ms *core.MigrationStream, dst *core.Node) error {
	for item := range ms.C {
		var batch [][][]byte
		if item.Cmds != nil {
			batch = item.Cmds
		} else {
			for _, eff := range item.Effects {
				cmds, err := engine.DecodeRecord(eff)
				if err != nil {
					return err
				}
				batch = append(batch, cmds...)
			}
		}
		if len(batch) == 0 {
			continue
		}
		v, err := dst.DoBatch(ctx, batch)
		if err != nil {
			return err
		}
		if v.IsError() {
			return fmt.Errorf("cluster: target rejected migration batch: %s", v.Text())
		}
	}
	return nil
}

// slotKeyCount counts the slot's keys on a node via its engine (through
// a barrier-style read so it reflects all applied writes).
func slotKeyCount(ctx context.Context, n *core.Node, slot uint16) (int, error) {
	v, err := n.Do(ctx, [][]byte{[]byte("DBSIZE")})
	if err != nil {
		return 0, err
	}
	if v.IsError() {
		return 0, fmt.Errorf("cluster: DBSIZE barrier failed: %s", v.Text())
	}
	return n.SlotKeyCount(ctx, slot)
}

func deleteSlotKeys(ctx context.Context, n *core.Node, slot uint16) {
	keys, err := n.SlotKeys(ctx, slot)
	if err != nil {
		return
	}
	for _, k := range keys {
		_, _ = n.Do(ctx, [][]byte{[]byte("DEL"), []byte(k)})
	}
}

// deleteSlotKeysRateLimited drains the slot's keys in small batches with
// pauses so the deletion does not disturb foreground traffic (§5.2).
func deleteSlotKeysRateLimited(ctx context.Context, clk interface {
	Sleep(time.Duration)
}, n *core.Node, slot uint16) {
	for {
		keys, err := n.SlotKeys(ctx, slot)
		if err != nil || len(keys) == 0 {
			return
		}
		if len(keys) > 64 {
			keys = keys[:64]
		}
		for _, k := range keys {
			if _, err := n.Do(ctx, [][]byte{[]byte("DEL"), []byte(k)}); err != nil {
				return
			}
		}
		clk.Sleep(time.Millisecond)
	}
}

// --- audit helpers ---

// SlotTransferHistory extracts the slot 2PC records from a shard's log —
// used by tests and by operators auditing a migration.
func SlotTransferHistory(log *txlog.Log) []string {
	var out []string
	r := log.NewReader(txlog.ZeroID)
	for {
		e, ok, err := r.TryNext()
		if err != nil || !ok {
			return out
		}
		if e.Type != txlog.EntrySlot {
			continue
		}
		phase, slot, from, to, err := DecodeSlotMsg(e.Payload)
		if err != nil {
			continue
		}
		out = append(out, fmt.Sprintf("%s slot=%d %s->%s", phase, slot, from, to))
	}
}
