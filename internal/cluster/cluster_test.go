package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/crc16"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

func testCluster(t *testing.T, shards, replicas int) *Cluster {
	t.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}})
	c, err := New(Config{
		Name:             "t",
		NumShards:        shards,
		ReplicasPerShard: replicas,
		LogService:       svc,
		Lease:            120 * time.Millisecond,
		Backoff:          160 * time.Millisecond,
		RenewEvery:       30 * time.Millisecond,
		ReplicaPoll:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Stop)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterRoutingAcrossShards(t *testing.T) {
	c := testCluster(t, 3, 0)
	cl := c.Client()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, err := cl.Do(ctx, "SET", k, "v"); err != nil || v.Text() != "OK" {
			t.Fatalf("SET %s: %v %v", k, v, err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, err := cl.Do(ctx, "GET", k); err != nil || v.Text() != "v" {
			t.Fatalf("GET %s: %v %v", k, v, err)
		}
	}
	// Keys really spread over multiple shards.
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		slot := crc16.Slot(fmt.Sprintf("key-%d", i))
		seen[c.SlotOwner(slot).ID] = true
	}
	if len(seen) < 2 {
		t.Fatalf("expected keys on multiple shards, got %v", seen)
	}
}

func TestCrossSlotRejected(t *testing.T) {
	c := testCluster(t, 2, 0)
	ctx := context.Background()
	// Find two keys in different slots, issue MSET through one primary.
	sh := c.Shards()[0]
	p, _ := sh.Primary()
	var k1, k2 string
	for i := 0; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.SlotOwner(crc16.Slot(k)) == sh {
			if k1 == "" {
				k1 = k
			} else if crc16.Slot(k) != crc16.Slot(k1) {
				k2 = k
				break
			}
		}
	}
	v, err := p.Do(ctx, [][]byte{[]byte("MSET"), []byte(k1), []byte("a"), []byte(k2), []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.Text(), "CROSSSLOT") {
		t.Fatalf("expected CROSSSLOT, got %v", v)
	}
	// Hash tags force co-location, making the multi-key op legal.
	v, err = p.Do(ctx, [][]byte{[]byte("MSET"), []byte("{tag}a"), []byte("1"), []byte("{tag}b"), []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsError() && !strings.HasPrefix(v.Text(), "MOVED") {
		t.Fatalf("hash-tagged MSET failed: %v", v)
	}
}

func TestMovedRedirect(t *testing.T) {
	c := testCluster(t, 2, 0)
	ctx := context.Background()
	shards := c.Shards()
	// Find a key owned by shard 1 and send it to shard 0's primary.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.SlotOwner(crc16.Slot(k)) == shards[1] {
			key = k
			break
		}
	}
	p0, _ := shards[0].Primary()
	v, err := p0.Do(ctx, [][]byte{[]byte("GET"), []byte(key)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.Text(), "MOVED ") {
		t.Fatalf("expected MOVED, got %v", v)
	}
}

func TestSlotMigration(t *testing.T) {
	c := testCluster(t, 2, 0)
	ctx := context.Background()
	cl := c.Client()

	// Pick a slot with traffic: write 50 keys into one slot via hash tag.
	slot := crc16.Slot("{mig}")
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("{mig}k%d", i)
		if v, err := cl.Do(ctx, "SET", k, fmt.Sprintf("v%d", i)); err != nil || v.IsError() {
			t.Fatalf("SET: %v %v", v, err)
		}
	}
	src := c.SlotOwner(slot)
	var dst *Shard
	for _, sh := range c.Shards() {
		if sh != src {
			dst = sh
		}
	}
	if err := c.MigrateSlot(ctx, slot, dst.ID); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if got := c.SlotOwner(slot); got != dst {
		t.Fatalf("slot owner = %s, want %s", got.ID, dst.ID)
	}
	// All keys readable through routing after migration.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("{mig}k%d", i)
		v, err := cl.Do(ctx, "GET", k)
		if err != nil || v.Text() != fmt.Sprintf("v%d", i) {
			t.Fatalf("GET %s after migration: %v %v", k, v, err)
		}
	}
	// The 2PC record trail exists on both logs.
	srcHist := SlotTransferHistory(src.Log)
	dstHist := SlotTransferHistory(dst.Log)
	if len(srcHist) < 2 || len(dstHist) < 2 {
		t.Fatalf("missing 2PC records: src=%v dst=%v", srcHist, dstHist)
	}
	if srcHist[0] != fmt.Sprintf("prepare slot=%d %s->%s", slot, src.ID, dst.ID) {
		t.Fatalf("unexpected first record: %v", srcHist[0])
	}
	if srcHist[len(srcHist)-1] != fmt.Sprintf("commit slot=%d %s->%s", slot, src.ID, dst.ID) {
		t.Fatalf("unexpected last record: %v", srcHist[len(srcHist)-1])
	}
}

func TestMigrationWithConcurrentWrites(t *testing.T) {
	c := testCluster(t, 2, 0)
	ctx := context.Background()
	cl := c.Client()
	slot := crc16.Slot("{hot}")
	for i := 0; i < 20; i++ {
		if v, err := cl.Do(ctx, "SET", fmt.Sprintf("{hot}k%d", i), "init"); err != nil || v.IsError() {
			t.Fatalf("seed: %v %v", v, err)
		}
	}
	src := c.SlotOwner(slot)
	var dst *Shard
	for _, sh := range c.Shards() {
		if sh != src {
			dst = sh
		}
	}

	stop := make(chan struct{})
	writes := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				writes <- n
				return
			default:
			}
			v, err := cl.Do(ctx, "SET", fmt.Sprintf("{hot}k%d", n%20), fmt.Sprintf("gen%d", n))
			if err == nil && !v.IsError() {
				n++
			} else if v.IsError() && strings.HasPrefix(v.Text(), "TRYAGAIN") {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.MigrateSlot(ctx, slot, dst.ID); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	close(stop)
	n := <-writes
	if n == 0 {
		t.Fatal("no writes succeeded during migration")
	}
	// Every key's latest acknowledged generation must be present on the
	// new owner.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("{hot}k%d", i)
		v, err := cl.Do(ctx, "GET", k)
		if err != nil || v.Null {
			t.Fatalf("key %s lost after migration under writes: %v %v", k, v, err)
		}
	}
}

func TestMonitorReplacesDeadReplica(t *testing.T) {
	c := testCluster(t, 1, 1)
	sh := c.Shards()[0]
	reps := sh.Replicas()
	if len(reps) != 1 {
		t.Fatalf("expected 1 replica, got %d", len(reps))
	}
	reps[0].Stop()
	m := &Monitor{Cluster: c, Interval: 10 * time.Millisecond}
	m.Tick()
	if m.Replacements() != 1 {
		t.Fatalf("replacements = %d, want 1", m.Replacements())
	}
	if got := len(sh.Nodes()); got != 2 {
		t.Fatalf("shard has %d nodes after replacement, want 2", got)
	}
}
