package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"memorydb/internal/core"
	"memorydb/internal/crc16"
	"memorydb/internal/engine"
	"memorydb/internal/resp"
)

// Client routes commands to the owning shard, exactly as a cluster-aware
// Redis client does: it computes the key slot locally and follows MOVED
// redirects when the mapping changes (paper §2.1). A readonly client
// additionally follows REDIRECT bounces: a replica that cannot prove
// freshness degrades the read, and the client retries it on the primary
// instead of accepting stale data.
type Client struct {
	c *Cluster
	// readonly routes reads to replicas when true (the READONLY opt-in).
	readonly bool
	// opts is the read-consistency ladder replica reads run under
	// (linearizable by default; bounded-stale/eventual by opt-in).
	opts core.ReadOpts
}

// Client returns a routing client for the cluster.
func (c *Cluster) Client() *Client { return &Client{c: c} }

// ReadOnlyClient returns a client that opts into replica reads at the
// default (linearizable) consistency: replica reads are served only
// with a freshness proof and otherwise retried on the primary.
func (c *Cluster) ReadOnlyClient() *Client { return &Client{c: c, readonly: true} }

// ReadClient returns a replica-reading client with an explicit
// consistency level (bounded-staleness or eventual opt-ins).
func (c *Cluster) ReadClient(opts core.ReadOpts) *Client {
	return &Client{c: c, readonly: true, opts: opts}
}

// Do executes one command, following up to 3 MOVED redirects.
func (cl *Client) Do(ctx context.Context, args ...string) (resp.Value, error) {
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	return cl.DoArgv(ctx, argv)
}

// DoArgv executes one command given raw argv.
func (cl *Client) DoArgv(ctx context.Context, argv [][]byte) (resp.Value, error) {
	v, _, err := cl.DoArgvOutcome(ctx, argv)
	return v, err
}

// DoArgvOutcome executes one command and additionally reports which
// rung of the read-consistency ladder served it (ReadOutcomePrimary for
// anything that executed on a primary — including REDIRECT retries).
// Linearizability harnesses use the outcome to decide which checker a
// read participates in.
func (cl *Client) DoArgvOutcome(ctx context.Context, argv [][]byte) (resp.Value, core.ReadOutcome, error) {
	sh, err := cl.route(argv)
	if err != nil {
		return resp.Value{}, core.ReadOutcomePrimary, err
	}
	onPrimary := false
	for attempt := 0; ; attempt++ {
		node, err := cl.pick(sh, argv, onPrimary)
		if err != nil {
			return resp.Value{}, core.ReadOutcomePrimary, err
		}
		var v resp.Value
		outcome := core.ReadOutcomePrimary
		if cl.readonly {
			v, outcome, err = node.DoRead(ctx, argv, cl.opts)
		} else {
			v, err = node.Do(ctx, argv)
		}
		if err != nil {
			return resp.Value{}, outcome, err
		}
		if v.IsError() && attempt < 3 {
			if strings.HasPrefix(v.Text(), "MOVED ") {
				// Refresh the route from the redirect and retry.
				if sh2, ok := cl.shardFromMoved(v.Text()); ok {
					sh = sh2
					continue
				}
			}
			if strings.HasPrefix(v.Text(), "REDIRECT") {
				// The replica could not prove freshness: retry on the
				// primary, which serves the read linearizably.
				onPrimary = true
				continue
			}
		}
		return v, outcome, nil
	}
}

// MultiExec runs an atomic transaction (MULTI/EXEC) against the shard
// owning the commands' keys. All keys must hash to one slot.
func (cl *Client) MultiExec(ctx context.Context, cmds [][]string) (resp.Value, error) {
	if len(cmds) == 0 {
		return resp.ArrayV(), nil
	}
	batch := make([][][]byte, len(cmds))
	for i, cmd := range cmds {
		argv := make([][]byte, len(cmd))
		for j, a := range cmd {
			argv[j] = []byte(a)
		}
		batch[i] = argv
	}
	sh, err := cl.route(batch[0])
	if err != nil {
		return resp.Value{}, err
	}
	if cl.readonly {
		// READONLY pipeline: an all-read batch may be served by a
		// replica under the same freshness ladder as single reads
		// (write batches fall through to the primary inside
		// DoBatchRead). A REDIRECT bounce retries on the primary.
		node, err := cl.pick(sh, batch[0], false)
		if err != nil {
			return resp.Value{}, err
		}
		v, _, err := node.DoBatchRead(ctx, batch, cl.opts)
		if err != nil {
			return resp.Value{}, err
		}
		if !core.IsRedirect(v) {
			return v, nil
		}
	}
	p, err := sh.WaitForPrimary(cl.c.Clock(), waitPrimaryTimeout)
	if err != nil {
		return resp.Value{}, err
	}
	return p.DoBatch(ctx, batch)
}

const waitPrimaryTimeout = 5 * time.Second

// route picks the shard owning the command's first key; keyless commands
// go to the first shard.
func (cl *Client) route(argv [][]byte) (*Shard, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("cluster: empty command")
	}
	cmd, ok := engine.LookupCommand(string(argv[0]))
	if ok {
		if keys := cmd.Keys(argv); len(keys) > 0 {
			slot := crc16.Slot(keys[0])
			if sh := cl.c.SlotOwner(slot); sh != nil {
				return sh, nil
			}
			return nil, fmt.Errorf("cluster: slot %d not served", slot)
		}
	}
	shards := cl.c.Shards()
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	return shards[0], nil
}

// pick selects the node to talk to within the shard. forcePrimary skips
// replica spreading after a REDIRECT bounce.
func (cl *Client) pick(sh *Shard, argv [][]byte, forcePrimary bool) (*core.Node, error) {
	if cl.readonly && !forcePrimary {
		if cmd, ok := engine.LookupCommand(string(argv[0])); ok && !cmd.Writes() {
			if reps := sh.Replicas(); len(reps) > 0 {
				// Cheap spread: pick by first key byte so a single hot
				// client still fans out.
				idx := 0
				if len(argv) > 1 && len(argv[1]) > 0 {
					idx = int(argv[1][0]) % len(reps)
				}
				return reps[idx], nil
			}
		}
	}
	return sh.WaitForPrimary(cl.c.Clock(), waitPrimaryTimeout)
}

func (cl *Client) shardFromMoved(msg string) (*Shard, bool) {
	// "MOVED <slot> <endpoint>"; endpoint is a node or shard ID.
	parts := strings.Fields(msg)
	if len(parts) != 3 {
		return nil, false
	}
	for _, sh := range cl.c.Shards() {
		if sh.ID == parts[2] {
			return sh, true
		}
		for _, n := range sh.Nodes() {
			if n.ID() == parts[2] {
				return sh, true
			}
		}
	}
	return nil, false
}
