package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"memorydb/internal/core"
	"memorydb/internal/crc16"
	"memorydb/internal/engine"
	"memorydb/internal/resp"
)

// Client routes commands to the owning shard, exactly as a cluster-aware
// Redis client does: it computes the key slot locally and follows MOVED
// redirects when the mapping changes (paper §2.1).
type Client struct {
	c *Cluster
	// readonly routes reads to replicas when true (the READONLY opt-in).
	readonly bool
}

// Client returns a routing client for the cluster.
func (c *Cluster) Client() *Client { return &Client{c: c} }

// ReadOnlyClient returns a client that opts into replica reads
// (sequentially consistent, §3.2).
func (c *Cluster) ReadOnlyClient() *Client { return &Client{c: c, readonly: true} }

// Do executes one command, following up to 3 MOVED redirects.
func (cl *Client) Do(ctx context.Context, args ...string) (resp.Value, error) {
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	return cl.DoArgv(ctx, argv)
}

// DoArgv executes one command given raw argv.
func (cl *Client) DoArgv(ctx context.Context, argv [][]byte) (resp.Value, error) {
	sh, err := cl.route(argv)
	if err != nil {
		return resp.Value{}, err
	}
	for attempt := 0; ; attempt++ {
		node, err := cl.pick(sh, argv)
		if err != nil {
			return resp.Value{}, err
		}
		var v resp.Value
		if cl.readonly {
			v, err = node.DoReadOnly(ctx, argv)
		} else {
			v, err = node.Do(ctx, argv)
		}
		if err != nil {
			return resp.Value{}, err
		}
		if v.IsError() && strings.HasPrefix(v.Text(), "MOVED ") && attempt < 3 {
			// Refresh the route from the redirect and retry.
			sh2, ok := cl.shardFromMoved(v.Text())
			if ok {
				sh = sh2
				continue
			}
		}
		return v, nil
	}
}

// MultiExec runs an atomic transaction (MULTI/EXEC) against the shard
// owning the commands' keys. All keys must hash to one slot.
func (cl *Client) MultiExec(ctx context.Context, cmds [][]string) (resp.Value, error) {
	if len(cmds) == 0 {
		return resp.ArrayV(), nil
	}
	batch := make([][][]byte, len(cmds))
	for i, cmd := range cmds {
		argv := make([][]byte, len(cmd))
		for j, a := range cmd {
			argv[j] = []byte(a)
		}
		batch[i] = argv
	}
	sh, err := cl.route(batch[0])
	if err != nil {
		return resp.Value{}, err
	}
	p, err := sh.WaitForPrimary(cl.c.Clock(), waitPrimaryTimeout)
	if err != nil {
		return resp.Value{}, err
	}
	return p.DoBatch(ctx, batch)
}

const waitPrimaryTimeout = 5 * time.Second

// route picks the shard owning the command's first key; keyless commands
// go to the first shard.
func (cl *Client) route(argv [][]byte) (*Shard, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("cluster: empty command")
	}
	cmd, ok := engine.LookupCommand(string(argv[0]))
	if ok {
		if keys := cmd.Keys(argv); len(keys) > 0 {
			slot := crc16.Slot(keys[0])
			if sh := cl.c.SlotOwner(slot); sh != nil {
				return sh, nil
			}
			return nil, fmt.Errorf("cluster: slot %d not served", slot)
		}
	}
	shards := cl.c.Shards()
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	return shards[0], nil
}

// pick selects the node to talk to within the shard.
func (cl *Client) pick(sh *Shard, argv [][]byte) (*core.Node, error) {
	if cl.readonly {
		if cmd, ok := engine.LookupCommand(string(argv[0])); ok && !cmd.Writes() {
			if reps := sh.Replicas(); len(reps) > 0 {
				// Cheap spread: pick by first key byte so a single hot
				// client still fans out.
				idx := 0
				if len(argv) > 1 && len(argv[1]) > 0 {
					idx = int(argv[1][0]) % len(reps)
				}
				return reps[idx], nil
			}
		}
	}
	return sh.WaitForPrimary(cl.c.Clock(), waitPrimaryTimeout)
}

func (cl *Client) shardFromMoved(msg string) (*Shard, bool) {
	// "MOVED <slot> <endpoint>"; endpoint is a node or shard ID.
	parts := strings.Fields(msg)
	if len(parts) != 3 {
		return nil, false
	}
	for _, sh := range cl.c.Shards() {
		if sh.ID == parts[2] {
			return sh, true
		}
		for _, n := range sh.Nodes() {
			if n.ID() == parts[2] {
				return sh, true
			}
		}
	}
	return nil, false
}
