package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"memorydb/internal/core"
	"memorydb/internal/faultpoint"
	"memorydb/internal/snapshot"
)

// Snapshot-crash schedules for the forkless checkpointer. Each test kills
// or damages the builder's delta/compaction pipeline at a seeded fault
// site, then proves the cluster-level contract: a killed-and-restarted
// primary restores the exact acknowledged state from the full+delta chain
// plus log replay, with zero trimmed-gap retries — no matter where in the
// chain's production the schedule struck.

// snapshotCrashHarness provisions a crash cluster plus a forkless builder
// wired to the shard's log through its own seeded fault registry.
func snapshotCrashHarness(t *testing.T, deltaInterval uint64, compactEvery int) (
	*Cluster, *snapshot.Manager, *snapshot.Builder, *faultpoint.Registry) {
	t.Helper()
	seed := crashSeed(t)
	c, snaps, _ := crashCluster(t, seed)
	bFaults := faultpoint.New(seed ^ 0xb111)
	b := &snapshot.Builder{
		Manager: snaps, Log: c.Shards()[0].Log, ShardID: c.Shards()[0].ID,
		EngineVersion: 1, DeltaInterval: deltaInterval, CompactEvery: compactEvery,
		Faults: bFaults,
	}
	return c, snaps, b, bFaults
}

// snapSet writes one key through the router and fails the test if the
// write is not acknowledged.
func snapSet(t *testing.T, c *Cluster, k, v string) {
	t.Helper()
	cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if rv, err := c.Client().Do(cctx, "SET", k, v); err != nil || rv.IsError() {
		t.Fatalf("SET %s: %v %v", k, rv, err)
	}
}

// snapRestartPrimary kills the current primary and restarts it, returning
// the restarted node after a primary is routable again.
func snapRestartPrimary(t *testing.T, c *Cluster) *core.Node {
	t.Helper()
	sh := c.Shards()[0]
	p, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(p.ID()); err != nil {
		t.Fatal(err)
	}
	restarted, err := c.Restart(p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return restarted
}

// snapAudit reads every key in want back through the router and checks
// values, then asserts no node ever saw a trimmed gap.
func snapAudit(t *testing.T, c *Cluster, want map[string]string) {
	t.Helper()
	for k, v := range want {
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		got, err := c.Client().Do(cctx, "GET", k)
		cancel()
		if err != nil || got.Text() != v {
			t.Fatalf("GET %s = %q (%v), want %q", k, got.Text(), err, v)
		}
	}
	for _, n := range c.Shards()[0].Nodes() {
		if gaps := n.Stats().LogGapRetries.Load(); gaps != 0 {
			t.Errorf("node %s hit %d trimmed-gap retries", n.ID(), gaps)
		}
	}
}

// TestSnapshotCrashMidDelta: the builder dies at snapshot.delta.build with
// a serialized delta in hand but nothing uploaded. The chain in S3 is
// untouched, the next tick re-bootstraps from it, and a primary restart
// restores every acknowledged write.
func TestSnapshotCrashMidDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	c, snaps, b, bFaults := snapshotCrashHarness(t, 4, 100)
	ctx := context.Background()
	want := map[string]string{}
	fill := func(tag string, n int) {
		for i := 0; i < n; i++ {
			k, v := fmt.Sprintf("md-%s-%d", tag, i), tag
			snapSet(t, c, k, v)
			want[k] = v
		}
	}

	fill("base", 4)
	if err := b.Tick(ctx); err != nil { // bootstrap full snapshot
		t.Fatal(err)
	}
	if snaps.Health().Compactions.Load() != 1 {
		t.Fatal("setup: no base full snapshot emitted")
	}

	fill("crash", 4)
	bFaults.Arm(faultpoint.SiteDeltaBuild, faultpoint.Crash, 0)
	if err := b.Tick(ctx); !errors.Is(err, snapshot.ErrBuilderCrashed) {
		t.Fatalf("tick with armed delta-build crash returned %v, want ErrBuilderCrashed", err)
	}
	if b.Stats().Rebootstraps != 1 {
		t.Fatalf("Rebootstraps = %d after crash, want 1", b.Stats().Rebootstraps)
	}
	// The crash uploaded nothing: the chain still ends at the base full.
	if got := snaps.Health().DeltasEmitted.Load(); got != 0 {
		t.Fatalf("crashed delta was counted as emitted (%d)", got)
	}

	// Recovery: the next tick rebuilds the materialized copy from the
	// chain, re-drains the lost suffix, and lands the delta.
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := snaps.Health().DeltasEmitted.Load(); got != 1 {
		t.Fatalf("DeltasEmitted = %d after recovery tick, want 1", got)
	}

	fill("post", 2)
	restarted := snapRestartPrimary(t, c)
	snapAudit(t, c, want)
	if restarted.Stats().SnapshotRestores.Load() == 0 {
		t.Fatal("restarted primary never restored from the snapshot chain")
	}
}

// TestSnapshotCrashMidCompaction: the builder dies at snapshot.compact
// with the replacement full snapshot serialized but not uploaded. The old
// full+delta chain stays authoritative, restores keep working off it, and
// the retried compaction lands on the next cadence.
func TestSnapshotCrashMidCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	c, snaps, b, bFaults := snapshotCrashHarness(t, 3, 1)
	ctx := context.Background()
	want := map[string]string{}
	fill := func(tag string, n int) {
		for i := 0; i < n; i++ {
			k, v := fmt.Sprintf("mc-%s-%d", tag, i), tag
			snapSet(t, c, k, v)
			want[k] = v
		}
	}

	fill("base", 3)
	if err := b.Tick(ctx); err != nil { // bootstrap full
		t.Fatal(err)
	}
	fill("delta", 3)
	if err := b.Tick(ctx); err != nil { // delta 1 (CompactEvery=1 → next emit compacts)
		t.Fatal(err)
	}
	if snaps.Health().DeltasEmitted.Load() != 1 {
		t.Fatal("setup: chain has no delta to compact")
	}

	fill("crash", 3)
	bFaults.Arm(faultpoint.SiteCompact, faultpoint.Crash, 0)
	if err := b.Tick(ctx); !errors.Is(err, snapshot.ErrBuilderCrashed) {
		t.Fatalf("tick with armed compact crash returned %v, want ErrBuilderCrashed", err)
	}
	// The old chain survived the failed compaction: full + 1 delta.
	if _, chain, _, ok, err := snaps.LatestUsableChain(c.Shards()[0].ID); err != nil || !ok || chain.Depth != 1 {
		t.Fatalf("chain after compact crash: ok=%v depth=%d err=%v, want intact depth 1",
			ok, chain.Depth, err)
	}

	// A restart in this window restores through the *old* chain.
	restarted := snapRestartPrimary(t, c)
	snapAudit(t, c, want)
	if restarted.Stats().SnapshotRestores.Load() == 0 {
		t.Fatal("restarted primary never restored from the pre-compaction chain")
	}

	// The re-bootstrapped builder completes the compaction it died in.
	before := snaps.Health().Compactions.Load()
	fill("retry", 3)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && snaps.Health().Compactions.Load() == before {
		if err := b.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		fill(fmt.Sprintf("pad%d", time.Now().UnixNano()%1000), 1)
	}
	if snaps.Health().Compactions.Load() == before {
		t.Fatal("compaction never completed after the crash")
	}
	snapAudit(t, c, want)
}

// TestSnapshotCrashCorruptDeltaFallback: silent bit rot inside a chain
// link (injected at snapshot.delta.build, so the corrupt delta uploads
// "successfully" and gains a good-looking child). Restore must detect the
// rotten link by checksum, quarantine it, fall back to the longest intact
// prefix — the base full snapshot — and recover the rest by log replay.
func TestSnapshotCrashCorruptDeltaFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	c, snaps, b, bFaults := snapshotCrashHarness(t, 3, 100)
	ctx := context.Background()
	want := map[string]string{}
	fill := func(tag string, n int) {
		for i := 0; i < n; i++ {
			k, v := fmt.Sprintf("cd-%s-%d", tag, i), tag
			snapSet(t, c, k, v)
			want[k] = v
		}
	}

	fill("base", 3)
	if err := b.Tick(ctx); err != nil { // full
		t.Fatal(err)
	}
	fill("rot", 3)
	bFaults.Arm(faultpoint.SiteDeltaBuild, faultpoint.Corrupt, 0)
	if err := b.Tick(ctx); err != nil { // delta 1: bit-rotted, silently uploaded
		t.Fatal(err)
	}
	fill("child", 3)
	if err := b.Tick(ctx); err != nil { // delta 2: intact, but its parent is rotten
		t.Fatal(err)
	}
	if snaps.Health().DeltasEmitted.Load() != 2 {
		t.Fatal("setup: expected two deltas on the chain")
	}

	tornBefore := snaps.TornDetected()
	restarted := snapRestartPrimary(t, c)
	snapAudit(t, c, want)
	if got := snaps.TornDetected(); got <= tornBefore {
		t.Fatalf("TornDetected = %d, want > %d (rotten link quarantined during restore)", got, tornBefore)
	}
	// The fallback surfaced on the restarted node's own counters too: it
	// had to skip the intact-but-orphaned tip delta.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && restarted.Stats().TornSnapshotsDetected.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if restarted.Stats().TornSnapshotsDetected.Load() == 0 {
		t.Fatal("restarted primary never counted the damaged chain it fell back past")
	}
}

// TestSnapshotCrashDeepChainRestore: a long full+delta chain (including
// deletions) with the log trimmed up to the chain base — restore has no
// choice but to walk the whole chain, apply every delta in order
// (tombstones included), and replay only the suffix above the tip.
func TestSnapshotCrashDeepChainRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	c, snaps, b, _ := snapshotCrashHarness(t, 4, 100)
	sh := c.Shards()[0]
	ctx := context.Background()
	want := map[string]string{}
	deleted := make([]string, 0, 8)

	// Prelude: push the chain base past at least one sealed segment
	// (crashCluster seals every 16 entries) so the trim leg below has
	// whole segments to drop beneath the base.
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("deep-pre-%d", i)
		snapSet(t, c, k, "pre")
		want[k] = "pre"
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			k, v := fmt.Sprintf("deep-%d-%d", round, i), fmt.Sprintf("r%d", round)
			snapSet(t, c, k, v)
			want[k] = v
		}
		if round > 0 {
			// Delete one key from an earlier round so deep deltas carry
			// tombstones that must not be resurrected by the base image.
			victim := fmt.Sprintf("deep-%d-0", round-1)
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if rv, err := c.Client().Do(cctx, "DEL", victim); err != nil || rv.IsError() {
				t.Fatalf("DEL %s: %v %v", victim, rv, err)
			}
			cancel()
			delete(want, victim)
			deleted = append(deleted, victim)
		}
		if err := b.Tick(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	_, chain, _, ok, err := snaps.LatestUsableChain(sh.ID)
	if err != nil || !ok {
		t.Fatalf("chain: ok=%v err=%v", ok, err)
	}
	if chain.Depth < 5 {
		t.Fatalf("chain depth %d, want >= 5 (deep-chain schedule)", chain.Depth)
	}

	// Trim everything the chain base covers: the restore below cannot
	// substitute log replay for the chain prefix.
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	trimmer.Tick()
	if trimmed, _ := trimmer.Stats(); trimmed == 0 {
		t.Fatal("setup: nothing trimmed below the chain base")
	}

	restarted := snapRestartPrimary(t, c)
	snapAudit(t, c, want)
	for _, k := range deleted {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		v, err := c.Client().Do(cctx, "GET", k)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !v.Null {
			t.Fatalf("deleted key %s resurrected by deep-chain restore (= %q)", k, v.Text())
		}
	}
	if restarted.Stats().SnapshotRestores.Load() == 0 {
		t.Fatal("restarted primary never restored from the chain")
	}
	if b.Stats().Rebootstraps != 0 {
		t.Fatalf("builder re-bootstrapped %d times — trim passed its own chain base", b.Stats().Rebootstraps)
	}
}
