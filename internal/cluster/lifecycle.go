package cluster

import (
	"fmt"

	"memorydb/internal/core"
	"memorydb/internal/trace"
)

// Crash lifecycle. ReplaceNode models the control plane's deliberate
// recovery action: a clean terminate followed by a fresh provision. The
// operations here model the *un*planned version — a process killed at an
// arbitrary instruction with no cleanup — and the two ways history can
// continue afterwards:
//
//   - Restart: a replacement process comes up under the same identity and
//     rebuilds exclusively from durable sources (S3 snapshot + log
//     suffix), never from the dead process's memory.
//   - Resurrect: the "dead" process was only stalled (GC pause, network
//     partition healing, VM migration) and resumes with all its stale
//     beliefs intact — the zombie primary the log's conditional-append
//     fencing and expired lease must neutralize (§4.1.3).

// findNode locates nodeID and its shard.
func (c *Cluster) findNode(nodeID string) (*Shard, *core.Node, bool) {
	for _, sh := range c.Shards() {
		for _, n := range sh.Nodes() {
			if n.ID() == nodeID {
				return sh, n, true
			}
		}
	}
	return nil, nil, false
}

// Kill crash-freezes nodeID: every goroutine of the node parks at its
// next crash gate with no cleanup, no replies, and any in-flight appends
// left in limbo. The node stays in the shard's member list (the control
// plane doesn't instantly know a process died) but is skipped by routing.
func (c *Cluster) Kill(nodeID string) error {
	_, n, ok := c.findNode(nodeID)
	if !ok {
		return fmt.Errorf("cluster: no node %q", nodeID)
	}
	if n.Stopped() {
		return fmt.Errorf("cluster: node %q already terminated", nodeID)
	}
	c.nodeFlight(nodeID).Record(trace.EvKill, 0, "process crash-frozen by nemesis")
	n.Freeze()
	return nil
}

// Restart replaces a killed node with a fresh process under the same
// identity (ID and AZ). The dead incarnation is torn down — Stop unblocks
// its parked goroutines, which unwind without side effects — and the
// replacement resyncs from the latest usable S3 snapshot plus the
// transaction-log suffix, exactly like any recovering node (§4.2.1). The
// killed process's memory contributes nothing.
func (c *Cluster) Restart(nodeID string) (*core.Node, error) {
	sh, n, ok := c.findNode(nodeID)
	if !ok {
		return nil, fmt.Errorf("cluster: no node %q", nodeID)
	}
	if !n.Frozen() && !n.Stopped() {
		return nil, fmt.Errorf("cluster: node %q is alive; Kill it first", nodeID)
	}
	az := n.AZ()
	c.nodeFlight(nodeID).Record(trace.EvRestart, 0, "replacement process provisioned under same identity")
	n.Stop()
	sh.mu.Lock()
	for i, m := range sh.nodes {
		if m == n {
			sh.nodes = append(sh.nodes[:i], sh.nodes[i+1:]...)
			break
		}
	}
	sh.mu.Unlock()
	return c.addNodeAs(sh, nodeID, az)
}

// Resurrect thaws a killed node in place: the zombie case. The process
// resumes exactly where it froze — possibly mid-append, holding a lease
// that expired while it was dead — and must be fenced by the log's
// conditional append before it can acknowledge anything.
func (c *Cluster) Resurrect(nodeID string) error {
	_, n, ok := c.findNode(nodeID)
	if !ok {
		return fmt.Errorf("cluster: no node %q", nodeID)
	}
	if n.Stopped() {
		return fmt.Errorf("cluster: node %q was terminated, not frozen", nodeID)
	}
	c.nodeFlight(nodeID).Record(trace.EvResurrect, 0, "frozen process thawed in place (zombie)")
	n.Thaw()
	return nil
}
