package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/faultpoint"
	"memorydb/internal/lin"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// Crash-restart recovery harness (tentpole). Where chaos_test.go fails
// the *log service's* AZ replicas, these schedules kill *nodes*: a
// seedable fault site freezes a process at an exact instruction on the
// write path (mid-append, mid-flush, inside the committed-but-unacked
// window), and the harness then either restarts it — a fresh process
// that must rebuild purely from S3 + the log — or resurrects it as a
// zombie that must be fenced. The invariants checked are the paper's
// §5–§7.2.1 claims: zero acknowledged writes lost, linearizable
// histories, zombies never acknowledge post-fencing writes, and torn or
// corrupt snapshots never block recovery.

// crashSeed returns the seed the crash schedule runs under. The CI gate
// (scripts/check.sh) runs the CrashRestart tests at two fixed seeds via
// MEMORYDB_CRASH_SEED so node-death regressions reproduce exactly.
func crashSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("MEMORYDB_CRASH_SEED")
	if s == "" {
		return 7
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad MEMORYDB_CRASH_SEED %q: %v", s, err)
	}
	return v
}

// crashCluster provisions a 1-shard, 3-node cluster with per-node fault
// registries enabled, plus its snapshot manager and the log service's own
// fault registry (the txlog.* sites — seal, trim, corrupt-record — live on
// the shared service, not on any node). Segments are kept small so every
// schedule rotates, seals and can trim.
func crashCluster(t *testing.T, seed int64) (*Cluster, *snapshot.Manager, *faultpoint.Registry) {
	t.Helper()
	svcFaults := faultpoint.New(seed ^ 0x109)
	svc := txlog.NewService(txlog.Config{
		Clock:          clock.NewReal(),
		CommitLatency:  netsim.NewUniform(100*time.Microsecond, time.Millisecond, seed),
		Seed:           seed,
		SegmentEntries: 16,
		Faults:         svcFaults,
	})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "crash", NumShards: 1, ReplicasPerShard: 2,
		LogService: svc, Snapshots: snaps,
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		ChecksumEvery: 16, RetrySeed: seed,
		Faults: true, FaultSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	dumpTimelineOnFailure(t, c)
	if _, err := c.Shards()[0].WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return c, snaps, svcFaults
}

// nodeDo issues a raw command directly at one node (bypassing routing),
// the way the harness pokes zombies.
func nodeDo(ctx context.Context, c *Cluster, nodeID string, args ...string) (isOK bool, isErr bool, err error) {
	_, n, ok := c.findNode(nodeID)
	if !ok {
		return false, false, fmt.Errorf("no node %q", nodeID)
	}
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	v, err := n.Do(ctx, argv)
	if err != nil {
		return false, false, err
	}
	return strings.EqualFold(v.Text(), "OK"), v.IsError(), nil
}

// waitFrozen polls until nodeID crash-freezes (its armed fault fired) or
// the deadline passes; reports whether it froze.
func waitFrozen(c *Cluster, nodeID string, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if _, n, ok := c.findNode(nodeID); ok && n.Frozen() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// TestCrashRestartRecovery is the randomized fixed-seed schedule: while
// paced clients run a lin-recorded SET/GET workload, the schedule
// repeatedly crashes the primary at a rotating fault site and recovers it
// by restart (fresh process, resync from durables) or resurrection
// (zombie, must be fenced); it then injects corrupt and torn snapshots
// and restarts the primary through them. At the end: every registered
// fault site was hit, every acknowledged write survived, the history is
// linearizable, and no zombie acknowledged a post-fencing write.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, svcFaults := crashCluster(t, seed)
	sh := c.Shards()[0]
	initialIDs := make([]string, 0, 3)
	for _, n := range sh.Nodes() {
		initialIDs = append(initialIDs, n.ID())
	}

	// Workload: lin-recorded, acked-write-tracked SET/GET clients.
	rec := lin.NewRecorder()
	var ackMu sync.Mutex
	acked := make(map[string]bool)             // keys with ≥1 acknowledged SET
	issued := make(map[string]map[string]bool) // key → every value ever sent
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(clientID int) {
			defer writers.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: seed + int64(clientID), Keys: 64, WriteRatio: 0.5})
			client := c.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(5 * time.Millisecond)
				key, in, args := gen.Next(clientID*1000000 + i)
				if in.Kind == "set" {
					ackMu.Lock()
					if issued[key] == nil {
						issued[key] = make(map[string]bool)
					}
					issued[key][in.Value] = true
					ackMu.Unlock()
				}
				cctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
				call := rec.Invoke()
				v, err := client.Do(cctx, args...)
				cancel()
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				} else {
					if in.Kind == "get" {
						out.Value = v.Text()
					} else {
						ackMu.Lock()
						acked[key] = true
						ackMu.Unlock()
					}
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(w)
	}

	// Crash storm: rotate the crash site across every core fault site so
	// each one kills a primary at least once per seed; recover by restart
	// or resurrection per the seeded coin.
	rng := rand.New(rand.NewSource(seed))
	coreSites := []string{
		faultpoint.SiteAppendPre, faultpoint.SiteAppendPost,
		faultpoint.SiteFlushPre, faultpoint.SiteFlushPost,
		faultpoint.SiteTrackerRelease, faultpoint.SiteRenew,
	}
	kills, restarts, zombies := 0, 0, 0
	for round := 0; round < len(coreSites); round++ {
		p, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pid := p.ID()
		c.NodeFaults(pid).Arm(coreSites[round], faultpoint.Crash, rng.Intn(3))
		if !waitFrozen(c, pid, 3*time.Second) {
			// Site not reached in time (e.g. the node demoted first); the
			// armed fault stays live for this identity and fires later.
			continue
		}
		kills++
		// A killed primary must be replaced by election: wait for a
		// different node to take over before deciding recovery.
		np, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
		if err != nil {
			t.Fatalf("round %d: no failover after killing %s: %v", round, pid, err)
		}
		if np.ID() == pid {
			t.Fatalf("round %d: frozen node %s still routed as primary", round, pid)
		}
		if rng.Intn(2) == 0 {
			if _, err := c.Restart(pid); err != nil {
				t.Fatalf("round %d: restart %s: %v", round, pid, err)
			}
			restarts++
		} else {
			if err := c.Resurrect(pid); err != nil {
				t.Fatalf("round %d: resurrect %s: %v", round, pid, err)
			}
			zombies++
			// The zombie's lease expired while it was dead (freeze span ≥
			// backoff > lease): a write aimed straight at it must never be
			// acknowledged.
			zctx, zcancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			isOK, _, _ := nodeDo(zctx, c, pid, "SET", "zombie-probe", fmt.Sprintf("r%d", round))
			zcancel()
			if isOK {
				t.Fatalf("round %d: zombie %s acknowledged a post-fencing write", round, pid)
			}
		}
	}

	// Snapshot leg: a good snapshot, then a bit-rotted build, then a torn
	// upload — each at a fresh log position — and a primary restart that
	// must fall back through the damaged versions.
	obFaults := faultpoint.New(seed ^ 0x5eed)
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1, Faults: obFaults}
	ctx := context.Background()
	client := c.Client()
	advance := func(tag string) {
		for i := 0; i < 4; i++ {
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			client.Do(cctx, "SET", fmt.Sprintf("snapleg-%s-%d", tag, i), tag)
			cancel()
		}
	}
	advance("good")
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("good offbox run: %v", err)
	}
	advance("rot")
	obFaults.Arm(faultpoint.SiteSnapBuild, faultpoint.Corrupt, 0)
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("corrupt-build offbox run: %v", err)
	}
	advance("torn")
	obFaults.Arm(faultpoint.SiteSnapUpload, faultpoint.Corrupt, 0)
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("torn-upload offbox run: %v", err)
	}
	p, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(p.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(p.ID()); err != nil {
		t.Fatal(err)
	}

	// Builder leg: the forkless checkpointer tails the same log through
	// the off-box fault registry. An armed crash kills it mid-delta (its
	// materialized copy dies; the next tick re-bootstraps from the durable
	// chain), then enough cadences run to emit deltas and a chain-resetting
	// compaction — touching every snapshot.delta.*/snapshot.compact/
	// builder.lag site under this seed.
	builder := &snapshot.Builder{
		Manager: snaps, Log: sh.Log, ShardID: sh.ID, EngineVersion: 1,
		DeltaInterval: 4, CompactEvery: 2, Faults: obFaults,
	}
	obFaults.Arm(faultpoint.SiteDeltaUpload, faultpoint.Crash, 0)
	builderCrashed := false
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline) &&
		snaps.Health().Compactions.Load() == 0; {
		advance("builder")
		if err := builder.Tick(ctx); errors.Is(err, snapshot.ErrBuilderCrashed) {
			builderCrashed = true
		}
	}
	if !builderCrashed {
		t.Fatal("armed delta-upload crash never fired on the builder")
	}
	if builder.Stats().Rebootstraps == 0 {
		t.Fatal("crashed builder never re-bootstrapped from the durable chain")
	}
	if snaps.Health().DeltasEmitted.Load() == 0 || snaps.Health().Compactions.Load() == 0 {
		t.Fatalf("builder leg produced %d deltas, %d compactions — want both nonzero",
			snaps.Health().DeltasEmitted.Load(), snaps.Health().Compactions.Load())
	}

	// Trim leg: with a verified snapshot in the store, the coordinator may
	// drop every sealed segment it covers — exercising txlog.trim.* and
	// forcing any tailer still below the base through the re-bootstrap
	// path rather than a demotion.
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	trimmer.Tick()
	if trimmed, _ := trimmer.Stats(); trimmed == 0 {
		t.Error("trim leg dropped no segments — segment threshold too large for the workload?")
	}

	close(stop)
	writers.Wait()

	// Settle: restart anything still frozen, then require a primary.
	for _, n := range sh.Nodes() {
		if n.Frozen() {
			if _, err := c.Restart(n.ID()); err != nil {
				t.Fatalf("settling restart %s: %v", n.ID(), err)
			}
		}
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// (1) Schedule actually exercised node death, both recovery paths
	// represented across the two CI seeds by construction of the coin.
	if kills < 3 {
		t.Fatalf("schedule too tame: only %d crash-kills landed", kills)
	}
	t.Logf("storm: %d kills (%d restarts, %d zombies)", kills, restarts, zombies)

	// (2) Torn/corrupt snapshots were detected and skipped, not fatal:
	// the restarted primary recovered (we have a primary serving) and the
	// skip counter saw both damaged versions.
	if torn := snaps.TornDetected(); torn < 2 {
		t.Fatalf("TornDetected = %d, want >= 2 (bit-rot + torn upload)", torn)
	}

	// (3) Every registered fault site was hit at least once under this
	// seed: core sites across the per-node registries, snapshot sites on
	// the off-box registry, txlog sites (seal/trim/corrupt-record) on the
	// shared log service's registry.
	for _, site := range faultpoint.AllSites() {
		var hits int64
		for _, id := range initialIDs {
			hits += c.NodeFaults(id).Hits(site)
		}
		hits += obFaults.Hits(site)
		hits += svcFaults.Hits(site)
		if hits == 0 {
			t.Errorf("fault site %s never exercised", site)
		}
	}

	// (4) Zero acknowledged writes lost: every key with an acknowledged
	// SET must read back one of the values that was actually issued for
	// it (never nil, never garbage).
	ackMu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	ackMu.Unlock()
	if len(keys) == 0 {
		t.Fatal("no writes were acknowledged during the storm")
	}
	lost := 0
	for _, k := range keys {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		v, err := client.Do(cctx, "GET", k)
		cancel()
		if err != nil || v.Null || v.IsError() {
			lost++
			t.Errorf("acknowledged key %s lost: %v %v", k, v, err)
			continue
		}
		if !issued[k][v.Text()] {
			t.Errorf("key %s holds %q, a value never issued for it", k, v.Text())
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d acknowledged keys lost across crash-restarts", lost, len(keys))
	}

	// (5) The full concurrent history is linearizable.
	history := rec.History()
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("crash-restart history not linearizable (key %s, %d ops)", badKey, len(history))
	}

	// (6) The trim coordinator never violated its safety invariant: no
	// node ever found the log trimmed past the newest usable snapshot.
	for _, n := range sh.Nodes() {
		if gaps := n.Stats().LogGapRetries.Load(); gaps != 0 {
			t.Errorf("node %s hit %d trimmed-gap retries — trim coordinator unsafe", n.ID(), gaps)
		}
	}
	t.Logf("crash harness: %d ops, %d acked keys intact, %d torn snapshots skipped",
		len(history), len(keys), snaps.TornDetected())
}

// TestCrashRestartDurableUnacknowledged pins down the nastiest window: a
// primary killed after its batch reached quorum but before any reply was
// released. The client sees a timeout (ambiguous), yet the entry is
// durable — so after a restart the write MUST be present: durability is
// decided by the log, not by whether the dead process got to say "OK".
func TestCrashRestartDurableUnacknowledged(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, _, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	p, err := sh.WaitForPrimary(c.Clock(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	client := c.Client()

	// Arm: crash inside the committed-but-unacknowledged window.
	c.NodeFaults(p.ID()).Arm(faultpoint.SiteFlushPost, faultpoint.Crash, 0)
	cctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	v, err := client.Do(cctx, "SET", "durable-unacked", "v1")
	cancel()
	if err == nil && !v.IsError() && strings.EqualFold(v.Text(), "OK") {
		t.Fatal("write was acknowledged despite the primary dying pre-release")
	}
	if !waitFrozen(c, p.ID(), 2*time.Second) {
		t.Fatalf("primary %s never hit the armed flush.post crash", p.ID())
	}
	if _, err := c.Restart(p.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	gctx, gcancel := context.WithTimeout(context.Background(), 2*time.Second)
	got, err := client.Do(gctx, "GET", "durable-unacked")
	gcancel()
	if err != nil {
		t.Fatal(err)
	}
	if got.Text() != "v1" {
		t.Fatalf("durable-but-unacknowledged write lost: GET = %q, want %q", got.Text(), "v1")
	}
}

// TestCrashRestartZombieFencing is the deterministic zombie schedule: the
// primary is killed, a successor is elected and takes writes, then the
// old primary resumes in place with all its stale beliefs. It must never
// acknowledge a write, and the successor's data must win.
func TestCrashRestartZombieFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, _, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()

	p1, err := sh.WaitForPrimary(c.Clock(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	if v, err := client.Do(cctx, "SET", "fence-k", "v1"); err != nil || v.IsError() {
		t.Fatalf("seed write: %v %v", v, err)
	}
	cancel()

	if err := c.Kill(p1.ID()); err != nil {
		t.Fatal(err)
	}
	p2, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ID() == p1.ID() {
		t.Fatalf("frozen primary %s still routed", p1.ID())
	}
	cctx, cancel = context.WithTimeout(ctx, 2*time.Second)
	if v, err := client.Do(cctx, "SET", "fence-k", "v2"); err != nil || v.IsError() {
		t.Fatalf("post-failover write: %v %v", v, err)
	}
	cancel()

	// Wake the zombie. Its lease expired at least a full backoff ago; any
	// direct write must be rejected (or time out), never acknowledged.
	if err := c.Resurrect(p1.ID()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		zctx, zcancel := context.WithTimeout(ctx, 200*time.Millisecond)
		isOK, _, _ := nodeDo(zctx, c, p1.ID(), "SET", "fence-k", "zombie")
		zcancel()
		if isOK {
			t.Fatalf("zombie %s acknowledged write %d after fencing", p1.ID(), i)
		}
	}
	// The shard's data is the successor's view.
	gctx, gcancel := context.WithTimeout(ctx, 2*time.Second)
	got, err := client.Do(gctx, "GET", "fence-k")
	gcancel()
	if err != nil || got.Text() != "v2" {
		t.Fatalf("GET fence-k = %q (%v), want v2", got.Text(), err)
	}
	// The zombie must have stepped down (demotion-by-fencing or expired
	// lease), not kept believing.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if p1.Stats().Demotions.Load() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("resurrected zombie %s never demoted", p1.ID())
}

// TestCrashRestartTornSnapshotFallback drives the §7.2.1 restore gates:
// with a good snapshot buried under a bit-rotted one and a torn one, a
// killed-and-restarted primary must skip the damaged versions (counting
// them) and recover everything from the good snapshot plus log replay.
func TestCrashRestartTornSnapshotFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()

	set := func(k, v string) {
		t.Helper()
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		if rv, err := client.Do(cctx, "SET", k, v); err != nil || rv.IsError() {
			t.Fatalf("SET %s: %v %v", k, rv, err)
		}
	}

	obFaults := faultpoint.New(seed)
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1, Faults: obFaults}

	set("torn-a", "1")
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("good run: %v", err)
	}
	set("torn-b", "2")
	obFaults.Arm(faultpoint.SiteSnapBuild, faultpoint.Corrupt, 0)
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("bit-rot run: %v", err)
	}
	set("torn-c", "3")
	obFaults.Arm(faultpoint.SiteSnapUpload, faultpoint.Corrupt, 0)
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("torn run: %v", err)
	}

	p, err := sh.WaitForPrimary(c.Clock(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(p.ID()); err != nil {
		t.Fatal(err)
	}
	restarted, err := c.Restart(p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The restarted node's bootstrap resync walked past both damaged
	// versions; give its role loop a moment to finish the restore.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && restarted.Stats().TornSnapshotsDetected.Load() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := restarted.Stats().TornSnapshotsDetected.Load(); got < 2 {
		t.Fatalf("restarted node TornSnapshotsDetected = %d, want >= 2", got)
	}
	for k, want := range map[string]string{"torn-a": "1", "torn-b": "2", "torn-c": "3"} {
		gctx, gcancel := context.WithTimeout(ctx, 2*time.Second)
		v, err := client.Do(gctx, "GET", k)
		gcancel()
		if err != nil || v.Text() != want {
			t.Fatalf("after torn-snapshot recovery GET %s = %q (%v), want %q", k, v.Text(), err, want)
		}
	}
	// The INFO surface reports the skips.
	ictx, icancel := context.WithTimeout(ctx, 2*time.Second)
	info, err := client.Do(ictx, "INFO")
	icancel()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Text(), "torn_snapshots_detected:") {
		t.Fatal("INFO missing torn_snapshots_detected under # Robustness")
	}
}

// TestCrashRestartSchedulerQuarantine: a verification-enabled scheduler
// that produces a corrupt snapshot must quarantine it (delete, so no
// restore can use it) and page through the monitor's alarm channel.
func TestCrashRestartSchedulerQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		if v, err := client.Do(cctx, "SET", fmt.Sprintf("q%d", i), "x"); err != nil || v.IsError() {
			t.Fatalf("SET q%d: %v %v", i, v, err)
		}
		cancel()
	}

	obFaults := faultpoint.New(seed)
	obFaults.Arm(faultpoint.SiteSnapBuild, faultpoint.Corrupt, 0)
	mon := &Monitor{Cluster: c}
	sched := &snapshot.Scheduler{
		Policy:  snapshot.Policy{MaxLogDistance: 1},
		Offbox:  &snapshot.Offbox{Manager: snaps, EngineVersion: 1, Faults: obFaults},
		Verify:  true,
		AlarmFn: mon.RaiseAlarm,
	}
	sched.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	sched.Tick(ctx)

	created, verified, failures := sched.Stats()
	if created != 1 || verified != 0 || failures == 0 {
		t.Fatalf("scheduler stats = (%d created, %d verified, %d failures), want (1, 0, >0)",
			created, verified, failures)
	}
	alarms := mon.Alarms()
	if len(alarms) == 0 || !strings.Contains(alarms[0], "verification failed") {
		t.Fatalf("no verification alarm raised: %v", alarms)
	}
	// Quarantined: the corrupt version is gone, so a restore sees a clean
	// (empty) snapshot store and replays the log — never the bad bytes.
	if _, _, skipped, ok, err := snaps.LatestUsable(sh.ID); err != nil || ok || skipped != 0 {
		t.Fatalf("corrupt snapshot not quarantined: skipped=%d ok=%v err=%v", skipped, ok, err)
	}
}

// TestCrashRestartMidSealTrimStorm turns the segment lifecycle itself into
// the fault surface: while paced writers run and primaries are killed and
// restarted, every seal and trim attempt has a seeded chance of erroring
// or stalling (txlog.seal.pre / txlog.trim.pre). Deferred lifecycle steps
// must retry to completion once the faults clear, acknowledged writes must
// survive, and the trim coordinator must never create a gap a tailer can
// fall into.
func TestCrashRestartMidSealTrimStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, svcFaults := crashCluster(t, seed)
	sh := c.Shards()[0]
	ctx := context.Background()
	client := c.Client()

	// Every seal/trim attempt errors or stalls with probability 0.3 for
	// the duration of the storm.
	svcFaults.SetPlan(faultpoint.SiteLogSealPre, 0.3, 2*time.Millisecond, faultpoint.Error, faultpoint.Delay)
	svcFaults.SetPlan(faultpoint.SiteLogTrimPre, 0.3, 2*time.Millisecond, faultpoint.Error, faultpoint.Delay)

	// Unique-key writers: an acknowledged key maps to exactly one value,
	// so the post-storm audit is exact.
	var ackMu sync.Mutex
	acked := make(map[string]string)
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			cl := c.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(3 * time.Millisecond)
				k := fmt.Sprintf("storm-%d-%d", id, i)
				v := fmt.Sprintf("v%d", i)
				cctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
				rv, err := cl.Do(cctx, "SET", k, v)
				cancel()
				if err == nil && !rv.IsError() {
					ackMu.Lock()
					acked[k] = v
					ackMu.Unlock()
				}
			}
		}(w)
	}

	// Storm: snapshot + trim every round so the coordinator runs against
	// the faulty lifecycle, with two primary kill/restart cycles in the
	// middle of it.
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1}
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	for round := 0; round < 6; round++ {
		time.Sleep(120 * time.Millisecond)
		if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
			t.Fatalf("round %d offbox run: %v", round, err)
		}
		trimmer.Tick()
		if round == 1 || round == 3 {
			p, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if err := c.Kill(p.ID()); err != nil {
				t.Fatal(err)
			}
			np, err := sh.WaitForPrimary(c.Clock(), 5*time.Second)
			if err != nil {
				t.Fatalf("round %d: no failover after killing %s: %v", round, p.ID(), err)
			}
			if np.ID() == p.ID() {
				t.Fatalf("round %d: frozen node %s still routed as primary", round, p.ID())
			}
			if _, err := c.Restart(p.ID()); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	writers.Wait()
	svcFaults.SetPlan(faultpoint.SiteLogSealPre, 0, 0)
	svcFaults.SetPlan(faultpoint.SiteLogTrimPre, 0, 0)
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	set := func(k, v string) {
		t.Helper()
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		if rv, err := client.Do(cctx, "SET", k, v); err != nil || rv.IsError() {
			t.Fatalf("SET %s: %v %v", k, rv, err)
		}
	}

	// Deterministic deferred-seal leg: the next seal attempt errors, the
	// rotation that follows must still end with the segment sealed by a
	// later retry.
	svcFaults.Arm(faultpoint.SiteLogSealPre, faultpoint.Error, 0)
	for i := 0; i < 20; i++ {
		set(fmt.Sprintf("sealpoke-%d", i), "x")
	}

	// Deterministic deferred-trim leg: an armed error aborts the whole
	// Trim call with no state change.
	base := sh.Log.TrimBase()
	svcFaults.Arm(faultpoint.SiteLogTrimPre, faultpoint.Error, 0)
	if n := sh.Log.Trim(sh.Log.CommittedTail()); n != 0 {
		t.Fatalf("trim with armed error dropped %d segments", n)
	}
	if got := sh.Log.TrimBase(); got != base {
		t.Fatalf("deferred trim moved the base: %v -> %v", base, got)
	}

	// Once the faults clear, one clean snapshot+trim pass catches up.
	if _, err := ob.Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatalf("final offbox run: %v", err)
	}
	trimmer.Tick()

	st := sh.Log.SegmentStats()
	if st.Sealed == 0 || st.Trimmed == 0 {
		t.Fatalf("lifecycle never completed under faults: sealed=%d trimmed=%d", st.Sealed, st.Trimmed)
	}
	if st.SealsDeferred == 0 || st.TrimsDeferred == 0 {
		t.Fatalf("fault plan never deferred a lifecycle step: sealsDeferred=%d trimsDeferred=%d",
			st.SealsDeferred, st.TrimsDeferred)
	}

	// Zero acknowledged writes lost through the deferred-lifecycle storm.
	ackMu.Lock()
	keys := make(map[string]string, len(acked))
	for k, v := range acked {
		keys[k] = v
	}
	ackMu.Unlock()
	if len(keys) == 0 {
		t.Fatal("no writes were acknowledged during the storm")
	}
	for k, want := range keys {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		v, err := client.Do(cctx, "GET", k)
		cancel()
		if err != nil || v.Text() != want {
			t.Fatalf("acknowledged key %s = %q (%v), want %q", k, v.Text(), err, want)
		}
	}
	// Trim safety held throughout: no tailer ever found the log trimmed
	// past the newest usable snapshot.
	for _, n := range sh.Nodes() {
		if gaps := n.Stats().LogGapRetries.Load(); gaps != 0 {
			t.Errorf("node %s hit %d trimmed-gap retries — trim coordinator unsafe", n.ID(), gaps)
		}
	}
	t.Logf("seal/trim storm: %d acked keys intact, stats %+v", len(keys), st)
}

// TestCrashRestartTailerRebootstrapAfterTrim pins the lagging-tailer path:
// a replica frozen below the trim point must, on waking, re-bootstrap from
// the snapshot (counted in reader_rebootstraps) and catch up — never
// demote, never serve a gap.
func TestCrashRestartTailerRebootstrapAfterTrim(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()

	reps := sh.Replicas()
	if len(reps) == 0 {
		t.Fatal("no replica to freeze")
	}
	lag := reps[0]
	if err := c.Kill(lag.ID()); err != nil {
		t.Fatal(err)
	}
	frozenAt := lag.AppliedSeq()

	// Advance the log several whole segments past the frozen tailer, then
	// snapshot and trim everything the snapshot covers.
	for i := 0; i < 80; i++ {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		if v, err := client.Do(cctx, "SET", fmt.Sprintf("lag-%d", i), fmt.Sprintf("v%d", i)); err != nil || v.IsError() {
			t.Fatalf("SET lag-%d: %v %v", i, v, err)
		}
		cancel()
	}
	tail := sh.Log.CommittedTail()
	if _, err := (&snapshot.Offbox{Manager: snaps, EngineVersion: 1}).Run(ctx, sh.ID, sh.Log); err != nil {
		t.Fatal(err)
	}
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	trimmer.Tick()
	if trimmed, _ := trimmer.Stats(); trimmed == 0 {
		t.Fatal("setup: nothing trimmed")
	}
	if base := sh.Log.TrimBase().Seq; base <= frozenAt {
		t.Fatalf("setup: trim base %d did not pass the frozen tailer at %d", base, frozenAt)
	}

	// Wake the replica. Its reader is below the trim base, so the next
	// poll fails with ErrTrimmed — the fatal that must turn into a
	// snapshot re-bootstrap, not a demotion loop.
	if err := c.Resurrect(lag.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && lag.Stats().ReaderRebootstraps.Load() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if got := lag.Stats().ReaderRebootstraps.Load(); got == 0 {
		t.Fatal("woken replica never re-bootstrapped from snapshot")
	}
	for time.Now().Before(deadline) && lag.AppliedSeq() < tail.Seq {
		time.Sleep(2 * time.Millisecond)
	}
	if got := lag.AppliedSeq(); got < tail.Seq {
		t.Fatalf("replica stuck at %d, want >= %d", got, tail.Seq)
	}
	// The re-bootstrapped replica serves the full dataset locally.
	v, err := lag.DoReadOnly(ctx, [][]byte{[]byte("GET"), []byte("lag-79")})
	if err != nil || v.Text() != "v79" {
		t.Fatalf("replica GET lag-79 = %q (%v), want v79", v.Text(), err)
	}
	if role := lag.Role(); role != election.RoleReplica {
		t.Fatalf("woken replica role = %v, want replica", role)
	}
	if gaps := lag.Stats().LogGapRetries.Load(); gaps != 0 {
		t.Fatalf("replica hit %d trimmed-gap retries — trim raced past the newest snapshot", gaps)
	}
}

// TestCrashRestartCorruptSegmentRecovery covers both halves of the
// bit-rot contract. Damage BELOW the newest snapshot: detected at first
// read, segment quarantined, and a killed-and-restarted primary recovers
// everything from the snapshot plus the intact suffix. Damage ABOVE every
// snapshot: unrecoverable by construction, so the replay path must fail
// loudly with ErrCorruptSegment rather than serve damaged bytes.
func TestCrashRestartCorruptSegmentRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness skipped in -short mode")
	}
	seed := crashSeed(t)
	c, snaps, _ := crashCluster(t, seed)
	sh := c.Shards()[0]
	client := c.Client()
	ctx := context.Background()

	set := func(k, v string) {
		t.Helper()
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		if rv, err := client.Do(cctx, "SET", k, v); err != nil || rv.IsError() {
			t.Fatalf("SET %s: %v %v", k, rv, err)
		}
	}
	get := func(k string) string {
		t.Helper()
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		v, err := client.Do(cctx, "GET", k)
		if err != nil || v.IsError() {
			t.Fatalf("GET %s: %v %v", k, v, err)
		}
		return v.Text()
	}

	for i := 0; i < 60; i++ {
		set(fmt.Sprintf("cor-%d", i), fmt.Sprintf("v%d", i))
	}
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1}
	meta, err := ob.Run(ctx, sh.ID, sh.Log)
	if err != nil {
		t.Fatal(err)
	}

	// Rot a record in a sealed segment well below the snapshot position.
	var dmg uint64
	for seq := meta.LogPos.Seq - 40; seq < meta.LogPos.Seq; seq++ {
		if sh.Log.DamageRecord(seq) {
			dmg = seq
			break
		}
	}
	if dmg == 0 {
		t.Fatal("setup: found no record to damage below the snapshot")
	}
	// First read detects the rot and quarantines the segment.
	if _, ok := sh.Log.Get(txlog.EntryID{Seq: dmg}); ok {
		t.Fatalf("damaged record %d was served verbatim", dmg)
	}
	if q := sh.Log.SegmentStats().Quarantined; q < 1 {
		t.Fatalf("Quarantined = %d after reading damaged record, want >= 1", q)
	}

	// The quarantined range is entirely covered by the snapshot, so a
	// killed-and-restarted primary must recover the full dataset without
	// ever needing the damaged segment.
	p, err := sh.WaitForPrimary(c.Clock(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(p.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(p.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 17, 41, 59} {
		if got, want := get(fmt.Sprintf("cor-%d", i)), fmt.Sprintf("v%d", i); got != want {
			t.Fatalf("after corrupt-segment recovery GET cor-%d = %q, want %q", i, got, want)
		}
	}
	for _, n := range sh.Nodes() {
		if gaps := n.Stats().LogGapRetries.Load(); gaps != 0 {
			t.Errorf("node %s hit %d trimmed-gap retries", n.ID(), gaps)
		}
	}

	// Loud half: rot a record ABOVE the newest snapshot. No snapshot
	// covers it, so the next replay over that range must fail with
	// ErrCorruptSegment — never silently skip or serve the bytes.
	for i := 0; i < 10; i++ {
		set(fmt.Sprintf("cor2-%d", i), "x")
	}
	tail := sh.Log.CommittedTail().Seq
	var dmg2 uint64
	for seq := tail; seq > meta.LogPos.Seq; seq-- {
		if sh.Log.DamageRecord(seq) {
			dmg2 = seq
			break
		}
	}
	if dmg2 == 0 {
		t.Fatal("setup: found no record to damage above the snapshot")
	}
	if _, err := ob.Run(ctx, sh.ID, sh.Log); !errors.Is(err, txlog.ErrCorruptSegment) {
		t.Fatalf("replay over damaged suffix returned %v, want ErrCorruptSegment", err)
	}
}
