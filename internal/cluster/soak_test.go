package cluster

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// TestSoakBoundedLog is the bounded-log gate (`make soak`, armed by
// MEMORYDB_SOAK=1): under sustained write load with the snapshot
// scheduler and trim coordinator running at their normal cadence, the
// live transaction log must stay bounded — after every maintenance pass
// the retained bytes may never exceed twice the segment threshold (the
// partial active segment plus at most one sealed segment the newest
// snapshot does not yet cover). An unbounded log here means trimming
// silently stopped keeping up, which is exactly the slow-leak failure a
// point-in-time test cannot see.
func TestSoakBoundedLog(t *testing.T) {
	if os.Getenv("MEMORYDB_SOAK") == "" {
		t.Skip("soak gate skipped; arm with MEMORYDB_SOAK=1 (make soak)")
	}
	const (
		seed     = int64(11)
		segBytes = 32 << 10
		duration = 4 * time.Second
		warmup   = time.Second
	)
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewUniform(100*time.Microsecond, time.Millisecond, seed),
		Seed:          seed,
		SegmentBytes:  segBytes,
	})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "soak", NumShards: 1, ReplicasPerShard: 2,
		LogService: svc, Snapshots: snaps,
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		ChecksumEvery: 64, RetrySeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	sh := c.Shards()[0]
	if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
		t.Fatal(err)
	}

	// Production wiring: a distance-triggered scheduler produces the
	// snapshots and the trim coordinator follows them.
	ctx := context.Background()
	sched := &snapshot.Scheduler{
		Policy: snapshot.Policy{MaxLogDistance: 64},
		Offbox: &snapshot.Offbox{Manager: snaps, EngineVersion: 1},
	}
	sched.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})
	trimmer := &snapshot.Trimmer{Manager: snaps}
	trimmer.AddShard(snapshot.Shard{ShardID: sh.ID, Log: sh.Log})

	stop := make(chan struct{})
	var writers sync.WaitGroup
	var wrote, failed int64
	var wmu sync.Mutex
	filler := strings.Repeat("x", 96)
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			cl := c.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(2 * time.Millisecond)
				cctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
				v, err := cl.Do(cctx, "SET", fmt.Sprintf("soak-%d-%d", id, i), filler)
				cancel()
				wmu.Lock()
				if err == nil && !v.IsError() {
					wrote++
				} else {
					failed++
				}
				wmu.Unlock()
			}
		}(w)
	}

	start := time.Now()
	var maxLive int64
	samples := 0
	for time.Since(start) < duration {
		time.Sleep(150 * time.Millisecond)
		sched.Tick(ctx)
		trimmer.Tick()
		if time.Since(start) < warmup {
			continue
		}
		st := sh.Log.SegmentStats()
		samples++
		if st.LiveBytes > maxLive {
			maxLive = st.LiveBytes
		}
		if st.LiveBytes > 2*segBytes {
			t.Errorf("live log bytes %d exceed the 2x segment bound (%d) after a maintenance pass: %+v",
				st.LiveBytes, 2*segBytes, st)
		}
	}
	close(stop)
	writers.Wait()
	sched.Tick(ctx)
	trimmer.Tick()

	if samples == 0 {
		t.Fatal("soak produced no post-warmup samples")
	}
	wmu.Lock()
	w, f := wrote, failed
	wmu.Unlock()
	if w == 0 {
		t.Fatal("soak acknowledged no writes")
	}
	st := sh.Log.SegmentStats()
	trimmed, passes := trimmer.Stats()
	if st.Trimmed == 0 || trimmed == 0 {
		t.Fatalf("soak never trimmed: %+v (coordinator: %d segments, %d passes)", st, trimmed, passes)
	}
	if st.LiveBytes > 2*segBytes {
		t.Fatalf("final live log bytes %d exceed the 2x segment bound (%d): %+v", st.LiveBytes, 2*segBytes, st)
	}
	t.Logf("soak: %d writes (%d failed), %d samples, max live %d bytes (bound %d), %d segments trimmed over %d passes",
		w, f, samples, maxLive, 2*segBytes, trimmed, passes)
}
