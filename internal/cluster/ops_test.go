package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/crc16"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func upgradableCluster(t *testing.T, version uint32) *Cluster {
	t.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "up", NumShards: 1, ReplicasPerShard: 1,
		LogService: svc, Snapshots: snaps,
		EngineVersion: version,
		Lease:         120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	if _, err := c.Shards()[0].WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRollingUpgradePreservesDataAndAvailability(t *testing.T) {
	c := upgradableCluster(t, 2)
	ctx := context.Background()
	cl := c.Client()
	for i := 0; i < 50; i++ {
		if v, err := cl.Do(ctx, "SET", fmt.Sprintf("k%d", i), "v"); err != nil || v.IsError() {
			t.Fatalf("seed: %v %v", v, err)
		}
	}
	if err := c.RollingUpgrade(ctx, 3); err != nil {
		t.Fatalf("RollingUpgrade: %v", err)
	}
	// Every node now runs the new version.
	versions := c.EngineVersions()
	if len(versions) != 1 || versions[3] != 2 {
		t.Fatalf("versions after upgrade = %v", versions)
	}
	// All data survived the full fleet replacement.
	for i := 0; i < 50; i++ {
		v, err := cl.Do(ctx, "GET", fmt.Sprintf("k%d", i))
		if err != nil || v.Text() != "v" {
			t.Fatalf("k%d after upgrade: %v %v", i, v, err)
		}
	}
	// Writes keep working on the upgraded primary.
	if v, err := cl.Do(ctx, "SET", "post-upgrade", "yes"); err != nil || v.IsError() {
		t.Fatalf("post-upgrade write: %v %v", v, err)
	}
}

func TestMinEngineVersionDuringMixedFleet(t *testing.T) {
	c := upgradableCluster(t, 2)
	if got := c.MinEngineVersion(); got != 2 {
		t.Fatalf("MinEngineVersion = %d", got)
	}
	// Replace one replica at a newer version by bumping cluster config.
	c.mu.Lock()
	c.cfg.EngineVersion = 3
	c.mu.Unlock()
	sh := c.Shards()[0]
	reps := sh.Replicas()
	if len(reps) == 0 {
		t.Fatal("no replica")
	}
	if _, err := c.ReplaceNode(reps[0].ID()); err != nil {
		t.Fatal(err)
	}
	versions := c.EngineVersions()
	if versions[2] != 1 || versions[3] != 1 {
		t.Fatalf("mixed versions = %v", versions)
	}
	// Off-box snapshots must pin to the OLD version (§7.1).
	if got := c.MinEngineVersion(); got != 2 {
		t.Fatalf("MinEngineVersion = %d during mixed fleet", got)
	}
}

func TestAddRemoveReplica(t *testing.T) {
	c := testCluster(t, 1, 0)
	ctx := context.Background()
	cl := c.Client()
	for i := 0; i < 20; i++ {
		cl.Do(ctx, "SET", fmt.Sprintf("k%d", i), "v")
	}
	sh := c.Shards()[0]
	n, err := c.AddReplica(sh.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The new replica restores from durable sources and catches up.
	deadline := time.Now().Add(3 * time.Second)
	for n.AppliedSeq() < sh.Log.CommittedTail().Seq {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d / %d", n.AppliedSeq(), sh.Log.CommittedTail().Seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(sh.Replicas()) != 1 {
		t.Fatalf("replicas = %d", len(sh.Replicas()))
	}
	if err := c.RemoveReplica(sh.ID); err != nil {
		t.Fatal(err)
	}
	if len(sh.Replicas()) != 0 {
		t.Fatal("replica not removed")
	}
	if err := c.RemoveReplica(sh.ID); err == nil {
		t.Fatal("removing from empty replica set succeeded")
	}
}

func TestScaleOutAddShardAndMigrate(t *testing.T) {
	c := testCluster(t, 1, 0)
	ctx := context.Background()
	cl := c.Client()
	slot := uint16(0)
	// Find a key in slot 0's... easier: write tagged keys and migrate
	// their slot to the new shard.
	for i := 0; i < 10; i++ {
		if v, err := cl.Do(ctx, "SET", fmt.Sprintf("{scale}k%d", i), "v"); err != nil || v.IsError() {
			t.Fatalf("seed: %v %v", v, err)
		}
	}
	slot = slotOf("{scale}x")
	newShard, err := c.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newShard.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(c.OwnedSlots(newShard.ID)) != 0 {
		t.Fatal("fresh shard must own no slots")
	}
	if err := c.MigrateSlot(ctx, slot, newShard.ID); err != nil {
		t.Fatal(err)
	}
	if c.SlotOwner(slot) != newShard {
		t.Fatal("slot not transferred")
	}
	for i := 0; i < 10; i++ {
		v, err := cl.Do(ctx, "GET", fmt.Sprintf("{scale}k%d", i))
		if err != nil || v.Text() != "v" {
			t.Fatalf("post-scale-out read: %v %v", v, err)
		}
	}
}

func slotOf(key string) uint16 { return crc16.Slot(key) }
