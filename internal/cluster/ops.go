package cluster

import (
	"context"
	"fmt"
	"time"

	"memorydb/internal/core"
	"memorydb/internal/election"
)

// RollingUpgrade performs the N+1 rolling upgrade of §5.1/§7.1: for each
// shard, replicas are replaced first with nodes running newVersion (each
// restores from S3 + the log, never from peers), then the primary hands
// leadership over collaboratively and is replaced last. Throughout the
// transient mixed-version period, upgrade protection (§7.1) keeps
// old-version replicas from misinterpreting new-version records.
func (c *Cluster) RollingUpgrade(ctx context.Context, newVersion uint32) error {
	c.mu.Lock()
	c.cfg.EngineVersion = newVersion
	c.mu.Unlock()
	for _, sh := range c.Shards() {
		p, ok := sh.Primary()
		if !ok {
			var err error
			if p, err = sh.WaitForPrimary(c.cfg.Clock, waitPrimaryTimeout); err != nil {
				return err
			}
		}
		// Replicas first: replacements provision at the new version.
		for _, r := range sh.Replicas() {
			upgraded, err := c.ReplaceNode(r.ID())
			if err != nil {
				return fmt.Errorf("cluster: upgrading replica %s: %w", r.ID(), err)
			}
			if err := waitCaughtUp(c, sh, upgraded); err != nil {
				return err
			}
		}
		// Collaborative leadership transfer: the old primary releases its
		// lease so an upgraded replica can campaign without waiting out
		// the backoff.
		if err := p.StepDown(ctx); err != nil {
			return fmt.Errorf("cluster: stepping down %s: %w", p.ID(), err)
		}
		newP, err := sh.WaitForPrimary(c.cfg.Clock, waitPrimaryTimeout)
		if err != nil {
			return fmt.Errorf("cluster: no primary after hand-over on %s: %w", sh.ID, err)
		}
		if newP.ID() == p.ID() {
			return fmt.Errorf("cluster: old primary %s re-won leadership during upgrade", p.ID())
		}
		// Finally replace the old node (now a demoted/replica node).
		if _, err := c.ReplaceNode(p.ID()); err != nil {
			return fmt.Errorf("cluster: replacing old primary %s: %w", p.ID(), err)
		}
	}
	return nil
}

// waitCaughtUp blocks until node has applied the shard log's committed
// tail as of now.
func waitCaughtUp(c *Cluster, sh *Shard, node *core.Node) error {
	target := sh.Log.CommittedTail().Seq
	deadline := c.cfg.Clock.Now().Add(waitPrimaryTimeout)
	for node.AppliedSeq() < target {
		if node.Stopped() || node.Role() == election.RoleDemoted && node.Stalled() {
			return fmt.Errorf("cluster: node %s cannot catch up", node.ID())
		}
		if c.cfg.Clock.Now().After(deadline) {
			return fmt.Errorf("cluster: node %s did not catch up to %d (at %d)", node.ID(), target, node.AppliedSeq())
		}
		c.cfg.Clock.Sleep(2 * time.Millisecond)
	}
	return nil
}

// EngineVersions reports the distinct engine versions currently running —
// the control plane pins off-box snapshots to the minimum during
// upgrades (§7.1).
func (c *Cluster) EngineVersions() map[uint32]int {
	out := make(map[uint32]int)
	for _, sh := range c.Shards() {
		for _, n := range sh.Nodes() {
			if !n.Stopped() {
				out[n.EngineVersion()]++
			}
		}
	}
	return out
}

// MinEngineVersion returns the oldest engine version in the cluster.
func (c *Cluster) MinEngineVersion() uint32 {
	min := uint32(0)
	for v := range c.EngineVersions() {
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}
