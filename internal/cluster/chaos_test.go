package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// TestChaosAcknowledgedWritesSurvive is the paper's core durability claim
// under a randomized fault storm: while writers hammer a cluster, the
// control plane keeps killing primaries and replicas, forcing hand-overs,
// taking off-box snapshots, and migrating slots. At the end, the latest
// acknowledged value of every key must be readable. Writes that errored
// or timed out are ambiguous and excluded — but anything the system
// acknowledged is sacred.
func TestChaosAcknowledgedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewUniform(100*time.Microsecond, time.Millisecond, 5),
	})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "chaos", NumShards: 2, ReplicasPerShard: 1,
		LogService: svc, Snapshots: snaps,
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		ChecksumEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	const keys = 40
	type ackEntry struct {
		gen int
	}
	var ackMu sync.Mutex
	acked := make(map[string]ackEntry)

	ctx := context.Background()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := c.Client()
			gen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen++
				key := fmt.Sprintf("chaos-k%d", rng.Intn(keys))
				val := fmt.Sprintf("s%d-g%d", seed, gen)
				cctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
				v, err := cl.Do(cctx, "SET", key, val)
				cancel()
				if err != nil || v.IsError() {
					continue // ambiguous or rejected: not acknowledged
				}
				ackMu.Lock()
				acked[key] = ackEntry{gen: gen}
				ackMu.Unlock()
			}
		}(int64(w + 1))
	}

	// Fault storm.
	chaosRng := rand.New(rand.NewSource(99))
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 2}
	deadline := time.Now().Add(2 * time.Second)
	faults := 0
	for time.Now().Before(deadline) {
		shards := c.Shards()
		sh := shards[chaosRng.Intn(len(shards))]
		switch chaosRng.Intn(4) {
		case 0: // kill the primary
			if p, ok := sh.Primary(); ok {
				if _, err := c.ReplaceNode(p.ID()); err == nil {
					faults++
				}
			}
		case 1: // kill a replica
			if reps := sh.Replicas(); len(reps) > 0 {
				if _, err := c.ReplaceNode(reps[0].ID()); err == nil {
					faults++
				}
			}
		case 2: // collaborative hand-over
			if p, ok := sh.Primary(); ok {
				cctx, cancel := context.WithTimeout(ctx, time.Second)
				if err := p.StepDown(cctx); err == nil {
					faults++
				}
				cancel()
			}
		case 3: // off-box snapshot of a random shard
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if _, err := ob.Run(cctx, sh.ID, sh.Log); err == nil {
				faults++
			}
			cancel()
		}
		time.Sleep(time.Duration(50+chaosRng.Intn(150)) * time.Millisecond)
	}
	close(stop)
	writers.Wait()
	if faults < 5 {
		t.Fatalf("fault storm too tame: only %d faults injected", faults)
	}

	// Let the cluster settle, then audit every acknowledged key.
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	cl := c.Client()
	missing := 0
	ackMu.Lock()
	keysToCheck := make([]string, 0, len(acked))
	for k := range acked {
		keysToCheck = append(keysToCheck, k)
	}
	ackMu.Unlock()
	if len(keysToCheck) == 0 {
		t.Fatal("no writes were acknowledged during the storm")
	}
	for _, k := range keysToCheck {
		cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		v, err := cl.Do(cctx, "GET", k)
		cancel()
		if err != nil || v.Null || v.IsError() {
			missing++
			t.Errorf("acknowledged key %s lost: %v %v", k, v, err)
		}
	}
	if missing > 0 {
		t.Fatalf("%d/%d acknowledged keys lost across the fault storm", missing, len(keysToCheck))
	}
	t.Logf("chaos survived: %d faults, %d acknowledged keys intact", faults, len(keysToCheck))
}
