package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/lin"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// chaosSeed returns the seed every chaos schedule runs under. The CI gate
// (scripts/check.sh) runs the Chaos tests at two fixed seeds via
// MEMORYDB_CHAOS_SEED so fault-path regressions reproduce exactly.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("MEMORYDB_CHAOS_SEED")
	if s == "" {
		return 99
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad MEMORYDB_CHAOS_SEED %q: %v", s, err)
	}
	return v
}

// TestChaosAcknowledgedWritesSurvive is the paper's core durability claim
// under a randomized fault storm: while writers hammer a cluster, the
// control plane keeps killing primaries and replicas, forcing hand-overs,
// taking off-box snapshots, and migrating slots. At the end, the latest
// acknowledged value of every key must be readable. Writes that errored
// or timed out are ambiguous and excluded — but anything the system
// acknowledged is sacred.
func TestChaosAcknowledgedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewUniform(100*time.Microsecond, time.Millisecond, 5),
	})
	snaps := snapshot.NewManager(s3.New(), "snaps")
	c, err := New(Config{
		Name: "chaos", NumShards: 2, ReplicasPerShard: 1,
		LogService: svc, Snapshots: snaps,
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		ChecksumEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	dumpTimelineOnFailure(t, c)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	const keys = 40
	var ackMu sync.Mutex
	acked := make(map[string]ackEntry)

	ctx := context.Background()
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			cl := c.Client()
			gen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen++
				key := fmt.Sprintf("chaos-k%d", rng.Intn(keys))
				val := fmt.Sprintf("s%d-g%d", seed, gen)
				cctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
				v, err := cl.Do(cctx, "SET", key, val)
				cancel()
				if err != nil || v.IsError() {
					continue // ambiguous or rejected: not acknowledged
				}
				ackMu.Lock()
				acked[key] = ackEntry{gen: gen}
				ackMu.Unlock()
			}
		}(int64(w + 1))
	}

	// Fault storm.
	chaosRng := rand.New(rand.NewSource(chaosSeed(t)))
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 2}
	deadline := time.Now().Add(2 * time.Second)
	faults := 0
	for time.Now().Before(deadline) {
		shards := c.Shards()
		sh := shards[chaosRng.Intn(len(shards))]
		switch chaosRng.Intn(4) {
		case 0: // kill the primary
			if p, ok := sh.Primary(); ok {
				if _, err := c.ReplaceNode(p.ID()); err == nil {
					faults++
				}
			}
		case 1: // kill a replica
			if reps := sh.Replicas(); len(reps) > 0 {
				if _, err := c.ReplaceNode(reps[0].ID()); err == nil {
					faults++
				}
			}
		case 2: // collaborative hand-over
			if p, ok := sh.Primary(); ok {
				cctx, cancel := context.WithTimeout(ctx, time.Second)
				if err := p.StepDown(cctx); err == nil {
					faults++
				}
				cancel()
			}
		case 3: // off-box snapshot of a random shard
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if _, err := ob.Run(cctx, sh.ID, sh.Log); err == nil {
				faults++
			}
			cancel()
		}
		time.Sleep(time.Duration(50+chaosRng.Intn(150)) * time.Millisecond)
	}
	close(stop)
	writers.Wait()
	if faults < 5 {
		t.Fatalf("fault storm too tame: only %d faults injected", faults)
	}
	auditAcked(t, c, acked, &ackMu)
	t.Logf("chaos survived: %d faults, %d acknowledged keys intact", faults, len(acked))
}

// ackEntry marks a write the cluster acknowledged (and therefore owes).
type ackEntry struct {
	gen int
}

// auditAcked waits for every shard to settle on a primary, then verifies
// each acknowledged key is still readable.
func auditAcked(t *testing.T, c *Cluster, acked map[string]ackEntry, mu *sync.Mutex) {
	t.Helper()
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	cl := c.Client()
	missing := 0
	mu.Lock()
	keysToCheck := make([]string, 0, len(acked))
	for k := range acked {
		keysToCheck = append(keysToCheck, k)
	}
	mu.Unlock()
	if len(keysToCheck) == 0 {
		t.Fatal("no writes were acknowledged during the storm")
	}
	for _, k := range keysToCheck {
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		v, err := cl.Do(cctx, "GET", k)
		cancel()
		if err != nil || v.Null || v.IsError() {
			missing++
			t.Errorf("acknowledged key %s lost: %v %v", k, v, err)
		}
	}
	if missing > 0 {
		t.Fatalf("%d/%d acknowledged keys lost across the fault storm", missing, len(keysToCheck))
	}
}

// ---- AZ-fault chaos schedules (tentpole: per-AZ quorum robustness) ----
//
// Each schedule drives a lin-recorded SET/GET workload through the
// cluster client while AZ replicas of the shared transaction-log service
// fail per a fixed-seed plan, then checks the concurrent history for
// linearizability. Per-key histories are kept small (the checker bounds
// them at 63 ops) by using a wide key space and paced clients.

// chaosCluster provisions a 2-shard cluster whose txlog AZ replicas,
// commit-latency model, and node retry jitter are all derived from seed.
func chaosCluster(t *testing.T, seed int64) (*txlog.Service, *Cluster) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.NewUniform(100*time.Microsecond, time.Millisecond, seed),
		Seed:          seed,
	})
	c, err := New(Config{
		Name: "azchaos", NumShards: 2, ReplicasPerShard: 1,
		LogService: svc, Snapshots: snapshot.NewManager(s3.New(), "snaps"),
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		RetrySeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	dumpTimelineOnFailure(t, c)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return svc, c
}

// runLinWorkload drives clients paced SET/GET clients through the cluster
// client, recording a concurrent history; failed or timed-out operations
// are recorded as ambiguous. Returns the history and the error count.
func runLinWorkload(t *testing.T, c *Cluster, seed int64, clients, ops, keys int, pace time.Duration) ([]lin.Operation, int) {
	t.Helper()
	rec := lin.NewRecorder()
	var errs atomic.Int64
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: seed + int64(clientID), Keys: keys, WriteRatio: 0.5})
			client := c.Client()
			for i := 0; i < ops; i++ {
				time.Sleep(pace)
				key, in, args := gen.Next(clientID*100000 + i)
				cctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
				call := rec.Invoke()
				v, err := client.Do(cctx, args...)
				cancel()
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
					errs.Add(1)
				} else if in.Kind == "get" {
					out.Value = v.Text()
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(cl)
	}
	wg.Wait()
	return rec.History(), int(errs.Load())
}

// sumDemotions totals demotions across every node in the cluster.
func sumDemotions(c *Cluster) int64 {
	var total int64
	for _, sh := range c.Shards() {
		for _, n := range sh.Nodes() {
			total += n.Stats().Demotions.Load()
		}
	}
	return total
}

// TestChaosSingleAZOutage: one AZ replica is down for the entire run. The
// 2-of-3 quorum must hold availability — zero client errors, zero
// demotions, a linearizable history — with only degraded latency to show
// for it.
func TestChaosSingleAZOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	seed := chaosSeed(t)
	svc, c := chaosCluster(t, seed)

	svc.AZ(0).SetDown(true)
	defer svc.AZ(0).SetDown(false)

	history, errs := runLinWorkload(t, c, seed, 3, 40, 16, 2*time.Millisecond)
	if errs != 0 {
		t.Fatalf("%d client errors under a single-AZ outage, want 0", errs)
	}
	if d := sumDemotions(c); d != 0 {
		t.Fatalf("%d demotions under a single-AZ outage, want 0", d)
	}
	if !svc.Degraded() {
		t.Fatal("service should report degraded with an AZ down")
	}
	var degraded int64
	for _, sh := range c.Shards() {
		degraded += sh.Log.Stats().DegradedAppends
	}
	if degraded == 0 {
		t.Fatal("expected partial-ack appends during the outage")
	}
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("single-AZ-outage history not linearizable (key %s, %d ops)", badKey, len(history))
	}
}

// TestChaosRollingAZOutages: AZ replicas go down one at a time in
// rotation — the rolling-maintenance shape. Quorum always holds, so the
// workload must see no errors and no node may demote.
func TestChaosRollingAZOutages(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	seed := chaosSeed(t)
	svc, c := chaosCluster(t, seed)

	done := make(chan struct{})
	var windows atomic.Int64
	var sched sync.WaitGroup
	sched.Add(1)
	go func() {
		defer sched.Done()
		az := 0
		for {
			svc.AZ(az).SetDown(true)
			select {
			case <-done:
				svc.AZ(az).SetDown(false)
				return
			case <-time.After(60 * time.Millisecond):
			}
			svc.AZ(az).SetDown(false)
			windows.Add(1)
			select {
			case <-done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			az = (az + 1) % len(svc.AZs())
		}
	}()

	history, errs := runLinWorkload(t, c, seed, 3, 50, 16, 3*time.Millisecond)
	close(done)
	sched.Wait()

	if w := windows.Load(); w < 2 {
		t.Fatalf("only %d outage windows completed — schedule too short to mean anything", w)
	}
	if errs != 0 {
		t.Fatalf("%d client errors under rolling single-AZ outages, want 0", errs)
	}
	if d := sumDemotions(c); d != 0 {
		t.Fatalf("%d demotions under rolling single-AZ outages, want 0", d)
	}
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("rolling-outage history not linearizable (key %s, %d ops)", badKey, len(history))
	}
}

// TestChaosAsymmetricPartition: the nastiest partition shape — the
// primary still reaches its clients but loses its path to the transaction
// log (the durability quorum). It keeps accepting connections while unable
// to commit; the healthy replica campaigns through the log and takes over.
// The nemesis repeatedly partitions whichever node is currently primary
// for longer than the backoff window, then heals it. Every acknowledged
// write must come from a node that actually reached quorum, so the
// recorded history stays linearizable; the fenced ex-primaries must show
// up as demotions.
func TestChaosAsymmetricPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	seed := chaosSeed(t)
	_, c := chaosCluster(t, seed)

	done := make(chan struct{})
	var windows atomic.Int64
	var sched sync.WaitGroup
	sched.Add(1)
	go func() {
		defer sched.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x517a))
		for {
			// Pick a shard's current primary and cut it off from the log
			// for longer than the 140ms backoff, so the replica can win.
			shards := c.Shards()
			sh := shards[rng.Intn(len(shards))]
			p, ok := sh.Primary()
			if !ok {
				select {
				case <-done:
					return
				case <-time.After(10 * time.Millisecond):
				}
				continue
			}
			flag := c.NodePartition(p.ID())
			flag.Set(true)
			select {
			case <-done:
				flag.Set(false)
				return
			case <-time.After(time.Duration(200+rng.Intn(100)) * time.Millisecond):
			}
			flag.Set(false)
			windows.Add(1)
			select {
			case <-done:
				return
			case <-time.After(time.Duration(100+rng.Intn(100)) * time.Millisecond):
			}
		}
	}()

	history, errs := runLinWorkload(t, c, seed, 3, 60, 16, 15*time.Millisecond)
	close(done)
	sched.Wait()

	if w := windows.Load(); w < 2 {
		t.Fatalf("only %d partition windows completed — schedule too short to mean anything", w)
	}
	// Unlike AZ outages, asymmetric partitions MUST cause leadership churn:
	// each partitioned primary is fenced out and demotes.
	if d := sumDemotions(c); d == 0 {
		t.Fatal("no demotions — the partition never actually deposed a primary")
	}
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("asymmetric-partition history not linearizable (key %s, %d ops)", badKey, len(history))
	}
	t.Logf("asymmetric partitions: %d windows, %d ops, %d ambiguous, %d demotions",
		windows.Load(), len(history), errs, sumDemotions(c))
}

// TestChaosFlakyAZStorm: every AZ replica drops acks with seeded
// probability 0.25, so ~16%% of appends transiently miss quorum and must
// be absorbed by the nodes' retry loops. Individual client errors are
// tolerated (ambiguous), but the history must stay linearizable and the
// retry counters must show the storm was actually absorbed.
func TestChaosFlakyAZStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	seed := chaosSeed(t)
	svc, c := chaosCluster(t, seed)

	for _, az := range svc.AZs() {
		az.SetFlaky(0.25)
	}
	history, errs := runLinWorkload(t, c, seed, 3, 40, 16, 2*time.Millisecond)
	for _, az := range svc.AZs() {
		az.SetFlaky(0)
	}

	var retried int64
	for _, sh := range c.Shards() {
		for _, n := range sh.Nodes() {
			st := n.Stats()
			retried += st.AppendsRetried.Load() + st.RenewalsRetried.Load()
		}
	}
	if retried == 0 {
		t.Fatal("flaky storm produced zero retries — fault injection not exercised")
	}
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("flaky-storm history not linearizable (key %s, %d ops)", badKey, len(history))
	}
	t.Logf("flaky storm: %d ops, %d ambiguous, %d retries absorbed", len(history), errs, retried)
}
