package cluster

import (
	"context"
	"sync"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/obs"
)

// Monitor is the external monitoring service (paper §4.2, §5.1): it polls
// every node on an interval to form an external view of cluster health,
// repairs configurations that are valid to repair (dead replicas are
// replaced), and alarms on invalid ones (a shard with no primary in
// sight). Node-internal failure detection — lease expiry in the log — is
// the internal view; recovery actions consult both.
type Monitor struct {
	Cluster  *Cluster
	Interval time.Duration
	// PrimaryAlarmAfter is how long a shard may lack a primary before an
	// alarm is raised.
	PrimaryAlarmAfter time.Duration

	mu             sync.Mutex
	alarms         *obs.AlarmLog
	replaced       int
	primarylessFor map[string]time.Duration
}

// monitorAlarmRing bounds retained alarm history. A wedged shard raising
// an alarm per tick used to grow the alarm slice without limit; a ring
// keeps the newest window (Total() still counts everything) so long
// chaos runs cannot leak memory through the alarm path.
const monitorAlarmRing = 256

// AlarmLog returns the bounded alarm ring (created on first use), for
// wiring into node INFO output.
func (m *Monitor) AlarmLog() *obs.AlarmLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.alarms == nil {
		m.alarms = obs.NewAlarmLog(monitorAlarmRing)
	}
	return m.alarms
}

// Alarms returns retained alarm messages, oldest first.
func (m *Monitor) Alarms() []string {
	log := m.AlarmLog()
	rec := log.Oldest(monitorAlarmRing)
	out := make([]string, len(rec))
	for i, a := range rec {
		out[i] = a.Msg
	}
	return out
}

// RaiseAlarm records an externally detected fault — e.g. the snapshot
// scheduler's verification failures feed here, so a bad snapshot pages
// through the same channel as a primaryless shard.
func (m *Monitor) RaiseAlarm(msg string) {
	m.AlarmLog().Raise(msg)
}

// Replacements returns how many dead replicas the monitor replaced.
func (m *Monitor) Replacements() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replaced
}

// Tick performs one monitoring pass. Run calls this on an interval; tests
// may call it directly.
func (m *Monitor) Tick() {
	if m.primarylessFor == nil {
		m.primarylessFor = make(map[string]time.Duration)
	}
	interval := m.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	for _, sh := range m.Cluster.Shards() {
		hasPrimary := false
		for _, n := range sh.Nodes() {
			if n.Stopped() {
				// A dead replica is a valid configuration to fix:
				// provision a replacement that restores from S3 + log.
				if _, err := m.Cluster.ReplaceNode(n.ID()); err == nil {
					m.mu.Lock()
					m.replaced++
					m.mu.Unlock()
				}
				continue
			}
			if n.Role() == election.RolePrimary {
				hasPrimary = true
			}
		}
		m.mu.Lock()
		if hasPrimary {
			m.primarylessFor[sh.ID] = 0
		} else {
			m.primarylessFor[sh.ID] += interval
			limit := m.PrimaryAlarmAfter
			if limit <= 0 {
				limit = 30 * time.Second
			}
			if m.primarylessFor[sh.ID] >= limit {
				m.mu.Unlock()
				m.RaiseAlarm("shard " + sh.ID + " has no primary")
				m.mu.Lock()
				m.primarylessFor[sh.ID] = 0
			}
		}
		m.mu.Unlock()
	}
}

// Run ticks until ctx is cancelled.
func (m *Monitor) Run(ctx context.Context) {
	interval := m.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	clk := m.Cluster.Clock()
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
			m.Tick()
		}
	}
}
