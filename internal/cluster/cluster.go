// Package cluster implements the horizontally scaled MemoryDB deployment
// (paper §2.1, §5): shards owning slot ranges of the 16384-slot key
// space, primaries and replicas per shard placed across availability
// zones, client-side routing with MOVED redirects, a monitoring service,
// and slot migration with 2-phase-commit ownership transfer recorded in
// the transaction logs (§5.2).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/crc16"
	"memorydb/internal/election"
	"memorydb/internal/faultpoint"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/snapshot"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

// Config describes a cluster to provision.
type Config struct {
	Name             string
	NumShards        int
	ReplicasPerShard int
	LogService       *txlog.Service
	Snapshots        *snapshot.Manager
	Clock            clock.Clock
	AZs              []string
	// Node timing knobs, applied to every provisioned node.
	Lease, Backoff, RenewEvery, ReplicaPoll time.Duration
	// ReplicaReadTimeout bounds how long a linearizable replica read
	// parks for its freshness proof before degrading (0 = core default).
	ReplicaReadTimeout time.Duration
	EngineVersion      uint32
	ChecksumEvery      int
	// MaxBatchRecords is forwarded to every node's group-commit buffer
	// (0 = the core default; 1 disables batching).
	MaxBatchRecords int
	// NodeShards is forwarded to every node's execution-shard count
	// (core.Config.Shards): 0 = core default (MEMORYDB_SHARDS env, else
	// GOMAXPROCS). Distinct from NumShards, which is the number of
	// cluster shards (slot-range partitions); NodeShards sub-partitions
	// the keyspace *within* one node for parallel execution.
	NodeShards int
	// RetrySeed seeds every node's transient-failure retry jitter, so
	// fixed-seed chaos schedules reproduce.
	RetrySeed int64
	// Faults provisions every node with its own crash-fault registry
	// (seeded from FaultSeed plus a stable per-node index), enabling the
	// Kill/Restart/Resurrect lifecycle and site-level fault schedules.
	// A restarted node keeps its predecessor's registry, so hit/fired
	// accounting spans the node's whole identity, not one incarnation.
	Faults    bool
	FaultSeed int64
	// Trace, when set, is shared by every node (and the log service, when
	// it carries the same collector): one command's spans land in one
	// place regardless of which process emitted them, so TRACE GET on any
	// node assembles the full cross-node tree.
	Trace *trace.Collector
	// FlightEvents sizes each node's flight-recorder ring (0 = default).
	// Rings are identity-keyed like fault registries: a restarted node
	// continues its predecessor's timeline.
	FlightEvents int
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "memorydb"
	}
	if c.NumShards == 0 {
		c.NumShards = 1
	}
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if len(c.AZs) == 0 {
		c.AZs = []string{"az-1", "az-2", "az-3"}
	}
	return c
}

// Cluster is a provisioned set of shards.
type Cluster struct {
	cfg Config

	mu        sync.RWMutex
	shards    []*Shard
	slotOwner [crc16.NumSlots]*Shard
	// blockedSlots holds slots whose writes are briefly blocked during
	// ownership transfer (§5.2).
	blockedSlots map[uint16]bool
	nodeSeq      int
	shardSeq     int
	// faults maps nodeID → its crash-fault registry (Config.Faults only).
	// Keyed by identity, not incarnation: Restart hands the replacement
	// process the same registry.
	faults map[string]*faultpoint.Registry
	// partitions maps nodeID → its log-partition flag. Keyed by identity
	// like faults, so a restarted node comes back on the same (possibly
	// still partitioned) network path. The flag cuts only the node↔txlog
	// link — clients still reach the node — which is exactly the
	// asymmetric partition the chaos nemesis needs.
	partitions map[string]*netsim.Flag
	// flights maps nodeID → its flight-recorder ring, identity-keyed like
	// faults (see flight.go).
	flights map[string]*trace.Flight
}

// Shard is one replication group: a transaction log plus its nodes.
type Shard struct {
	ID  string
	Log *txlog.Log

	mu    sync.RWMutex
	nodes []*core.Node
}

// Nodes returns the shard's current nodes.
func (s *Shard) Nodes() []*core.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*core.Node(nil), s.nodes...)
}

// Primary returns the shard's current primary, if any. A crash-frozen
// node is dead to routing: it may still *believe* it is primary, but no
// client can be directed at it.
func (s *Shard) Primary() (*core.Node, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, n := range s.nodes {
		if n.Role() == election.RolePrimary && !n.Stopped() && !n.Frozen() {
			return n, true
		}
	}
	return nil, false
}

// Replicas returns the shard's live replica nodes.
func (s *Shard) Replicas() []*core.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*core.Node
	for _, n := range s.nodes {
		if n.Role() == election.RoleReplica && !n.Stopped() && !n.Frozen() {
			out = append(out, n)
		}
	}
	return out
}

// WaitForPrimary blocks until the shard has a primary or the timeout
// elapses.
func (s *Shard) WaitForPrimary(clk clock.Clock, timeout time.Duration) (*core.Node, error) {
	deadline := clk.Now().Add(timeout)
	for {
		if p, ok := s.Primary(); ok {
			return p, nil
		}
		if clk.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: shard %s has no primary after %v", s.ID, timeout)
		}
		clk.Sleep(2 * time.Millisecond)
	}
}

// New provisions and starts a cluster: one transaction log per shard,
// ReplicasPerShard+1 nodes per shard spread across AZs, and an even
// contiguous split of the 16384 slots.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.LogService == nil {
		return nil, errors.New("cluster: Config.LogService is required")
	}
	c := &Cluster{cfg: cfg, blockedSlots: make(map[uint16]bool)}
	for i := 0; i < cfg.NumShards; i++ {
		sh, err := c.addShard()
		if err != nil {
			c.Stop()
			return nil, err
		}
		lo := i * crc16.NumSlots / cfg.NumShards
		hi := (i + 1) * crc16.NumSlots / cfg.NumShards
		for s := lo; s < hi; s++ {
			c.slotOwner[s] = sh
		}
	}
	return c, nil
}

// addShard provisions a shard with its log and nodes; it owns no slots.
func (c *Cluster) addShard() (*Shard, error) {
	c.mu.Lock()
	shardID := fmt.Sprintf("%s-shard-%d", c.cfg.Name, c.shardSeq)
	c.shardSeq++
	c.mu.Unlock()
	log, err := c.cfg.LogService.CreateLog(shardID)
	if err != nil {
		return nil, err
	}
	sh := &Shard{ID: shardID, Log: log}
	for r := 0; r <= c.cfg.ReplicasPerShard; r++ {
		if _, err := c.addNode(sh); err != nil {
			return nil, err
		}
	}
	c.mu.Lock()
	c.shards = append(c.shards, sh)
	c.mu.Unlock()
	return sh, nil
}

// AddShard scales out: a new shard with no slots (use MigrateSlot to move
// load onto it).
func (c *Cluster) AddShard() (*Shard, error) { return c.addShard() }

// addNode provisions one node into sh, placed round-robin across AZs.
func (c *Cluster) addNode(sh *Shard) (*core.Node, error) {
	c.mu.Lock()
	nodeID := fmt.Sprintf("%s-node-%d", sh.ID, c.nodeSeq)
	az := c.cfg.AZs[c.nodeSeq%len(c.cfg.AZs)]
	c.nodeSeq++
	c.mu.Unlock()
	return c.addNodeAs(sh, nodeID, az)
}

// nodeFaults returns (creating on first use) the crash-fault registry for
// nodeID. Seeds are derived from FaultSeed plus a stable FNV hash of the
// node's identity, so a fixed seed reproduces the same per-node schedules
// regardless of provisioning interleaving.
func (c *Cluster) nodeFaults(nodeID string) *faultpoint.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.faults == nil {
		c.faults = make(map[string]*faultpoint.Registry)
	}
	r, ok := c.faults[nodeID]
	if !ok {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(nodeID); i++ {
			h ^= uint64(nodeID[i])
			h *= 1099511628211
		}
		r = faultpoint.New(c.cfg.FaultSeed ^ int64(h&0x7fffffffffffffff))
		c.faults[nodeID] = r
	}
	return r
}

// NodeFaults exposes nodeID's fault registry (nil unless Config.Faults).
// Harnesses use it to arm site schedules and to audit coverage.
func (c *Cluster) NodeFaults(nodeID string) *faultpoint.Registry {
	if !c.cfg.Faults {
		return nil
	}
	return c.nodeFaults(nodeID)
}

// nodePartition returns (creating on first use) nodeID's log-partition
// flag. Same identity-keyed lifetime as nodeFaults.
func (c *Cluster) nodePartition(nodeID string) *netsim.Flag {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitions == nil {
		c.partitions = make(map[string]*netsim.Flag)
	}
	f, ok := c.partitions[nodeID]
	if !ok {
		f = &netsim.Flag{}
		c.partitions[nodeID] = f
	}
	return f
}

// NodePartition exposes nodeID's log-partition flag: raise it to cut the
// node off from the transaction log service (appends and reads fail;
// clients still reach the node), clear it to heal. Nemeses use it to
// build asymmetric partitions.
func (c *Cluster) NodePartition(nodeID string) *netsim.Flag {
	return c.nodePartition(nodeID)
}

// addNodeAs provisions a node with a fixed identity — the restart path
// reuses the killed node's ID and AZ, exactly like a replacement process
// on the same host.
func (c *Cluster) addNodeAs(sh *Shard, nodeID, az string) (*core.Node, error) {
	var faults *faultpoint.Registry
	if c.cfg.Faults {
		faults = c.nodeFaults(nodeID)
	}
	n, err := core.NewNode(core.Config{
		NodeID:             nodeID,
		ShardID:            sh.ID,
		AZ:                 az,
		Log:                sh.Log,
		Clock:              c.cfg.Clock,
		EngineVersion:      c.cfg.EngineVersion,
		Lease:              c.cfg.Lease,
		Backoff:            c.cfg.Backoff,
		RenewEvery:         c.cfg.RenewEvery,
		ReplicaPoll:        c.cfg.ReplicaPoll,
		ReplicaReadTimeout: c.cfg.ReplicaReadTimeout,
		Snapshots:          c.cfg.Snapshots,
		ChecksumEvery:      c.cfg.ChecksumEvery,
		MaxBatchRecords:    c.cfg.MaxBatchRecords,
		Shards:             c.cfg.NodeShards,
		RetrySeed:          c.cfg.RetrySeed,
		Faults:             faults,
		Partition:          c.nodePartition(nodeID),
		Trace:              c.cfg.Trace,
		Flight:             c.nodeFlight(nodeID),
	})
	if err != nil {
		return nil, err
	}
	n.SetSlotGate(c.gateFor(sh))
	n.Start()
	sh.mu.Lock()
	sh.nodes = append(sh.nodes, n)
	sh.mu.Unlock()
	return n, nil
}

// AddReplica scales a shard's replica count up by one. The new node
// restores from S3 + the log without touching its peers (§5.2, §4.2.1).
func (c *Cluster) AddReplica(shardID string) (*core.Node, error) {
	sh, ok := c.ShardByID(shardID)
	if !ok {
		return nil, fmt.Errorf("cluster: no shard %q", shardID)
	}
	return c.addNode(sh)
}

// RemoveReplica terminates one replica of the shard.
func (c *Cluster) RemoveReplica(shardID string) error {
	sh, ok := c.ShardByID(shardID)
	if !ok {
		return fmt.Errorf("cluster: no shard %q", shardID)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, n := range sh.nodes {
		if n.Role() == election.RoleReplica && !n.Stopped() {
			n.Stop()
			sh.nodes = append(sh.nodes[:i], sh.nodes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("cluster: shard %q has no replica to remove", shardID)
}

// ReplaceNode terminates nodeID and provisions a fresh node in the same
// shard (the monitoring service's recovery action, §4.2, and the unit of
// N+1 rolling upgrades, §5.1).
func (c *Cluster) ReplaceNode(nodeID string) (*core.Node, error) {
	for _, sh := range c.Shards() {
		sh.mu.Lock()
		for i, n := range sh.nodes {
			if n.ID() == nodeID {
				n.Stop()
				sh.nodes = append(sh.nodes[:i], sh.nodes[i+1:]...)
				sh.mu.Unlock()
				return c.addNode(sh)
			}
		}
		sh.mu.Unlock()
	}
	return nil, fmt.Errorf("cluster: no node %q", nodeID)
}

// Shards returns the current shard list.
func (c *Cluster) Shards() []*Shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Shard(nil), c.shards...)
}

// ShardByID looks a shard up by ID.
func (c *Cluster) ShardByID(id string) (*Shard, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sh := range c.shards {
		if sh.ID == id {
			return sh, true
		}
	}
	return nil, false
}

// SlotOwner returns the shard currently owning slot.
func (c *Cluster) SlotOwner(slot uint16) *Shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.slotOwner[slot]
}

// OwnedSlots returns the slots owned by shardID (for CLUSTER SLOTS).
func (c *Cluster) OwnedSlots(shardID string) []uint16 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []uint16
	for s := 0; s < crc16.NumSlots; s++ {
		if c.slotOwner[s] != nil && c.slotOwner[s].ID == shardID {
			out = append(out, uint16(s))
		}
	}
	return out
}

// Clock returns the cluster's clock.
func (c *Cluster) Clock() clock.Clock { return c.cfg.Clock }

// Stop terminates every node. Logs are left in the service (durable).
func (c *Cluster) Stop() {
	for _, sh := range c.Shards() {
		for _, n := range sh.Nodes() {
			n.Stop()
		}
	}
}

// gateFor builds the slot admission check for nodes of sh: MOVED for
// slots owned elsewhere, CROSSSLOT for multi-slot commands, TRYAGAIN for
// writes to a slot whose ownership transfer is in flight.
func (c *Cluster) gateFor(sh *Shard) func(name string, keys []string, writing bool) (resp.Value, bool) {
	return func(name string, keys []string, writing bool) (resp.Value, bool) {
		if len(keys) == 0 {
			return resp.Value{}, false
		}
		slot := crc16.Slot(keys[0])
		for _, k := range keys[1:] {
			if crc16.Slot(k) != slot {
				return resp.Err("CROSSSLOT Keys in request don't hash to the same slot"), true
			}
		}
		c.mu.RLock()
		owner := c.slotOwner[slot]
		blocked := c.blockedSlots[slot]
		c.mu.RUnlock()
		if owner == nil {
			return resp.Errf("CLUSTERDOWN Hash slot %d not served", slot), true
		}
		if owner.ID != sh.ID {
			endpoint := owner.ID
			if p, ok := owner.Primary(); ok {
				endpoint = p.ID()
			}
			return resp.Errf("MOVED %d %s", slot, endpoint), true
		}
		if writing && blocked {
			return resp.Errf("TRYAGAIN Slot %d ownership transfer in progress", slot), true
		}
		return resp.Value{}, false
	}
}
