package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

// tracedCluster provisions a cluster whose nodes AND transaction-log
// service share one collector sampling every command, so a single write
// assembles its full cross-process span tree in one place.
func tracedCluster(t *testing.T, shards, replicas int) (*Cluster, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector(1.0, 7, 0)
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.Fixed(200 * time.Microsecond),
		Trace:         col,
		Flight:        trace.NewFlight("txlog", 0),
	})
	c, err := New(Config{
		Name:             "traced",
		NumShards:        shards,
		ReplicasPerShard: replicas,
		LogService:       svc,
		Lease:            120 * time.Millisecond,
		Backoff:          160 * time.Millisecond,
		RenewEvery:       30 * time.Millisecond,
		ReplicaPoll:      time.Millisecond,
		Trace:            col,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Stop)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return c, col
}

// span mirrors the TRACE GET row layout:
// [span_id, parent_id, name, node, az, shard, start_usec, dur_usec].
type respSpan struct {
	id, parent uint64
	name, node string
	az         int
}

func parseSpanRows(t *testing.T, v resp.Value) []respSpan {
	t.Helper()
	if v.Type != resp.Array {
		t.Fatalf("TRACE GET = %v, want array", v)
	}
	out := make([]respSpan, 0, len(v.Array))
	for _, row := range v.Array {
		if len(row.Array) != 8 {
			t.Fatalf("span row = %v, want 8 fields", row)
		}
		out = append(out, respSpan{
			id:     uint64(row.Array[0].Int),
			parent: uint64(row.Array[1].Int),
			name:   row.Array[2].Text(),
			node:   row.Array[3].Text(),
			az:     int(row.Array[4].Int),
		})
	}
	return out
}

// TestTraceSpanTreeCrossCluster is the tentpole's headline acceptance:
// one sampled SET must yield a single *connected* span tree that crosses
// process boundaries — the primary's pipeline stages, at least two
// per-AZ log-service acks, and a replica tailer's apply on another node
// — all assembled via the TRACE GET command surface.
func TestTraceSpanTreeCrossCluster(t *testing.T) {
	c, _ := tracedCluster(t, 1, 2)
	cl := c.Client()
	ctx := context.Background()

	if v, err := cl.Do(ctx, "SET", "traced-key", "v1"); err != nil || v.IsError() {
		t.Fatalf("SET: %v %v", v, err)
	}

	// Find the SET's trace through the RESP surface: TRACE RECENT lists
	// trace IDs newest-first; TRACE GET assembles each tree. The replica
	// apply lands asynchronously (tailer poll), so re-fetch until the
	// tree is complete or the deadline passes.
	var spans []respSpan
	deadline := time.Now().Add(5 * time.Second)
	for {
		recent, err := cl.Do(ctx, "TRACE", "RECENT", "64")
		if err != nil || recent.IsError() {
			t.Fatalf("TRACE RECENT: %v %v", recent, err)
		}
		for _, idv := range recent.Array {
			got, err := cl.Do(ctx, "TRACE", "GET", fmt.Sprint(idv.Int))
			if err != nil || got.IsError() {
				t.Fatalf("TRACE GET: %v %v", got, err)
			}
			ss := parseSpanRows(t, got)
			isSet := false
			for _, s := range ss {
				if s.parent == 0 && s.name == "cmd:SET" {
					isSet = true
				}
			}
			if isSet {
				spans = ss
				break
			}
		}
		if spans != nil {
			if count(spans, "replica_apply") >= 1 && count(spans, "az_ack") >= 2 {
				break
			}
			spans = nil // incomplete: replica apply not yet recorded
		}
		if time.Now().After(deadline) {
			t.Fatal("no complete cmd:SET span tree within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Exactly one root, named for the command.
	roots := 0
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		ids[s.id] = true
		if s.parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want exactly 1: %+v", roots, spans)
	}
	// Connected: every non-root span's parent is present in the tree.
	for _, s := range spans {
		if s.parent != 0 && !ids[s.parent] {
			t.Errorf("span %d (%s on %s) orphaned: parent %d not in tree",
				s.id, s.name, s.node, s.parent)
		}
	}
	// The tree crosses the whole write path: primary stages, the append,
	// two-plus AZ acks from the log service, and a replica apply recorded
	// by a *different* node than the primary's.
	for _, want := range []string{"queue_wait", "execute", "append", "quorum_wait"} {
		if count(spans, want) == 0 {
			t.Errorf("span tree missing %q: %+v", want, spans)
		}
	}
	azs := map[int]bool{}
	for _, s := range spans {
		if s.name == "az_ack" {
			azs[s.az] = true
		}
	}
	if len(azs) < 2 {
		t.Errorf("az_ack spans from %d distinct AZs, want >= 2: %+v", len(azs), spans)
	}
	primary := nodeOf(spans, "append")
	replicas := map[string]bool{}
	for _, s := range spans {
		if s.name == "replica_apply" && s.node != primary {
			replicas[s.node] = true
		}
	}
	if len(replicas) == 0 {
		t.Errorf("no replica_apply span from a non-primary node: %+v", spans)
	}
	t.Logf("span tree: %d spans, %d AZ acks, replica applies on %v", len(spans), len(azs), keys(replicas))
}

func count(spans []respSpan, name string) int {
	n := 0
	for _, s := range spans {
		if s.name == name {
			n++
		}
	}
	return n
}

func nodeOf(spans []respSpan, name string) string {
	for _, s := range spans {
		if s.name == name {
			return s.node
		}
	}
	return ""
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceShardAttribution checks satellite 6 at the TRACE surface: on
// a node running several execution shards, the sampled write's
// queue_wait/execute spans carry the handling shard's index (not -1).
func TestTraceShardAttribution(t *testing.T) {
	col := trace.NewCollector(1.0, 7, 0)
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}, Trace: col})
	c, err := New(Config{
		Name: "shattr", NumShards: 1, ReplicasPerShard: 0,
		LogService: svc, NodeShards: 4,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Trace: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	sh := c.Shards()[0]
	if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if v, err := cl.Do(ctx, "SET", fmt.Sprintf("sh-k%d", i), "v"); err != nil || v.IsError() {
			t.Fatalf("SET: %v %v", v, err)
		}
	}
	shardSeen := false
	for _, id := range col.RecentTraces(32) {
		for _, s := range col.Trace(id) {
			if (s.Name == "queue_wait" || s.Name == "execute") && s.Shard >= 0 {
				shardSeen = true
			}
		}
	}
	if !shardSeen {
		t.Fatal("no queue_wait/execute span carries a shard index on a 4-shard node")
	}
}

// dumpTimelineOnFailure arranges the black-box readout: when the test
// fails, the merged multi-node flight timeline is printed so the failure
// report shows what every node (and the log service) was doing.
func dumpTimelineOnFailure(t *testing.T, c *Cluster) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("cluster flight timeline:\n%s", c.TimelineReport())
		}
	})
}

// TestChaosFlightTimelineRecordsNemesis runs a deliberate kill/restart
// schedule and asserts the merged flight timeline tells the story: the
// nemesis events appear, causally ordered (kill before its restart),
// alongside role transitions from more than one node — one timeline for
// the whole cluster, not a per-node scatter.
func TestChaosFlightTimelineRecordsNemesis(t *testing.T) {
	svc := txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: netsim.Fixed(200 * time.Microsecond),
		Flight:        trace.NewFlight("txlog", 0),
	})
	c, err := New(Config{
		Name: "flt", NumShards: 1, ReplicasPerShard: 2,
		LogService: svc, Snapshots: snapshot.NewManager(s3.New(), "snaps"),
		Lease: 100 * time.Millisecond, Backoff: 140 * time.Millisecond,
		RenewEvery: 25 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Faults: true, FaultSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	dumpTimelineOnFailure(t, c)
	sh := c.Shards()[0]
	p, err := sh.WaitForPrimary(c.Clock(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	ctx := context.Background()
	if v, err := cl.Do(ctx, "SET", "pre-kill", "v"); err != nil || v.IsError() {
		t.Fatalf("SET: %v %v", v, err)
	}

	// Nemesis: crash-freeze the primary, let a replica take over, then
	// restart the dead node as a replacement process with the same
	// identity (its ring continues the same timeline).
	victim := p.ID()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.WaitForPrimary(c.Clock(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Do(ctx, "SET", "post-restart", "v"); err != nil || v.IsError() {
		t.Fatalf("SET after restart: %v %v", v, err)
	}

	tl := c.MergedTimeline()
	var killAt, restartAt int64 = -1, -1
	roleNodes := map[string]bool{}
	for _, e := range tl {
		switch {
		case e.Kind == trace.EvKill && e.Node == victim:
			killAt = e.At
		case e.Kind == trace.EvRestart && e.Node == victim:
			restartAt = e.At
		case e.Kind == trace.EvRoleChange:
			roleNodes[e.Node] = true
		}
	}
	if killAt < 0 || restartAt < 0 {
		t.Fatalf("timeline missing nemesis events for %s: kill=%d restart=%d\n%s",
			victim, killAt, restartAt, c.TimelineReport())
	}
	if killAt > restartAt {
		t.Fatalf("timeline out of causal order: kill at %d after restart at %d", killAt, restartAt)
	}
	if len(roleNodes) < 2 {
		t.Fatalf("role transitions from %d nodes, want >= 2 (multi-node timeline)\n%s",
			len(roleNodes), c.TimelineReport())
	}
	// Merge must be globally ordered (the causal glue: one monotonic
	// clock across every in-process ring).
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatalf("merged timeline not time-ordered at %d: %v then %v", i, tl[i-1], tl[i])
		}
	}
	report := c.TimelineReport()
	for _, want := range []string{"kill", "restart", "role_change", victim} {
		if !strings.Contains(report, want) {
			t.Errorf("timeline report missing %q:\n%s", want, report)
		}
	}
	t.Logf("merged timeline: %d events across %d role-changing nodes", len(tl), len(roleNodes))
}
