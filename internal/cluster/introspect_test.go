package cluster

import (
	"context"
	"strings"
	"testing"

	"memorydb/internal/crc16"
	"memorydb/internal/resp"
)

func clusterCmd(c *Cluster, args ...string) resp.Value {
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	return c.ClusterCommand(context.Background(), argv)
}

func TestClusterSlotsCoversKeyspace(t *testing.T) {
	c := testCluster(t, 3, 1)
	v := clusterCmd(c, "CLUSTER", "SLOTS")
	if v.Type != resp.Array || len(v.Array) != 3 {
		t.Fatalf("SLOTS = %v", v)
	}
	covered := 0
	for _, row := range v.Array {
		start, end := row.Array[0].Int, row.Array[1].Int
		covered += int(end - start + 1)
		// Primary entry + 1 replica entry per row.
		if len(row.Array) != 4 {
			t.Fatalf("row = %v", row)
		}
	}
	if covered != crc16.NumSlots {
		t.Fatalf("covered %d slots, want %d", covered, crc16.NumSlots)
	}
}

func TestClusterKeySlot(t *testing.T) {
	c := testCluster(t, 1, 0)
	v := clusterCmd(c, "CLUSTER", "KEYSLOT", "foo")
	if v.Int != 12182 {
		t.Fatalf("KEYSLOT foo = %v, want 12182", v)
	}
}

func TestClusterCountKeysInSlot(t *testing.T) {
	c := testCluster(t, 1, 0)
	cl := c.Client()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		cl.Do(ctx, "SET", "{ck}"+string(rune('a'+i)), "v")
	}
	slot := crc16.Slot("{ck}")
	v := clusterCmd(c, "CLUSTER", "COUNTKEYSINSLOT", itoa(int(slot)))
	if v.Int != 5 {
		t.Fatalf("COUNTKEYSINSLOT = %v", v)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestClusterInfoAndShards(t *testing.T) {
	c := testCluster(t, 2, 1)
	info := clusterCmd(c, "CLUSTER", "INFO").Text()
	if !strings.Contains(info, "cluster_state:ok") || !strings.Contains(info, "cluster_size:2") {
		t.Fatalf("INFO = %q", info)
	}
	v := clusterCmd(c, "CLUSTER", "SHARDS")
	if len(v.Array) != 2 {
		t.Fatalf("SHARDS = %v", v)
	}
	// Each shard row carries slots + nodes with roles.
	row := v.Array[0]
	if row.Array[0].Text() != "slots" || row.Array[2].Text() != "nodes" {
		t.Fatalf("shard row = %v", row)
	}
	nodes := row.Array[3]
	if len(nodes.Array) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestClusterUnknownSubcommand(t *testing.T) {
	c := testCluster(t, 1, 0)
	if v := clusterCmd(c, "CLUSTER", "BOGUS"); !v.IsError() {
		t.Fatalf("BOGUS = %v", v)
	}
	if v := clusterCmd(c, "CLUSTER"); !v.IsError() {
		t.Fatalf("bare CLUSTER = %v", v)
	}
}
