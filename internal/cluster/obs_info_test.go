package cluster

import (
	"context"
	"strings"
	"testing"
)

// TestClusterInfoPerAZLines checks that CLUSTER INFO surfaces each zone's
// transaction-log health: ack counts and ack-latency percentiles, one
// block per AZ.
func TestClusterInfoPerAZLines(t *testing.T) {
	c := testCluster(t, 1, 0)
	cl := c.Client()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if v, err := cl.Do(ctx, "SET", "k"+itoa(i), "v"); err != nil || v.IsError() {
			t.Fatalf("SET: %v %v", v, err)
		}
	}

	info := clusterCmd(c, "CLUSTER", "INFO").Text()
	for az := 0; az < 3; az++ {
		for _, field := range []string{"_name:", "_acks_served:", "_acks_dropped:", "_ack_p50_usec:", "_ack_p99_usec:", "_ack_max_usec:"} {
			want := "az" + itoa(az) + field
			if !strings.Contains(info, want) {
				t.Errorf("CLUSTER INFO missing %q:\n%s", want, info)
			}
		}
	}
	// Writes committed through the log, so at least one zone served acks.
	if !strings.Contains(info, "_acks_served:") || strings.Count(info, "_acks_served:0\r\n") == 3 {
		t.Fatalf("no zone served any acks after writes:\n%s", info)
	}
	// Execution-shard pressure aggregates (totals across every node).
	for _, field := range []string{"cluster_exec_shards:", "cluster_exec_queue_depth_total:", "cluster_exec_queue_depth_max:"} {
		if !strings.Contains(info, field) {
			t.Errorf("CLUSTER INFO missing %q:\n%s", field, info)
		}
	}
}
