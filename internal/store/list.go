package store

// List is a doubly linked list of byte-string elements, the backing
// structure for LPUSH/RPUSH et al. A deque of chunks would be closer to
// Redis's quicklist; a plain linked list preserves the same asymptotics
// for the operations we expose while staying simple.
type List struct {
	head, tail *listNode
	length     int
	bytes      int64
}

type listNode struct {
	val        []byte
	prev, next *listNode
}

// NewList returns an empty list.
func NewList() *List { return &List{} }

// Len returns the number of elements.
func (l *List) Len() int { return l.length }

// MemUsage estimates the footprint in bytes.
func (l *List) MemUsage() int64 { return l.bytes + int64(l.length)*40 }

// PushFront prepends v.
func (l *List) PushFront(v []byte) {
	n := &listNode{val: v, next: l.head}
	if l.head != nil {
		l.head.prev = n
	} else {
		l.tail = n
	}
	l.head = n
	l.length++
	l.bytes += int64(len(v))
}

// PushBack appends v.
func (l *List) PushBack(v []byte) {
	n := &listNode{val: v, prev: l.tail}
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.length++
	l.bytes += int64(len(v))
}

// PopFront removes and returns the first element.
func (l *List) PopFront() ([]byte, bool) {
	if l.head == nil {
		return nil, false
	}
	n := l.head
	l.head = n.next
	if l.head != nil {
		l.head.prev = nil
	} else {
		l.tail = nil
	}
	l.length--
	l.bytes -= int64(len(n.val))
	return n.val, true
}

// PopBack removes and returns the last element.
func (l *List) PopBack() ([]byte, bool) {
	if l.tail == nil {
		return nil, false
	}
	n := l.tail
	l.tail = n.prev
	if l.tail != nil {
		l.tail.next = nil
	} else {
		l.head = nil
	}
	l.length--
	l.bytes -= int64(len(n.val))
	return n.val, true
}

// Index returns the element at idx (negative counts from the tail).
func (l *List) Index(idx int) ([]byte, bool) {
	n := l.nodeAt(idx)
	if n == nil {
		return nil, false
	}
	return n.val, true
}

// SetIndex replaces the element at idx; reports whether idx was valid.
func (l *List) SetIndex(idx int, v []byte) bool {
	n := l.nodeAt(idx)
	if n == nil {
		return false
	}
	l.bytes += int64(len(v)) - int64(len(n.val))
	n.val = v
	return true
}

func (l *List) nodeAt(idx int) *listNode {
	if idx < 0 {
		idx += l.length
	}
	if idx < 0 || idx >= l.length {
		return nil
	}
	if idx < l.length/2 {
		n := l.head
		for i := 0; i < idx; i++ {
			n = n.next
		}
		return n
	}
	n := l.tail
	for i := l.length - 1; i > idx; i-- {
		n = n.prev
	}
	return n
}

// Range returns elements with indices in [start, stop] (LRANGE semantics).
func (l *List) Range(start, stop int) [][]byte {
	start, stop, ok := clampRange(start, stop, l.length)
	if !ok {
		return nil
	}
	out := make([][]byte, 0, stop-start+1)
	n := l.nodeAt(start)
	for i := start; i <= stop && n != nil; i++ {
		out = append(out, n.val)
		n = n.next
	}
	return out
}

// Trim keeps only elements with indices in [start, stop], returning the
// number removed.
func (l *List) Trim(start, stop int) int {
	s, e, ok := clampRange(start, stop, l.length)
	if !ok {
		removed := l.length
		*l = List{}
		return removed
	}
	removed := 0
	for i := 0; i < s; i++ {
		l.PopFront()
		removed++
	}
	for l.length > e-s+1 {
		l.PopBack()
		removed++
	}
	return removed
}

// Remove deletes up to count occurrences of v: count>0 head→tail, count<0
// tail→head, count==0 all. Returns the number removed (LREM semantics).
func (l *List) Remove(count int, v []byte) int {
	removed := 0
	match := func(n *listNode) bool { return string(n.val) == string(v) }
	unlink := func(n *listNode) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			l.head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			l.tail = n.prev
		}
		l.length--
		l.bytes -= int64(len(n.val))
		removed++
	}
	if count >= 0 {
		limit := count
		for n := l.head; n != nil; {
			next := n.next
			if match(n) {
				unlink(n)
				if limit > 0 && removed == limit {
					break
				}
			}
			n = next
		}
	} else {
		limit := -count
		for n := l.tail; n != nil; {
			prev := n.prev
			if match(n) {
				unlink(n)
				if removed == limit {
					break
				}
			}
			n = prev
		}
	}
	return removed
}

// Walk visits every element head→tail until fn returns false.
func (l *List) Walk(fn func(v []byte) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.val) {
			return
		}
	}
}
