package store

import (
	"fmt"
	"math/rand"
	"testing"
)

func listOf(vals ...string) *List {
	l := NewList()
	for _, v := range vals {
		l.PushBack([]byte(v))
	}
	return l
}

func collect(l *List) []string {
	var out []string
	l.Walk(func(v []byte) bool {
		out = append(out, string(v))
		return true
	})
	return out
}

func TestListPushPop(t *testing.T) {
	l := NewList()
	l.PushBack([]byte("b"))
	l.PushFront([]byte("a"))
	l.PushBack([]byte("c"))
	if got := collect(l); fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("got %v", got)
	}
	if v, ok := l.PopFront(); !ok || string(v) != "a" {
		t.Fatalf("PopFront = %q %v", v, ok)
	}
	if v, ok := l.PopBack(); !ok || string(v) != "c" {
		t.Fatalf("PopBack = %q %v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.PopFront()
	if _, ok := l.PopFront(); ok {
		t.Fatal("pop from empty list succeeded")
	}
	if _, ok := l.PopBack(); ok {
		t.Fatal("pop from empty list succeeded")
	}
}

func TestListIndex(t *testing.T) {
	l := listOf("a", "b", "c", "d")
	cases := []struct {
		idx  int
		want string
		ok   bool
	}{
		{0, "a", true}, {3, "d", true}, {-1, "d", true}, {-4, "a", true},
		{4, "", false}, {-5, "", false},
	}
	for _, c := range cases {
		v, ok := l.Index(c.idx)
		if ok != c.ok || (ok && string(v) != c.want) {
			t.Errorf("Index(%d) = %q %v, want %q %v", c.idx, v, ok, c.want, c.ok)
		}
	}
}

func TestListSetIndex(t *testing.T) {
	l := listOf("a", "b", "c")
	if !l.SetIndex(1, []byte("B")) {
		t.Fatal("SetIndex failed")
	}
	if !l.SetIndex(-1, []byte("C")) {
		t.Fatal("SetIndex(-1) failed")
	}
	if l.SetIndex(5, []byte("x")) {
		t.Fatal("SetIndex out of range succeeded")
	}
	if got := collect(l); fmt.Sprint(got) != "[a B C]" {
		t.Fatalf("got %v", got)
	}
}

func TestListRange(t *testing.T) {
	l := listOf("a", "b", "c", "d", "e")
	if got := l.Range(1, 3); len(got) != 3 || string(got[0]) != "b" {
		t.Fatalf("Range(1,3) = %q", got)
	}
	if got := l.Range(-2, -1); len(got) != 2 || string(got[0]) != "d" {
		t.Fatalf("Range(-2,-1) = %q", got)
	}
	if got := l.Range(3, 1); got != nil {
		t.Fatalf("inverted Range = %q", got)
	}
	if got := l.Range(0, 100); len(got) != 5 {
		t.Fatalf("clamped Range = %q", got)
	}
}

func TestListTrim(t *testing.T) {
	l := listOf("a", "b", "c", "d", "e")
	if removed := l.Trim(1, 3); removed != 2 {
		t.Fatalf("Trim removed %d, want 2", removed)
	}
	if got := collect(l); fmt.Sprint(got) != "[b c d]" {
		t.Fatalf("got %v", got)
	}
	// Trim to empty.
	l2 := listOf("a", "b")
	if removed := l2.Trim(5, 10); removed != 2 {
		t.Fatalf("Trim-to-empty removed %d", removed)
	}
	if l2.Len() != 0 {
		t.Fatal("list not emptied")
	}
}

func TestListRemove(t *testing.T) {
	l := listOf("x", "a", "x", "b", "x")
	if n := l.Remove(2, []byte("x")); n != 2 {
		t.Fatalf("Remove(2) = %d", n)
	}
	if got := collect(l); fmt.Sprint(got) != "[a b x]" {
		t.Fatalf("got %v", got)
	}
	l = listOf("x", "a", "x", "b", "x")
	if n := l.Remove(-2, []byte("x")); n != 2 {
		t.Fatalf("Remove(-2) = %d", n)
	}
	if got := collect(l); fmt.Sprint(got) != "[x a b]" {
		t.Fatalf("got %v", got)
	}
	l = listOf("x", "a", "x")
	if n := l.Remove(0, []byte("x")); n != 2 {
		t.Fatalf("Remove(0) = %d", n)
	}
}

func TestListMemUsageTracksBytes(t *testing.T) {
	l := NewList()
	l.PushBack(make([]byte, 100))
	before := l.MemUsage()
	l.PopBack()
	if l.MemUsage() >= before {
		t.Fatalf("MemUsage did not shrink: %d -> %d", before, l.MemUsage())
	}
}

// Property: list behaves like a slice under random deque operations.
func TestListMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewList()
	var ref []string
	for step := 0; step < 3000; step++ {
		switch rng.Intn(5) {
		case 0:
			v := fmt.Sprintf("v%d", step)
			l.PushFront([]byte(v))
			ref = append([]string{v}, ref...)
		case 1:
			v := fmt.Sprintf("v%d", step)
			l.PushBack([]byte(v))
			ref = append(ref, v)
		case 2:
			v, ok := l.PopFront()
			if ok != (len(ref) > 0) {
				t.Fatal("PopFront presence mismatch")
			}
			if ok {
				if string(v) != ref[0] {
					t.Fatalf("PopFront = %q want %q", v, ref[0])
				}
				ref = ref[1:]
			}
		case 3:
			v, ok := l.PopBack()
			if ok != (len(ref) > 0) {
				t.Fatal("PopBack presence mismatch")
			}
			if ok {
				if string(v) != ref[len(ref)-1] {
					t.Fatalf("PopBack = %q want %q", v, ref[len(ref)-1])
				}
				ref = ref[:len(ref)-1]
			}
		case 4:
			if len(ref) > 0 {
				i := rng.Intn(len(ref))
				v, ok := l.Index(i)
				if !ok || string(v) != ref[i] {
					t.Fatalf("Index(%d) = %q %v want %q", i, v, ok, ref[i])
				}
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("Len = %d, ref %d", l.Len(), len(ref))
		}
	}
}
