package store

import "testing"

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"a*c", "ac", true},
		{"a*c", "abbbc", true},
		{"a*c", "abbbd", false},
		{"*.log", "app.log", true},
		{"*.log", "app.txt", false},
		{"user:*", "user:42", true},
		{"u*r:*", "user:42", true},
		{"[abc]x", "bx", true},
		{"[abc]x", "dx", false},
		{"[a-c]x", "bx", true},
		{"[a-c]x", "dx", false},
		{"[^a-c]x", "dx", true},
		{"[^a-c]x", "bx", false},
		{`\*x`, "*x", true},
		{`\*x`, "ax", false},
		{"a**b", "ab", true},
		{"a**b", "axyzb", true},
		{"*a*a*", "aa", true},
		{"*a*a*", "a", false},
		{"[]x", "]x", false}, // first ']' is literal member of class
		{"[]]x", "]x", true},
	}
	for _, c := range cases {
		if got := GlobMatch(c.pattern, c.s); got != c.want {
			t.Errorf("GlobMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestGlobUnterminatedClass(t *testing.T) {
	if GlobMatch("[abc", "a") {
		t.Fatal("unterminated class must not match")
	}
}
