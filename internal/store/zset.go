package store

import (
	"math"
	"math/rand"
)

// ZSet is a sorted set: members ordered by (score, member) implemented as
// a skiplist plus a member→score dictionary, mirroring Redis's design.
type ZSet struct {
	dict map[string]float64
	sl   *skiplist
	rng  *rand.Rand
}

// NewZSet returns an empty sorted set. Skiplist level coin flips use a
// fixed-seed PRNG so data structure shape is reproducible in tests.
func NewZSet() *ZSet {
	return &ZSet{
		dict: make(map[string]float64),
		sl:   newSkiplist(),
		rng:  rand.New(rand.NewSource(0x5eed)),
	}
}

// Len returns the cardinality.
func (z *ZSet) Len() int { return len(z.dict) }

// MemUsage estimates the footprint in bytes.
func (z *ZSet) MemUsage() int64 {
	var n int64
	for m := range z.dict {
		n += int64(len(m))*2 + 96 // dict entry + skiplist node
	}
	return n
}

// Score returns the score of member.
func (z *ZSet) Score(member string) (float64, bool) {
	s, ok := z.dict[member]
	return s, ok
}

// Add inserts or updates member with score. Returns true if the member was
// newly added (false for an update).
func (z *ZSet) Add(member string, score float64) bool {
	if old, ok := z.dict[member]; ok {
		if old != score {
			z.sl.delete(old, member)
			z.sl.insert(score, member, z.rng)
			z.dict[member] = score
		}
		return false
	}
	z.dict[member] = score
	z.sl.insert(score, member, z.rng)
	return true
}

// IncrBy adds delta to member's score (creating it at delta), returning
// the new score.
func (z *ZSet) IncrBy(member string, delta float64) float64 {
	s := z.dict[member] + delta
	z.Add(member, s)
	return s
}

// Remove deletes member; reports whether it was present.
func (z *ZSet) Remove(member string) bool {
	s, ok := z.dict[member]
	if !ok {
		return false
	}
	delete(z.dict, member)
	z.sl.delete(s, member)
	return true
}

// Rank returns the 0-based ascending rank of member.
func (z *ZSet) Rank(member string) (int, bool) {
	s, ok := z.dict[member]
	if !ok {
		return 0, false
	}
	return z.sl.rank(s, member), true
}

// Entry is a member/score pair.
type Entry struct {
	Member string
	Score  float64
}

// Range returns members with ascending ranks in [start, stop] (inclusive,
// negative indices count from the end, like ZRANGE).
func (z *ZSet) Range(start, stop int) []Entry {
	n := z.Len()
	start, stop, ok := clampRange(start, stop, n)
	if !ok {
		return nil
	}
	return z.sl.rangeByRank(start, stop)
}

// RevRange returns members with descending ranks in [start, stop].
func (z *ZSet) RevRange(start, stop int) []Entry {
	n := z.Len()
	start, stop, ok := clampRange(start, stop, n)
	if !ok {
		return nil
	}
	asc := z.sl.rangeByRank(n-1-stop, n-1-start)
	for i, j := 0, len(asc)-1; i < j; i, j = i+1, j-1 {
		asc[i], asc[j] = asc[j], asc[i]
	}
	return asc
}

// ScoreRange selects members with min<=score<=max (exclusivity flags honor
// ZRANGEBYSCORE's "(" syntax). limit<0 means unlimited; offset skips.
func (z *ZSet) ScoreRange(min, max float64, minEx, maxEx bool, offset, limit int) []Entry {
	var out []Entry
	z.sl.ascend(min, minEx, func(e Entry) bool {
		if e.Score > max || (maxEx && e.Score == max) {
			return false
		}
		if offset > 0 {
			offset--
			return true
		}
		out = append(out, e)
		return limit < 0 || len(out) < limit
	})
	return out
}

// Count returns the number of members with scores in the given range.
func (z *ZSet) Count(min, max float64, minEx, maxEx bool) int {
	n := 0
	z.sl.ascend(min, minEx, func(e Entry) bool {
		if e.Score > max || (maxEx && e.Score == max) {
			return false
		}
		n++
		return true
	})
	return n
}

// PopMin removes and returns up to count lowest-ranked entries.
func (z *ZSet) PopMin(count int) []Entry {
	if count > z.Len() {
		count = z.Len()
	}
	if count <= 0 {
		return nil
	}
	es := z.sl.rangeByRank(0, count-1)
	for _, e := range es {
		z.Remove(e.Member)
	}
	return es
}

// PopMax removes and returns up to count highest-ranked entries.
func (z *ZSet) PopMax(count int) []Entry {
	n := z.Len()
	if count > n {
		count = n
	}
	if count <= 0 {
		return nil
	}
	es := z.sl.rangeByRank(n-count, n-1)
	for i, j := 0, len(es)-1; i < j; i, j = i+1, j-1 {
		es[i], es[j] = es[j], es[i]
	}
	for _, e := range es {
		z.Remove(e.Member)
	}
	return es
}

func clampRange(start, stop, n int) (int, int, bool) {
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if n == 0 || start > stop || start >= n {
		return 0, 0, false
	}
	return start, stop, true
}

// skiplist implements the ordered index with per-level span counters so
// rank queries are O(log n).
const maxLevel = 32

type slNode struct {
	entry Entry
	next  []slLink
}

type slLink struct {
	to   *slNode
	span int // number of entries skipped by following this link
}

type skiplist struct {
	head   *slNode
	level  int
	length int
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:  &slNode{next: make([]slLink, maxLevel)},
		level: 1,
	}
}

func entryLess(s1 float64, m1 string, s2 float64, m2 string) bool {
	if s1 != s2 {
		return s1 < s2
	}
	return m1 < m2
}

func randomLevel(rng *rand.Rand) int {
	lvl := 1
	for lvl < maxLevel && rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

func (sl *skiplist) insert(score float64, member string, rng *rand.Rand) {
	var update [maxLevel]*slNode
	var rankAt [maxLevel]int
	x := sl.head
	for i := sl.level - 1; i >= 0; i-- {
		if i == sl.level-1 {
			rankAt[i] = 0
		} else {
			rankAt[i] = rankAt[i+1]
		}
		for x.next[i].to != nil && entryLess(x.next[i].to.entry.Score, x.next[i].to.entry.Member, score, member) {
			rankAt[i] += x.next[i].span
			x = x.next[i].to
		}
		update[i] = x
	}
	lvl := randomLevel(rng)
	if lvl > sl.level {
		for i := sl.level; i < lvl; i++ {
			rankAt[i] = 0
			update[i] = sl.head
			update[i].next[i].span = sl.length
		}
		sl.level = lvl
	}
	n := &slNode{entry: Entry{Member: member, Score: score}, next: make([]slLink, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i].to = update[i].next[i].to
		update[i].next[i].to = n
		n.next[i].span = update[i].next[i].span - (rankAt[0] - rankAt[i])
		update[i].next[i].span = rankAt[0] - rankAt[i] + 1
	}
	for i := lvl; i < sl.level; i++ {
		update[i].next[i].span++
	}
	sl.length++
}

func (sl *skiplist) delete(score float64, member string) {
	var update [maxLevel]*slNode
	x := sl.head
	for i := sl.level - 1; i >= 0; i-- {
		for x.next[i].to != nil && entryLess(x.next[i].to.entry.Score, x.next[i].to.entry.Member, score, member) {
			x = x.next[i].to
		}
		update[i] = x
	}
	target := update[0].next[0].to
	if target == nil || target.entry.Score != score || target.entry.Member != member {
		return
	}
	for i := 0; i < sl.level; i++ {
		if update[i].next[i].to == target {
			update[i].next[i].span += target.next[i].span - 1
			update[i].next[i].to = target.next[i].to
		} else {
			update[i].next[i].span--
		}
	}
	for sl.level > 1 && sl.head.next[sl.level-1].to == nil {
		sl.level--
	}
	sl.length--
}

// rank returns the 0-based rank of (score, member), which must exist.
func (sl *skiplist) rank(score float64, member string) int {
	x := sl.head
	r := 0
	for i := sl.level - 1; i >= 0; i-- {
		for x.next[i].to != nil && !entryLess(score, member, x.next[i].to.entry.Score, x.next[i].to.entry.Member) {
			r += x.next[i].span
			x = x.next[i].to
		}
	}
	return r - 1
}

// rangeByRank returns entries with ranks in [start, stop], both valid.
func (sl *skiplist) rangeByRank(start, stop int) []Entry {
	out := make([]Entry, 0, stop-start+1)
	x := sl.head
	r := -1
	for i := sl.level - 1; i >= 0; i-- {
		for x.next[i].to != nil && r+x.next[i].span < start {
			r += x.next[i].span
			x = x.next[i].to
		}
	}
	x = x.next[0].to
	r++
	for x != nil && r <= stop {
		out = append(out, x.entry)
		x = x.next[0].to
		r++
	}
	return out
}

// ascend walks entries with score >= min (or > min when minEx) in order,
// until fn returns false.
func (sl *skiplist) ascend(min float64, minEx bool, fn func(Entry) bool) {
	x := sl.head
	for i := sl.level - 1; i >= 0; i-- {
		for x.next[i].to != nil {
			s := x.next[i].to.entry.Score
			if s < min || (minEx && s == min) {
				x = x.next[i].to
				continue
			}
			break
		}
	}
	for x = x.next[0].to; x != nil; x = x.next[0].to {
		if !fn(x.entry) {
			return
		}
	}
}

// NegInf and PosInf are the score range bounds accepted by ZRANGEBYSCORE.
var (
	NegInf = math.Inf(-1)
	PosInf = math.Inf(1)
)
