package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// StreamID is a Redis stream entry ID: millisecond timestamp + sequence.
type StreamID struct {
	Ms  uint64
	Seq uint64
}

// String renders the canonical "ms-seq" form.
func (id StreamID) String() string {
	return strconv.FormatUint(id.Ms, 10) + "-" + strconv.FormatUint(id.Seq, 10)
}

// Less orders stream IDs.
func (id StreamID) Less(o StreamID) bool {
	if id.Ms != o.Ms {
		return id.Ms < o.Ms
	}
	return id.Seq < o.Seq
}

// Next returns the smallest ID strictly greater than id.
func (id StreamID) Next() StreamID {
	if id.Seq == ^uint64(0) {
		return StreamID{Ms: id.Ms + 1, Seq: 0}
	}
	return StreamID{Ms: id.Ms, Seq: id.Seq + 1}
}

// ErrBadStreamID reports an unparsable stream ID.
var ErrBadStreamID = errors.New("invalid stream ID")

// ParseStreamID parses "ms-seq" or "ms" (seq defaults to defSeq, letting
// callers implement XRANGE's - / + inclusive bounds).
func ParseStreamID(s string, defSeq uint64) (StreamID, error) {
	if s == "-" {
		return StreamID{}, nil
	}
	if s == "+" {
		return StreamID{Ms: ^uint64(0), Seq: ^uint64(0)}, nil
	}
	msPart, seqPart, hasSeq := strings.Cut(s, "-")
	ms, err := strconv.ParseUint(msPart, 10, 64)
	if err != nil {
		return StreamID{}, fmt.Errorf("%w: %q", ErrBadStreamID, s)
	}
	seq := defSeq
	if hasSeq {
		seq, err = strconv.ParseUint(seqPart, 10, 64)
		if err != nil {
			return StreamID{}, fmt.Errorf("%w: %q", ErrBadStreamID, s)
		}
	}
	return StreamID{Ms: ms, Seq: seq}, nil
}

// StreamEntry is one entry: an ID plus an ordered field/value list.
type StreamEntry struct {
	ID     StreamID
	Fields [][]byte // flattened f1, v1, f2, v2, ...
}

// Stream is an append-only log of entries ordered by ID. Redis uses a radix
// tree of listpacks; a sorted slice preserves the same externally visible
// behaviour with O(log n) range seeks.
type Stream struct {
	entries []StreamEntry
	lastID  StreamID
	bytes   int64
	// MaxDeletedID and entries-added counters exist in Redis for
	// consistency across trims; we track lastID only, which the commands
	// we support require.
}

// NewStream returns an empty stream.
func NewStream() *Stream { return &Stream{} }

// Len returns the number of live entries.
func (s *Stream) Len() int { return len(s.entries) }

// LastID returns the maximum ID ever added.
func (s *Stream) LastID() StreamID { return s.lastID }

// MemUsage estimates the footprint in bytes.
func (s *Stream) MemUsage() int64 { return s.bytes + int64(len(s.entries))*48 }

// ErrStreamIDTooSmall mirrors Redis's XADD error when an explicit ID is not
// greater than the last one.
var ErrStreamIDTooSmall = errors.New("the ID specified in XADD is equal or smaller than the target stream top item")

// Add appends an entry. If auto, the ID is generated from nowMs and the
// last ID; otherwise id must exceed the current last ID.
func (s *Stream) Add(id StreamID, auto bool, nowMs uint64, fields [][]byte) (StreamID, error) {
	if auto {
		if nowMs > s.lastID.Ms {
			id = StreamID{Ms: nowMs, Seq: 0}
		} else {
			id = s.lastID.Next()
		}
	} else if !s.lastID.Less(id) {
		return StreamID{}, ErrStreamIDTooSmall
	}
	e := StreamEntry{ID: id, Fields: fields}
	s.entries = append(s.entries, e)
	s.lastID = id
	for _, f := range fields {
		s.bytes += int64(len(f))
	}
	return id, nil
}

// Range returns entries with start<=ID<=end, up to count (count<=0: all).
func (s *Stream) Range(start, end StreamID, count int) []StreamEntry {
	i := s.search(start)
	var out []StreamEntry
	for ; i < len(s.entries); i++ {
		e := s.entries[i]
		if end.Less(e.ID) {
			break
		}
		out = append(out, e)
		if count > 0 && len(out) >= count {
			break
		}
	}
	return out
}

// After returns up to count entries with ID strictly greater than id
// (XREAD semantics).
func (s *Stream) After(id StreamID, count int) []StreamEntry {
	return s.Range(id.Next(), StreamID{Ms: ^uint64(0), Seq: ^uint64(0)}, count)
}

// TrimMaxLen keeps only the newest maxLen entries, returning the number
// removed.
func (s *Stream) TrimMaxLen(maxLen int) int {
	if len(s.entries) <= maxLen {
		return 0
	}
	drop := len(s.entries) - maxLen
	for _, e := range s.entries[:drop] {
		for _, f := range e.Fields {
			s.bytes -= int64(len(f))
		}
	}
	s.entries = append([]StreamEntry(nil), s.entries[drop:]...)
	return drop
}

// Delete removes the entry with exactly id; reports whether it existed.
func (s *Stream) Delete(id StreamID) bool {
	i := s.search(id)
	if i >= len(s.entries) || s.entries[i].ID != id {
		return false
	}
	for _, f := range s.entries[i].Fields {
		s.bytes -= int64(len(f))
	}
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	return true
}

// search returns the index of the first entry with ID >= id.
func (s *Stream) search(id StreamID) int {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].ID.Less(id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Walk visits every entry in order until fn returns false.
func (s *Stream) Walk(fn func(StreamEntry) bool) {
	for _, e := range s.entries {
		if !fn(e) {
			return
		}
	}
}
