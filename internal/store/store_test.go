package store

import (
	"fmt"
	"testing"
	"time"

	"memorydb/internal/crc16"
)

var t0 = time.Unix(1700000000, 0)

func str(v string) *Object { return &Object{Kind: KindString, Str: []byte(v)} }

func TestSetLookupDelete(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v"))
	obj, _ := db.Lookup("k", t0)
	if obj == nil || string(obj.Str) != "v" {
		t.Fatalf("Lookup = %v", obj)
	}
	if !db.Delete("k", t0) {
		t.Fatal("Delete returned false for existing key")
	}
	if obj, _ := db.Lookup("k", t0); obj != nil {
		t.Fatal("key survived delete")
	}
	if db.Delete("k", t0) {
		t.Fatal("Delete returned true for missing key")
	}
}

func TestSetReplacesAndClearsTTL(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v1"))
	db.Expire("k", t0.Add(time.Hour).UnixMilli(), t0)
	db.Set("k", str("v2"))
	if _, hasTTL, _ := db.TTL("k", t0); hasTTL {
		t.Fatal("plain Set must clear the TTL")
	}
}

func TestSetKeepTTL(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v1"))
	db.Expire("k", t0.Add(time.Hour).UnixMilli(), t0)
	db.SetKeepTTL("k", str("v2"))
	d, hasTTL, ok := db.TTL("k", t0)
	if !ok || !hasTTL || d != time.Hour {
		t.Fatalf("TTL = %v %v %v", d, hasTTL, ok)
	}
}

func TestExpiryLazyReap(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v"))
	db.Expire("k", t0.Add(time.Second).UnixMilli(), t0)
	if obj, reaped := db.Lookup("k", t0.Add(500*time.Millisecond)); obj == nil || reaped {
		t.Fatal("key expired early")
	}
	obj, reaped := db.Lookup("k", t0.Add(2*time.Second))
	if obj != nil || !reaped {
		t.Fatalf("expected lazy reap, got obj=%v reaped=%v", obj, reaped)
	}
	// Second lookup: already gone, no reap flag.
	if _, reaped := db.Lookup("k", t0.Add(2*time.Second)); reaped {
		t.Fatal("double reap")
	}
}

func TestExpireInPastDeletesImmediately(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v"))
	if !db.Expire("k", t0.Add(-time.Second).UnixMilli(), t0) {
		t.Fatal("Expire returned false")
	}
	if _, ok := db.Peek("k"); ok {
		t.Fatal("key should be removed by past expiry")
	}
}

func TestPersist(t *testing.T) {
	db := NewDB()
	db.Set("k", str("v"))
	if db.Persist("k", t0) {
		t.Fatal("Persist on non-volatile key must return false")
	}
	db.Expire("k", t0.Add(time.Hour).UnixMilli(), t0)
	if !db.Persist("k", t0) {
		t.Fatal("Persist failed")
	}
	if _, hasTTL, _ := db.TTL("k", t0); hasTTL {
		t.Fatal("TTL survived Persist")
	}
}

func TestTTLStates(t *testing.T) {
	db := NewDB()
	if _, _, ok := db.TTL("missing", t0); ok {
		t.Fatal("TTL of missing key must report !ok")
	}
	db.Set("k", str("v"))
	if _, hasTTL, ok := db.TTL("k", t0); !ok || hasTTL {
		t.Fatal("persistent key must report ok, no TTL")
	}
}

func TestSweepExpired(t *testing.T) {
	db := NewDB()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		db.Set(k, str("v"))
		db.Expire(k, t0.Add(time.Duration(i)*time.Second).UnixMilli(), t0)
	}
	// k0's deadline equals "now" at Expire time, so it is deleted
	// immediately (PEXPIREAT-in-the-past semantics); k1..k5 expire later
	// and are swept.
	reaped := db.SweepExpired(t0.Add(5500*time.Millisecond), 100)
	if len(reaped) != 5 {
		t.Fatalf("reaped %d keys, want 5: %v", len(reaped), reaped)
	}
	if db.Len() != 4 {
		t.Fatalf("Len = %d, want 4", db.Len())
	}
}

func TestSweepExpiredHonoursLimit(t *testing.T) {
	db := NewDB()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		db.Set(k, str("v"))
		db.Expire(k, t0.UnixMilli()+1, t0)
	}
	if got := db.SweepExpired(t0.Add(time.Second), 3); len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestSlotIndexTracksKeys(t *testing.T) {
	db := NewDB()
	key := "{tag}k1"
	slot := crc16.Slot(key)
	db.Set(key, str("v"))
	db.Set("{tag}k2", str("v"))
	if got := db.SlotCount(slot); got != 2 {
		t.Fatalf("SlotCount = %d, want 2", got)
	}
	db.Delete(key, t0)
	if got := db.SlotCount(slot); got != 1 {
		t.Fatalf("SlotCount after delete = %d, want 1", got)
	}
	keys := db.SlotKeys(slot, 0)
	if len(keys) != 1 || keys[0] != "{tag}k2" {
		t.Fatalf("SlotKeys = %v", keys)
	}
}

func TestUsedBytesAccounting(t *testing.T) {
	db := NewDB()
	if db.UsedBytes() != 0 {
		t.Fatal("fresh DB must report 0 bytes")
	}
	db.Set("k", str("hello"))
	used := db.UsedBytes()
	if used <= 0 {
		t.Fatalf("UsedBytes = %d", used)
	}
	db.Delete("k", t0)
	if db.UsedBytes() != 0 {
		t.Fatalf("UsedBytes after delete = %d, want 0", db.UsedBytes())
	}
}

func TestDirtyCounter(t *testing.T) {
	db := NewDB()
	db.Set("a", str("1"))
	db.Set("b", str("2"))
	db.Delete("a", t0)
	if db.Dirty() < 3 {
		t.Fatalf("Dirty = %d, want >= 3", db.Dirty())
	}
	db.ResetDirty()
	if db.Dirty() != 0 {
		t.Fatal("ResetDirty did not zero the counter")
	}
}

func TestKeysPattern(t *testing.T) {
	db := NewDB()
	for _, k := range []string{"user:1", "user:2", "item:1"} {
		db.Set(k, str("v"))
	}
	if got := db.Keys("user:*", t0); len(got) != 2 {
		t.Fatalf("Keys(user:*) = %v", got)
	}
	if got := db.Keys("*", t0); len(got) != 3 {
		t.Fatalf("Keys(*) = %v", got)
	}
}

func TestKeysSkipsExpired(t *testing.T) {
	db := NewDB()
	db.Set("live", str("v"))
	db.Set("dead", str("v"))
	db.Expire("dead", t0.UnixMilli()+1, t0)
	got := db.Keys("*", t0.Add(time.Minute))
	if len(got) != 1 || got[0] != "live" {
		t.Fatalf("Keys = %v", got)
	}
}

func TestForEachVisitsLiveKeys(t *testing.T) {
	db := NewDB()
	db.Set("a", str("1"))
	db.Set("b", str("2"))
	db.Expire("b", t0.UnixMilli()+1, t0)
	seen := map[string]bool{}
	db.ForEach(t0.Add(time.Minute), func(k string, o *Object, exp int64) bool {
		seen[k] = true
		return true
	})
	if !seen["a"] || seen["b"] {
		t.Fatalf("seen = %v", seen)
	}
}

func TestFlush(t *testing.T) {
	db := NewDB()
	db.Set("a", str("1"))
	db.Flush()
	if db.Len() != 0 || db.UsedBytes() != 0 {
		t.Fatalf("Flush left Len=%d Used=%d", db.Len(), db.UsedBytes())
	}
}

func TestRandomKey(t *testing.T) {
	db := NewDB()
	if _, ok := db.RandomKey(t0); ok {
		t.Fatal("RandomKey on empty DB")
	}
	db.Set("only", str("v"))
	if k, ok := db.RandomKey(t0); !ok || k != "only" {
		t.Fatalf("RandomKey = %q %v", k, ok)
	}
}
