package store

import (
	"errors"
	"hash/fnv"
	"math"
)

// HyperLogLog cardinality estimation, stored like Redis inside a string
// value. We use the dense representation only: 2^14 registers of 6 bits,
// preceded by a small magic header. Standard error ≈ 1.04/sqrt(16384) ≈
// 0.81%, the same as Redis.

const (
	hllP         = 14
	hllRegisters = 1 << hllP // 16384
	hllHdrSize   = 16
	hllDenseSize = hllHdrSize + (hllRegisters*6+7)/8
)

var hllMagic = [4]byte{'H', 'Y', 'L', 'L'}

// ErrNotHLL reports that a string value is not a valid HLL encoding.
var ErrNotHLL = errors.New("WRONGTYPE Key is not a valid HyperLogLog string value")

// NewHLL returns an empty dense HyperLogLog blob.
func NewHLL() []byte {
	b := make([]byte, hllDenseSize)
	copy(b, hllMagic[:])
	return b
}

// IsHLL reports whether b looks like an HLL blob.
func IsHLL(b []byte) bool {
	return len(b) == hllDenseSize && b[0] == 'H' && b[1] == 'Y' && b[2] == 'L' && b[3] == 'L'
}

func hllGetRegister(b []byte, i int) uint8 {
	bitPos := i * 6
	bytePos := hllHdrSize + bitPos/8
	shift := uint(bitPos % 8)
	v := uint16(b[bytePos])
	if bytePos+1 < len(b) {
		v |= uint16(b[bytePos+1]) << 8
	}
	return uint8(v>>shift) & 0x3f
}

func hllSetRegister(b []byte, i int, val uint8) {
	bitPos := i * 6
	bytePos := hllHdrSize + bitPos/8
	shift := uint(bitPos % 8)
	v := uint16(b[bytePos])
	if bytePos+1 < len(b) {
		v |= uint16(b[bytePos+1]) << 8
	}
	v &^= 0x3f << shift
	v |= uint16(val&0x3f) << shift
	b[bytePos] = byte(v)
	if bytePos+1 < len(b) {
		b[bytePos+1] = byte(v >> 8)
	}
}

// HLLAdd observes element in the HLL blob b; reports whether any register
// changed (the PFADD return value).
func HLLAdd(b []byte, element []byte) (bool, error) {
	if !IsHLL(b) {
		return false, ErrNotHLL
	}
	h := fnv.New64a()
	h.Write(element)
	x := h.Sum64()
	// FNV's dispersion on short sequential keys is too weak for register
	// indexing; run the murmur3 finalizer for full avalanche.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	idx := int(x & (hllRegisters - 1))
	rest := x >> hllP
	// Count leading zeros of the remaining 50 bits, +1.
	count := uint8(1)
	for rest&1 == 0 && count <= 64-hllP {
		count++
		rest >>= 1
	}
	if hllGetRegister(b, idx) < count {
		hllSetRegister(b, idx, count)
		return true, nil
	}
	return false, nil
}

// HLLCount estimates the cardinality of the HLL blob b.
func HLLCount(b []byte) (int64, error) {
	if !IsHLL(b) {
		return 0, ErrNotHLL
	}
	m := float64(hllRegisters)
	var sum float64
	zeros := 0
	for i := 0; i < hllRegisters; i++ {
		r := hllGetRegister(b, i)
		if r == 0 {
			zeros++
		}
		sum += 1.0 / float64(uint64(1)<<r)
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		est = m * math.Log(m/float64(zeros))
	}
	return int64(est + 0.5), nil
}

// HLLMerge merges src into dst register-wise (max per register).
func HLLMerge(dst, src []byte) error {
	if !IsHLL(dst) || !IsHLL(src) {
		return ErrNotHLL
	}
	for i := 0; i < hllRegisters; i++ {
		if s := hllGetRegister(src, i); s > hllGetRegister(dst, i) {
			hllSetRegister(dst, i, s)
		}
	}
	return nil
}
