package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZSetAddUpdateRemove(t *testing.T) {
	z := NewZSet()
	if !z.Add("a", 1) {
		t.Fatal("first Add must report new")
	}
	if z.Add("a", 2) {
		t.Fatal("update must not report new")
	}
	if s, ok := z.Score("a"); !ok || s != 2 {
		t.Fatalf("Score = %v %v", s, ok)
	}
	if !z.Remove("a") || z.Remove("a") {
		t.Fatal("Remove semantics broken")
	}
	if z.Len() != 0 {
		t.Fatalf("Len = %d", z.Len())
	}
}

func TestZSetRankAndRange(t *testing.T) {
	z := NewZSet()
	z.Add("c", 3)
	z.Add("a", 1)
	z.Add("b", 2)
	for i, m := range []string{"a", "b", "c"} {
		r, ok := z.Rank(m)
		if !ok || r != i {
			t.Fatalf("Rank(%s) = %d %v, want %d", m, r, ok, i)
		}
	}
	es := z.Range(0, -1)
	if len(es) != 3 || es[0].Member != "a" || es[2].Member != "c" {
		t.Fatalf("Range = %v", es)
	}
	rev := z.RevRange(0, 1)
	if len(rev) != 2 || rev[0].Member != "c" || rev[1].Member != "b" {
		t.Fatalf("RevRange = %v", rev)
	}
}

func TestZSetTieBreakByMember(t *testing.T) {
	z := NewZSet()
	z.Add("b", 1)
	z.Add("a", 1)
	es := z.Range(0, -1)
	if es[0].Member != "a" || es[1].Member != "b" {
		t.Fatalf("equal scores must order by member: %v", es)
	}
}

func TestZSetScoreRange(t *testing.T) {
	z := NewZSet()
	for i := 1; i <= 10; i++ {
		z.Add(fmt.Sprintf("m%02d", i), float64(i))
	}
	es := z.ScoreRange(3, 7, false, false, 0, -1)
	if len(es) != 5 || es[0].Score != 3 || es[4].Score != 7 {
		t.Fatalf("ScoreRange = %v", es)
	}
	// Exclusive bounds.
	es = z.ScoreRange(3, 7, true, true, 0, -1)
	if len(es) != 3 || es[0].Score != 4 || es[2].Score != 6 {
		t.Fatalf("exclusive ScoreRange = %v", es)
	}
	// Offset + limit.
	es = z.ScoreRange(NegInf, PosInf, false, false, 2, 3)
	if len(es) != 3 || es[0].Score != 3 {
		t.Fatalf("offset/limit ScoreRange = %v", es)
	}
}

func TestZSetCount(t *testing.T) {
	z := NewZSet()
	for i := 0; i < 10; i++ {
		z.Add(fmt.Sprintf("m%d", i), float64(i))
	}
	if got := z.Count(2, 5, false, false); got != 4 {
		t.Fatalf("Count = %d", got)
	}
	if got := z.Count(NegInf, PosInf, false, false); got != 10 {
		t.Fatalf("Count all = %d", got)
	}
}

func TestZSetPopMinMax(t *testing.T) {
	z := NewZSet()
	for i := 0; i < 5; i++ {
		z.Add(fmt.Sprintf("m%d", i), float64(i))
	}
	min := z.PopMin(2)
	if len(min) != 2 || min[0].Score != 0 || min[1].Score != 1 {
		t.Fatalf("PopMin = %v", min)
	}
	max := z.PopMax(2)
	if len(max) != 2 || max[0].Score != 4 || max[1].Score != 3 {
		t.Fatalf("PopMax = %v", max)
	}
	if z.Len() != 1 {
		t.Fatalf("Len = %d", z.Len())
	}
}

func TestZSetIncrBy(t *testing.T) {
	z := NewZSet()
	if s := z.IncrBy("m", 2.5); s != 2.5 {
		t.Fatalf("IncrBy new = %v", s)
	}
	if s := z.IncrBy("m", -1); s != 1.5 {
		t.Fatalf("IncrBy = %v", s)
	}
}

func TestZSetNegativeRangeIndices(t *testing.T) {
	z := NewZSet()
	for i := 0; i < 5; i++ {
		z.Add(fmt.Sprintf("m%d", i), float64(i))
	}
	es := z.Range(-2, -1)
	if len(es) != 2 || es[0].Member != "m3" {
		t.Fatalf("Range(-2,-1) = %v", es)
	}
	if es := z.Range(3, 1); es != nil {
		t.Fatalf("inverted range must be empty, got %v", es)
	}
	if es := z.Range(10, 20); es != nil {
		t.Fatalf("out-of-bounds range must be empty, got %v", es)
	}
}

// Property: the skiplist agrees with a sorted-slice reference model under
// random interleavings of add/update/remove.
func TestZSetMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZSet()
	ref := map[string]float64{}
	for step := 0; step < 5000; step++ {
		m := fmt.Sprintf("m%d", rng.Intn(50))
		switch rng.Intn(3) {
		case 0, 1:
			s := float64(rng.Intn(100))
			z.Add(m, s)
			ref[m] = s
		case 2:
			z.Remove(m)
			delete(ref, m)
		}
	}
	if z.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", z.Len(), len(ref))
	}
	type pair struct {
		m string
		s float64
	}
	want := make([]pair, 0, len(ref))
	for m, s := range ref {
		want = append(want, pair{m, s})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].s != want[j].s {
			return want[i].s < want[j].s
		}
		return want[i].m < want[j].m
	})
	got := z.Range(0, -1)
	for i := range want {
		if got[i].Member != want[i].m || got[i].Score != want[i].s {
			t.Fatalf("position %d: got %v want %v", i, got[i], want[i])
		}
		if r, _ := z.Rank(want[i].m); r != i {
			t.Fatalf("Rank(%s) = %d, want %d", want[i].m, r, i)
		}
	}
}

// Property: rank is always the number of entries strictly less than the
// member's (score, member) pair.
func TestZSetRankQuick(t *testing.T) {
	f := func(scores []uint8) bool {
		z := NewZSet()
		for i, s := range scores {
			z.Add(fmt.Sprintf("m%03d", i), float64(s%16))
		}
		es := z.Range(0, -1)
		for i, e := range es {
			if r, ok := z.Rank(e.Member); !ok || r != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZSetAdd(b *testing.B) {
	z := NewZSet()
	members := make([]string, 1024)
	for i := range members {
		members[i] = fmt.Sprintf("member-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Add(members[i%1024], float64(i))
	}
}

func BenchmarkZSetRank(b *testing.B) {
	z := NewZSet()
	for i := 0; i < 10000; i++ {
		z.Add(fmt.Sprintf("member-%d", i), float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(fmt.Sprintf("member-%d", i%10000))
	}
}
