package store

import (
	"fmt"
	"math"
	"testing"
)

func TestHLLEmpty(t *testing.T) {
	h := NewHLL()
	if !IsHLL(h) {
		t.Fatal("fresh HLL not recognized")
	}
	n, err := HLLCount(h)
	if err != nil || n != 0 {
		t.Fatalf("count = %d err %v", n, err)
	}
}

func TestHLLAddChanges(t *testing.T) {
	h := NewHLL()
	changed, err := HLLAdd(h, []byte("a"))
	if err != nil || !changed {
		t.Fatalf("first add: changed=%v err=%v", changed, err)
	}
	changed, _ = HLLAdd(h, []byte("a"))
	if changed {
		t.Fatal("re-adding the same element must not change registers")
	}
}

func TestHLLErrorBound(t *testing.T) {
	// Standard error is ~0.81% at 2^14 registers; allow 3 sigma.
	for _, n := range []int{100, 1000, 100000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			HLLAdd(h, []byte(fmt.Sprintf("element-%d", i)))
		}
		got, err := HLLCount(h)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(float64(got)-float64(n)) / float64(n)
		if relErr > 0.03 {
			t.Errorf("n=%d: estimate %d, relative error %.3f > 3%%", n, got, relErr)
		}
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(), NewHLL()
	for i := 0; i < 5000; i++ {
		HLLAdd(a, []byte(fmt.Sprintf("a-%d", i)))
		HLLAdd(b, []byte(fmt.Sprintf("b-%d", i)))
	}
	if err := HLLMerge(a, b); err != nil {
		t.Fatal(err)
	}
	got, _ := HLLCount(a)
	relErr := math.Abs(float64(got)-10000) / 10000
	if relErr > 0.03 {
		t.Fatalf("merged estimate %d, relative error %.3f", got, relErr)
	}
}

func TestHLLMergeIdempotent(t *testing.T) {
	a, b := NewHLL(), NewHLL()
	for i := 0; i < 1000; i++ {
		HLLAdd(a, []byte(fmt.Sprintf("x-%d", i)))
		HLLAdd(b, []byte(fmt.Sprintf("x-%d", i))) // same elements
	}
	before, _ := HLLCount(a)
	HLLMerge(a, b)
	after, _ := HLLCount(a)
	if before != after {
		t.Fatalf("merging identical sets changed the estimate: %d -> %d", before, after)
	}
}

func TestHLLRejectsGarbage(t *testing.T) {
	if IsHLL([]byte("not an hll")) {
		t.Fatal("garbage accepted")
	}
	if _, err := HLLCount([]byte("junk")); err == nil {
		t.Fatal("count on junk succeeded")
	}
	if _, err := HLLAdd([]byte("junk"), []byte("x")); err == nil {
		t.Fatal("add on junk succeeded")
	}
	if err := HLLMerge(NewHLL(), []byte("junk")); err == nil {
		t.Fatal("merge with junk succeeded")
	}
}

func TestHLLRegisterPacking(t *testing.T) {
	h := NewHLL()
	// Write every register with a distinct 6-bit value and read back.
	for i := 0; i < hllRegisters; i++ {
		hllSetRegister(h, i, uint8(i%64))
	}
	for i := 0; i < hllRegisters; i++ {
		if got := hllGetRegister(h, i); got != uint8(i%64) {
			t.Fatalf("register %d = %d, want %d", i, got, i%64)
		}
	}
}
