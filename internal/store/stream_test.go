package store

import (
	"errors"
	"testing"
)

func TestStreamIDParse(t *testing.T) {
	cases := []struct {
		in     string
		defSeq uint64
		want   StreamID
		err    bool
	}{
		{"5-3", 0, StreamID{5, 3}, false},
		{"5", 7, StreamID{5, 7}, false},
		{"-", 0, StreamID{}, false},
		{"+", 0, StreamID{^uint64(0), ^uint64(0)}, false},
		{"abc", 0, StreamID{}, true},
		{"5-x", 0, StreamID{}, true},
	}
	for _, c := range cases {
		got, err := ParseStreamID(c.in, c.defSeq)
		if (err != nil) != c.err {
			t.Errorf("ParseStreamID(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseStreamID(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStreamIDOrdering(t *testing.T) {
	a := StreamID{1, 5}
	b := StreamID{2, 0}
	c := StreamID{2, 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("ordering broken")
	}
	if n := a.Next(); n != (StreamID{1, 6}) {
		t.Fatalf("Next = %v", n)
	}
	if n := (StreamID{1, ^uint64(0)}).Next(); n != (StreamID{2, 0}) {
		t.Fatalf("Next overflow = %v", n)
	}
}

func TestStreamAutoIDs(t *testing.T) {
	s := NewStream()
	id1, err := s.Add(StreamID{}, true, 100, [][]byte{[]byte("f"), []byte("v")})
	if err != nil || id1 != (StreamID{100, 0}) {
		t.Fatalf("id1 = %v err %v", id1, err)
	}
	// Same millisecond: sequence increments.
	id2, _ := s.Add(StreamID{}, true, 100, [][]byte{[]byte("f"), []byte("v")})
	if id2 != (StreamID{100, 1}) {
		t.Fatalf("id2 = %v", id2)
	}
	// Clock going backwards still yields a larger ID.
	id3, _ := s.Add(StreamID{}, true, 50, [][]byte{[]byte("f"), []byte("v")})
	if !id2.Less(id3) {
		t.Fatalf("id3 = %v not after %v", id3, id2)
	}
}

func TestStreamExplicitIDMustIncrease(t *testing.T) {
	s := NewStream()
	if _, err := s.Add(StreamID{5, 0}, false, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(StreamID{5, 0}, false, 0, nil); !errors.Is(err, ErrStreamIDTooSmall) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Add(StreamID{4, 9}, false, 0, nil); !errors.Is(err, ErrStreamIDTooSmall) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamRangeAndAfter(t *testing.T) {
	s := NewStream()
	for i := uint64(1); i <= 5; i++ {
		s.Add(StreamID{i, 0}, false, 0, [][]byte{[]byte("n"), []byte{byte('0' + i)}})
	}
	got := s.Range(StreamID{2, 0}, StreamID{4, 0}, 0)
	if len(got) != 3 || got[0].ID.Ms != 2 || got[2].ID.Ms != 4 {
		t.Fatalf("Range = %v", got)
	}
	if got := s.Range(StreamID{}, StreamID{^uint64(0), 0}, 2); len(got) != 2 {
		t.Fatalf("count-limited Range = %v", got)
	}
	after := s.After(StreamID{3, 0}, 0)
	if len(after) != 2 || after[0].ID.Ms != 4 {
		t.Fatalf("After = %v", after)
	}
}

func TestStreamTrimAndDelete(t *testing.T) {
	s := NewStream()
	for i := uint64(1); i <= 10; i++ {
		s.Add(StreamID{i, 0}, false, 0, [][]byte{[]byte("f"), []byte("v")})
	}
	if removed := s.TrimMaxLen(4); removed != 6 {
		t.Fatalf("TrimMaxLen removed %d", removed)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	// LastID survives trims.
	if s.LastID() != (StreamID{10, 0}) {
		t.Fatalf("LastID = %v", s.LastID())
	}
	if !s.Delete(StreamID{8, 0}) || s.Delete(StreamID{8, 0}) {
		t.Fatal("Delete semantics broken")
	}
	if s.Len() != 3 {
		t.Fatalf("Len after delete = %d", s.Len())
	}
}
