// Package store implements the in-memory data structures of the execution
// engine: strings, hashes, lists, sets, sorted sets (skiplist), streams and
// HyperLogLogs, with per-key TTLs and a slot index used by cluster
// resharding. The store is not internally synchronized: like Redis, a
// single engine workloop owns it (package engine).
package store

import (
	"time"

	"memorydb/internal/crc16"
)

// Kind enumerates value types.
type Kind uint8

// Value kinds stored in the keyspace.
const (
	KindNone Kind = iota
	KindString
	KindHash
	KindList
	KindSet
	KindZSet
	KindStream
)

// String returns the Redis TYPE name for k.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindHash:
		return "hash"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindZSet:
		return "zset"
	case KindStream:
		return "stream"
	}
	return "none"
}

// Object is a single keyspace value. Exactly one of the typed fields is
// populated, according to Kind. HyperLogLogs are stored as KindString with
// the dense HLL representation in Str, matching Redis.
type Object struct {
	Kind   Kind
	Str    []byte
	Hash   map[string][]byte
	Set    map[string]struct{}
	List   *List
	ZSet   *ZSet
	Stream *Stream
}

// SizeOf estimates the in-memory footprint of o in bytes. The estimate
// feeds maxmemory accounting and the memsim fork/COW model.
func (o *Object) SizeOf() int64 {
	const overhead = 48
	switch o.Kind {
	case KindString:
		return overhead + int64(len(o.Str))
	case KindHash:
		var n int64
		for f, v := range o.Hash {
			n += int64(len(f)+len(v)) + 64
		}
		return overhead + n
	case KindSet:
		var n int64
		for m := range o.Set {
			n += int64(len(m)) + 48
		}
		return overhead + n
	case KindList:
		return overhead + o.List.MemUsage()
	case KindZSet:
		return overhead + o.ZSet.MemUsage()
	case KindStream:
		return overhead + o.Stream.MemUsage()
	}
	return overhead
}

// DB is the keyspace: a flat map of keys to objects, expirations in unix
// milliseconds, and a per-slot key index maintained for slot migration.
type DB struct {
	data    map[string]*Object
	expires map[string]int64 // unix ms; present only for volatile keys
	slots   [crc16.NumSlots]map[string]struct{}

	usedBytes int64 // running footprint estimate
	dirty     int64 // mutations since last snapshot
}

// NewDB returns an empty keyspace.
func NewDB() *DB {
	return &DB{
		data:    make(map[string]*Object),
		expires: make(map[string]int64),
	}
}

// Len returns the number of live keys (including not-yet-reaped expired
// keys; callers that need exactness should sweep first).
func (db *DB) Len() int { return len(db.data) }

// UsedBytes returns the running memory footprint estimate.
func (db *DB) UsedBytes() int64 { return db.usedBytes }

// Dirty returns the number of mutations applied since the last ResetDirty.
func (db *DB) Dirty() int64 { return db.dirty }

// ResetDirty zeroes the dirty counter (called after a snapshot).
func (db *DB) ResetDirty() { db.dirty = 0 }

// MarkDirty records n logical mutations.
func (db *DB) MarkDirty(n int64) { db.dirty += n }

// Lookup returns the object at key if present and not expired at now.
// Expired keys are lazily reaped (caller is the engine workloop, so this
// mutation is safe). The reaped flag reports whether a lazy expiry
// happened, which the engine must replicate as a deterministic delete.
func (db *DB) Lookup(key string, now time.Time) (obj *Object, reaped bool) {
	o, ok := db.data[key]
	if !ok {
		return nil, false
	}
	if exp, ok := db.expires[key]; ok && exp <= now.UnixMilli() {
		db.remove(key)
		return nil, true
	}
	return o, false
}

// Peek returns the object at key without expiry processing.
func (db *DB) Peek(key string) (*Object, bool) {
	o, ok := db.data[key]
	return o, ok
}

// Set stores obj at key, replacing any previous value and clearing any TTL
// (matching SET semantics; commands that preserve TTL must re-arm it).
func (db *DB) Set(key string, obj *Object) {
	db.remove(key)
	db.data[key] = obj
	db.usedBytes += int64(len(key)) + obj.SizeOf()
	slot := crc16.Slot(key)
	if db.slots[slot] == nil {
		db.slots[slot] = make(map[string]struct{})
	}
	db.slots[slot][key] = struct{}{}
	db.dirty++
}

// SetKeepTTL stores obj at key preserving an existing expiration.
func (db *DB) SetKeepTTL(key string, obj *Object) {
	exp, hadTTL := db.expires[key]
	db.Set(key, obj)
	if hadTTL {
		db.expires[key] = exp
	}
}

// Touch bumps the dirty counter after an in-place mutation of key's
// object. Callers that changed the footprint pair it with AdjustUsed.
func (db *DB) Touch(key string) {
	db.dirty++
}

// AdjustUsed applies a footprint delta after an in-place mutation.
func (db *DB) AdjustUsed(delta int64) {
	db.usedBytes += delta
	if db.usedBytes < 0 {
		db.usedBytes = 0
	}
}

// Delete removes key, returning whether it existed (expired keys count as
// absent at now).
func (db *DB) Delete(key string, now time.Time) bool {
	if _, ok := db.data[key]; !ok {
		return false
	}
	if exp, ok := db.expires[key]; ok && exp <= now.UnixMilli() {
		db.remove(key)
		return false
	}
	db.remove(key)
	db.dirty++
	return true
}

func (db *DB) remove(key string) {
	o, ok := db.data[key]
	if !ok {
		return
	}
	db.usedBytes -= int64(len(key)) + o.SizeOf()
	if db.usedBytes < 0 {
		db.usedBytes = 0
	}
	delete(db.data, key)
	delete(db.expires, key)
	slot := crc16.Slot(key)
	if s := db.slots[slot]; s != nil {
		delete(s, key)
	}
}

// Expire sets the expiration of key to at (unix ms). Returns false if the
// key does not exist.
func (db *DB) Expire(key string, at int64, now time.Time) bool {
	if o, _ := db.Lookup(key, now); o == nil {
		return false
	}
	if at <= now.UnixMilli() {
		db.remove(key)
		db.dirty++
		return true
	}
	db.expires[key] = at
	db.dirty++
	return true
}

// Persist removes the TTL from key; reports whether a TTL was removed.
func (db *DB) Persist(key string, now time.Time) bool {
	if o, _ := db.Lookup(key, now); o == nil {
		return false
	}
	if _, ok := db.expires[key]; !ok {
		return false
	}
	delete(db.expires, key)
	db.dirty++
	return true
}

// TTL returns the remaining lifetime of key at now.
// ok=false: key missing. hasTTL=false: key exists but is persistent.
func (db *DB) TTL(key string, now time.Time) (d time.Duration, hasTTL, ok bool) {
	if o, _ := db.Lookup(key, now); o == nil {
		return 0, false, false
	}
	exp, has := db.expires[key]
	if !has {
		return 0, false, true
	}
	return time.Duration(exp-now.UnixMilli()) * time.Millisecond, true, true
}

// ExpireAt returns the raw expiration (unix ms) for key, if any.
func (db *DB) ExpireAt(key string) (int64, bool) {
	e, ok := db.expires[key]
	return e, ok
}

// Keys returns all live keys at now matching the glob pattern.
func (db *DB) Keys(pattern string, now time.Time) []string {
	var out []string
	nowMs := now.UnixMilli()
	for k := range db.data {
		if exp, ok := db.expires[k]; ok && exp <= nowMs {
			continue
		}
		if GlobMatch(pattern, k) {
			out = append(out, k)
		}
	}
	return out
}

// SlotKeys returns up to limit keys stored in slot (limit<=0: all).
func (db *DB) SlotKeys(slot uint16, limit int) []string {
	s := db.slots[slot]
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// SlotCount returns the number of keys in slot.
func (db *DB) SlotCount(slot uint16) int { return len(db.slots[slot]) }

// SweepExpired removes up to limit keys whose TTL has passed at now and
// returns them. The engine replicates each as a delete so that replicas and
// the transaction log observe deterministic expiry.
func (db *DB) SweepExpired(now time.Time, limit int) []string {
	nowMs := now.UnixMilli()
	var out []string
	for k, exp := range db.expires {
		if exp <= nowMs {
			db.remove(k)
			out = append(out, k)
			if len(out) >= limit {
				break
			}
		}
	}
	return out
}

// ForEach visits every live key/object pair at now. Iteration order is the
// map order (unspecified). The callback must not mutate the keyspace.
func (db *DB) ForEach(now time.Time, fn func(key string, obj *Object, expireAt int64) bool) {
	nowMs := now.UnixMilli()
	for k, o := range db.data {
		exp, has := db.expires[k]
		if has && exp <= nowMs {
			continue
		}
		if !has {
			exp = 0
		}
		if !fn(k, o, exp) {
			return
		}
	}
}

// Flush drops the entire keyspace.
func (db *DB) Flush() {
	db.data = make(map[string]*Object)
	db.expires = make(map[string]int64)
	for i := range db.slots {
		db.slots[i] = nil
	}
	db.usedBytes = 0
	db.dirty++
}

// RandomKey returns an arbitrary live key at now, or "" if empty.
func (db *DB) RandomKey(now time.Time) (string, bool) {
	nowMs := now.UnixMilli()
	for k := range db.data {
		if exp, ok := db.expires[k]; ok && exp <= nowMs {
			continue
		}
		return k, true
	}
	return "", false
}
