// Package store implements the in-memory data structures of the execution
// engine: strings, hashes, lists, sets, sorted sets (skiplist), streams and
// HyperLogLogs, with per-key TTLs and a slot index used by cluster
// resharding. The keyspace is striped into NumParts slot-aligned parts so
// that sharded engine workloops (package core) can each own a disjoint
// subset of parts without locking: a part is only ever touched by the
// workloop that owns its slot range (or by a coordinator that has quiesced
// every workloop). Within a part the store is not internally synchronized,
// like Redis. The aggregate counters (key count, footprint, dirty) are
// atomics so monitoring can read them without stopping the workloops.
package store

import (
	"sync/atomic"
	"time"

	"memorydb/internal/crc16"
)

// NumParts is the number of slot-aligned stripes the keyspace is divided
// into. Each part covers a contiguous range of crc16 slots
// (crc16.NumSlots/NumParts = 256 slots per part), and a sharded node
// assigns whole parts to sub-engine workloops, so NumParts is also the
// maximum useful shard count.
const NumParts = 64

// slotsPerPartShift is log2(crc16.NumSlots / NumParts).
const slotsPerPartShift = 8

// PartOfSlot returns the part index owning a crc16 slot.
func PartOfSlot(slot uint16) int { return int(slot >> slotsPerPartShift) }

// PartOfKey returns the part index owning a key.
func PartOfKey(key string) int { return PartOfSlot(crc16.Slot(key)) }

// Kind enumerates value types.
type Kind uint8

// Value kinds stored in the keyspace.
const (
	KindNone Kind = iota
	KindString
	KindHash
	KindList
	KindSet
	KindZSet
	KindStream
)

// String returns the Redis TYPE name for k.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindHash:
		return "hash"
	case KindList:
		return "list"
	case KindSet:
		return "set"
	case KindZSet:
		return "zset"
	case KindStream:
		return "stream"
	}
	return "none"
}

// Object is a single keyspace value. Exactly one of the typed fields is
// populated, according to Kind. HyperLogLogs are stored as KindString with
// the dense HLL representation in Str, matching Redis.
type Object struct {
	Kind   Kind
	Str    []byte
	Hash   map[string][]byte
	Set    map[string]struct{}
	List   *List
	ZSet   *ZSet
	Stream *Stream
}

// SizeOf estimates the in-memory footprint of o in bytes. The estimate
// feeds maxmemory accounting and the memsim fork/COW model.
func (o *Object) SizeOf() int64 {
	const overhead = 48
	switch o.Kind {
	case KindString:
		return overhead + int64(len(o.Str))
	case KindHash:
		var n int64
		for f, v := range o.Hash {
			n += int64(len(f)+len(v)) + 64
		}
		return overhead + n
	case KindSet:
		var n int64
		for m := range o.Set {
			n += int64(len(m)) + 48
		}
		return overhead + n
	case KindList:
		return overhead + o.List.MemUsage()
	case KindZSet:
		return overhead + o.ZSet.MemUsage()
	case KindStream:
		return overhead + o.Stream.MemUsage()
	}
	return overhead
}

// part is one slot-aligned stripe of the keyspace.
type part struct {
	data    map[string]*Object
	expires map[string]int64 // unix ms; present only for volatile keys
}

// DB is the keyspace: keys to objects with expirations in unix
// milliseconds, striped into NumParts slot-aligned parts, plus a per-slot
// key index maintained for slot migration.
type DB struct {
	parts [NumParts]part
	slots [crc16.NumSlots]map[string]struct{}

	length    atomic.Int64 // live key count (including not-yet-reaped)
	usedBytes atomic.Int64 // running footprint estimate
	dirty     atomic.Int64 // mutations since last snapshot
}

// NewDB returns an empty keyspace.
func NewDB() *DB {
	db := &DB{}
	for i := range db.parts {
		db.parts[i] = part{
			data:    make(map[string]*Object),
			expires: make(map[string]int64),
		}
	}
	return db
}

func (db *DB) part(key string) *part { return &db.parts[PartOfKey(key)] }

// Len returns the number of live keys (including not-yet-reaped expired
// keys; callers that need exactness should sweep first).
func (db *DB) Len() int { return int(db.length.Load()) }

// UsedBytes returns the running memory footprint estimate.
func (db *DB) UsedBytes() int64 { return db.usedBytes.Load() }

// Dirty returns the number of mutations applied since the last ResetDirty.
func (db *DB) Dirty() int64 { return db.dirty.Load() }

// ResetDirty zeroes the dirty counter (called after a snapshot).
func (db *DB) ResetDirty() { db.dirty.Store(0) }

// MarkDirty records n logical mutations.
func (db *DB) MarkDirty(n int64) { db.dirty.Add(n) }

// Lookup returns the object at key if present and not expired at now.
// Expired keys are lazily reaped (caller is the engine workloop owning the
// key's part, so this mutation is safe). The reaped flag reports whether a
// lazy expiry happened, which the engine must replicate as a deterministic
// delete.
func (db *DB) Lookup(key string, now time.Time) (obj *Object, reaped bool) {
	p := db.part(key)
	o, ok := p.data[key]
	if !ok {
		return nil, false
	}
	if exp, ok := p.expires[key]; ok && exp <= now.UnixMilli() {
		db.remove(key)
		return nil, true
	}
	return o, false
}

// Peek returns the object at key without expiry processing.
func (db *DB) Peek(key string) (*Object, bool) {
	o, ok := db.part(key).data[key]
	return o, ok
}

// Set stores obj at key, replacing any previous value and clearing any TTL
// (matching SET semantics; commands that preserve TTL must re-arm it).
func (db *DB) Set(key string, obj *Object) {
	db.remove(key)
	slot := crc16.Slot(key)
	p := &db.parts[PartOfSlot(slot)]
	p.data[key] = obj
	db.length.Add(1)
	db.usedBytes.Add(int64(len(key)) + obj.SizeOf())
	if db.slots[slot] == nil {
		db.slots[slot] = make(map[string]struct{})
	}
	db.slots[slot][key] = struct{}{}
	db.dirty.Add(1)
}

// SetKeepTTL stores obj at key preserving an existing expiration.
func (db *DB) SetKeepTTL(key string, obj *Object) {
	p := db.part(key)
	exp, hadTTL := p.expires[key]
	db.Set(key, obj)
	if hadTTL {
		p.expires[key] = exp
	}
}

// Touch bumps the dirty counter after an in-place mutation of key's
// object. Callers that changed the footprint pair it with AdjustUsed.
func (db *DB) Touch(key string) {
	db.dirty.Add(1)
}

// AdjustUsed applies a footprint delta after an in-place mutation.
func (db *DB) AdjustUsed(delta int64) {
	if v := db.usedBytes.Add(delta); v < 0 {
		db.usedBytes.Store(0)
	}
}

// Delete removes key, returning whether it existed (expired keys count as
// absent at now).
func (db *DB) Delete(key string, now time.Time) bool {
	p := db.part(key)
	if _, ok := p.data[key]; !ok {
		return false
	}
	if exp, ok := p.expires[key]; ok && exp <= now.UnixMilli() {
		db.remove(key)
		return false
	}
	db.remove(key)
	db.dirty.Add(1)
	return true
}

func (db *DB) remove(key string) {
	slot := crc16.Slot(key)
	p := &db.parts[PartOfSlot(slot)]
	o, ok := p.data[key]
	if !ok {
		return
	}
	if v := db.usedBytes.Add(-(int64(len(key)) + o.SizeOf())); v < 0 {
		db.usedBytes.Store(0)
	}
	delete(p.data, key)
	delete(p.expires, key)
	db.length.Add(-1)
	if s := db.slots[slot]; s != nil {
		delete(s, key)
	}
}

// Expire sets the expiration of key to at (unix ms). Returns false if the
// key does not exist.
func (db *DB) Expire(key string, at int64, now time.Time) bool {
	if o, _ := db.Lookup(key, now); o == nil {
		return false
	}
	if at <= now.UnixMilli() {
		db.remove(key)
		db.dirty.Add(1)
		return true
	}
	db.part(key).expires[key] = at
	db.dirty.Add(1)
	return true
}

// Persist removes the TTL from key; reports whether a TTL was removed.
func (db *DB) Persist(key string, now time.Time) bool {
	if o, _ := db.Lookup(key, now); o == nil {
		return false
	}
	p := db.part(key)
	if _, ok := p.expires[key]; !ok {
		return false
	}
	delete(p.expires, key)
	db.dirty.Add(1)
	return true
}

// TTL returns the remaining lifetime of key at now.
// ok=false: key missing. hasTTL=false: key exists but is persistent.
func (db *DB) TTL(key string, now time.Time) (d time.Duration, hasTTL, ok bool) {
	if o, _ := db.Lookup(key, now); o == nil {
		return 0, false, false
	}
	exp, has := db.part(key).expires[key]
	if !has {
		return 0, false, true
	}
	return time.Duration(exp-now.UnixMilli()) * time.Millisecond, true, true
}

// ExpireAt returns the raw expiration (unix ms) for key, if any.
func (db *DB) ExpireAt(key string) (int64, bool) {
	e, ok := db.part(key).expires[key]
	return e, ok
}

// Keys returns all live keys at now matching the glob pattern.
func (db *DB) Keys(pattern string, now time.Time) []string {
	var out []string
	nowMs := now.UnixMilli()
	for i := range db.parts {
		p := &db.parts[i]
		for k := range p.data {
			if exp, ok := p.expires[k]; ok && exp <= nowMs {
				continue
			}
			if GlobMatch(pattern, k) {
				out = append(out, k)
			}
		}
	}
	return out
}

// SlotKeys returns up to limit keys stored in slot (limit<=0: all).
func (db *DB) SlotKeys(slot uint16, limit int) []string {
	s := db.slots[slot]
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// SlotCount returns the number of keys in slot.
func (db *DB) SlotCount(slot uint16) int { return len(db.slots[slot]) }

// SweepExpired removes up to limit keys whose TTL has passed at now and
// returns them. The engine replicates each as a delete so that replicas and
// the transaction log observe deterministic expiry.
func (db *DB) SweepExpired(now time.Time, limit int) []string {
	return db.SweepExpiredParts(now, limit, 0, NumParts)
}

// SweepExpiredParts is SweepExpired restricted to parts [lo, hi). Sharded
// workloops sweep only the parts they own, so an expired delete is always
// emitted by — and group-committed behind — the same buffer as the writes
// that created the key, preserving replica apply order per key.
func (db *DB) SweepExpiredParts(now time.Time, limit, lo, hi int) []string {
	nowMs := now.UnixMilli()
	var out []string
	for i := lo; i < hi && i < NumParts; i++ {
		for k, exp := range db.parts[i].expires {
			if exp <= nowMs {
				db.remove(k)
				out = append(out, k)
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// ForEach visits every live key/object pair at now. Iteration order is the
// part order, then map order within a part (unspecified). The callback must
// not mutate the keyspace.
func (db *DB) ForEach(now time.Time, fn func(key string, obj *Object, expireAt int64) bool) {
	nowMs := now.UnixMilli()
	for i := range db.parts {
		p := &db.parts[i]
		for k, o := range p.data {
			exp, has := p.expires[k]
			if has && exp <= nowMs {
				continue
			}
			if !has {
				exp = 0
			}
			if !fn(k, o, exp) {
				return
			}
		}
	}
}

// Flush drops the entire keyspace.
func (db *DB) Flush() {
	for i := range db.parts {
		db.parts[i] = part{
			data:    make(map[string]*Object),
			expires: make(map[string]int64),
		}
	}
	for i := range db.slots {
		db.slots[i] = nil
	}
	db.length.Store(0)
	db.usedBytes.Store(0)
	db.dirty.Add(1)
}

// RandomKey returns an arbitrary live key at now, or "" if empty.
func (db *DB) RandomKey(now time.Time) (string, bool) {
	nowMs := now.UnixMilli()
	for i := range db.parts {
		p := &db.parts[i]
		for k := range p.data {
			if exp, ok := p.expires[k]; ok && exp <= nowMs {
				continue
			}
			return k, true
		}
	}
	return "", false
}
