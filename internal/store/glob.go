package store

// GlobMatch implements Redis's stringmatchlen glob: '*' any sequence, '?'
// any single character, '[a-z]' character classes with '^' negation, and
// '\' escapes.
func GlobMatch(pattern, s string) bool {
	p, si := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		if p < len(pattern) {
			switch pattern[p] {
			case '*':
				starP, starS = p, si
				p++
				continue
			case '?':
				p++
				si++
				continue
			case '[':
				if end, ok := matchClass(pattern, p, s[si]); ok {
					p = end
					si++
					continue
				}
			case '\\':
				if p+1 < len(pattern) && pattern[p+1] == s[si] {
					p += 2
					si++
					continue
				}
			default:
				if pattern[p] == s[si] {
					p++
					si++
					continue
				}
			}
		}
		if starP >= 0 {
			starS++
			si = starS
			p = starP + 1
			continue
		}
		return false
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// matchClass matches c against the class starting at pattern[p]=='['.
// Returns the index just past ']' and whether c matched.
func matchClass(pattern string, p int, c byte) (int, bool) {
	i := p + 1
	neg := false
	if i < len(pattern) && pattern[i] == '^' {
		neg = true
		i++
	}
	matched := false
	first := true
	for i < len(pattern) && (pattern[i] != ']' || first) {
		first = false
		if pattern[i] == '\\' && i+1 < len(pattern) {
			i++
			if pattern[i] == c {
				matched = true
			}
			i++
			continue
		}
		if i+2 < len(pattern) && pattern[i+1] == '-' && pattern[i+2] != ']' {
			lo, hi := pattern[i], pattern[i+2]
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo <= c && c <= hi {
				matched = true
			}
			i += 3
			continue
		}
		if pattern[i] == c {
			matched = true
		}
		i++
	}
	if i >= len(pattern) {
		return p, false // unterminated class: treat as literal mismatch
	}
	i++ // skip ']'
	if neg {
		matched = !matched
	}
	return i, matched
}
