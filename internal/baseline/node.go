// Package baseline implements an OSS-Redis-mode deployment over the same
// execution engine: asynchronous primary→replica replication, WAIT,
// an append-only file with configurable fsync, and the ranked (unsafe)
// failover of Redis cluster — the baseline MemoryDB is evaluated against
// throughout the paper, and the system whose data-loss modes (§2.2)
// motivate MemoryDB's design.
package baseline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
)

// Config parameterizes a baseline node.
type Config struct {
	NodeID string
	Clock  clock.Clock
	// ReplDelay models the asynchronous replication lag to this node
	// (applies to a replica's apply path). Defaults to zero.
	ReplDelay netsim.LatencyModel
	// AOF, when set, persists the effect stream with the configured
	// fsync policy (§2.2.1).
	AOF *AOF
}

// ErrStopped is returned once the node has been stopped.
var ErrStopped = errors.New("baseline: node stopped")

// Node is one OSS-mode node.
type Node struct {
	cfg Config
	eng *engine.Engine

	mu        sync.Mutex
	isPrimary bool
	replicas  []*Node
	stopped   bool

	tasks  chan *task
	stopCh chan struct{}
	wg     sync.WaitGroup

	// masterOffset is the primary's replication offset (bytes of effects
	// produced). ackedOffset is, on a replica, how far it has applied.
	masterOffset atomic.Int64
	ackedOffset  atomic.Int64

	replIn chan replItem
}

type replItem struct {
	offset  int64
	effects [][]byte
}

type task struct {
	argv      [][]byte
	reply     chan resp.Value
	snapshotW func() // closure executed inside the workloop (BGSave, applies)
}

// NewPrimary starts a primary node.
func NewPrimary(cfg Config) *Node {
	n := newNode(cfg)
	n.isPrimary = true
	return n
}

func newNode(cfg Config) *Node {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.ReplDelay == nil {
		cfg.ReplDelay = netsim.Zero{}
	}
	n := &Node{
		cfg:    cfg,
		eng:    engine.New(cfg.Clock),
		tasks:  make(chan *task, 1024),
		stopCh: make(chan struct{}),
		replIn: make(chan replItem, 65536),
	}
	n.wg.Add(1)
	go n.workloop()
	return n
}

// AddReplica attaches a new replica with its own replication lag.
func (n *Node) AddReplica(cfg Config) *Node {
	r := newNode(cfg)
	r.wg.Add(1)
	go r.replApplyLoop()
	n.mu.Lock()
	n.replicas = append(n.replicas, r)
	n.mu.Unlock()
	return r
}

// Stop terminates the node (and not its replicas).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stopCh)
	n.wg.Wait()
}

// Stopped reports whether the node was stopped.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// ID returns the node ID.
func (n *Node) ID() string { return n.cfg.NodeID }

// IsPrimary reports the node's role.
func (n *Node) IsPrimary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isPrimary
}

// MasterOffset returns the primary's produced replication offset.
func (n *Node) MasterOffset() int64 { return n.masterOffset.Load() }

// AckedOffset returns how far this replica has applied.
func (n *Node) AckedOffset() int64 { return n.ackedOffset.Load() }

// Do executes one command. On a primary, mutations are acknowledged
// immediately after local execution — replication is asynchronous, which
// is exactly the window where OSS Redis can lose acknowledged writes on
// failover (§2.2).
func (n *Node) Do(ctx context.Context, argv [][]byte) (resp.Value, error) {
	t := &task{argv: argv, reply: make(chan resp.Value, 1)}
	select {
	case n.tasks <- t:
	case <-n.stopCh:
		return resp.Value{}, ErrStopped
	case <-ctx.Done():
		return resp.Value{}, ctx.Err()
	}
	select {
	case v := <-t.reply:
		return v, nil
	case <-n.stopCh:
		return resp.Value{}, ErrStopped
	case <-ctx.Done():
		return resp.Value{}, ctx.Err()
	}
}

// Wait implements the WAIT command: block until numReplicas replicas have
// acknowledged the current master offset (§2.2.2). It does not stop other
// clients from observing unacknowledged data.
func (n *Node) Wait(ctx context.Context, numReplicas int) (int, error) {
	target := n.masterOffset.Load()
	for {
		acked := 0
		n.mu.Lock()
		reps := append([]*Node(nil), n.replicas...)
		n.mu.Unlock()
		for _, r := range reps {
			if r.ackedOffset.Load() >= target {
				acked++
			}
		}
		if acked >= numReplicas {
			return acked, nil
		}
		select {
		case <-ctx.Done():
			return acked, ctx.Err()
		case <-n.stopCh:
			return acked, ErrStopped
		default:
			n.cfg.Clock.Sleep(100 * time.Microsecond)
		}
	}
}

func (n *Node) workloop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case t := <-n.tasks:
			if t.snapshotW != nil {
				t.snapshotW()
				if t.reply != nil {
					t.reply <- resp.OK
				}
				continue
			}
			res := n.eng.Exec(t.argv)
			if res.Mutated() && n.IsPrimary() {
				payload := engine.EncodeRecord(res.Effects)
				off := n.masterOffset.Add(int64(len(payload)))
				if n.cfg.AOF != nil {
					n.cfg.AOF.Append(payload)
				}
				n.mu.Lock()
				reps := append([]*Node(nil), n.replicas...)
				n.mu.Unlock()
				for _, r := range reps {
					select {
					case r.replIn <- replItem{offset: off, effects: res.Effects}:
					default:
						// A replica that cannot keep up drops out of the
						// replication stream (it would resync in Redis);
						// for the baseline model it simply lags forever.
					}
				}
			}
			t.reply <- res.Reply
		}
	}
}

// replApplyLoop applies the asynchronous replication stream on a replica
// after its configured lag.
func (n *Node) replApplyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case item := <-n.replIn:
			if d := n.cfg.ReplDelay.Sample(); d > 0 {
				n.cfg.Clock.Sleep(d)
			}
			t := &task{argv: nil, reply: make(chan resp.Value, 1)}
			t.snapshotW = func() {
				for _, eff := range item.effects {
					_ = n.eng.Apply(eff)
				}
				n.ackedOffset.Store(item.offset)
			}
			select {
			case n.tasks <- t:
				select {
				case <-t.reply:
				case <-n.stopCh:
					return
				}
			case <-n.stopCh:
				return
			}
		}
	}
}

// Engine exposes the node's engine (tests, snapshot experiments).
func (n *Node) Engine() *engine.Engine { return n.eng }

// ExecInWorkloop runs fn inside the workloop (BGSave-style consistent
// access to the keyspace).
func (n *Node) ExecInWorkloop(ctx context.Context, fn func()) error {
	t := &task{snapshotW: fn, reply: make(chan resp.Value, 1)}
	select {
	case n.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCh:
		return ErrStopped
	}
	select {
	case <-t.reply:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCh:
		return ErrStopped
	}
}
