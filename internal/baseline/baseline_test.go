package baseline

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/netsim"
)

func do(t *testing.T, n *Node, args ...string) string {
	t.Helper()
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	v, err := n.Do(context.Background(), argv)
	if err != nil {
		t.Fatalf("Do(%v): %v", args, err)
	}
	if v.IsError() {
		t.Fatalf("Do(%v) = %v", args, v)
	}
	if v.Null {
		return "<nil>"
	}
	return v.Text()
}

func TestPrimaryReadWrite(t *testing.T) {
	n := NewPrimary(Config{NodeID: "p"})
	defer n.Stop()
	if got := do(t, n, "SET", "k", "v"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if got := do(t, n, "GET", "k"); got != "v" {
		t.Fatalf("GET = %q", got)
	}
}

func TestAsyncReplicationEventuallyApplies(t *testing.T) {
	p := NewPrimary(Config{NodeID: "p"})
	defer p.Stop()
	r := p.AddReplica(Config{NodeID: "r", ReplDelay: netsim.Fixed(time.Millisecond)})
	defer r.Stop()
	do(t, p, "SET", "k", "v")
	deadline := time.Now().Add(2 * time.Second)
	for do(t, r, "GET", "k") != "v" {
		if time.Now().After(deadline) {
			t.Fatal("replica never applied the write")
		}
		time.Sleep(time.Millisecond)
	}
	if r.AckedOffset() != p.MasterOffset() {
		t.Fatalf("offsets: replica %d, primary %d", r.AckedOffset(), p.MasterOffset())
	}
}

func TestWaitBlocksForReplicas(t *testing.T) {
	p := NewPrimary(Config{NodeID: "p"})
	defer p.Stop()
	r := p.AddReplica(Config{NodeID: "r", ReplDelay: netsim.Fixed(2 * time.Millisecond)})
	defer r.Stop()
	do(t, p, "SET", "k", "v")
	n, err := p.Wait(context.Background(), 1)
	if err != nil || n != 1 {
		t.Fatalf("Wait = %d %v", n, err)
	}
	if r.AckedOffset() < p.MasterOffset() {
		t.Fatal("Wait returned before the replica acked")
	}
}

func TestFailoverCanLoseAcknowledgedWrites(t *testing.T) {
	s := NewShard(Config{
		NodeID:    "redis",
		ReplDelay: netsim.Fixed(5 * time.Millisecond),
	}, 1)
	defer s.Stop()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := s.Primary.Do(ctx, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	newPrimary, lost := s.Failover()
	if newPrimary == nil {
		t.Fatal("no replica promoted")
	}
	if !newPrimary.IsPrimary() {
		t.Fatal("promoted node not primary")
	}
	if lost == 0 {
		t.Fatal("expected acknowledged bytes to be lost with a 5ms replication lag")
	}
	// Writes continue on the new primary.
	do(t, newPrimary, "SET", "after", "failover")
}

func TestFailoverPicksMostUpToDateReplica(t *testing.T) {
	s := NewShard(Config{NodeID: "redis"}, 0)
	fresh := s.Primary.AddReplica(Config{NodeID: "fresh", ReplDelay: netsim.Zero{}})
	laggy := s.Primary.AddReplica(Config{NodeID: "laggy", ReplDelay: netsim.Fixed(50 * time.Millisecond)})
	s.Replicas = []*Node{laggy, fresh}
	defer s.Stop()
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		s.Primary.Do(ctx, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v")})
	}
	// Let the fresh replica drain.
	if _, err := s.Primary.Wait(ctx, 1); err != nil {
		t.Fatal(err)
	}
	promoted, _ := s.Failover()
	if promoted.ID() != "fresh" {
		t.Fatalf("promoted %s, want the most caught-up replica", promoted.ID())
	}
}

func TestAOFAlwaysDurable(t *testing.T) {
	clk := clock.NewReal()
	aof := NewAOF(FsyncAlways, 0, clk)
	p := NewPrimary(Config{NodeID: "p", AOF: aof})
	defer p.Stop()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		do(t, p, "SET", fmt.Sprintf("k%d", i), "v")
	}
	if aof.UnsyncedBytes() != 0 {
		t.Fatal("FsyncAlways left unsynced bytes")
	}
	// Crash recovery: replay the durable prefix into a fresh node.
	n2 := NewPrimary(Config{NodeID: "p2"})
	defer n2.Stop()
	if err := aof.RecoverInto(ctx, n2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := do(t, n2, "GET", fmt.Sprintf("k%d", i)); got != "v" {
			t.Fatalf("k%d = %q after AOF recovery", i, got)
		}
	}
}

func TestAOFEverySecLosesRecentWrites(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	aof := NewAOF(FsyncEverySec, 0, clk)
	// Append directly (unit-level: policy behaviour).
	aof.Append([]byte("one"))
	if aof.DurableBytes() != 0 {
		t.Fatal("everysec synced immediately")
	}
	clk.Advance(1100 * time.Millisecond)
	aof.Append([]byte("two"))
	if aof.DurableBytes() != 6 {
		t.Fatalf("DurableBytes = %d, want 6 after the 1s window", aof.DurableBytes())
	}
	aof.Append([]byte("three"))
	if aof.UnsyncedBytes() != 5 {
		t.Fatalf("UnsyncedBytes = %d — a crash now loses these", aof.UnsyncedBytes())
	}
}

func TestAOFFsyncAlwaysPaysLatency(t *testing.T) {
	clk := clock.NewReal()
	aof := NewAOF(FsyncAlways, 2*time.Millisecond, clk)
	start := time.Now()
	aof.Append([]byte("x"))
	if time.Since(start) < time.Millisecond {
		t.Fatal("fsync latency not charged")
	}
	appends, fsyncs := aof.Stats()
	if appends != 1 || fsyncs != 1 {
		t.Fatalf("stats = %d %d", appends, fsyncs)
	}
}

func TestReplicaOffsetsMonotonic(t *testing.T) {
	p := NewPrimary(Config{NodeID: "p"})
	defer p.Stop()
	r := p.AddReplica(Config{NodeID: "r"})
	defer r.Stop()
	ctx := context.Background()
	last := int64(0)
	for i := 0; i < 50; i++ {
		p.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
		if off := p.MasterOffset(); off < last {
			t.Fatal("master offset regressed")
		} else {
			last = off
		}
	}
	p.Wait(ctx, 1)
	if r.AckedOffset() != p.MasterOffset() {
		t.Fatal("replica did not converge")
	}
}
