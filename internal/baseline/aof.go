package baseline

import (
	"bytes"
	"context"
	"sync"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
)

// FsyncMode selects the AOF durability policy (§2.2.1).
type FsyncMode int

// AOF fsync policies, mirroring Redis appendfsync.
const (
	// FsyncAlways fsyncs on every append: local durability at the cost
	// of adding the fsync latency to every write (effectively
	// linearizing the single node).
	FsyncAlways FsyncMode = iota
	// FsyncEverySec fsyncs once per second: up to one second of
	// acknowledged writes can be lost on power failure.
	FsyncEverySec
	// FsyncNo never fsyncs explicitly; the OS flushes eventually.
	FsyncNo
)

// AOF is an append-only file of the replication effect stream. Storage is
// an in-memory buffer split into a synced (durable) prefix and an
// unsynced tail, which is exactly the distinction that matters for
// crash-recovery semantics.
type AOF struct {
	Mode FsyncMode
	// FsyncLatency models the disk fsync cost paid by FsyncAlways on the
	// write path.
	FsyncLatency time.Duration
	Clock        clock.Clock

	mu       sync.Mutex
	synced   bytes.Buffer
	unsynced bytes.Buffer
	lastSync time.Time
	appends  int64
	fsyncs   int64
}

// NewAOF returns an AOF with the given policy.
func NewAOF(mode FsyncMode, fsyncLatency time.Duration, clk clock.Clock) *AOF {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &AOF{Mode: mode, FsyncLatency: fsyncLatency, Clock: clk, lastSync: clk.Now()}
}

// Append records one replication record according to the fsync policy.
func (a *AOF) Append(payload []byte) {
	a.mu.Lock()
	a.unsynced.Write(payload)
	a.appends++
	switch a.Mode {
	case FsyncAlways:
		a.fsyncLocked()
		a.mu.Unlock()
		if a.FsyncLatency > 0 {
			a.Clock.Sleep(a.FsyncLatency)
		}
		return
	case FsyncEverySec:
		if a.Clock.Now().Sub(a.lastSync) >= time.Second {
			a.fsyncLocked()
		}
	case FsyncNo:
		// Model the OS flushing after 30s of dirtiness.
		if a.Clock.Now().Sub(a.lastSync) >= 30*time.Second {
			a.fsyncLocked()
		}
	}
	a.mu.Unlock()
}

func (a *AOF) fsyncLocked() {
	a.synced.Write(a.unsynced.Bytes())
	a.unsynced.Reset()
	a.lastSync = a.Clock.Now()
	a.fsyncs++
}

// Fsync forces a flush (clean shutdown path).
func (a *AOF) Fsync() {
	a.mu.Lock()
	a.fsyncLocked()
	a.mu.Unlock()
}

// DurableBytes returns the size of the synced prefix.
func (a *AOF) DurableBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.synced.Len()
}

// UnsyncedBytes returns the size of the tail that a crash would lose.
func (a *AOF) UnsyncedBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.unsynced.Len()
}

// Stats returns (appends, fsyncs).
func (a *AOF) Stats() (int64, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.appends, a.fsyncs
}

// RecoverInto replays the durable prefix into a fresh node — the state a
// crashed single node restarts with. Unsynced bytes are lost, exactly as
// after a power failure.
func (a *AOF) RecoverInto(ctx context.Context, n *Node) error {
	a.mu.Lock()
	data := append([]byte(nil), a.synced.Bytes()...)
	a.mu.Unlock()
	cmds, err := engine.DecodeRecord(data)
	if err != nil {
		return err
	}
	return n.ExecInWorkloop(ctx, func() {
		for _, argv := range cmds {
			n.eng.Exec(argv)
		}
	})
}
