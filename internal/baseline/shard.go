package baseline

import (
	"context"
)

// Shard groups a primary with its replicas and implements the ranked
// failover of Redis cluster (§2.2.1, §4.1): on primary failure, the
// replica with the highest locally observed replication offset is
// promoted. Because replication is asynchronous, that replica may still
// be missing acknowledged writes — the data-loss window MemoryDB closes.
type Shard struct {
	Primary  *Node
	Replicas []*Node
}

// NewShard builds a primary with n replicas sharing cfg (IDs suffixed).
func NewShard(cfg Config, replicas int) *Shard {
	p := NewPrimary(cfg)
	s := &Shard{Primary: p}
	for i := 0; i < replicas; i++ {
		rcfg := cfg
		rcfg.NodeID = cfg.NodeID + "-replica-" + string(rune('a'+i))
		rcfg.AOF = nil
		s.Replicas = append(s.Replicas, p.AddReplica(rcfg))
	}
	return s
}

// Failover kills the primary and promotes the most up-to-date replica by
// rank. It returns the new primary and how many bytes of acknowledged
// replication stream were lost in the promotion (0 means the lucky case).
func (s *Shard) Failover() (*Node, int64) {
	acked := s.Primary.MasterOffset()
	s.Primary.Stop()
	var best *Node
	for _, r := range s.Replicas {
		if best == nil || r.AckedOffset() > best.AckedOffset() {
			best = r
		}
	}
	if best == nil {
		return nil, acked
	}
	best.mu.Lock()
	best.isPrimary = true
	best.mu.Unlock()
	best.masterOffset.Store(best.AckedOffset())
	// Remaining replicas re-home to the new primary (they would resync
	// in Redis; for the model we simply reattach them).
	for _, r := range s.Replicas {
		if r == best {
			continue
		}
		best.mu.Lock()
		best.replicas = append(best.replicas, r)
		best.mu.Unlock()
	}
	lost := acked - best.AckedOffset()
	if lost < 0 {
		lost = 0
	}
	old := s.Primary
	s.Primary = best
	reps := s.Replicas[:0]
	for _, r := range s.Replicas {
		if r != best {
			reps = append(reps, r)
		}
	}
	s.Replicas = reps
	_ = old
	return best, lost
}

// Stop terminates all nodes.
func (s *Shard) Stop() {
	if s.Primary != nil {
		s.Primary.Stop()
	}
	for _, r := range s.Replicas {
		r.Stop()
	}
}

// Quiesce waits until every replica has applied the primary's full
// stream (test helper).
func (s *Shard) Quiesce(ctx context.Context) error {
	_, err := s.Primary.Wait(ctx, len(s.Replicas))
	return err
}
