package engine

import (
	"strconv"
	"strings"
	"time"

	"memorydb/internal/obs"
	"memorydb/internal/resp"
)

// LATENCY and SLOWLOG: the RESP face of the observability layer. Both
// are keyless reads any node answers regardless of role (the workloop
// whitelists them alongside PING), reporting from the registry the
// owning node attached via SetObs.

func init() {
	register(&Command{Name: "LATENCY", Arity: 1, Flags: FlagReadOnly | FlagFast, Handler: cmdLatency})
	register(&Command{Name: "SLOWLOG", Arity: 1, Flags: FlagReadOnly | FlagFast, Handler: cmdSlowlog})
}

var errObsDisabled = resp.Err("ERR latency tracking is disabled on this node")

func usecV(d time.Duration) resp.Value { return resp.Int64(int64(d / time.Microsecond)) }

// cmdLatency: LATENCY [STAGES] | HISTOGRAM <stage> | TRACES [n] | RESET.
// STAGES (the default) returns one row per write-path stage:
// [name, count, p50_usec, p95_usec, p99_usec, p999_usec, max_usec].
func cmdLatency(e *Engine, argv [][]byte) resp.Value {
	if e.obs == nil {
		return errObsDisabled
	}
	sub := "STAGES"
	if len(argv) >= 2 {
		sub = strings.ToUpper(string(argv[1]))
	}
	switch sub {
	case "STAGES":
		rows := make([]resp.Value, 0, obs.NumStages)
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			h := e.obs.Stage(s)
			q := h.Quantiles()
			rows = append(rows, resp.ArrayV(
				resp.BulkStr(s.String()),
				resp.Int64(int64(h.Count())),
				usecV(q.P50), usecV(q.P95), usecV(q.P99), usecV(q.P999), usecV(q.Max),
			))
		}
		return resp.ArrayV(rows...)
	case "HISTOGRAM":
		if len(argv) != 3 {
			return resp.Err("ERR LATENCY HISTOGRAM requires a stage name")
		}
		s, ok := obs.StageByName(strings.ToLower(string(argv[2])))
		if !ok {
			return resp.Errf("ERR unknown stage '%s'", argv[2])
		}
		var rows []resp.Value
		e.obs.Stage(s).EachBucket(func(upperNanos int64, count uint64) {
			rows = append(rows, resp.ArrayV(
				resp.Int64(upperNanos/int64(time.Microsecond)),
				resp.Int64(int64(count)),
			))
		})
		return resp.ArrayV(rows...)
	case "TRACES":
		n := 16
		if len(argv) >= 3 {
			v, err := strconv.Atoi(string(argv[2]))
			if err != nil || v < 0 {
				return resp.Err("ERR value is not an integer or out of range")
			}
			n = v
		}
		traces := e.obs.Traces.Recent(n)
		rows := make([]resp.Value, 0, len(traces))
		for _, t := range traces {
			rows = append(rows, resp.ArrayV(
				resp.Int64(t.Seq),
				resp.BulkStr(t.Cmd),
				usecV(t.Total), usecV(t.Queue), usecV(t.Exec), usecV(t.Commit),
				resp.Int64(int64(t.Shard)),
			))
		}
		return resp.ArrayV(rows...)
	case "RESET":
		e.obs.ResetLatency()
		return resp.OK
	}
	return resp.Errf("ERR unknown LATENCY subcommand '%s'", argv[1])
}

// cmdSlowlog: SLOWLOG GET [n] | LEN | RESET | THRESHOLD [usec].
// GET returns entries newest first as
// [id, unix_seconds, total_usec, [args...],
//  [queue_usec, exec_usec, commit_usec], shard].
func cmdSlowlog(e *Engine, argv [][]byte) resp.Value {
	if e.obs == nil {
		return errObsDisabled
	}
	sub := "GET"
	if len(argv) >= 2 {
		sub = strings.ToUpper(string(argv[1]))
	}
	sl := e.obs.Slow
	switch sub {
	case "GET":
		n := 10
		if len(argv) >= 3 {
			v, err := strconv.Atoi(string(argv[2]))
			if err != nil || v < 0 {
				return resp.Err("ERR value is not an integer or out of range")
			}
			n = v
		}
		entries := sl.Recent(n)
		rows := make([]resp.Value, 0, len(entries))
		for _, en := range entries {
			rows = append(rows, resp.ArrayV(
				resp.Int64(en.ID),
				resp.Int64(en.At.Unix()),
				usecV(en.Total),
				resp.BulkArray(en.Args...),
				resp.ArrayV(usecV(en.Queue), usecV(en.Exec), usecV(en.Commit)),
				resp.Int64(int64(en.Shard)),
			))
		}
		return resp.ArrayV(rows...)
	case "LEN":
		return resp.Int64(int64(sl.Len()))
	case "RESET":
		sl.Reset()
		return resp.OK
	case "THRESHOLD":
		if len(argv) >= 3 {
			v, err := strconv.ParseInt(string(argv[2]), 10, 64)
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			sl.SetThreshold(time.Duration(v) * time.Microsecond)
			return resp.OK
		}
		return resp.Int64(int64(sl.Threshold() / time.Microsecond))
	}
	return resp.Errf("ERR unknown SLOWLOG subcommand '%s'", argv[1])
}
