package engine

import (
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "ZADD", Arity: 4, Flags: FlagWrite | FlagFast, Handler: cmdZAdd, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZINCRBY", Arity: -4, Flags: FlagWrite | FlagFast, Handler: cmdZIncrBy, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZREM", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdZRem, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZSCORE", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdZScore, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZCARD", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdZCard, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZRANK", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdZRank, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZREVRANK", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdZRevRank, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZRANGE", Arity: 4, Flags: FlagReadOnly, Handler: cmdZRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZREVRANGE", Arity: 4, Flags: FlagReadOnly, Handler: cmdZRevRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZRANGEBYSCORE", Arity: 4, Flags: FlagReadOnly, Handler: cmdZRangeByScore, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZCOUNT", Arity: -4, Flags: FlagReadOnly | FlagFast, Handler: cmdZCount, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZPOPMIN", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdZPopMin, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZPOPMAX", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdZPopMax, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZREMRANGEBYRANK", Arity: -4, Flags: FlagWrite, Handler: cmdZRemRangeByRank, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZREMRANGEBYSCORE", Arity: -4, Flags: FlagWrite, Handler: cmdZRemRangeByScore, FirstKey: 1, LastKey: 1, KeyStep: 1})
}

func zsetAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindZSet)
	if !ok {
		return nil, errReply, false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindZSet, ZSet: store.NewZSet()}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

// parseScoreBound parses a ZRANGEBYSCORE bound: a float, "(float", "-inf",
// or "+inf".
func parseScoreBound(b []byte) (val float64, exclusive bool, ok bool) {
	s := string(b)
	if strings.HasPrefix(s, "(") {
		exclusive = true
		s = s[1:]
	}
	switch strings.ToLower(s) {
	case "-inf":
		return store.NegInf, exclusive, true
	case "+inf", "inf":
		return store.PosInf, exclusive, true
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false, false
	}
	return f, exclusive, true
}

func cmdZAdd(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	var nx, xx, gt, lt, ch, incr bool
	i := 2
scanOpts:
	for ; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "NX":
			nx = true
		case "XX":
			xx = true
		case "GT":
			gt = true
		case "LT":
			lt = true
		case "CH":
			ch = true
		case "INCR":
			incr = true
		default:
			break scanOpts
		}
	}
	if nx && xx || (gt && lt) || (nx && (gt || lt)) {
		return resp.Err("ERR GT, LT, and/or NX options at the same time are not compatible")
	}
	rest := argv[i:]
	if len(rest) == 0 || len(rest)%2 != 0 {
		return errSyntax()
	}
	if incr && len(rest) != 2 {
		return resp.Err("ERR INCR option supports a single increment-element pair")
	}
	// Validate every score before mutating anything: a bad pair must not
	// leave a half-applied ZADD behind (Redis parses all scores first,
	// and replication correctness depends on errors being effect-free).
	scores := make([]float64, 0, len(rest)/2)
	for j := 0; j < len(rest); j += 2 {
		score, okF := parseFloat(rest[j])
		if !okF {
			return errNotFloat()
		}
		scores = append(scores, score)
	}
	obj, errReply, ok := zsetAt(e, key, true)
	if !ok {
		return errReply
	}
	added, changed := int64(0), int64(0)
	var incrResult resp.Value = resp.Nil
	for j := 0; j < len(rest); j += 2 {
		score := scores[j/2]
		member := string(rest[j+1])
		old, exists := obj.ZSet.Score(member)
		if (nx && exists) || (xx && !exists) {
			continue
		}
		if incr {
			score = old + score
		}
		if exists && ((gt && score <= old) || (lt && score >= old)) {
			continue
		}
		if obj.ZSet.Add(member, score) {
			added++
		} else if score != old {
			changed++
		}
		if incr {
			incrResult = resp.BulkStr(fmtScore(score))
		}
	}
	if added+changed > 0 || incr {
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	} else if obj.ZSet.Len() == 0 {
		e.db.Delete(key, e.Now())
	}
	if incr {
		return incrResult
	}
	if ch {
		return resp.Int64(added + changed)
	}
	return resp.Int64(added)
}

func cmdZIncrBy(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	delta, okF := parseFloat(argv[2])
	if !okF {
		return errNotFloat()
	}
	obj, errReply, ok := zsetAt(e, key, true)
	if !ok {
		return errReply
	}
	s := obj.ZSet.IncrBy(string(argv[3]), delta)
	e.db.Touch(key)
	e.touch(key)
	// Replicate the resulting absolute score for determinism.
	e.propagateStrings("ZADD", key, fmtScore(s), string(argv[3]))
	return resp.BulkStr(fmtScore(s))
}

func cmdZRem(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := zsetAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	n := int64(0)
	for _, m := range argv[2:] {
		if obj.ZSet.Remove(string(m)) {
			n++
		}
	}
	if n > 0 {
		if obj.ZSet.Len() == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(n)
}

func cmdZScore(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	s, exists := obj.ZSet.Score(string(argv[2]))
	if !exists {
		return resp.Nil
	}
	return resp.BulkStr(fmtScore(s))
}

func cmdZCard(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(obj.ZSet.Len()))
}

func cmdZRank(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	r, exists := obj.ZSet.Rank(string(argv[2]))
	if !exists {
		return resp.Nil
	}
	return resp.Int64(int64(r))
}

func cmdZRevRank(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	r, exists := obj.ZSet.Rank(string(argv[2]))
	if !exists {
		return resp.Nil
	}
	return resp.Int64(int64(obj.ZSet.Len() - 1 - r))
}

func zrangeReply(entries []store.Entry, withScores bool) resp.Value {
	out := make([]resp.Value, 0, len(entries)*2)
	for _, en := range entries {
		out = append(out, resp.BulkStr(en.Member))
		if withScores {
			out = append(out, resp.BulkStr(fmtScore(en.Score)))
		}
	}
	return resp.ArrayV(out...)
}

func cmdZRange(e *Engine, argv [][]byte) resp.Value {
	return zrangeGeneric(e, argv, false)
}

func cmdZRevRange(e *Engine, argv [][]byte) resp.Value {
	return zrangeGeneric(e, argv, true)
}

func zrangeGeneric(e *Engine, argv [][]byte, rev bool) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	start, ok1 := parseInt(argv[2])
	stop, ok2 := parseInt(argv[3])
	if !ok1 || !ok2 {
		return errNotInt()
	}
	withScores := false
	if len(argv) == 5 {
		if !strings.EqualFold(string(argv[4]), "WITHSCORES") {
			return errSyntax()
		}
		withScores = true
	} else if len(argv) > 5 {
		return errSyntax()
	}
	if obj == nil {
		return resp.ArrayV()
	}
	var entries []store.Entry
	if rev {
		entries = obj.ZSet.RevRange(int(start), int(stop))
	} else {
		entries = obj.ZSet.Range(int(start), int(stop))
	}
	return zrangeReply(entries, withScores)
}

func cmdZRangeByScore(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	min, minEx, ok1 := parseScoreBound(argv[2])
	max, maxEx, ok2 := parseScoreBound(argv[3])
	if !ok1 || !ok2 {
		return resp.Err("ERR min or max is not a float")
	}
	withScores := false
	offset, limit := 0, -1
	for i := 4; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "WITHSCORES":
			withScores = true
		case "LIMIT":
			if i+2 >= len(argv) {
				return errSyntax()
			}
			o, ok1 := parseInt(argv[i+1])
			l, ok2 := parseInt(argv[i+2])
			if !ok1 || !ok2 {
				return errNotInt()
			}
			offset, limit = int(o), int(l)
			i += 2
		default:
			return errSyntax()
		}
	}
	if obj == nil {
		return resp.ArrayV()
	}
	return zrangeReply(obj.ZSet.ScoreRange(min, max, minEx, maxEx, offset, limit), withScores)
}

func cmdZCount(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	min, minEx, ok1 := parseScoreBound(argv[2])
	max, maxEx, ok2 := parseScoreBound(argv[3])
	if !ok1 || !ok2 {
		return resp.Err("ERR min or max is not a float")
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(obj.ZSet.Count(min, max, minEx, maxEx)))
}

func zpopGeneric(e *Engine, argv [][]byte, min bool) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := zsetAt(e, key, false)
	if !ok {
		return errReply
	}
	count := 1
	if len(argv) == 3 {
		n, okN := parseInt(argv[2])
		if !okN || n < 0 {
			return errNotInt()
		}
		count = int(n)
	} else if len(argv) > 3 {
		return wrongArity(string(argv[0]))
	}
	if obj == nil {
		return resp.ArrayV()
	}
	var popped []store.Entry
	if min {
		popped = obj.ZSet.PopMin(count)
	} else {
		popped = obj.ZSet.PopMax(count)
	}
	if len(popped) > 0 {
		if obj.ZSet.Len() == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		eff := []string{"ZREM", key}
		for _, en := range popped {
			eff = append(eff, en.Member)
		}
		e.propagateStrings(eff...)
	}
	out := make([]resp.Value, 0, len(popped)*2)
	for _, en := range popped {
		out = append(out, resp.BulkStr(en.Member), resp.BulkStr(fmtScore(en.Score)))
	}
	return resp.ArrayV(out...)
}

func cmdZPopMin(e *Engine, argv [][]byte) resp.Value { return zpopGeneric(e, argv, true) }
func cmdZPopMax(e *Engine, argv [][]byte) resp.Value { return zpopGeneric(e, argv, false) }

func cmdZRemRangeByRank(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := zsetAt(e, key, false)
	if !ok {
		return errReply
	}
	start, ok1 := parseInt(argv[2])
	stop, ok2 := parseInt(argv[3])
	if !ok1 || !ok2 {
		return errNotInt()
	}
	if obj == nil {
		return resp.Int64(0)
	}
	victims := obj.ZSet.Range(int(start), int(stop))
	return zremVictims(e, key, obj, victims)
}

func cmdZRemRangeByScore(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := zsetAt(e, key, false)
	if !ok {
		return errReply
	}
	min, minEx, ok1 := parseScoreBound(argv[2])
	max, maxEx, ok2 := parseScoreBound(argv[3])
	if !ok1 || !ok2 {
		return resp.Err("ERR min or max is not a float")
	}
	if obj == nil {
		return resp.Int64(0)
	}
	victims := obj.ZSet.ScoreRange(min, max, minEx, maxEx, 0, -1)
	return zremVictims(e, key, obj, victims)
}

func zremVictims(e *Engine, key string, obj *store.Object, victims []store.Entry) resp.Value {
	if len(victims) == 0 {
		return resp.Int64(0)
	}
	eff := []string{"ZREM", key}
	for _, v := range victims {
		obj.ZSet.Remove(v.Member)
		eff = append(eff, v.Member)
	}
	if obj.ZSet.Len() == 0 {
		e.db.Delete(key, e.Now())
	}
	e.db.Touch(key)
	e.touch(key)
	e.propagateStrings(eff...)
	return resp.Int64(int64(len(victims)))
}
