package engine

import (
	"testing"
	"time"
)

func TestDelExists(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "a", "1")
	do("SET", "b", "2")
	wantInt(t, do("EXISTS", "a", "b", "missing", "a"), 3) // counts repeats
	wantInt(t, do("DEL", "a", "missing", "b"), 2)
	wantInt(t, do("EXISTS", "a"), 0)
	wantInt(t, do("UNLINK", "a"), 0)
}

func TestType(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "s", "v")
	do("LPUSH", "l", "x")
	do("HSET", "h", "f", "v")
	do("SADD", "st", "m")
	do("ZADD", "z", "1", "m")
	do("XADD", "x", "*", "f", "v")
	cases := map[string]string{
		"s": "string", "l": "list", "h": "hash", "st": "set", "z": "zset", "x": "stream",
		"missing": "none",
	}
	for k, want := range cases {
		wantText(t, do("TYPE", k), want)
	}
}

func TestExpireFamily(t *testing.T) {
	_, clk, do := testEngine(t)
	do("SET", "k", "v")
	wantInt(t, do("EXPIRE", "k", "10"), 1)
	wantInt(t, do("TTL", "k"), 10)
	wantInt(t, do("PEXPIRE", "k", "5000"), 1)
	wantInt(t, do("PTTL", "k"), 5000)
	at := clk.Now().Add(20 * time.Second).Unix()
	wantInt(t, do("EXPIREAT", "k", formatInt(at)), 1)
	wantInt(t, do("TTL", "k"), 20)
	wantInt(t, do("EXPIRE", "missing", "10"), 0)
	wantErrPrefix(t, do("EXPIRE", "k", "abc"), "ERR value is not an integer")
}

func TestExpireInPastDeletes(t *testing.T) {
	e, _, do := testEngine(t)
	do("SET", "k", "v")
	res := exec(e, "EXPIRE", "k", "-1")
	wantInt(t, res.Reply, 1)
	wantNil(t, do("GET", "k"))
	// Replicates as DEL, not PEXPIREAT.
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "DEL" {
		t.Fatalf("past expiry effect = %q", cmds[0])
	}
}

func TestExpireReplicatesAbsolute(t *testing.T) {
	e, clk, do := testEngine(t)
	do("SET", "k", "v")
	res := exec(e, "EXPIRE", "k", "10")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "PEXPIREAT" {
		t.Fatalf("EXPIRE effect = %q", cmds[0])
	}
	want := clk.Now().UnixMilli() + 10000
	if string(cmds[0][2]) != formatInt(want) {
		t.Fatalf("deadline = %q, want %d", cmds[0][2], want)
	}
}

func TestPersistAndTTLStates(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("TTL", "missing"), -2)
	do("SET", "k", "v")
	wantInt(t, do("TTL", "k"), -1)
	do("EXPIRE", "k", "100")
	wantInt(t, do("PERSIST", "k"), 1)
	wantInt(t, do("TTL", "k"), -1)
	wantInt(t, do("PERSIST", "k"), 0)
	wantInt(t, do("PERSIST", "missing"), 0)
}

func TestKeysAndDBSize(t *testing.T) {
	_, _, do := testEngine(t)
	do("MSET", "user:1", "a", "user:2", "b", "item:1", "c")
	v := do("KEYS", "user:*")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "user:1" { // sorted
		t.Fatalf("KEYS = %v", v)
	}
	wantInt(t, do("DBSIZE"), 3)
}

func TestScanIteratesEverything(t *testing.T) {
	_, _, do := testEngine(t)
	for i := 0; i < 25; i++ {
		do("SET", "k"+formatInt(int64(i)), "v")
	}
	cursor := "0"
	seen := map[string]bool{}
	for rounds := 0; rounds < 100; rounds++ {
		v := do("SCAN", cursor, "COUNT", "7")
		wantArrayLen(t, v, 2)
		for _, k := range v.Array[1].Array {
			seen[k.Text()] = true
		}
		cursor = v.Array[0].Text()
		if cursor == "0" {
			break
		}
	}
	if len(seen) != 25 {
		t.Fatalf("SCAN saw %d keys, want 25", len(seen))
	}
}

func TestScanMatch(t *testing.T) {
	_, _, do := testEngine(t)
	do("MSET", "a1", "x", "a2", "x", "b1", "x")
	v := do("SCAN", "0", "MATCH", "a*", "COUNT", "100")
	wantArrayLen(t, v.Array[1], 2)
	wantErrPrefix(t, do("SCAN", "abc"), "ERR invalid cursor")
	wantErrPrefix(t, do("SCAN", "0", "COUNT", "0"), "ERR syntax")
}

func TestRename(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "a", "v", "EX", "50")
	wantText(t, do("RENAME", "a", "b"), "OK")
	wantNil(t, do("GET", "a"))
	wantText(t, do("GET", "b"), "v")
	wantInt(t, do("TTL", "b"), 50) // TTL travels with the key
	wantErrPrefix(t, do("RENAME", "missing", "x"), "ERR no such key")
}

func TestRenameNX(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "a", "1")
	do("SET", "b", "2")
	wantInt(t, do("RENAMENX", "a", "b"), 0)
	wantText(t, do("GET", "b"), "2")
	wantInt(t, do("RENAMENX", "a", "c"), 1)
	wantText(t, do("GET", "c"), "1")
}

func TestFlushAll(t *testing.T) {
	_, _, do := testEngine(t)
	do("MSET", "a", "1", "b", "2")
	wantText(t, do("FLUSHALL"), "OK")
	wantInt(t, do("DBSIZE"), 0)
}

func TestPingEchoTime(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("PING"), "PONG")
	wantText(t, do("ECHO", "hello"), "hello")
	v := do("TIME")
	wantArrayLen(t, v, 2)
}

func TestRandomKeyCommand(t *testing.T) {
	_, _, do := testEngine(t)
	wantNil(t, do("RANDOMKEY"))
	do("SET", "only", "v")
	wantText(t, do("RANDOMKEY"), "only")
}

func TestCommandIntrospection(t *testing.T) {
	_, _, do := testEngine(t)
	v := do("COMMAND")
	if v.Type != 42 && len(v.Array) < 60 { // resp.Array == '*'
		t.Fatalf("COMMAND = %v", v)
	}
	// Each row: name, arity, flags, firstkey, lastkey, keystep.
	row := v.Array[0]
	wantArrayLen(t, row, 6)
}
