package engine

import (
	"bytes"
	"fmt"
	"io"

	"memorydb/internal/resp"
)

// EncodeRecord concatenates encoded effect commands into one replication
// record payload — the unit MemoryDB chunks the replication stream into
// before appending to the transaction log (§3.1).
func EncodeRecord(effects [][]byte) []byte {
	var n int
	for _, e := range effects {
		n += len(e)
	}
	out := make([]byte, 0, n)
	for _, e := range effects {
		out = append(out, e...)
	}
	return out
}

// AppendRecord appends one mutation's encoded effects onto an existing
// record payload, returning the extended slice. Group commit uses it to
// coalesce many mutations into a single log entry: RESP command framing is
// self-delimiting, so concatenated records decode and apply exactly like a
// single large record, and a replica applies the whole combined payload as
// one atomic unit (one workloop apply task per entry).
func AppendRecord(dst []byte, effects [][]byte) []byte {
	for _, e := range effects {
		dst = append(dst, e...)
	}
	return dst
}

// DecodeRecord parses a record payload back into its command argvs.
func DecodeRecord(record []byte) ([][][]byte, error) {
	r := resp.NewReader(bytes.NewReader(record))
	var cmds [][][]byte
	for {
		argv, err := r.ReadCommand()
		if err == io.EOF {
			return cmds, nil
		}
		if err != nil {
			return nil, fmt.Errorf("engine: bad replication record: %w", err)
		}
		cmds = append(cmds, argv)
	}
}
