package engine

import (
	"sort"
	"strconv"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "HSET", Arity: 4, Flags: FlagWrite | FlagFast, Handler: cmdHSet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HMSET", Arity: 4, Flags: FlagWrite | FlagFast, Handler: cmdHMSet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HSETNX", Arity: -4, Flags: FlagWrite | FlagFast, Handler: cmdHSetNX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HGET", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdHGet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HMGET", Arity: 3, Flags: FlagReadOnly | FlagFast, Handler: cmdHMGet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HDEL", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdHDel, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HGETALL", Arity: -2, Flags: FlagReadOnly, Handler: cmdHGetAll, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HEXISTS", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdHExists, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HLEN", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdHLen, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HKEYS", Arity: -2, Flags: FlagReadOnly, Handler: cmdHKeys, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HVALS", Arity: -2, Flags: FlagReadOnly, Handler: cmdHVals, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HSTRLEN", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdHStrlen, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HINCRBY", Arity: -4, Flags: FlagWrite | FlagFast, Handler: cmdHIncrBy, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HINCRBYFLOAT", Arity: -4, Flags: FlagWrite | FlagFast, Handler: cmdHIncrByFloat, FirstKey: 1, LastKey: 1, KeyStep: 1})
}

// hashAt returns the hash at key, creating it when create is set.
func hashAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindHash)
	if !ok {
		return nil, errReply, false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindHash, Hash: make(map[string][]byte)}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

func cmdHSet(e *Engine, argv [][]byte) resp.Value {
	if len(argv)%2 != 0 {
		return wrongArity("HSET")
	}
	key := string(argv[1])
	obj, errReply, ok := hashAt(e, key, true)
	if !ok {
		return errReply
	}
	added := int64(0)
	for i := 2; i < len(argv); i += 2 {
		f := string(argv[i])
		old, existed := obj.Hash[f]
		if !existed {
			added++
		}
		e.db.AdjustUsed(int64(len(argv[i+1]) - len(old)))
		obj.Hash[f] = argv[i+1]
	}
	e.db.Touch(key)
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(added)
}

func cmdHMSet(e *Engine, argv [][]byte) resp.Value {
	if v := cmdHSet(e, argv); v.IsError() {
		return v
	}
	return resp.OK
}

func cmdHSetNX(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := hashAt(e, key, true)
	if !ok {
		return errReply
	}
	f := string(argv[2])
	if _, exists := obj.Hash[f]; exists {
		return resp.Int64(0)
	}
	obj.Hash[f] = argv[3]
	e.db.AdjustUsed(int64(len(argv[3])))
	e.db.Touch(key)
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(1)
}

func cmdHGet(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	v, exists := obj.Hash[string(argv[2])]
	if !exists {
		return resp.Nil
	}
	return resp.Bulk(v)
}

func cmdHMGet(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	out := make([]resp.Value, 0, len(argv)-2)
	for _, f := range argv[2:] {
		if obj == nil {
			out = append(out, resp.Nil)
			continue
		}
		if v, exists := obj.Hash[string(f)]; exists {
			out = append(out, resp.Bulk(v))
		} else {
			out = append(out, resp.Nil)
		}
	}
	return resp.ArrayV(out...)
}

func cmdHDel(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := hashAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	n := int64(0)
	for _, f := range argv[2:] {
		if v, exists := obj.Hash[string(f)]; exists {
			e.db.AdjustUsed(-int64(len(f) + len(v)))
			delete(obj.Hash, string(f))
			n++
		}
	}
	if n > 0 {
		if len(obj.Hash) == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(n)
}

func cmdHGetAll(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.ArrayV()
	}
	fields := make([]string, 0, len(obj.Hash))
	for f := range obj.Hash {
		fields = append(fields, f)
	}
	sort.Strings(fields) // deterministic reply order (diverges from Redis, which is unordered)
	out := make([]resp.Value, 0, len(fields)*2)
	for _, f := range fields {
		out = append(out, resp.BulkStr(f), resp.Bulk(obj.Hash[f]))
	}
	return resp.ArrayV(out...)
}

func cmdHExists(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	if _, exists := obj.Hash[string(argv[2])]; exists {
		return resp.Int64(1)
	}
	return resp.Int64(0)
}

func cmdHLen(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(len(obj.Hash)))
}

func cmdHKeys(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.ArrayV()
	}
	fields := make([]string, 0, len(obj.Hash))
	for f := range obj.Hash {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return resp.BulkArray(fields...)
}

func cmdHVals(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.ArrayV()
	}
	fields := make([]string, 0, len(obj.Hash))
	for f := range obj.Hash {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	out := make([]resp.Value, 0, len(fields))
	for _, f := range fields {
		out = append(out, resp.Bulk(obj.Hash[f]))
	}
	return resp.ArrayV(out...)
}

func cmdHStrlen(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(len(obj.Hash[string(argv[2])])))
}

func cmdHIncrBy(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	delta, ok := parseInt(argv[3])
	if !ok {
		return errNotInt()
	}
	obj, errReply, ok := hashAt(e, key, true)
	if !ok {
		return errReply
	}
	f := string(argv[2])
	var cur int64
	if v, exists := obj.Hash[f]; exists {
		n, ok := parseInt(v)
		if !ok {
			return resp.Err("ERR hash value is not an integer")
		}
		cur = n
	}
	if (delta > 0 && cur > (1<<63-1)-delta) || (delta < 0 && cur < -(1<<63-1)-delta-1) {
		return resp.Err("ERR increment or decrement would overflow")
	}
	cur += delta
	s := strconv.AppendInt(nil, cur, 10)
	obj.Hash[f] = s
	e.db.Touch(key)
	e.touch(key)
	e.propagateStrings("HSET", key, f, string(s))
	return resp.Int64(cur)
}

func cmdHIncrByFloat(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	delta, ok := parseFloat(argv[3])
	if !ok {
		return errNotFloat()
	}
	obj, errReply, ok := hashAt(e, key, true)
	if !ok {
		return errReply
	}
	f := string(argv[2])
	var cur float64
	if v, exists := obj.Hash[f]; exists {
		x, ok := parseFloat(v)
		if !ok {
			return resp.Err("ERR hash value is not a float")
		}
		cur = x
	}
	cur += delta
	s := strconv.FormatFloat(cur, 'f', -1, 64)
	obj.Hash[f] = []byte(s)
	e.db.Touch(key)
	e.touch(key)
	e.propagateStrings("HSET", key, f, s)
	return resp.BulkStr(s)
}
