package engine

import (
	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "PFADD", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdPFAdd, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PFCOUNT", Arity: 2, Flags: FlagReadOnly, Handler: cmdPFCount, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "PFMERGE", Arity: 2, Flags: FlagWrite, Handler: cmdPFMerge, FirstKey: 1, LastKey: -1, KeyStep: 1})
}

func hllAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return nil, errReply, false
	}
	if obj != nil && !store.IsHLL(obj.Str) {
		return nil, resp.Err("WRONGTYPE Key is not a valid HyperLogLog string value."), false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindString, Str: store.NewHLL()}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

func cmdPFAdd(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := hllAt(e, key, true)
	if !ok {
		return errReply
	}
	changed := false
	for _, el := range argv[2:] {
		c, err := store.HLLAdd(obj.Str, el)
		if err != nil {
			return resp.Err(err.Error())
		}
		changed = changed || c
	}
	if changed || len(argv) == 2 {
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	if changed {
		return resp.Int64(1)
	}
	return resp.Int64(0)
}

func cmdPFCount(e *Engine, argv [][]byte) resp.Value {
	if len(argv) == 2 {
		obj, errReply, ok := hllAt(e, string(argv[1]), false)
		if !ok {
			return errReply
		}
		if obj == nil {
			return resp.Int64(0)
		}
		n, err := store.HLLCount(obj.Str)
		if err != nil {
			return resp.Err(err.Error())
		}
		return resp.Int64(n)
	}
	// Multi-key count: merge into a scratch HLL.
	merged := store.NewHLL()
	for _, k := range argv[1:] {
		obj, errReply, ok := hllAt(e, string(k), false)
		if !ok {
			return errReply
		}
		if obj == nil {
			continue
		}
		if err := store.HLLMerge(merged, obj.Str); err != nil {
			return resp.Err(err.Error())
		}
	}
	n, err := store.HLLCount(merged)
	if err != nil {
		return resp.Err(err.Error())
	}
	return resp.Int64(n)
}

func cmdPFMerge(e *Engine, argv [][]byte) resp.Value {
	// Validate every source before mutating: creating the destination
	// and then failing on a WRONGTYPE source would leave a half-applied,
	// unreplicated mutation behind.
	srcs := make([][]byte, 0, len(argv)-2)
	for _, k := range argv[2:] {
		src, errReply, ok := hllAt(e, string(k), false)
		if !ok {
			return errReply
		}
		if src != nil {
			srcs = append(srcs, src.Str)
		}
	}
	dst := string(argv[1])
	obj, errReply, ok := hllAt(e, dst, true)
	if !ok {
		return errReply
	}
	for _, s := range srcs {
		if err := store.HLLMerge(obj.Str, s); err != nil {
			return resp.Err(err.Error())
		}
	}
	e.db.Touch(dst)
	e.touch(dst)
	e.propagateVerbatim(argv)
	return resp.OK
}
