package engine

import (
	"strings"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/resp"
)

// testEngine returns an engine on a simulated clock (expiry tests advance
// it) and a helper that executes commands from strings.
func testEngine(t *testing.T) (*Engine, *clock.Sim, func(args ...string) resp.Value) {
	t.Helper()
	clk := clock.NewSim(time.Unix(1700000000, 0))
	e := New(clk)
	do := func(args ...string) resp.Value {
		argv := make([][]byte, len(args))
		for i, a := range args {
			argv[i] = []byte(a)
		}
		return e.Exec(argv).Reply
	}
	return e, clk, do
}

// exec returns the full Result for effect inspection.
func exec(e *Engine, args ...string) Result {
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	return e.Exec(argv)
}

func wantText(t *testing.T, v resp.Value, want string) {
	t.Helper()
	if v.Text() != want {
		t.Fatalf("reply = %v, want %q", v, want)
	}
}

func wantInt(t *testing.T, v resp.Value, want int64) {
	t.Helper()
	if v.Type != resp.Integer || v.Int != want {
		t.Fatalf("reply = %v, want :%d", v, want)
	}
}

func wantNil(t *testing.T, v resp.Value) {
	t.Helper()
	if !v.Null {
		t.Fatalf("reply = %v, want nil", v)
	}
}

func wantErrPrefix(t *testing.T, v resp.Value, prefix string) {
	t.Helper()
	if !v.IsError() || !strings.HasPrefix(v.Text(), prefix) {
		t.Fatalf("reply = %v, want error with prefix %q", v, prefix)
	}
}

func wantArrayLen(t *testing.T, v resp.Value, n int) {
	t.Helper()
	if v.Type != resp.Array || len(v.Array) != n {
		t.Fatalf("reply = %v, want array of %d", v, n)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, _, do := testEngine(t)
	wantErrPrefix(t, do("NOTACOMMAND"), "ERR unknown command")
}

func TestArityChecks(t *testing.T) {
	_, _, do := testEngine(t)
	wantErrPrefix(t, do("GET"), "ERR wrong number of arguments")
	wantErrPrefix(t, do("GET", "a", "b"), "ERR wrong number of arguments")
	wantErrPrefix(t, do("SET", "k"), "ERR wrong number of arguments")
}

func TestWrongTypeErrors(t *testing.T) {
	_, _, do := testEngine(t)
	do("LPUSH", "list", "x")
	wantErrPrefix(t, do("GET", "list"), "WRONGTYPE")
	wantErrPrefix(t, do("INCR", "list"), "WRONGTYPE")
	wantErrPrefix(t, do("HGET", "list", "f"), "WRONGTYPE")
	wantErrPrefix(t, do("SADD", "list", "x"), "WRONGTYPE")
	wantErrPrefix(t, do("ZADD", "list", "1", "x"), "WRONGTYPE")
	do("SET", "str", "v")
	wantErrPrefix(t, do("LPUSH", "str", "x"), "WRONGTYPE")
}

func TestCommandTableKeySpecs(t *testing.T) {
	cases := []struct {
		cmd  []string
		keys []string
	}{
		{[]string{"GET", "k"}, []string{"k"}},
		{[]string{"MSET", "a", "1", "b", "2"}, []string{"a", "b"}},
		{[]string{"MGET", "a", "b", "c"}, []string{"a", "b", "c"}},
		{[]string{"SMOVE", "s", "d", "m"}, []string{"s", "d"}},
		{[]string{"PING"}, nil},
	}
	for _, c := range cases {
		cmd, ok := LookupCommand(c.cmd[0])
		if !ok {
			t.Fatalf("LookupCommand(%s) missing", c.cmd[0])
		}
		argv := make([][]byte, len(c.cmd))
		for i, a := range c.cmd {
			argv[i] = []byte(a)
		}
		got := cmd.Keys(argv)
		if len(got) != len(c.keys) {
			t.Fatalf("%v keys = %v, want %v", c.cmd, got, c.keys)
		}
		for i := range got {
			if got[i] != c.keys[i] {
				t.Fatalf("%v keys = %v, want %v", c.cmd, got, c.keys)
			}
		}
	}
}

func TestCommandNamesSortedAndFlagged(t *testing.T) {
	names := CommandNames()
	if len(names) < 60 {
		t.Fatalf("only %d commands registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("CommandNames not sorted")
		}
	}
	get, _ := LookupCommand("get") // case-insensitive
	if get == nil || get.Writes() {
		t.Fatal("GET lookup/flags broken")
	}
	set, _ := LookupCommand("SET")
	if !set.Writes() {
		t.Fatal("SET must be a write")
	}
}

func TestExecBatchAtomicReplyAndEffects(t *testing.T) {
	e, _, _ := testEngine(t)
	res := e.ExecBatch([][][]byte{
		{[]byte("SET"), []byte("a"), []byte("1")},
		{[]byte("INCR"), []byte("a")},
		{[]byte("GET"), []byte("a")},
	})
	wantArrayLen(t, res.Reply, 3)
	if res.Reply.Array[2].Text() != "2" {
		t.Fatalf("batch GET = %v", res.Reply.Array[2])
	}
	if len(res.Effects) != 2 {
		t.Fatalf("effects = %d, want 2", len(res.Effects))
	}
	if len(res.Keys) != 1 || res.Keys[0] != "a" {
		t.Fatalf("keys = %v", res.Keys)
	}
}

func TestApplyReplicatesDeterministically(t *testing.T) {
	// Run a series of commands on a primary engine, apply the effect
	// records to a replica engine, and compare observable state.
	p, _, _ := testEngine(t)
	r, _, _ := testEngine(t)
	script := [][]string{
		{"SET", "s", "v"},
		{"APPEND", "s", "!"},
		{"INCR", "counter"},
		{"HSET", "h", "f1", "a", "f2", "b"},
		{"RPUSH", "l", "1", "2", "3"},
		{"LPOP", "l"},
		{"SADD", "set", "x", "y", "z"},
		{"SPOP", "set"},
		{"ZADD", "z", "1", "a", "2", "b"},
		{"ZINCRBY", "z", "5", "a"},
		{"PFADD", "hll", "e1", "e2"},
		{"EXPIRE", "s", "1000"},
	}
	for _, cmd := range script {
		res := exec(p, cmd...)
		if res.Reply.IsError() {
			t.Fatalf("%v: %v", cmd, res.Reply)
		}
		record := EncodeRecord(res.Effects)
		if err := r.Apply(record); err != nil {
			t.Fatalf("Apply(%v): %v", cmd, err)
		}
	}
	for _, probe := range [][]string{
		{"GET", "s"}, {"GET", "counter"}, {"HGETALL", "h"},
		{"LRANGE", "l", "0", "-1"}, {"SMEMBERS", "set"},
		{"ZRANGE", "z", "0", "-1", "WITHSCORES"}, {"PFCOUNT", "hll"},
		{"PTTL", "s"},
	} {
		pv := exec(p, probe...).Reply
		rv := exec(r, probe...).Reply
		if !pv.Equal(rv) {
			t.Fatalf("%v diverged: primary %v, replica %v", probe, pv, rv)
		}
	}
}

func TestApplySuppressesEffects(t *testing.T) {
	e, _, _ := testEngine(t)
	if err := e.Apply(resp.EncodeCommandStrings("SET", "k", "v")); err != nil {
		t.Fatal(err)
	}
	// A subsequent Exec must not see leaked effects.
	res := exec(e, "GET", "k")
	if res.Mutated() {
		t.Fatal("read after Apply leaked effects")
	}
	wantText(t, res.Reply, "v")
}

func TestApplyRejectsMalformedRecord(t *testing.T) {
	e, _, _ := testEngine(t)
	if err := e.Apply([]byte("*1\r\n$3\r\nab")); err == nil {
		t.Fatal("malformed record accepted")
	}
}

func TestSweepExpiredEmitsDeleteEffects(t *testing.T) {
	e, clk, do := testEngine(t)
	do("SET", "k", "v")
	do("PEXPIRE", "k", "100")
	clk.Advance(200 * time.Millisecond)
	res := e.SweepExpired(10)
	if !res.Mutated() {
		t.Fatal("sweep produced no effects")
	}
	cmds, err := DecodeRecord(EncodeRecord(res.Effects))
	if err != nil || len(cmds) != 1 || string(cmds[0][0]) != "DEL" {
		t.Fatalf("sweep effects = %v (%v)", cmds, err)
	}
}

func TestLazyExpiryOnReadEmitsDelete(t *testing.T) {
	e, clk, do := testEngine(t)
	do("SET", "k", "v")
	do("PEXPIRE", "k", "100")
	clk.Advance(time.Second)
	res := exec(e, "GET", "k")
	wantNil(t, res.Reply)
	if len(res.Effects) != 1 {
		t.Fatalf("lazy expiry effects = %d", len(res.Effects))
	}
	cmds, _ := DecodeRecord(res.Effects[0])
	if string(cmds[0][0]) != "DEL" || string(cmds[0][1]) != "k" {
		t.Fatalf("effect = %q", cmds[0])
	}
}

func TestRecordEncodeDecodeMulti(t *testing.T) {
	effects := [][]byte{
		resp.EncodeCommandStrings("SET", "a", "1"),
		resp.EncodeCommandStrings("DEL", "b"),
	}
	cmds, err := DecodeRecord(EncodeRecord(effects))
	if err != nil || len(cmds) != 2 {
		t.Fatalf("decode: %v %v", cmds, err)
	}
	if string(cmds[0][0]) != "SET" || string(cmds[1][0]) != "DEL" {
		t.Fatalf("cmds = %q", cmds)
	}
	// Empty record decodes to nothing.
	if cmds, err := DecodeRecord(nil); err != nil || len(cmds) != 0 {
		t.Fatalf("empty record: %v %v", cmds, err)
	}
}
