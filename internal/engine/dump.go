package engine

import (
	"strconv"

	"memorydb/internal/store"
)

// DumpCommands returns a deterministic command sequence that recreates
// key's current value (and TTL) on another node, starting with a DEL so
// the sequence is idempotent regardless of the target's prior state. It
// is the serialization format of slot migration (§5.2): keys are shipped
// as ordinary commands so the target primary commits them to its own
// transaction log like any other write.
func (e *Engine) DumpCommands(key string) [][][]byte {
	obj, ok := e.db.Peek(key)
	if !ok {
		return nil
	}
	var cmds [][][]byte
	add := func(args ...string) {
		argv := make([][]byte, len(args))
		for i, a := range args {
			argv[i] = []byte(a)
		}
		cmds = append(cmds, argv)
	}
	add("DEL", key)
	switch obj.Kind {
	case store.KindString:
		add("SET", key, string(obj.Str))
	case store.KindHash:
		args := []string{"HSET", key}
		for f, v := range obj.Hash {
			args = append(args, f, string(v))
		}
		add(args...)
	case store.KindList:
		args := []string{"RPUSH", key}
		obj.List.Walk(func(v []byte) bool {
			args = append(args, string(v))
			return true
		})
		add(args...)
	case store.KindSet:
		args := []string{"SADD", key}
		for m := range obj.Set {
			args = append(args, m)
		}
		add(args...)
	case store.KindZSet:
		args := []string{"ZADD", key}
		for _, en := range obj.ZSet.Range(0, obj.ZSet.Len()-1) {
			args = append(args, fmtScore(en.Score), en.Member)
		}
		add(args...)
	case store.KindStream:
		obj.Stream.Walk(func(en store.StreamEntry) bool {
			args := []string{"XADD", key, en.ID.String()}
			for _, f := range en.Fields {
				args = append(args, string(f))
			}
			add(args...)
			return true
		})
	}
	if exp, has := e.db.ExpireAt(key); has {
		add("PEXPIREAT", key, strconv.FormatInt(exp, 10))
	}
	return cmds
}
