package engine

import (
	"testing"
	"time"

	"memorydb/internal/obs"
)

func TestLatencySlowlogDisabledWithoutObs(t *testing.T) {
	_, _, do := testEngine(t)
	for _, cmd := range []string{"LATENCY", "SLOWLOG"} {
		if v := do(cmd); !v.IsError() {
			t.Errorf("%s without obs = %v, want error", cmd, v)
		}
	}
}

func TestLatencyStagesAndReset(t *testing.T) {
	e, _, do := testEngine(t)
	m := obs.New(obs.Options{})
	e.SetObs(m)
	m.Stage(obs.StageQueueWait).Observe(5 * time.Millisecond)
	m.Stage(obs.StageQueueWait).Observe(7 * time.Millisecond)

	v := do("LATENCY")
	if v.IsError() || len(v.Array) != int(obs.NumStages) {
		t.Fatalf("LATENCY = %v, want %d stage rows", v, obs.NumStages)
	}
	var found bool
	for _, row := range v.Array {
		if row.Array[0].Text() != "queue_wait" {
			continue
		}
		found = true
		if row.Array[1].Int != 2 {
			t.Errorf("queue_wait count = %d, want 2", row.Array[1].Int)
		}
		if p50 := row.Array[2].Int; p50 < 5000 || p50 > 5400 {
			t.Errorf("queue_wait p50 = %dµs, want ~5000", p50)
		}
	}
	if !found {
		t.Fatal("no queue_wait row in LATENCY reply")
	}

	if v := do("LATENCY", "HISTOGRAM", "queue_wait"); v.IsError() || len(v.Array) == 0 {
		t.Fatalf("LATENCY HISTOGRAM = %v, want bucket rows", v)
	}
	if v := do("LATENCY", "HISTOGRAM", "nope"); !v.IsError() {
		t.Fatalf("LATENCY HISTOGRAM nope = %v, want error", v)
	}
	if v := do("LATENCY", "RESET"); v.Text() != "OK" {
		t.Fatalf("LATENCY RESET = %v", v)
	}
	if got := m.Stage(obs.StageQueueWait).Count(); got != 0 {
		t.Fatalf("count after RESET = %d", got)
	}
}

func TestSlowlogCommandSurface(t *testing.T) {
	e, _, do := testEngine(t)
	m := obs.New(obs.Options{SlowlogThreshold: time.Millisecond})
	e.SetObs(m)

	// Below threshold: ignored. Above: retained.
	m.FinishCommand("GET", [][]byte{[]byte("GET"), []byte("k")}, int64(100*time.Microsecond), 0, 0, 0)
	m.FinishCommand("SET", [][]byte{[]byte("SET"), []byte("k"), []byte("v")},
		int64(3*time.Millisecond), int64(time.Millisecond), int64(500*time.Microsecond), 0)

	if v := do("SLOWLOG", "LEN"); v.Int != 1 {
		t.Fatalf("SLOWLOG LEN = %v, want 1", v)
	}
	v := do("SLOWLOG", "GET")
	if len(v.Array) != 1 {
		t.Fatalf("SLOWLOG GET = %v, want 1 entry", v)
	}
	entry := v.Array[0]
	if entry.Array[2].Int != 3000 {
		t.Errorf("slowlog total = %dµs, want 3000", entry.Array[2].Int)
	}
	if entry.Array[3].Array[0].Text() != "SET" {
		t.Errorf("slowlog args = %v", entry.Array[3])
	}

	if v := do("SLOWLOG", "THRESHOLD"); v.Int != 1000 {
		t.Fatalf("SLOWLOG THRESHOLD = %v, want 1000", v)
	}
	if v := do("SLOWLOG", "THRESHOLD", "2500"); v.Text() != "OK" {
		t.Fatalf("set threshold = %v", v)
	}
	if got := m.Slow.Threshold(); got != 2500*time.Microsecond {
		t.Fatalf("threshold = %v", got)
	}
	if v := do("SLOWLOG", "RESET"); v.Text() != "OK" {
		t.Fatalf("SLOWLOG RESET = %v", v)
	}
	if v := do("SLOWLOG", "LEN"); v.Int != 0 {
		t.Fatalf("SLOWLOG LEN after reset = %v", v)
	}
}
