package engine

import (
	"testing"
	"time"
)

func TestGetEx(t *testing.T) {
	_, clk, do := testEngine(t)
	do("SET", "k", "v")
	wantText(t, do("GETEX", "k"), "v") // plain GETEX: no TTL change
	wantInt(t, do("TTL", "k"), -1)
	wantText(t, do("GETEX", "k", "EX", "50"), "v")
	wantInt(t, do("TTL", "k"), 50)
	wantText(t, do("GETEX", "k", "PERSIST"), "v")
	wantInt(t, do("TTL", "k"), -1)
	do("GETEX", "k", "PX", "100")
	clk.Advance(time.Second)
	wantNil(t, do("GET", "k"))
	wantNil(t, do("GETEX", "missing"))
	do("SET", "k2", "v")
	wantErrPrefix(t, do("GETEX", "k2", "BOGUS"), "ERR syntax")
}

func TestGetExReplicatesTTLEffect(t *testing.T) {
	e, _, do := testEngine(t)
	do("SET", "k", "v")
	res := exec(e, "GETEX", "k", "EX", "10")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if len(cmds) != 1 || string(cmds[0][0]) != "PEXPIREAT" {
		t.Fatalf("GETEX effect = %q", cmds)
	}
	// Plain GETEX replicates nothing.
	res = exec(e, "GETEX", "k")
	if res.Mutated() {
		t.Fatal("plain GETEX produced effects")
	}
}

func TestTouchCountsExisting(t *testing.T) {
	_, _, do := testEngine(t)
	do("MSET", "a", "1", "b", "2")
	wantInt(t, do("TOUCH", "a", "b", "missing"), 2)
}

func TestExpireTimeFamily(t *testing.T) {
	_, clk, do := testEngine(t)
	wantInt(t, do("EXPIRETIME", "missing"), -2)
	do("SET", "k", "v")
	wantInt(t, do("EXPIRETIME", "k"), -1)
	do("EXPIRE", "k", "100")
	wantMs := clk.Now().UnixMilli() + 100000
	wantInt(t, do("PEXPIRETIME", "k"), wantMs)
	wantInt(t, do("EXPIRETIME", "k"), wantMs/1000)
}

func TestLPos(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "a", "b", "c", "b", "b")
	wantInt(t, do("LPOS", "l", "b"), 1)
	wantNil(t, do("LPOS", "l", "zz"))
	wantNil(t, do("LPOS", "missing", "a"))
	// RANK 2: second occurrence.
	wantInt(t, do("LPOS", "l", "b", "RANK", "2"), 3)
	// Negative rank: from the tail.
	wantInt(t, do("LPOS", "l", "b", "RANK", "-1"), 4)
	// COUNT: multiple positions.
	v := do("LPOS", "l", "b", "COUNT", "2")
	wantArrayLen(t, v, 2)
	if v.Array[0].Int != 1 || v.Array[1].Int != 3 {
		t.Fatalf("LPOS COUNT = %v", v)
	}
	// COUNT 0: all.
	wantArrayLen(t, do("LPOS", "l", "b", "COUNT", "0"), 3)
	wantErrPrefix(t, do("LPOS", "l", "b", "RANK", "0"), "ERR RANK")
}

func TestLInsert(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "a", "c")
	wantInt(t, do("LINSERT", "l", "BEFORE", "c", "b"), 3)
	v := do("LRANGE", "l", "0", "-1")
	if v.Array[1].Text() != "b" {
		t.Fatalf("after LINSERT BEFORE = %v", v)
	}
	wantInt(t, do("LINSERT", "l", "AFTER", "c", "d"), 4)
	v = do("LRANGE", "l", "0", "-1")
	if v.Array[3].Text() != "d" {
		t.Fatalf("after LINSERT AFTER = %v", v)
	}
	wantInt(t, do("LINSERT", "l", "BEFORE", "zz", "x"), -1)
	wantInt(t, do("LINSERT", "missing", "BEFORE", "a", "x"), 0)
	wantErrPrefix(t, do("LINSERT", "l", "SIDEWAYS", "a", "x"), "ERR syntax")
}

func TestSMIsMember(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s", "a", "b")
	v := do("SMISMEMBER", "s", "a", "x", "b")
	wantArrayLen(t, v, 3)
	if v.Array[0].Int != 1 || v.Array[1].Int != 0 || v.Array[2].Int != 1 {
		t.Fatalf("SMISMEMBER = %v", v)
	}
	v = do("SMISMEMBER", "missing", "a")
	if v.Array[0].Int != 0 {
		t.Fatalf("SMISMEMBER missing = %v", v)
	}
}

func TestSInterCard(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s1", "a", "b", "c")
	do("SADD", "s2", "b", "c", "d")
	wantInt(t, do("SINTERCARD", "2", "s1", "s2"), 2)
	wantInt(t, do("SINTERCARD", "2", "s1", "s2", "LIMIT", "1"), 1)
	wantInt(t, do("SINTERCARD", "2", "s1", "s2", "LIMIT", "0"), 2)
	wantErrPrefix(t, do("SINTERCARD", "0", "s1"), "ERR numkeys")
	wantErrPrefix(t, do("SINTERCARD", "5", "s1"), "ERR Number of keys")
}

func TestZMScore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b")
	v := do("ZMSCORE", "z", "a", "missing", "b")
	wantArrayLen(t, v, 3)
	if v.Array[0].Text() != "1" || !v.Array[1].Null || v.Array[2].Text() != "2" {
		t.Fatalf("ZMSCORE = %v", v)
	}
	v = do("ZMSCORE", "nokey", "a")
	if !v.Array[0].Null {
		t.Fatalf("ZMSCORE nokey = %v", v)
	}
}

func TestHRandField(t *testing.T) {
	_, _, do := testEngine(t)
	do("HSET", "h", "a", "1", "b", "2", "c", "3")
	v := do("HRANDFIELD", "h")
	if v.Null {
		t.Fatal("HRANDFIELD nil on non-empty hash")
	}
	wantArrayLen(t, do("HRANDFIELD", "h", "10"), 3) // distinct, capped
	wantArrayLen(t, do("HRANDFIELD", "h", "-5"), 5) // with replacement
	wantArrayLen(t, do("HRANDFIELD", "h", "2", "WITHVALUES"), 4)
	wantNil(t, do("HRANDFIELD", "missing"))
	wantArrayLen(t, do("HRANDFIELD", "missing", "3"), 0)
}

func TestSetBitGetBit(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("SETBIT", "b", "7", "1"), 0)
	wantInt(t, do("GETBIT", "b", "7"), 1)
	wantInt(t, do("GETBIT", "b", "6"), 0)
	wantInt(t, do("GETBIT", "b", "1000"), 0) // past the end
	wantInt(t, do("SETBIT", "b", "7", "0"), 1)
	wantInt(t, do("GETBIT", "b", "7"), 0)
	wantErrPrefix(t, do("SETBIT", "b", "-1", "1"), "ERR bit offset")
	wantErrPrefix(t, do("SETBIT", "b", "0", "2"), "ERR bit")
	// The string grows to cover the offset.
	do("SETBIT", "b2", "20", "1")
	wantInt(t, do("STRLEN", "b2"), 3)
}

func TestBitCount(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "k", "foobar")
	wantInt(t, do("BITCOUNT", "k"), 26)
	wantInt(t, do("BITCOUNT", "k", "0", "0"), 4)
	wantInt(t, do("BITCOUNT", "k", "1", "1"), 6)
	wantInt(t, do("BITCOUNT", "k", "-2", "-1"), 7) // "ar" = 3 + 4 set bits
	wantInt(t, do("BITCOUNT", "missing"), 0)
}

func TestExtraCommandsReplicate(t *testing.T) {
	p, _, _ := testEngine(t)
	r, _, _ := testEngine(t)
	script := [][]string{
		{"RPUSH", "l", "a", "c"},
		{"LINSERT", "l", "BEFORE", "c", "b"},
		{"SETBIT", "bits", "10", "1"},
		{"SET", "s", "v"},
		{"GETEX", "s", "EX", "500"},
	}
	for _, cmd := range script {
		res := exec(p, cmd...)
		if res.Reply.IsError() {
			t.Fatalf("%v: %v", cmd, res.Reply)
		}
		if err := r.Apply(EncodeRecord(res.Effects)); err != nil {
			t.Fatalf("Apply(%v): %v", cmd, err)
		}
	}
	for _, probe := range [][]string{
		{"LRANGE", "l", "0", "-1"}, {"GETBIT", "bits", "10"}, {"PTTL", "s"},
	} {
		a, b := exec(p, probe...).Reply, exec(r, probe...).Reply
		if !a.Equal(b) {
			t.Fatalf("%v diverged: %v vs %v", probe, a, b)
		}
	}
}
