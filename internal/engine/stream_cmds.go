package engine

import (
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "XADD", Arity: 5, Flags: FlagWrite | FlagFast, Handler: cmdXAdd, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "XLEN", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdXLen, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "XRANGE", Arity: 4, Flags: FlagReadOnly, Handler: cmdXRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "XDEL", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdXDel, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "XTRIM", Arity: -4, Flags: FlagWrite, Handler: cmdXTrim, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "XREAD", Arity: 4, Flags: FlagReadOnly, Handler: cmdXRead})
}

func streamAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindStream)
	if !ok {
		return nil, errReply, false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindStream, Stream: store.NewStream()}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

// cmdXAdd appends a stream entry. Auto-generated IDs ("*") are another
// non-determinism source: the chosen ID is replicated explicitly so every
// consumer of the log stores the identical entry.
func cmdXAdd(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	i := 2
	maxLen := -1
	if strings.EqualFold(string(argv[i]), "MAXLEN") {
		i++
		if i < len(argv) && (string(argv[i]) == "~" || string(argv[i]) == "=") {
			i++
		}
		if i >= len(argv) {
			return errSyntax()
		}
		n, ok := parseInt(argv[i])
		if !ok || n < 0 {
			return errNotInt()
		}
		maxLen = int(n)
		i++
	}
	if i >= len(argv) {
		return wrongArity("XADD")
	}
	idArg := string(argv[i])
	i++
	fields := argv[i:]
	if len(fields) == 0 || len(fields)%2 != 0 {
		return wrongArity("XADD")
	}
	obj, errReply, ok := streamAt(e, key, false)
	if !ok {
		return errReply
	}
	created := false
	if obj == nil {
		obj = &store.Object{Kind: store.KindStream, Stream: store.NewStream()}
		created = true
	}
	auto := idArg == "*"
	var id store.StreamID
	if !auto {
		// "ms-*" partial auto form.
		if strings.HasSuffix(idArg, "-*") {
			ms, err := strconv.ParseUint(strings.TrimSuffix(idArg, "-*"), 10, 64)
			if err != nil {
				return resp.Err("ERR Invalid stream ID specified as stream command argument")
			}
			last := obj.Stream.LastID()
			if last.Ms == ms {
				id = store.StreamID{Ms: ms, Seq: last.Seq + 1}
			} else {
				id = store.StreamID{Ms: ms, Seq: 0}
			}
		} else {
			var err error
			id, err = store.ParseStreamID(idArg, 0)
			if err != nil {
				return resp.Err("ERR Invalid stream ID specified as stream command argument")
			}
		}
	}
	copied := make([][]byte, len(fields))
	for j, f := range fields {
		copied[j] = append([]byte(nil), f...)
	}
	assigned, err := obj.Stream.Add(id, auto, uint64(e.Now().UnixMilli()), copied)
	if err != nil {
		// A failed XADD must not leave an empty stream object behind.
		return resp.Errf("ERR %s", err.Error())
	}
	if created {
		e.db.Set(key, obj)
	}
	var removed int
	if maxLen >= 0 {
		removed = obj.Stream.TrimMaxLen(maxLen)
	}
	e.db.Touch(key)
	e.touch(key)
	eff := make([][]byte, 0, 3+len(fields))
	eff = append(eff, []byte("XADD"), argv[1], []byte(assigned.String()))
	eff = append(eff, fields...)
	e.propagate(eff...)
	if removed > 0 {
		e.propagateStrings("XTRIM", key, "MAXLEN", strconv.Itoa(maxLen))
	}
	return resp.BulkStr(assigned.String())
}

func cmdXLen(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := streamAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(obj.Stream.Len()))
}

func entryReply(en store.StreamEntry) resp.Value {
	fv := make([]resp.Value, len(en.Fields))
	for i, f := range en.Fields {
		fv[i] = resp.Bulk(f)
	}
	return resp.ArrayV(resp.BulkStr(en.ID.String()), resp.ArrayV(fv...))
}

func cmdXRange(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := streamAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	start, err1 := store.ParseStreamID(string(argv[2]), 0)
	end, err2 := store.ParseStreamID(string(argv[3]), ^uint64(0))
	if err1 != nil || err2 != nil {
		return resp.Err("ERR Invalid stream ID specified as stream command argument")
	}
	count := 0
	if len(argv) >= 6 && strings.EqualFold(string(argv[4]), "COUNT") {
		n, ok := parseInt(argv[5])
		if !ok || n < 0 {
			return errNotInt()
		}
		count = int(n)
	} else if len(argv) > 4 {
		return errSyntax()
	}
	if obj == nil {
		return resp.ArrayV()
	}
	entries := obj.Stream.Range(start, end, count)
	out := make([]resp.Value, len(entries))
	for i, en := range entries {
		out[i] = entryReply(en)
	}
	return resp.ArrayV(out...)
}

func cmdXDel(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := streamAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	n := int64(0)
	for _, idArg := range argv[2:] {
		id, err := store.ParseStreamID(string(idArg), 0)
		if err != nil {
			return resp.Err("ERR Invalid stream ID specified as stream command argument")
		}
		if obj.Stream.Delete(id) {
			n++
		}
	}
	if n > 0 {
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(n)
}

func cmdXTrim(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	if !strings.EqualFold(string(argv[2]), "MAXLEN") {
		return errSyntax()
	}
	i := 3
	if i < len(argv) && (string(argv[i]) == "~" || string(argv[i]) == "=") {
		i++
	}
	if i >= len(argv) {
		return errSyntax()
	}
	n, ok := parseInt(argv[i])
	if !ok || n < 0 {
		return errNotInt()
	}
	obj, errReply, ok := streamAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	removed := obj.Stream.TrimMaxLen(int(n))
	if removed > 0 {
		e.db.Touch(key)
		e.touch(key)
		e.propagateStrings("XTRIM", key, "MAXLEN", strconv.FormatInt(n, 10))
	}
	return resp.Int64(int64(removed))
}

// cmdXRead implements the non-blocking XREAD form:
// XREAD [COUNT n] STREAMS key... id...
func cmdXRead(e *Engine, argv [][]byte) resp.Value {
	i := 1
	count := 0
	if strings.EqualFold(string(argv[i]), "COUNT") {
		if i+1 >= len(argv) {
			return errSyntax()
		}
		n, ok := parseInt(argv[i+1])
		if !ok || n < 0 {
			return errNotInt()
		}
		count = int(n)
		i += 2
	}
	if i >= len(argv) || !strings.EqualFold(string(argv[i]), "STREAMS") {
		return errSyntax()
	}
	i++
	rest := argv[i:]
	if len(rest) == 0 || len(rest)%2 != 0 {
		return resp.Err("ERR Unbalanced XREAD list of streams: for each stream key an ID or '$' must be specified.")
	}
	nStreams := len(rest) / 2
	var out []resp.Value
	for s := 0; s < nStreams; s++ {
		key := string(rest[s])
		idArg := string(rest[nStreams+s])
		obj, errReply, ok := streamAt(e, key, false)
		if !ok {
			return errReply
		}
		if obj == nil {
			continue
		}
		var from store.StreamID
		if idArg == "$" {
			from = obj.Stream.LastID()
		} else {
			var err error
			from, err = store.ParseStreamID(idArg, 0)
			if err != nil {
				return resp.Err("ERR Invalid stream ID specified as stream command argument")
			}
		}
		entries := obj.Stream.After(from, count)
		if len(entries) == 0 {
			continue
		}
		es := make([]resp.Value, len(entries))
		for j, en := range entries {
			es[j] = entryReply(en)
		}
		out = append(out, resp.ArrayV(resp.BulkStr(key), resp.ArrayV(es...)))
	}
	if len(out) == 0 {
		return resp.NullArray()
	}
	return resp.ArrayV(out...)
}
