package engine

import "testing"

func TestSAddSRemSCard(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("SADD", "s", "a", "b", "a"), 2)
	wantInt(t, do("SCARD", "s"), 2)
	wantInt(t, do("SREM", "s", "a", "missing"), 1)
	wantInt(t, do("SREM", "s", "b"), 1)
	wantInt(t, do("EXISTS", "s"), 0) // empty set vanishes
	wantInt(t, do("SCARD", "missing"), 0)
	wantInt(t, do("SREM", "missing", "x"), 0)
}

func TestSIsMemberSMembers(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s", "b", "a")
	wantInt(t, do("SISMEMBER", "s", "a"), 1)
	wantInt(t, do("SISMEMBER", "s", "x"), 0)
	wantInt(t, do("SISMEMBER", "missing", "a"), 0)
	v := do("SMEMBERS", "s")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "a" { // deterministic sorted reply
		t.Fatalf("SMEMBERS = %v", v)
	}
}

func TestSPopReplicatesAsSRem(t *testing.T) {
	e, _, do := testEngine(t)
	do("SADD", "s", "a", "b", "c")
	res := exec(e, "SPOP", "s")
	if res.Reply.Null {
		t.Fatal("SPOP returned nil on non-empty set")
	}
	popped := res.Reply.Text()
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "SREM" || string(cmds[0][2]) != popped {
		t.Fatalf("SPOP effect = %q, popped %q", cmds[0], popped)
	}
	wantInt(t, do("SISMEMBER", "s", popped), 0)
}

func TestSPopCount(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s", "a", "b", "c")
	v := do("SPOP", "s", "2")
	wantArrayLen(t, v, 2)
	wantInt(t, do("SCARD", "s"), 1)
	// Popping more than exists drains and deletes.
	v = do("SPOP", "s", "10")
	wantArrayLen(t, v, 1)
	wantInt(t, do("EXISTS", "s"), 0)
	wantNil(t, do("SPOP", "missing"))
	wantArrayLen(t, do("SPOP", "missing", "3"), 0)
}

func TestSRandMember(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s", "a", "b", "c")
	v := do("SRANDMEMBER", "s")
	if v.Null {
		t.Fatal("SRANDMEMBER nil on non-empty set")
	}
	wantInt(t, do("SCARD", "s"), 3) // non-destructive
	// Positive count: distinct members, capped at cardinality.
	wantArrayLen(t, do("SRANDMEMBER", "s", "10"), 3)
	// Negative count: with replacement, exact length.
	wantArrayLen(t, do("SRANDMEMBER", "s", "-7"), 7)
	wantNil(t, do("SRANDMEMBER", "missing"))
}

func TestSMove(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "src", "a", "b")
	wantInt(t, do("SMOVE", "src", "dst", "a"), 1)
	wantInt(t, do("SISMEMBER", "dst", "a"), 1)
	wantInt(t, do("SMOVE", "src", "dst", "missing"), 0)
	wantInt(t, do("SMOVE", "nosrc", "dst", "a"), 0)
	// Moving the last member deletes the source.
	wantInt(t, do("SMOVE", "src", "dst", "b"), 1)
	wantInt(t, do("EXISTS", "src"), 0)
}

func TestSetOperations(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s1", "a", "b", "c")
	do("SADD", "s2", "b", "c", "d")
	v := do("SINTER", "s1", "s2")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "b" || v.Array[1].Text() != "c" {
		t.Fatalf("SINTER = %v", v)
	}
	wantArrayLen(t, do("SUNION", "s1", "s2"), 4)
	v = do("SDIFF", "s1", "s2")
	wantArrayLen(t, v, 1)
	if v.Array[0].Text() != "a" {
		t.Fatalf("SDIFF = %v", v)
	}
	// Missing keys act as empty sets.
	wantArrayLen(t, do("SINTER", "s1", "missing"), 0)
	wantArrayLen(t, do("SDIFF", "s1", "missing"), 3)
}

func TestSetOpStores(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s1", "a", "b", "c")
	do("SADD", "s2", "b", "c", "d")
	wantInt(t, do("SINTERSTORE", "dst", "s1", "s2"), 2)
	wantInt(t, do("SCARD", "dst"), 2)
	wantInt(t, do("SUNIONSTORE", "dst", "s1", "s2"), 4)
	wantInt(t, do("SDIFFSTORE", "dst", "s1", "s2"), 1)
	// Empty result deletes the destination.
	wantInt(t, do("SINTERSTORE", "dst", "s1", "missing"), 0)
	wantInt(t, do("EXISTS", "dst"), 0)
}

func TestSetOpStoreReplicatesMaterializedResult(t *testing.T) {
	e, _, _ := testEngine(t)
	exec(e, "SADD", "s1", "a", "b")
	exec(e, "SADD", "s2", "b", "c")
	res := exec(e, "SUNIONSTORE", "dst", "s1", "s2")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	// DEL dst; SADD dst a b c — the result, not the recipe.
	if len(cmds) != 2 || string(cmds[0][0]) != "DEL" || string(cmds[1][0]) != "SADD" || len(cmds[1]) != 5 {
		t.Fatalf("store effects = %q", cmds)
	}
}
