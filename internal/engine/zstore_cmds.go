package engine

import (
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "ZUNIONSTORE", Arity: 4, Flags: FlagWrite, Handler: cmdZUnionStore, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZINTERSTORE", Arity: 4, Flags: FlagWrite, Handler: cmdZInterStore, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "ZRANGESTORE", Arity: 5, Flags: FlagWrite, Handler: cmdZRangeStore, FirstKey: 1, LastKey: 2, KeyStep: 1})
	register(&Command{Name: "ZDIFF", Arity: 3, Flags: FlagReadOnly, Handler: cmdZDiff, FirstKey: 2, LastKey: -1, KeyStep: 1})
}

type zaggMode int

const (
	aggSum zaggMode = iota
	aggMin
	aggMax
)

// parseZStoreArgs parses "numkeys key... [WEIGHTS w...] [AGGREGATE
// SUM|MIN|MAX]" starting at argv[2].
func parseZStoreArgs(e *Engine, argv [][]byte) (keys []string, weights []float64, agg zaggMode, errReply resp.Value, ok bool) {
	numKeys, okN := parseInt(argv[2])
	if !okN || numKeys <= 0 {
		return nil, nil, 0, resp.Err("ERR at least 1 input key is needed"), false
	}
	if numKeys > int64(len(argv))-3 {
		return nil, nil, 0, errSyntax(), false
	}
	for _, k := range argv[3 : 3+numKeys] {
		keys = append(keys, string(k))
	}
	weights = make([]float64, len(keys))
	for i := range weights {
		weights[i] = 1
	}
	rest := argv[3+numKeys:]
	for i := 0; i < len(rest); i++ {
		switch strings.ToUpper(string(rest[i])) {
		case "WEIGHTS":
			if i+len(keys) >= len(rest) {
				return nil, nil, 0, errSyntax(), false
			}
			for j := 0; j < len(keys); j++ {
				w, okF := parseFloat(rest[i+1+j])
				if !okF {
					return nil, nil, 0, resp.Err("ERR weight value is not a float"), false
				}
				weights[j] = w
			}
			i += len(keys)
		case "AGGREGATE":
			if i+1 >= len(rest) {
				return nil, nil, 0, errSyntax(), false
			}
			switch strings.ToUpper(string(rest[i+1])) {
			case "SUM":
				agg = aggSum
			case "MIN":
				agg = aggMin
			case "MAX":
				agg = aggMax
			default:
				return nil, nil, 0, errSyntax(), false
			}
			i++
		default:
			return nil, nil, 0, errSyntax(), false
		}
	}
	return keys, weights, agg, resp.Value{}, true
}

// zsetMembersOf reads key as a zset, or adapts a plain set (members with
// score 1), matching Redis's ZUNIONSTORE input flexibility.
func zsetMembersOf(e *Engine, key string) (map[string]float64, resp.Value, bool) {
	obj := e.lookup(key)
	if obj == nil {
		return nil, resp.Value{}, true
	}
	out := make(map[string]float64)
	switch obj.Kind {
	case store.KindZSet:
		for _, en := range obj.ZSet.Range(0, obj.ZSet.Len()-1) {
			out[en.Member] = en.Score
		}
	case store.KindSet:
		for m := range obj.Set {
			out[m] = 1
		}
	default:
		return nil, wrongType(), false
	}
	return out, resp.Value{}, true
}

func zstoreGeneric(e *Engine, argv [][]byte, inter bool) resp.Value {
	dst := string(argv[1])
	keys, weights, agg, errReply, ok := parseZStoreArgs(e, argv)
	if !ok {
		return errReply
	}
	acc := make(map[string]float64)
	counts := make(map[string]int)
	for i, k := range keys {
		members, errReply, okM := zsetMembersOf(e, k)
		if !okM {
			return errReply
		}
		for m, s := range members {
			ws := s * weights[i]
			if cur, exists := acc[m]; exists {
				switch agg {
				case aggSum:
					acc[m] = cur + ws
				case aggMin:
					if ws < cur {
						acc[m] = ws
					}
				case aggMax:
					if ws > cur {
						acc[m] = ws
					}
				}
			} else {
				acc[m] = ws
			}
			counts[m]++
		}
	}
	if inter {
		for m, n := range counts {
			if n != len(keys) {
				delete(acc, m)
			}
		}
	}
	return materializeZSet(e, dst, acc)
}

// materializeZSet stores acc at dst and replicates the *result* (DEL +
// ZADD of every member) so replicas never re-run the aggregation.
func materializeZSet(e *Engine, dst string, acc map[string]float64) resp.Value {
	if len(acc) == 0 {
		if e.db.Delete(dst, e.Now()) {
			e.touch(dst)
			e.propagateStrings("DEL", dst)
		}
		return resp.Int64(0)
	}
	z := store.NewZSet()
	for m, s := range acc {
		z.Add(m, s)
	}
	e.db.Set(dst, &store.Object{Kind: store.KindZSet, ZSet: z})
	e.touch(dst)
	eff := []string{"ZADD", dst}
	for _, en := range z.Range(0, z.Len()-1) {
		eff = append(eff, fmtScore(en.Score), en.Member)
	}
	e.propagateStrings("DEL", dst)
	e.propagateStrings(eff...)
	return resp.Int64(int64(len(acc)))
}

func cmdZUnionStore(e *Engine, argv [][]byte) resp.Value {
	return zstoreGeneric(e, argv, false)
}

func cmdZInterStore(e *Engine, argv [][]byte) resp.Value {
	return zstoreGeneric(e, argv, true)
}

// cmdZRangeStore implements ZRANGESTORE dst src min max [BYSCORE]
// [LIMIT offset count] [REV] — the rank and score range forms.
func cmdZRangeStore(e *Engine, argv [][]byte) resp.Value {
	dst, src := string(argv[1]), string(argv[2])
	byScore, rev := false, false
	offset, limit := 0, -1
	for i := 5; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "BYSCORE":
			byScore = true
		case "REV":
			rev = true
		case "LIMIT":
			if i+2 >= len(argv) {
				return errSyntax()
			}
			o, ok1 := parseInt(argv[i+1])
			l, ok2 := parseInt(argv[i+2])
			if !ok1 || !ok2 {
				return errNotInt()
			}
			offset, limit = int(o), int(l)
			i += 2
		default:
			return errSyntax()
		}
	}
	if limit >= 0 && !byScore {
		return resp.Err("ERR syntax error, LIMIT is only supported in combination with either BYSCORE or BYLEX")
	}
	obj, errReply, ok := zsetAt(e, src, false)
	if !ok {
		return errReply
	}
	var entries []store.Entry
	if obj != nil {
		if byScore {
			min, minEx, ok1 := parseScoreBound(argv[3])
			max, maxEx, ok2 := parseScoreBound(argv[4])
			if !ok1 || !ok2 {
				return resp.Err("ERR min or max is not a float")
			}
			if rev {
				min, max, minEx, maxEx = max, min, maxEx, minEx
			}
			entries = obj.ZSet.ScoreRange(min, max, minEx, maxEx, offset, limit)
		} else {
			start, ok1 := parseInt(argv[3])
			stop, ok2 := parseInt(argv[4])
			if !ok1 || !ok2 {
				return errNotInt()
			}
			if rev {
				entries = obj.ZSet.RevRange(int(start), int(stop))
			} else {
				entries = obj.ZSet.Range(int(start), int(stop))
			}
		}
	}
	acc := make(map[string]float64, len(entries))
	for _, en := range entries {
		acc[en.Member] = en.Score
	}
	return materializeZSet(e, dst, acc)
}

// cmdZDiff implements ZDIFF numkeys key... [WITHSCORES] (read-only).
func cmdZDiff(e *Engine, argv [][]byte) resp.Value {
	numKeys, okN := parseInt(argv[1])
	if !okN || numKeys <= 0 {
		return resp.Err("ERR at least 1 input key is needed")
	}
	if numKeys > int64(len(argv))-2 {
		return errSyntax()
	}
	withScores := false
	if int64(len(argv)) == numKeys+3 {
		if !strings.EqualFold(string(argv[len(argv)-1]), "WITHSCORES") {
			return errSyntax()
		}
		withScores = true
	} else if int64(len(argv)) > numKeys+3 {
		return errSyntax()
	}
	base, errReply, ok := zsetMembersOf(e, string(argv[2]))
	if !ok {
		return errReply
	}
	for _, k := range argv[3 : 2+numKeys] {
		members, errReply, okM := zsetMembersOf(e, string(k))
		if !okM {
			return errReply
		}
		for m := range members {
			delete(base, m)
		}
	}
	z := store.NewZSet()
	for m, s := range base {
		z.Add(m, s)
	}
	return zrangeReply(z.Range(0, z.Len()-1), withScores)
}
