// Package engine implements the in-memory execution engine: the command
// table, single-threaded execution semantics, and — critically for
// MemoryDB — the generation of the replication stream as *effects*
// (write-behind logging, paper §3.2). Non-deterministic commands such as
// SPOP are executed once on the primary and replicated as their
// deterministic effects; relative expirations are rewritten as absolute
// ones; atomic groups (MULTI/EXEC) replicate as a single record.
//
// The engine is deliberately not synchronized: exactly one goroutine (the
// node's workloop) may call Exec/Apply, mirroring Redis's single-threaded
// execution model.
package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/store"
	"memorydb/internal/trace"
)

// Version is the current engine version, stamped onto replication records
// for upgrade protection (§7.1).
const Version uint32 = 2

// Flags describe command properties.
type Flags uint8

// Command flags.
const (
	// FlagWrite marks commands that may mutate the keyspace.
	FlagWrite Flags = 1 << iota
	// FlagReadOnly marks pure reads (safe on replicas).
	FlagReadOnly
	// FlagFast marks O(1)-ish commands (informational).
	FlagFast
)

// Command is one entry in the command table.
type Command struct {
	Name    string
	Arity   int // minimum argc including the name; negative = exact -Arity
	Flags   Flags
	Handler func(e *Engine, argv [][]byte) resp.Value
	// Key extraction spec (Redis-style): FirstKey/LastKey/KeyStep, all in
	// argv indices; LastKey -1 means "through the end".
	FirstKey, LastKey, KeyStep int
}

// Keys extracts the key arguments of argv according to the command spec.
func (c *Command) Keys(argv [][]byte) []string {
	if c.FirstKey == 0 || len(argv) <= c.FirstKey {
		return nil
	}
	last := c.LastKey
	if last < 0 {
		last = len(argv) + last
	}
	if last >= len(argv) {
		last = len(argv) - 1
	}
	step := c.KeyStep
	if step <= 0 {
		step = 1
	}
	var keys []string
	for i := c.FirstKey; i <= last; i += step {
		keys = append(keys, string(argv[i]))
	}
	return keys
}

// Writes reports whether the command may mutate.
func (c *Command) Writes() bool { return c.Flags&FlagWrite != 0 }

var commandTable = map[string]*Command{}

func register(c *Command) {
	commandTable[c.Name] = c
}

// LookupCommand returns the command table entry for name
// (case-insensitive).
func LookupCommand(name string) (*Command, bool) {
	c, ok := commandTable[strings.ToUpper(name)]
	return c, ok
}

// CommandNames returns every registered command name, sorted.
func CommandNames() []string {
	out := make([]string, 0, len(commandTable))
	for n := range commandTable {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of executing one command (or one atomic batch).
type Result struct {
	Reply resp.Value
	// Effects are the RESP-encoded deterministic commands to replicate.
	// Empty for pure reads that caused no lazy expiry.
	Effects [][]byte
	// Keys are the keys whose data changed; the tracker hazards reads on
	// them until the covering log entry commits.
	Keys []string
}

// Mutated reports whether the command produced replication effects.
func (r *Result) Mutated() bool { return len(r.Effects) > 0 }

// Engine wraps a keyspace with command execution.
type Engine struct {
	db  *store.DB
	clk clock.Clock
	rng *rand.Rand

	// obs, when set by the owning node, backs the LATENCY/SLOWLOG
	// introspection commands. The engine only reads from it.
	obs *obs.Metrics

	// trace / flight, when set by the owning node, back the TRACE and
	// DEBUG FLIGHT introspection commands. The engine only reads them.
	trace  *trace.Collector
	flight *trace.Flight

	// Per-command scratch state, reset by Exec.
	effects   [][]byte
	dirtyKeys []string
	applying  bool // true while replaying replicated effects
}

// SetObs attaches the observability registry the LATENCY and SLOWLOG
// commands report from. Nil detaches (the commands then return an error).
func (e *Engine) SetObs(m *obs.Metrics) { e.obs = m }

// SetTrace attaches the span collector the TRACE command reports from.
func (e *Engine) SetTrace(c *trace.Collector) { e.trace = c }

// SetFlight attaches the flight recorder DEBUG FLIGHT reports from.
func (e *Engine) SetFlight(f *trace.Flight) { e.flight = f }

// New returns an engine over a fresh keyspace.
func New(clk clock.Clock) *Engine {
	return NewShared(clk, store.NewDB())
}

// NewShared returns an engine over an existing keyspace. A sharded node
// creates one engine per sub-shard workloop, all over the same DB: each
// engine only ever executes commands whose keys fall in the parts its
// workloop owns, so the shared DB needs no locking. The per-engine scratch
// state (effects, dirty keys, rng) stays private to each workloop.
func NewShared(clk clock.Clock, db *store.DB) *Engine {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Engine{
		db:  db,
		clk: clk,
		rng: rand.New(rand.NewSource(0xda7aba5e)),
	}
}

// DB exposes the underlying keyspace (snapshotting, tests).
func (e *Engine) DB() *store.DB { return e.db }

// ResetDB replaces the engine's keyspace wholesale — the snapshot restore
// path builds a DB from a snapshot and swaps it in before log replay.
func (e *Engine) ResetDB(db *store.DB) { e.db = db }

// Now returns the engine's current time.
func (e *Engine) Now() time.Time { return e.clk.Now() }

// Exec executes one command, returning the reply and the replication
// effects. Only the node workloop may call it.
func (e *Engine) Exec(argv [][]byte) Result {
	e.effects = nil
	e.dirtyKeys = nil
	reply := e.dispatch(argv)
	return Result{Reply: reply, Effects: e.effects, Keys: dedup(e.dirtyKeys)}
}

// ExecBatch executes an atomic group (MULTI/EXEC or a script-like batch).
// All replies are collected into one array and all effects into a single
// Result so the node can log them as one atomic record (§2.1, §3.2).
func (e *Engine) ExecBatch(cmds [][][]byte) Result {
	e.effects = nil
	e.dirtyKeys = nil
	replies := make([]resp.Value, 0, len(cmds))
	for _, argv := range cmds {
		replies = append(replies, e.dispatch(argv))
	}
	return Result{
		Reply:   resp.ArrayV(replies...),
		Effects: e.effects,
		Keys:    dedup(e.dirtyKeys),
	}
}

// Apply executes a replicated record payload: one or more RESP-encoded
// commands, applied without generating further effects. Replicas and
// recovering nodes use this to consume the transaction log.
func (e *Engine) Apply(record []byte) error {
	cmds, err := DecodeRecord(record)
	if err != nil {
		return err
	}
	e.applying = true
	defer func() { e.applying = false }()
	for _, argv := range cmds {
		e.effects = nil
		e.dirtyKeys = nil
		if reply := e.dispatch(argv); reply.IsError() {
			return fmt.Errorf("engine: replicated command %s failed: %s",
				strings.ToUpper(string(argv[0])), reply.Text())
		}
	}
	return nil
}

// ApplyTracked is Apply for consumers that need change attribution (the
// forkless snapshot builder): it returns the deduplicated set of keys the
// record mutated. wholesale reports a command that rewrote the keyspace
// without touching individual keys (FLUSHALL/FLUSHDB) — per-key deltas
// cannot describe it, so the caller must fall back to a full snapshot.
func (e *Engine) ApplyTracked(record []byte) (keys []string, wholesale bool, err error) {
	cmds, err := DecodeRecord(record)
	if err != nil {
		return nil, false, err
	}
	e.applying = true
	defer func() { e.applying = false }()
	for _, argv := range cmds {
		e.effects = nil
		e.dirtyKeys = nil
		if reply := e.dispatch(argv); reply.IsError() {
			return nil, false, fmt.Errorf("engine: replicated command %s failed: %s",
				strings.ToUpper(string(argv[0])), reply.Text())
		}
		switch strings.ToUpper(string(argv[0])) {
		case "FLUSHALL", "FLUSHDB":
			wholesale = true
		}
		keys = append(keys, e.dirtyKeys...)
	}
	return dedup(keys), wholesale, nil
}

func (e *Engine) dispatch(argv [][]byte) resp.Value {
	if len(argv) == 0 {
		return resp.Err("ERR empty command")
	}
	name := strings.ToUpper(string(argv[0]))
	cmd, ok := commandTable[name]
	if !ok {
		return resp.Errf("ERR unknown command '%s'", string(argv[0]))
	}
	if cmd.Arity < 0 {
		if len(argv) != -cmd.Arity {
			return wrongArity(name)
		}
	} else if len(argv) < cmd.Arity {
		return wrongArity(name)
	}
	return cmd.Handler(e, argv)
}

func wrongArity(name string) resp.Value {
	return resp.Errf("ERR wrong number of arguments for '%s' command", strings.ToLower(name))
}

// propagate records an effect command for the replication stream. During
// Apply (replica path) effects are suppressed.
func (e *Engine) propagate(argv ...[]byte) {
	if e.applying {
		return
	}
	e.effects = append(e.effects, resp.EncodeCommand(argv...))
}

// propagateStrings is propagate over strings.
func (e *Engine) propagateStrings(argv ...string) {
	if e.applying {
		return
	}
	e.effects = append(e.effects, resp.EncodeCommandStrings(argv...))
}

// propagateVerbatim replicates the command exactly as received — the
// common case for deterministic writes.
func (e *Engine) propagateVerbatim(argv [][]byte) {
	e.propagate(argv...)
}

// touch marks key as mutated by the current command.
func (e *Engine) touch(key string) {
	e.dirtyKeys = append(e.dirtyKeys, key)
}

// lookup reads key, propagating a DEL effect if a lazy expiry fired (so
// replicas and the log observe deterministic expiry, §2.1).
func (e *Engine) lookup(key string) *store.Object {
	obj, reaped := e.db.Lookup(key, e.Now())
	if reaped {
		e.propagateStrings("DEL", key)
		e.touch(key)
	}
	return obj
}

// lookupKind reads key and enforces its kind, returning (nil, errReply)
// on a WRONGTYPE violation; (nil, Nil-kind ok) when absent.
func (e *Engine) lookupKind(key string, kind store.Kind) (*store.Object, resp.Value, bool) {
	obj := e.lookup(key)
	if obj == nil {
		return nil, resp.Value{}, true
	}
	if obj.Kind != kind {
		return nil, wrongType(), false
	}
	return obj, resp.Value{}, true
}

func wrongType() resp.Value {
	return resp.Err("WRONGTYPE Operation against a key holding the wrong kind of value")
}

func dedup(keys []string) []string {
	if len(keys) <= 1 {
		return keys
	}
	seen := make(map[string]struct{}, len(keys))
	out := keys[:0]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// SweepExpired proactively expires up to limit keys, producing DEL effects
// for each (the active expiry cycle).
func (e *Engine) SweepExpired(limit int) Result {
	return e.SweepExpiredParts(limit, 0, store.NumParts)
}

// SweepExpiredParts is SweepExpired restricted to store parts [lo, hi).
// Sharded workloops sweep only the parts they own so the resulting DEL
// effects flow through the same group-commit buffer as that shard's
// writes, keeping the per-key replication order intact.
func (e *Engine) SweepExpiredParts(limit, lo, hi int) Result {
	e.effects = nil
	e.dirtyKeys = nil
	for _, k := range e.db.SweepExpiredParts(e.Now(), limit, lo, hi) {
		e.propagateStrings("DEL", k)
		e.touch(k)
	}
	return Result{Effects: e.effects, Keys: dedup(e.dirtyKeys)}
}

// Parsing helpers shared by command handlers.

func parseInt(b []byte) (int64, bool) {
	n, err := strconv.ParseInt(string(b), 10, 64)
	return n, err == nil
}

func parseFloat(b []byte) (float64, bool) {
	f, err := strconv.ParseFloat(string(b), 64)
	return f, err == nil
}

func errNotInt() resp.Value {
	return resp.Err("ERR value is not an integer or out of range")
}

func errNotFloat() resp.Value {
	return resp.Err("ERR value is not a valid float")
}

func errSyntax() resp.Value {
	return resp.Err("ERR syntax error")
}

// fmtScore renders a zset score the way Redis replies (shortest
// round-trippable form).
func fmtScore(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
