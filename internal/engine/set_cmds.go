package engine

import (
	"sort"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "SADD", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdSAdd, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SREM", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdSRem, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SCARD", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdSCard, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SISMEMBER", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdSIsMember, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SMEMBERS", Arity: -2, Flags: FlagReadOnly, Handler: cmdSMembers, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SPOP", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdSPop, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SRANDMEMBER", Arity: 2, Flags: FlagReadOnly, Handler: cmdSRandMember, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SMOVE", Arity: -4, Flags: FlagWrite | FlagFast, Handler: cmdSMove, FirstKey: 1, LastKey: 2, KeyStep: 1})
	register(&Command{Name: "SINTER", Arity: 2, Flags: FlagReadOnly, Handler: cmdSInter, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "SUNION", Arity: 2, Flags: FlagReadOnly, Handler: cmdSUnion, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "SDIFF", Arity: 2, Flags: FlagReadOnly, Handler: cmdSDiff, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "SINTERSTORE", Arity: 3, Flags: FlagWrite, Handler: cmdSInterStore, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "SUNIONSTORE", Arity: 3, Flags: FlagWrite, Handler: cmdSUnionStore, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "SDIFFSTORE", Arity: 3, Flags: FlagWrite, Handler: cmdSDiffStore, FirstKey: 1, LastKey: -1, KeyStep: 1})
}

func setAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindSet)
	if !ok {
		return nil, errReply, false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindSet, Set: make(map[string]struct{})}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

func cmdSAdd(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := setAt(e, key, true)
	if !ok {
		return errReply
	}
	n := int64(0)
	for _, m := range argv[2:] {
		member := string(m)
		if _, exists := obj.Set[member]; !exists {
			obj.Set[member] = struct{}{}
			e.db.AdjustUsed(int64(len(member)))
			n++
		}
	}
	if n > 0 {
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(n)
}

func cmdSRem(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := setAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	n := int64(0)
	for _, m := range argv[2:] {
		member := string(m)
		if _, exists := obj.Set[member]; exists {
			delete(obj.Set, member)
			e.db.AdjustUsed(-int64(len(member)))
			n++
		}
	}
	if n > 0 {
		if len(obj.Set) == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(n)
}

func cmdSCard(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := setAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(len(obj.Set)))
}

func cmdSIsMember(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := setAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	if _, exists := obj.Set[string(argv[2])]; exists {
		return resp.Int64(1)
	}
	return resp.Int64(0)
}

func sortedMembers(obj *store.Object) []string {
	out := make([]string, 0, len(obj.Set))
	for m := range obj.Set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func cmdSMembers(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := setAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.ArrayV()
	}
	return resp.BulkArray(sortedMembers(obj)...)
}

// cmdSPop is the canonical non-deterministic command (§2.1): the primary
// picks random members and replicates explicit SREMs so replicas converge
// deterministically.
func cmdSPop(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := setAt(e, key, false)
	if !ok {
		return errReply
	}
	count := 1
	withCount := len(argv) == 3
	if withCount {
		n, okN := parseInt(argv[2])
		if !okN || n < 0 {
			return errNotInt()
		}
		count = int(n)
	} else if len(argv) > 3 {
		return wrongArity("SPOP")
	}
	if obj == nil {
		if withCount {
			return resp.ArrayV()
		}
		return resp.Nil
	}
	members := sortedMembers(obj)
	if count > len(members) {
		count = len(members)
	}
	// Random selection without replacement.
	picked := make([]string, 0, count)
	for i := 0; i < count; i++ {
		j := e.rng.Intn(len(members))
		picked = append(picked, members[j])
		members = append(members[:j], members[j+1:]...)
	}
	eff := make([]string, 0, 2+len(picked))
	eff = append(eff, "SREM", key)
	for _, m := range picked {
		delete(obj.Set, m)
		e.db.AdjustUsed(-int64(len(m)))
		eff = append(eff, m)
	}
	if len(picked) > 0 {
		if len(obj.Set) == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateStrings(eff...)
	}
	if !withCount {
		if len(picked) == 0 {
			return resp.Nil
		}
		return resp.BulkStr(picked[0])
	}
	return resp.BulkArray(picked...)
}

func cmdSRandMember(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := setAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	withCount := len(argv) == 3
	if obj == nil {
		if withCount {
			return resp.ArrayV()
		}
		return resp.Nil
	}
	members := sortedMembers(obj)
	if !withCount {
		return resp.BulkStr(members[e.rng.Intn(len(members))])
	}
	n, okN := parseInt(argv[2])
	if !okN {
		return errNotInt()
	}
	var out []string
	if n >= 0 {
		// Distinct members, at most the cardinality.
		if int(n) > len(members) {
			n = int64(len(members))
		}
		idx := e.rng.Perm(len(members))[:n]
		for _, i := range idx {
			out = append(out, members[i])
		}
	} else {
		// With replacement, exactly -n members.
		for i := int64(0); i < -n; i++ {
			out = append(out, members[e.rng.Intn(len(members))])
		}
	}
	return resp.BulkArray(out...)
}

func cmdSMove(e *Engine, argv [][]byte) resp.Value {
	src, dst := string(argv[1]), string(argv[2])
	member := string(argv[3])
	srcObj, errReply, ok := setAt(e, src, false)
	if !ok {
		return errReply
	}
	if srcObj == nil {
		return resp.Int64(0)
	}
	if _, exists := srcObj.Set[member]; !exists {
		return resp.Int64(0)
	}
	dstObj, errReply, ok := setAt(e, dst, true)
	if !ok {
		return errReply
	}
	delete(srcObj.Set, member)
	dstObj.Set[member] = struct{}{}
	if len(srcObj.Set) == 0 {
		e.db.Delete(src, e.Now())
	}
	e.db.Touch(src)
	e.touch(src)
	e.touch(dst)
	e.propagateVerbatim(argv)
	return resp.Int64(1)
}

func setOp(e *Engine, keys [][]byte, op byte) (map[string]struct{}, resp.Value, bool) {
	acc := make(map[string]struct{})
	for i, k := range keys {
		obj, errReply, ok := setAt(e, string(k), false)
		if !ok {
			return nil, errReply, false
		}
		cur := map[string]struct{}{}
		if obj != nil {
			cur = obj.Set
		}
		switch op {
		case 'u':
			for m := range cur {
				acc[m] = struct{}{}
			}
		case 'i':
			if i == 0 {
				for m := range cur {
					acc[m] = struct{}{}
				}
			} else {
				for m := range acc {
					if _, ok := cur[m]; !ok {
						delete(acc, m)
					}
				}
			}
		case 'd':
			if i == 0 {
				for m := range cur {
					acc[m] = struct{}{}
				}
			} else {
				for m := range cur {
					delete(acc, m)
				}
			}
		}
	}
	return acc, resp.Value{}, true
}

func setOpReply(acc map[string]struct{}) resp.Value {
	out := make([]string, 0, len(acc))
	for m := range acc {
		out = append(out, m)
	}
	sort.Strings(out)
	return resp.BulkArray(out...)
}

func cmdSInter(e *Engine, argv [][]byte) resp.Value {
	acc, errReply, ok := setOp(e, argv[1:], 'i')
	if !ok {
		return errReply
	}
	return setOpReply(acc)
}

func cmdSUnion(e *Engine, argv [][]byte) resp.Value {
	acc, errReply, ok := setOp(e, argv[1:], 'u')
	if !ok {
		return errReply
	}
	return setOpReply(acc)
}

func cmdSDiff(e *Engine, argv [][]byte) resp.Value {
	acc, errReply, ok := setOp(e, argv[1:], 'd')
	if !ok {
		return errReply
	}
	return setOpReply(acc)
}

func setOpStore(e *Engine, argv [][]byte, op byte) resp.Value {
	dst := string(argv[1])
	acc, errReply, ok := setOp(e, argv[2:], op)
	if !ok {
		return errReply
	}
	if len(acc) == 0 {
		existed := e.db.Delete(dst, e.Now())
		if existed {
			e.touch(dst)
			e.propagateStrings("DEL", dst)
		}
		return resp.Int64(0)
	}
	obj := &store.Object{Kind: store.KindSet, Set: acc}
	e.db.Set(dst, obj)
	e.db.Touch(dst)
	e.touch(dst)
	// Deterministic store result: replicate DEL + SADD of the exact
	// resulting members (in sorted order) rather than re-running the op.
	members := sortedMembers(obj)
	eff := append([]string{"SADD", dst}, members...)
	e.propagateStrings("DEL", dst)
	e.propagateStrings(eff...)
	return resp.Int64(int64(len(acc)))
}

func cmdSInterStore(e *Engine, argv [][]byte) resp.Value { return setOpStore(e, argv, 'i') }
func cmdSUnionStore(e *Engine, argv [][]byte) resp.Value { return setOpStore(e, argv, 'u') }
func cmdSDiffStore(e *Engine, argv [][]byte) resp.Value  { return setOpStore(e, argv, 'd') }
