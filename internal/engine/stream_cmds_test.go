package engine

import (
	"testing"
)

func TestXAddAutoAndExplicit(t *testing.T) {
	_, _, do := testEngine(t)
	v := do("XADD", "s", "*", "f", "v")
	if v.Null || v.IsError() {
		t.Fatalf("XADD * = %v", v)
	}
	wantInt(t, do("XLEN", "s"), 1)
	wantText(t, do("XADD", "s2", "100-1", "f", "v"), "100-1")
	wantErrPrefix(t, do("XADD", "s2", "100-1", "f", "v"), "ERR")
	wantErrPrefix(t, do("XADD", "s2", "garbage", "f", "v"), "ERR Invalid stream ID")
	wantErrPrefix(t, do("XADD", "s2", "*", "f"), "ERR wrong number of arguments")
}

func TestXAddPartialAutoSeq(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("XADD", "s", "5-0", "f", "v"), "5-0")
	wantText(t, do("XADD", "s", "5-*", "f", "v"), "5-1")
	wantText(t, do("XADD", "s", "9-*", "f", "v"), "9-0")
}

func TestXAddReplicatesExplicitID(t *testing.T) {
	e, _, _ := testEngine(t)
	res := exec(e, "XADD", "s", "*", "f", "v")
	id := res.Reply.Text()
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "XADD" || string(cmds[0][2]) != id {
		t.Fatalf("XADD effect = %q, assigned %q", cmds[0], id)
	}
}

func TestXRange(t *testing.T) {
	_, _, do := testEngine(t)
	do("XADD", "s", "1-0", "n", "1")
	do("XADD", "s", "2-0", "n", "2")
	do("XADD", "s", "3-0", "n", "3")
	v := do("XRANGE", "s", "-", "+")
	wantArrayLen(t, v, 3)
	v = do("XRANGE", "s", "2", "3")
	wantArrayLen(t, v, 2)
	v = do("XRANGE", "s", "-", "+", "COUNT", "1")
	wantArrayLen(t, v, 1)
	// Entry shape: [id, [f1, v1, ...]].
	entry := v.Array[0]
	wantArrayLen(t, entry, 2)
	if entry.Array[0].Text() != "1-0" {
		t.Fatalf("entry = %v", entry)
	}
	wantArrayLen(t, do("XRANGE", "missing", "-", "+"), 0)
}

func TestXDelAndXTrim(t *testing.T) {
	_, _, do := testEngine(t)
	for i := 1; i <= 5; i++ {
		do("XADD", "s", formatInt(int64(i))+"-0", "f", "v")
	}
	wantInt(t, do("XDEL", "s", "3-0", "99-0"), 1)
	wantInt(t, do("XLEN", "s"), 4)
	wantInt(t, do("XTRIM", "s", "MAXLEN", "2"), 2)
	wantInt(t, do("XLEN", "s"), 2)
	wantInt(t, do("XTRIM", "missing", "MAXLEN", "2"), 0)
}

func TestXAddMaxLen(t *testing.T) {
	_, _, do := testEngine(t)
	for i := 1; i <= 5; i++ {
		do("XADD", "s", "MAXLEN", "3", formatInt(int64(i))+"-0", "f", "v")
	}
	wantInt(t, do("XLEN", "s"), 3)
}

func TestXRead(t *testing.T) {
	_, _, do := testEngine(t)
	do("XADD", "a", "1-0", "f", "1")
	do("XADD", "a", "2-0", "f", "2")
	do("XADD", "b", "1-0", "g", "x")
	v := do("XREAD", "COUNT", "10", "STREAMS", "a", "b", "0", "0")
	wantArrayLen(t, v, 2)
	// [[key, entries], ...]
	if v.Array[0].Array[0].Text() != "a" {
		t.Fatalf("XREAD = %v", v)
	}
	wantArrayLen(t, v.Array[0].Array[1], 2)
	// From a later position.
	v = do("XREAD", "STREAMS", "a", "1-0")
	wantArrayLen(t, v.Array[0].Array[1], 1)
	// Nothing new → null array.
	v = do("XREAD", "STREAMS", "a", "$")
	if !v.Null {
		t.Fatalf("XREAD $ = %v", v)
	}
	wantErrPrefix(t, do("XREAD", "STREAMS", "a", "b", "0"), "ERR Unbalanced")
}
