package engine

import "testing"

func TestZAddZScoreZCard(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("ZADD", "z", "1", "a", "2", "b"), 2)
	wantInt(t, do("ZADD", "z", "3", "a"), 0) // update, not add
	wantText(t, do("ZSCORE", "z", "a"), "3")
	wantNil(t, do("ZSCORE", "z", "missing"))
	wantNil(t, do("ZSCORE", "nokey", "a"))
	wantInt(t, do("ZCARD", "z"), 2)
	wantInt(t, do("ZCARD", "missing"), 0)
	wantErrPrefix(t, do("ZADD", "z", "notafloat", "m"), "ERR value is not a valid float")
}

func TestZAddOptions(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "5", "m")
	// NX: never update.
	wantInt(t, do("ZADD", "z", "NX", "9", "m"), 0)
	wantText(t, do("ZSCORE", "z", "m"), "5")
	// XX: never add.
	wantInt(t, do("ZADD", "z", "XX", "9", "new"), 0)
	wantNil(t, do("ZSCORE", "z", "new"))
	// GT: only increase.
	do("ZADD", "z", "GT", "3", "m")
	wantText(t, do("ZSCORE", "z", "m"), "5")
	do("ZADD", "z", "GT", "7", "m")
	wantText(t, do("ZSCORE", "z", "m"), "7")
	// LT: only decrease.
	do("ZADD", "z", "LT", "9", "m")
	wantText(t, do("ZSCORE", "z", "m"), "7")
	do("ZADD", "z", "LT", "2", "m")
	wantText(t, do("ZSCORE", "z", "m"), "2")
	// CH counts changes.
	wantInt(t, do("ZADD", "z", "CH", "4", "m", "1", "other"), 2)
	// INCR mode returns the new score.
	wantText(t, do("ZADD", "z", "INCR", "6", "m"), "10")
	// NX+XX invalid.
	wantErrPrefix(t, do("ZADD", "z", "NX", "XX", "1", "m"), "ERR GT, LT, and/or NX")
}

func TestZIncrBy(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("ZINCRBY", "z", "2.5", "m"), "2.5")
	wantText(t, do("ZINCRBY", "z", "-1", "m"), "1.5")
}

func TestZRankZRevRank(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c")
	wantInt(t, do("ZRANK", "z", "a"), 0)
	wantInt(t, do("ZRANK", "z", "c"), 2)
	wantInt(t, do("ZREVRANK", "z", "c"), 0)
	wantNil(t, do("ZRANK", "z", "missing"))
	wantNil(t, do("ZRANK", "nokey", "a"))
}

func TestZRangeVariants(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c")
	v := do("ZRANGE", "z", "0", "-1")
	wantArrayLen(t, v, 3)
	v = do("ZRANGE", "z", "0", "1", "WITHSCORES")
	wantArrayLen(t, v, 4)
	if v.Array[1].Text() != "1" {
		t.Fatalf("WITHSCORES = %v", v)
	}
	v = do("ZREVRANGE", "z", "0", "0")
	if v.Array[0].Text() != "c" {
		t.Fatalf("ZREVRANGE = %v", v)
	}
	wantArrayLen(t, do("ZRANGE", "missing", "0", "-1"), 0)
	wantErrPrefix(t, do("ZRANGE", "z", "0", "1", "BOGUS"), "ERR syntax")
}

func TestZRangeByScore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c", "4", "d")
	v := do("ZRANGEBYSCORE", "z", "2", "3")
	wantArrayLen(t, v, 2)
	v = do("ZRANGEBYSCORE", "z", "(1", "(4")
	wantArrayLen(t, v, 2)
	v = do("ZRANGEBYSCORE", "z", "-inf", "+inf")
	wantArrayLen(t, v, 4)
	v = do("ZRANGEBYSCORE", "z", "-inf", "+inf", "LIMIT", "1", "2")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "b" {
		t.Fatalf("LIMIT = %v", v)
	}
	wantErrPrefix(t, do("ZRANGEBYSCORE", "z", "x", "3"), "ERR min or max is not a float")
}

func TestZCount(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c")
	wantInt(t, do("ZCOUNT", "z", "2", "3"), 2)
	wantInt(t, do("ZCOUNT", "z", "(1", "+inf"), 2)
	wantInt(t, do("ZCOUNT", "missing", "-inf", "+inf"), 0)
}

func TestZPopMinMaxCommand(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c")
	v := do("ZPOPMIN", "z")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "a" {
		t.Fatalf("ZPOPMIN = %v", v)
	}
	v = do("ZPOPMAX", "z", "2")
	wantArrayLen(t, v, 4)
	if v.Array[0].Text() != "c" || v.Array[2].Text() != "b" {
		t.Fatalf("ZPOPMAX = %v", v)
	}
	wantInt(t, do("EXISTS", "z"), 0)
}

func TestZPopReplicatesAsZRem(t *testing.T) {
	e, _, _ := testEngine(t)
	exec(e, "ZADD", "z", "1", "a", "2", "b")
	res := exec(e, "ZPOPMIN", "z")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "ZREM" || string(cmds[0][2]) != "a" {
		t.Fatalf("ZPOPMIN effect = %q", cmds[0])
	}
}

func TestZRemRangeByRankAndScore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b", "3", "c", "4", "d")
	wantInt(t, do("ZREMRANGEBYRANK", "z", "0", "1"), 2)
	wantInt(t, do("ZCARD", "z"), 2)
	wantInt(t, do("ZREMRANGEBYSCORE", "z", "3", "3"), 1)
	wantInt(t, do("ZREMRANGEBYSCORE", "z", "-inf", "+inf"), 1)
	wantInt(t, do("EXISTS", "z"), 0)
	wantInt(t, do("ZREMRANGEBYRANK", "missing", "0", "-1"), 0)
}

func TestZRemMulti(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z", "1", "a", "2", "b")
	wantInt(t, do("ZREM", "z", "a", "missing", "b"), 2)
	wantInt(t, do("EXISTS", "z"), 0)
	wantInt(t, do("ZREM", "missing", "a"), 0)
}
