package engine

import "testing"

func TestHSetHGet(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("HSET", "h", "f1", "v1", "f2", "v2"), 2)
	wantInt(t, do("HSET", "h", "f1", "updated", "f3", "v3"), 1) // only f3 is new
	wantText(t, do("HGET", "h", "f1"), "updated")
	wantNil(t, do("HGET", "h", "missing"))
	wantNil(t, do("HGET", "nohash", "f"))
	wantErrPrefix(t, do("HSET", "h", "f"), "ERR wrong number of arguments")
}

func TestHMSetHMGet(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("HMSET", "h", "a", "1", "b", "2"), "OK")
	v := do("HMGET", "h", "a", "missing", "b")
	wantArrayLen(t, v, 3)
	if v.Array[0].Text() != "1" || !v.Array[1].Null || v.Array[2].Text() != "2" {
		t.Fatalf("HMGET = %v", v)
	}
}

func TestHSetNX(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("HSETNX", "h", "f", "v"), 1)
	wantInt(t, do("HSETNX", "h", "f", "other"), 0)
	wantText(t, do("HGET", "h", "f"), "v")
}

func TestHDelRemovesKeyWhenEmpty(t *testing.T) {
	_, _, do := testEngine(t)
	do("HSET", "h", "a", "1", "b", "2")
	wantInt(t, do("HDEL", "h", "a", "missing"), 1)
	wantInt(t, do("HDEL", "h", "b"), 1)
	wantInt(t, do("EXISTS", "h"), 0) // empty hash vanishes
	wantInt(t, do("HDEL", "h", "x"), 0)
}

func TestHGetAllSortedDeterministic(t *testing.T) {
	_, _, do := testEngine(t)
	do("HSET", "h", "z", "26", "a", "1", "m", "13")
	v := do("HGETALL", "h")
	wantArrayLen(t, v, 6)
	if v.Array[0].Text() != "a" || v.Array[2].Text() != "m" || v.Array[4].Text() != "z" {
		t.Fatalf("HGETALL order = %v", v)
	}
	wantArrayLen(t, do("HGETALL", "missing"), 0)
}

func TestHExistsHLenHKeysHVals(t *testing.T) {
	_, _, do := testEngine(t)
	do("HSET", "h", "b", "2", "a", "1")
	wantInt(t, do("HEXISTS", "h", "a"), 1)
	wantInt(t, do("HEXISTS", "h", "x"), 0)
	wantInt(t, do("HEXISTS", "missing", "a"), 0)
	wantInt(t, do("HLEN", "h"), 2)
	wantInt(t, do("HLEN", "missing"), 0)
	keys := do("HKEYS", "h")
	if keys.Array[0].Text() != "a" || keys.Array[1].Text() != "b" {
		t.Fatalf("HKEYS = %v", keys)
	}
	vals := do("HVALS", "h")
	if vals.Array[0].Text() != "1" || vals.Array[1].Text() != "2" {
		t.Fatalf("HVALS = %v", vals)
	}
	wantInt(t, do("HSTRLEN", "h", "a"), 1)
	wantInt(t, do("HSTRLEN", "h", "x"), 0)
}

func TestHIncrBy(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("HINCRBY", "h", "n", "5"), 5)
	wantInt(t, do("HINCRBY", "h", "n", "-3"), 2)
	do("HSET", "h", "s", "abc")
	wantErrPrefix(t, do("HINCRBY", "h", "s", "1"), "ERR hash value is not an integer")
	wantErrPrefix(t, do("HINCRBY", "h", "n", "abc"), "ERR value is not an integer")
}

func TestHIncrByFloat(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("HINCRBYFLOAT", "h", "f", "1.5"), "1.5")
	wantText(t, do("HINCRBYFLOAT", "h", "f", "0.25"), "1.75")
}

func TestHIncrByReplicatesResult(t *testing.T) {
	e, _, _ := testEngine(t)
	res := exec(e, "HINCRBY", "h", "n", "7")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "HSET" || string(cmds[0][3]) != "7" {
		t.Fatalf("HINCRBY effect = %q", cmds[0])
	}
}
