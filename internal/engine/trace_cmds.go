package engine

import (
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/trace"
)

// TRACE and DEBUG FLIGHT: the RESP face of the distributed-tracing
// layer. Keyless reads any node answers regardless of role (the
// workloop whitelists them alongside LATENCY/SLOWLOG), reporting from
// the collector / flight ring the owning node attached via
// SetTrace/SetFlight.

func init() {
	register(&Command{Name: "TRACE", Arity: 1, Flags: FlagReadOnly | FlagFast, Handler: cmdTrace})
	register(&Command{Name: "DEBUG", Arity: 1, Flags: FlagReadOnly | FlagFast, Handler: cmdDebug})
}

var errTraceDisabled = resp.Err("ERR tracing is disabled on this node")

// spanRow renders one span as
// [span_id, parent_id, name, node, az, shard, start_usec, dur_usec].
func spanRow(s trace.Span) resp.Value {
	return resp.ArrayV(
		resp.Int64(int64(s.SpanID)),
		resp.Int64(int64(s.ParentID)),
		resp.BulkStr(s.Name),
		resp.BulkStr(s.Node),
		resp.Int64(int64(s.AZ)),
		resp.Int64(int64(s.Shard)),
		resp.Int64(s.Start/1000),
		resp.Int64(s.Dur()/1000),
	)
}

// cmdTrace: TRACE GET <trace_id> | RECENT [n] | RESET.
// GET returns the assembled span tree (parents before children where
// starts tie), one spanRow per span.
func cmdTrace(e *Engine, argv [][]byte) resp.Value {
	if e.trace == nil {
		return errTraceDisabled
	}
	sub := "RECENT"
	if len(argv) >= 2 {
		sub = strings.ToUpper(string(argv[1]))
	}
	switch sub {
	case "GET":
		if len(argv) != 3 {
			return resp.Err("ERR TRACE GET requires a trace id")
		}
		id, err := strconv.ParseUint(string(argv[2]), 10, 64)
		if err != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
		spans := e.trace.Trace(id)
		rows := make([]resp.Value, 0, len(spans))
		for _, s := range spans {
			rows = append(rows, spanRow(s))
		}
		return resp.ArrayV(rows...)
	case "RECENT":
		n := 16
		if len(argv) >= 3 {
			v, err := strconv.Atoi(string(argv[2]))
			if err != nil || v < 0 {
				return resp.Err("ERR value is not an integer or out of range")
			}
			n = v
		}
		ids := e.trace.RecentTraces(n)
		rows := make([]resp.Value, 0, len(ids))
		for _, id := range ids {
			rows = append(rows, resp.Int64(int64(id)))
		}
		return resp.ArrayV(rows...)
	case "RESET":
		e.trace.Reset()
		return resp.OK
	}
	return resp.Errf("ERR unknown TRACE subcommand '%s'", argv[1])
}

// cmdDebug: DEBUG FLIGHT DUMP | FLIGHT TOTAL. DUMP renders this node's
// flight-recorder ring as a readable timeline (the cluster harness
// merges rings across nodes; one node's ring is still useful alone).
func cmdDebug(e *Engine, argv [][]byte) resp.Value {
	if len(argv) >= 2 && strings.ToUpper(string(argv[1])) == "FLIGHT" {
		if e.flight == nil {
			return resp.Err("ERR flight recorder is disabled on this node")
		}
		sub := "DUMP"
		if len(argv) >= 3 {
			sub = strings.ToUpper(string(argv[2]))
		}
		switch sub {
		case "DUMP":
			return resp.BulkStr(trace.FormatTimeline(e.flight.Events()))
		case "TOTAL":
			return resp.Int64(int64(e.flight.Total()))
		}
		return resp.Errf("ERR unknown DEBUG FLIGHT subcommand '%s'", argv[2])
	}
	return resp.Err("ERR unknown DEBUG subcommand (supported: FLIGHT DUMP|TOTAL)")
}
