package engine

import (
	"testing"
	"time"
)

func TestSetGet(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("SET", "k", "v"), "OK")
	wantText(t, do("GET", "k"), "v")
	wantNil(t, do("GET", "missing"))
}

func TestSetNXXXOptions(t *testing.T) {
	_, _, do := testEngine(t)
	wantNil(t, do("SET", "k", "v", "XX")) // absent + XX → nil
	wantText(t, do("SET", "k", "v", "NX"), "OK")
	wantNil(t, do("SET", "k", "v2", "NX")) // present + NX → nil
	wantText(t, do("GET", "k"), "v")
	wantText(t, do("SET", "k", "v2", "XX"), "OK")
	wantText(t, do("GET", "k"), "v2")
	wantErrPrefix(t, do("SET", "k", "v", "NX", "XX"), "ERR syntax")
	wantErrPrefix(t, do("SET", "k", "v", "BOGUS"), "ERR syntax")
}

func TestSetWithGetOption(t *testing.T) {
	_, _, do := testEngine(t)
	wantNil(t, do("SET", "k", "v1", "GET"))
	wantText(t, do("SET", "k", "v2", "GET"), "v1")
	// GET + NX on existing key returns old value and does not set.
	wantText(t, do("SET", "k", "v3", "NX", "GET"), "v2")
	wantText(t, do("GET", "k"), "v2")
}

func TestSetExpireOptions(t *testing.T) {
	e, clk, do := testEngine(t)
	wantText(t, do("SET", "k", "v", "EX", "10"), "OK")
	ttl := exec(e, "TTL", "k").Reply
	wantInt(t, ttl, 10)
	clk.Advance(11 * time.Second)
	wantNil(t, do("GET", "k"))

	wantText(t, do("SET", "k2", "v", "PX", "500"), "OK")
	clk.Advance(400 * time.Millisecond)
	wantText(t, do("GET", "k2"), "v")
	clk.Advance(200 * time.Millisecond)
	wantNil(t, do("GET", "k2"))

	wantErrPrefix(t, do("SET", "k", "v", "EX", "abc"), "ERR value is not an integer")
	wantErrPrefix(t, do("SET", "k", "v", "EX"), "ERR syntax")
}

func TestSetKeepTTLOption(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "k", "v", "EX", "100")
	do("SET", "k", "v2", "KEEPTTL")
	wantInt(t, do("TTL", "k"), 100)
	do("SET", "k", "v3") // plain SET clears TTL
	wantInt(t, do("TTL", "k"), -1)
}

func TestSetReplicatesAbsoluteExpiry(t *testing.T) {
	e, clk, _ := testEngine(t)
	res := exec(e, "SET", "k", "v", "EX", "10")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if len(cmds) != 1 || string(cmds[0][3]) != "PXAT" {
		t.Fatalf("SET EX must replicate as PXAT: %q", cmds)
	}
	wantMs := clk.Now().UnixMilli() + 10000
	if string(cmds[0][4]) != formatInt(wantMs) {
		t.Fatalf("PXAT deadline = %q, want %d", cmds[0][4], wantMs)
	}
}

func formatInt(n int64) string {
	b := make([]byte, 0, 20)
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('0'+n%10))
		n /= 10
	}
	for i := len(digits) - 1; i >= 0; i-- {
		b = append(b, digits[i])
	}
	return string(b)
}

func TestSetNXSetEX(t *testing.T) {
	_, clk, do := testEngine(t)
	wantInt(t, do("SETNX", "k", "v"), 1)
	wantInt(t, do("SETNX", "k", "v2"), 0)
	wantText(t, do("SETEX", "e", "5", "v"), "OK")
	wantInt(t, do("TTL", "e"), 5)
	wantText(t, do("PSETEX", "p", "500", "v"), "OK")
	clk.Advance(time.Second)
	wantNil(t, do("GET", "p"))
	wantErrPrefix(t, do("SETEX", "e", "0", "v"), "ERR invalid expire")
	wantErrPrefix(t, do("SETEX", "e", "-1", "v"), "ERR invalid expire")
}

func TestGetSetGetDel(t *testing.T) {
	_, _, do := testEngine(t)
	wantNil(t, do("GETSET", "k", "v1"))
	wantText(t, do("GETSET", "k", "v2"), "v1")
	wantText(t, do("GETDEL", "k"), "v2")
	wantNil(t, do("GET", "k"))
	wantNil(t, do("GETDEL", "missing"))
}

func TestAppendStrlen(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("APPEND", "k", "abc"), 3)
	wantInt(t, do("APPEND", "k", "def"), 6)
	wantText(t, do("GET", "k"), "abcdef")
	wantInt(t, do("STRLEN", "k"), 6)
	wantInt(t, do("STRLEN", "missing"), 0)
}

func TestGetRange(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "k", "Hello World")
	wantText(t, do("GETRANGE", "k", "0", "4"), "Hello")
	wantText(t, do("GETRANGE", "k", "-5", "-1"), "World")
	wantText(t, do("GETRANGE", "k", "0", "-1"), "Hello World")
	wantText(t, do("GETRANGE", "k", "20", "30"), "")
	wantText(t, do("GETRANGE", "missing", "0", "1"), "")
}

func TestSetRange(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "k", "Hello World")
	wantInt(t, do("SETRANGE", "k", "6", "Redis"), 11)
	wantText(t, do("GET", "k"), "Hello Redis")
	// Zero-padding past the end.
	wantInt(t, do("SETRANGE", "pad", "3", "x"), 4)
	got := do("GET", "pad")
	if string(got.Str) != "\x00\x00\x00x" {
		t.Fatalf("padded = %q", got.Str)
	}
	wantErrPrefix(t, do("SETRANGE", "k", "-1", "x"), "ERR offset is out of range")
}

func TestIncrDecrFamily(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("INCR", "n"), 1)
	wantInt(t, do("INCR", "n"), 2)
	wantInt(t, do("DECR", "n"), 1)
	wantInt(t, do("INCRBY", "n", "10"), 11)
	wantInt(t, do("DECRBY", "n", "5"), 6)
	do("SET", "s", "abc")
	wantErrPrefix(t, do("INCR", "s"), "ERR value is not an integer")
	wantErrPrefix(t, do("INCRBY", "n", "abc"), "ERR value is not an integer")
}

func TestIncrPreservesTTL(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "n", "1", "EX", "100")
	do("INCR", "n")
	wantInt(t, do("TTL", "n"), 100)
}

func TestIncrOverflow(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "n", "9223372036854775807")
	wantErrPrefix(t, do("INCR", "n"), "ERR increment or decrement would overflow")
	do("SET", "m", "-9223372036854775808")
	wantErrPrefix(t, do("DECR", "m"), "ERR increment or decrement would overflow")
}

func TestIncrByFloat(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("INCRBYFLOAT", "f", "1.5"), "1.5")
	wantText(t, do("INCRBYFLOAT", "f", "2.25"), "3.75")
	wantErrPrefix(t, do("INCRBYFLOAT", "f", "nope"), "ERR value is not a valid float")
}

func TestIncrReplicatesResultingValue(t *testing.T) {
	e, _, do := testEngine(t)
	do("SET", "n", "41")
	res := exec(e, "INCR", "n")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "SET" || string(cmds[0][2]) != "42" {
		t.Fatalf("INCR effect = %q", cmds[0])
	}
}

func TestMSetMGet(t *testing.T) {
	_, _, do := testEngine(t)
	wantText(t, do("MSET", "a", "1", "b", "2"), "OK")
	v := do("MGET", "a", "b", "missing")
	wantArrayLen(t, v, 3)
	if v.Array[0].Text() != "1" || v.Array[1].Text() != "2" || !v.Array[2].Null {
		t.Fatalf("MGET = %v", v)
	}
	wantErrPrefix(t, do("MSET", "a", "1", "b"), "ERR wrong number of arguments")
}

func TestMSetNX(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("MSETNX", "a", "1", "b", "2"), 1)
	wantInt(t, do("MSETNX", "b", "x", "c", "3"), 0)
	wantNil(t, do("GET", "c")) // all-or-nothing
	wantText(t, do("GET", "b"), "2")
}

func TestMGetSkipsWrongType(t *testing.T) {
	_, _, do := testEngine(t)
	do("LPUSH", "l", "x")
	do("SET", "s", "v")
	v := do("MGET", "l", "s")
	if !v.Array[0].Null || v.Array[1].Text() != "v" {
		t.Fatalf("MGET over wrong type = %v", v)
	}
}
