package engine

import "testing"

func TestPFAddPFCount(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("PFADD", "h", "a", "b", "c"), 1)
	wantInt(t, do("PFADD", "h", "a"), 0) // no register change
	v := do("PFCOUNT", "h")
	if v.Int != 3 {
		t.Fatalf("PFCOUNT = %v", v)
	}
	wantInt(t, do("PFCOUNT", "missing"), 0)
}

func TestPFCountMultiKey(t *testing.T) {
	_, _, do := testEngine(t)
	do("PFADD", "h1", "a", "b")
	do("PFADD", "h2", "b", "c")
	v := do("PFCOUNT", "h1", "h2")
	if v.Int != 3 {
		t.Fatalf("union PFCOUNT = %v", v)
	}
}

func TestPFMerge(t *testing.T) {
	_, _, do := testEngine(t)
	do("PFADD", "h1", "a", "b")
	do("PFADD", "h2", "c")
	wantText(t, do("PFMERGE", "dst", "h1", "h2"), "OK")
	v := do("PFCOUNT", "dst")
	if v.Int != 3 {
		t.Fatalf("merged PFCOUNT = %v", v)
	}
}

func TestPFWrongTypeOnPlainString(t *testing.T) {
	_, _, do := testEngine(t)
	do("SET", "s", "not an hll")
	wantErrPrefix(t, do("PFADD", "s", "x"), "WRONGTYPE")
	wantErrPrefix(t, do("PFCOUNT", "s"), "WRONGTYPE")
}

func TestDumpCommandsRecreateState(t *testing.T) {
	src, _, _ := testEngine(t)
	dst, _, _ := testEngine(t)
	setup := [][]string{
		{"SET", "str", "value"},
		{"EXPIRE", "str", "1000"},
		{"HSET", "hash", "a", "1", "b", "2"},
		{"RPUSH", "list", "x", "y", "z"},
		{"SADD", "set", "m1", "m2"},
		{"ZADD", "zset", "1.5", "a", "2.5", "b"},
		{"XADD", "stream", "7-0", "f", "v"},
	}
	for _, cmd := range setup {
		if r := exec(src, cmd...); r.Reply.IsError() {
			t.Fatalf("%v: %v", cmd, r.Reply)
		}
	}
	for _, key := range []string{"str", "hash", "list", "set", "zset", "stream"} {
		for _, argv := range src.DumpCommands(key) {
			if r := dst.Exec(argv); r.Reply.IsError() {
				t.Fatalf("dump cmd %q: %v", argv, r.Reply)
			}
		}
	}
	probes := [][]string{
		{"GET", "str"}, {"PTTL", "str"}, {"HGETALL", "hash"},
		{"LRANGE", "list", "0", "-1"}, {"SMEMBERS", "set"},
		{"ZRANGE", "zset", "0", "-1", "WITHSCORES"},
		{"XRANGE", "stream", "-", "+"},
	}
	for _, p := range probes {
		a := exec(src, p...).Reply
		b := exec(dst, p...).Reply
		if !a.Equal(b) {
			t.Fatalf("%v: src %v, dst %v", p, a, b)
		}
	}
}

func TestDumpCommandsMissingKey(t *testing.T) {
	e, _, _ := testEngine(t)
	if cmds := e.DumpCommands("missing"); cmds != nil {
		t.Fatalf("dump of missing key = %v", cmds)
	}
}
