package engine

import (
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "GET", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdGet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SET", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdSet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SETNX", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdSetNX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SETEX", Arity: -4, Flags: FlagWrite, Handler: cmdSetEX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PSETEX", Arity: -4, Flags: FlagWrite, Handler: cmdPSetEX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "GETSET", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdGetSet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "GETDEL", Arity: -2, Flags: FlagWrite | FlagFast, Handler: cmdGetDel, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "APPEND", Arity: -3, Flags: FlagWrite, Handler: cmdAppend, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "STRLEN", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdStrlen, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "GETRANGE", Arity: -4, Flags: FlagReadOnly, Handler: cmdGetRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SETRANGE", Arity: -4, Flags: FlagWrite, Handler: cmdSetRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "INCR", Arity: -2, Flags: FlagWrite | FlagFast, Handler: cmdIncr, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "DECR", Arity: -2, Flags: FlagWrite | FlagFast, Handler: cmdDecr, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "INCRBY", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdIncrBy, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "DECRBY", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdDecrBy, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "INCRBYFLOAT", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdIncrByFloat, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "MGET", Arity: 2, Flags: FlagReadOnly | FlagFast, Handler: cmdMGet, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "MSET", Arity: 3, Flags: FlagWrite, Handler: cmdMSet, FirstKey: 1, LastKey: -1, KeyStep: 2})
	register(&Command{Name: "MSETNX", Arity: 3, Flags: FlagWrite, Handler: cmdMSetNX, FirstKey: 1, LastKey: -1, KeyStep: 2})
}

func strObject(v []byte) *store.Object {
	return &store.Object{Kind: store.KindString, Str: v}
}

// relativeDeadline computes nowMs + n*unitMs with overflow detection:
// ok=false means the requested expiry is unrepresentable (Redis rejects
// it as an invalid expire time rather than wrapping).
func relativeDeadline(nowMs, n, unitMs int64) (int64, bool) {
	if n > 0 && n > ((1<<62)-nowMs)/unitMs {
		return 0, false
	}
	if n < 0 && n < (-(1<<62))/unitMs {
		return 0, false
	}
	return nowMs + n*unitMs, true
}

func cmdGet(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	return resp.Bulk(obj.Str)
}

// cmdSet implements SET with NX/XX/EX/PX/EXAT/PXAT/KEEPTTL/GET. Relative
// expirations replicate as absolute PXAT so replicas and recovery apply
// the same deadline (§2.1 deterministic replication).
func cmdSet(e *Engine, argv [][]byte) resp.Value {
	key, val := string(argv[1]), argv[2]
	var (
		nx, xx, keepTTL, withGet bool
		expireAtMs               int64 // 0 = none
	)
	now := e.Now()
	for i := 3; i < len(argv); i++ {
		opt := strings.ToUpper(string(argv[i]))
		switch opt {
		case "NX":
			nx = true
		case "XX":
			xx = true
		case "KEEPTTL":
			keepTTL = true
		case "GET":
			withGet = true
		case "EX", "PX", "EXAT", "PXAT":
			if i+1 >= len(argv) {
				return errSyntax()
			}
			n, ok := parseInt(argv[i+1])
			if !ok {
				return errNotInt()
			}
			i++
			var okTTL bool
			switch opt {
			case "EX":
				expireAtMs, okTTL = relativeDeadline(now.UnixMilli(), n, 1000)
			case "PX":
				expireAtMs, okTTL = relativeDeadline(now.UnixMilli(), n, 1)
			case "EXAT":
				expireAtMs, okTTL = n*1000, n <= (1<<62)/1000
			case "PXAT":
				expireAtMs, okTTL = n, true
			}
			if !okTTL {
				return resp.Err("ERR invalid expire time in 'set' command")
			}
		default:
			return errSyntax()
		}
	}
	if nx && xx {
		return errSyntax()
	}
	prev := e.lookup(key)
	var prevReply resp.Value
	if withGet {
		if prev == nil {
			prevReply = resp.Nil
		} else if prev.Kind != store.KindString {
			return wrongType()
		} else {
			prevReply = resp.Bulk(prev.Str)
		}
	}
	if (nx && prev != nil) || (xx && prev == nil) {
		if withGet {
			return prevReply
		}
		return resp.Nil
	}
	obj := strObject(val)
	if keepTTL {
		e.db.SetKeepTTL(key, obj)
	} else {
		e.db.Set(key, obj)
	}
	if expireAtMs > 0 {
		e.db.Expire(key, expireAtMs, now)
	}
	e.touch(key)
	// Replicate deterministically: SET key val [PXAT ms] [KEEPTTL].
	eff := []string{"SET", key, string(val)}
	if expireAtMs > 0 {
		eff = append(eff, "PXAT", strconv.FormatInt(expireAtMs, 10))
	} else if keepTTL {
		eff = append(eff, "KEEPTTL")
	}
	e.propagateStrings(eff...)
	if withGet {
		return prevReply
	}
	return resp.OK
}

func cmdSetNX(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	if e.lookup(key) != nil {
		return resp.Int64(0)
	}
	e.db.Set(key, strObject(argv[2]))
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(1)
}

func cmdSetEX(e *Engine, argv [][]byte) resp.Value {
	return setWithTTL(e, argv, 1000)
}

func cmdPSetEX(e *Engine, argv [][]byte) resp.Value {
	return setWithTTL(e, argv, 1)
}

func setWithTTL(e *Engine, argv [][]byte, unitMs int64) resp.Value {
	key := string(argv[1])
	n, ok := parseInt(argv[2])
	if !ok {
		return errNotInt()
	}
	now := e.Now()
	at, okTTL := relativeDeadline(now.UnixMilli(), n, unitMs)
	if n <= 0 || !okTTL {
		return resp.Errf("ERR invalid expire time in '%s' command", strings.ToLower(string(argv[0])))
	}
	e.db.Set(key, strObject(argv[3]))
	e.db.Expire(key, at, now)
	e.touch(key)
	e.propagateStrings("SET", key, string(argv[3]), "PXAT", strconv.FormatInt(at, 10))
	return resp.OK
}

func cmdGetSet(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	reply := resp.Nil
	if obj != nil {
		reply = resp.Bulk(obj.Str)
	}
	e.db.Set(key, strObject(argv[2]))
	e.touch(key)
	e.propagateStrings("SET", key, string(argv[2]))
	return reply
}

func cmdGetDel(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	reply := resp.Bulk(obj.Str)
	e.db.Delete(key, e.Now())
	e.touch(key)
	e.propagateStrings("DEL", key)
	return reply
}

func cmdAppend(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	if obj == nil {
		e.db.Set(key, strObject(append([]byte(nil), argv[2]...)))
		obj, _ = e.db.Peek(key)
	} else {
		obj.Str = append(obj.Str, argv[2]...)
		e.db.AdjustUsed(int64(len(argv[2])))
		e.db.Touch(key)
	}
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(int64(len(obj.Str)))
}

func cmdStrlen(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := e.lookupKind(string(argv[1]), store.KindString)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(len(obj.Str)))
}

func cmdGetRange(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := e.lookupKind(string(argv[1]), store.KindString)
	if !ok {
		return errReply
	}
	start, ok1 := parseInt(argv[2])
	end, ok2 := parseInt(argv[3])
	if !ok1 || !ok2 {
		return errNotInt()
	}
	if obj == nil {
		return resp.Bulk(nil)
	}
	n := int64(len(obj.Str))
	if start < 0 {
		start += n
	}
	if end < 0 {
		end += n
	}
	if start < 0 {
		start = 0
	}
	if end >= n {
		end = n - 1
	}
	if n == 0 || start > end {
		return resp.Bulk(nil)
	}
	return resp.Bulk(obj.Str[start : end+1])
}

func cmdSetRange(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	off, ok := parseInt(argv[2])
	if !ok {
		return errNotInt()
	}
	if off < 0 {
		return resp.Err("ERR offset is out of range")
	}
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	var cur []byte
	if obj != nil {
		cur = obj.Str
	}
	if len(argv[3]) == 0 {
		return resp.Int64(int64(len(cur)))
	}
	need := int(off) + len(argv[3])
	if need > len(cur) {
		grown := make([]byte, need)
		copy(grown, cur)
		cur = grown
	}
	copy(cur[off:], argv[3])
	e.db.Set(key, strObject(cur))
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(int64(len(cur)))
}

func cmdIncr(e *Engine, argv [][]byte) resp.Value { return incrBy(e, string(argv[1]), 1) }
func cmdDecr(e *Engine, argv [][]byte) resp.Value { return incrBy(e, string(argv[1]), -1) }

func cmdIncrBy(e *Engine, argv [][]byte) resp.Value {
	n, ok := parseInt(argv[2])
	if !ok {
		return errNotInt()
	}
	return incrBy(e, string(argv[1]), n)
}

func cmdDecrBy(e *Engine, argv [][]byte) resp.Value {
	n, ok := parseInt(argv[2])
	if !ok {
		return errNotInt()
	}
	return incrBy(e, string(argv[1]), -n)
}

func incrBy(e *Engine, key string, delta int64) resp.Value {
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	var cur int64
	if obj != nil {
		v, ok := parseInt(obj.Str)
		if !ok {
			return errNotInt()
		}
		cur = v
	}
	// Overflow check.
	if (delta > 0 && cur > (1<<63-1)-delta) || (delta < 0 && cur < -(1<<63-1)-delta-1) {
		return resp.Err("ERR increment or decrement would overflow")
	}
	cur += delta
	s := strconv.AppendInt(nil, cur, 10)
	if obj != nil {
		e.db.AdjustUsed(int64(len(s) - len(obj.Str)))
		obj.Str = s
		e.db.Touch(key)
	} else {
		e.db.SetKeepTTL(key, strObject(s))
	}
	e.touch(key)
	// INCR is deterministic; replicate the resulting SET to keep replicas
	// byte-identical even across engine versions with different overflow
	// edge behaviour.
	e.propagateStrings("SET", key, string(s), "KEEPTTL")
	return resp.Int64(cur)
}

func cmdIncrByFloat(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	delta, ok := parseFloat(argv[2])
	if !ok {
		return errNotFloat()
	}
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	var cur float64
	if obj != nil {
		v, ok := parseFloat(obj.Str)
		if !ok {
			return errNotFloat()
		}
		cur = v
	}
	cur += delta
	s := strconv.FormatFloat(cur, 'f', -1, 64)
	if obj != nil {
		e.db.AdjustUsed(int64(len(s) - len(obj.Str)))
		obj.Str = []byte(s)
		e.db.Touch(key)
	} else {
		e.db.SetKeepTTL(key, strObject([]byte(s)))
	}
	e.touch(key)
	// Float math is replicated as its effect (Redis does the same).
	e.propagateStrings("SET", key, s, "KEEPTTL")
	return resp.BulkStr(s)
}

func cmdMGet(e *Engine, argv [][]byte) resp.Value {
	out := make([]resp.Value, 0, len(argv)-1)
	for _, k := range argv[1:] {
		obj := e.lookup(string(k))
		if obj == nil || obj.Kind != store.KindString {
			out = append(out, resp.Nil)
		} else {
			out = append(out, resp.Bulk(obj.Str))
		}
	}
	return resp.ArrayV(out...)
}

func cmdMSet(e *Engine, argv [][]byte) resp.Value {
	if len(argv)%2 != 1 {
		return wrongArity("MSET")
	}
	for i := 1; i < len(argv); i += 2 {
		key := string(argv[i])
		e.db.Set(key, strObject(argv[i+1]))
		e.touch(key)
	}
	e.propagateVerbatim(argv)
	return resp.OK
}

func cmdMSetNX(e *Engine, argv [][]byte) resp.Value {
	if len(argv)%2 != 1 {
		return wrongArity("MSETNX")
	}
	for i := 1; i < len(argv); i += 2 {
		if e.lookup(string(argv[i])) != nil {
			return resp.Int64(0)
		}
	}
	for i := 1; i < len(argv); i += 2 {
		key := string(argv[i])
		e.db.Set(key, strObject(argv[i+1]))
		e.touch(key)
	}
	e.propagateVerbatim(argv)
	return resp.Int64(1)
}
