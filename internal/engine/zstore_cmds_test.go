package engine

import "testing"

func TestZUnionStore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z1", "1", "a", "2", "b")
	do("ZADD", "z2", "10", "b", "20", "c")
	wantInt(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2"), 3)
	v := do("ZRANGE", "dst", "0", "-1", "WITHSCORES")
	wantArrayLen(t, v, 6)
	// b = 2 + 10 = 12 under SUM.
	if v.Array[2].Text() != "b" || v.Array[3].Text() != "12" {
		t.Fatalf("union = %v", v)
	}
}

func TestZUnionStoreWeightsAndAggregate(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z1", "1", "a")
	do("ZADD", "z2", "5", "a")
	wantInt(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2", "WEIGHTS", "10", "2"), 1)
	wantText(t, do("ZSCORE", "dst", "a"), "20") // 1×10 + 5×2 under SUM
	wantInt(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2", "AGGREGATE", "MIN"), 1)
	wantText(t, do("ZSCORE", "dst", "a"), "1")
	wantInt(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2", "AGGREGATE", "MAX"), 1)
	wantText(t, do("ZSCORE", "dst", "a"), "5")
	wantErrPrefix(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2", "WEIGHTS", "1"), "ERR syntax")
	wantErrPrefix(t, do("ZUNIONSTORE", "dst", "2", "z1", "z2", "AGGREGATE", "AVG"), "ERR syntax")
	wantErrPrefix(t, do("ZUNIONSTORE", "dst", "0", "z1"), "ERR at least 1")
}

func TestZInterStore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z1", "1", "a", "2", "b")
	do("ZADD", "z2", "10", "b", "20", "c")
	wantInt(t, do("ZINTERSTORE", "dst", "2", "z1", "z2"), 1)
	wantText(t, do("ZSCORE", "dst", "b"), "12")
	// Empty intersection deletes dst.
	do("ZADD", "z3", "1", "zzz")
	wantInt(t, do("ZINTERSTORE", "dst", "2", "z1", "z3"), 0)
	wantInt(t, do("EXISTS", "dst"), 0)
}

func TestZStoreAcceptsPlainSets(t *testing.T) {
	_, _, do := testEngine(t)
	do("SADD", "s", "a", "b")
	do("ZADD", "z", "5", "b")
	wantInt(t, do("ZUNIONSTORE", "dst", "2", "s", "z"), 2)
	wantText(t, do("ZSCORE", "dst", "a"), "1") // set members score 1
	wantText(t, do("ZSCORE", "dst", "b"), "6")
	do("LPUSH", "l", "x")
	wantErrPrefix(t, do("ZUNIONSTORE", "dst", "2", "s", "l"), "WRONGTYPE")
}

func TestZRangeStore(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "src", "1", "a", "2", "b", "3", "c", "4", "d")
	wantInt(t, do("ZRANGESTORE", "dst", "src", "0", "1"), 2)
	v := do("ZRANGE", "dst", "0", "-1")
	if v.Array[0].Text() != "a" || v.Array[1].Text() != "b" {
		t.Fatalf("dst = %v", v)
	}
	// BYSCORE with LIMIT.
	wantInt(t, do("ZRANGESTORE", "dst", "src", "2", "4", "BYSCORE", "LIMIT", "1", "2"), 2)
	v = do("ZRANGE", "dst", "0", "-1")
	if v.Array[0].Text() != "c" || v.Array[1].Text() != "d" {
		t.Fatalf("byscore dst = %v", v)
	}
	// Empty result deletes dst.
	wantInt(t, do("ZRANGESTORE", "dst", "missing", "0", "-1"), 0)
	wantInt(t, do("EXISTS", "dst"), 0)
	wantErrPrefix(t, do("ZRANGESTORE", "dst", "src", "0", "1", "LIMIT", "0", "1"), "ERR syntax")
}

func TestZDiff(t *testing.T) {
	_, _, do := testEngine(t)
	do("ZADD", "z1", "1", "a", "2", "b", "3", "c")
	do("ZADD", "z2", "9", "b")
	v := do("ZDIFF", "2", "z1", "z2")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "a" || v.Array[1].Text() != "c" {
		t.Fatalf("ZDIFF = %v", v)
	}
	v = do("ZDIFF", "2", "z1", "z2", "WITHSCORES")
	wantArrayLen(t, v, 4)
	wantErrPrefix(t, do("ZDIFF", "9", "z1"), "ERR syntax")
}

func TestZStoreReplicatesMaterializedResult(t *testing.T) {
	p, _, _ := testEngine(t)
	r, _, _ := testEngine(t)
	exec(p, "ZADD", "z1", "1", "a", "2", "b")
	exec(p, "ZADD", "z2", "10", "b")
	res := exec(p, "ZUNIONSTORE", "dst", "2", "z1", "z2", "AGGREGATE", "MAX")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if len(cmds) != 2 || string(cmds[0][0]) != "DEL" || string(cmds[1][0]) != "ZADD" {
		t.Fatalf("effects = %q", cmds)
	}
	// Replica applying only the effects converges (needs no source keys).
	if err := r.Apply(EncodeRecord(res.Effects)); err != nil {
		t.Fatal(err)
	}
	a := exec(p, "ZRANGE", "dst", "0", "-1", "WITHSCORES").Reply
	b := exec(r, "ZRANGE", "dst", "0", "-1", "WITHSCORES").Reply
	if !a.Equal(b) {
		t.Fatalf("diverged: %v vs %v", a, b)
	}
}
