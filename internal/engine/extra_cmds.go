package engine

import (
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

// Second-wave commands: newer Redis 6.2/7.0 additions MemoryDB inherits
// through engine version upgrades (§7.1 motivates tracking them).
func init() {
	register(&Command{Name: "GETEX", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdGetEx, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "TOUCH", Arity: 2, Flags: FlagReadOnly | FlagFast, Handler: cmdTouch, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "EXPIRETIME", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdExpireTime, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PEXPIRETIME", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdPExpireTime, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LPOS", Arity: 3, Flags: FlagReadOnly, Handler: cmdLPos, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LINSERT", Arity: -5, Flags: FlagWrite, Handler: cmdLInsert, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SMISMEMBER", Arity: 3, Flags: FlagReadOnly | FlagFast, Handler: cmdSMIsMember, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SINTERCARD", Arity: 3, Flags: FlagReadOnly, Handler: cmdSInterCard, FirstKey: 2, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "ZMSCORE", Arity: 3, Flags: FlagReadOnly | FlagFast, Handler: cmdZMScore, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "HRANDFIELD", Arity: 2, Flags: FlagReadOnly, Handler: cmdHRandField, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "SETBIT", Arity: -4, Flags: FlagWrite, Handler: cmdSetBit, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "GETBIT", Arity: -3, Flags: FlagReadOnly | FlagFast, Handler: cmdGetBit, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "BITCOUNT", Arity: 2, Flags: FlagReadOnly, Handler: cmdBitCount, FirstKey: 1, LastKey: 1, KeyStep: 1})
}

// cmdGetEx implements GETEX: GET plus optional TTL manipulation. TTL
// mutations replicate as absolute PEXPIREAT / PERSIST effects.
func cmdGetEx(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := e.lookupKind(key, store.KindString)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	now := e.Now()
	if len(argv) > 2 {
		var expireAtMs int64
		persist := false
		i := 2
		switch strings.ToUpper(string(argv[i])) {
		case "PERSIST":
			persist = true
			if len(argv) != 3 {
				return errSyntax()
			}
		case "EX", "PX", "EXAT", "PXAT":
			if len(argv) != 4 {
				return errSyntax()
			}
			n, okN := parseInt(argv[3])
			if !okN {
				return errNotInt()
			}
			var okTTL bool
			switch strings.ToUpper(string(argv[i])) {
			case "EX":
				expireAtMs, okTTL = relativeDeadline(now.UnixMilli(), n, 1000)
			case "PX":
				expireAtMs, okTTL = relativeDeadline(now.UnixMilli(), n, 1)
			case "EXAT":
				expireAtMs, okTTL = n*1000, n <= (1<<62)/1000
			case "PXAT":
				expireAtMs, okTTL = n, true
			}
			if !okTTL {
				return resp.Err("ERR invalid expire time in 'getex' command")
			}
		default:
			return errSyntax()
		}
		if persist {
			if e.db.Persist(key, now) {
				e.touch(key)
				e.propagateStrings("PERSIST", key)
			}
		} else if expireAtMs > 0 {
			e.db.Expire(key, expireAtMs, now)
			e.touch(key)
			if expireAtMs <= now.UnixMilli() {
				e.propagateStrings("DEL", key)
			} else {
				e.propagateStrings("PEXPIREAT", key, strconv.FormatInt(expireAtMs, 10))
			}
		}
	}
	return resp.Bulk(obj.Str)
}

// cmdTouch counts existing keys (cache-warming no-op in our model; Redis
// updates access clocks, which we do not track).
func cmdTouch(e *Engine, argv [][]byte) resp.Value {
	n := int64(0)
	for _, k := range argv[1:] {
		if e.lookup(string(k)) != nil {
			n++
		}
	}
	return resp.Int64(n)
}

func cmdExpireTime(e *Engine, argv [][]byte) resp.Value {
	v := cmdPExpireTime(e, argv)
	if v.Type == resp.Integer && v.Int > 0 {
		return resp.Int64(v.Int / 1000)
	}
	return v
}

func cmdPExpireTime(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	if e.lookup(key) == nil {
		return resp.Int64(-2)
	}
	at, has := e.db.ExpireAt(key)
	if !has {
		return resp.Int64(-1)
	}
	return resp.Int64(at)
}

// cmdLPos implements LPOS key element [RANK r] [COUNT c].
func cmdLPos(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := listAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	rank := int64(1)
	count := int64(-1) // -1: single match mode
	for i := 3; i < len(argv); i += 2 {
		if i+1 >= len(argv) {
			return errSyntax()
		}
		n, okN := parseInt(argv[i+1])
		if !okN {
			return errNotInt()
		}
		switch strings.ToUpper(string(argv[i])) {
		case "RANK":
			if n == 0 {
				return resp.Err("ERR RANK can't be zero")
			}
			rank = n
		case "COUNT":
			if n < 0 {
				return resp.Err("ERR COUNT can't be negative")
			}
			count = n
		default:
			return errSyntax()
		}
	}
	single := count == -1
	if count == 0 {
		count = int64(1 << 30) // all matches
	}
	if single {
		count = 1
	}
	if obj == nil {
		if single {
			return resp.Nil
		}
		return resp.ArrayV()
	}
	target := string(argv[2])
	var positions []int64
	if rank > 0 {
		idx, skip := int64(0), rank-1
		obj.List.Walk(func(v []byte) bool {
			if string(v) == target {
				if skip > 0 {
					skip--
				} else {
					positions = append(positions, idx)
					if int64(len(positions)) >= count {
						return false
					}
				}
			}
			idx++
			return true
		})
	} else {
		// Negative rank: scan from the tail.
		var all []int64
		idx := int64(0)
		obj.List.Walk(func(v []byte) bool {
			if string(v) == target {
				all = append(all, idx)
			}
			idx++
			return true
		})
		skip := -rank - 1
		for i := int64(len(all)) - 1 - skip; i >= 0 && int64(len(positions)) < count; i-- {
			positions = append(positions, all[i])
		}
	}
	if single {
		if len(positions) == 0 {
			return resp.Nil
		}
		return resp.Int64(positions[0])
	}
	out := make([]resp.Value, len(positions))
	for i, p := range positions {
		out[i] = resp.Int64(p)
	}
	return resp.ArrayV(out...)
}

// cmdLInsert implements LINSERT key BEFORE|AFTER pivot element.
func cmdLInsert(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	var before bool
	switch strings.ToUpper(string(argv[2])) {
	case "BEFORE":
		before = true
	case "AFTER":
		before = false
	default:
		return errSyntax()
	}
	obj, errReply, ok := listAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	pivot := string(argv[3])
	// Rebuild via walk (the List API has no mid-insert; LINSERT is rare
	// and O(n) in Redis too).
	rebuilt := store.NewList()
	inserted := false
	obj.List.Walk(func(v []byte) bool {
		if !inserted && string(v) == pivot {
			inserted = true
			if before {
				rebuilt.PushBack(argv[4])
				rebuilt.PushBack(v)
			} else {
				rebuilt.PushBack(v)
				rebuilt.PushBack(argv[4])
			}
			return true
		}
		rebuilt.PushBack(v)
		return true
	})
	if !inserted {
		return resp.Int64(-1)
	}
	obj.List = rebuilt
	e.db.Touch(key)
	e.db.AdjustUsed(int64(len(argv[4])))
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(int64(obj.List.Len()))
}

func cmdSMIsMember(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := setAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	out := make([]resp.Value, 0, len(argv)-2)
	for _, m := range argv[2:] {
		present := int64(0)
		if obj != nil {
			if _, exists := obj.Set[string(m)]; exists {
				present = 1
			}
		}
		out = append(out, resp.Int64(present))
	}
	return resp.ArrayV(out...)
}

// cmdSInterCard implements SINTERCARD numkeys key... [LIMIT n].
func cmdSInterCard(e *Engine, argv [][]byte) resp.Value {
	numKeys, ok := parseInt(argv[1])
	if !ok || numKeys <= 0 {
		return resp.Err("ERR numkeys should be greater than 0")
	}
	// Compare without arithmetic on numKeys: a huge count would overflow
	// 2+numKeys and slip past the bound check.
	if numKeys > int64(len(argv))-2 {
		return resp.Err("ERR Number of keys can't be greater than number of args")
	}
	keys := argv[2 : 2+numKeys]
	limit := int64(-1)
	rest := argv[2+numKeys:]
	if len(rest) == 2 && strings.EqualFold(string(rest[0]), "LIMIT") {
		n, okN := parseInt(rest[1])
		if !okN || n < 0 {
			return resp.Err("ERR LIMIT can't be negative")
		}
		if n > 0 {
			limit = n
		}
	} else if len(rest) != 0 {
		return errSyntax()
	}
	acc, errReply, okOp := setOp(e, keys, 'i')
	if !okOp {
		return errReply
	}
	card := int64(len(acc))
	if limit >= 0 && card > limit {
		card = limit
	}
	return resp.Int64(card)
}

func cmdZMScore(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := zsetAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	out := make([]resp.Value, 0, len(argv)-2)
	for _, m := range argv[2:] {
		if obj == nil {
			out = append(out, resp.Nil)
			continue
		}
		if s, exists := obj.ZSet.Score(string(m)); exists {
			out = append(out, resp.BulkStr(fmtScore(s)))
		} else {
			out = append(out, resp.Nil)
		}
	}
	return resp.ArrayV(out...)
}

// cmdHRandField implements HRANDFIELD key [count [WITHVALUES]].
func cmdHRandField(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := hashAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if len(argv) == 2 {
		if obj == nil {
			return resp.Nil
		}
		fields := sortedHashFields(obj)
		return resp.BulkStr(fields[e.rng.Intn(len(fields))])
	}
	n, okN := parseInt(argv[2])
	if !okN {
		return errNotInt()
	}
	withValues := false
	if len(argv) == 4 {
		if !strings.EqualFold(string(argv[3]), "WITHVALUES") {
			return errSyntax()
		}
		withValues = true
	} else if len(argv) > 4 {
		return errSyntax()
	}
	if obj == nil {
		return resp.ArrayV()
	}
	fields := sortedHashFields(obj)
	var chosen []string
	if n >= 0 {
		if n > int64(len(fields)) {
			n = int64(len(fields))
		}
		for _, i := range e.rng.Perm(len(fields))[:n] {
			chosen = append(chosen, fields[i])
		}
	} else {
		for i := int64(0); i < -n; i++ {
			chosen = append(chosen, fields[e.rng.Intn(len(fields))])
		}
	}
	out := make([]resp.Value, 0, len(chosen)*2)
	for _, f := range chosen {
		out = append(out, resp.BulkStr(f))
		if withValues {
			out = append(out, resp.Bulk(obj.Hash[f]))
		}
	}
	return resp.ArrayV(out...)
}

func sortedHashFields(obj *store.Object) []string {
	fields := make([]string, 0, len(obj.Hash))
	for f := range obj.Hash {
		fields = append(fields, f)
	}
	// Sorted for determinism of tests that seed the engine RNG.
	sortStrings(fields)
	return fields
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// cmdSetBit implements SETBIT key offset 0|1.
func cmdSetBit(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	off, ok := parseInt(argv[2])
	if !ok || off < 0 || off >= 4<<30 {
		return resp.Err("ERR bit offset is not an integer or out of range")
	}
	bit, ok := parseInt(argv[3])
	if !ok || (bit != 0 && bit != 1) {
		return resp.Err("ERR bit is not an integer or out of range")
	}
	obj, errReply, okK := e.lookupKind(key, store.KindString)
	if !okK {
		return errReply
	}
	var cur []byte
	if obj != nil {
		cur = obj.Str
	}
	byteIdx := int(off / 8)
	if byteIdx >= len(cur) {
		grown := make([]byte, byteIdx+1)
		copy(grown, cur)
		cur = grown
	}
	mask := byte(1) << (7 - uint(off%8))
	old := int64(0)
	if cur[byteIdx]&mask != 0 {
		old = 1
	}
	if bit == 1 {
		cur[byteIdx] |= mask
	} else {
		cur[byteIdx] &^= mask
	}
	if obj != nil {
		e.db.AdjustUsed(int64(len(cur) - len(obj.Str)))
		obj.Str = cur
		e.db.Touch(key)
	} else {
		e.db.Set(key, strObject(cur))
	}
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(old)
}

func cmdGetBit(e *Engine, argv [][]byte) resp.Value {
	off, ok := parseInt(argv[2])
	if !ok || off < 0 {
		return resp.Err("ERR bit offset is not an integer or out of range")
	}
	obj, errReply, okK := e.lookupKind(string(argv[1]), store.KindString)
	if !okK {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	byteIdx := int(off / 8)
	if byteIdx >= len(obj.Str) {
		return resp.Int64(0)
	}
	if obj.Str[byteIdx]&(1<<(7-uint(off%8))) != 0 {
		return resp.Int64(1)
	}
	return resp.Int64(0)
}

// cmdBitCount implements BITCOUNT key [start end] (byte ranges only).
func cmdBitCount(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, okK := e.lookupKind(string(argv[1]), store.KindString)
	if !okK {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	data := obj.Str
	if len(argv) == 4 {
		start, ok1 := parseInt(argv[2])
		end, ok2 := parseInt(argv[3])
		if !ok1 || !ok2 {
			return errNotInt()
		}
		n := int64(len(data))
		if start < 0 {
			start += n
		}
		if end < 0 {
			end += n
		}
		if start < 0 {
			start = 0
		}
		if end >= n {
			end = n - 1
		}
		if start > end || n == 0 {
			return resp.Int64(0)
		}
		data = data[start : end+1]
	} else if len(argv) != 2 {
		return errSyntax()
	}
	count := int64(0)
	for _, b := range data {
		for b != 0 {
			count += int64(b & 1)
			b >>= 1
		}
	}
	return resp.Int64(count)
}
