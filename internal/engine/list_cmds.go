package engine

import (
	"strconv"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "LPUSH", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdLPush, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "RPUSH", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdRPush, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LPUSHX", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdLPushX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "RPUSHX", Arity: 3, Flags: FlagWrite | FlagFast, Handler: cmdRPushX, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LPOP", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdLPop, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "RPOP", Arity: 2, Flags: FlagWrite | FlagFast, Handler: cmdRPop, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "RPOPLPUSH", Arity: -3, Flags: FlagWrite, Handler: cmdRPopLPush, FirstKey: 1, LastKey: 2, KeyStep: 1})
	register(&Command{Name: "LLEN", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdLLen, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LRANGE", Arity: -4, Flags: FlagReadOnly, Handler: cmdLRange, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LINDEX", Arity: -3, Flags: FlagReadOnly, Handler: cmdLIndex, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LSET", Arity: -4, Flags: FlagWrite, Handler: cmdLSet, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LREM", Arity: -4, Flags: FlagWrite, Handler: cmdLRem, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "LTRIM", Arity: -4, Flags: FlagWrite, Handler: cmdLTrim, FirstKey: 1, LastKey: 1, KeyStep: 1})
}

func listAt(e *Engine, key string, create bool) (*store.Object, resp.Value, bool) {
	obj, errReply, ok := e.lookupKind(key, store.KindList)
	if !ok {
		return nil, errReply, false
	}
	if obj == nil && create {
		obj = &store.Object{Kind: store.KindList, List: store.NewList()}
		e.db.Set(key, obj)
	}
	return obj, resp.Value{}, true
}

func pushGeneric(e *Engine, argv [][]byte, front, mustExist bool) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := listAt(e, key, !mustExist)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	for _, v := range argv[2:] {
		if front {
			obj.List.PushFront(v)
		} else {
			obj.List.PushBack(v)
		}
		e.db.AdjustUsed(int64(len(v)))
	}
	e.db.Touch(key)
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(int64(obj.List.Len()))
}

func cmdLPush(e *Engine, argv [][]byte) resp.Value  { return pushGeneric(e, argv, true, false) }
func cmdRPush(e *Engine, argv [][]byte) resp.Value  { return pushGeneric(e, argv, false, false) }
func cmdLPushX(e *Engine, argv [][]byte) resp.Value { return pushGeneric(e, argv, true, true) }
func cmdRPushX(e *Engine, argv [][]byte) resp.Value { return pushGeneric(e, argv, false, true) }

func popGeneric(e *Engine, argv [][]byte, front bool) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := listAt(e, key, false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Nil
	}
	count := 1
	withCount := len(argv) == 3
	if withCount {
		n, ok := parseInt(argv[2])
		if !ok || n < 0 {
			return errNotInt()
		}
		count = int(n)
	} else if len(argv) > 3 {
		return wrongArity(string(argv[0]))
	}
	var popped [][]byte
	for i := 0; i < count; i++ {
		var v []byte
		var got bool
		if front {
			v, got = obj.List.PopFront()
		} else {
			v, got = obj.List.PopBack()
		}
		if !got {
			break
		}
		popped = append(popped, v)
		e.db.AdjustUsed(-int64(len(v)))
	}
	if len(popped) > 0 {
		if obj.List.Len() == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		// Deterministic: replicate the pop with the exact count performed.
		name := "RPOP"
		if front {
			name = "LPOP"
		}
		e.propagateStrings(name, key, strconv.Itoa(len(popped)))
	}
	if !withCount {
		if len(popped) == 0 {
			return resp.Nil
		}
		return resp.Bulk(popped[0])
	}
	if len(popped) == 0 {
		return resp.NullArray()
	}
	out := make([]resp.Value, len(popped))
	for i, v := range popped {
		out[i] = resp.Bulk(v)
	}
	return resp.ArrayV(out...)
}

func cmdLPop(e *Engine, argv [][]byte) resp.Value { return popGeneric(e, argv, true) }
func cmdRPop(e *Engine, argv [][]byte) resp.Value { return popGeneric(e, argv, false) }

func cmdRPopLPush(e *Engine, argv [][]byte) resp.Value {
	src, dst := string(argv[1]), string(argv[2])
	srcObj, errReply, ok := listAt(e, src, false)
	if !ok {
		return errReply
	}
	if srcObj == nil {
		return resp.Nil
	}
	dstObj, errReply, ok := listAt(e, dst, true)
	if !ok {
		return errReply
	}
	v, got := srcObj.List.PopBack()
	if !got {
		return resp.Nil
	}
	if src == dst {
		dstObj = srcObj
	}
	dstObj.List.PushFront(v)
	if srcObj.List.Len() == 0 && src != dst {
		e.db.Delete(src, e.Now())
	}
	e.db.Touch(src)
	e.touch(src)
	e.touch(dst)
	e.propagateVerbatim(argv)
	return resp.Bulk(v)
}

func cmdLLen(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := listAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	if obj == nil {
		return resp.Int64(0)
	}
	return resp.Int64(int64(obj.List.Len()))
}

func cmdLRange(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := listAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	start, ok1 := parseInt(argv[2])
	stop, ok2 := parseInt(argv[3])
	if !ok1 || !ok2 {
		return errNotInt()
	}
	if obj == nil {
		return resp.ArrayV()
	}
	vals := obj.List.Range(int(start), int(stop))
	out := make([]resp.Value, len(vals))
	for i, v := range vals {
		out[i] = resp.Bulk(v)
	}
	return resp.ArrayV(out...)
}

func cmdLIndex(e *Engine, argv [][]byte) resp.Value {
	obj, errReply, ok := listAt(e, string(argv[1]), false)
	if !ok {
		return errReply
	}
	idx, okN := parseInt(argv[2])
	if !okN {
		return errNotInt()
	}
	if obj == nil {
		return resp.Nil
	}
	v, got := obj.List.Index(int(idx))
	if !got {
		return resp.Nil
	}
	return resp.Bulk(v)
}

func cmdLSet(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := listAt(e, key, false)
	if !ok {
		return errReply
	}
	idx, okN := parseInt(argv[2])
	if !okN {
		return errNotInt()
	}
	if obj == nil {
		return resp.Err("ERR no such key")
	}
	if !obj.List.SetIndex(int(idx), argv[3]) {
		return resp.Err("ERR index out of range")
	}
	e.db.Touch(key)
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.OK
}

func cmdLRem(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := listAt(e, key, false)
	if !ok {
		return errReply
	}
	count, okN := parseInt(argv[2])
	if !okN {
		return errNotInt()
	}
	if obj == nil {
		return resp.Int64(0)
	}
	n := obj.List.Remove(int(count), argv[3])
	if n > 0 {
		if obj.List.Len() == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.Int64(int64(n))
}

func cmdLTrim(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	obj, errReply, ok := listAt(e, key, false)
	if !ok {
		return errReply
	}
	start, ok1 := parseInt(argv[2])
	stop, ok2 := parseInt(argv[3])
	if !ok1 || !ok2 {
		return errNotInt()
	}
	if obj == nil {
		return resp.OK
	}
	if obj.List.Trim(int(start), int(stop)) > 0 {
		if obj.List.Len() == 0 {
			e.db.Delete(key, e.Now())
		}
		e.db.Touch(key)
		e.touch(key)
		e.propagateVerbatim(argv)
	}
	return resp.OK
}
