package engine

import (
	"sort"
	"strconv"
	"strings"

	"memorydb/internal/resp"
	"memorydb/internal/store"
)

func init() {
	register(&Command{Name: "DEL", Arity: 2, Flags: FlagWrite, Handler: cmdDel, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "UNLINK", Arity: 2, Flags: FlagWrite, Handler: cmdDel, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "EXISTS", Arity: 2, Flags: FlagReadOnly | FlagFast, Handler: cmdExists, FirstKey: 1, LastKey: -1, KeyStep: 1})
	register(&Command{Name: "TYPE", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdType, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "EXPIRE", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdExpire, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PEXPIRE", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdPExpire, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "EXPIREAT", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdExpireAt, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PEXPIREAT", Arity: -3, Flags: FlagWrite | FlagFast, Handler: cmdPExpireAt, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PERSIST", Arity: -2, Flags: FlagWrite | FlagFast, Handler: cmdPersist, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "TTL", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdTTL, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "PTTL", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdPTTL, FirstKey: 1, LastKey: 1, KeyStep: 1})
	register(&Command{Name: "KEYS", Arity: -2, Flags: FlagReadOnly, Handler: cmdKeys})
	register(&Command{Name: "SCAN", Arity: 2, Flags: FlagReadOnly, Handler: cmdScan})
	register(&Command{Name: "DBSIZE", Arity: -1, Flags: FlagReadOnly | FlagFast, Handler: cmdDBSize})
	register(&Command{Name: "FLUSHALL", Arity: 1, Flags: FlagWrite, Handler: cmdFlushAll})
	register(&Command{Name: "FLUSHDB", Arity: 1, Flags: FlagWrite, Handler: cmdFlushAll})
	register(&Command{Name: "RANDOMKEY", Arity: -1, Flags: FlagReadOnly, Handler: cmdRandomKey})
	register(&Command{Name: "RENAME", Arity: -3, Flags: FlagWrite, Handler: cmdRename, FirstKey: 1, LastKey: 2, KeyStep: 1})
	register(&Command{Name: "RENAMENX", Arity: -3, Flags: FlagWrite, Handler: cmdRenameNX, FirstKey: 1, LastKey: 2, KeyStep: 1})
	register(&Command{Name: "PING", Arity: 1, Flags: FlagReadOnly | FlagFast, Handler: cmdPing})
	register(&Command{Name: "ECHO", Arity: -2, Flags: FlagReadOnly | FlagFast, Handler: cmdEcho})
	register(&Command{Name: "TIME", Arity: -1, Flags: FlagReadOnly | FlagFast, Handler: cmdTime})
	register(&Command{Name: "COMMAND", Arity: 1, Flags: FlagReadOnly, Handler: cmdCommand})
}

func cmdDel(e *Engine, argv [][]byte) resp.Value {
	n := int64(0)
	now := e.Now()
	for _, k := range argv[1:] {
		key := string(k)
		if e.db.Delete(key, now) {
			n++
			e.touch(key)
			e.propagateStrings("DEL", key)
		}
	}
	return resp.Int64(n)
}

func cmdExists(e *Engine, argv [][]byte) resp.Value {
	n := int64(0)
	for _, k := range argv[1:] {
		if e.lookup(string(k)) != nil {
			n++
		}
	}
	return resp.Int64(n)
}

func cmdType(e *Engine, argv [][]byte) resp.Value {
	obj := e.lookup(string(argv[1]))
	if obj == nil {
		return resp.Simple("none")
	}
	return resp.Simple(obj.Kind.String())
}

func cmdExpire(e *Engine, argv [][]byte) resp.Value {
	return expireGeneric(e, argv, 1000, true)
}

func cmdPExpire(e *Engine, argv [][]byte) resp.Value {
	return expireGeneric(e, argv, 1, true)
}

func cmdExpireAt(e *Engine, argv [][]byte) resp.Value {
	return expireGeneric(e, argv, 1000, false)
}

func cmdPExpireAt(e *Engine, argv [][]byte) resp.Value {
	return expireGeneric(e, argv, 1, false)
}

// expireGeneric implements the EXPIRE family. Relative forms replicate as
// PEXPIREAT with the absolute deadline so every consumer of the
// replication stream applies an identical expiry (§2.1).
func expireGeneric(e *Engine, argv [][]byte, unitMs int64, relative bool) resp.Value {
	key := string(argv[1])
	n, ok := parseInt(argv[2])
	if !ok {
		return errNotInt()
	}
	now := e.Now()
	var at int64
	if relative {
		var okTTL bool
		at, okTTL = relativeDeadline(now.UnixMilli(), n, unitMs)
		if !okTTL {
			return resp.Errf("ERR invalid expire time in '%s' command", strings.ToLower(string(argv[0])))
		}
	} else {
		if unitMs == 1000 && n > (1<<62)/1000 {
			return resp.Errf("ERR invalid expire time in '%s' command", strings.ToLower(string(argv[0])))
		}
		at = n * unitMs
	}
	if !e.db.Expire(key, at, now) {
		return resp.Int64(0)
	}
	e.touch(key)
	if at <= now.UnixMilli() {
		e.propagateStrings("DEL", key)
	} else {
		e.propagateStrings("PEXPIREAT", key, strconv.FormatInt(at, 10))
	}
	return resp.Int64(1)
}

func cmdPersist(e *Engine, argv [][]byte) resp.Value {
	key := string(argv[1])
	if !e.db.Persist(key, e.Now()) {
		return resp.Int64(0)
	}
	e.touch(key)
	e.propagateVerbatim(argv)
	return resp.Int64(1)
}

func cmdTTL(e *Engine, argv [][]byte) resp.Value {
	d, hasTTL, ok := e.db.TTL(string(argv[1]), e.Now())
	if !ok {
		return resp.Int64(-2)
	}
	if !hasTTL {
		return resp.Int64(-1)
	}
	return resp.Int64(int64((d + 500e6) / 1e9)) // round to seconds
}

func cmdPTTL(e *Engine, argv [][]byte) resp.Value {
	d, hasTTL, ok := e.db.TTL(string(argv[1]), e.Now())
	if !ok {
		return resp.Int64(-2)
	}
	if !hasTTL {
		return resp.Int64(-1)
	}
	return resp.Int64(int64(d / 1e6))
}

func cmdKeys(e *Engine, argv [][]byte) resp.Value {
	keys := e.db.Keys(string(argv[1]), e.Now())
	sort.Strings(keys)
	return resp.BulkArray(keys...)
}

// cmdScan implements a simplified SCAN: the cursor is an index into the
// sorted key list. Unlike Redis's reverse-binary cursor it is O(n log n)
// per call, but it provides the same guarantee clients rely on (every key
// present for the whole iteration is returned at least once).
func cmdScan(e *Engine, argv [][]byte) resp.Value {
	cursor, ok := parseInt(argv[1])
	if !ok || cursor < 0 {
		return resp.Err("ERR invalid cursor")
	}
	pattern := "*"
	count := int64(10)
	for i := 2; i < len(argv); i++ {
		switch strings.ToUpper(string(argv[i])) {
		case "MATCH":
			if i+1 >= len(argv) {
				return errSyntax()
			}
			pattern = string(argv[i+1])
			i++
		case "COUNT":
			if i+1 >= len(argv) {
				return errSyntax()
			}
			n, ok := parseInt(argv[i+1])
			if !ok || n <= 0 {
				return errSyntax()
			}
			count = n
			i++
		default:
			return errSyntax()
		}
	}
	keys := e.db.Keys("*", e.Now())
	sort.Strings(keys)
	var batch []string
	i := cursor
	for ; i < int64(len(keys)) && int64(len(batch)) < count; i++ {
		// Pattern filtering happens after pagination, like Redis: COUNT
		// bounds work examined, not results returned.
		if pattern == "*" || matchScan(pattern, keys[i]) {
			batch = append(batch, keys[i])
		}
	}
	next := "0"
	if i < int64(len(keys)) {
		next = strconv.FormatInt(i, 10)
	}
	return resp.ArrayV(resp.BulkStr(next), resp.BulkArray(batch...))
}

func matchScan(pattern, key string) bool {
	return store.GlobMatch(pattern, key)
}

func cmdDBSize(e *Engine, argv [][]byte) resp.Value {
	// Sweep lazily so the count reflects live keys.
	return resp.Int64(int64(len(e.db.Keys("*", e.Now()))))
}

func cmdFlushAll(e *Engine, argv [][]byte) resp.Value {
	e.db.Flush()
	e.propagateStrings("FLUSHALL")
	return resp.OK
}

func cmdRandomKey(e *Engine, argv [][]byte) resp.Value {
	k, ok := e.db.RandomKey(e.Now())
	if !ok {
		return resp.Nil
	}
	return resp.BulkStr(k)
}

func cmdRename(e *Engine, argv [][]byte) resp.Value {
	return renameGeneric(e, argv, false)
}

func cmdRenameNX(e *Engine, argv [][]byte) resp.Value {
	return renameGeneric(e, argv, true)
}

func renameGeneric(e *Engine, argv [][]byte, nx bool) resp.Value {
	src, dst := string(argv[1]), string(argv[2])
	obj := e.lookup(src)
	if obj == nil {
		return resp.Err("ERR no such key")
	}
	if nx && e.lookup(dst) != nil {
		return resp.Int64(0)
	}
	exp, hadTTL := e.db.ExpireAt(src)
	now := e.Now()
	e.db.Delete(src, now)
	e.db.Set(dst, obj)
	if hadTTL {
		e.db.Expire(dst, exp, now)
	}
	e.touch(src)
	e.touch(dst)
	e.propagateVerbatim(argv)
	if nx {
		return resp.Int64(1)
	}
	return resp.OK
}

func cmdPing(e *Engine, argv [][]byte) resp.Value { return resp.Pong }

func cmdEcho(e *Engine, argv [][]byte) resp.Value { return resp.Bulk(argv[1]) }

func cmdTime(e *Engine, argv [][]byte) resp.Value {
	now := e.Now()
	return resp.BulkArray(
		strconv.FormatInt(now.Unix(), 10),
		strconv.FormatInt(int64(now.Nanosecond())/1000, 10),
	)
}

// cmdCommand returns the command table in a trimmed-down COMMAND format:
// name, arity, flags. The consistency testing framework parses this to
// generate command coverage (§7.2.2.2).
func cmdCommand(e *Engine, argv [][]byte) resp.Value {
	names := CommandNames()
	out := make([]resp.Value, 0, len(names))
	for _, n := range names {
		c := commandTable[n]
		flags := []resp.Value{}
		if c.Writes() {
			flags = append(flags, resp.Simple("write"))
		} else {
			flags = append(flags, resp.Simple("readonly"))
		}
		if c.Flags&FlagFast != 0 {
			flags = append(flags, resp.Simple("fast"))
		}
		out = append(out, resp.ArrayV(
			resp.BulkStr(strings.ToLower(n)),
			resp.Int64(int64(c.Arity)),
			resp.ArrayV(flags...),
			resp.Int64(int64(c.FirstKey)),
			resp.Int64(int64(c.LastKey)),
			resp.Int64(int64(c.KeyStep)),
		))
	}
	return resp.ArrayV(out...)
}
