package engine

import "testing"

func TestPushPopBasics(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("RPUSH", "l", "a", "b", "c"), 3)
	wantInt(t, do("LPUSH", "l", "z"), 4)
	wantText(t, do("LPOP", "l"), "z")
	wantText(t, do("RPOP", "l"), "c")
	wantInt(t, do("LLEN", "l"), 2)
	wantNil(t, do("LPOP", "missing"))
	wantNil(t, do("RPOP", "missing"))
}

func TestPushXRequiresExisting(t *testing.T) {
	_, _, do := testEngine(t)
	wantInt(t, do("LPUSHX", "l", "x"), 0)
	wantInt(t, do("RPUSHX", "l", "x"), 0)
	do("RPUSH", "l", "a")
	wantInt(t, do("LPUSHX", "l", "x"), 2)
	wantInt(t, do("RPUSHX", "l", "y"), 3)
}

func TestPopWithCount(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "a", "b", "c", "d")
	v := do("LPOP", "l", "2")
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "a" || v.Array[1].Text() != "b" {
		t.Fatalf("LPOP count = %v", v)
	}
	v = do("RPOP", "l", "5") // more than present
	wantArrayLen(t, v, 2)
	if v.Array[0].Text() != "d" {
		t.Fatalf("RPOP count = %v", v)
	}
	wantInt(t, do("EXISTS", "l"), 0) // drained list vanishes
	// Popping 0 returns an empty result without touching the key.
	do("RPUSH", "l2", "a")
	wantArrayLen(t, do("LPOP", "l2", "0"), 0)
}

func TestPopReplicatesExactCount(t *testing.T) {
	e, _, do := testEngine(t)
	do("RPUSH", "l", "a", "b", "c")
	res := exec(e, "LPOP", "l", "5")
	cmds, _ := DecodeRecord(EncodeRecord(res.Effects))
	if string(cmds[0][0]) != "LPOP" || string(cmds[0][2]) != "3" {
		t.Fatalf("LPOP effect = %q", cmds[0])
	}
}

func TestRPopLPush(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "src", "a", "b", "c")
	wantText(t, do("RPOPLPUSH", "src", "dst"), "c")
	wantText(t, do("RPOPLPUSH", "src", "dst"), "b")
	v := do("LRANGE", "dst", "0", "-1")
	if v.Array[0].Text() != "b" || v.Array[1].Text() != "c" {
		t.Fatalf("dst = %v", v)
	}
	wantNil(t, do("RPOPLPUSH", "missing", "dst"))
	// Rotation: src == dst.
	do("RPUSH", "ring", "1", "2", "3")
	wantText(t, do("RPOPLPUSH", "ring", "ring"), "3")
	v = do("LRANGE", "ring", "0", "-1")
	if v.Array[0].Text() != "3" || v.Array[2].Text() != "2" {
		t.Fatalf("rotated ring = %v", v)
	}
}

func TestLRangeLIndexLSet(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "a", "b", "c", "d")
	v := do("LRANGE", "l", "1", "2")
	wantArrayLen(t, v, 2)
	wantArrayLen(t, do("LRANGE", "l", "0", "-1"), 4)
	wantArrayLen(t, do("LRANGE", "missing", "0", "-1"), 0)
	wantText(t, do("LINDEX", "l", "0"), "a")
	wantText(t, do("LINDEX", "l", "-1"), "d")
	wantNil(t, do("LINDEX", "l", "99"))
	wantText(t, do("LSET", "l", "1", "B"), "OK")
	wantText(t, do("LINDEX", "l", "1"), "B")
	wantErrPrefix(t, do("LSET", "l", "99", "x"), "ERR index out of range")
	wantErrPrefix(t, do("LSET", "missing", "0", "x"), "ERR no such key")
}

func TestLRem(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "x", "a", "x", "b", "x")
	wantInt(t, do("LREM", "l", "2", "x"), 2)
	wantInt(t, do("LREM", "l", "0", "x"), 1)
	wantInt(t, do("LREM", "missing", "0", "x"), 0)
}

func TestLTrim(t *testing.T) {
	_, _, do := testEngine(t)
	do("RPUSH", "l", "a", "b", "c", "d", "e")
	wantText(t, do("LTRIM", "l", "1", "3"), "OK")
	v := do("LRANGE", "l", "0", "-1")
	wantArrayLen(t, v, 3)
	if v.Array[0].Text() != "b" {
		t.Fatalf("after trim = %v", v)
	}
	// Trim to nothing deletes the key.
	do("LTRIM", "l", "5", "10")
	wantInt(t, do("EXISTS", "l"), 0)
}
