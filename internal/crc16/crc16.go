// Package crc16 implements the CRC16-CCITT (XModem) checksum Redis uses to
// map keys onto its 16384 hash slots, including hash-tag extraction so that
// multi-key operations can be pinned to one slot.
package crc16

// NumSlots is the fixed size of the Redis cluster key space.
const NumSlots = 16384

var table [256]uint16

func init() {
	// polynomial 0x1021 (CRC-CCITT / XModem), as used by Redis cluster.
	const poly = 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for j := 0; j < 8; j++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		table[i] = crc
	}
}

// Checksum returns the CRC16-XModem checksum of data.
func Checksum(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = crc<<8 ^ table[byte(crc>>8)^b]
	}
	return crc
}

// Slot returns the hash slot for key, honouring Redis hash tags: if the key
// contains a "{...}" section with a non-empty interior, only that interior
// is hashed, letting callers co-locate related keys.
func Slot(key string) uint16 {
	if tag, ok := hashTag(key); ok {
		key = tag
	}
	return Checksum([]byte(key)) % NumSlots
}

// hashTag extracts the first {...} segment of key. Redis semantics: only
// the first '{' counts, and the tag must be non-empty.
func hashTag(key string) (string, bool) {
	for i := 0; i < len(key); i++ {
		if key[i] != '{' {
			continue
		}
		for j := i + 1; j < len(key); j++ {
			if key[j] == '}' {
				if j == i+1 {
					return "", false // "{}" — empty tag, hash the whole key
				}
				return key[i+1 : j], true
			}
		}
		return "", false // unterminated '{'
	}
	return "", false
}
