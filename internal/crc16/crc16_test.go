package crc16

import (
	"testing"
	"testing/quick"
)

// Reference values from the Redis cluster specification.
func TestChecksumKnownVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint16
	}{
		{"", 0x0000},
		{"123456789", 0x31C3}, // canonical XModem check value
	}
	for _, c := range cases {
		if got := Checksum([]byte(c.in)); got != c.want {
			t.Errorf("Checksum(%q) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestSlotKnownVectors(t *testing.T) {
	// "foo" is slot 12182 in Redis cluster; "bar" is 5061.
	cases := []struct {
		key  string
		want uint16
	}{
		{"foo", 12182},
		{"bar", 5061},
	}
	for _, c := range cases {
		if got := Slot(c.key); got != c.want {
			t.Errorf("Slot(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestSlotInRange(t *testing.T) {
	f := func(key string) bool { return Slot(key) < NumSlots }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashTagRouting(t *testing.T) {
	// Keys sharing a tag land in the same slot.
	if Slot("{user1000}.following") != Slot("{user1000}.followers") {
		t.Fatal("hash-tagged keys must share a slot")
	}
	if Slot("{user1000}.following") != Slot("user1000") {
		t.Fatal("tag must hash like the bare tag content")
	}
}

func TestHashTagEdgeCases(t *testing.T) {
	// Empty tag "{}" hashes the whole key.
	if Slot("foo{}bar") != Checksum([]byte("foo{}bar"))%NumSlots {
		t.Fatal("empty tag must hash the whole key")
	}
	// Unterminated '{' hashes the whole key.
	if Slot("foo{bar") != Checksum([]byte("foo{bar"))%NumSlots {
		t.Fatal("unterminated tag must hash the whole key")
	}
	// Only the first tag counts.
	if Slot("{a}{b}") != Slot("a") {
		t.Fatal("first tag wins")
	}
	// Nested braces: first '}' closes.
	if Slot("{a{b}c}") != Slot("a{b") {
		t.Fatal("first closing brace terminates the tag")
	}
}

func TestChecksumDiffersForDifferentInputs(t *testing.T) {
	if Checksum([]byte("abc")) == Checksum([]byte("abd")) {
		t.Fatal("adjacent inputs should differ (sanity)")
	}
}
