// Package tracker implements MemoryDB's client-blocking layer (paper
// §3.2). Because MemoryDB uses write-behind logging, a mutation executes
// on the primary before it is durable; its reply is stored here until the
// transaction log acknowledges persistence. Non-mutating operations run
// immediately but must consult the tracker: if a key they read was
// modified by a not-yet-persisted operation, their reply is delayed until
// every covering log write commits. Hazards are detected at the key level.
package tracker

import (
	"sync"
)

// Tracker gates replies on transaction log commit progress. It is safe
// for concurrent use: the engine workloop registers writes and reads, and
// log-append completion goroutines report commits.
type Tracker struct {
	mu sync.Mutex
	// hazards maps key -> highest pending log seq that mutated it.
	hazards map[string]uint64
	// pending holds gated replies in ascending seq order (seqs are
	// assigned monotonically by the log, so appends keep it sorted).
	pending []gated
	// committed is the durable watermark: every seq <= committed has been
	// acknowledged by the log.
	committed uint64
	aborted   bool
}

type gated struct {
	seq     uint64
	deliver func(aborted bool)
}

// New returns an empty tracker with the durable watermark at start
// (usually the log's committed tail when the node became primary).
func New(start uint64) *Tracker {
	return &Tracker{hazards: make(map[string]uint64), committed: start}
}

// RegisterWrite records that the mutation covered by log seq touched keys,
// and gates its reply until seq commits. deliver is invoked exactly once —
// immediately if seq is somehow already durable, else on Commit or Abort
// (aborted=true means the write never became durable and the client must
// see an error, not the buffered reply).
func (t *Tracker) RegisterWrite(seq uint64, keys []string, deliver func(aborted bool)) {
	t.mu.Lock()
	if t.aborted {
		t.mu.Unlock()
		deliver(true)
		return
	}
	for _, k := range keys {
		if cur, ok := t.hazards[k]; !ok || cur < seq {
			t.hazards[k] = seq
		}
	}
	if seq <= t.committed {
		t.mu.Unlock()
		deliver(false)
		return
	}
	t.insertLocked(gated{seq: seq, deliver: deliver})
	t.mu.Unlock()
}

// GateRead delivers a read reply as soon as every key it observed is
// durable: immediately when none of keys carries a pending hazard,
// otherwise once the highest covering seq commits.
func (t *Tracker) GateRead(keys []string, deliver func(aborted bool)) {
	t.mu.Lock()
	if t.aborted {
		t.mu.Unlock()
		deliver(true)
		return
	}
	var maxSeq uint64
	for _, k := range keys {
		if seq, ok := t.hazards[k]; ok {
			if seq <= t.committed {
				delete(t.hazards, k) // lazily clear stale hazards
				continue
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	if maxSeq == 0 {
		t.mu.Unlock()
		deliver(false)
		return
	}
	t.insertLocked(gated{seq: maxSeq, deliver: deliver})
	t.mu.Unlock()
}

// insertLocked keeps pending sorted by seq. Appends are the common case;
// reads gated at an older seq need an insertion scan from the tail.
func (t *Tracker) insertLocked(g gated) {
	i := len(t.pending)
	for i > 0 && t.pending[i-1].seq > g.seq {
		i--
	}
	t.pending = append(t.pending, gated{})
	copy(t.pending[i+1:], t.pending[i:])
	t.pending[i] = g
}

// Commit advances the durable watermark to seq (the log commits in order,
// so acknowledgement of seq implies everything below it) and delivers all
// replies gated at or below it.
func (t *Tracker) Commit(seq uint64) {
	t.mu.Lock()
	if seq <= t.committed || t.aborted {
		t.mu.Unlock()
		return
	}
	t.committed = seq
	var release []gated
	i := 0
	for ; i < len(t.pending) && t.pending[i].seq <= seq; i++ {
		release = append(release, t.pending[i])
	}
	t.pending = t.pending[i:]
	// Opportunistically shed stale hazards to bound the map.
	if len(t.hazards) > 1024 {
		for k, s := range t.hazards {
			if s <= t.committed {
				delete(t.hazards, k)
			}
		}
	}
	t.mu.Unlock()
	for _, g := range release {
		g.deliver(false)
	}
}

// Abort fails every gated reply: the node lost the ability to commit
// (partition, demotion) so unacknowledged writes must not be exposed.
// Subsequent registrations also deliver aborted until the tracker is
// replaced (a demoted node resynchronizes with fresh state).
func (t *Tracker) Abort() {
	t.mu.Lock()
	if t.aborted {
		t.mu.Unlock()
		return
	}
	t.aborted = true
	release := t.pending
	t.pending = nil
	t.hazards = make(map[string]uint64)
	t.mu.Unlock()
	for _, g := range release {
		g.deliver(true)
	}
}

// Committed returns the durable watermark.
func (t *Tracker) Committed() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

// PendingCount returns the number of gated replies (metrics/tests).
func (t *Tracker) PendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}
