package tracker

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateReadDeliveredAfterCoveringWrite pins the delivery ordering
// contract: a read gated behind a pending write on the same key is
// released by the covering Commit, and only after the write's own reply
// was delivered (pending is seq-sorted with insertion order stable for
// equal seqs, and writes register before reads can observe them).
func TestGateReadDeliveredAfterCoveringWrite(t *testing.T) {
	tr := New(0)
	var mu sync.Mutex
	var order []string
	record := func(tag string) func(bool) {
		return func(aborted bool) {
			mu.Lock()
			order = append(order, tag)
			if aborted {
				order = append(order, tag+"-aborted")
			}
			mu.Unlock()
		}
	}
	tr.RegisterWrite(5, []string{"k"}, record("write5"))
	tr.GateRead([]string{"k"}, record("read@5"))
	tr.GateRead([]string{"other"}, record("read-clean")) // no hazard: immediate
	mu.Lock()
	if len(order) != 1 || order[0] != "read-clean" {
		t.Fatalf("before commit, order = %v, want [read-clean]", order)
	}
	mu.Unlock()

	tr.Commit(4) // below the hazard: nothing releases
	mu.Lock()
	if len(order) != 1 {
		t.Fatalf("commit below hazard released replies: %v", order)
	}
	mu.Unlock()

	tr.Commit(5)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[1] != "write5" || order[2] != "read@5" {
		t.Fatalf("after commit, order = %v, want [read-clean write5 read@5]", order)
	}
}

// TestGateReadConcurrentCommitExactlyOnce hammers GateRead from many
// goroutines while a committer advances the watermark, verifying (under
// -race) that every reply is delivered exactly once and never aborted.
func TestGateReadConcurrentCommitExactlyOnce(t *testing.T) {
	const (
		writes  = 200
		readers = 8
		reads   = 200
	)
	tr := New(0)
	writeDelivered := make([]atomic.Int32, writes+1)
	var readDelivered atomic.Int64
	var wrongOrder atomic.Int64

	var wg sync.WaitGroup
	// Writer registers ascending hazards on a shared key.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); seq <= writes; seq++ {
			seq := seq
			tr.RegisterWrite(seq, []string{"hot"}, func(aborted bool) {
				if aborted {
					t.Error("write delivery aborted in commit-only test")
				}
				writeDelivered[seq].Add(1)
				// Ordering: by delivery time the watermark covers us.
				if tr.Committed() < seq {
					wrongOrder.Add(1)
				}
			})
		}
	}()
	// Readers gate on the hot key concurrently.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				done := make(chan struct{})
				tr.GateRead([]string{"hot"}, func(aborted bool) {
					if aborted {
						t.Error("read delivery aborted in commit-only test")
					}
					readDelivered.Add(1)
					close(done)
				})
				<-done
			}
		}()
	}
	// Committer drives the watermark up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(1); seq <= writes; seq++ {
			tr.Commit(seq)
		}
	}()
	wg.Wait()
	tr.Commit(writes) // idempotent; everything at or below is released

	for seq := 1; seq <= writes; seq++ {
		if got := writeDelivered[seq].Load(); got != 1 {
			t.Fatalf("write %d delivered %d times", seq, got)
		}
	}
	if got := readDelivered.Load(); got != readers*reads {
		t.Fatalf("reads delivered %d, want %d", got, readers*reads)
	}
	if n := wrongOrder.Load(); n != 0 {
		t.Fatalf("%d write deliveries fired before their seq was committed", n)
	}
	if tr.PendingCount() != 0 {
		t.Fatalf("PendingCount = %d after full commit", tr.PendingCount())
	}
}

// TestGateReadConcurrentAbortExactlyOnce races GateRead against Abort:
// every gated reply must be delivered exactly once — either verified
// (released by a Commit that won the race) or aborted — and reads gated
// after the abort must fail fast.
func TestGateReadConcurrentAbortExactlyOnce(t *testing.T) {
	const readers = 8
	const reads = 100
	tr := New(0)
	tr.RegisterWrite(1000, []string{"hot"}, func(bool) {})

	var delivered, abortedCount atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < reads; i++ {
				tr.GateRead([]string{"hot"}, func(aborted bool) {
					delivered.Add(1)
					if aborted {
						abortedCount.Add(1)
					}
				})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		tr.Abort()
	}()
	close(start)
	wg.Wait()

	if got := delivered.Load(); got != readers*reads {
		t.Fatalf("delivered %d, want %d (exactly once per GateRead)", got, readers*reads)
	}
	if abortedCount.Load() == 0 {
		t.Fatal("abort raced but no read observed it")
	}
	// Post-abort reads abort immediately, even hazard-free ones.
	fired := false
	tr.GateRead([]string{"cold"}, func(aborted bool) {
		fired = true
		if !aborted {
			t.Fatal("post-Abort GateRead delivered verified")
		}
	})
	if !fired {
		t.Fatal("post-Abort GateRead did not fire synchronously")
	}
}
