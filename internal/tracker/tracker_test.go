package tracker

import (
	"sync"
	"testing"
)

func TestWriteReleasedOnCommit(t *testing.T) {
	trk := New(0)
	got := make(chan bool, 1)
	trk.RegisterWrite(1, []string{"k"}, func(aborted bool) { got <- aborted })
	select {
	case <-got:
		t.Fatal("reply released before commit")
	default:
	}
	trk.Commit(1)
	if aborted := <-got; aborted {
		t.Fatal("committed write delivered as aborted")
	}
}

func TestAlreadyDurableWriteDeliversImmediately(t *testing.T) {
	trk := New(5)
	got := make(chan bool, 1)
	trk.RegisterWrite(3, []string{"k"}, func(aborted bool) { got <- aborted })
	select {
	case aborted := <-got:
		if aborted {
			t.Fatal("aborted")
		}
	default:
		t.Fatal("seq below watermark not delivered immediately")
	}
}

func TestReadOnCleanKeyImmediate(t *testing.T) {
	trk := New(0)
	got := make(chan bool, 1)
	trk.GateRead([]string{"clean"}, func(aborted bool) { got <- aborted })
	select {
	case <-got:
	default:
		t.Fatal("clean read was gated")
	}
}

func TestReadOnHazardedKeyWaitsForCoveringCommit(t *testing.T) {
	trk := New(0)
	wrote := make(chan bool, 1)
	trk.RegisterWrite(1, []string{"k"}, func(bool) { wrote <- true })
	read := make(chan bool, 1)
	trk.GateRead([]string{"k"}, func(aborted bool) { read <- aborted })
	select {
	case <-read:
		t.Fatal("hazarded read released before commit")
	default:
	}
	trk.Commit(1)
	<-wrote
	if aborted := <-read; aborted {
		t.Fatal("read aborted after commit")
	}
}

func TestReadGatesOnHighestCoveringSeq(t *testing.T) {
	trk := New(0)
	trk.RegisterWrite(1, []string{"k"}, func(bool) {})
	trk.RegisterWrite(2, []string{"k"}, func(bool) {})
	read := make(chan bool, 1)
	trk.GateRead([]string{"k"}, func(aborted bool) { read <- aborted })
	trk.Commit(1)
	select {
	case <-read:
		t.Fatal("read released at seq 1, but key was re-dirtied at seq 2")
	default:
	}
	trk.Commit(2)
	<-read
}

func TestReadOnOtherKeyNotGated(t *testing.T) {
	trk := New(0)
	trk.RegisterWrite(1, []string{"a"}, func(bool) {})
	read := make(chan bool, 1)
	trk.GateRead([]string{"b"}, func(aborted bool) { read <- aborted })
	select {
	case <-read:
	default:
		t.Fatal("read on unrelated key was gated (hazards must be key-level)")
	}
}

func TestMultiKeyReadGatesOnAnyHazard(t *testing.T) {
	trk := New(0)
	trk.RegisterWrite(3, []string{"b"}, func(bool) {})
	read := make(chan bool, 1)
	trk.GateRead([]string{"a", "b", "c"}, func(aborted bool) { read <- aborted })
	select {
	case <-read:
		t.Fatal("multi-key read missed the hazard on b")
	default:
	}
	trk.Commit(3)
	<-read
}

func TestCommitAdvancesWatermarkMonotonically(t *testing.T) {
	trk := New(0)
	var order []uint64
	var mu sync.Mutex
	for seq := uint64(1); seq <= 5; seq++ {
		s := seq
		trk.RegisterWrite(s, nil, func(bool) {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		})
	}
	trk.Commit(3) // releases 1..3 in order
	trk.Commit(2) // no-op (stale)
	trk.Commit(5)
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("released %d, want 5", len(order))
	}
	for i, s := range order {
		if s != uint64(i+1) {
			t.Fatalf("release order %v", order)
		}
	}
	if trk.Committed() != 5 {
		t.Fatalf("watermark = %d", trk.Committed())
	}
}

func TestAbortFailsAllPendingAndFuture(t *testing.T) {
	trk := New(0)
	w := make(chan bool, 1)
	r := make(chan bool, 1)
	trk.RegisterWrite(1, []string{"k"}, func(aborted bool) { w <- aborted })
	trk.GateRead([]string{"k"}, func(aborted bool) { r <- aborted })
	trk.Abort()
	if !<-w || !<-r {
		t.Fatal("pending replies not aborted")
	}
	// Registrations after abort fail immediately.
	after := make(chan bool, 1)
	trk.RegisterWrite(2, nil, func(aborted bool) { after <- aborted })
	if !<-after {
		t.Fatal("post-abort registration not failed")
	}
	afterRead := make(chan bool, 1)
	trk.GateRead([]string{"k"}, func(aborted bool) { afterRead <- aborted })
	if !<-afterRead {
		t.Fatal("post-abort read not failed")
	}
}

// TestBatchedWritesShareOneSeq is the group-commit contract: many replies
// registered at the SAME seq (one batched log entry carrying many mutation
// records) are all withheld until that entry commits, and one Commit
// releases every one of them.
func TestBatchedWritesShareOneSeq(t *testing.T) {
	trk := New(0)
	const batch = 8
	got := make(chan int, batch)
	for i := 0; i < batch; i++ {
		i := i
		trk.RegisterWrite(7, []string{"k" + string(rune('a'+i))}, func(aborted bool) {
			if aborted {
				t.Error("batched write aborted on commit")
			}
			got <- i
		})
	}
	select {
	case <-got:
		t.Fatal("batched reply released before the covering entry committed")
	default:
	}
	if trk.PendingCount() != batch {
		t.Fatalf("PendingCount = %d, want %d", trk.PendingCount(), batch)
	}
	trk.Commit(7)
	seen := make(map[int]bool)
	for i := 0; i < batch; i++ {
		seen[<-got] = true
	}
	if len(seen) != batch {
		t.Fatalf("one Commit released %d distinct replies, want %d", len(seen), batch)
	}
	if trk.PendingCount() != 0 {
		t.Fatalf("PendingCount after commit = %d", trk.PendingCount())
	}
}

// TestAbortFailsEveryBatchedReply: when the node demotes with an unflushed
// or uncommitted batch, Abort must deliver an error to every reply gated
// at the shared seq — none may be dropped (a silent client hang) or
// delivered as success.
func TestAbortFailsEveryBatchedReply(t *testing.T) {
	trk := New(0)
	const batch = 5
	got := make(chan bool, batch+1)
	for i := 0; i < batch; i++ {
		trk.RegisterWrite(3, []string{"k"}, func(aborted bool) { got <- aborted })
	}
	trk.GateRead([]string{"k"}, func(aborted bool) { got <- aborted })
	trk.Abort()
	for i := 0; i < batch+1; i++ {
		select {
		case aborted := <-got:
			if !aborted {
				t.Fatal("batched reply delivered as success on abort")
			}
		default:
			t.Fatalf("only %d of %d batched replies delivered on abort", i, batch+1)
		}
	}
}

func TestAbortIdempotent(t *testing.T) {
	trk := New(0)
	trk.Abort()
	trk.Abort()
}

func TestPendingCount(t *testing.T) {
	trk := New(0)
	trk.RegisterWrite(1, nil, func(bool) {})
	trk.RegisterWrite(2, nil, func(bool) {})
	if trk.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d", trk.PendingCount())
	}
	trk.Commit(1)
	if trk.PendingCount() != 1 {
		t.Fatalf("PendingCount after commit = %d", trk.PendingCount())
	}
}

func TestConcurrentCommitAndRegister(t *testing.T) {
	trk := New(0)
	const n = 2000
	var delivered sync.WaitGroup
	delivered.Add(n)
	go func() {
		for seq := uint64(1); seq <= n; seq++ {
			trk.Commit(seq)
		}
	}()
	for seq := uint64(1); seq <= n; seq++ {
		trk.RegisterWrite(seq, []string{"k"}, func(bool) { delivered.Done() })
	}
	trk.Commit(n) // in case registrations outran the committer
	delivered.Wait()
}

// TestAbortThenLateCommitDeliversExactlyOnce is the demotion-by-fencing
// sequence: a primary's append is in flight when another writer fences it
// (the node aborts its tracker), and the quorum acknowledgement for the
// old append arrives AFTER the abort. Each gated reply must be delivered
// exactly once — as an error at abort time — and the late Commit must not
// re-deliver or resurrect it.
func TestAbortThenLateCommitDeliversExactlyOnce(t *testing.T) {
	trk := New(0)
	var mu sync.Mutex
	calls := 0
	var sawAborted bool
	trk.RegisterWrite(3, []string{"k"}, func(aborted bool) {
		mu.Lock()
		calls++
		sawAborted = aborted
		mu.Unlock()
	})
	trk.Abort() // fenced: the node demotes and fails gated replies
	// The old entry still commits durably; its waiter reports late.
	trk.Commit(3)
	trk.Commit(5)
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("gated reply delivered %d times across abort+late-commit, want exactly 1", calls)
	}
	if !sawAborted {
		t.Fatal("fenced reply delivered as success instead of aborted")
	}
}
