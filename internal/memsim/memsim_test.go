package memsim

import "testing"

func TestBGSaveReproducesPaperShape(t *testing.T) {
	cfg := DefaultRedisBGSave()
	samples := SimulateBGSave(cfg, 10, 160)
	if len(samples) != 160 {
		t.Fatalf("%d samples", len(samples))
	}
	// (1) Steady state before the fork: flat throughput, sub-ms averages.
	pre := samples[5]
	if pre.Phase != "steady" || pre.AvgLatencyMs > 1 {
		t.Fatalf("pre-fork sample: %+v", pre)
	}
	// (2) The fork step shows a p100 spike of ForkMsPerGB × dataset
	// (paper: ~12 ms/GB), with throughput roughly intact.
	var fork *Sample
	for i := range samples {
		if samples[i].Phase == "fork" {
			fork = &samples[i]
			break
		}
	}
	if fork == nil {
		t.Fatal("no fork step")
	}
	wantStall := cfg.ForkMsPerGB * cfg.DatasetGB
	if fork.P100LatencyMs != wantStall {
		t.Fatalf("fork p100 = %v, want %v", fork.P100LatencyMs, wantStall)
	}
	if fork.ThroughputOps < pre.ThroughputOps*0.8 {
		t.Fatalf("fork step throughput collapsed: %v", fork.ThroughputOps)
	}
	// (3) COW accumulates during BGSave and memory eventually exceeds
	// DRAM, driving swap past the collapse threshold.
	if PeakSwapPct(samples) < cfg.SwapCollapsePct {
		t.Fatalf("swap peaked at %.2f%%, never crossed the %.0f%% collapse threshold",
			PeakSwapPct(samples), cfg.SwapCollapsePct)
	}
	// (4) Throughput collapses to near zero — an availability outage.
	if MinThroughput(samples) > pre.ThroughputOps*0.05 {
		t.Fatalf("min throughput %.0f, want near-zero collapse", MinThroughput(samples))
	}
	// (5) Tail latency reaches seconds during the collapse.
	if MaxP100(samples) < 1000 {
		t.Fatalf("max p100 = %.0f ms, want >= 1s", MaxP100(samples))
	}
}

func TestBGSaveWithAmpleRAMNeverSwaps(t *testing.T) {
	cfg := DefaultRedisBGSave()
	cfg.TotalRAMGB = 64 // plenty of headroom for COW
	samples := SimulateBGSave(cfg, 10, 160)
	if PeakSwapPct(samples) != 0 {
		t.Fatalf("swap with ample RAM: %.2f%%", PeakSwapPct(samples))
	}
	// Only the fork spike remains.
	if MinThroughput(samples) < samples[0].ThroughputOps*0.8 {
		t.Fatal("throughput degraded without memory pressure")
	}
}

func TestOffboxFlatThroughSnapshot(t *testing.T) {
	cfg := DefaultRedisBGSave()
	samples := SimulateOffbox(cfg, 30, 60, 120)
	base := samples[0].ThroughputOps
	sawSnapshot := false
	for _, s := range samples {
		if s.Phase == "offbox-snapshot" {
			sawSnapshot = true
		}
		if s.ThroughputOps != base {
			t.Fatalf("throughput moved during off-box snapshot: %+v", s)
		}
		if s.AvgLatencyMs > 2 {
			t.Fatalf("avg latency %v ms, want ~1 ms", s.AvgLatencyMs)
		}
		if s.P100LatencyMs < 10 || s.P100LatencyMs > 20 {
			t.Fatalf("p100 %v ms, want within 10–20 ms band", s.P100LatencyMs)
		}
	}
	if !sawSnapshot {
		t.Fatal("snapshot window never opened")
	}
}

func TestCOWReleasedAfterSnapshotCompletes(t *testing.T) {
	cfg := DefaultRedisBGSave()
	cfg.DatasetGB = 1 // small dataset: snapshot finishes quickly
	cfg.SerializeMBps = 1024
	samples := SimulateBGSave(cfg, 5, 60)
	done := false
	for _, s := range samples {
		if s.Phase == "done" {
			done = true
		}
		if done && s.COWGB != 0 {
			t.Fatalf("COW not released after completion: %+v", s)
		}
	}
	if !done {
		t.Fatal("snapshot never completed")
	}
}
