package core

import (
	"context"
	"strings"

	"memorydb/internal/trace"
)

// This file is the node side of cross-node causal tracing: adopting (or
// minting) a span context at submit, and finishing the task's root span
// when its reply is delivered. Stage child spans are emitted next to
// the existing obs stage stamps (observe.go, groupcommit.go), reusing
// the timestamps already taken there; the group-commit flush stamps the
// context onto the txlog entry so AZ acks and remote replica applies
// join the same tree.

// taskSpan is a sampled task's tracing state. Tasks that miss the
// sampling coin carry a nil *taskSpan, so the unsampled hot path costs
// one pointer check per site.
type taskSpan struct {
	c    *trace.Collector
	sc   trace.SpanContext // the task's node-level span; children attach here
	root trace.Span        // started at submit, finished at reply delivery
}

// traceStart attaches tracing state to a task at submit: it adopts the
// span context minted at command parse in the server front-end when the
// caller's ctx carries one, and otherwise draws the node-local sampling
// coin (so embedded/cluster-test nodes trace without a front-end).
func (n *Node) traceStart(ctx context.Context, t *task) {
	if n.trace == nil {
		return
	}
	sc, fromCtx := trace.FromContext(ctx)
	if !fromCtx {
		var ok bool
		if sc, ok = n.trace.Sample(); !ok {
			return
		}
	}
	var name string
	switch {
	case t.kind == taskBatch:
		name = "cmd:EXEC"
	case len(t.argv) > 0:
		name = "cmd:" + strings.ToUpper(string(t.argv[0]))
	default:
		name = "cmd"
	}
	ts := &taskSpan{c: n.trace}
	if fromCtx {
		ts.root = n.trace.Child(sc, name, n.cfg.NodeID, -1)
	} else {
		ts.root = n.trace.Root(sc, name, n.cfg.NodeID)
	}
	ts.sc = trace.SpanContext{TraceID: ts.root.TraceID, SpanID: ts.root.SpanID}
	t.tr = ts
}

// traceFinish closes the task's node-level span. Runs inside the reply
// closure — for a mutation that is after the tracker released it, so
// the span covers the full submit→durable→reply interval.
func (t *task) traceFinish() {
	if t.tr != nil {
		t.tr.c.Finish(t.tr.root)
	}
}
