package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/lin"
	"memorydb/internal/netsim"
)

// TestLinearizableUnderConcurrency is the §7.2.2 consistency test: many
// clients run biased SET/GET workloads against a MemoryDB primary with
// realistic commit latency, and the recorded concurrent history is fed to
// the linearizability checker.
func TestLinearizableUnderConcurrency(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { linearizableUnderConcurrency(t, mode.batch) })
	}
}

func linearizableUnderConcurrency(t *testing.T, batch int) {
	svc := testService(t, netsim.NewUniform(200*time.Microsecond, 2*time.Millisecond, 11))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, batch)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	rec := lin.NewRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	const clients = 6
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: int64(clientID), Keys: 3, WriteRatio: 0.5})
			for i := 0; i < 10; i++ {
				key, in, args := gen.Next(clientID*1000 + i)
				argv := make([][]byte, len(args))
				for j, a := range args {
					argv[j] = []byte(a)
				}
				call := rec.Invoke()
				v, err := n.Do(ctx, argv)
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				} else if in.Kind == "get" {
					out.Value = v.Text()
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(c)
	}
	wg.Wait()
	if ok, badKey := lin.Check(lin.RegisterModel{}, rec.History()); !ok {
		t.Fatalf("history not linearizable (key %s)", badKey)
	}
}

// TestLinearizableAcrossFailover checks the harder property: histories
// spanning a primary crash and replica promotion stay linearizable,
// because only fully caught-up replicas can win and unacknowledged writes
// are reported as errors (ambiguous), never as successes that vanish.
func TestLinearizableAcrossFailover(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { linearizableAcrossFailover(t, mode.batch) })
	}
}

func linearizableAcrossFailover(t *testing.T, batch int) {
	svc := testService(t, netsim.Fixed(300*time.Microsecond))
	log, _ := svc.CreateLog("shard-1")
	primary := testNodeBatch(t, "node-a", log, nil, batch)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNodeBatch(t, "node-b", log, nil, batch)
	waitRole(t, replica, election.RoleReplica, time.Second)

	rec := lin.NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	const clients = 4
	const opsPerClient = 40 // 4×40 over 4 keys stays under the checker's per-key bound
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: int64(clientID) + 100, Keys: 4, WriteRatio: 0.6})
			for i := 0; i < opsPerClient; i++ {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(2 * time.Millisecond) // spread ops across the failover window
				key, in, args := gen.Next(clientID*10000 + i)
				argv := make([][]byte, len(args))
				for j, a := range args {
					argv[j] = []byte(a)
				}
				// Route to whichever node is primary right now; during
				// the failover window operations fail (recorded as
				// ambiguous).
				target := primary
				if replica.Role() == election.RolePrimary {
					target = replica
				}
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				call := rec.Invoke()
				v, err := target.Do(ctx, argv)
				cancel()
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				} else if in.Kind == "get" {
					out.Value = v.Text()
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond)
	primary.Stop() // crash mid-workload
	waitRole(t, replica, election.RolePrimary, 3*time.Second)
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	history := rec.History()
	if len(history) < 50 {
		t.Fatalf("history too small to be meaningful: %d ops", len(history))
	}
	if ok, badKey := lin.Check(lin.RegisterModel{}, history); !ok {
		t.Fatalf("failover history not linearizable (key %s, %d ops)", badKey, len(history))
	}
}

// TestReadYourWritesGating exercises the tracker visibly: with a slow
// commit, a read issued immediately after a write must not return before
// the write is durable, and must observe it.
func TestReadYourWritesGating(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { readYourWritesGating(t, mode.batch) })
	}
}

func readYourWritesGating(t *testing.T, batch int) {
	commit := 10 * time.Millisecond
	svc := testService(t, netsim.Fixed(commit))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, batch)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	writeDone := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		n.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
		writeDone <- time.Since(start)
	}()
	time.Sleep(2 * time.Millisecond) // let the write execute (not commit)
	start := time.Now()
	v, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("k")})
	readLatency := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if v.Text() != "v" {
		t.Fatalf("read missed the in-flight write: %v", v)
	}
	if readLatency < commit/2 {
		t.Fatalf("read returned in %v — before the %v commit, exposing undurable data", readLatency, commit)
	}
	if wl := <-writeDone; wl < commit {
		t.Fatalf("write acknowledged in %v, before the %v commit latency", wl, commit)
	}
	// A read of an unrelated key is NOT gated (key-level hazards).
	n.Do(ctx, [][]byte{[]byte("SET"), []byte("other"), []byte("x")})
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v2")})
	time.Sleep(2 * time.Millisecond)
	start = time.Now()
	if _, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("other")}); err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(start); lat > commit/2 {
		t.Fatalf("unrelated read gated for %v — hazards must be per key", lat)
	}
}
