package core

import (
	"errors"
	"sync/atomic"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

// Group commit (write batching). The paper's write path acknowledges a
// mutation only after its log entry commits to a quorum of AZs (§3.2), so
// naive per-mutation appends bound write throughput by one quorum
// round-trip per command. Group commit amortizes the round-trip: while an
// append is in flight the workloop keeps executing queued mutations and
// accumulates their effect records here; when the in-flight append
// acknowledges — or a records/bytes cap is hit — the buffer is flushed as
// ONE EntryData whose payload is the concatenation of every buffered
// record, and a single tracker.Commit releases every reply gated on it.
//
// With keyspace sharding each shard owns one of these buffers and flushes
// independently; the flush acquires the node's sequencer (seqMu) to issue
// its append, which is the only point where shards serialize. Per-shard
// pipeline depth means total append concurrency is Shards ×
// MaxInflightAppends.
//
// Correctness invariants:
//   - A mutation's reply is withheld until its covering entry commits
//     (buffered replies are registered with the tracker at flush, all at
//     the batch entry's seq).
//   - Reads that observed a buffered-but-unflushed mutation gate on the
//     batch itself (the workloop tracks the buffer's dirty-key set), so
//     undurable data is never exposed even before a seq exists. A key's
//     reads and writes land on the same shard, so the shard-local
//     dirty-key set is complete for the keys it can be asked about.
//   - A flush distinguishes fenced from transient failures: a transient
//     error (service blip, below-quorum AZ set) re-enters the retry loop
//     with every buffered reply still withheld, while a fenced append —
//     or exhausting the lease-bounded retry deadline — demotes the node
//     and fails every buffered reply.
//   - Non-data appends (lease renewals, checksums, control records) flush
//     the affected buffers first, so the log order of entries always
//     matches execution order where it is observable.
//   - The running checksum chains over data payloads in sequencer issue
//     order, and checksum injection happens inside the same seqMu
//     critical section as the data append that triggered it, so an
//     EntryChecksum's payload always equals the chain over the exact log
//     prefix preceding it — even with other shards flushing concurrently.

// gatedReply is one client reply parked in the group-commit buffer.
type gatedReply struct {
	keys []string // dirty keys (mutations only; nil for gated reads)
	val  resp.Value
	send func(v resp.Value)
	// execDone is the mutation's engine-execution stamp (obs.Now nanos,
	// 0 when unstamped) — batch residency is measured from it at flush.
	execDone int64
	// tr carries the originating task's tracing state into the flush
	// (nil unless the task was sampled).
	tr *taskSpan
}

// groupCommit is one shard's workloop-owned batching buffer.
type groupCommit struct {
	payload []byte       // concatenated effect records for the next entry
	records int          // logical records in payload
	writes  []gatedReply // mutation replies awaiting flush
	reads   []gatedReply // reads/barriers gated on this batch
	keys    map[string]struct{}
	// inflight counts flushed-but-unacknowledged data appends. Written by
	// append-waiter goroutines, read by the workloop (hence atomic —
	// everything else in this struct is workloop-only).
	inflight atomic.Int64
}

// pending reports whether the buffer holds anything to flush or gate on.
func (g *groupCommit) pending() bool { return g.records > 0 }

// touchesAny reports whether any of keys was dirtied by a buffered
// mutation.
func (g *groupCommit) touchesAny(keys []string) bool {
	if len(g.keys) == 0 {
		return false
	}
	for _, k := range keys {
		if _, ok := g.keys[k]; ok {
			return true
		}
	}
	return false
}

func (g *groupCommit) reset() {
	// The flushed payload slice is owned by the log entry now; start a
	// fresh one rather than reusing the backing array.
	g.payload = nil
	g.records = 0
	g.writes = g.writes[:0]
	g.reads = g.reads[:0]
	clear(g.keys)
}

// bufferMutation parks an executed mutation's effects and reply in the
// shard's batch. The engine already applied the mutation locally;
// visibility to other clients is controlled by the read-gating below, and
// the reply is withheld until the batch entry commits.
func (n *Node) bufferMutation(sh *nodeShard, t *task, res engine.Result) {
	gc := &sh.gc
	gc.payload = engine.AppendRecord(gc.payload, res.Effects)
	gc.records++
	gc.writes = append(gc.writes, gatedReply{keys: res.Keys, val: res.Reply, send: t.reply, execDone: t.execDone, tr: t.tr})
	if gc.keys == nil {
		gc.keys = make(map[string]struct{}, 16)
	}
	for _, k := range res.Keys {
		gc.keys[k] = struct{}{}
	}
}

// gateReadOnBatch parks a read (or WAIT barrier) whose result must not be
// delivered before the buffered mutations it observed become durable. It
// is registered with the tracker at the batch's seq when the batch
// flushes.
func (n *Node) gateReadOnBatch(sh *nodeShard, t *task, val resp.Value) {
	sh.gc.reads = append(sh.gc.reads, gatedReply{val: val, send: t.reply})
}

// shouldFlush reports whether the shard's buffer must be flushed now: a
// cap was hit, or the shard's append pipeline has room (flushing while
// the window is open adds no latency — appends to the log pipeline commit
// in order — and holding back would only delay the buffered replies).
func (n *Node) shouldFlush(sh *nodeShard) bool {
	gc := &sh.gc
	if !gc.pending() {
		return false
	}
	return gc.records >= n.cfg.MaxBatchRecords ||
		len(gc.payload) >= n.cfg.MaxBatchBytes ||
		gc.inflight.Load() < int64(n.cfg.MaxInflightAppends)
}

// flushPending appends the shard's buffered batch as one EntryData and
// gates every buffered reply on its commit. Returns false when the append
// failed (the node demoted and all buffered replies were failed).
func (n *Node) flushPending(sh *nodeShard) bool {
	gc := &sh.gc
	if !gc.pending() {
		return true
	}
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	trk := n.trk
	n.mu.Unlock()
	if role != election.RolePrimary {
		// Demoted (or resyncing) with mutations still buffered: a stale
		// writer must not append, and the replies were already promised an
		// error by the demotion.
		n.abortPending(sh, errDemoted)
		return false
	}
	if err := n.checkpoint(faultpoint.SiteFlushPre); err != nil {
		// Crashed (and later stopped) or transiently failed at the head of
		// the flush: nothing reached the log, so the buffered mutations can
		// never become durable under this node — same treatment as a
		// lost append.
		n.stats.AppendsFailed.Add(1)
		n.demote()
		n.abortPending(sh, errLogDown)
		return false
	}
	var flushStart int64
	if n.obs != nil {
		// Batch residency ends here: every buffered mutation waited from
		// its engine execution until this flush began.
		flushStart = obs.Now()
		for _, w := range gc.writes {
			if w.execDone != 0 {
				n.obs.Stage(obs.StageBatchWait).ObserveNanos(flushStart - w.execDone)
				if w.tr != nil {
					w.tr.c.Emit(w.tr.sc, "batch_wait", n.cfg.NodeID, -1, sh.idx, w.execDone, flushStart)
				}
			}
		}
	}
	payload := gc.payload
	// The first traced write in the batch owns the batch-level spans: the
	// append and quorum intervals are shared by every buffered reply, so
	// one trace records them, and the entry carries that trace's context
	// into the log so per-AZ acks and remote replica applies attach to
	// the same tree. The append span's ID is allocated up front — it must
	// be on the entry before the append is issued, but the span itself is
	// only emitted once the append returns.
	var ownerTr *taskSpan
	var appendSpanID uint64
	for _, w := range gc.writes {
		if w.tr != nil {
			ownerTr = w.tr
			break
		}
	}
	entry := txlog.Entry{
		Type:          txlog.EntryData,
		Epoch:         epoch,
		EngineVersion: n.cfg.EngineVersion,
		Records:       uint32(gc.records),
		// Piggyback the committed (client-acked) watermark so tailing
		// replicas continuously learn the primary's ack frontier.
		Watermark: trk.Committed(),
		Payload:   payload,
	}
	if ownerTr != nil {
		appendSpanID = ownerTr.c.NewSpanID()
		entry.TraceID = ownerTr.sc.TraceID
		entry.TraceSpan = appendSpanID
	}
	// Sequencer critical section: the append is issued, the chain
	// checksum advances, and a due checksum entry is injected before any
	// other shard can slot in an append.
	n.seqMu.Lock()
	p, err := n.startAppendRetry(n.lastIssued, entry, &n.stats.AppendsRetried)
	if err != nil {
		n.seqMu.Unlock()
		// Transient failures were already absorbed by the retry loop
		// (replies stayed withheld throughout); reaching here means the
		// append is genuinely lost — fenced by another writer, or the
		// lease-bounded retry deadline is exhausted. Either way none of the
		// buffered changes may be acknowledged or stay visible (§3.2).
		// Demote, then fail every gated reply — clients must observe the
		// error only once the node has stepped down; resync discards the
		// un-logged local mutations.
		n.stats.AppendsFailed.Add(1)
		if errors.Is(err, txlog.ErrConditionFailed) {
			n.flight.Recordf(trace.EvFencing, epoch, "shard %d append fenced by newer writer", sh.idx)
		}
		n.demote()
		if errors.Is(err, txlog.ErrConditionFailed) {
			n.abortPending(sh, errDemoted)
		} else {
			n.abortPending(sh, errLogDown)
		}
		return false
	}
	n.lastIssued = p.ID()
	n.runningChecksum = txlog.ChainChecksum(n.runningChecksum, payload)
	n.dataSinceSum++
	var cp *txlog.Pending
	if n.cfg.ChecksumEvery > 0 && n.dataSinceSum >= n.cfg.ChecksumEvery {
		cp = n.injectChecksumLocked()
	}
	n.seqMu.Unlock()
	seq := p.ID().Seq
	n.stats.BatchFlushes.Add(1)
	n.stats.BatchedRecords.Add(int64(gc.records))
	// ackAt is the batch's quorum-acknowledgement stamp, written by the
	// waiter goroutine and read by the tracker deliver closures (which
	// may run on the waiter's Commit or on an Abort from elsewhere —
	// hence atomic). One cell is shared by every reply in the batch.
	var ackAt *atomic.Int64
	var appendDone int64
	if n.obs != nil {
		appendDone = obs.Now()
		n.obs.Stage(obs.StageAppend).ObserveNanos(appendDone - flushStart)
		ackAt = new(atomic.Int64)
		if ownerTr != nil {
			ownerTr.c.EmitWithID(appendSpanID, ownerTr.sc, "append", n.cfg.NodeID, sh.idx, flushStart, appendDone)
		}
	}
	for _, w := range gc.writes {
		w := w
		trk.RegisterWrite(seq, w.keys, func(aborted bool) {
			if aborted {
				w.send(errDemoted)
				return
			}
			if ackAt != nil {
				if at := ackAt.Load(); at != 0 {
					now := obs.Now()
					n.obs.Stage(obs.StageTrackerRelease).ObserveNanos(now - at)
					if w.tr != nil {
						w.tr.c.Emit(w.tr.sc, "tracker_release", n.cfg.NodeID, -1, sh.idx, at, now)
					}
				}
			}
			w.send(w.val)
		})
	}
	for _, r := range gc.reads {
		r := r
		trk.RegisterWrite(seq, nil, func(aborted bool) {
			if aborted {
				r.send(errDemoted)
			} else {
				r.send(r.val)
			}
		})
	}
	gc.reset()
	gc.inflight.Add(1)
	go func() {
		if _, err := p.Wait(n.stopCtx); err == nil {
			if ackAt != nil {
				now := obs.Now()
				ackAt.Store(now)
				n.obs.Stage(obs.StageQuorumWait).ObserveNanos(now - appendDone)
				if ownerTr != nil {
					// Child of the append span, sibling of the per-AZ acks
					// the log service emitted for the same entry.
					ownerTr.c.Emit(trace.SpanContext{TraceID: ownerTr.sc.TraceID, SpanID: appendSpanID},
						"quorum_wait", n.cfg.NodeID, -1, sh.idx, appendDone, now)
				}
			}
			// Two crash gates inside the committed-but-unacknowledged
			// window: the entry is quorum-durable, but a kill at either
			// point means no gated reply is ever delivered — the harness's
			// "durable yet unacknowledged" case. On a checkpoint failure the
			// commit is skipped but the inflight decrement and wakeup below
			// still run, so a thawed zombie's workloop is not wedged.
			if n.checkpoint(faultpoint.SiteFlushPost) == nil &&
				n.checkpoint(faultpoint.SiteTrackerRelease) == nil {
				n.noteAZHealth(p)
				trk.Commit(seq)
			}
		}
		gc.inflight.Add(-1)
		// Coalesced poke: wake the shard workloop so the batch that
		// accumulated behind this round-trip flushes promptly.
		select {
		case sh.appendAcked <- struct{}{}:
		default:
		}
	}()
	if cp != nil {
		n.commitWatermarkAsync(cp, trk)
	}
	return true
}

// injectChecksumLocked appends the primary's running log checksum so
// snapshot verification can rehearse against it (§7.2.1). Called with
// seqMu held, immediately after the data append that made the checksum
// due, so the checksum entry is contiguous with the prefix it covers.
// Returns the pending append (the caller advances the tracker watermark
// once it commits), or nil when the append failed and the node demoted.
func (n *Node) injectChecksumLocked() *txlog.Pending {
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	p, err := n.startAppendRetry(n.lastIssued, txlog.Entry{
		Type:          txlog.EntryChecksum,
		Epoch:         epoch,
		EngineVersion: n.cfg.EngineVersion,
		Watermark:     n.committedWatermark(),
		Payload:       txlog.EncodeChecksumPayload(n.runningChecksum),
	}, &n.stats.AppendsRetried)
	if err != nil {
		// Fenced or retried out the lease: step down.
		n.stats.AppendsFailed.Add(1)
		n.demote()
		return nil
	}
	n.lastIssued = p.ID()
	n.dataSinceSum = 0
	return p
}

// abortPending fails every reply parked in the shard's buffer with
// errVal. Called on flush failure and on demotion/resync while mutations
// were buffered.
func (n *Node) abortPending(sh *nodeShard, errVal resp.Value) {
	gc := &sh.gc
	if gc.records == 0 && len(gc.reads) == 0 {
		return
	}
	for _, w := range gc.writes {
		w.send(errVal)
	}
	for _, r := range gc.reads {
		r.send(errVal)
	}
	gc.reset()
}
