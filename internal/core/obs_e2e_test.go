package core

import (
	"context"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/obs"
	"memorydb/internal/trace"
)

// TestObsStageSumsApproxE2E drives serialized writes (so every
// group-commit batch carries exactly one record and the per-batch stages
// line up one-to-one with commands) and checks that the per-stage spans
// account for the measured end-to-end latency: the pipeline decomposition
// queue_wait + execute + batch_wait + append + quorum_wait +
// tracker_release must cover the submit-to-reply span within tolerance.
func TestObsStageSumsApproxE2E(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-obs")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	const writes = 50
	for i := 0; i < writes; i++ {
		mustDo(t, n, "SET", fmt.Sprintf("k%d", i), "v")
	}

	m := n.Obs()
	e2e := m.Stage(obs.StageE2E)
	if got := e2e.Count(); got < writes {
		t.Fatalf("e2e count = %d, want >= %d", got, writes)
	}
	stages := []obs.Stage{
		obs.StageQueueWait, obs.StageExecute, obs.StageBatchWait,
		obs.StageAppend, obs.StageQuorumWait, obs.StageTrackerRelease,
	}
	var stageSum int64
	for _, s := range stages {
		h := m.Stage(s)
		if h.Count() == 0 {
			t.Errorf("stage %s recorded no samples", s)
		}
		stageSum += h.Sum()
	}
	total := e2e.Sum()
	diff := total - stageSum
	if diff < 0 {
		diff = -diff
	}
	// Allow 30%: bucket rounding, the reply-channel hop after delivery,
	// and scheduling between stamps all live in the gap.
	if float64(diff) > 0.30*float64(total) {
		t.Fatalf("stage sums %v vs e2e %v: gap %.1f%% exceeds 30%%",
			time.Duration(stageSum), time.Duration(total),
			100*float64(diff)/float64(total))
	}
}

var infoStatRe = regexp.MustCompile(`(\w+)=(\d+)`)

// infoStageStats extracts the k=v integer fields from the INFO line
// "stage_<name>:count=...,p50_usec=...".
func infoStageStats(t *testing.T, info, stage string) map[string]int64 {
	t.Helper()
	prefix := "stage_" + stage + ":"
	for _, line := range regexp.MustCompile(`\r?\n`).Split(info, -1) {
		if len(line) < len(prefix) || line[:len(prefix)] != prefix {
			continue
		}
		out := map[string]int64{}
		for _, kv := range infoStatRe.FindAllStringSubmatch(line[len(prefix):], -1) {
			v, err := strconv.ParseInt(kv[2], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			out[kv[1]] = v
		}
		return out
	}
	t.Fatalf("INFO has no %q line:\n%s", prefix, info)
	return nil
}

// TestInfoLatencyNonZeroAfterPipelinedWrites checks the PR's headline
// acceptance: after a concurrent write workload, INFO's # Latency section
// reports non-zero p50 and p99 for the interior pipeline stages.
func TestInfoLatencyNonZeroAfterPipelinedWrites(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-obs2")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	const goroutines, perG = 32, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				argv := [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d-%d", g, i)), []byte("v")}
				if _, err := n.Do(context.Background(), argv); err != nil {
					t.Errorf("SET: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	info := mustDo(t, n, "INFO").Text()
	for _, stage := range []string{"queue_wait", "append", "quorum_wait", "tracker_release"} {
		st := infoStageStats(t, info, stage)
		if st["count"] == 0 {
			t.Errorf("stage %s: count = 0", stage)
		}
		if st["p50_usec"] == 0 || st["p99_usec"] == 0 {
			t.Errorf("stage %s: p50=%dµs p99=%dµs, want both non-zero",
				stage, st["p50_usec"], st["p99_usec"])
		}
	}
	// The write-heavy run must also populate command stats and keep
	// quorum_wait's p50 at or above the configured 1ms commit latency.
	if st := infoStageStats(t, info, "quorum_wait"); st["p50_usec"] < 900 {
		t.Errorf("quorum_wait p50 = %dµs, want >= ~1000 (commit latency)", st["p50_usec"])
	}
}

// TestObsOverheadGuardWorkloop is the timing half of the metrics-overhead
// guard (the zero-alloc half lives in internal/obs): an instrumented node
// must stay within 5% of a NoObs node's throughput on an identical write
// workload. Wall-clock comparisons flake under CI noise, so the guard only
// arms when MEMORYDB_OBS_GUARD=1 (scripts/check.sh and `make obs` set it).
func TestObsOverheadGuardWorkloop(t *testing.T) {
	if os.Getenv("MEMORYDB_OBS_GUARD") != "1" {
		t.Skip("set MEMORYDB_OBS_GUARD=1 to run the throughput-overhead guard")
	}

	run := func(noObs bool) time.Duration {
		svc := testService(t, netsim.Zero{})
		log, _ := svc.CreateLog("shard-guard")
		n, err := NewNode(Config{
			NodeID:      "node-a",
			ShardID:     log.ShardID(),
			Log:         log,
			Lease:       120 * time.Millisecond,
			Backoff:     160 * time.Millisecond,
			RenewEvery:  30 * time.Millisecond,
			ReplicaPoll: time.Millisecond,
			NoObs:       noObs,
		})
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		n.Start()
		defer n.Stop()
		waitRole(t, n, election.RolePrimary, 2*time.Second)

		// Long enough (~150ms per run) that scheduler jitter amortizes;
		// a 40ms run swings ±10% between identical binaries.
		const goroutines, perG = 8, 2000
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					argv := [][]byte{[]byte("SET"), []byte(fmt.Sprintf("g%d-%d", g, i)), []byte("v")}
					if _, err := n.Do(context.Background(), argv); err != nil {
						t.Errorf("SET: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}

	// Machine-wide drift (thermal, scheduler phase) swings identical runs
	// by ~10%, far more than the instrumentation itself, so min-of-trials
	// per side is unstable. Instead run back-to-back pairs — drift within
	// a pair is correlated and divides out — and take the median ratio.
	// Order alternates within pairs so warm-up never favors one side.
	const pairs = 7
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		var instr, plain time.Duration
		if i%2 == 0 {
			instr, plain = run(false), run(true)
		} else {
			plain, instr = run(true), run(false)
		}
		ratios = append(ratios, float64(instr)/float64(plain))
	}
	sort.Float64s(ratios)
	median := ratios[pairs/2]
	t.Logf("paired instr/noobs ratios %v, median %.4f (%.2f%% overhead)",
		ratios, median, 100*(median-1))
	if median > 1.05 {
		t.Fatalf("instrumentation overhead too high: median ratio %.4f (>1.05)", median)
	}
}

// TestObsOverheadGuardTracing holds the distributed-tracing addition to
// the same 5% bar as the base metrics guard: an instrumented node with
// the trace collector sampling at 1% and the flight recorder armed (the
// production observability posture) must stay within 5% of an identical
// instrumented node with tracing off. Comparing tracing-on against
// tracing-off — rather than against NoObs — isolates exactly what the
// tracing layer adds; the obs-vs-NoObs gap is the base guard's job. The
// name shares the TestObsOverheadGuard prefix so scripts/check.sh's
// single -run pattern arms both guards.
func TestObsOverheadGuardTracing(t *testing.T) {
	if os.Getenv("MEMORYDB_OBS_GUARD") != "1" {
		t.Skip("set MEMORYDB_OBS_GUARD=1 to run the throughput-overhead guard")
	}

	run := func(tracing bool) time.Duration {
		svc := testService(t, netsim.Zero{})
		log, _ := svc.CreateLog("shard-guard-tr")
		cfg := Config{
			NodeID:      "node-a",
			ShardID:     log.ShardID(),
			Log:         log,
			Lease:       120 * time.Millisecond,
			Backoff:     160 * time.Millisecond,
			RenewEvery:  30 * time.Millisecond,
			ReplicaPoll: time.Millisecond,
		}
		if tracing {
			cfg.Trace = trace.NewCollector(0.01, 1, 0)
			cfg.Flight = trace.NewFlight("node-a", 0)
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		n.Start()
		defer n.Stop()
		waitRole(t, n, election.RolePrimary, 2*time.Second)

		const goroutines, perG = 8, 2000
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					argv := [][]byte{[]byte("SET"), []byte(fmt.Sprintf("g%d-%d", g, i)), []byte("v")}
					if _, err := n.Do(context.Background(), argv); err != nil {
						t.Errorf("SET: %v", err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return time.Since(start)
	}

	// Same paired-ratio methodology as the base guard: back-to-back pairs
	// so machine-wide drift divides out, order alternated, median taken.
	const pairs = 7
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		var traced, plain time.Duration
		if i%2 == 0 {
			traced, plain = run(true), run(false)
		} else {
			plain, traced = run(false), run(true)
		}
		ratios = append(ratios, float64(traced)/float64(plain))
	}
	sort.Float64s(ratios)
	median := ratios[pairs/2]
	t.Logf("paired tracing+flight/plain ratios %v, median %.4f (%.2f%% overhead)",
		ratios, median, 100*(median-1))
	if median > 1.05 {
		t.Fatalf("tracing+flight overhead too high: median ratio %.4f (>1.05)", median)
	}
}
