package core

import (
	"errors"
	"strings"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/resp"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

// Barrier path. Commands whose keys span execution shards — or whose
// result reflects the whole keyspace (KEYS, FLUSHALL, WAIT, …) — cannot
// run inside any single shard workloop. A coordinator goroutine quiesces
// the shards instead: each receives a park task, flushes its group-commit
// buffer (so all of its writes have log sequences), signals arrival, and
// blocks until release. With every affected shard parked the coordinator
// observes a consistent cut of the keyspace: it executes on the node's
// whole-keyspace engine, issues at most one sequencer entry for the
// effects, and releases the shards. Coordinators serialize on barrierMu;
// the same machinery drives replica apply at Shards>1, control entries,
// and state installs (promotion, resync).

// holdShards parks every given shard: each flushes its buffer, signals
// arrival, and blocks until the returned release function is called.
// Returns ok=false when the node stopped mid-quiesce (any shards already
// parked are released; the coordinator must unwind without side effects).
func (n *Node) holdShards(shards []*nodeShard) (release func(), ok bool) {
	arrived := make(chan struct{}, len(shards))
	rel := make(chan struct{})
	t := &task{kind: taskPark, shard: -1, parkArrived: arrived, parkRelease: rel}
	for _, sh := range shards {
		select {
		case sh.tasks <- t:
		case <-n.stopCtx.Done():
			close(rel)
			return nil, false
		}
	}
	for range shards {
		select {
		case <-arrived:
		case <-n.stopCtx.Done():
			close(rel)
			return nil, false
		}
	}
	return func() { close(rel) }, true
}

// runBarrier coordinates one client task across shards. It mirrors
// handleCmd/handleBatch, with the whole-keyspace engine standing in for a
// shard engine and the quiesced shards guaranteeing a consistent cut.
func (n *Node) runBarrier(t *task) {
	n.stats.BarrierOps.Add(1)
	n.barrierMu.Lock()
	defer n.barrierMu.Unlock()
	if !n.gate() {
		// Stopped while frozen: drop without replying, like handleTask.
		return
	}
	n.stats.Commands.Add(1)
	var name string
	var cmd *engine.Command
	if t.kind == taskCmd {
		name = strings.ToUpper(string(t.argv[0]))
		cmd, _ = engine.LookupCommand(name)
	} else {
		name = "EXEC"
	}
	if n.obs != nil && t.enq != 0 {
		t.name = name
		n.obsDequeued(t)
	}
	n.flight.Recordf(trace.EvBarrier, 0, "all-shard barrier for %s", name)
	release, ok := n.holdShards(n.shards)
	if !ok {
		return
	}
	defer release()

	// Role snapshot AFTER the quiesce: parking may have demoted the node
	// (a shard's flush failed), and a coordinator must not append under a
	// leadership the flush already lost.
	n.mu.Lock()
	role := n.role
	lease := n.lease
	trk := n.trk
	stalled := n.stalled
	gate := n.slotGate
	n.mu.Unlock()

	if gate != nil && cmd != nil && !isAlwaysLocal(name) {
		if errReply, rejected := gate(name, cmd.Keys(t.argv), cmd.Writes()); rejected {
			t.reply(errReply)
			return
		}
	}

	if t.kind == taskCmd && name == "WAIT" {
		if role != election.RolePrimary {
			t.reply(errNotPrimary)
			return
		}
		// Every shard flushed on park, so the sequencer tail covers every
		// outstanding write.
		seq := n.lastIssuedSeq()
		trk.RegisterWrite(seq, nil, func(aborted bool) {
			if aborted {
				t.reply(errDemoted)
			} else {
				t.reply(resp.Int64(2))
			}
		})
		return
	}

	switch role {
	case election.RolePrimary:
		if lease == nil || !lease.Valid() {
			n.demote()
			t.reply(errDemoted)
			return
		}
	case election.RoleReplica:
		if stalled {
			t.reply(errStalledVal)
			return
		}
		// Only reads legitimately barrier on a replica — whole-keyspace
		// commands or all-read batches — and only with READONLY set AND
		// the read verified (or explicitly eventual) by the DoRead ladder:
		// a bare readonly task must never be served here as if it were
		// linearizable.
		if !t.readonly || !t.readVerified {
			t.reply(errNotPrimary)
			return
		}
		var res engine.Result
		switch {
		case t.kind == taskCmd && cmd != nil && !cmd.Writes():
			res = n.gEng.Exec(t.argv)
		case t.kind == taskBatch && batchIsReadOnly(t.batch):
			res = n.gEng.ExecBatch(t.batch)
		default:
			t.reply(errNotPrimary)
			return
		}
		if t.deq != 0 {
			n.obsExecuted(t)
		}
		t.reply(res.Reply)
		return
	default:
		t.reply(errDemoted)
		return
	}

	// Primary path.
	var res engine.Result
	if t.kind == taskBatch {
		res = n.gEng.ExecBatch(t.batch)
	} else {
		res = n.gEng.Exec(t.argv)
	}
	if t.deq != 0 {
		n.obsExecuted(t)
	}
	if !res.Mutated() {
		// Every buffer flushed on park, so gating at the sequencer tail
		// covers everything this read could have observed.
		n.stats.GatedReads.Add(1)
		seq := n.lastIssuedSeq()
		trk.RegisterWrite(seq, nil, func(aborted bool) {
			if aborted {
				t.reply(errDemoted)
			} else {
				t.reply(res.Reply)
			}
		})
		return
	}
	n.stats.Mutations.Add(1)
	n.forwardEffectsParked(res.Keys, res.Effects)
	n.issueBarrierEntry(t, res, trk)
}

// issueBarrierEntry appends a barrier mutation's effects as one
// single-record EntryData and gates the reply on its commit.
func (n *Node) issueBarrierEntry(t *task, res engine.Result, trk trackerIface) {
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	payload := engine.AppendRecord(nil, res.Effects)
	entry := txlog.Entry{
		Type:          txlog.EntryData,
		Epoch:         epoch,
		EngineVersion: n.cfg.EngineVersion,
		Records:       1,
		Watermark:     trk.Committed(),
		Payload:       payload,
	}
	// A sampled barrier mutation stamps its context on the entry like a
	// group-commit flush does, so AZ acks and replica applies attach.
	var appendSpanID uint64
	var appendStart int64
	if t.tr != nil {
		appendSpanID = t.tr.c.NewSpanID()
		entry.TraceID = t.tr.sc.TraceID
		entry.TraceSpan = appendSpanID
		appendStart = trace.Now()
	}
	n.seqMu.Lock()
	p, err := n.startAppendRetry(n.lastIssued, entry, &n.stats.AppendsRetried)
	if err != nil {
		n.seqMu.Unlock()
		n.stats.AppendsFailed.Add(1)
		n.demote()
		if errors.Is(err, txlog.ErrConditionFailed) {
			t.reply(errDemoted)
		} else {
			t.reply(errLogDown)
		}
		return
	}
	n.lastIssued = p.ID()
	n.runningChecksum = txlog.ChainChecksum(n.runningChecksum, payload)
	n.dataSinceSum++
	var cp *txlog.Pending
	if n.cfg.ChecksumEvery > 0 && n.dataSinceSum >= n.cfg.ChecksumEvery {
		cp = n.injectChecksumLocked()
	}
	n.seqMu.Unlock()
	seq := p.ID().Seq
	n.stats.BatchFlushes.Add(1)
	n.stats.BatchedRecords.Add(1)
	if t.tr != nil {
		t.tr.c.EmitWithID(appendSpanID, t.tr.sc, "append", n.cfg.NodeID, -1, appendStart, trace.Now())
	}
	trk.RegisterWrite(seq, res.Keys, func(aborted bool) {
		if aborted {
			t.reply(errDemoted)
		} else {
			t.reply(res.Reply)
		}
	})
	go func() {
		if _, err := p.Wait(n.stopCtx); err == nil {
			if n.checkpoint(faultpoint.SiteFlushPost) == nil &&
				n.checkpoint(faultpoint.SiteTrackerRelease) == nil {
				n.noteAZHealth(p)
				trk.Commit(seq)
			}
		}
	}()
	if cp != nil {
		n.commitWatermarkAsync(cp, trk)
	}
}

// installState atomically replaces the node's engine state and/or log
// positions from the role loop (promotion installs positions; resync
// installs a rebuilt engine). All shards are parked; any buffered,
// never-logged mutations are discarded with errors — their clients must
// see failures, not silence (the node demoted before the resync that
// produced this install). Returns false when the node stopped.
func (n *Node) installState(newEng *engine.Engine, newApplied txlog.EntryID, setIssued bool, newChecksum uint64) bool {
	n.barrierMu.Lock()
	defer n.barrierMu.Unlock()
	release, ok := n.holdShards(n.shards)
	if !ok {
		return false
	}
	defer release()
	for _, sh := range n.shards {
		n.abortPending(sh, errDemoted)
	}
	if newEng != nil {
		db := newEng.DB()
		n.dbPtr.Store(db)
		n.gEng = newEng
		for _, sh := range n.shards {
			eng := engine.NewShared(n.clk, db)
			eng.SetObs(n.obs)
			eng.SetTrace(n.trace)
			eng.SetFlight(n.flight)
			sh.eng = eng
		}
	}
	n.applied = newApplied
	n.appliedSeq.Store(newApplied.Seq)
	// The installed state covers everything through newApplied: release
	// every replica read parked at or below it. On promotion this is what
	// hands parked reads to the new primary's fully-caught-up state; on
	// resync the swap is atomic under the all-shard barrier, so a released
	// read can never observe a half-rebuilt store.
	n.readGate.Advance(newApplied.Seq)
	n.seqMu.Lock()
	if setIssued {
		n.lastIssued = newApplied
		n.runningChecksum = newChecksum
		n.dataSinceSum = 0
	} else {
		n.lastIssued = txlog.ZeroID
	}
	n.seqMu.Unlock()
	return true
}

// applyEntry applies one replicated log entry (role loop only).
func (n *Node) applyEntry(e txlog.Entry) error {
	if e.Type != txlog.EntryData {
		n.applied = e.ID
		n.appliedSeq.Store(e.ID.Seq)
		n.readGate.Advance(e.ID.Seq)
		return nil
	}
	if e.EngineVersion > n.cfg.EngineVersion {
		// Upgrade protection (§7.1): a replica running an older engine
		// must not misinterpret records from a newer one; it stops
		// consuming the log.
		n.mu.Lock()
		n.stalled = true
		n.mu.Unlock()
		return errUpgradeStall
	}
	// A traced entry extends the originating command's span tree onto this
	// node: the apply interval parents to the primary's append span.
	var applyStart int64
	traced := n.trace != nil && e.TraceID != 0
	if traced {
		applyStart = trace.Now()
	}
	if len(n.shards) == 1 {
		// Single shard: round-trip through the workloop, exactly the
		// pre-sharding apply path.
		t := &task{kind: taskApply, entry: e, applyCh: make(chan error, 1), shard: 0}
		select {
		case n.shards[0].tasks <- t:
		case <-n.stopCtx.Done():
			return ErrStopped
		}
		select {
		case err := <-t.applyCh:
			if err != nil {
				return err
			}
		case <-n.stopCtx.Done():
			return ErrStopped
		}
	} else {
		// Record boundaries inside an entry payload are not framed, so an
		// entry cannot be split across shards; apply it atomically on the
		// whole-keyspace engine under an all-shard barrier. Replica
		// workloops only serve reads, so the barrier never waits on a
		// flush — and primaries never apply, keeping this off the
		// benchmark write path.
		n.barrierMu.Lock()
		release, ok := n.holdShards(n.shards)
		if !ok {
			n.barrierMu.Unlock()
			return ErrStopped
		}
		err := n.gEng.Apply(e.Payload)
		release()
		n.barrierMu.Unlock()
		if err != nil {
			return err
		}
	}
	n.applied = e.ID
	n.appliedSeq.Store(e.ID.Seq)
	n.readGate.Advance(e.ID.Seq)
	n.stats.EntriesApplied.Add(1)
	if traced {
		n.trace.Emit(trace.SpanContext{TraceID: e.TraceID, SpanID: e.TraceSpan},
			"replica_apply", n.cfg.NodeID, -1, -1, applyStart, trace.Now())
	}
	return nil
}
