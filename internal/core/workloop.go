package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

type taskKind int

const (
	taskCmd taskKind = iota
	taskBatch
	taskApply
	taskRenew
	taskSweep
	taskMigCtl
	taskMigDump
	taskSlotInfo
	taskBarrier
	taskPark
)

type task struct {
	kind     taskKind
	argv     [][]byte
	batch    [][][]byte
	readonly bool // client opted into replica reads (READONLY)
	// readVerified marks a readonly task the DoRead ladder has cleared
	// for replica serving: either its freshness proof succeeded (the
	// applied position covers the committed tail captured at arrival),
	// the client's declared staleness bound holds, or the client opted
	// into eventual consistency. Replica execution paths serve ONLY
	// verified readonly tasks; anything else is redirected, so stale
	// data is never silently returned as consistent.
	readVerified bool
	reply        func(v resp.Value)

	// tr is the task's tracing state; nil unless the task was sampled
	// (or arrived with a span context minted by the server front-end).
	tr *taskSpan

	// shard is the execution shard the task was routed to, -1 on the
	// barrier path (per-shard stage histograms are skipped there).
	shard int

	// Observability stamps (obs.Now monotonic nanos; 0 = not stamped):
	// enq at submit, deq at workloop dequeue, execDone after engine
	// execution. name is the uppercase command name for per-command
	// stats. Only set when the node's obs registry is enabled.
	enq, deq, execDone int64
	name               string

	// taskApply
	entry   txlog.Entry
	applyCh chan error

	// taskBarrier (drain): closed once every task queued ahead of the
	// barrier has been fully handled.
	swapCh chan struct{}

	// taskPark: quiesce this shard for a barrier coordinator. The shard
	// flushes its buffer, signals arrival, and blocks until release.
	parkArrived chan<- struct{}
	parkRelease <-chan struct{}

	// taskMigCtl / taskMigDump / taskSlotInfo
	mig    *MigrationStream
	migOn  bool
	slot   uint16
	slotCh chan []string
}

// Do executes a client command on this node. Writes require the node to
// be a primary holding a valid lease; replies for mutations are withheld
// until the transaction log acknowledges durability.
func (n *Node) Do(ctx context.Context, argv [][]byte) (resp.Value, error) {
	return n.submit(ctx, &task{kind: taskCmd, argv: argv})
}

// DoReadOnly executes a command with replica reads permitted (the client
// issued READONLY). Replica reads default to the linearizable ladder:
// the read is served locally only after the replica proves its applied
// position covers the committed tail captured at arrival, and degrades
// to a REDIRECT otherwise (see DoRead for the staleness opt-ins).
func (n *Node) DoReadOnly(ctx context.Context, argv [][]byte) (resp.Value, error) {
	v, _, err := n.DoRead(ctx, argv, ReadOpts{})
	return v, err
}

// DoBatch executes an atomic MULTI/EXEC group: all commands run
// back-to-back in one workloop (or under an all-shard barrier when the
// group spans shards) and their effects are logged as a single record, so
// the group is atomic both locally and in the log (§2.1).
func (n *Node) DoBatch(ctx context.Context, cmds [][][]byte) (resp.Value, error) {
	return n.submit(ctx, &task{kind: taskBatch, batch: cmds})
}

func (n *Node) submit(ctx context.Context, t *task) (resp.Value, error) {
	ch := make(chan resp.Value, 1)
	if n.trace != nil {
		n.traceStart(ctx, t)
	}
	// The reply closure only calls traceFinish when the task was actually
	// sampled: with tracing off (or a sampling miss) the closures below
	// are instruction-identical to an untraced build, so the obs-overhead
	// guard measures metrics cost alone.
	switch {
	case n.obs != nil && t.tr != nil:
		t.enq = obs.Now()
		t.reply = func(v resp.Value) { n.obsFinish(t); t.traceFinish(); ch <- v }
	case n.obs != nil:
		t.enq = obs.Now()
		t.reply = func(v resp.Value) { n.obsFinish(t); ch <- v }
	case t.tr != nil:
		t.reply = func(v resp.Value) { t.traceFinish(); ch <- v }
	default:
		t.reply = func(v resp.Value) { ch <- v }
	}
	if sh, barrier := n.route(t); barrier {
		t.shard = -1
		// The coordinator runs in its own goroutine so this submit keeps
		// honoring ctx cancellation while shards quiesce.
		go n.runBarrier(t)
	} else {
		t.shard = sh.idx
		select {
		case sh.tasks <- t:
		case <-ctx.Done():
			return resp.Value{}, ctx.Err()
		case <-n.stopCtx.Done():
			return resp.Value{}, ErrStopped
		}
	}
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return resp.Value{}, ctx.Err()
	case <-n.stopCtx.Done():
		return resp.Value{}, ErrStopped
	}
}

func (n *Node) handleTask(sh *nodeShard, t *task) {
	if !n.gate() {
		// Stopped while frozen: the crashed process is being torn down.
		// Drop the task without replying — exactly what a dead process
		// does; submit's stopCtx select fails the caller.
		return
	}
	switch t.kind {
	case taskCmd:
		n.handleCmd(sh, t)
	case taskBatch:
		n.handleBatch(sh, t)
	case taskApply:
		t.applyCh <- sh.eng.Apply(t.entry.Payload)
	case taskRenew:
		n.handleRenew(sh)
	case taskSweep:
		n.handleSweep(sh)
	case taskMigCtl:
		n.handleMigCtl(sh, t)
	case taskMigDump:
		n.handleMigDump(sh, t)
	case taskSlotInfo:
		t.slotCh <- sh.eng.DB().SlotKeys(t.slot, 0)
	case taskBarrier:
		// Pure synchronization: reaching this point proves every task
		// queued ahead of the barrier — including a flush whose retry
		// loop was failing out gated replies — has been fully handled.
		// On a node that is no longer primary, buffered mutations can
		// never become durable; fail their replies now, while the
		// step-down is externally observable.
		n.mu.Lock()
		role := n.role
		n.mu.Unlock()
		if role != election.RolePrimary {
			n.abortPending(sh, errDemoted)
		}
		close(t.swapCh)
	case taskPark:
		// A barrier coordinator is quiescing this shard. Flush first so
		// the coordinator observes fully-issued state (on a demoted node
		// this aborts the buffer instead), then block until release. The
		// coordinator may touch this shard's engine and buffer while we
		// are parked; the channel handshake orders those accesses.
		n.flushPending(sh)
		t.parkArrived <- struct{}{}
		select {
		case <-t.parkRelease:
		case <-n.stopCtx.Done():
		}
	}
}

var (
	errNotPrimary = resp.Err("READONLY You can't write against a read only replica.")
	errDemoted    = resp.Err("CLUSTERDOWN node lost its leadership lease")
	errStalledVal = resp.Err("CLUSTERDOWN replica stalled by newer engine version in replication stream")
	errLogDown    = resp.Err("CLUSTERDOWN transaction log unavailable")
)

func (n *Node) handleCmd(sh *nodeShard, t *task) {
	n.stats.Commands.Add(1)
	name := strings.ToUpper(string(t.argv[0]))
	if n.obs != nil && t.enq != 0 {
		t.name = name
		n.obsDequeued(t)
	}
	if name == "WAIT" {
		n.handleWait(sh, t)
		return
	}
	if name == "INFO" {
		t.reply(resp.BulkStr(n.infoText()))
		return
	}
	cmd, known := engine.LookupCommand(name)

	n.mu.Lock()
	role := n.role
	lease := n.lease
	trk := n.trk
	stalled := n.stalled
	gate := n.slotGate
	n.mu.Unlock()

	if gate != nil && known && !isAlwaysLocal(name) {
		if errReply, rejected := gate(name, cmd.Keys(t.argv), cmd.Writes()); rejected {
			t.reply(errReply)
			return
		}
	}

	switch role {
	case election.RolePrimary:
		if lease == nil || !lease.Valid() {
			// A primary that cannot renew voluntarily stops servicing
			// reads and writes at the end of its lease (§4.1.3).
			n.abortPending(sh, errDemoted)
			n.demote()
			t.reply(errDemoted)
			return
		}
	case election.RoleReplica:
		if stalled {
			t.reply(errStalledVal)
			return
		}
		if !known || (cmd.Writes() && name != "PING") {
			t.reply(errNotPrimary)
			return
		}
		if !isAlwaysLocal(name) {
			if !t.readonly {
				t.reply(errNotPrimary)
				return
			}
			if !t.readVerified {
				// A readonly read that reached the replica without
				// passing the DoRead freshness ladder (e.g. the node
				// became a replica between verification and execution)
				// must not be served as consistent: bounce it.
				n.stats.ReplicaReadsRedirected.Add(1)
				t.reply(errRedirect)
				return
			}
		}
		// Verified replica read: the freshness proof (or explicit
		// staleness opt-in) happened before enqueue; mutations only
		// become visible once committed to the log (§3.2).
		res := sh.eng.Exec(t.argv)
		if t.deq != 0 {
			n.obsExecuted(t)
		}
		t.reply(res.Reply)
		return
	default:
		t.reply(errDemoted)
		return
	}

	// Primary path.
	res := sh.eng.Exec(t.argv)
	if t.deq != 0 {
		n.obsExecuted(t)
	}
	if !res.Mutated() {
		// Read: delay the reply if any observed key has a not-yet-durable
		// mutation (key-level hazards, §3.2).
		keys := readKeys(cmd, t.argv, name)
		gateAll := (keys == nil && gatesOnFullKeyspace(name)) || n.cfg.GlobalReadGate
		if sh.gc.pending() && (gateAll || sh.gc.touchesAny(keys)) {
			// The read observed a mutation still sitting in the
			// group-commit buffer (no log seq yet): gate it on the batch
			// itself; it is released once the batch entry commits.
			n.stats.GatedReads.Add(1)
			n.gateReadOnBatch(sh, t, res.Reply)
			return
		}
		if gateAll {
			seq := n.lastIssuedSeq()
			n.stats.GatedReads.Add(1)
			trk.RegisterWrite(seq, nil, func(aborted bool) {
				if aborted {
					t.reply(errDemoted)
				} else {
					t.reply(res.Reply)
				}
			})
			return
		}
		trk.GateRead(keys, func(aborted bool) {
			if aborted {
				t.reply(errDemoted)
			} else {
				t.reply(res.Reply)
			}
		})
		return
	}
	n.logMutation(sh, t, res)
}

func (n *Node) handleBatch(sh *nodeShard, t *task) {
	n.stats.Commands.Add(1)
	if n.obs != nil && t.enq != 0 {
		t.name = "EXEC"
		n.obsDequeued(t)
	}
	n.mu.Lock()
	role := n.role
	lease := n.lease
	trk := n.trk
	stalled := n.stalled
	n.mu.Unlock()
	if role == election.RoleReplica && t.readonly {
		// READONLY pipeline on a replica: serve only all-read batches
		// that the DoRead ladder verified, mirroring handleCmd.
		if stalled {
			t.reply(errStalledVal)
			return
		}
		if !t.readVerified {
			n.stats.ReplicaReadsRedirected.Add(1)
			t.reply(errRedirect)
			return
		}
		if !batchIsReadOnly(t.batch) {
			t.reply(errNotPrimary)
			return
		}
		res := sh.eng.ExecBatch(t.batch)
		if t.deq != 0 {
			n.obsExecuted(t)
		}
		t.reply(res.Reply)
		return
	}
	if role != election.RolePrimary {
		t.reply(errNotPrimary)
		return
	}
	if lease == nil || !lease.Valid() {
		n.abortPending(sh, errDemoted)
		n.demote()
		t.reply(errDemoted)
		return
	}
	res := sh.eng.ExecBatch(t.batch)
	if t.deq != 0 {
		n.obsExecuted(t)
	}
	if !res.Mutated() {
		// Read-only transaction: gate on everything outstanding, since
		// computing the union of read keys across the group costs more
		// than the conservative barrier.
		if sh.gc.pending() {
			n.gateReadOnBatch(sh, t, res.Reply)
			return
		}
		seq := n.lastIssuedSeq()
		trk.RegisterWrite(seq, nil, func(aborted bool) {
			if aborted {
				t.reply(errDemoted)
			} else {
				t.reply(res.Reply)
			}
		})
		return
	}
	n.logMutation(sh, t, res)
}

// logMutation routes the effects of an executed mutation into the shard's
// group-commit buffer and flushes when warranted: immediately when the
// append pipeline has room (no latency added), on records/bytes caps, and
// otherwise when an in-flight append acknowledges (flush-on-ack, driven
// by the shard's appendAcked wakeup).
func (n *Node) logMutation(sh *nodeShard, t *task, res engine.Result) {
	n.stats.Mutations.Add(1)
	// Mirror into the migration stream at execution order — the same
	// position the effects take in the batch payload.
	n.forwardEffects(sh, res.Keys, res.Effects)
	n.bufferMutation(sh, t, res)
	if n.shouldFlush(sh) {
		n.flushPending(sh)
	}
}

// commitWatermarkAsync advances the tracker's durable watermark once a
// non-data entry commits, so reads gated at lastIssued are not stuck
// behind control traffic.
func (n *Node) commitWatermarkAsync(p *txlog.Pending, trk trackerIface) {
	go func() {
		if id, err := p.Wait(n.stopCtx); err == nil {
			// Crash gate before the watermark advances: a kill here leaves
			// the entry durable but every gated reply undelivered — clients
			// time out and must treat the write as ambiguous.
			if n.checkpoint(faultpoint.SiteTrackerRelease) != nil {
				return
			}
			n.noteAZHealth(p)
			trk.Commit(id.Seq)
		}
	}()
}

// handleWait implements WAIT: on MemoryDB every acknowledged write is
// already durable across AZs, so WAIT degenerates to a barrier on the
// client's outstanding writes; the reply is the number of replicating
// AZs beyond the primary's. At Shards>1 WAIT routes through the barrier
// path instead (every shard's buffer must flush first).
func (n *Node) handleWait(sh *nodeShard, t *task) {
	n.mu.Lock()
	role := n.role
	trk := n.trk
	n.mu.Unlock()
	if role != election.RolePrimary {
		t.reply(errNotPrimary)
		return
	}
	if sh.gc.pending() {
		// Buffered writes have no seq yet; the barrier must cover them.
		n.gateReadOnBatch(sh, t, resp.Int64(2))
		return
	}
	seq := n.lastIssuedSeq()
	trk.RegisterWrite(seq, nil, func(aborted bool) {
		if aborted {
			t.reply(errDemoted)
		} else {
			t.reply(resp.Int64(2))
		}
	})
}

// infoText renders the INFO reply: the per-node view the monitoring
// service polls every few seconds (§5.1). Reads only atomics and
// mu-guarded fields, so any shard may serve it without quiescing the
// others.
func (n *Node) infoText() string {
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	stalled := n.stalled
	n.mu.Unlock()
	st := n.stats.Snapshot()
	logStats := n.cfg.Log.Stats()
	degraded := n.cfg.Log.Degraded()
	db := n.dbPtr.Load()
	var b strings.Builder
	fmt.Fprintf(&b, "# Replication\r\n")
	fmt.Fprintf(&b, "role:%s\r\n", role)
	fmt.Fprintf(&b, "epoch:%d\r\n", epoch)
	fmt.Fprintf(&b, "applied_seq:%d\r\n", n.appliedSeq.Load())
	fmt.Fprintf(&b, "log_committed_seq:%d\r\n", n.cfg.Log.CommittedTail().Seq)
	fmt.Fprintf(&b, "upgrade_stalled:%v\r\n", stalled)
	fmt.Fprintf(&b, "engine_version:%d\r\n", n.cfg.EngineVersion)
	fmt.Fprintf(&b, "# Stats\r\n")
	fmt.Fprintf(&b, "commands:%d\r\n", st.Commands)
	fmt.Fprintf(&b, "mutations:%d\r\n", st.Mutations)
	fmt.Fprintf(&b, "entries_applied:%d\r\n", st.EntriesApplied)
	fmt.Fprintf(&b, "promotions:%d\r\n", st.Promotions)
	fmt.Fprintf(&b, "demotions:%d\r\n", st.Demotions)
	fmt.Fprintf(&b, "# GroupCommit\r\n")
	fmt.Fprintf(&b, "batch_flushes:%d\r\n", st.BatchFlushes)
	fmt.Fprintf(&b, "batched_records:%d\r\n", st.BatchedRecords)
	if st.BatchFlushes > 0 {
		fmt.Fprintf(&b, "mean_records_per_entry:%.2f\r\n", float64(st.BatchedRecords)/float64(st.BatchFlushes))
	}
	fmt.Fprintf(&b, "# Robustness\r\n")
	fmt.Fprintf(&b, "appends_retried:%d\r\n", st.AppendsRetried)
	fmt.Fprintf(&b, "renewals_retried:%d\r\n", st.RenewalsRetried)
	fmt.Fprintf(&b, "degraded_millis:%d\r\n", st.DegradedMillis)
	fmt.Fprintf(&b, "log_degraded:%v\r\n", degraded)
	fmt.Fprintf(&b, "log_degraded_appends:%d\r\n", logStats.DegradedAppends)
	fmt.Fprintf(&b, "torn_snapshots_detected:%d\r\n", st.TornSnapshotsDetected)
	fmt.Fprintf(&b, "reader_rebootstraps:%d\r\n", st.ReaderRebootstraps)
	fmt.Fprintf(&b, "log_gap_retries:%d\r\n", st.LogGapRetries)
	fmt.Fprintf(&b, "replica_reads_served:%d\r\n", st.ReplicaReadsServed)
	fmt.Fprintf(&b, "replica_reads_stale:%d\r\n", st.ReplicaReadsStale)
	fmt.Fprintf(&b, "replica_reads_redirected:%d\r\n", st.ReplicaReadsRedirected)
	fmt.Fprintf(&b, "replica_read_watermarks_fenced:%d\r\n", st.WatermarksFenced)
	segStats := n.cfg.Log.SegmentStats()
	fmt.Fprintf(&b, "log_segments_live:%d\r\n", segStats.LiveSegments)
	fmt.Fprintf(&b, "log_bytes_live:%d\r\n", segStats.LiveBytes)
	fmt.Fprintf(&b, "log_segments_sealed_total:%d\r\n", segStats.Sealed)
	fmt.Fprintf(&b, "log_segments_trimmed_total:%d\r\n", segStats.Trimmed)
	fmt.Fprintf(&b, "log_segments_quarantined_total:%d\r\n", segStats.Quarantined)
	if snaps := n.cfg.Snapshots; snaps != nil {
		h := snaps.Health()
		fmt.Fprintf(&b, "snapshot_builder_lag_entries:%d\r\n", h.LagEntries.Load())
		fmt.Fprintf(&b, "snapshot_deltas_emitted_total:%d\r\n", h.DeltasEmitted.Load())
		fmt.Fprintf(&b, "snapshot_compactions_total:%d\r\n", h.Compactions.Load())
		fmt.Fprintf(&b, "snapshot_chain_depth:%d\r\n", h.ChainDepth.Load())
		fmt.Fprintf(&b, "snapshot_builder_lag_alarms_total:%d\r\n", h.LagAlarms.Load())
	}
	fmt.Fprintf(&b, "shard_count:%d\r\n", len(n.shards))
	fmt.Fprintf(&b, "barrier_ops:%d\r\n", st.BarrierOps)
	fmt.Fprintf(&b, "cross_slot_ops:%d\r\n", st.CrossSlotOps)
	depths := n.QueueDepths()
	total, maxd := 0, 0
	for _, d := range depths {
		total += d
		if d > maxd {
			maxd = d
		}
	}
	fmt.Fprintf(&b, "queue_depth_total:%d\r\n", total)
	fmt.Fprintf(&b, "queue_depth_max:%d\r\n", maxd)
	for i, d := range depths {
		fmt.Fprintf(&b, "shard%d_queue_depth:%d\r\n", i, d)
	}
	fmt.Fprintf(&b, "# Keyspace\r\n")
	fmt.Fprintf(&b, "keys:%d\r\n", db.Len())
	fmt.Fprintf(&b, "used_bytes:%d\r\n", db.UsedBytes())
	b.WriteString(n.obsInfoSections())
	return b.String()
}

// handleRenew appends a lease renewal (primary only; routed to shard 0).
// The append is pipelined like any other: assignment happens synchronously
// (so the chain stays intact) and the lease extends from issue time — safe
// because the backoff replicas observe is strictly longer than the lease.
// Only shard 0's buffer is flushed first: a lease entry carries no data,
// so its order relative to OTHER shards' buffered mutations is
// unconstrained — each shard's own flush keeps its per-key order.
func (n *Node) handleRenew(sh *nodeShard) {
	n.mu.Lock()
	role := n.role
	lease := n.lease
	epoch := n.epoch
	trk := n.trk
	n.mu.Unlock()
	if role != election.RolePrimary || lease == nil {
		return
	}
	if !lease.Valid() {
		n.abortPending(sh, errDemoted)
		n.demote()
		return
	}
	// Flush buffered mutations first so the log order of entries matches
	// workloop execution order.
	if !n.flushPending(sh) {
		return
	}
	// Crash gate on the renewal path: a kill here lets the lease run out
	// under the frozen primary, so a thawed zombie wakes already expired.
	// A transient Error decision just skips this tick (the next one
	// retries), mirroring how a real renewal RPC can be lost.
	if n.checkpoint(faultpoint.SiteRenew) != nil {
		return
	}
	r := election.Renewal{NodeID: n.cfg.NodeID, Epoch: epoch, LeaseMs: n.cfg.Lease.Milliseconds()}
	issued := n.clk.Now()
	n.seqMu.Lock()
	p, err := n.startAppendRetry(n.lastIssued, txlog.Entry{
		Type:      txlog.EntryLease,
		Epoch:     epoch,
		Watermark: trk.Committed(),
		Payload:   election.EncodeRenewal(r),
	}, &n.stats.RenewalsRetried)
	if err == nil {
		n.lastIssued = p.ID()
	}
	n.seqMu.Unlock()
	if err != nil {
		n.stats.AppendsFailed.Add(1)
		if errors.Is(err, txlog.ErrConditionFailed) || !lease.Valid() {
			// Fenced by another writer, or the lease expired while the
			// retry loop was absorbing an outage: step down now.
			n.abortPending(sh, errDemoted)
			n.demote()
			return
		}
		// Transient failure with lease time still left: serve out the
		// current lease; the next renew tick retries again.
		return
	}
	lease.Renewed(issued)
	n.commitWatermarkAsync(p, trk)
}

// handleSweep runs one active-expiry cycle over this shard's owned store
// parts on the primary, replicating deterministic DELs for reaped keys —
// through the shard's own group-commit buffer, so per-key order between a
// SET and its expiry DEL is preserved.
func (n *Node) handleSweep(sh *nodeShard) {
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role != election.RolePrimary {
		return
	}
	res := sh.eng.SweepExpiredParts(32, sh.partLo, sh.partHi)
	if !res.Mutated() {
		return
	}
	t := &task{shard: sh.idx, reply: func(resp.Value) {}}
	n.logMutation(sh, t, res)
}

// demote moves the node to the demoted role; the role loop will
// resynchronize it from the log and rejoin as a replica.
func (n *Node) demote() {
	n.mu.Lock()
	if n.role != election.RolePrimary {
		n.mu.Unlock()
		return
	}
	n.role = election.RoleDemoted
	n.lease = nil
	trk := n.trk
	epoch := n.epoch
	cb := n.cfg.OnRoleChange
	n.mu.Unlock()
	if pc := trk.PendingCount(); pc > 0 {
		n.flight.Recordf(trace.EvAbort, uint64(pc), "aborting %d gated replies on step-down", pc)
	}
	trk.Abort()
	n.stats.Demotions.Add(1)
	n.flight.Record(trace.EvDemotion, epoch, "lease lost or fenced")
	select {
	case n.roleChanged <- struct{}{}:
	default:
	}
	if cb != nil {
		cb(n.cfg.NodeID, election.RoleDemoted, epoch)
	}
}

// trackerIface narrows tracker.Tracker for the append-commit paths.
type trackerIface interface {
	RegisterWrite(seq uint64, keys []string, deliver func(aborted bool))
	Commit(seq uint64)
	Committed() uint64
}

// batchIsReadOnly reports whether every command in an atomic batch is a
// known read command — the only batches a replica may serve.
func batchIsReadOnly(batch [][][]byte) bool {
	for _, argv := range batch {
		if len(argv) == 0 {
			return false
		}
		cmd, known := engine.LookupCommand(strings.ToUpper(string(argv[0])))
		if !known || cmd.Writes() {
			return false
		}
	}
	return true
}

// readKeys returns the keys a read command observed.
func readKeys(cmd *engine.Command, argv [][]byte, name string) []string {
	if cmd == nil {
		return nil
	}
	return cmd.Keys(argv)
}

// gatesOnFullKeyspace lists keyless reads whose results reflect the whole
// keyspace and therefore must wait for every outstanding write.
func gatesOnFullKeyspace(name string) bool {
	switch name {
	case "KEYS", "SCAN", "DBSIZE", "RANDOMKEY":
		return true
	}
	return false
}

// isAlwaysLocal lists commands any node answers regardless of role or
// READONLY state.
func isAlwaysLocal(name string) bool {
	switch name {
	case "PING", "ECHO", "TIME", "COMMAND", "LATENCY", "SLOWLOG", "TRACE", "DEBUG":
		return true
	}
	return false
}

var errUpgradeStall = errors.New("core: replication stream from newer engine version; consumption stopped")
