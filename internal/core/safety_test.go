package core

import (
	"context"
	"testing"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/netsim"
)

// countPrimaries samples both nodes' roles.
func countPrimaries(nodes ...*Node) int {
	n := 0
	for _, node := range nodes {
		if node.Role() == election.RolePrimary {
			n++
		}
	}
	return n
}

// TestLeaderSingularityUnderPartition is the §4.1.3 safety property: when
// the primary is partitioned from the transaction log, the replica may
// only become primary after the old primary's lease has expired — sampled
// continuously, there is never a moment with two *serving* primaries.
func TestLeaderSingularityUnderPartition(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	var partA netsim.Flag
	a, err := NewNode(Config{
		NodeID: "node-a", ShardID: "shard-1", Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Partition: &partA,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(a.Stop)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)
	mustDo(t, a, "SET", "k", "v")

	// Partition ONLY the primary from the log service: it can no longer
	// renew its lease or commit writes; the healthy replica campaigns
	// once the backoff elapses (§4.1.3 split-brain scenario).
	partA.Set(true)
	go a.Do(context.Background(), [][]byte{[]byte("SET"), []byte("x"), []byte("y")})

	// During the whole transition, sample: never two primaries at once.
	deadline := time.Now().Add(3 * time.Second)
	sawPromotion := false
	for time.Now().Before(deadline) {
		if countPrimaries(a, b) > 1 {
			t.Fatal("two primaries observed simultaneously")
		}
		if b.Role() == election.RolePrimary {
			sawPromotion = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawPromotion {
		t.Fatal("replica never promoted after primary lost the log")
	}
	// The isolated node is not serving (demoted or lease-expired), and
	// the unacknowledged write never became visible on the new primary.
	if a.Role() == election.RolePrimary {
		t.Fatal("old primary still claims leadership after losing the log")
	}
	if v := mustDo(t, b, "GET", "k"); v.Text() != "v" {
		t.Fatalf("GET k = %v after transition", v)
	}
	if v := mustDo(t, b, "GET", "x"); !v.Null {
		t.Fatalf("unacknowledged write leaked: %v", v)
	}
	// Heal the partition: the fenced node rejoins as a replica.
	partA.Set(false)
	waitRole(t, a, election.RoleReplica, 3*time.Second)
}

// TestNoClusterQuorumNeeded is §4.1's liveness improvement: election
// depends only on the transaction log, not on a majority of peers. A
// single surviving replica promotes even when every other node is gone.
func TestNoClusterQuorumNeeded(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	cNode := testNode(t, "node-c", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)
	mustDo(t, a, "SET", "k", "v")

	// Kill the primary AND one replica: 1 of 3 nodes survives — no
	// majority, yet the survivor wins leadership through the log.
	a.Stop()
	cNode.Stop()
	waitRole(t, b, election.RolePrimary, 3*time.Second)
	if v := mustDo(t, b, "GET", "k"); v.Text() != "v" {
		t.Fatalf("GET = %v", v)
	}
}

// TestStepDownHandsOverQuickly exercises the collaborative transfer: the
// lease-release entry lets the replica skip the backoff.
func TestStepDownHandsOverQuickly(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)
	mustDo(t, a, "SET", "k", "v")
	time.Sleep(10 * time.Millisecond) // let b apply

	start := time.Now()
	if err := a.StepDown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitRole(t, b, election.RolePrimary, 2*time.Second)
	handover := time.Since(start)
	// Collaborative transfer must be far faster than the 160ms backoff.
	if handover > 100*time.Millisecond {
		t.Fatalf("hand-over took %v — lease release not honoured", handover)
	}
	if v := mustDo(t, b, "GET", "k"); v.Text() != "v" {
		t.Fatalf("GET after hand-over = %v", v)
	}
}

// TestDemotedPrimaryRejoinsAsReplica: after fencing, the old primary
// resynchronizes from durable sources and serves as a replica again.
func TestDemotedPrimaryRejoinsAsReplica(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)
	mustDo(t, a, "SET", "k", "v1")

	if err := a.StepDown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitRole(t, b, election.RolePrimary, 2*time.Second)
	mustDo(t, b, "SET", "k", "v2")

	// a rejoins as a replica and converges on the new history.
	waitRole(t, a, election.RoleReplica, 3*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := a.DoReadOnly(context.Background(), [][]byte{[]byte("GET"), []byte("k")})
		if err == nil && v.Text() == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old primary never converged: %v %v", v, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWholeLogOutageHaltsWritesPreservesData: if the transaction log
// service itself is unreachable, writes fail (no silent data loss) and
// service resumes when it returns.
func TestWholeLogOutageHaltsWritesPreservesData(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	mustDo(t, a, "SET", "k", "v")

	svc.SetUnavailable(true)
	v, err := a.Do(context.Background(), [][]byte{[]byte("SET"), []byte("k"), []byte("lost?")})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() {
		t.Fatalf("write acknowledged during log outage: %v", v)
	}
	svc.SetUnavailable(false)
	waitRole(t, a, election.RolePrimary, 5*time.Second)
	if got := mustDo(t, a, "GET", "k"); got.Text() != "v" {
		t.Fatalf("GET = %v; committed value must survive the outage", got)
	}
}

// TestWaitCommand: WAIT degenerates to a durability barrier (§2.2.2 — in
// MemoryDB acknowledged writes are already multi-AZ durable).
func TestWaitCommand(t *testing.T) {
	svc := testService(t, netsim.Fixed(2*time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	mustDo(t, a, "SET", "k", "v")
	v := mustDo(t, a, "WAIT", "2", "0")
	if v.Int != 2 {
		t.Fatalf("WAIT = %v", v)
	}
}

// TestMonitoringCountersAdvance sanity-checks the Stats surface used by
// the monitoring service.
func TestMonitoringCountersAdvance(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	a := testNode(t, "node-a", log, nil)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	mustDo(t, a, "SET", "k", "v")
	mustDo(t, a, "GET", "k")
	st := a.Stats().Snapshot()
	if st.Commands < 2 || st.Mutations < 1 || st.Promotions < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if a.AppliedSeq() == 0 && st.EntriesApplied == 0 {
		// Primary does not apply, but AppliedSeq was set at promotion.
		t.Fatalf("applied seq = %d", a.AppliedSeq())
	}
}
