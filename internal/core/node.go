// Package core implements the MemoryDB node: a Redis-compatible execution
// engine whose replication stream is intercepted and redirected into the
// durable multi-AZ transaction log (paper §3). A primary executes
// mutations locally, appends their effects to the log, and withholds
// client replies through the tracker until the log acknowledges
// durability. Replicas tail the log and apply the same effects, giving an
// eventually consistent copy that is always a prefix of the committed
// history — which is what makes consistent failover possible (§4.1.2).
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/netsim"
	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/retry"
	"memorydb/internal/snapshot"
	"memorydb/internal/store"
	"memorydb/internal/trace"
	"memorydb/internal/tracker"
	"memorydb/internal/txlog"
)

// Config parameterizes a node.
type Config struct {
	NodeID  string
	ShardID string
	// AZ is the availability zone label (placement/monitoring metadata).
	AZ string
	// Log is this shard's transaction log.
	Log *txlog.Log
	// Clock drives leases, TTLs and timeouts. Defaults to the wall clock.
	Clock clock.Clock
	// EngineVersion tags replication records for upgrade protection
	// (§7.1). Defaults to engine.Version.
	EngineVersion uint32
	// Lease, Backoff, RenewEvery configure leader election (§4.1.3).
	// Backoff must exceed Lease. Defaults: 2s / 2.5s / 500ms.
	Lease, Backoff, RenewEvery time.Duration
	// Snapshots, when set, enables snapshot-based recovery: restores load
	// the latest snapshot from S3 and replay only the log suffix (§4.2.1).
	Snapshots *snapshot.Manager
	// ChecksumEvery makes the primary inject its running log checksum as
	// an EntryChecksum after every N data entries (§7.2.1). Defaults to
	// 64; negative disables injection.
	ChecksumEvery int
	// GlobalReadGate is an ablation knob: when set, every read waits for
	// ALL outstanding writes instead of only writes covering its keys.
	// MemoryDB uses key-level hazards (§3.2); this measures what that
	// design choice buys.
	GlobalReadGate bool
	// MaxBatchRecords caps how many mutation records group commit may
	// coalesce into one transaction-log entry. While a quorum append is in
	// flight the workloop keeps executing queued mutations and buffers
	// their effects; the buffer is flushed as a single entry when the
	// in-flight append acknowledges or a cap is hit. 1 disables batching
	// (every mutation gets its own entry — the pre-group-commit behavior).
	// Defaults to 64.
	MaxBatchRecords int
	// MaxBatchBytes caps the combined payload size of one batched entry
	// (flush-on-bytes). Defaults to 256 KiB.
	MaxBatchBytes int
	// MaxInflightAppends is the group-commit pipeline depth: the buffer is
	// flushed eagerly while fewer than this many batched data appends are
	// awaiting quorum acknowledgement, and held (accumulating records)
	// once the window is full. Depth 1 is classic group commit — flush
	// only when the log pipeline is idle — which makes every writer under
	// sustained load wait ~2 commit latencies (the in-flight entry, then
	// its own). A deeper window overlaps batches so a write waits only
	// ~1/depth of a commit before its batch is appended. The window is
	// per execution shard. Defaults to 8.
	MaxInflightAppends int
	// Shards is the number of keyspace-sharded execution workloops. Each
	// shard owns a contiguous range of store parts (crc16 slot ranges) and
	// runs its own workloop goroutine, task queue and group-commit buffer;
	// all shards feed one shared transaction-log sequencer that assigns
	// commit order at flush time. Single-key commands route by slot and
	// execute in parallel; cross-slot and whole-keyspace commands take a
	// barrier path that quiesces the affected shards. 1 reproduces the
	// single-workloop behavior exactly. Defaults to the MEMORYDB_SHARDS
	// environment variable when set, otherwise GOMAXPROCS, clamped to
	// [1, store.NumParts].
	Shards int
	// Partition, when set, injects a network partition between THIS node
	// and the transaction log service: its appends and reads fail while
	// the flag is raised, leaving other nodes unaffected (§4.1 failure
	// modes).
	Partition *netsim.Flag
	// OnRoleChange, when set, is invoked (from node goroutines) after
	// every role transition — the cluster bus uses it to propagate role
	// changes to the rest of the cluster.
	OnRoleChange func(nodeID string, role election.Role, epoch uint64)
	// ReplicaPoll is the idle polling interval of the replica log tailer.
	// Defaults to 1ms.
	ReplicaPoll time.Duration
	// ReplicaReadTimeout bounds how long a linearizable replica read may
	// park waiting for the replica's applied position to cover the
	// committed tail captured at read arrival. On expiry the read
	// degrades (bounded-stale serve if the client opted in, else a
	// REDIRECT to the primary) instead of hanging on a feed that may
	// never advance. Defaults to 50ms.
	ReplicaReadTimeout time.Duration
	// RetryBase and RetryMax shape the capped exponential backoff (full
	// jitter) used when a transaction-log call fails transiently. Retrying
	// is bounded by the leadership lease: a primary that cannot reach the
	// log keeps replies withheld and retries until the append lands, the
	// log fences it, or its lease runs out. Defaults: 1ms / 16ms.
	RetryBase, RetryMax time.Duration
	// RetrySeed makes retry jitter deterministic for fixed-seed chaos
	// runs. Each node salts it so a fleet does not retry in lockstep.
	RetrySeed int64
	// Faults, when set, is the node's crash-fault registry: named sites on
	// the critical write paths consult it and may crash the node exactly
	// there (the node freezes in place as a killed process would), stall,
	// or fail transiently. Production leaves it nil — a nil registry is a
	// no-op costing one pointer check per site.
	Faults *faultpoint.Registry
	// Obs, when set, is a shared observability registry: the node records
	// write-path stage latencies, per-command histograms, slowlog entries
	// and sampled traces into it, and the server front-end / log service /
	// metrics endpoint read the same instance. Nil creates a private
	// registry (instrumentation is always on unless NoObs is set).
	Obs *obs.Metrics
	// NoObs disables latency instrumentation entirely. This is the
	// ablation arm of the overhead-guard benchmark, not a production
	// setting.
	NoObs bool
	// SlowlogThreshold, TraceSampleRate and TraceSeed configure the
	// private registry created when Obs is nil: commands slower than the
	// threshold end-to-end enter the slowlog (default 10ms), and
	// TraceSampleRate in [0,1] of commands get a stage-breakdown trace
	// (default 0 — sampling off keeps the hot path allocation-free).
	SlowlogThreshold time.Duration
	TraceSampleRate  float64
	TraceSeed        int64
	// Alarms, when set, is surfaced in INFO's # Slowlog section so
	// operational alarms (snapshot quarantines, primaryless shards) are
	// visible next to the latency outliers they usually explain.
	Alarms *obs.AlarmLog
	// Trace, when set, enables cross-node causal tracing: sampled
	// commands carry a span context from submit through group commit
	// onto the log entry, and this node's stages (plus replica applies
	// of remote entries) are recorded as spans into the shared
	// collector. Nil disables tracing entirely (zero overhead).
	Trace *trace.Collector
	// Flight, when set, is this node's black-box flight recorder ring.
	// Nil creates a private one — the recorder is always on. The cluster
	// layer passes identity-keyed rings so a restarted node continues
	// its predecessor's timeline.
	Flight *trace.Flight
	// FlightEvents sizes the private flight ring created when Flight is
	// nil. Defaults to the MEMORYDB_FLIGHT_EVENTS environment variable
	// when set, otherwise trace.DefaultFlightEvents.
	FlightEvents int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.EngineVersion == 0 {
		c.EngineVersion = engine.Version
	}
	if c.Lease == 0 {
		c.Lease = 2 * time.Second
	}
	if c.Backoff == 0 {
		c.Backoff = c.Lease + c.Lease/4
	}
	if c.RenewEvery == 0 {
		c.RenewEvery = c.Lease / 4
	}
	if c.ReplicaPoll == 0 {
		c.ReplicaPoll = time.Millisecond
	}
	if c.ReplicaReadTimeout == 0 {
		c.ReplicaReadTimeout = 50 * time.Millisecond
	}
	if c.ChecksumEvery == 0 {
		c.ChecksumEvery = 64
	}
	if c.MaxBatchRecords == 0 {
		c.MaxBatchRecords = 64
	}
	if c.MaxBatchRecords < 1 {
		c.MaxBatchRecords = 1
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
	if c.MaxInflightAppends == 0 {
		c.MaxInflightAppends = 8
	}
	if c.MaxInflightAppends < 1 {
		c.MaxInflightAppends = 1
	}
	if c.RetryBase == 0 {
		c.RetryBase = time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 16 * time.Millisecond
	}
	if c.Shards == 0 {
		if env := os.Getenv("MEMORYDB_SHARDS"); env != "" {
			if v, err := strconv.Atoi(env); err == nil {
				c.Shards = v
			}
		}
		if c.Shards == 0 {
			c.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > store.NumParts {
		c.Shards = store.NumParts
	}
	if c.FlightEvents == 0 {
		if env := os.Getenv("MEMORYDB_FLIGHT_EVENTS"); env != "" {
			if v, err := strconv.Atoi(env); err == nil {
				c.FlightEvents = v
			}
		}
	}
	return c
}

// Errors surfaced by the node API.
var (
	ErrStopped = errors.New("core: node stopped")
)

// Node is one MemoryDB data-plane node (primary or replica of a shard).
type Node struct {
	cfg Config
	clk clock.Clock

	mu      sync.Mutex
	role    election.Role
	epoch   uint64
	lease   *election.Lease
	trk     *tracker.Tracker
	stalled bool // upgrade protection tripped (§7.1)
	// slotGate, when set by the cluster layer, admits or rejects client
	// commands by slot (MOVED / CROSSSLOT / migration write block, §5.2).
	slotGate func(name string, keys []string, writing bool) (resp.Value, bool)

	// shards are the keyspace-sharded execution workloops. Each owns a
	// contiguous range of store parts, a task queue, an engine over the
	// shared DB, and a group-commit buffer. Immutable after NewNode; the
	// per-shard state inside is owned by that shard's workloop goroutine
	// (or by a barrier coordinator while the shard is parked).
	shards []*nodeShard
	// gEng is the whole-keyspace engine barrier operations execute on
	// (cross-slot commands, FLUSHALL, KEYS, replica apply at Shards>1).
	// Guarded by barrierMu together with parked shards.
	gEng *engine.Engine
	// dbPtr is the current keyspace, for lock-free monitoring reads
	// (INFO keyspace section). Swapped by installState.
	dbPtr atomic.Pointer[store.DB]

	// barrierMu serializes barrier coordinators: cross-slot/whole-keyspace
	// commands, replica apply at Shards>1, control entries, and state
	// installs (promotion, resync). Lock order: barrierMu → seqMu → mu.
	barrierMu sync.Mutex

	// Sequencer state: every transaction-log append on this node is issued
	// while holding seqMu, so shards flushing concurrently receive commit
	// order at flush time. Holding seqMu across a (lease-bounded) append
	// retry is deliberate — it is exactly the serialization the single
	// workloop used to provide. Never acquire seqMu while holding mu.
	seqMu      sync.Mutex
	lastIssued txlog.EntryID
	// Running checksum over data payloads this primary appended, chained
	// from the value at its leadership claim; injected into the log
	// every ChecksumEvery data entries (§7.2.1). Guarded by seqMu.
	runningChecksum uint64
	dataSinceSum    int

	// applied is owned by the role loop — the single apply driver on both
	// the replica tail path and the install paths (promotion, resync).
	applied txlog.EntryID
	// appliedSeq mirrors applied.Seq for lock-free monitoring reads.
	appliedSeq atomic.Uint64
	// readGate parks linearizable replica reads until the applied
	// position covers their captured committed tail, and tracks the
	// replica-local freshness proof bounded-staleness serving needs.
	// Advanced by applyEntry and installState; lives across role changes
	// (a promoted primary's install releases every parked read).
	readGate *ReadGate

	// retryPol shapes transient-failure retries against the log service.
	retryPol retry.Policy
	// degradedSince is the UnixNano timestamp when the node first saw a
	// partial-quorum commit (fewer acks than AZs), 0 while fully
	// replicated. Closed out into Stats.DegradedMillis on the first
	// full-replication commit after the window.
	degradedSince atomic.Int64

	// frozenCh gates every node goroutine while the node is "crashed":
	// non-nil while frozen (goroutines park on it at their next gate),
	// nil while running. Closed and nilled by Thaw. Guarded by frozenMu —
	// deliberately separate from mu, so freezing never contends with the
	// serving paths it is about to halt.
	frozenMu sync.Mutex
	frozenCh chan struct{}

	roleChanged chan struct{}
	stopCtx     context.Context
	stopFn      context.CancelFunc
	wg          sync.WaitGroup

	stats Stats

	// obs is the observability registry (nil when Config.NoObs). Histogram
	// recording is lock-free, so every goroutine may record; the map-backed
	// per-command lookup is RWMutex-guarded inside obs.
	obs *obs.Metrics

	// trace is the causal-tracing collector (nil = tracing off); flight
	// is the always-on black-box event ring.
	trace  *trace.Collector
	flight *trace.Flight
}

// Stats are cumulative node counters. Fields are atomics rather than a
// mutex-guarded struct: they are bumped on every command in the workloop
// hot path, where a closure-plus-lock per increment is measurable.
type Stats struct {
	Commands         atomic.Int64
	Mutations        atomic.Int64
	GatedReads       atomic.Int64
	AppendsFailed    atomic.Int64
	Demotions        atomic.Int64
	Promotions       atomic.Int64
	EntriesApplied   atomic.Int64
	SnapshotRestores atomic.Int64
	// BatchFlushes counts data entries appended by group commit;
	// BatchedRecords counts the mutation records they carried.
	// BatchedRecords/BatchFlushes is the node-side mean batch size.
	BatchFlushes   atomic.Int64
	BatchedRecords atomic.Int64
	// AppendsRetried counts transient append failures absorbed by the
	// retry discipline (data flushes, checksums, control entries);
	// RenewalsRetried counts the same for lease renewals. Neither implies
	// a demotion — that is exactly the point.
	AppendsRetried  atomic.Int64
	RenewalsRetried atomic.Int64
	// DegradedMillis accumulates time spent in degraded state: backoff
	// sleeps while retrying transient log failures, plus windows during
	// which commits carried fewer than AZCount acknowledgements.
	DegradedMillis atomic.Int64
	// TornSnapshotsDetected counts corrupt or torn snapshots this node's
	// restore path skipped (checksum/frame gate, §7.2.1) before finding a
	// usable one. Nonzero means recovery fell back to an older S3 version
	// or pure log replay instead of failing.
	TornSnapshotsDetected atomic.Int64
	// ReaderRebootstraps counts replica tailers that hit the log's trim
	// base (or a quarantined segment) and re-bootstrapped from the latest
	// usable snapshot in place — without a demotion. Normal background
	// noise on a trimming cluster, unlike LogGapRetries.
	ReaderRebootstraps atomic.Int64
	// LogGapRetries counts re-bootstraps that found the log trimmed past
	// the newest usable snapshot (ErrLogTrimmedGap) and had to wait for a
	// fresh snapshot. Nonzero means the trim coordinator violated its
	// safety invariant — always alarm-worthy.
	LogGapRetries atomic.Int64
	// BarrierOps counts commands that took the barrier path (cross-slot,
	// whole-keyspace, WAIT at Shards>1); CrossSlotOps counts the subset
	// whose keys spanned more than one execution shard.
	BarrierOps   atomic.Int64
	CrossSlotOps atomic.Int64
	// Consistent replica read ladder outcomes: ReplicaReadsServed counts
	// reads served linearizably on this replica after the freshness
	// proof; ReplicaReadsStale counts reads served under an explicit
	// client-declared staleness bound after the proof failed or timed
	// out; ReplicaReadsRedirected counts reads bounced to the primary
	// (the final rung — never a silent stale serve). WatermarksFenced
	// counts piggybacked primary watermarks rejected by epoch fencing
	// (a deposed primary's view must not feed staleness accounting).
	ReplicaReadsServed     atomic.Int64
	ReplicaReadsStale      atomic.Int64
	ReplicaReadsRedirected atomic.Int64
	WatermarksFenced       atomic.Int64
}

// StatsView is a plain copy of the counters at one instant.
type StatsView struct {
	Commands         int64
	Mutations        int64
	GatedReads       int64
	AppendsFailed    int64
	Demotions        int64
	Promotions       int64
	EntriesApplied   int64
	SnapshotRestores int64
	BatchFlushes     int64
	BatchedRecords   int64
	AppendsRetried   int64
	RenewalsRetried  int64
	DegradedMillis   int64

	TornSnapshotsDetected int64
	ReaderRebootstraps    int64
	LogGapRetries         int64
	BarrierOps            int64
	CrossSlotOps          int64

	ReplicaReadsServed     int64
	ReplicaReadsStale      int64
	ReplicaReadsRedirected int64
	WatermarksFenced       int64
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() StatsView {
	return StatsView{
		Commands:         s.Commands.Load(),
		Mutations:        s.Mutations.Load(),
		GatedReads:       s.GatedReads.Load(),
		AppendsFailed:    s.AppendsFailed.Load(),
		Demotions:        s.Demotions.Load(),
		Promotions:       s.Promotions.Load(),
		EntriesApplied:   s.EntriesApplied.Load(),
		SnapshotRestores: s.SnapshotRestores.Load(),
		BatchFlushes:     s.BatchFlushes.Load(),
		BatchedRecords:   s.BatchedRecords.Load(),
		AppendsRetried:   s.AppendsRetried.Load(),
		RenewalsRetried:  s.RenewalsRetried.Load(),
		DegradedMillis:   s.DegradedMillis.Load(),

		TornSnapshotsDetected: s.TornSnapshotsDetected.Load(),
		ReaderRebootstraps:    s.ReaderRebootstraps.Load(),
		LogGapRetries:         s.LogGapRetries.Load(),
		BarrierOps:            s.BarrierOps.Load(),
		CrossSlotOps:          s.CrossSlotOps.Load(),

		ReplicaReadsServed:     s.ReplicaReadsServed.Load(),
		ReplicaReadsStale:      s.ReplicaReadsStale.Load(),
		ReplicaReadsRedirected: s.ReplicaReadsRedirected.Load(),
		WatermarksFenced:       s.WatermarksFenced.Load(),
	}
}

// NewNode constructs a node; Start launches it. All nodes start as
// replicas (§4.2: "new nodes always start up as replicas").
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Log == nil {
		return nil, errors.New("core: Config.Log is required")
	}
	if cfg.Backoff <= cfg.Lease {
		return nil, fmt.Errorf("core: backoff (%v) must be strictly greater than lease (%v)", cfg.Backoff, cfg.Lease)
	}
	n := &Node{
		cfg:         cfg,
		clk:         cfg.Clock,
		role:        election.RoleReplica,
		trk:         tracker.New(0),
		readGate:    NewReadGate(0),
		roleChanged: make(chan struct{}, 4),
		retryPol: retry.Policy{
			Base:  cfg.RetryBase,
			Max:   cfg.RetryMax,
			Clock: cfg.Clock,
			Seed:  retry.SaltSeed(cfg.RetrySeed),
		},
	}
	db := store.NewDB()
	n.dbPtr.Store(db)
	n.gEng = engine.NewShared(cfg.Clock, db)
	n.shards = make([]*nodeShard, cfg.Shards)
	for i := range n.shards {
		n.shards[i] = &nodeShard{
			idx:         i,
			n:           n,
			eng:         engine.NewShared(cfg.Clock, db),
			tasks:       make(chan *task, 4096),
			appendAcked: make(chan struct{}, 1),
			partLo:      ceilDiv(i*store.NumParts, cfg.Shards),
			partHi:      ceilDiv((i+1)*store.NumParts, cfg.Shards),
		}
	}
	n.stopCtx, n.stopFn = context.WithCancel(context.Background())
	n.trace = cfg.Trace
	n.flight = cfg.Flight
	if n.flight == nil {
		n.flight = trace.NewFlight(cfg.NodeID, cfg.FlightEvents)
	}
	n.gEng.SetTrace(n.trace)
	n.gEng.SetFlight(n.flight)
	for _, sh := range n.shards {
		sh.eng.SetTrace(n.trace)
		sh.eng.SetFlight(n.flight)
	}
	if cfg.Faults != nil {
		// Injected faults that actually fire land on the flight timeline,
		// so a failed chaos run's report shows the nemesis next to the
		// transitions it caused.
		fl := n.flight
		cfg.Faults.SetObserver(func(site string, k faultpoint.Kind) {
			fl.Recordf(trace.EvFaultFire, 0, "%s (%s)", site, k)
		})
	}
	if !cfg.NoObs {
		n.obs = cfg.Obs
		if n.obs == nil {
			n.obs = obs.New(obs.Options{
				SlowlogThreshold: cfg.SlowlogThreshold,
				TraceSampleRate:  cfg.TraceSampleRate,
				TraceSeed:        cfg.TraceSeed,
			})
		}
		n.gEng.SetObs(n.obs)
		for _, sh := range n.shards {
			sh.eng.SetObs(n.obs)
		}
		n.obs.EnsureShards(len(n.shards))
		n.registerCounters()
	}
	return n, nil
}

// Obs returns the node's observability registry (nil when disabled).
func (n *Node) Obs() *obs.Metrics { return n.obs }

// FlightRecorder returns the node's black-box event ring (never nil).
func (n *Node) FlightRecorder() *trace.Flight { return n.flight }

// TraceCollector returns the node's span collector (nil = tracing off).
func (n *Node) TraceCollector() *trace.Collector { return n.trace }

// ID returns the node ID.
func (n *Node) ID() string { return n.cfg.NodeID }

// ShardID returns the shard this node serves.
func (n *Node) ShardID() string { return n.cfg.ShardID }

// AZ returns the node's availability zone label.
func (n *Node) AZ() string { return n.cfg.AZ }

// Role returns the node's current role.
func (n *Node) Role() election.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Epoch returns the node's current leadership epoch view.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Stalled reports whether upgrade protection has stopped this replica
// from consuming the log (§7.1).
func (n *Node) Stalled() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stalled
}

// Stats exposes the node's counters.
func (n *Node) Stats() *Stats { return &n.stats }

// Stopped reports whether the node has been stopped.
func (n *Node) Stopped() bool { return n.stopCtx.Err() != nil }

// AppliedSeq returns the log sequence this node has applied through —
// the monitoring view of replica lag.
func (n *Node) AppliedSeq() uint64 { return n.appliedSeq.Load() }

// EngineVersion returns the engine version this node runs.
func (n *Node) EngineVersion() uint32 { return n.cfg.EngineVersion }

// Start launches the shard workloops and role management.
func (n *Node) Start() {
	n.wg.Add(len(n.shards) + 1)
	for _, sh := range n.shards {
		go sh.workloop()
	}
	go n.roleLoop()
}

// NumShards returns the node's execution-shard count.
func (n *Node) NumShards() int { return len(n.shards) }

// QueueDepths returns the instantaneous task-queue depth of every
// execution shard (monitoring).
func (n *Node) QueueDepths() []int {
	out := make([]int, len(n.shards))
	for i, sh := range n.shards {
		out[i] = len(sh.tasks)
	}
	return out
}

// lastIssuedSeq reads the sequencer tail (the highest log sequence this
// node has issued an append for).
func (n *Node) lastIssuedSeq() uint64 {
	n.seqMu.Lock()
	defer n.seqMu.Unlock()
	return n.lastIssued.Seq
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Stop terminates the node. Pending gated replies are aborted.
func (n *Node) Stop() {
	n.stopFn()
	n.mu.Lock()
	trk := n.trk
	n.mu.Unlock()
	trk.Abort()
	n.readGate.Stop()
	n.wg.Wait()
}

// setRole transitions the node's role under lock and notifies the role
// loop and the cluster bus.
func (n *Node) setRole(role election.Role, epoch uint64) {
	n.mu.Lock()
	n.role = role
	if epoch > n.epoch {
		n.epoch = epoch
	}
	cb := n.cfg.OnRoleChange
	n.mu.Unlock()
	select {
	case n.roleChanged <- struct{}{}:
	default:
	}
	if cb != nil {
		cb(n.cfg.NodeID, role, epoch)
	}
	n.flight.Record(trace.EvRoleChange, epoch, role.String())
	switch role {
	case election.RolePrimary:
		n.stats.Promotions.Add(1)
	case election.RoleDemoted:
		n.stats.Demotions.Add(1)
	}
}

// partitioned reports whether this node is currently cut off from the
// transaction log service.
func (n *Node) partitioned() bool {
	return n.cfg.Partition != nil && n.cfg.Partition.On()
}

// Freeze halts the node as an OS-level kill would: every node goroutine
// parks at its next crash gate, no cleanup runs, no reply is delivered,
// and in-flight appends are left in limbo (entries the log already
// assigned still commit — the durable-but-unacknowledged window a real
// crash produces). The node can then either be discarded and replaced by
// a fresh process that resyncs from S3 + the log (cluster.Restart), or
// thawed in place as a zombie that must be fenced (cluster.Resurrect).
func (n *Node) Freeze() {
	n.frozenMu.Lock()
	if n.frozenCh == nil {
		n.frozenCh = make(chan struct{})
	}
	n.frozenMu.Unlock()
}

// Thaw resumes a frozen node exactly where it stopped — the zombie case:
// the stale process wakes believing whatever it believed at the kill
// instant, and only the log's conditional-append fencing (plus its
// expired lease) keeps it from acknowledging anything new.
func (n *Node) Thaw() {
	n.frozenMu.Lock()
	if n.frozenCh != nil {
		close(n.frozenCh)
		n.frozenCh = nil
	}
	n.frozenMu.Unlock()
}

// Frozen reports whether the node is currently crash-frozen.
func (n *Node) Frozen() bool {
	n.frozenMu.Lock()
	defer n.frozenMu.Unlock()
	return n.frozenCh != nil
}

// gate blocks while the node is frozen. It returns false when the node
// was stopped (the crashed process is being torn down for replacement) —
// callers must unwind without side effects; true means the node is live
// (possibly thawed as a zombie) and execution may continue.
func (n *Node) gate() bool {
	for {
		n.frozenMu.Lock()
		ch := n.frozenCh
		n.frozenMu.Unlock()
		if ch == nil {
			return n.stopCtx.Err() == nil
		}
		select {
		case <-ch:
		case <-n.stopCtx.Done():
			return false
		}
	}
}

// checkpoint is one crash-fault gate on a critical path: it first parks
// while the node is frozen, then consults the fault registry for the
// named site. A Crash decision freezes the node at this exact instant —
// the calling goroutine blocks mid-operation until the node is either
// stopped (restart path: returns ErrStopped, the caller unwinds) or
// thawed (zombie path: returns nil, the stale operation resumes and must
// be fenced by the log). Delay stalls, Error injects a transient service
// failure, Corrupt is meaningless on these paths and ignored.
func (n *Node) checkpoint(site string) error {
	if !n.gate() {
		return ErrStopped
	}
	if n.cfg.Faults == nil {
		return nil
	}
	switch d := n.cfg.Faults.Hit(site); d.Kind {
	case faultpoint.Crash:
		n.Freeze()
		if !n.gate() {
			return ErrStopped
		}
	case faultpoint.Delay:
		n.clk.Sleep(d.Delay)
	case faultpoint.Error:
		return txlog.ErrUnavailable
	}
	return nil
}

// startAppend wraps Log.StartAppend with the node-level partition check
// and the pre/post crash gates. A crash between assignment and return
// models the nastiest case: the log owns a durable entry the dead node
// never learned the ID of.
func (n *Node) startAppend(after txlog.EntryID, e txlog.Entry) (*txlog.Pending, error) {
	if err := n.checkpoint(faultpoint.SiteAppendPre); err != nil {
		return nil, err
	}
	if n.partitioned() {
		return nil, txlog.ErrUnavailable
	}
	p, err := n.cfg.Log.StartAppend(after, e)
	if err != nil {
		return nil, err
	}
	if err := n.checkpoint(faultpoint.SiteAppendPost); err != nil {
		return nil, err
	}
	return p, nil
}

// startAppendRetry is startAppend with the transient-failure retry
// discipline (§4.1.3): a transient error (service blip, below-quorum AZ
// set, partition) leaves the caller's log position unchanged, so the
// identical append is retried under capped exponential backoff with full
// jitter until it lands, the log fences us (fatal — returned immediately),
// or the leadership lease runs out. The lease is the natural deadline:
// renewals are workloop tasks, and while the workloop blocks here the
// lease cannot extend, so exhaustion and self-demotion coincide exactly as
// the paper prescribes. retried counts retry attempts into Stats.
func (n *Node) startAppendRetry(after txlog.EntryID, e txlog.Entry, retried *atomic.Int64) (*txlog.Pending, error) {
	p, err := n.startAppend(after, e)
	if err == nil || !txlog.IsTransient(err) {
		return p, err
	}
	bo := n.retryPol.New()
	defer func() {
		// Backoff sleeps are time the primary spent unable to commit:
		// degraded but available (replies withheld, no errors surfaced).
		if ms := bo.Slept().Milliseconds(); ms > 0 {
			n.stats.DegradedMillis.Add(ms)
		}
	}()
	for {
		n.mu.Lock()
		lease := n.lease
		n.mu.Unlock()
		if lease == nil || !lease.Valid() || n.stopCtx.Err() != nil {
			return nil, err
		}
		retried.Add(1)
		bo.Sleep()
		p, err = n.startAppend(after, e)
		if err == nil || !txlog.IsTransient(err) {
			return p, err
		}
	}
}

// noteAZHealth folds one committed append's acknowledgement count into the
// degraded-time accounting: the first partial-quorum commit opens a
// degraded window, the first fully replicated commit after it closes the
// window into Stats.DegradedMillis. Called from append-waiter goroutines.
func (n *Node) noteAZHealth(p *txlog.Pending) {
	if p.Acks() < p.AZTotal() {
		n.degradedSince.CompareAndSwap(0, n.clk.Now().UnixNano())
		return
	}
	if since := n.degradedSince.Swap(0); since != 0 {
		if ms := (n.clk.Now().UnixNano() - since) / int64(time.Millisecond); ms > 0 {
			n.stats.DegradedMillis.Add(ms)
		}
	}
}
