package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

// TestSingleAZDownNoDemotionNoErrors is the first availability acceptance
// criterion: with exactly one AZ replica down the quorum still assembles,
// so writes keep committing — no demotion, no client-visible errors, just
// degraded commit latency.
func TestSingleAZDownNoDemotionNoErrors(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { singleAZDownNoDemotion(t, mode.batch) })
	}
}

func singleAZDownNoDemotion(t *testing.T, batch int) {
	svc := testService(t, netsim.Fixed(500*time.Microsecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, batch)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	svc.AZ(0).SetDown(true)
	defer svc.AZ(0).SetDown(false)

	for i := 0; i < 25; i++ {
		mustDo(t, n, "SET", fmt.Sprintf("k%d", i), "v")
	}
	for i := 0; i < 25; i++ {
		if v := mustDo(t, n, "GET", fmt.Sprintf("k%d", i)); v.Text() != "v" {
			t.Fatalf("GET k%d = %v", i, v)
		}
	}
	if n.Role() != election.RolePrimary {
		t.Fatalf("role = %v after single-AZ outage, want primary", n.Role())
	}
	st := n.Stats().Snapshot()
	if st.Demotions != 0 {
		t.Fatalf("Demotions = %d under single-AZ outage, want 0", st.Demotions)
	}
	if !log.Degraded() {
		t.Fatal("log should report degraded with one AZ down")
	}
	if log.Stats().DegradedAppends == 0 {
		t.Fatal("expected degraded (partial-ack) appends recorded")
	}
}

// TestServiceBlipShorterThanLeaseSurvives is the second criterion: a
// whole-service outage shorter than the lease is absorbed by the retry
// loop — the write blocks with its reply withheld, lands after the blip,
// and the leader never demotes.
func TestServiceBlipShorterThanLeaseSurvives(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { serviceBlipSurvives(t, mode.batch) })
	}
}

func serviceBlipSurvives(t *testing.T, batch int) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, batch) // 120ms lease
	waitRole(t, n, election.RolePrimary, 2*time.Second)
	mustDo(t, n, "SET", "warm", "up")

	const blip = 50 * time.Millisecond
	svc.SetUnavailable(true)
	go func() {
		time.Sleep(blip)
		svc.SetUnavailable(false)
	}()

	start := time.Now()
	v := mustDo(t, n, "SET", "k", "v") // must block through the blip, then succeed
	if v.Text() != "OK" {
		t.Fatalf("SET reply = %v", v)
	}
	if d := time.Since(start); d < blip/2 {
		t.Fatalf("write acknowledged in %v — during the outage?", d)
	}
	if got := mustDo(t, n, "GET", "k"); got.Text() != "v" {
		t.Fatalf("GET k = %v", got)
	}
	if n.Role() != election.RolePrimary {
		t.Fatalf("role = %v after blip, want primary", n.Role())
	}
	st := n.Stats().Snapshot()
	if st.Demotions != 0 {
		t.Fatalf("Demotions = %d after a sub-lease blip, want 0", st.Demotions)
	}
	if st.AppendsRetried == 0 {
		t.Fatal("expected AppendsRetried > 0: the blip must have been absorbed by retries")
	}
	if st.DegradedMillis == 0 {
		t.Fatal("expected DegradedMillis > 0 from backoff sleeps during the blip")
	}
}

// TestFencedAppendDemotesImmediately is the third criterion: a fenced
// append (ErrConditionFailed — another writer owns the tail) is fatal and
// demotes at once, with zero transient retries spent on it.
func TestFencedAppendDemotesImmediately(t *testing.T) {
	for _, mode := range batchModes {
		t.Run(mode.name, func(t *testing.T) { fencedAppendDemotes(t, mode.batch) })
	}
}

func fencedAppendDemotes(t *testing.T, batch int) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, batch)
	waitRole(t, n, election.RolePrimary, 2*time.Second)
	mustDo(t, n, "SET", "k", "v1")

	// Usurp the tail directly, as a competing writer would: the primary's
	// next append no longer follows the tail and must fence.
	for {
		if _, err := log.Append(context.Background(), log.AssignedTail(),
			txlog.Entry{Type: txlog.EntryData, Payload: []byte("usurper")}); err == nil {
			break
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && n.Role() == election.RolePrimary {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		n.Do(ctx, [][]byte{[]byte("SET"), []byte("k"), []byte("v2")})
		cancel()
		time.Sleep(2 * time.Millisecond)
	}
	if n.Role() == election.RolePrimary {
		t.Fatal("fenced primary never demoted")
	}
	st := n.Stats().Snapshot()
	if st.Demotions == 0 {
		t.Fatal("Demotions = 0, want >= 1")
	}
	if st.AppendsRetried != 0 || st.RenewalsRetried != 0 {
		t.Fatalf("fencing must not be retried: AppendsRetried=%d RenewalsRetried=%d",
			st.AppendsRetried, st.RenewalsRetried)
	}
}

// TestRobustnessCountersUnderAZFlap is the satellite counters test: a
// single-AZ flap opens a degraded window that lands in DegradedMillis,
// and a whole-service flap with no writes in flight drives the lease
// renewal path through its retry loop (RenewalsRetried) — all without a
// single demotion. The counters must also surface in INFO.
func TestRobustnessCountersUnderAZFlap(t *testing.T) {
	svc := testService(t, netsim.Fixed(200*time.Microsecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)
	mustDo(t, n, "SET", "warm", "up")

	// Single-AZ flap: partial-ack commits open the degraded window...
	svc.AZ(1).SetDown(true)
	mustDo(t, n, "SET", "a", "1")
	time.Sleep(40 * time.Millisecond)
	mustDo(t, n, "SET", "b", "2")
	// ...and the first full-replication commit after healing closes it.
	svc.AZ(1).SetDown(false)
	mustDo(t, n, "SET", "c", "3")

	st := n.Stats().Snapshot()
	if st.DegradedMillis < 30 {
		t.Fatalf("DegradedMillis = %d after a ~40ms single-AZ flap, want >= 30", st.DegradedMillis)
	}
	if st.Demotions != 0 {
		t.Fatalf("Demotions = %d, want 0", st.Demotions)
	}

	// Whole-service flap with no writes queued: the renewal tick itself
	// hits the outage and retries through it.
	svc.SetUnavailable(true)
	time.Sleep(45 * time.Millisecond) // > RenewEvery (30ms), < lease (120ms)
	svc.SetUnavailable(false)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && n.Stats().RenewalsRetried.Load() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	st = n.Stats().Snapshot()
	if st.RenewalsRetried == 0 {
		t.Fatal("RenewalsRetried = 0 after a whole-service flap spanning a renew tick")
	}
	if st.Demotions != 0 {
		t.Fatalf("Demotions = %d after sub-lease service flap, want 0", st.Demotions)
	}
	if n.Role() != election.RolePrimary {
		t.Fatalf("role = %v, want primary", n.Role())
	}

	info := mustDo(t, n, "INFO").Text()
	for _, field := range []string{"appends_retried:", "renewals_retried:", "degraded_millis:", "log_degraded:", "log_degraded_appends:"} {
		if !strings.Contains(info, field) {
			t.Fatalf("INFO missing %q:\n%s", field, info)
		}
	}
	if !strings.Contains(info, fmt.Sprintf("renewals_retried:%d", st.RenewalsRetried)) &&
		!strings.Contains(info, "renewals_retried:") {
		t.Fatalf("INFO renewals_retried mismatch:\n%s", info)
	}
}

// TestReplicaTailerSurvivesLogOutage: a replica polling the log across a
// service blip must not demote or restore — it reconnects and resumes
// applying from its cursor.
func TestReplicaTailerSurvivesLogOutage(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNode(t, "node-b", log, nil)
	waitRole(t, replica, election.RoleReplica, time.Second)

	mustDo(t, primary, "SET", "k1", "v1")
	waitApplied(t, replica, log.CommittedTail().Seq, time.Second)
	restoresBefore := replica.Stats().SnapshotRestores.Load()

	svc.SetUnavailable(true)
	time.Sleep(30 * time.Millisecond)
	svc.SetUnavailable(false)

	mustDo(t, primary, "SET", "k2", "v2")
	waitApplied(t, replica, log.CommittedTail().Seq, 2*time.Second)
	v, err := replica.DoReadOnly(context.Background(), [][]byte{[]byte("GET"), []byte("k2")})
	if err != nil || v.Text() != "v2" {
		t.Fatalf("replica read after outage: %v %v", v, err)
	}
	if got := replica.Stats().SnapshotRestores.Load(); got != restoresBefore {
		t.Fatalf("replica restored (%d -> %d) across a transient outage instead of reconnecting",
			restoresBefore, got)
	}
	if replica.Stats().Demotions.Load() != 0 {
		t.Fatal("replica demoted across a transient log outage")
	}
}

func waitApplied(t *testing.T, n *Node, seq uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if n.AppliedSeq() >= seq {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("node %s applied %d, want >= %d", n.ID(), n.AppliedSeq(), seq)
}
