package core

import (
	"sync"
	"time"

	"memorydb/internal/tracker"
)

// ReadGate is the replica-side half of the consistent read protocol.
//
// A linearizable replica read runs in three steps: (1) capture the log
// service's committed tail (txlog.Log.ConsistentTail) AFTER the read
// arrived, (2) park here until the replica's applied position covers
// the capture, (3) execute against the local engine. The gate itself is
// a thin wrapper over the tracker's sequence-gating machinery: Park is
// RegisterWrite against the captured seq, Advance is Commit at the
// applied position (called from the apply loop and from installState
// after snapshot resync/promotion, which release every parked read at
// once — a freshly promoted primary's claim position covers all prior
// commits).
//
// Beyond cover-gating, the gate keeps two pieces of freshness state the
// degradation ladder needs:
//
//   - freshAt: the replica-local instant the tailer last proved it was
//     fully caught up (drained the log to "no more entries" without an
//     availability error). Bounded-staleness reads serve iff
//     now-freshAt <= bound. The proof is replica-local — it never
//     trusts the primary's (possibly skewed) clock.
//   - watermark/epoch: the newest piggybacked primary watermark, fenced
//     by epoch. Entries reach the gate in log order, so an in-log epoch
//     can never regress (conditional append fences stale writers); the
//     epoch check is defense-in-depth against a replayed or buggy
//     feed, and WatermarksFenced counts any entry it rejects.
type ReadGate struct {
	trk *tracker.Tracker

	mu        sync.Mutex
	freshAt   time.Time
	watermark uint64
	epoch     uint64
	fenced    int64
	stopped   bool
}

// NewReadGate returns a gate whose applied position starts at seq.
func NewReadGate(seq uint64) *ReadGate {
	return &ReadGate{trk: tracker.New(seq)}
}

// Park registers deliver to fire once the applied position reaches seq
// (fires immediately if it already has). deliver's aborted argument is
// true when the gate is stopped before seq is covered; parked reads
// must then degrade, not execute. deliver may fire on another
// goroutine; it must not block (send to a buffered channel).
func (g *ReadGate) Park(seq uint64, deliver func(aborted bool)) {
	g.trk.RegisterWrite(seq, nil, deliver)
}

// Advance moves the applied position to seq, releasing every read
// parked at or below it. Called by the replica apply loop per applied
// entry and by installState after a snapshot swap or promotion.
func (g *ReadGate) Advance(seq uint64) {
	g.trk.Commit(seq)
}

// Applied returns the gate's current applied position.
func (g *ReadGate) Applied() uint64 { return g.trk.Committed() }

// Parked returns the number of reads currently parked.
func (g *ReadGate) Parked() int { return g.trk.PendingCount() }

// Stop aborts every parked read and makes future Parks abort
// immediately. Used on role change and node shutdown so no read ever
// waits on a feed that will not advance.
func (g *ReadGate) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
	g.trk.Abort()
}

// NoteFresh records a replica-local instant at which the tailer had
// provably drained the log (TryNext returned "nothing more" with no
// availability error). Under a partition or log outage the drain loop
// never reaches that point, so freshAt freezes and staleness grows
// without bound — exactly the signal the degradation ladder needs.
func (g *ReadGate) NoteFresh(now time.Time) {
	g.mu.Lock()
	if now.After(g.freshAt) {
		g.freshAt = now
	}
	g.mu.Unlock()
}

// Staleness returns the replica-local duration since the last
// caught-up proof. Before any proof it is effectively unbounded.
func (g *ReadGate) Staleness(now time.Time) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.freshAt.IsZero() {
		return time.Duration(1<<62 - 1)
	}
	return now.Sub(g.freshAt)
}

// NoteWatermark folds in a piggybacked (epoch, watermark) pair from a
// tailed entry. Pairs from an epoch older than the newest seen are
// fenced (dropped and counted): they came from a deposed primary and
// must not influence staleness accounting. Returns whether the pair
// was accepted.
func (g *ReadGate) NoteWatermark(epoch, wm uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch < g.epoch {
		g.fenced++
		return false
	}
	g.epoch = epoch
	if wm > g.watermark {
		g.watermark = wm
	}
	return true
}

// Watermark returns the newest accepted primary watermark and its epoch.
func (g *ReadGate) Watermark() (epoch, wm uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch, g.watermark
}

// Fenced returns how many watermark pairs were rejected by epoch fencing.
func (g *ReadGate) Fenced() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fenced
}
