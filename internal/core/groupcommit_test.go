package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

// TestGroupCommitBatchesUnderLoad drives many concurrent writers against a
// primary with realistic commit latency and checks that group commit
// actually coalesces: the log must contain data entries carrying more than
// one mutation record, while every write is still individually
// acknowledged and durable.
func TestGroupCommitBatchesUnderLoad(t *testing.T) {
	svc := testService(t, netsim.Fixed(3*time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	const writers = 32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := n.Do(ctx, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("{gc}k%d", i)), []byte("v")})
			if err != nil || v.IsError() {
				t.Errorf("write %d failed: %v %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()

	ls := log.Stats()
	if ls.MaxRecordsPerEntry < 2 {
		t.Fatalf("no batching observed: max records/entry = %d (stats %+v)", ls.MaxRecordsPerEntry, ls)
	}
	if ls.Records < writers {
		t.Fatalf("log saw %d records, want >= %d", ls.Records, writers)
	}
	st := n.Stats().Snapshot()
	if st.BatchFlushes == 0 || st.BatchedRecords < int64(writers) {
		t.Fatalf("node batch counters off: %+v", st)
	}
	if mean := float64(st.BatchedRecords) / float64(st.BatchFlushes); mean <= 1.0 {
		t.Fatalf("mean records/entry %.2f, want > 1 under concurrent load", mean)
	}
	// Every acknowledged write must be readable.
	for i := 0; i < writers; i++ {
		v := mustDo(t, n, "GET", fmt.Sprintf("{gc}k%d", i))
		if v.Text() != "v" {
			t.Fatalf("k%d lost after batched commit: %v", i, v)
		}
	}
}

// TestBatchSizeOneIsLegacyBehavior pins the MaxBatchRecords=1 contract:
// with batching disabled every data entry carries exactly one record, the
// pre-group-commit wire behavior.
func TestBatchSizeOneIsLegacyBehavior(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeBatch(t, "node-a", log, nil, 1)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n.Do(ctx, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v")})
		}(i)
	}
	wg.Wait()

	ls := log.Stats()
	if ls.MaxRecordsPerEntry > 1 {
		t.Fatalf("MaxBatchRecords=1 still batched: max records/entry = %d", ls.MaxRecordsPerEntry)
	}
	if ls.Records != ls.DataAppends {
		t.Fatalf("records (%d) != data appends (%d) with batching disabled", ls.Records, ls.DataAppends)
	}
}

// testNodeDepth1 builds a node with a group-commit pipeline depth of 1
// (classic group commit): the second concurrent mutation is guaranteed to
// buffer behind the in-flight append, which is what the buffered-path
// tests need to exercise deterministically.
func testNodeDepth1(t *testing.T, id string, log *txlog.Log) *Node {
	t.Helper()
	n, err := NewNode(Config{
		NodeID:             id,
		ShardID:            log.ShardID(),
		Log:                log,
		Lease:              120 * time.Millisecond,
		Backoff:            160 * time.Millisecond,
		RenewEvery:         30 * time.Millisecond,
		ReplicaPoll:        time.Millisecond,
		ChecksumEvery:      8,
		MaxInflightAppends: 1,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	return n
}

// TestReadGatedOnBufferedWrite is the read-your-writes check for the
// buffering window itself: a read that observes a mutation still sitting
// in the group-commit buffer (no log seq assigned yet) must not return
// before that mutation is durable.
func TestReadGatedOnBufferedWrite(t *testing.T) {
	commit := 10 * time.Millisecond
	svc := testService(t, netsim.Fixed(commit))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeDepth1(t, "node-a", log)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	// First write flushes immediately (no append in flight) and keeps the
	// pipeline busy for one commit latency...
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{rg}pipe"), []byte("x")})
	time.Sleep(2 * time.Millisecond)
	// ...so this second write lands in the group-commit buffer.
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		n.Do(ctx, [][]byte{[]byte("SET"), []byte("{rg}buffered"), []byte("v")})
	}()
	time.Sleep(2 * time.Millisecond)

	start := time.Now()
	v, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("{rg}buffered")})
	lat := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if v.Text() != "v" {
		t.Fatalf("read missed the buffered write: %v", v)
	}
	if lat < commit/2 {
		t.Fatalf("read of a buffered key returned in %v — before the batch could commit (%v)", lat, commit)
	}
	<-writeDone

	// An unrelated key is not gated on the batch (key-level hazards).
	mustDo(t, n, "SET", "{rg}other", "x")
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{rg}pipe"), []byte("y")})
	time.Sleep(2 * time.Millisecond)
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{rg}buffered"), []byte("w")})
	time.Sleep(2 * time.Millisecond)
	start = time.Now()
	if _, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("{rg}other")}); err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(start); lat > commit/2 {
		t.Fatalf("read of an unrelated key gated on the batch for %v", lat)
	}
}

// TestFlushFailureAbortsWholeBatch cuts the log off while mutations are
// buffered behind an in-flight append: the flush fails, so every buffered
// write must be answered with an error (never silence, never success) and
// the node must step down.
func TestFlushFailureAbortsWholeBatch(t *testing.T) {
	commit := 15 * time.Millisecond
	svc := testService(t, netsim.Fixed(commit))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeDepth1(t, "node-a", log)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	// Occupy the pipeline, then buffer two mutations behind it (one
	// slot, so they share a shard buffer at any shard count).
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{fb}pipe"), []byte("x")})
	time.Sleep(2 * time.Millisecond)
	type reply struct {
		isErr bool
		err   error
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			v, err := n.Do(ctx, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("{fb}doomed%d", i)), []byte("v")})
			replies <- reply{isErr: v.IsError(), err: err}
		}(i)
	}
	time.Sleep(2 * time.Millisecond)
	// Fail appends before the in-flight entry acknowledges: the flush of
	// the buffered batch will hit the unavailable log.
	log.FailAppends(true)
	defer log.FailAppends(false)

	for i := 0; i < 2; i++ {
		select {
		case r := <-replies:
			if r.err != nil {
				t.Fatalf("buffered write returned transport error: %v", r.err)
			}
			if !r.isErr {
				t.Fatal("buffered write acknowledged although its batch never reached the log")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("buffered write reply never delivered after flush failure")
		}
	}
	// The node steps down (it may already have resynced back to replica by
	// the time we look, so check the demotion counter, not the live role).
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().Demotions.Load() == 0 || n.Role() == election.RolePrimary {
		if time.Now().After(deadline) {
			t.Fatalf("node never stepped down after flush failure (role %v, demotions %d)",
				n.Role(), n.Stats().Demotions.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGlobalReadGateAppliesToKeyedReads is the regression test for the
// read-gate condition's operator precedence: with the GlobalReadGate
// ablation enabled, a read WITH keys must still wait for all outstanding
// writes — not only keyless full-keyspace reads.
func TestGlobalReadGateAppliesToKeyedReads(t *testing.T) {
	commit := 10 * time.Millisecond
	svc := testService(t, netsim.Fixed(commit))
	log, _ := svc.CreateLog("shard-1")
	n, err := NewNode(Config{
		NodeID:         "node-a",
		ShardID:        log.ShardID(),
		Log:            log,
		Lease:          120 * time.Millisecond,
		Backoff:        160 * time.Millisecond,
		RenewEvery:     30 * time.Millisecond,
		ReplicaPoll:    time.Millisecond,
		GlobalReadGate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	mustDo(t, n, "SET", "unrelated", "x")
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("hot"), []byte("v")})
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	if _, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("unrelated")}); err != nil {
		t.Fatal(err)
	}
	if lat := time.Since(start); lat < commit/2 {
		t.Fatalf("GlobalReadGate: keyed read of an unrelated key returned in %v — must wait for ALL outstanding writes (%v commit)", lat, commit)
	}
}

// TestWaitCoversBufferedWrites checks the WAIT barrier extends over
// mutations still in the group-commit buffer, which have no log seq yet.
func TestWaitCoversBufferedWrites(t *testing.T) {
	commit := 10 * time.Millisecond
	svc := testService(t, netsim.Fixed(commit))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeDepth1(t, "node-a", log)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{wb}pipe"), []byte("x")})
	time.Sleep(2 * time.Millisecond)
	go n.Do(ctx, [][]byte{[]byte("SET"), []byte("{wb}buffered"), []byte("v")})
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	v, err := n.Do(ctx, [][]byte{[]byte("WAIT"), []byte("0"), []byte("0")})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsError() {
		t.Fatalf("WAIT failed: %v", v)
	}
	if lat := time.Since(start); lat < commit/2 {
		t.Fatalf("WAIT returned in %v with a mutation still buffered (commit %v)", lat, commit)
	}
}
