package core

import (
	"strings"

	"memorydb/internal/engine"
	"memorydb/internal/store"
)

// Keyspace-sharded execution. The node partitions its keyspace into N
// sub-engines by crc16 slot range: store part i (a block of 256
// contiguous slots) belongs to shard i*N/64, so each shard owns a
// contiguous part range and every key has exactly one owner. Each shard
// runs its own workloop goroutine with a private task queue, engine view
// (over the shared DB) and group-commit buffer, so single-key commands on
// different shards execute fully in parallel. What stays global is commit
// order: every shard's flush acquires the node's sequencer (seqMu) to
// issue its transaction-log append, so the log remains one totally
// ordered stream regardless of shard count. Cross-slot and
// whole-keyspace commands take the barrier path in barrier.go.

// nodeShard is one keyspace execution shard.
type nodeShard struct {
	idx int
	n   *Node

	// Workloop-owned state (no locking: single consumer). A barrier
	// coordinator may touch eng and gc only while the shard is parked —
	// the park/release channel handshake provides the synchronization.
	eng *engine.Engine
	// gc is the shard's group-commit buffer: mutations executed while a
	// quorum append is in flight accumulate here until flush.
	gc groupCommit
	// migStream, when non-nil, mirrors effects touching the migrating
	// slot (the slot's owner shard holds the stream).
	migStream *MigrationStream

	tasks chan *task
	// appendAcked is a coalesced wakeup: append-waiter goroutines poke it
	// after one of this shard's flushed entries commits so the workloop
	// flushes the batch that accumulated behind the quorum round-trip.
	appendAcked chan struct{}

	// partLo and partHi bound the store parts this shard owns: [lo, hi).
	partLo, partHi int
}

// workloop is one shard's execution thread. It is pipelined for group
// commit: tasks already queued are drained greedily (mutations execute
// and buffer while a quorum append is in flight), append acknowledgements
// flush the accumulated batch, and the buffer never survives into a
// blocking wait while no append is outstanding.
func (sh *nodeShard) workloop() {
	n := sh.n
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCtx.Done():
			return
		case t := <-sh.tasks:
			n.handleTask(sh, t)
		case <-sh.appendAcked:
			// The oldest in-flight append committed: flush the batch that
			// accumulated behind its quorum round-trip.
			n.flushPending(sh)
		}
		// Greedy drain: execute everything already queued before blocking
		// again, so mutations coalesce into the pending batch instead of
		// paying one wakeup (and potentially one log entry) each.
	drain:
		for {
			select {
			case <-n.stopCtx.Done():
				return
			case t := <-sh.tasks:
				n.handleTask(sh, t)
			case <-sh.appendAcked:
				n.flushPending(sh)
			default:
				break drain
			}
		}
	}
}

// shardOfKey returns the index of the shard owning key.
func (n *Node) shardOfKey(key string) int {
	return store.PartOfKey(key) * len(n.shards) / store.NumParts
}

// shardOfSlot returns the index of the shard owning a crc16 slot.
func (n *Node) shardOfSlot(slot uint16) int {
	return store.PartOfSlot(slot) * len(n.shards) / store.NumParts
}

// ShardOfSlot reports which of shards execution shards owns slot — the
// routing a node with that shard count applies. Exported for benchmarks
// and load-placement tooling.
func ShardOfSlot(slot uint16, shards int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > store.NumParts {
		shards = store.NumParts
	}
	return store.PartOfSlot(slot) * shards / store.NumParts
}

// route decides where a client task executes: a single shard's workloop,
// or (true) the barrier path quiescing multiple shards. With one shard
// everything lands on it, reproducing the single-workloop node exactly.
func (n *Node) route(t *task) (*nodeShard, bool) {
	if len(n.shards) == 1 {
		return n.shards[0], false
	}
	switch t.kind {
	case taskCmd:
		name := strings.ToUpper(string(t.argv[0]))
		if name == "INFO" || isAlwaysLocal(name) {
			return n.shards[0], false
		}
		if name == "WAIT" {
			// WAIT barriers on every outstanding write, which at N>1 means
			// every shard's buffer must flush.
			return nil, true
		}
		cmd, known := engine.LookupCommand(name)
		if !known {
			// Unknown command: any shard can produce the error reply.
			return n.shards[0], false
		}
		keys := cmd.Keys(t.argv)
		if len(keys) == 0 {
			// Keyless: whole-keyspace writes (FLUSHALL) and reads whose
			// results reflect every shard (KEYS, DBSIZE, …) take the
			// barrier; other keyless commands are shard-agnostic.
			if cmd.Writes() || gatesOnFullKeyspace(name) {
				return nil, true
			}
			return n.shards[0], false
		}
		if n.cfg.GlobalReadGate && !cmd.Writes() {
			// Ablation knob: every read gates on ALL outstanding writes,
			// which requires every shard's buffer flushed.
			return nil, true
		}
		si := n.shardOfKey(keys[0])
		for _, k := range keys[1:] {
			if n.shardOfKey(k) != si {
				n.stats.CrossSlotOps.Add(1)
				return nil, true
			}
		}
		return n.shards[si], false
	case taskBatch:
		if n.cfg.GlobalReadGate {
			return nil, true
		}
		si := -1
		for _, argv := range t.batch {
			if len(argv) == 0 {
				continue
			}
			cmd, known := engine.LookupCommand(strings.ToUpper(string(argv[0])))
			if !known {
				continue
			}
			keys := cmd.Keys(argv)
			if len(keys) == 0 {
				if cmd.Writes() || gatesOnFullKeyspace(strings.ToUpper(string(argv[0]))) {
					return nil, true
				}
				continue
			}
			for _, k := range keys {
				s := n.shardOfKey(k)
				if si == -1 {
					si = s
				} else if s != si {
					n.stats.CrossSlotOps.Add(1)
					return nil, true
				}
			}
		}
		if si == -1 {
			si = 0
		}
		return n.shards[si], false
	}
	return n.shards[0], false
}

// slotShard returns the shard owning a crc16 slot (migration routing).
func (n *Node) slotShard(slot uint16) *nodeShard {
	return n.shards[n.shardOfSlot(slot)]
}
