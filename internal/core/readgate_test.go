package core

import (
	"testing"
	"time"
)

func TestReadGateParkAdvance(t *testing.T) {
	g := NewReadGate(10)

	// A read at or below the applied position fires immediately.
	fired := make(chan bool, 1)
	g.Park(10, func(aborted bool) { fired <- aborted })
	select {
	case aborted := <-fired:
		if aborted {
			t.Fatal("covered park delivered aborted")
		}
	default:
		t.Fatal("park at applied position did not fire immediately")
	}

	// A read above it parks until Advance covers it.
	g.Park(15, func(aborted bool) { fired <- aborted })
	if g.Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", g.Parked())
	}
	g.Advance(14)
	select {
	case <-fired:
		t.Fatal("park released before applied covered it")
	default:
	}
	g.Advance(15)
	select {
	case aborted := <-fired:
		if aborted {
			t.Fatal("covered park delivered aborted")
		}
	default:
		t.Fatal("park not released by covering Advance")
	}
	if got := g.Applied(); got != 15 {
		t.Fatalf("Applied = %d, want 15", got)
	}
}

func TestReadGateStopAbortsParkedAndFutureReads(t *testing.T) {
	g := NewReadGate(0)
	fired := make(chan bool, 2)
	g.Park(5, func(aborted bool) { fired <- aborted })
	g.Stop()
	if aborted := <-fired; !aborted {
		t.Fatal("Stop released a parked read as verified")
	}
	// Future parks abort immediately: no read may wait on a dead feed.
	g.Park(1, func(aborted bool) { fired <- aborted })
	select {
	case aborted := <-fired:
		if !aborted {
			t.Fatal("post-Stop park delivered verified")
		}
	default:
		t.Fatal("post-Stop park did not fire immediately")
	}
}

func TestReadGateFreshnessAccounting(t *testing.T) {
	g := NewReadGate(0)
	base := time.Now()

	// Before any caught-up proof, staleness is effectively unbounded.
	if s := g.Staleness(base); s < time.Hour {
		t.Fatalf("pre-proof staleness = %v, want unbounded", s)
	}
	g.NoteFresh(base)
	if s := g.Staleness(base.Add(10 * time.Millisecond)); s != 10*time.Millisecond {
		t.Fatalf("staleness = %v, want 10ms", s)
	}
	// freshAt is max-monotone: a late-arriving older proof cannot make
	// the replica look fresher or staler than the newest proof.
	g.NoteFresh(base.Add(-time.Second))
	if s := g.Staleness(base.Add(10 * time.Millisecond)); s != 10*time.Millisecond {
		t.Fatalf("staleness after stale NoteFresh = %v, want 10ms", s)
	}
	g.NoteFresh(base.Add(8 * time.Millisecond))
	if s := g.Staleness(base.Add(10 * time.Millisecond)); s != 2*time.Millisecond {
		t.Fatalf("staleness after newer NoteFresh = %v, want 2ms", s)
	}
}

func TestReadGateWatermarkEpochFencing(t *testing.T) {
	g := NewReadGate(0)
	if !g.NoteWatermark(2, 10) {
		t.Fatal("first watermark rejected")
	}
	// A deposed primary's epoch is fenced: dropped, counted, and it
	// cannot move the watermark.
	if g.NoteWatermark(1, 99) {
		t.Fatal("stale-epoch watermark accepted")
	}
	if epoch, wm := g.Watermark(); epoch != 2 || wm != 10 {
		t.Fatalf("after fenced note: epoch=%d wm=%d, want 2/10", epoch, wm)
	}
	if g.Fenced() != 1 {
		t.Fatalf("Fenced = %d, want 1", g.Fenced())
	}
	// Same-epoch watermarks are max-tracked (entries may piggyback a
	// watermark observed before a concurrent commit advanced it).
	if !g.NoteWatermark(2, 5) {
		t.Fatal("same-epoch watermark rejected")
	}
	if _, wm := g.Watermark(); wm != 10 {
		t.Fatalf("watermark regressed to %d", wm)
	}
	// A leadership entry advances the epoch with no watermark claim.
	if !g.NoteWatermark(3, 0) {
		t.Fatal("new-epoch note rejected")
	}
	if epoch, wm := g.Watermark(); epoch != 3 || wm != 10 {
		t.Fatalf("after epoch advance: epoch=%d wm=%d, want 3/10", epoch, wm)
	}
}
