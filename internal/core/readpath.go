package core

import (
	"context"
	"strings"
	"time"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// Consistent replica reads (the paper's §5 contract, Hermes-style local
// reads). A replica may serve a read linearizably once it PROVES its
// state covers everything acknowledged before the read arrived:
//
//  1. Capture: after the read arrives, fetch the committed tail from
//     the transaction log service (txlog.Log.ConsistentTail). The log —
//     not the primary's clock, not the piggybacked watermark — is the
//     authority: every acknowledged write has a sequence <= that tail,
//     and a partitioned replica cannot obtain a capture at all.
//  2. Park: wait in the ReadGate until the replica's applied position
//     covers the capture, bounded by Config.ReplicaReadTimeout.
//  3. Execute: run on the local engine. Applied positions only advance
//     (installState swaps state atomically under an all-shard barrier),
//     so the state at execution still covers the capture.
//
// On any freshness-proof failure — capture unavailable, park deadline,
// gate aborted — the read degrades down an explicit ladder:
// linearizable → bounded-stale (only if the client declared a bound it
// can tolerate, checked against the replica-local caught-up proof) →
// REDIRECT to the primary. A replica read is never silently served
// stale under a consistency level it did not meet.

// ReadConsistency selects a rung of the replica read ladder.
type ReadConsistency int

const (
	// ReadLinearizable (default): serve only with a freshness proof;
	// degrade straight to REDIRECT.
	ReadLinearizable ReadConsistency = iota
	// ReadBoundedStale: try the linearizable path first; if the proof
	// fails or times out, serve locally as long as the replica proved
	// itself caught up within ReadOpts.StalenessBound; else REDIRECT.
	ReadBoundedStale
	// ReadEventual: legacy replica read — serve immediately from local
	// state with no freshness claim.
	ReadEventual
)

// ReadOpts carries the client's declared consistency for one read.
type ReadOpts struct {
	Consistency ReadConsistency
	// StalenessBound is the maximum replica-local staleness a
	// ReadBoundedStale read tolerates. Zero means no tolerance (the
	// read degrades to REDIRECT like a linearizable one).
	StalenessBound time.Duration
}

// ReadOutcome reports which rung of the ladder actually served a read.
type ReadOutcome int

const (
	// ReadOutcomePrimary: the read did not take the replica-gated path
	// (primary/default execution, write command, or always-local).
	ReadOutcomePrimary ReadOutcome = iota
	// ReadOutcomeLinearizable: served on a replica after the freshness
	// proof succeeded.
	ReadOutcomeLinearizable
	// ReadOutcomeStale: served on a replica under the client's declared
	// staleness bound after the linearizable proof failed.
	ReadOutcomeStale
	// ReadOutcomeRedirected: degraded to a REDIRECT error; the client
	// should retry on the primary.
	ReadOutcomeRedirected
	// ReadOutcomeEventual: served with no freshness claim (client opted
	// into eventual consistency).
	ReadOutcomeEventual
)

// errRedirect is the bottom rung of the degradation ladder: the replica
// could not prove freshness (and no staleness bound admits the read),
// so the client must retry on the primary. The "REDIRECT" prefix is a
// routing hint the cluster client recognizes, like "MOVED".
var errRedirect = resp.Err("REDIRECT replica cannot prove freshness; retry on primary")

// IsRedirect reports whether a reply value is the replica-read REDIRECT
// signal (clients retry these on the primary).
func IsRedirect(v resp.Value) bool {
	return v.IsError() && strings.HasPrefix(string(v.Str), "REDIRECT")
}

// DoRead executes a read-eligible command under an explicit consistency
// level and reports which ladder rung served it. Non-read commands
// (writes, unknown, always-local, INFO/WAIT) fall through to the
// default execution path — on a replica the workloop rejects writes
// exactly as before.
func (n *Node) DoRead(ctx context.Context, argv [][]byte, opts ReadOpts) (resp.Value, ReadOutcome, error) {
	t := &task{kind: taskCmd, argv: argv, readonly: true}
	if len(argv) == 0 {
		v, err := n.submit(ctx, t)
		return v, ReadOutcomePrimary, err
	}
	name := strings.ToUpper(string(argv[0]))
	cmd, known := engine.LookupCommand(name)
	if !known || cmd.Writes() || isAlwaysLocal(name) || name == "INFO" || name == "WAIT" {
		v, err := n.submit(ctx, t)
		return v, ReadOutcomePrimary, err
	}
	if opts.Consistency == ReadEventual {
		t.readVerified = true
		v, err := n.submit(ctx, t)
		return v, ReadOutcomeEventual, err
	}
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role != election.RoleReplica || n.Frozen() {
		// The primary path is already linearizable (key-hazard gating);
		// demoted nodes fail in the workloop. A frozen node behaves like
		// a dead process: enqueue and let the caller time out rather
		// than emitting a REDIRECT no crashed process could send.
		v, err := n.submit(ctx, t)
		return v, ReadOutcomePrimary, err
	}

	outcome, err := n.verifyReplicaRead(ctx, opts)
	if err != nil {
		return resp.Value{}, outcome, err
	}
	switch outcome {
	case ReadOutcomeLinearizable:
		n.stats.ReplicaReadsServed.Add(1)
	case ReadOutcomeStale:
		n.stats.ReplicaReadsStale.Add(1)
	case ReadOutcomeRedirected:
		n.stats.ReplicaReadsRedirected.Add(1)
		return errRedirect, ReadOutcomeRedirected, nil
	}
	t.readVerified = true
	v, err := n.submit(ctx, t)
	return v, outcome, err
}

// DoBatchReadOnly executes an atomic batch with replica reads permitted
// (READONLY pipeline). All-read batches take the same freshness ladder
// as single reads; batches containing writes fall through to the
// default path (primary-only).
func (n *Node) DoBatchReadOnly(ctx context.Context, cmds [][][]byte) (resp.Value, error) {
	v, _, err := n.DoBatchRead(ctx, cmds, ReadOpts{})
	return v, err
}

// DoBatchRead is DoBatchReadOnly with an explicit consistency level.
func (n *Node) DoBatchRead(ctx context.Context, cmds [][][]byte, opts ReadOpts) (resp.Value, ReadOutcome, error) {
	t := &task{kind: taskBatch, batch: cmds, readonly: true}
	if !batchIsReadOnly(cmds) {
		v, err := n.submit(ctx, t)
		return v, ReadOutcomePrimary, err
	}
	if opts.Consistency == ReadEventual {
		t.readVerified = true
		v, err := n.submit(ctx, t)
		return v, ReadOutcomeEventual, err
	}
	n.mu.Lock()
	role := n.role
	n.mu.Unlock()
	if role != election.RoleReplica || n.Frozen() {
		v, err := n.submit(ctx, t)
		return v, ReadOutcomePrimary, err
	}
	outcome, err := n.verifyReplicaRead(ctx, opts)
	if err != nil {
		return resp.Value{}, outcome, err
	}
	switch outcome {
	case ReadOutcomeLinearizable:
		n.stats.ReplicaReadsServed.Add(1)
	case ReadOutcomeStale:
		n.stats.ReplicaReadsStale.Add(1)
	case ReadOutcomeRedirected:
		n.stats.ReplicaReadsRedirected.Add(1)
		return errRedirect, ReadOutcomeRedirected, nil
	}
	t.readVerified = true
	v, err := n.submit(ctx, t)
	return v, outcome, err
}

// verifyReplicaRead runs the capture-and-park freshness proof and maps
// its result onto the ladder. It returns one of ReadOutcomeLinearizable
// (proof succeeded), ReadOutcomeStale (proof failed but the client's
// bound holds) or ReadOutcomeRedirected; a non-nil error means the
// caller's context or the node ended first.
func (n *Node) verifyReplicaRead(ctx context.Context, opts ReadOpts) (ReadOutcome, error) {
	// Capture AFTER arrival. A node partitioned from the log service
	// must not capture: its view of the committed tail may be
	// arbitrarily old (this is exactly the asymmetric-partition case —
	// reachable by clients, cut off from the feed).
	var capture txlog.EntryID
	captureErr := txlog.ErrUnavailable
	if !n.partitioned() {
		capture, captureErr = n.cfg.Log.ConsistentTail()
	}
	if captureErr == nil {
		if n.readGate.Applied() >= capture.Seq {
			return ReadOutcomeLinearizable, nil
		}
		var waitStart int64
		if n.obs != nil {
			waitStart = obs.Now()
		}
		// Buffered so a late gate delivery after timeout never blocks
		// the delivering goroutine; the abandoned registration is
		// swept by the gate's next Advance.
		done := make(chan bool, 1)
		n.readGate.Park(capture.Seq, func(aborted bool) {
			select {
			case done <- aborted:
			default:
			}
		})
		var verified, finished bool
		select {
		case aborted := <-done:
			verified, finished = !aborted, true
		case <-n.clk.After(n.cfg.ReplicaReadTimeout):
		case <-ctx.Done():
			return ReadOutcomeRedirected, ctx.Err()
		case <-n.stopCtx.Done():
			return ReadOutcomeRedirected, ErrStopped
		}
		if n.obs != nil {
			n.obs.Stage(obs.StageReplicaReadWait).ObserveNanos(obs.Now() - waitStart)
		}
		if finished && verified {
			return ReadOutcomeLinearizable, nil
		}
	}
	// Freshness proof failed (no capture, park deadline, or gate
	// aborted): degrade. Bounded-stale serving leans on the
	// replica-LOCAL caught-up proof (ReadGate.NoteFresh from the
	// tailer's drain loop), never the primary's clock — so a skewed or
	// deposed primary cannot extend the bound.
	if opts.Consistency == ReadBoundedStale && opts.StalenessBound > 0 &&
		n.readGate.Staleness(n.clk.Now()) <= opts.StalenessBound {
		return ReadOutcomeStale, nil
	}
	return ReadOutcomeRedirected, nil
}

// committedWatermark returns the current tracker's committed (acked)
// watermark — the value piggybacked on appended entries.
func (n *Node) committedWatermark() uint64 {
	n.mu.Lock()
	trk := n.trk
	n.mu.Unlock()
	return trk.Committed()
}
