package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

func testService(t *testing.T, commit netsim.LatencyModel) *txlog.Service {
	t.Helper()
	return txlog.NewService(txlog.Config{
		Clock:         clock.NewReal(),
		CommitLatency: commit,
	})
}

func testNode(t *testing.T, id string, log *txlog.Log, snaps *snapshot.Manager) *Node {
	t.Helper()
	return testNodeBatch(t, id, log, snaps, 0) // 0 = core default (batching on)
}

// testNodeBatch is testNode with an explicit group-commit batch cap, so
// safety tests can run both with batching enabled and in per-mutation
// legacy mode (batch = 1).
func testNodeBatch(t *testing.T, id string, log *txlog.Log, snaps *snapshot.Manager, batch int) *Node {
	t.Helper()
	n, err := NewNode(Config{
		NodeID:          id,
		ShardID:         log.ShardID(),
		Log:             log,
		Lease:           120 * time.Millisecond,
		Backoff:         160 * time.Millisecond,
		RenewEvery:      30 * time.Millisecond,
		ReplicaPoll:     time.Millisecond,
		Snapshots:       snaps,
		ChecksumEvery:   8,
		MaxBatchRecords: batch,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	return n
}

// batchModes enumerates the group-commit settings safety-critical tests
// run under: the default (batching on) and the pre-group-commit legacy
// behavior of one log entry per mutation.
var batchModes = []struct {
	name  string
	batch int
}{
	{"batch=default", 0},
	{"batch=1", 1},
}

func waitRole(t *testing.T, n *Node, want election.Role, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if n.Role() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("node %s: role %v, want %v", n.ID(), n.Role(), want)
}

func mustDo(t *testing.T, n *Node, args ...string) resp.Value {
	t.Helper()
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	v, err := n.Do(context.Background(), argv)
	if err != nil {
		t.Fatalf("Do(%v): %v", args, err)
	}
	if v.IsError() {
		t.Fatalf("Do(%v) returned error reply: %s", args, v.Text())
	}
	return v
}

func TestPrimaryBootstrapAndReadWrite(t *testing.T) {
	svc := testService(t, netsim.Fixed(2*time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	if v := mustDo(t, n, "SET", "k", "v1"); v.Text() != "OK" {
		t.Fatalf("SET reply = %v", v)
	}
	if v := mustDo(t, n, "GET", "k"); v.Text() != "v1" {
		t.Fatalf("GET reply = %v", v)
	}
	// The write must be durable in the log by reply time.
	if tail := log.CommittedTail(); tail == txlog.ZeroID {
		t.Fatal("no committed entries after acknowledged write")
	}
	if log.AZCopies() == 0 {
		t.Fatal("expected multi-AZ copies recorded")
	}
}

func TestReplicaAppliesAndServesReads(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNode(t, "node-b", log, nil)
	waitRole(t, replica, election.RoleReplica, time.Second)

	mustDo(t, primary, "SET", "k", "v1")

	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := replica.DoReadOnly(context.Background(), [][]byte{[]byte("GET"), []byte("k")})
		if err != nil {
			t.Fatalf("replica read: %v", err)
		}
		if v.Text() == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never saw committed write; last = %v", v)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Writes on the replica are rejected.
	v, err := replica.Do(context.Background(), [][]byte{[]byte("SET"), []byte("x"), []byte("y")})
	if err != nil {
		t.Fatalf("replica write: %v", err)
	}
	if !v.IsError() {
		t.Fatalf("replica accepted a write: %v", v)
	}
}

func TestFailoverPromotesCaughtUpReplicaWithoutDataLoss(t *testing.T) {
	svc := testService(t, netsim.Fixed(500*time.Microsecond))
	log, _ := svc.CreateLog("shard-1")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNode(t, "node-b", log, nil)
	waitRole(t, replica, election.RoleReplica, time.Second)

	for i := 0; i < 50; i++ {
		mustDo(t, primary, "SET", "k"+string(rune('0'+i%10)), "v"+string(rune('0'+i%10)))
	}
	mustDo(t, primary, "SET", "final", "durable")

	// Kill the primary. Every acknowledged write is already in the log.
	primary.Stop()

	waitRole(t, replica, election.RolePrimary, 3*time.Second)
	if v := mustDo(t, replica, "GET", "final"); v.Text() != "durable" {
		t.Fatalf("acknowledged write lost across failover: GET final = %v", v)
	}
}

func TestFencedOldPrimaryCannotCommit(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)

	// Simulate a partition between the primary and the log service: its
	// appends fail, it cannot renew, and it must self-demote rather than
	// serve stale data (§4.1.3).
	log.FailAppends(true)
	v, err := primary.Do(context.Background(), [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !v.IsError() {
		t.Fatalf("write acknowledged while log unavailable: %v", v)
	}
	waitRole(t, primary, election.RoleDemoted, 2*time.Second)
	log.FailAppends(false)
	// With the partition healed the node resynchronizes and can campaign
	// again (it is the only node).
	waitRole(t, primary, election.RolePrimary, 3*time.Second)
	gv := mustDo(t, primary, "GET", "k")
	if !gv.Null {
		t.Fatalf("unacknowledged write became visible after resync: %v", gv)
	}
}

func TestRecoveryFromSnapshotAndLogSuffix(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	s3store := s3.New()
	mgr := snapshot.NewManager(s3store, "snapshots")

	primary := testNode(t, "node-a", log, mgr)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	for i := 0; i < 20; i++ {
		mustDo(t, primary, "SET", "k"+string(rune('a'+i)), "v")
	}
	// Off-box snapshot, then more writes that exist only in the log.
	ob := &snapshot.Offbox{Manager: mgr, EngineVersion: 2}
	if _, err := ob.Run(context.Background(), "shard-1", log); err != nil {
		t.Fatalf("offbox: %v", err)
	}
	mustDo(t, primary, "SET", "after-snap", "yes")

	// A brand-new replica restores snapshot + suffix without touching the
	// primary.
	replica := testNode(t, "node-c", log, mgr)
	waitRole(t, replica, election.RoleReplica, time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := replica.DoReadOnly(context.Background(), [][]byte{[]byte("GET"), []byte("after-snap")})
		if err != nil {
			t.Fatalf("replica read: %v", err)
		}
		if v.Text() == "yes" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restored replica never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if replica.Stats().Snapshot().SnapshotRestores == 0 {
		t.Fatal("replica did not restore from snapshot")
	}
}

func TestInfoCommand(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)
	mustDo(t, n, "SET", "k", "v")
	info := mustDo(t, n, "INFO").Text()
	for _, want := range []string{"role:primary", "epoch:1", "commands:", "keys:1", "engine_version:2"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	// Replicas answer INFO too (monitoring polls every node).
	r := testNode(t, "node-b", log, nil)
	waitRole(t, r, election.RoleReplica, time.Second)
	v, err := r.Do(context.Background(), [][]byte{[]byte("INFO")})
	if err != nil || !strings.Contains(v.Text(), "role:replica") {
		t.Fatalf("replica INFO = %v %v", v, err)
	}
}

func TestUpgradeProtectionStallsOldReplica(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-1")

	newPrimary, err := NewNode(Config{
		NodeID: "new-engine", ShardID: "shard-1", Log: log,
		EngineVersion: 3,
		Lease:         120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	newPrimary.Start()
	t.Cleanup(newPrimary.Stop)
	waitRole(t, newPrimary, election.RolePrimary, 2*time.Second)

	oldReplica, err := NewNode(Config{
		NodeID: "old-engine", ShardID: "shard-1", Log: log,
		EngineVersion: 2,
		Lease:         120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldReplica.Start()
	t.Cleanup(oldReplica.Stop)

	mustDo(t, newPrimary, "SET", "k", "v")

	deadline := time.Now().Add(2 * time.Second)
	for !oldReplica.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("old replica did not stall on newer-version stream")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
