package core

import (
	"context"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
)

// TestSkewedPrimaryIsFenced: a primary running on a slow clock believes
// its lease far outlives what every honest node observes — the classic
// clock-skew dual-primary setup. The paper's position (§4.1) is that
// leases only bound liveness; safety comes from conditional appends: the
// successor's claim entry moves the log tail, so every write the deluded
// old primary attempts fails its After condition and can never commit.
// This test builds exactly that window (old primary still self-identifies
// as primary while the new one serves) and proves no write from inside it
// survives.
func TestSkewedPrimaryIsFenced(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-skew")
	var partA netsim.Flag
	// Deterministic slow clock: node A experiences time at ~1/3 speed, so
	// its 120ms lease stretches to ~343ms of real time — far past the
	// honest 160ms backoff after which B may campaign.
	slow := election.NewSkewedClock(clock.NewReal(), 0, 0.35)
	a, err := NewNode(Config{
		NodeID: "node-a", ShardID: "shard-skew", Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Clock: slow, Partition: &partA,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(a.Stop)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)
	mustDo(t, a, "SET", "k", "v1")

	// Cut A off from the log. Its slow clock keeps the lease "valid" long
	// after honest time has expired it, so it keeps believing it leads.
	partA.Set(true)
	waitRole(t, b, election.RolePrimary, 3*time.Second)

	// The hazard window: both nodes self-identify as primary at once.
	// (Role is a local belief; the singularity invariant is about who can
	// COMMIT, which fencing decides below.)
	overlap := a.Role() == election.RolePrimary
	if !overlap {
		t.Skip("old primary already demoted before overlap could be sampled (slow CI scheduling)")
	}

	// Heal the partition while A still believes in its lease, and let it
	// try to commit. The append chains after A's stale tail view; B's
	// claim entry sits in between, so the conditional append must fail —
	// the write errors out and is never acknowledged.
	partA.Set(false)
	v, err := a.Do(context.Background(), [][]byte{[]byte("SET"), []byte("split"), []byte("brain")})
	if err == nil && !v.IsError() {
		t.Fatalf("fenced primary's write was acknowledged: %v", v)
	}

	// Nothing from the deluded primary is visible anywhere: B never sees
	// the fenced write, and the pre-partition data survived.
	if v := mustDo(t, b, "GET", "split"); !v.Null {
		t.Fatalf("fenced write leaked into the new regime: %v", v)
	}
	if v := mustDo(t, b, "GET", "k"); v.Text() != "v1" {
		t.Fatalf("GET k = %v after fencing", v)
	}
	// A learns the truth and rejoins as a replica of the new epoch.
	waitRole(t, a, election.RoleReplica, 5*time.Second)
	if got := a.Stats().Demotions.Load(); got < 1 {
		t.Fatalf("Demotions = %d, want >= 1", got)
	}
}
