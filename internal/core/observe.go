package core

import (
	"fmt"
	"strings"
	"time"

	"memorydb/internal/obs"
)

// This file is the node side of the observability layer: stage-stamp
// bookkeeping for tasks, counter registration for Prometheus export,
// and the INFO sections (# Latency, # Commandstats, # Slowlog).
//
// Stage stamps live on the task (enq/deq/execDone, obs.Now monotonic
// nanos, 0 = unset) and on the per-batch ack cell in groupcommit.go.
// Everything here is gated on n.obs != nil so NoObs nodes pay one
// pointer check per site.

// obsFinish runs inside the reply closure: it computes the end-to-end
// span and the queue/execute breakdown and hands them to the registry
// (e2e + per-command histograms, slowlog check, trace sampling).
func (n *Node) obsFinish(t *task) {
	if t.enq == 0 {
		return
	}
	now := obs.Now()
	total := now - t.enq
	var queue, exec int64
	if t.deq != 0 {
		queue = t.deq - t.enq
	}
	if t.execDone != 0 && t.deq != 0 {
		exec = t.execDone - t.deq
	}
	n.obs.FinishCommand(t.name, t.argv, total, queue, exec, t.shard)
}

// obsDequeued stamps a client task's dequeue and records its queue wait,
// both node-wide and on the handling shard. Per-shard recording is
// skipped on single-shard nodes, where it would only duplicate the
// node-wide histogram (keeping the legacy hot path cost unchanged), and
// for barrier tasks (shard -1), which no one shard handled.
func (n *Node) obsDequeued(t *task) {
	t.deq = obs.Now()
	n.obs.Stage(obs.StageQueueWait).ObserveNanos(t.deq - t.enq)
	if t.shard >= 0 && len(n.shards) > 1 {
		if ss := n.obs.ShardStage(t.shard); ss != nil {
			ss.QueueWait.ObserveNanos(t.deq - t.enq)
		}
	}
	if t.tr != nil {
		t.tr.c.Emit(t.tr.sc, "queue_wait", n.cfg.NodeID, -1, t.shard, t.enq, t.deq)
	}
}

// obsExecuted stamps engine-execution completion.
func (n *Node) obsExecuted(t *task) {
	t.execDone = obs.Now()
	n.obs.Stage(obs.StageExecute).ObserveNanos(t.execDone - t.deq)
	if t.shard >= 0 && len(n.shards) > 1 {
		if ss := n.obs.ShardStage(t.shard); ss != nil {
			ss.Execute.ObserveNanos(t.execDone - t.deq)
		}
	}
	if t.tr != nil {
		t.tr.c.Emit(t.tr.sc, "execute", n.cfg.NodeID, -1, t.shard, t.deq, t.execDone)
	}
}

// registerCounters exposes every Stats field (plus log-service counters)
// through the registry so /metrics covers the pre-existing counter
// surface. Labels carry the node ID so shared registries keep nodes
// distinguishable.
func (n *Node) registerCounters() {
	label := fmt.Sprintf("node=%q", n.cfg.NodeID)
	reg := func(name string, v interface{ Load() int64 }) {
		n.obs.RegisterCounter(name, label, v.Load)
	}
	reg("commands", &n.stats.Commands)
	reg("mutations", &n.stats.Mutations)
	reg("gated_reads", &n.stats.GatedReads)
	reg("appends_failed", &n.stats.AppendsFailed)
	reg("demotions", &n.stats.Demotions)
	reg("promotions", &n.stats.Promotions)
	reg("entries_applied", &n.stats.EntriesApplied)
	reg("snapshot_restores", &n.stats.SnapshotRestores)
	reg("batch_flushes", &n.stats.BatchFlushes)
	reg("batched_records", &n.stats.BatchedRecords)
	reg("appends_retried", &n.stats.AppendsRetried)
	reg("renewals_retried", &n.stats.RenewalsRetried)
	reg("degraded_millis", &n.stats.DegradedMillis)
	reg("torn_snapshots_detected", &n.stats.TornSnapshotsDetected)
	reg("reader_rebootstraps", &n.stats.ReaderRebootstraps)
	reg("log_gap_retries", &n.stats.LogGapRetries)
	reg("barrier_ops", &n.stats.BarrierOps)
	reg("cross_slot_ops", &n.stats.CrossSlotOps)
	reg("replica_reads_served", &n.stats.ReplicaReadsServed)
	reg("replica_reads_stale", &n.stats.ReplicaReadsStale)
	reg("replica_reads_redirected", &n.stats.ReplicaReadsRedirected)
	reg("replica_read_watermarks_fenced", &n.stats.WatermarksFenced)
	// Segmented-log health: live footprint gauges plus lifecycle counters,
	// sampled straight from the shared log's segment chain.
	n.obs.RegisterGauge("log_segments_live", label, func() int64 {
		return int64(n.cfg.Log.SegmentStats().LiveSegments)
	})
	n.obs.RegisterGauge("log_bytes_live", label, func() int64 {
		return n.cfg.Log.SegmentStats().LiveBytes
	})
	n.obs.RegisterCounter("log_segments_sealed", label, func() int64 {
		return n.cfg.Log.SegmentStats().Sealed
	})
	n.obs.RegisterCounter("log_segments_trimmed", label, func() int64 {
		return n.cfg.Log.SegmentStats().Trimmed
	})
	n.obs.RegisterCounter("log_segments_quarantined", label, func() int64 {
		return n.cfg.Log.SegmentStats().Quarantined
	})
	// Forkless snapshot builder health, read off the shared manager: lag
	// behind the committed tail, chain production counters, and the
	// lag-exceeded-trim-horizon alarm count.
	if snaps := n.cfg.Snapshots; snaps != nil {
		h := snaps.Health()
		n.obs.RegisterGauge("snapshot_builder_lag_entries", label, h.LagEntries.Load)
		n.obs.RegisterCounter("snapshot_deltas_emitted_total", label, h.DeltasEmitted.Load)
		n.obs.RegisterCounter("snapshot_compactions_total", label, h.Compactions.Load)
		n.obs.RegisterGauge("snapshot_chain_depth", label, h.ChainDepth.Load)
		n.obs.RegisterCounter("snapshot_builder_lag_alarms_total", label, h.LagAlarms.Load)
	}
	// Tracing/flight health: span volume plus the black box's write count.
	if n.trace != nil {
		n.obs.RegisterCounter("trace_traces_sampled", label, n.trace.SampledCount)
		n.obs.RegisterCounter("trace_spans_recorded", label, n.trace.SpanCount)
	}
	n.obs.RegisterCounter("flight_events_recorded", label, func() int64 {
		return int64(n.flight.Total())
	})
	n.obs.RegisterGauge("shard_count", label, func() int64 {
		return int64(len(n.shards))
	})
	n.obs.RegisterGauge("shard_queue_depth_max", label, func() int64 {
		max := 0
		for _, d := range n.QueueDepths() {
			if d > max {
				max = d
			}
		}
		return int64(max)
	})
	// Imbalance as max/mean in permille (1000 = perfectly balanced); 0
	// when every queue is empty.
	n.obs.RegisterGauge("shard_imbalance_permille", label, func() int64 {
		depths := n.QueueDepths()
		total, max := 0, 0
		for _, d := range depths {
			total += d
			if d > max {
				max = d
			}
		}
		if total == 0 {
			return 0
		}
		mean := float64(total) / float64(len(depths))
		return int64(float64(max) / mean * 1000)
	})
}

// usec rounds up, so any recorded sub-microsecond stage reports as 1µs
// rather than vanishing to 0 in INFO (a stage that ran is never "free").
func usec(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Microsecond - 1) / time.Microsecond)
}

// obsInfoSections renders # Latency, # Commandstats and # Slowlog for
// INFO. Returns "" when instrumentation is off.
func (n *Node) obsInfoSections() string {
	if n.obs == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Latency\r\n")
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		h := n.obs.Stage(s)
		q := h.Quantiles()
		fmt.Fprintf(&b, "stage_%s:count=%d,p50_usec=%d,p95_usec=%d,p99_usec=%d,p999_usec=%d,max_usec=%d\r\n",
			s, h.Count(), usec(q.P50), usec(q.P95), usec(q.P99), usec(q.P999), usec(q.Max))
	}
	for i := range n.shards {
		if len(n.shards) == 1 {
			break // per-shard stages not recorded on single-shard nodes
		}
		ss := n.obs.ShardStage(i)
		if ss == nil {
			continue
		}
		for _, e := range []struct {
			name string
			h    *obs.Histogram
		}{{"queue_wait", &ss.QueueWait}, {"execute", &ss.Execute}} {
			q := e.h.Quantiles()
			fmt.Fprintf(&b, "stage_shard%d_%s:count=%d,p50_usec=%d,p99_usec=%d,max_usec=%d\r\n",
				i, e.name, e.h.Count(), usec(q.P50), usec(q.P99), usec(q.Max))
		}
	}
	fmt.Fprintf(&b, "# Commandstats\r\n")
	n.obs.EachCommand(func(name string, h *obs.Histogram) {
		q := h.Quantiles()
		fmt.Fprintf(&b, "cmdstat_%s:calls=%d,p50_usec=%d,p99_usec=%d,max_usec=%d\r\n",
			strings.ToLower(name), h.Count(), usec(q.P50), usec(q.P99), usec(q.Max))
	})
	fmt.Fprintf(&b, "# Slowlog\r\n")
	sl := n.obs.Slow
	fmt.Fprintf(&b, "slowlog_threshold_usec:%d\r\n", usec(sl.Threshold()))
	fmt.Fprintf(&b, "slowlog_total:%d\r\n", sl.Total())
	fmt.Fprintf(&b, "slowlog_len:%d\r\n", sl.Len())
	for i, e := range sl.Recent(8) {
		fmt.Fprintf(&b, "slowlog_entry_%d:id=%d,cmd=%s,usec=%d,queue_usec=%d,exec_usec=%d,commit_usec=%d,shard=%d\r\n",
			i, e.ID, e.Cmd, usec(e.Total), usec(e.Queue), usec(e.Exec), usec(e.Commit), e.Shard)
	}
	if n.cfg.Alarms != nil {
		fmt.Fprintf(&b, "alarms_total:%d\r\n", n.cfg.Alarms.Total())
		for i, a := range n.cfg.Alarms.Recent(8) {
			fmt.Fprintf(&b, "alarm_%d:%s\r\n", i, a.Msg)
		}
	}
	return b.String()
}
