package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/txlog"
)

// testReplicaWithPartition builds a replica whose log connectivity is
// governed by part, for asymmetric-partition scenarios: the node stays
// reachable by "clients" (direct DoRead calls) while its log feed dies.
func testReplicaWithPartition(t *testing.T, id string, log *txlog.Log, part *netsim.Flag) *Node {
	t.Helper()
	n, err := NewNode(Config{
		NodeID: id, ShardID: log.ShardID(), Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Partition: part,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	return n
}

func getArgv(key string) [][]byte { return [][]byte{[]byte("GET"), []byte(key)} }

// TestReplicaLinearizableReadSeesEveryAcknowledgedWrite is the core
// linearizability contract: a replica read issued AFTER a write was
// acknowledged either observes that write (freshness proof succeeded) or
// degrades explicitly — it never serves the old value as linearizable.
func TestReplicaLinearizableReadSeesEveryAcknowledgedWrite(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-rr")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNode(t, "node-b", log, nil)
	waitRole(t, replica, election.RoleReplica, time.Second)

	served := 0
	for i := 0; i < 25; i++ {
		want := fmt.Sprintf("v%d", i)
		mustDo(t, primary, "SET", "k", want)
		// No catch-up wait: the read must prove freshness on its own.
		v, outcome, err := replica.DoRead(context.Background(), getArgv("k"), ReadOpts{})
		if err != nil {
			t.Fatalf("DoRead: %v", err)
		}
		switch outcome {
		case ReadOutcomeLinearizable:
			if v.Text() != want {
				t.Fatalf("stale value %q served as linearizable; acknowledged write was %q", v.Text(), want)
			}
			served++
		case ReadOutcomeRedirected:
			if !IsRedirect(v) {
				t.Fatalf("redirect outcome with non-redirect reply: %v", v)
			}
		default:
			t.Fatalf("unexpected outcome %v", outcome)
		}
	}
	if served == 0 {
		t.Fatal("no read was ever served linearizably on a healthy caught-up replica")
	}
	if got := replica.Stats().ReplicaReadsServed.Load(); got != int64(served) {
		t.Fatalf("ReplicaReadsServed = %d, want %d", got, served)
	}

	// On the primary the same API reports the primary outcome.
	if _, outcome, err := primary.DoRead(context.Background(), getArgv("k"), ReadOpts{}); err != nil || outcome != ReadOutcomePrimary {
		t.Fatalf("primary DoRead outcome = %v err = %v", outcome, err)
	}
	// Write commands never take the replica-gated path: the workloop
	// rejects them exactly as before.
	v, outcome, err := replica.DoRead(context.Background(), [][]byte{[]byte("SET"), []byte("x"), []byte("y")}, ReadOpts{})
	if err != nil {
		t.Fatalf("DoRead(SET): %v", err)
	}
	if outcome != ReadOutcomePrimary || !v.IsError() || IsRedirect(v) {
		t.Fatalf("write through DoRead: outcome=%v reply=%v", outcome, v)
	}
}

// TestReplicaReadDegradesUnderAsymmetricPartition: a replica cut off
// from the log feed but still reachable by clients must not hang and
// must not serve stale data as linearizable — it walks the ladder:
// linearizable → REDIRECT; bounded-stale serves within the declared
// bound and redirects beyond it; eventual always serves.
func TestReplicaReadDegradesUnderAsymmetricPartition(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-rr")
	primary := testNode(t, "node-a", log, nil)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	var part netsim.Flag
	replica := testReplicaWithPartition(t, "node-b", log, &part)
	waitRole(t, replica, election.RoleReplica, time.Second)

	mustDo(t, primary, "SET", "k", "v1")
	// Let the replica catch up and prove it at least once.
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, outcome, err := replica.DoRead(context.Background(), getArgv("k"), ReadOpts{})
		if err != nil {
			t.Fatalf("DoRead: %v", err)
		}
		if outcome == ReadOutcomeLinearizable && v.Text() == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never served the first write linearizably")
		}
		time.Sleep(2 * time.Millisecond)
	}

	part.Set(true)

	// Linearizable: immediate explicit degrade, no hang.
	start := time.Now()
	v, outcome, err := replica.DoRead(context.Background(), getArgv("k"), ReadOpts{})
	if err != nil {
		t.Fatalf("DoRead under partition: %v", err)
	}
	if outcome != ReadOutcomeRedirected || !IsRedirect(v) {
		t.Fatalf("partitioned linearizable read: outcome=%v reply=%v", outcome, v)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("degradation took %v; reads must not hang on a dead feed", elapsed)
	}
	if replica.Stats().ReplicaReadsRedirected.Load() == 0 {
		t.Fatal("redirect not counted")
	}

	// Bounded-stale with a generous bound: served from last-known state,
	// explicitly marked stale.
	v, outcome, err = replica.DoRead(context.Background(), getArgv("k"),
		ReadOpts{Consistency: ReadBoundedStale, StalenessBound: 10 * time.Second})
	if err != nil {
		t.Fatalf("bounded-stale read: %v", err)
	}
	if outcome != ReadOutcomeStale || v.Text() != "v1" {
		t.Fatalf("bounded-stale read: outcome=%v reply=%v", outcome, v)
	}
	if replica.Stats().ReplicaReadsStale.Load() == 0 {
		t.Fatal("stale serve not counted")
	}

	// Once replica-local staleness exceeds the bound, bounded-stale
	// degrades to REDIRECT too: the bound is a promise, not a hint.
	time.Sleep(30 * time.Millisecond)
	v, outcome, err = replica.DoRead(context.Background(), getArgv("k"),
		ReadOpts{Consistency: ReadBoundedStale, StalenessBound: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("expired bounded-stale read: %v", err)
	}
	if outcome != ReadOutcomeRedirected || !IsRedirect(v) {
		t.Fatalf("expired bounded-stale read: outcome=%v reply=%v", outcome, v)
	}

	// Eventual: the legacy no-claim rung still serves.
	v, outcome, err = replica.DoRead(context.Background(), getArgv("k"),
		ReadOpts{Consistency: ReadEventual})
	if err != nil {
		t.Fatalf("eventual read: %v", err)
	}
	if outcome != ReadOutcomeEventual || v.Text() != "v1" {
		t.Fatalf("eventual read: outcome=%v reply=%v", outcome, v)
	}

	// Heal: linearizable reads recover without restarting anything.
	part.Set(false)
	deadline = time.Now().Add(2 * time.Second)
	for {
		v, outcome, err := replica.DoRead(context.Background(), getArgv("k"), ReadOpts{})
		if err != nil {
			t.Fatalf("post-heal DoRead: %v", err)
		}
		if outcome == ReadOutcomeLinearizable && v.Text() == "v1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("linearizable reads did not recover after heal")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeposedPrimaryServesConsistentReplicaReads is the failover-fencing
// half of the protocol: a primary deposed while partitioned (still
// believing its skewed-clock lease) rejoins as a replica of the new
// epoch; its replica reads must reflect the NEW regime's writes — its
// own stale pre-partition state must never leak out as linearizable.
func TestDeposedPrimaryServesConsistentReplicaReads(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-rrskew")
	var partA netsim.Flag
	slow := election.NewSkewedClock(clock.NewReal(), 0, 0.35)
	a, err := NewNode(Config{
		NodeID: "node-a", ShardID: "shard-rrskew", Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Clock: slow, Partition: &partA,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	t.Cleanup(a.Stop)
	waitRole(t, a, election.RolePrimary, 2*time.Second)
	b := testNode(t, "node-b", log, nil)
	waitRole(t, b, election.RoleReplica, time.Second)

	mustDo(t, a, "SET", "k", "old-regime")
	partA.Set(true)
	waitRole(t, b, election.RolePrimary, 3*time.Second)
	mustDo(t, b, "SET", "k", "new-regime")

	// Heal; A discovers the new epoch and rejoins as a replica.
	partA.Set(false)
	waitRole(t, a, election.RoleReplica, 5*time.Second)

	deadline := time.Now().Add(3 * time.Second)
	for {
		v, outcome, err := a.DoRead(context.Background(), getArgv("k"), ReadOpts{})
		if err != nil {
			t.Fatalf("DoRead on rejoined node: %v", err)
		}
		if outcome == ReadOutcomeLinearizable {
			if v.Text() != "new-regime" {
				t.Fatalf("deposed primary served %q as linearizable; new regime wrote %q", v.Text(), "new-regime")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined node never served a linearizable read; last outcome %v", outcome)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
