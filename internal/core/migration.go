package core

import (
	"context"
	"errors"

	"memorydb/internal/crc16"
	"memorydb/internal/election"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// errNotPrimaryErr is the Go-level counterpart of the -READONLY reply for
// control-plane callers.
var errNotPrimaryErr = errors.New("core: not the primary")

// Slot migration support (paper §5.2). The source primary keeps serving
// the slot while data moves: keys are dumped through the slot's owner
// shard workloop into an ordered stream that also carries the replication
// effects of concurrent mutations on the slot, so the target observes
// "serialized keys plus replication stream mutations of keys already
// transmitted" in a single consistent order. A slot maps to exactly one
// execution shard, so migration tasks route to that shard and the stream
// ordering argument is unchanged from the single-workloop design.
// Ownership transfer itself is coordinated by the cluster layer with 2PC
// records in the transaction logs.

// ForwardItem is one unit of the migration stream: either a batch of
// commands recreating a dumped key, or the effects of one mutation.
type ForwardItem struct {
	// Cmds are decoded commands to apply at the target (dump path).
	Cmds [][][]byte
	// Effects are RESP-encoded effect commands (live mutation path).
	Effects [][]byte
}

// MigrationStream receives the ordered dump+effect stream for one slot.
type MigrationStream struct {
	Slot uint16
	C    chan ForwardItem
}

// StartSlotMigration begins streaming mode for slot: subsequent mutations
// touching keys in the slot are mirrored into the returned stream, and
// EnqueueSlotDump schedules the bulk copy through the same stream.
func (n *Node) StartSlotMigration(slot uint16) *MigrationStream {
	ms := &MigrationStream{Slot: slot, C: make(chan ForwardItem, 1024)}
	sh := n.slotShard(slot)
	t := &task{kind: taskMigCtl, shard: sh.idx, mig: ms, migOn: true, slot: slot, swapCh: make(chan struct{})}
	select {
	case sh.tasks <- t:
		<-t.swapCh
	case <-n.stopCtx.Done():
	}
	return ms
}

// EnqueueSlotDump dumps every key currently in the slot into the
// migration stream. It runs inside the slot's owner shard workloop, so
// the dump point is serialized against mutations: effects emitted after
// it strictly follow the dumped state.
func (n *Node) EnqueueSlotDump(ctx context.Context, slot uint16) error {
	sh := n.slotShard(slot)
	t := &task{kind: taskMigDump, shard: sh.idx, slot: slot, swapCh: make(chan struct{})}
	select {
	case sh.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCtx.Done():
		return ErrStopped
	}
	select {
	case <-t.swapCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCtx.Done():
		return ErrStopped
	}
}

// EndSlotMigration stops mirroring and closes the stream.
func (n *Node) EndSlotMigration(slot uint16) {
	sh := n.slotShard(slot)
	t := &task{kind: taskMigCtl, shard: sh.idx, migOn: false, slot: slot, swapCh: make(chan struct{})}
	select {
	case sh.tasks <- t:
		<-t.swapCh
	case <-n.stopCtx.Done():
	}
}

// SetSlotGate installs (or clears, with nil) the slot admission check
// consulted before executing client commands. The cluster layer uses it
// for MOVED redirects, CROSSSLOT validation, and the brief write block
// during slot ownership transfer.
func (n *Node) SetSlotGate(gate func(name string, keys []string, writing bool) (resp.Value, bool)) {
	n.mu.Lock()
	n.slotGate = gate
	n.mu.Unlock()
}

// AppendControl appends a control entry (slot 2PC messages etc.) through
// the primary's append chain, returning once it is durably committed.
// Control entries must not overtake buffered mutations, so the append
// quiesces every shard (each flushes on park) before taking the
// sequencer.
func (n *Node) AppendControl(ctx context.Context, typ txlog.EntryType, payload []byte) (txlog.EntryID, error) {
	ch := make(chan ctlResult, 1)
	go n.runControl(typ, payload, ch)
	select {
	case r := <-ch:
		return r.id, r.err
	case <-ctx.Done():
		return txlog.ZeroID, ctx.Err()
	case <-n.stopCtx.Done():
		return txlog.ZeroID, ErrStopped
	}
}

type ctlResult struct {
	id  txlog.EntryID
	err error
}

// runControl is the barrier coordinator for one control entry.
func (n *Node) runControl(typ txlog.EntryType, payload []byte, ch chan ctlResult) {
	n.barrierMu.Lock()
	defer n.barrierMu.Unlock()
	if !n.gate() {
		ch <- ctlResult{err: ErrStopped}
		return
	}
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	trk := n.trk
	n.mu.Unlock()
	if role != election.RolePrimary {
		ch <- ctlResult{err: errNotPrimaryErr}
		return
	}
	release, ok := n.holdShards(n.shards)
	if !ok {
		ch <- ctlResult{err: ErrStopped}
		return
	}
	defer release()
	// Parking flushed every shard; a flush failure demotes, so re-check.
	n.mu.Lock()
	role = n.role
	n.mu.Unlock()
	if role != election.RolePrimary {
		ch <- ctlResult{err: errNotPrimaryErr}
		return
	}
	n.seqMu.Lock()
	p, err := n.startAppendRetry(n.lastIssued, txlog.Entry{
		Type:          typ,
		Epoch:         epoch,
		EngineVersion: n.cfg.EngineVersion,
		Payload:       payload,
	}, &n.stats.AppendsRetried)
	if err == nil {
		n.lastIssued = p.ID()
	}
	n.seqMu.Unlock()
	if err != nil {
		// Fenced or retried out the lease: step down.
		n.stats.AppendsFailed.Add(1)
		n.demote()
		ch <- ctlResult{err: err}
		return
	}
	go func() {
		id, err := p.Wait(n.stopCtx)
		if err == nil {
			trk.Commit(id.Seq)
		}
		ch <- ctlResult{id: id, err: err}
	}()
}

func (n *Node) handleMigCtl(sh *nodeShard, t *task) {
	if t.migOn {
		sh.migStream = t.mig
	} else if sh.migStream != nil {
		close(sh.migStream.C)
		sh.migStream = nil
	}
	close(t.swapCh)
}

func (n *Node) handleMigDump(sh *nodeShard, t *task) {
	defer close(t.swapCh)
	if sh.migStream == nil {
		return
	}
	for _, key := range sh.eng.DB().SlotKeys(t.slot, 0) {
		cmds := sh.eng.DumpCommands(key)
		if len(cmds) == 0 {
			continue
		}
		select {
		case sh.migStream.C <- ForwardItem{Cmds: cmds}:
		case <-n.stopCtx.Done():
			return
		}
	}
}

// LeaseReleasePayload marks a voluntary leadership hand-over: replicas
// observing it skip the backoff and campaign immediately, minimizing
// write unavailability during collaborative transfers (§5.2 instance
// scaling, §5.1 N+1 upgrades).
var LeaseReleasePayload = []byte("lease-release")

// StepDown performs a collaborative leadership transfer: the primary
// appends a lease-release entry and demotes itself. It returns once the
// release is durably committed (or the node was not primary).
func (n *Node) StepDown(ctx context.Context) error {
	_, err := n.AppendControl(ctx, txlog.EntryControl, LeaseReleasePayload)
	if err != nil {
		return err
	}
	n.demote()
	return nil
}

// SlotKeys returns the keys currently stored in slot, read inside the
// owner shard's workloop so the view is serialized against writes.
func (n *Node) SlotKeys(ctx context.Context, slot uint16) ([]string, error) {
	sh := n.slotShard(slot)
	t := &task{kind: taskSlotInfo, shard: sh.idx, slot: slot, slotCh: make(chan []string, 1)}
	select {
	case sh.tasks <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.stopCtx.Done():
		return nil, ErrStopped
	}
	select {
	case keys := <-t.slotCh:
		return keys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.stopCtx.Done():
		return nil, ErrStopped
	}
}

// SlotKeyCount returns the number of keys in slot.
func (n *Node) SlotKeyCount(ctx context.Context, slot uint16) (int, error) {
	keys, err := n.SlotKeys(ctx, slot)
	return len(keys), err
}

// forwardEffects mirrors a mutation's effects into the shard's migration
// stream when any touched key belongs to the migrating slot. Called from
// the shard workloop right after the effects were accepted by the log.
func (n *Node) forwardEffects(sh *nodeShard, keys []string, effects [][]byte) {
	ms := sh.migStream
	if ms == nil {
		return
	}
	match := false
	for _, k := range keys {
		if crc16.Slot(k) == ms.Slot {
			match = true
			break
		}
	}
	if !match {
		return
	}
	select {
	case ms.C <- ForwardItem{Effects: effects}:
	case <-n.stopCtx.Done():
	}
}

// forwardEffectsParked is forwardEffects for barrier mutations: every
// shard is parked (so its migStream field is safe to read), and a
// cross-slot mutation may touch the migrating slot on any of them.
func (n *Node) forwardEffectsParked(keys []string, effects [][]byte) {
	for _, sh := range n.shards {
		n.forwardEffects(sh, keys, effects)
	}
}
