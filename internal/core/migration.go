package core

import (
	"context"
	"errors"

	"memorydb/internal/crc16"
	"memorydb/internal/election"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// errNotPrimaryErr is the Go-level counterpart of the -READONLY reply for
// control-plane callers.
var errNotPrimaryErr = errors.New("core: not the primary")

// Slot migration support (paper §5.2). The source primary keeps serving
// the slot while data moves: keys are dumped through the workloop into an
// ordered stream that also carries the replication effects of concurrent
// mutations on the slot, so the target observes "serialized keys plus
// replication stream mutations of keys already transmitted" in a single
// consistent order. Ownership transfer itself is coordinated by the
// cluster layer with 2PC records in the transaction logs.

// ForwardItem is one unit of the migration stream: either a batch of
// commands recreating a dumped key, or the effects of one mutation.
type ForwardItem struct {
	// Cmds are decoded commands to apply at the target (dump path).
	Cmds [][][]byte
	// Effects are RESP-encoded effect commands (live mutation path).
	Effects [][]byte
}

// MigrationStream receives the ordered dump+effect stream for one slot.
type MigrationStream struct {
	Slot uint16
	C    chan ForwardItem
}

// StartSlotMigration begins streaming mode for slot: subsequent mutations
// touching keys in the slot are mirrored into the returned stream, and
// EnqueueSlotDump schedules the bulk copy through the same stream.
func (n *Node) StartSlotMigration(slot uint16) *MigrationStream {
	ms := &MigrationStream{Slot: slot, C: make(chan ForwardItem, 1024)}
	t := &task{kind: taskMigCtl, mig: ms, migOn: true, swapCh: make(chan struct{})}
	select {
	case n.tasks <- t:
		<-t.swapCh
	case <-n.stopCtx.Done():
	}
	return ms
}

// EnqueueSlotDump dumps every key currently in the slot into the
// migration stream. It runs inside the workloop, so the dump point is
// serialized against mutations: effects emitted after it strictly follow
// the dumped state.
func (n *Node) EnqueueSlotDump(ctx context.Context, slot uint16) error {
	t := &task{kind: taskMigDump, slot: slot, swapCh: make(chan struct{})}
	select {
	case n.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCtx.Done():
		return ErrStopped
	}
	select {
	case <-t.swapCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.stopCtx.Done():
		return ErrStopped
	}
}

// EndSlotMigration stops mirroring and closes the stream.
func (n *Node) EndSlotMigration() {
	t := &task{kind: taskMigCtl, migOn: false, swapCh: make(chan struct{})}
	select {
	case n.tasks <- t:
		<-t.swapCh
	case <-n.stopCtx.Done():
	}
}

// SetSlotGate installs (or clears, with nil) the slot admission check
// consulted before executing client commands. The cluster layer uses it
// for MOVED redirects, CROSSSLOT validation, and the brief write block
// during slot ownership transfer.
func (n *Node) SetSlotGate(gate func(name string, keys []string, writing bool) (resp.Value, bool)) {
	n.mu.Lock()
	n.slotGate = gate
	n.mu.Unlock()
}

// AppendControl appends a control entry (slot 2PC messages etc.) through
// the primary's append chain, returning once it is durably committed.
func (n *Node) AppendControl(ctx context.Context, typ txlog.EntryType, payload []byte) (txlog.EntryID, error) {
	t := &task{kind: taskControl, ctlType: typ, ctlPayload: payload, ctlCh: make(chan ctlResult, 1)}
	select {
	case n.tasks <- t:
	case <-ctx.Done():
		return txlog.ZeroID, ctx.Err()
	case <-n.stopCtx.Done():
		return txlog.ZeroID, ErrStopped
	}
	select {
	case r := <-t.ctlCh:
		return r.id, r.err
	case <-ctx.Done():
		return txlog.ZeroID, ctx.Err()
	case <-n.stopCtx.Done():
		return txlog.ZeroID, ErrStopped
	}
}

type ctlResult struct {
	id  txlog.EntryID
	err error
}

func (n *Node) handleControl(t *task) {
	n.mu.Lock()
	role := n.role
	epoch := n.epoch
	trk := n.trk
	n.mu.Unlock()
	if role != election.RolePrimary {
		t.ctlCh <- ctlResult{err: errNotPrimaryErr}
		return
	}
	// Control entries must not overtake buffered mutations: flush the
	// group-commit batch first so log order matches execution order.
	if !n.flushPending() {
		t.ctlCh <- ctlResult{err: errNotPrimaryErr}
		return
	}
	p, err := n.startAppendRetry(n.lastIssued, txlog.Entry{
		Type:          t.ctlType,
		Epoch:         epoch,
		EngineVersion: n.cfg.EngineVersion,
		Payload:       t.ctlPayload,
	}, &n.stats.AppendsRetried)
	if err != nil {
		// Fenced or retried out the lease: step down.
		n.stats.AppendsFailed.Add(1)
		n.demote()
		t.ctlCh <- ctlResult{err: err}
		return
	}
	n.lastIssued = p.ID()
	go func() {
		id, err := p.Wait(n.stopCtx)
		if err == nil {
			trk.Commit(id.Seq)
		}
		t.ctlCh <- ctlResult{id: id, err: err}
	}()
}

func (n *Node) handleMigCtl(t *task) {
	if t.migOn {
		n.migStream = t.mig
	} else if n.migStream != nil {
		close(n.migStream.C)
		n.migStream = nil
	}
	close(t.swapCh)
}

func (n *Node) handleMigDump(t *task) {
	defer close(t.swapCh)
	if n.migStream == nil {
		return
	}
	for _, key := range n.eng.DB().SlotKeys(t.slot, 0) {
		cmds := n.eng.DumpCommands(key)
		if len(cmds) == 0 {
			continue
		}
		select {
		case n.migStream.C <- ForwardItem{Cmds: cmds}:
		case <-n.stopCtx.Done():
			return
		}
	}
}

// LeaseReleasePayload marks a voluntary leadership hand-over: replicas
// observing it skip the backoff and campaign immediately, minimizing
// write unavailability during collaborative transfers (§5.2 instance
// scaling, §5.1 N+1 upgrades).
var LeaseReleasePayload = []byte("lease-release")

// StepDown performs a collaborative leadership transfer: the primary
// appends a lease-release entry and demotes itself. It returns once the
// release is durably committed (or the node was not primary).
func (n *Node) StepDown(ctx context.Context) error {
	_, err := n.AppendControl(ctx, txlog.EntryControl, LeaseReleasePayload)
	if err != nil {
		return err
	}
	n.demote()
	return nil
}

// SlotKeys returns the keys currently stored in slot, read inside the
// workloop so the view is serialized against writes.
func (n *Node) SlotKeys(ctx context.Context, slot uint16) ([]string, error) {
	t := &task{kind: taskSlotInfo, slot: slot, slotCh: make(chan []string, 1)}
	select {
	case n.tasks <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.stopCtx.Done():
		return nil, ErrStopped
	}
	select {
	case keys := <-t.slotCh:
		return keys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-n.stopCtx.Done():
		return nil, ErrStopped
	}
}

// SlotKeyCount returns the number of keys in slot.
func (n *Node) SlotKeyCount(ctx context.Context, slot uint16) (int, error) {
	keys, err := n.SlotKeys(ctx, slot)
	return len(keys), err
}

// forwardEffects mirrors a mutation's effects into the migration stream
// when any touched key belongs to the migrating slot. Called from the
// workloop right after the effects were accepted by the log.
func (n *Node) forwardEffects(keys []string, effects [][]byte) {
	ms := n.migStream
	if ms == nil {
		return
	}
	match := false
	for _, k := range keys {
		if crc16.Slot(k) == ms.Slot {
			match = true
			break
		}
	}
	if !match {
		return
	}
	select {
	case ms.C <- ForwardItem{Effects: effects}:
	case <-n.stopCtx.Done():
	}
}
