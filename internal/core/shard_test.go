package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"memorydb/internal/crc16"
	"memorydb/internal/election"
	"memorydb/internal/lin"
	"memorydb/internal/netsim"
	"memorydb/internal/snapshot"
	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// testNodeShards builds a node with an explicit execution-shard count,
// overriding the GOMAXPROCS/env default so sharded behavior is exercised
// deterministically even on single-CPU runners.
func testNodeShards(t *testing.T, id string, log *txlog.Log, snaps *snapshot.Manager, shards int) *Node {
	t.Helper()
	n, err := NewNode(Config{
		NodeID:        id,
		ShardID:       log.ShardID(),
		Log:           log,
		Lease:         120 * time.Millisecond,
		Backoff:       160 * time.Millisecond,
		RenewEvery:    30 * time.Millisecond,
		ReplicaPoll:   time.Millisecond,
		Snapshots:     snaps,
		ChecksumEvery: 8,
		Shards:        shards,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", id, err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	return n
}

// TestShardOfSlotPartAlignment pins the slot→shard mapping's invariants:
// every slot maps to a valid shard, the mapping is monotone in the slot's
// part (so each shard owns a contiguous part range), and all of a part's
// 256 slots land on the same shard — the property that makes per-part
// store striping race-free.
func TestShardOfSlotPartAlignment(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 63, 64} {
		prev := 0
		partOwner := make(map[int]int)
		for slot := 0; slot < crc16.NumSlots; slot++ {
			sh := ShardOfSlot(uint16(slot), shards)
			if sh < 0 || sh >= shards {
				t.Fatalf("shards=%d slot=%d → %d out of range", shards, slot, sh)
			}
			if sh < prev {
				t.Fatalf("shards=%d slot=%d → %d not monotone (prev %d)", shards, slot, sh, prev)
			}
			prev = sh
			part := int(store.PartOfSlot(uint16(slot)))
			if owner, seen := partOwner[part]; seen && owner != sh {
				t.Fatalf("shards=%d part %d split across shards %d and %d", shards, part, owner, sh)
			}
			partOwner[part] = sh
		}
		if prev != shards-1 {
			t.Fatalf("shards=%d: last shard %d never reached", shards, prev)
		}
	}
}

// TestShardedSmoke runs the basic command surface against an 8-shard
// node: single-key ops spread across shards, whole-keyspace reads
// (DBSIZE, KEYS), WAIT, FLUSHALL, and INFO's shard section.
func TestShardedSmoke(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeShards(t, "node-a", log, nil, 8)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	if got := n.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	ctx := context.Background()
	const keys = 64
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%d", i)
			if v, err := n.Do(ctx, [][]byte{[]byte("SET"), []byte(k), []byte(k)}); err != nil || v.IsError() {
				t.Errorf("SET %s: %v %v", k, v, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		if v := mustDo(t, n, "GET", k); v.Text() != k {
			t.Fatalf("GET %s = %v", k, v)
		}
	}
	if v := mustDo(t, n, "DBSIZE"); v.Int != keys {
		t.Fatalf("DBSIZE = %v, want %d", v, keys)
	}
	if v := mustDo(t, n, "KEYS", "*"); len(v.Array) != keys {
		t.Fatalf("KEYS * returned %d keys, want %d", len(v.Array), keys)
	}
	if v := mustDo(t, n, "WAIT", "0", "0"); v.Int != 2 {
		t.Fatalf("WAIT = %v", v)
	}
	info := mustDo(t, n, "INFO").Text()
	for _, want := range []string{"shard_count:8", "barrier_ops:", "cross_slot_ops:", "queue_depth_total:"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	if v := mustDo(t, n, "FLUSHALL"); v.IsError() {
		t.Fatalf("FLUSHALL: %v", v)
	}
	if v := mustDo(t, n, "DBSIZE"); v.Int != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %v", v)
	}
	if n.Stats().BarrierOps.Load() == 0 {
		t.Fatal("barrier counter never incremented")
	}
}

// TestCrossSlotCommandsSpanShards exercises multi-key commands whose keys
// live on different execution shards (the CROSSSLOT case a standalone
// node accepts): the result must reflect both shards' current state.
func TestCrossSlotCommandsSpanShards(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeShards(t, "node-a", log, nil, 8)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	// Find two single-letter keys owned by different shards.
	a, b := "", ""
	for c := 'a'; c <= 'z'; c++ {
		k := string(c)
		if a == "" {
			a = k
			continue
		}
		if n.shardOfKey(k) != n.shardOfKey(a) {
			b = k
			break
		}
	}
	if b == "" {
		t.Fatal("no cross-shard key pair found")
	}
	mustDo(t, n, "SADD", a, "x", "y")
	mustDo(t, n, "SADD", b, "y", "z")
	before := n.Stats().CrossSlotOps.Load()
	if v := mustDo(t, n, "SINTERSTORE", "dst"+a, a, b); v.Int != 1 {
		t.Fatalf("SINTERSTORE = %v, want 1", v)
	}
	if v := mustDo(t, n, "SMEMBERS", "dst"+a); len(v.Array) != 1 || v.Array[0].Text() != "y" {
		t.Fatalf("SMEMBERS dst = %v", v)
	}
	if n.Stats().CrossSlotOps.Load() == before {
		t.Fatal("cross-slot counter never incremented")
	}
}

// TestBarrierConsistentCut is the barrier-correctness test: two keys on
// different execution shards are only ever written together by an atomic
// MULTI/EXEC that keeps them equal, while readers snapshot both through a
// cross-shard transaction. Any reader observing unequal values caught a
// torn cut — single-shard execution leaking through the barrier.
func TestBarrierConsistentCut(t *testing.T) {
	svc := testService(t, netsim.Fixed(500*time.Microsecond))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeShards(t, "node-a", log, nil, 8)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	ctx := context.Background()
	const left, right = "{cut-l}v", "{cut-r}v"
	if n.shardOfKey(left) == n.shardOfKey(right) {
		t.Fatalf("test keys landed on one shard (%d); pick different tags", n.shardOfKey(left))
	}
	set := func(val string) [][][]byte {
		return [][][]byte{
			{[]byte("SET"), []byte(left), []byte(val)},
			{[]byte("SET"), []byte(right), []byte(val)},
		}
	}
	if v, err := n.DoBatch(ctx, set("0")); err != nil || v.IsError() {
		t.Fatalf("seed batch: %v %v", v, err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: bump both keys atomically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if v, err := n.DoBatch(ctx, set(fmt.Sprintf("%d", i))); err != nil || v.IsError() {
				t.Errorf("writer batch %d: %v %v", i, v, err)
				return
			}
		}
	}()
	// Noise: single-key traffic keeps the shard queues busy so parks
	// genuinely wait behind queued work.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("noise%d-%d", c, i%16)
				n.Do(ctx, [][]byte{[]byte("SET"), []byte(k), []byte("x")})
			}
		}(c)
	}
	// Readers: snapshot both keys in one cross-shard transaction.
	reads := 0
	deadline := time.Now().Add(800 * time.Millisecond)
	for time.Now().Before(deadline) {
		v, err := n.DoBatch(ctx, [][][]byte{
			{[]byte("GET"), []byte(left)},
			{[]byte("GET"), []byte(right)},
		})
		if err != nil || v.IsError() {
			t.Fatalf("reader batch: %v %v", v, err)
		}
		if len(v.Array) != 2 {
			t.Fatalf("reader batch reply: %v", v)
		}
		if l, r := v.Array[0].Text(), v.Array[1].Text(); l != r {
			t.Fatalf("torn cut: %s=%q %s=%q", left, l, right, r)
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads < 10 {
		t.Fatalf("only %d consistent-cut reads completed", reads)
	}
}

// TestShardedLinearizability runs the §7.2.2 consistency check against an
// 8-shard node with a mixed workload: per-key single-shard traffic plus
// cross-slot MULTI/EXEC writes that update two keys on different shards
// atomically. The recorded history must stay linearizable per key.
func TestShardedLinearizability(t *testing.T) {
	svc := testService(t, netsim.NewUniform(200*time.Microsecond, 2*time.Millisecond, 17))
	log, _ := svc.CreateLog("shard-1")
	n := testNodeShards(t, "node-a", log, nil, 8)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	rec := lin.NewRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	const clients = 6
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			gen := lin.NewGenerator(lin.GenConfig{Seed: int64(clientID), Keys: 4, WriteRatio: 0.5})
			for i := 0; i < 12; i++ {
				if i%4 == 3 {
					// Cross-slot atomic write: both keys get the same
					// value at one commit point inside the op window, so
					// each key's write linearizes there.
					val := fmt.Sprintf("x%d-%d", clientID, i)
					k1, k2 := "key0", "key2"
					call := rec.Invoke()
					v, err := n.DoBatch(ctx, [][][]byte{
						{[]byte("SET"), []byte(k1), []byte(val)},
						{[]byte("SET"), []byte(k2), []byte(val)},
					})
					out := lin.Output{Err: err != nil || v.IsError()}
					in := lin.Input{Kind: "set", Value: val}
					rec.Complete(clientID, k1, in, out, call)
					rec.Complete(clientID, k2, in, out, call)
					continue
				}
				key, in, args := gen.Next(clientID*1000 + i)
				argv := make([][]byte, len(args))
				for j, a := range args {
					argv[j] = []byte(a)
				}
				call := rec.Invoke()
				v, err := n.Do(ctx, argv)
				out := lin.Output{}
				if err != nil || v.IsError() {
					out.Err = true
				} else if in.Kind == "get" {
					out.Value = v.Text()
				}
				rec.Complete(clientID, key, in, out, call)
			}
		}(c)
	}
	wg.Wait()
	if ok, badKey := lin.Check(lin.RegisterModel{}, rec.History()); !ok {
		t.Fatalf("sharded history not linearizable (key %s)", badKey)
	}
}

// TestShardedReplicaApply checks replication at Shards>1: entries flow
// from a sharded primary to a sharded replica (whole-entry barrier apply)
// and a promoted replica serves every acknowledged write.
func TestShardedReplicaApply(t *testing.T) {
	svc := testService(t, netsim.Fixed(time.Millisecond))
	log, _ := svc.CreateLog("shard-1")
	primary := testNodeShards(t, "node-a", log, nil, 8)
	waitRole(t, primary, election.RolePrimary, 2*time.Second)
	replica := testNodeShards(t, "node-b", log, nil, 8)
	waitRole(t, replica, election.RoleReplica, time.Second)

	ctx := context.Background()
	const keys = 32
	for i := 0; i < keys; i++ {
		mustDo(t, primary, "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	// Cross-shard batch rides the barrier path on both sides.
	if v, err := primary.DoBatch(ctx, [][][]byte{
		{[]byte("SET"), []byte("{r1}a"), []byte("1")},
		{[]byte("SET"), []byte("{r2}b"), []byte("2")},
	}); err != nil || v.IsError() {
		t.Fatalf("cross-shard batch: %v %v", v, err)
	}
	primary.Stop()
	waitRole(t, replica, election.RolePrimary, 3*time.Second)
	for i := 0; i < keys; i++ {
		if v := mustDo(t, replica, "GET", fmt.Sprintf("k%d", i)); v.Text() != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d lost across sharded failover: %v", i, v)
		}
	}
	if v := mustDo(t, replica, "GET", "{r1}a"); v.Text() != "1" {
		t.Fatalf("{r1}a lost: %v", v)
	}
	if v := mustDo(t, replica, "GET", "{r2}b"); v.Text() != "2" {
		t.Fatalf("{r2}b lost: %v", v)
	}
}

// TestSingleShardMatchesLegacyLog pins the N=1 compatibility contract:
// Shards=1 must produce exactly the log a pre-sharding node produced for
// the same workload — same entry count, same records per entry.
func TestSingleShardMatchesLegacyLog(t *testing.T) {
	run := func(shards int) txlog.Stats {
		svc := testService(t, netsim.Fixed(time.Millisecond))
		log, _ := svc.CreateLog("shard-1")
		n := testNodeShards(t, "node-s", log, nil, shards)
		waitRole(t, n, election.RolePrimary, 2*time.Second)
		for i := 0; i < 20; i++ {
			mustDo(t, n, "SET", fmt.Sprintf("k%d", i), "v")
		}
		mustDo(t, n, "DEL", "k0")
		n.Stop()
		return log.Stats()
	}
	got := run(1)
	if got.DataAppends == 0 || got.Records != 21 {
		t.Fatalf("Shards=1 log stats off: %+v", got)
	}
}
