package core

import (
	"errors"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/snapshot"
	"memorydb/internal/tracker"
	"memorydb/internal/txlog"
)

func (n *Node) electionConfig() election.Config {
	return election.Config{
		NodeID:     n.cfg.NodeID,
		Lease:      n.cfg.Lease,
		Backoff:    n.cfg.Backoff,
		RenewEvery: n.cfg.RenewEvery,
		Clock:      n.clk,
	}
}

// roleLoop drives the node through its lifecycle: replica (tail the log,
// campaign when the primary goes silent) → primary (renew lease) →
// demoted (resynchronize) → replica.
func (n *Node) roleLoop() {
	defer n.wg.Done()
	// Initial bootstrap: restore state before serving, retrying through
	// transient log/S3 unavailability.
	for n.resync() != nil {
		if n.stopCtx.Err() != nil {
			return
		}
		n.clk.Sleep(n.cfg.ReplicaPoll * 10)
	}
	for {
		select {
		case <-n.stopCtx.Done():
			return
		default:
		}
		switch n.Role() {
		case election.RoleReplica:
			n.runReplica()
		case election.RolePrimary:
			n.runPrimary()
		case election.RoleDemoted:
			if err := n.resync(); err != nil {
				if n.stopCtx.Err() != nil {
					return
				}
				// Transient restore failure (log/S3 unavailable): retry.
				n.clk.Sleep(n.cfg.ReplicaPoll * 10)
				continue
			}
			n.setRole(election.RoleReplica, 0)
		}
	}
}

// runReplica tails the transaction log, applying entries through the
// workloop, observing lease renewals, and campaigning for leadership when
// the backoff window elapses with no renewal observed (§4.1).
func (n *Node) runReplica() {
	reader := n.cfg.Log.NewReader(n.appliedPos())
	obs := election.NewObserver(n.electionConfig())
	// A pristine shard has never had a leader; there is no lease to
	// respect, so the first replica may campaign immediately.
	bootstrap := n.cfg.Log.CurrentEpoch() == 0 && n.cfg.Log.CommittedTail() == txlog.ZeroID

	for {
		select {
		case <-n.stopCtx.Done():
			return
		default:
		}
		if n.partitioned() {
			// Cut off from the log service: no reads, no campaigning.
			n.clk.Sleep(n.cfg.ReplicaPoll)
			continue
		}
		progressed := false
		for {
			e, ok, err := reader.TryNext()
			if err != nil {
				if errors.Is(err, txlog.ErrUnavailable) {
					// Transient service outage: the cursor is unchanged, so
					// the tailer reconnects by polling again — resuming from
					// the last delivered entry with no gaps or duplicates.
					// Demoting here would turn every log blip into replica
					// churn (and a pointless full restore).
					break
				}
				// The log was trimmed past our position: fall back to a
				// full restore from snapshot.
				n.setRole(election.RoleDemoted, 0)
				return
			}
			if !ok {
				break
			}
			progressed = true
			switch e.Type {
			case txlog.EntryLease, txlog.EntryLeadership:
				obs.ObserveRenewal()
				bootstrap = false
				if e.Type == txlog.EntryLeadership {
					n.mu.Lock()
					if e.Epoch > n.epoch {
						n.epoch = e.Epoch
					}
					n.mu.Unlock()
				}
				n.applyViaWorkloop(e)
			case txlog.EntryControl:
				if string(e.Payload) == string(LeaseReleasePayload) {
					// Collaborative hand-over: the primary released its
					// lease, so the backoff no longer applies.
					bootstrap = true
				}
				n.applyViaWorkloop(e)
			default:
				if err := n.applyViaWorkloop(e); err != nil {
					if errors.Is(err, errUpgradeStall) {
						// Stop consuming the log (§7.1) but keep serving
						// stale reads until the control plane replaces us.
						n.waitUntilStopped()
						return
					}
					n.setRole(election.RoleDemoted, 0)
					return
				}
			}
		}
		if !progressed {
			if (bootstrap || obs.CanCampaign()) && reader.CaughtUp() && !n.Stalled() {
				if n.campaign(reader.Position()) {
					return // promoted; role loop switches to runPrimary
				}
				// Lost the race or log unavailable; refresh the reader
				// position view and keep tailing.
				obs.ObserveRenewal()
				bootstrap = false
			}
			n.clk.Sleep(n.cfg.ReplicaPoll)
		}
	}
}

func (n *Node) applyViaWorkloop(e txlog.Entry) error {
	t := &task{kind: taskApply, entry: e, applyCh: make(chan error, 1)}
	select {
	case n.tasks <- t:
	case <-n.stopCtx.Done():
		return ErrStopped
	}
	select {
	case err := <-t.applyCh:
		return err
	case <-n.stopCtx.Done():
		return ErrStopped
	}
}

// campaign attempts to acquire leadership conditioned on the replica's
// observed tail. Only a fully caught-up replica can succeed (§4.1.2).
func (n *Node) campaign(observedTail txlog.EntryID) bool {
	if n.partitioned() {
		return false
	}
	lease, claimID, err := election.Campaign(n.stopCtx, n.cfg.Log, n.electionConfig(), observedTail)
	if err != nil {
		return false
	}
	n.mu.Lock()
	n.lease = lease
	n.epoch = lease.Epoch()
	// Fresh tracker: the durable watermark starts at the claim entry.
	n.trk = tracker.New(claimID.Seq)
	n.mu.Unlock()
	// The workloop chains appends after the claim entry; install the
	// positions through the workloop so no other goroutine touches its
	// state. The running checksum continues from the log's value at the
	// claim (the claim is committed, so ChecksumAt cannot fail except on
	// a concurrent trim, in which case zero restarts verification).
	sum, _ := n.cfg.Log.ChecksumAt(claimID)
	t := &task{kind: taskSwap, newApplied: claimID, setIssued: true, newChecksum: sum, swapCh: make(chan struct{})}
	select {
	case n.tasks <- t:
		<-t.swapCh
	case <-n.stopCtx.Done():
		return false
	}
	n.setRole(election.RolePrimary, lease.Epoch())
	return true
}

// runPrimary renews the lease periodically and self-demotes when the
// lease can no longer be extended.
func (n *Node) runPrimary() {
	ticker := n.cfg.RenewEvery
	sweepCounter := 0
	for {
		select {
		case <-n.stopCtx.Done():
			return
		case <-n.roleChanged:
			if n.Role() != election.RolePrimary {
				return
			}
		case <-n.clk.After(ticker):
			n.mu.Lock()
			lease := n.lease
			role := n.role
			n.mu.Unlock()
			if role != election.RolePrimary {
				return
			}
			if lease == nil || !lease.Valid() {
				n.demote()
				return
			}
			select {
			case n.tasks <- &task{kind: taskRenew}:
			case <-n.stopCtx.Done():
				return
			}
			sweepCounter++
			if sweepCounter%4 == 0 {
				select {
				case n.tasks <- &task{kind: taskSweep}:
				default:
				}
			}
		}
	}
}

// resync rebuilds the node's state from durable sources: the latest
// snapshot in S3 (when configured) plus the transaction log suffix
// (§4.2.1). It runs entirely against shared, separately scaled services —
// no interaction with live peers.
func (n *Node) resync() error {
	if n.partitioned() {
		return errors.New("core: partitioned from durable sources")
	}
	eng := engine.New(n.clk)
	from := txlog.ZeroID
	if n.cfg.Snapshots != nil {
		db, meta, ok, err := n.cfg.Snapshots.Latest(n.cfg.ShardID)
		if err != nil {
			return err
		}
		if ok {
			if meta.EngineVersion > n.cfg.EngineVersion {
				return errors.New("core: snapshot produced by newer engine version")
			}
			eng.ResetDB(db)
			from = meta.LogPos
			n.stats.SnapshotRestores.Add(1)
		}
	}
	// Replay the suffix up to the committed tail at restore time; the
	// replica tailer continues from there.
	target := n.cfg.Log.CommittedTail()
	if err := snapshot.ReplayRange(n.stopCtx, n.cfg.Log, eng, from, target); err != nil {
		if errors.Is(err, txlog.ErrTrimmed) && n.cfg.Snapshots == nil {
			return errors.New("core: log trimmed and no snapshot store configured")
		}
		return err
	}
	// Install the rebuilt state and a fresh tracker via the workloop.
	t := &task{kind: taskSwap, newEng: eng, newApplied: target, swapCh: make(chan struct{})}
	select {
	case n.tasks <- t:
	case <-n.stopCtx.Done():
		return ErrStopped
	}
	select {
	case <-t.swapCh:
	case <-n.stopCtx.Done():
		return ErrStopped
	}
	n.mu.Lock()
	n.trk = tracker.New(target.Seq)
	n.stalled = false
	n.mu.Unlock()
	return nil
}

func (n *Node) appliedPos() txlog.EntryID {
	// applied is workloop-owned; reading from the role loop is safe
	// because applies are driven synchronously by this same goroutine
	// while in replica role, and across role transitions the workloop is
	// quiescent for apply tasks.
	return n.applied
}

func (n *Node) waitUntilStopped() {
	<-n.stopCtx.Done()
}
