package core

import (
	"errors"

	"memorydb/internal/election"
	"memorydb/internal/engine"
	"memorydb/internal/snapshot"
	"memorydb/internal/trace"
	"memorydb/internal/tracker"
	"memorydb/internal/txlog"
)

func (n *Node) electionConfig() election.Config {
	return election.Config{
		NodeID:     n.cfg.NodeID,
		Lease:      n.cfg.Lease,
		Backoff:    n.cfg.Backoff,
		RenewEvery: n.cfg.RenewEvery,
		Clock:      n.clk,
	}
}

// roleLoop drives the node through its lifecycle: replica (tail the log,
// campaign when the primary goes silent) → primary (renew lease) →
// demoted (resynchronize) → replica.
func (n *Node) roleLoop() {
	defer n.wg.Done()
	// Initial bootstrap: restore state before serving, retrying through
	// transient log/S3 unavailability.
	for n.resync() != nil {
		if n.stopCtx.Err() != nil {
			return
		}
		n.clk.Sleep(n.cfg.ReplicaPoll * 10)
	}
	for {
		select {
		case <-n.stopCtx.Done():
			return
		default:
		}
		if !n.gate() {
			return
		}
		switch n.Role() {
		case election.RoleReplica:
			n.runReplica()
		case election.RolePrimary:
			n.runPrimary()
		case election.RoleDemoted:
			// Drain the workloop before rebuilding state: when demotion
			// came from the role loop (lease expiry) the workloop may
			// still be inside a flush retry holding client replies gated
			// under the lost leadership. Those replies must fail out
			// while the node is observably demoted — resync would
			// otherwise race ahead and rejoin as a replica before the
			// failed writers ever saw the step-down.
			if !n.drainWorkloop() {
				return
			}
			// Fencing quarantine: a deposed primary sits out one full
			// backoff window before resyncing and rejoining. The window
			// guarantees the step-down is externally observable (failed
			// writers receive their errors while the node is still
			// demoted, never after it has already re-entered the fleet)
			// and that a caught-up successor has had time to claim
			// leadership, so the rejoin replays the new regime's history
			// rather than racing its election.
			n.clk.Sleep(n.cfg.Backoff)
			if n.stopCtx.Err() != nil {
				return
			}
			if err := n.resync(); err != nil {
				if n.stopCtx.Err() != nil {
					return
				}
				// Transient restore failure (log/S3 unavailable): retry.
				n.clk.Sleep(n.cfg.ReplicaPoll * 10)
				continue
			}
			n.setRole(election.RoleReplica, 0)
		}
	}
}

// runReplica tails the transaction log, applying entries through the
// workloop, observing lease renewals, and campaigning for leadership when
// the backoff window elapses with no renewal observed (§4.1).
func (n *Node) runReplica() {
	reader := n.cfg.Log.NewReader(n.appliedPos())
	obs := election.NewObserver(n.electionConfig())
	// A pristine shard has never had a leader; there is no lease to
	// respect, so the first replica may campaign immediately.
	bootstrap := n.cfg.Log.CurrentEpoch() == 0 && n.cfg.Log.CommittedTail() == txlog.ZeroID

	for {
		select {
		case <-n.stopCtx.Done():
			return
		default:
		}
		if !n.gate() {
			// Stopped while crash-frozen: unwind without campaigning — a
			// dead replica must never become primary.
			return
		}
		if n.partitioned() {
			// Cut off from the log service: no reads, no campaigning.
			n.clk.Sleep(n.cfg.ReplicaPoll)
			continue
		}
		progressed := false
		for {
			e, ok, err := reader.TryNext()
			if err != nil {
				if errors.Is(err, txlog.ErrUnavailable) {
					// Transient service outage: the cursor is unchanged, so
					// the tailer reconnects by polling again — resuming from
					// the last delivered entry with no gaps or duplicates.
					// Demoting here would turn every log blip into replica
					// churn (and a pointless full restore).
					break
				}
				if errors.Is(err, txlog.ErrTrimmed) || errors.Is(err, txlog.ErrCorruptSegment) {
					// The trim coordinator dropped segments behind us (a
					// lagging tailer on a healthy, bounded log), or the
					// segment under the cursor was quarantined. Either way
					// the log can no longer serve our position — but a
					// snapshot can: re-bootstrap in place from the latest
					// usable snapshot plus the retained suffix, staying a
					// replica throughout. No demotion, no quarantine sleep.
					if !n.rebootstrapTailer() {
						return
					}
					reader = n.cfg.Log.NewReader(n.appliedPos())
					// The restore may have taken a while; treat it as having
					// just observed the primary so the fresh tailer does not
					// instantly campaign against a live lease it simply
					// hasn't read yet.
					obs.ObserveRenewal()
					bootstrap = false
					break
				}
				// Any other fatal read error: fall back to a full restore
				// through the demotion path.
				n.setRole(election.RoleDemoted, 0)
				return
			}
			if !ok {
				// Clean caught-up break: the reader drained the log to
				// its committed tail with the service answering — a
				// replica-LOCAL freshness proof (never the primary's
				// clock) that bounded-staleness serving measures from.
				// Under a partition or outage this point is never
				// reached, so the proof freezes and staleness grows.
				if !n.partitioned() {
					n.readGate.NoteFresh(n.clk.Now())
				}
				break
			}
			progressed = true
			// Fold in the piggybacked primary watermark. Entries arrive
			// in log order, so an in-log epoch regression is impossible
			// (conditional appends fence stale writers); the epoch check
			// is defense-in-depth against a replayed feed, and anything
			// it rejects is counted — a deposed primary's view must not
			// advance staleness accounting.
			if !n.readGate.NoteWatermark(e.EpochValue(), e.Watermark) {
				n.stats.WatermarksFenced.Add(1)
				n.flight.Recordf(trace.EvWatermarkFence, e.ID.Seq, "stale watermark from epoch %d rejected", e.EpochValue())
			}
			switch e.Type {
			case txlog.EntryLease, txlog.EntryLeadership:
				obs.ObserveRenewal()
				bootstrap = false
				if e.Type == txlog.EntryLeadership {
					n.mu.Lock()
					if e.Epoch > n.epoch {
						n.epoch = e.Epoch
					}
					n.mu.Unlock()
				}
				n.applyEntry(e)
			case txlog.EntryControl:
				if string(e.Payload) == string(LeaseReleasePayload) {
					// Collaborative hand-over: the primary released its
					// lease, so the backoff no longer applies.
					bootstrap = true
				}
				n.applyEntry(e)
			default:
				if err := n.applyEntry(e); err != nil {
					if errors.Is(err, errUpgradeStall) {
						// Stop consuming the log (§7.1) but keep serving
						// stale reads until the control plane replaces us.
						n.waitUntilStopped()
						return
					}
					n.setRole(election.RoleDemoted, 0)
					return
				}
			}
		}
		if !progressed {
			if (bootstrap || obs.CanCampaign()) && reader.CaughtUp() && !n.Stalled() {
				if n.campaign(reader.Position()) {
					return // promoted; role loop switches to runPrimary
				}
				// Lost the race or log unavailable; refresh the reader
				// position view and keep tailing.
				obs.ObserveRenewal()
				bootstrap = false
			}
			n.clk.Sleep(n.cfg.ReplicaPoll)
		}
	}
}

// rebootstrapTailer rebuilds the replica's state from the latest usable
// snapshot plus the retained log suffix after its tailer fell behind the
// trim base (or hit a quarantined segment). It retries through transient
// failures and — the one loud case — through ErrLogTrimmedGap, which means
// the trim coordinator discarded entries no snapshot covers; each gap
// retry is counted so tests and alarms can assert it never happens.
// Returns false when the node stopped instead.
func (n *Node) rebootstrapTailer() bool {
	n.stats.ReaderRebootstraps.Add(1)
	n.flight.Record(trace.EvTailerRebootstrap, n.applied.Seq, "tailer position trimmed or quarantined; restoring from snapshot")
	for {
		err := n.resync()
		if err == nil {
			return true
		}
		if n.stopCtx.Err() != nil {
			return false
		}
		if errors.Is(err, ErrLogTrimmedGap) {
			n.stats.LogGapRetries.Add(1)
		}
		n.clk.Sleep(n.cfg.ReplicaPoll * 10)
		if !n.gate() {
			return false
		}
	}
}

// campaign attempts to acquire leadership conditioned on the replica's
// observed tail. Only a fully caught-up replica can succeed (§4.1.2).
func (n *Node) campaign(observedTail txlog.EntryID) bool {
	if n.partitioned() {
		return false
	}
	lease, claimID, err := election.Campaign(n.stopCtx, n.cfg.Log, n.electionConfig(), observedTail)
	if err != nil {
		return false
	}
	n.mu.Lock()
	n.lease = lease
	n.epoch = lease.Epoch()
	// Fresh tracker: the durable watermark starts at the claim entry.
	n.trk = tracker.New(claimID.Seq)
	n.mu.Unlock()
	// The sequencer chains appends after the claim entry; install the
	// positions under an all-shard barrier so no workloop observes them
	// mid-change. The running checksum continues from the log's value at
	// the claim (the claim is committed, so ChecksumAt cannot fail except
	// on a concurrent trim, in which case zero restarts verification).
	sum, _ := n.cfg.Log.ChecksumAt(claimID)
	if !n.installState(nil, claimID, true, sum) {
		return false
	}
	n.setRole(election.RolePrimary, lease.Epoch())
	return true
}

// runPrimary renews the lease periodically and self-demotes when the
// lease can no longer be extended.
func (n *Node) runPrimary() {
	ticker := n.cfg.RenewEvery
	sweepCounter := 0
	for {
		select {
		case <-n.stopCtx.Done():
			return
		case <-n.roleChanged:
			if n.Role() != election.RolePrimary {
				return
			}
		case <-n.clk.After(ticker):
			if !n.gate() {
				return
			}
			n.mu.Lock()
			lease := n.lease
			role := n.role
			n.mu.Unlock()
			if role != election.RolePrimary {
				return
			}
			if lease == nil || !lease.Valid() {
				n.demote()
				return
			}
			select {
			case n.shards[0].tasks <- &task{kind: taskRenew, shard: 0}:
			case <-n.stopCtx.Done():
				return
			}
			sweepCounter++
			if sweepCounter%4 == 0 {
				// Every shard sweeps its own part range, so expiry DELs
				// flow through the owning shard's group-commit buffer.
				for _, sh := range n.shards {
					select {
					case sh.tasks <- &task{kind: taskSweep, shard: sh.idx}:
					default:
					}
				}
			}
		}
	}
}

// ErrLogTrimmedGap reports that the transaction log was trimmed past the
// replay start position (no snapshot, or none new enough): the suffix
// needed to bridge snapshot → tail no longer exists, and a restore must
// fail loudly rather than replay across the gap — a gapped replay would
// silently drop committed writes. Recovery needs a newer snapshot to
// appear (the scheduler's next run), so callers may retry.
var ErrLogTrimmedGap = errors.New("core: log trimmed past newest usable snapshot; refusing gapped replay")

// resync rebuilds the node's state from durable sources: the latest
// usable snapshot in S3 (when configured) plus the transaction log suffix
// (§4.2.1). It runs entirely against shared, separately scaled services —
// no interaction with live peers. Corrupt or torn snapshot versions are
// skipped (counted in TornSnapshotsDetected), falling back to the next
// older version or pure log replay (§7.2.1).
func (n *Node) resync() error {
	if !n.gate() {
		return ErrStopped
	}
	if n.partitioned() {
		return errors.New("core: partitioned from durable sources")
	}
	eng := engine.New(n.clk)
	eng.SetObs(n.obs)
	eng.SetTrace(n.trace)
	eng.SetFlight(n.flight)
	from := txlog.ZeroID
	if n.cfg.Snapshots != nil {
		db, meta, skipped, ok, err := n.cfg.Snapshots.LatestUsable(n.cfg.ShardID)
		if skipped > 0 {
			n.stats.TornSnapshotsDetected.Add(int64(skipped))
		}
		if err != nil {
			return err
		}
		if ok {
			if meta.EngineVersion > n.cfg.EngineVersion {
				return errors.New("core: snapshot produced by newer engine version")
			}
			eng.ResetDB(db)
			from = meta.LogPos
			n.stats.SnapshotRestores.Add(1)
		}
	}
	// Replay the suffix up to the committed tail at restore time; the
	// replica tailer continues from there.
	target := n.cfg.Log.CommittedTail()
	if err := snapshot.ReplayRange(n.stopCtx, n.cfg.Log, eng, from, target); err != nil {
		if errors.Is(err, txlog.ErrTrimmed) {
			return ErrLogTrimmedGap
		}
		return err
	}
	// Install the rebuilt state under an all-shard barrier, then a fresh
	// tracker.
	if !n.installState(eng, target, false, 0) {
		return ErrStopped
	}
	n.mu.Lock()
	n.trk = tracker.New(target.Seq)
	n.stalled = false
	n.mu.Unlock()
	return nil
}

// drainWorkloop round-trips a barrier task through every shard workloop,
// blocking until everything queued (and in flight) ahead of it has been
// handled on each. Returns false when the node stopped instead.
func (n *Node) drainWorkloop() bool {
	for _, sh := range n.shards {
		t := &task{kind: taskBarrier, shard: sh.idx, swapCh: make(chan struct{})}
		select {
		case sh.tasks <- t:
		case <-n.stopCtx.Done():
			return false
		}
		select {
		case <-t.swapCh:
		case <-n.stopCtx.Done():
			return false
		}
	}
	return true
}

func (n *Node) appliedPos() txlog.EntryID {
	// applied is owned by the role loop (the single apply driver), so
	// reading it from here is always safe.
	return n.applied
}

func (n *Node) waitUntilStopped() {
	<-n.stopCtx.Done()
}
