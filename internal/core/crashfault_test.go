package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/election"
	"memorydb/internal/faultpoint"
	"memorydb/internal/netsim"
	"memorydb/internal/s3"
	"memorydb/internal/snapshot"
	"memorydb/internal/txlog"
)

// TestResyncTrimmedGapFails: when the log has been trimmed past the
// newest usable snapshot, resync must fail with the explicit
// ErrLogTrimmedGap — never replay across the gap, which would silently
// drop the committed entries that lived in it.
func TestResyncTrimmedGapFails(t *testing.T) {
	// Own service with a tiny segment threshold: Trim only drops whole
	// sealed segments, so the default threshold would never produce the
	// gap this test needs.
	svc := txlog.NewService(txlog.Config{
		Clock:          clock.NewReal(),
		CommitLatency:  netsim.Zero{},
		SegmentEntries: 4,
	})
	log, _ := svc.CreateLog("shard-trim")
	snaps := snapshot.NewManager(s3.New(), "snaps")
	p := testNode(t, "node-a", log, snaps)
	waitRole(t, p, election.RolePrimary, 2*time.Second)

	for i := 0; i < 8; i++ {
		mustDo(t, p, "SET", "pre", "v")
	}
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1}
	meta, err := ob.Run(context.Background(), log.ShardID(), log)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustDo(t, p, "SET", "post", "v")
	}
	// Trim past the snapshot position: the suffix the snapshot needs is
	// gone. (Whole-segment trim lands on the last sealed boundary at or
	// below the tail — with 4-entry segments that is well past the
	// snapshot.)
	log.Trim(log.CommittedTail())
	if log.TrimBase().Seq <= meta.LogPos.Seq {
		t.Fatalf("test setup: trim base %v did not pass the snapshot position %v",
			log.TrimBase(), meta.LogPos)
	}

	fresh, err := NewNode(Config{
		NodeID: "node-fresh", ShardID: log.ShardID(), Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Snapshots: snaps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.resync(); !errors.Is(err, ErrLogTrimmedGap) {
		t.Fatalf("resync across trimmed gap: err = %v, want ErrLogTrimmedGap", err)
	}

	// Without any snapshot store the same trim is equally fatal: a cold
	// replay from zero hits the trim point immediately.
	bare, err := NewNode(Config{
		NodeID: "node-bare", ShardID: log.ShardID(), Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.resync(); !errors.Is(err, ErrLogTrimmedGap) {
		t.Fatalf("snapshotless resync across trim: err = %v, want ErrLogTrimmedGap", err)
	}
}

// TestResyncSkipsTornSnapshotAndCounts: a corrupt newest snapshot must
// not block a restore — resync falls back to the older good version and
// records the skip in TornSnapshotsDetected.
func TestResyncSkipsTornSnapshotAndCounts(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-torn")
	st := s3.New()
	snaps := snapshot.NewManager(st, "snaps")
	p := testNode(t, "node-a", log, snaps)
	waitRole(t, p, election.RolePrimary, 2*time.Second)

	mustDo(t, p, "SET", "good", "1")
	ob := &snapshot.Offbox{Manager: snaps, EngineVersion: 1}
	if _, err := ob.Run(context.Background(), log.ShardID(), log); err != nil {
		t.Fatal(err)
	}
	mustDo(t, p, "SET", "later", "2")
	faults := faultpoint.New(3)
	faults.Arm(faultpoint.SiteSnapUpload, faultpoint.Corrupt, 0)
	obBad := &snapshot.Offbox{Manager: snaps, EngineVersion: 1, Faults: faults}
	if _, err := obBad.Run(context.Background(), log.ShardID(), log); err != nil {
		t.Fatal(err)
	}

	fresh := testNode(t, "node-fresh", log, snaps)
	// The bootstrap resync runs asynchronously in the role loop; wait for
	// it to have walked past the damaged version.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && fresh.Stats().TornSnapshotsDetected.Load() < 1 {
		time.Sleep(2 * time.Millisecond)
	}
	if got := fresh.Stats().TornSnapshotsDetected.Load(); got < 1 {
		t.Fatalf("TornSnapshotsDetected = %d, want >= 1", got)
	}
	waitRole(t, fresh, election.RoleReplica, 2*time.Second)
	v, err := fresh.DoReadOnly(context.Background(), [][]byte{[]byte("GET"), []byte("later")})
	if err != nil || v.Text() != "2" {
		t.Fatalf("replica read after torn-snapshot fallback: %q %v", v.Text(), err)
	}
}

// TestFreezeThawGate covers the crash primitive itself: a frozen node
// parks client tasks at the gate (no replies, like a dead process), a
// stopped-while-frozen node fails them with ErrStopped, and a thawed
// node resumes service.
func TestFreezeThawGate(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-freeze")
	n := testNode(t, "node-a", log, nil)
	waitRole(t, n, election.RolePrimary, 2*time.Second)
	mustDo(t, n, "SET", "k", "v1")

	n.Freeze()
	if !n.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	_, err := n.Do(ctx, [][]byte{[]byte("GET"), []byte("k")})
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("command against frozen node: err = %v, want deadline exceeded", err)
	}

	n.Thaw()
	if n.Frozen() {
		t.Fatal("Frozen() true after Thaw")
	}
	// Thawed with time still on the lease (the freeze was shorter than
	// the lease) the node serves again; if the lease lapsed it demotes —
	// either way the node answers instead of hanging.
	ctx, cancel = context.WithTimeout(context.Background(), time.Second)
	_, err = n.Do(ctx, [][]byte{[]byte("GET"), []byte("k")})
	cancel()
	if err != nil {
		t.Fatalf("command against thawed node: %v", err)
	}
}

// TestCheckpointErrorIsTransient: an Error decision at a fault site
// surfaces as txlog.ErrUnavailable — the transient taxonomy — so the
// retry discipline, not demotion, absorbs it.
func TestCheckpointErrorIsTransient(t *testing.T) {
	svc := testService(t, netsim.Zero{})
	log, _ := svc.CreateLog("shard-ckpt")
	faults := faultpoint.New(1)
	n, err := NewNode(Config{
		NodeID: "node-a", ShardID: log.ShardID(), Log: log,
		Lease: 120 * time.Millisecond, Backoff: 160 * time.Millisecond,
		RenewEvery: 30 * time.Millisecond, ReplicaPoll: time.Millisecond,
		Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	waitRole(t, n, election.RolePrimary, 2*time.Second)

	// One transient error on the next append: the lease-bounded retry
	// loop must absorb it and the write must still acknowledge.
	faults.Arm(faultpoint.SiteAppendPre, faultpoint.Error, 0)
	mustDo(t, n, "SET", "k", "v1")
	if faults.Fired(faultpoint.SiteAppendPre, faultpoint.Error) != 1 {
		t.Fatal("armed transient error never fired")
	}
	if n.Stats().AppendsRetried.Load() == 0 {
		t.Fatal("transient checkpoint error was not retried")
	}
	if v := mustDo(t, n, "GET", "k"); v.Text() != "v1" {
		t.Fatalf("GET = %q after retried append, want v1", v.Text())
	}
}
