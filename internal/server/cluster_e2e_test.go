package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/cluster"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// startClusterServer boots a 2-shard cluster behind one TCP endpoint.
func startClusterServer(t *testing.T) (*Server, *cluster.Cluster) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}})
	c, err := cluster.New(cluster.Config{
		Name: "e2e", NumShards: 2, ReplicasPerShard: 1,
		LogService: svc,
		Lease:      200 * time.Millisecond, Backoff: 260 * time.Millisecond,
		RenewEvery: 50 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	for _, sh := range c.Shards() {
		if _, err := sh.WaitForPrimary(c.Clock(), 3*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(Config{Addr: "127.0.0.1:0", Backend: ClusterBackend{Cluster: c}, Multiplex: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, c
}

// TestClusterEndToEndOverTCP drives the full stack — TCP, RESP, routing,
// node, tracker, log — from a plain client connection.
func TestClusterEndToEndOverTCP(t *testing.T) {
	srv, _ := startClusterServer(t)
	c := dial(t, srv.Addr().String())

	// Keys spread across shards; the proxy backend routes transparently.
	for i := 0; i < 50; i++ {
		if v := c.do(t, "SET", fmt.Sprintf("k%d", i), "v"); v.Text() != "OK" {
			t.Fatalf("SET k%d = %v", i, v)
		}
	}
	for i := 0; i < 50; i++ {
		if v := c.do(t, "GET", fmt.Sprintf("k%d", i)); v.Text() != "v" {
			t.Fatalf("GET k%d = %v", i, v)
		}
	}

	// CLUSTER introspection over the wire.
	v := c.do(t, "CLUSTER", "SLOTS")
	if v.Type != resp.Array || len(v.Array) != 2 {
		t.Fatalf("CLUSTER SLOTS = %v", v)
	}
	if v := c.do(t, "CLUSTER", "KEYSLOT", "foo"); v.Int != 12182 {
		t.Fatalf("CLUSTER KEYSLOT = %v", v)
	}
	info := c.do(t, "CLUSTER", "INFO").Text()
	if !strings.Contains(info, "cluster_state:ok") {
		t.Fatalf("CLUSTER INFO = %q", info)
	}

	// MULTI/EXEC against hash-tagged (single-slot) keys.
	c.do(t, "MULTI")
	c.do(t, "SET", "{tx}a", "1")
	c.do(t, "INCR", "{tx}a")
	v = c.do(t, "EXEC")
	if v.Type != resp.Array || len(v.Array) != 2 || v.Array[1].Int != 2 {
		t.Fatalf("EXEC = %v", v)
	}
}

// TestClusterFailoverBehindTCP: kill a shard primary while a client
// keeps using the same connection; after the hand-over the same endpoint
// serves the same data.
func TestClusterFailoverBehindTCP(t *testing.T) {
	srv, cl := startClusterServer(t)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "SET", "stable", "value"); v.Text() != "OK" {
		t.Fatalf("SET = %v", v)
	}
	// Kill every primary.
	for _, sh := range cl.Shards() {
		if p, ok := sh.Primary(); ok {
			p.Stop()
		}
	}
	for _, sh := range cl.Shards() {
		if _, err := sh.WaitForPrimary(cl.Clock(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := c.do(t, "GET", "stable")
		if v.Text() == "value" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("data unreachable after failover: %v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
