package server

import (
	"context"

	"memorydb/internal/baseline"
	"memorydb/internal/cluster"
	"memorydb/internal/core"
	"memorydb/internal/resp"
)

// readOpts maps a connection's ReadMode onto the node's read ladder.
func readOpts(mode ReadMode) core.ReadOpts {
	switch {
	case mode.Eventual:
		return core.ReadOpts{Consistency: core.ReadEventual}
	case mode.Stale > 0:
		return core.ReadOpts{Consistency: core.ReadBoundedStale, StalenessBound: mode.Stale}
	default:
		return core.ReadOpts{Consistency: core.ReadLinearizable}
	}
}

// NodeBackend serves one MemoryDB node.
type NodeBackend struct {
	Node *core.Node
}

// Do implements Backend.
func (b NodeBackend) Do(ctx context.Context, argv [][]byte, mode ReadMode) (resp.Value, error) {
	if mode.ReadOnly {
		v, _, err := b.Node.DoRead(ctx, argv, readOpts(mode))
		return v, err
	}
	return b.Node.Do(ctx, argv)
}

// DoBatch implements Backend. The connection's read mode is threaded
// through so a READONLY pipeline's all-read batches take the replica
// read ladder instead of silently requiring the primary.
func (b NodeBackend) DoBatch(ctx context.Context, cmds [][][]byte, mode ReadMode) (resp.Value, error) {
	if mode.ReadOnly {
		v, _, err := b.Node.DoBatchRead(ctx, cmds, readOpts(mode))
		return v, err
	}
	return b.Node.DoBatch(ctx, cmds)
}

// ClusterOps is implemented by backends that can answer CLUSTER
// introspection subcommands (SLOTS, SHARDS, KEYSLOT, ...).
type ClusterOps interface {
	ClusterCommand(ctx context.Context, argv [][]byte) resp.Value
}

// ClusterBackend routes through the cluster's smart client, so a single
// endpoint serves the whole keyspace (a convenience proxy; real Redis
// cluster clients route themselves, which cluster.Client also models).
type ClusterBackend struct {
	Cluster *cluster.Cluster
}

// ClusterCommand implements ClusterOps.
func (b ClusterBackend) ClusterCommand(ctx context.Context, argv [][]byte) resp.Value {
	return b.Cluster.ClusterCommand(ctx, argv)
}

// Do implements Backend.
func (b ClusterBackend) Do(ctx context.Context, argv [][]byte, mode ReadMode) (resp.Value, error) {
	cl := b.Cluster.Client()
	if mode.ReadOnly {
		cl = b.Cluster.ReadClient(readOpts(mode))
	}
	return cl.DoArgv(ctx, argv)
}

// DoBatch implements Backend.
func (b ClusterBackend) DoBatch(ctx context.Context, cmds [][][]byte, mode ReadMode) (resp.Value, error) {
	strCmds := make([][]string, len(cmds))
	for i, c := range cmds {
		ss := make([]string, len(c))
		for j, a := range c {
			ss[j] = string(a)
		}
		strCmds[i] = ss
	}
	cl := b.Cluster.Client()
	if mode.ReadOnly {
		cl = b.Cluster.ReadClient(readOpts(mode))
	}
	return cl.MultiExec(ctx, strCmds)
}

// BaselineBackend serves an OSS-mode node.
type BaselineBackend struct {
	Node *baseline.Node
}

// errReadOnlyOSS rejects READONLY-mode traffic in OSS mode. This is an
// intentional divergence surfaced loudly: the baseline node has no
// durable log, no replicas and no replica read protocol, so a READONLY
// opt-in cannot take effect — and pretending it did (by serving from
// the only node there is) would let clients believe they exercised the
// replica read path when they did not.
var errReadOnlyOSS = resp.Err("ERR READONLY not supported in OSS mode")

// Do implements Backend.
func (b BaselineBackend) Do(ctx context.Context, argv [][]byte, mode ReadMode) (resp.Value, error) {
	if mode.ReadOnly {
		return errReadOnlyOSS, nil
	}
	return b.Node.Do(ctx, argv)
}

// DoBatch implements Backend.
func (b BaselineBackend) DoBatch(ctx context.Context, cmds [][][]byte, mode ReadMode) (resp.Value, error) {
	if mode.ReadOnly {
		return errReadOnlyOSS, nil
	}
	replies := make([]resp.Value, 0, len(cmds))
	for _, argv := range cmds {
		v, err := b.Node.Do(ctx, argv)
		if err != nil {
			return resp.Value{}, err
		}
		replies = append(replies, v)
	}
	return resp.ArrayV(replies...), nil
}
