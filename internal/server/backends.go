package server

import (
	"context"

	"memorydb/internal/baseline"
	"memorydb/internal/cluster"
	"memorydb/internal/core"
	"memorydb/internal/resp"
)

// NodeBackend serves one MemoryDB node.
type NodeBackend struct {
	Node *core.Node
}

// Do implements Backend.
func (b NodeBackend) Do(ctx context.Context, argv [][]byte, readonly bool) (resp.Value, error) {
	if readonly {
		return b.Node.DoReadOnly(ctx, argv)
	}
	return b.Node.Do(ctx, argv)
}

// DoBatch implements Backend.
func (b NodeBackend) DoBatch(ctx context.Context, cmds [][][]byte, readonly bool) (resp.Value, error) {
	return b.Node.DoBatch(ctx, cmds)
}

// ClusterOps is implemented by backends that can answer CLUSTER
// introspection subcommands (SLOTS, SHARDS, KEYSLOT, ...).
type ClusterOps interface {
	ClusterCommand(ctx context.Context, argv [][]byte) resp.Value
}

// ClusterBackend routes through the cluster's smart client, so a single
// endpoint serves the whole keyspace (a convenience proxy; real Redis
// cluster clients route themselves, which cluster.Client also models).
type ClusterBackend struct {
	Cluster *cluster.Cluster
}

// ClusterCommand implements ClusterOps.
func (b ClusterBackend) ClusterCommand(ctx context.Context, argv [][]byte) resp.Value {
	return b.Cluster.ClusterCommand(ctx, argv)
}

// Do implements Backend.
func (b ClusterBackend) Do(ctx context.Context, argv [][]byte, readonly bool) (resp.Value, error) {
	cl := b.Cluster.Client()
	if readonly {
		cl = b.Cluster.ReadOnlyClient()
	}
	return cl.DoArgv(ctx, argv)
}

// DoBatch implements Backend.
func (b ClusterBackend) DoBatch(ctx context.Context, cmds [][][]byte, readonly bool) (resp.Value, error) {
	strCmds := make([][]string, len(cmds))
	for i, c := range cmds {
		ss := make([]string, len(c))
		for j, a := range c {
			ss[j] = string(a)
		}
		strCmds[i] = ss
	}
	return b.Cluster.Client().MultiExec(ctx, strCmds)
}

// BaselineBackend serves an OSS-mode node.
type BaselineBackend struct {
	Node *baseline.Node
}

// Do implements Backend.
func (b BaselineBackend) Do(ctx context.Context, argv [][]byte, readonly bool) (resp.Value, error) {
	return b.Node.Do(ctx, argv)
}

// DoBatch implements Backend.
func (b BaselineBackend) DoBatch(ctx context.Context, cmds [][][]byte, readonly bool) (resp.Value, error) {
	replies := make([]resp.Value, 0, len(cmds))
	for _, argv := range cmds {
		v, err := b.Node.Do(ctx, argv)
		if err != nil {
			return resp.Value{}, err
		}
		replies = append(replies, v)
	}
	return resp.ArrayV(replies...), nil
}
