package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// startReplicaServer boots a primary+replica pair and serves the REPLICA
// over TCP, so READONLY routing is observable end to end: without the
// opt-in the replica rejects reads; with it they take the freshness
// ladder.
func startReplicaServer(t *testing.T) (*Server, *core.Node, *core.Node) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}})
	log, _ := svc.CreateLog("s1")
	mk := func(id string) *core.Node {
		n, err := core.NewNode(core.Config{
			NodeID: id, ShardID: "s1", Log: log,
			Lease: 200 * time.Millisecond, Backoff: 260 * time.Millisecond,
			RenewEvery: 50 * time.Millisecond, ReplicaPoll: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		t.Cleanup(n.Stop)
		return n
	}
	primary := mk("n1")
	deadline := time.Now().Add(3 * time.Second)
	for primary.Role() != election.RolePrimary {
		if time.Now().After(deadline) {
			t.Fatal("node never became primary")
		}
		time.Sleep(time.Millisecond)
	}
	replica := mk("n2")
	deadline = time.Now().Add(3 * time.Second)
	for replica.Role() != election.RoleReplica {
		if time.Now().After(deadline) {
			t.Fatal("second node never became replica")
		}
		time.Sleep(time.Millisecond)
	}
	srv := New(Config{Addr: "127.0.0.1:0", Backend: NodeBackend{Node: replica}, Multiplex: false})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, primary, replica
}

// TestReadonlyPipelineRoutesReadOnly proves a READONLY connection's
// MULTI/EXEC pipeline reaches the replica read path: the same all-read
// transaction that a replica rejects on a READWRITE connection is served
// once the connection opts in. (This pins the DoBatch read-mode plumbing
// — the mode must survive from the connection state into the backend.)
func TestReadonlyPipelineRoutesReadOnly(t *testing.T) {
	srv, primary, replica := startReplicaServer(t)
	for i := 0; i < 3; i++ {
		v, err := primary.Do(t.Context(), [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))})
		if err != nil || v.IsError() {
			t.Fatalf("seed write: %v %v", v, err)
		}
	}

	c := dial(t, srv.Addr().String())
	runPipeline := func() resp.Value {
		t.Helper()
		if v := c.do(t, "MULTI"); v.Text() != "OK" {
			t.Fatalf("MULTI = %v", v)
		}
		for i := 0; i < 3; i++ {
			if v := c.do(t, "GET", fmt.Sprintf("k%d", i)); v.Text() != "QUEUED" {
				t.Fatalf("queue GET = %v", v)
			}
		}
		return c.do(t, "EXEC")
	}

	// Without READONLY the replica refuses the transaction outright.
	if v := runPipeline(); !v.IsError() {
		t.Fatalf("replica served a READWRITE pipeline: %v", v)
	}

	if v := c.do(t, "READONLY"); v.Text() != "OK" {
		t.Fatalf("READONLY = %v", v)
	}
	// With the opt-in, the all-read pipeline is served from the replica
	// under the freshness ladder. A REDIRECT bounce (proof timed out) is
	// a legal degradation — retry until the proof lands.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v := runPipeline()
		if v.Type == resp.Array && len(v.Array) == 3 {
			for i, el := range v.Array {
				if want := fmt.Sprintf("v%d", i); el.Text() != want {
					t.Fatalf("EXEC[%d] = %v, want %q", i, el, want)
				}
			}
			break
		}
		if !core.IsRedirect(v) {
			t.Fatalf("READONLY pipeline reply: %v", v)
		}
		if time.Now().After(deadline) {
			t.Fatal("READONLY pipeline never served")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if replica.Stats().ReplicaReadsServed.Load() == 0 {
		t.Fatal("pipeline did not take the verified replica read path")
	}

	// A pipeline containing a write never executes on the replica, even
	// on a READONLY connection.
	if v := c.do(t, "MULTI"); v.Text() != "OK" {
		t.Fatalf("MULTI = %v", v)
	}
	c.do(t, "GET", "k0")
	c.do(t, "SET", "k0", "mutated")
	if v := c.do(t, "EXEC"); !v.IsError() {
		t.Fatalf("replica served a write pipeline under READONLY: %v", v)
	}

	// READWRITE drops the opt-in again.
	if v := c.do(t, "READWRITE"); v.Text() != "OK" {
		t.Fatalf("READWRITE = %v", v)
	}
	if v := runPipeline(); !v.IsError() {
		t.Fatalf("replica served a pipeline after READWRITE: %v", v)
	}
}

func TestReadonlyStalenessGrammar(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "READONLY", "STALE", "50"); v.Text() != "OK" {
		t.Fatalf("READONLY STALE 50 = %v", v)
	}
	if v := c.do(t, "READONLY", "EVENTUAL"); v.Text() != "OK" {
		t.Fatalf("READONLY EVENTUAL = %v", v)
	}
	for _, bad := range [][]string{
		{"READONLY", "STALE"},
		{"READONLY", "STALE", "0"},
		{"READONLY", "STALE", "-5"},
		{"READONLY", "STALE", "soon"},
		{"READONLY", "EVENTUAL", "extra"},
		{"READONLY", "BOGUS"},
	} {
		if v := c.do(t, bad...); !v.IsError() {
			t.Fatalf("%v accepted: %v", bad, v)
		}
	}
	// The connection still works after rejected mode changes.
	if v := c.do(t, "PING"); v.Text() != "PONG" {
		t.Fatalf("PING = %v", v)
	}
}

// TestBaselineRejectsReadonly pins the intentional divergence: OSS mode
// has no replicas and no freshness protocol, so READONLY traffic fails
// loudly instead of silently serving from the only node there is.
func TestBaselineRejectsReadonly(t *testing.T) {
	node := baseline.NewPrimary(baseline.Config{NodeID: "r1"})
	t.Cleanup(node.Stop)
	srv := New(Config{Addr: "127.0.0.1:0", Backend: BaselineBackend{Node: node}})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "SET", "k", "v"); v.Text() != "OK" {
		t.Fatalf("SET = %v", v)
	}
	if v := c.do(t, "READONLY"); v.Text() != "OK" {
		t.Fatalf("READONLY = %v", v)
	}
	v := c.do(t, "GET", "k")
	if !v.IsError() || !strings.Contains(v.Text(), "READONLY not supported in OSS mode") {
		t.Fatalf("OSS READONLY read = %v, want explicit rejection", v)
	}
	// Pipelines are rejected the same way.
	c.do(t, "MULTI")
	c.do(t, "GET", "k")
	if v := c.do(t, "EXEC"); !v.IsError() || !strings.Contains(v.Text(), "READONLY not supported") {
		t.Fatalf("OSS READONLY pipeline = %v", v)
	}
	// READWRITE restores service.
	if v := c.do(t, "READWRITE"); v.Text() != "OK" {
		t.Fatalf("READWRITE = %v", v)
	}
	if v := c.do(t, "GET", "k"); v.Text() != "v" {
		t.Fatalf("GET after READWRITE = %v", v)
	}
}
