// Package server is the TCP front-end: it speaks RESP to clients,
// maintains per-connection state (MULTI transactions, READONLY opt-in),
// and forwards commands to a backend — a single node or a cluster
// dispatcher. It models both IO paths from the paper's §6.1.1: plain
// threaded IO (one goroutine per connection, like Redis io-threads) and
// Enhanced IO Multiplexing (connections aggregated into a shared
// dispatch channel, reducing engine wakeups and fan-in/fan-out overhead).
package server

import (
	"context"
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"memorydb/internal/obs"
	"memorydb/internal/resp"
	"memorydb/internal/trace"
)

// ReadMode is a connection's read-consistency state, set by the
// READONLY command and its staleness knobs:
//
//	READONLY              — replica reads allowed, linearizable ladder
//	READONLY STALE <ms>   — degrade to bounded staleness before redirect
//	READONLY EVENTUAL     — legacy eventual-consistency replica reads
//	READWRITE             — back to primary-only (the zero value)
type ReadMode struct {
	// ReadOnly reflects the connection's READONLY state.
	ReadOnly bool
	// Eventual opts into eventually-consistent replica reads (no
	// freshness claim).
	Eventual bool
	// Stale, when positive, is the bounded-staleness tolerance the
	// client declared: a replica read whose linearizable freshness
	// proof fails may still be served if the replica proved itself
	// caught up within this bound.
	Stale time.Duration
}

// Backend executes commands on behalf of connections.
type Backend interface {
	// Do executes one command under the connection's read mode.
	Do(ctx context.Context, argv [][]byte, mode ReadMode) (resp.Value, error)
	// DoBatch executes a MULTI/EXEC transaction atomically.
	DoBatch(ctx context.Context, cmds [][][]byte, mode ReadMode) (resp.Value, error)
}

// Config parameterizes a server.
type Config struct {
	// Addr to listen on, e.g. "127.0.0.1:0".
	Addr    string
	Backend Backend
	// Multiplex enables Enhanced IO Multiplexing: commands from all
	// connections are aggregated into a shared dispatch queue consumed
	// by a fixed pool, instead of each connection driving the backend
	// directly.
	Multiplex bool
	// MuxWorkers is the dispatcher pool size when Multiplex is on.
	MuxWorkers int
	// Obs, when set, records the front-end's two write-path stages:
	// read_parse (reading+parsing a command off the socket — includes
	// wire idle time on keepalive connections) and reply_write
	// (serializing+flushing the reply). Share the node's registry so the
	// full pipeline lands in one place.
	Obs *obs.Metrics
	// Trace, when set, mints a span context at command parse for sampled
	// commands; the context rides the backend ctx so every downstream
	// component (workloop stages, log quorum, remote replica applies)
	// attaches to the same trace. Share the node's collector so TRACE GET
	// sees the full tree.
	Trace *trace.Collector
}

// Server accepts RESP connections.
type Server struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	muxQ chan muxItem
	ctx  context.Context
	stop context.CancelFunc
}

type muxItem struct {
	argv [][]byte
	mode ReadMode
	// ctx carries a sampled command's span context into the dispatcher
	// pool; nil means use the server ctx (unsampled).
	ctx     context.Context
	replyCh chan resp.Value
}

// New creates a server (not yet listening).
func New(cfg Config) *Server {
	if cfg.MuxWorkers <= 0 {
		// Each worker blocks in Backend.Do until the command's reply is
		// durable, so the pool size caps the mutations concurrently inside
		// the node. It must exceed the node's total append-pipeline depth
		// — execution shards (core.Config.Shards) × per-shard inflight
		// appends (core.Config.MaxInflightAppends, default 8) — or group
		// commit never sees a mutation to buffer and every entry carries
		// one record. 128 covers 8 shards at the default depth with
		// headroom; it was 64 when nodes had a single workloop.
		cfg.MuxWorkers = 128
	}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.ctx, s.stop = context.WithCancel(context.Background())
	return s
}

// Start begins listening and serving.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.Multiplex {
		s.muxQ = make(chan muxItem, 4096)
		for i := 0; i < s.cfg.MuxWorkers; i++ {
			s.wg.Add(1)
			go s.muxWorker()
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.stop()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) muxWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case item := <-s.muxQ:
			ctx := item.ctx
			if ctx == nil {
				ctx = s.ctx
			}
			v, err := s.cfg.Backend.Do(ctx, item.argv, item.mode)
			if err != nil {
				v = resp.Errf("ERR backend: %v", err)
			}
			item.replyCh <- v
		}
	}
}

// connState holds per-connection protocol state.
type connState struct {
	mode     ReadMode
	inMulti  bool
	queued   [][][]byte
	multiErr bool
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	st := &connState{}
	m := s.cfg.Obs
	for {
		var readStart int64
		if m != nil {
			readStart = obs.Now()
		}
		argv, err := r.ReadCommand()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: best-effort error reply, then close.
				_ = w.WriteValue(resp.Errf("ERR Protocol error: %v", err))
				_ = w.Flush()
			}
			return
		}
		if m != nil {
			m.Stage(obs.StageReadParse).ObserveNanos(obs.Now() - readStart)
		}
		if len(argv) == 0 {
			continue
		}
		reply, quit := s.handle(st, argv)
		var writeStart int64
		if m != nil {
			writeStart = obs.Now()
		}
		if err := w.WriteValue(reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if m != nil {
			m.Stage(obs.StageReplyWrite).ObserveNanos(obs.Now() - writeStart)
		}
		if quit {
			return
		}
	}
}

// handle processes one command against the connection state, forwarding
// to the backend when appropriate.
func (s *Server) handle(st *connState, argv [][]byte) (reply resp.Value, quit bool) {
	name := strings.ToUpper(string(argv[0]))
	switch name {
	case "QUIT":
		return resp.OK, true
	case "READONLY":
		mode := ReadMode{ReadOnly: true}
		if len(argv) >= 2 {
			switch strings.ToUpper(string(argv[1])) {
			case "STALE":
				if len(argv) != 3 {
					return resp.Err("ERR wrong number of arguments for 'readonly|stale'"), false
				}
				ms, err := strconv.Atoi(string(argv[2]))
				if err != nil || ms <= 0 {
					return resp.Err("ERR invalid staleness bound"), false
				}
				mode.Stale = time.Duration(ms) * time.Millisecond
			case "EVENTUAL":
				if len(argv) != 2 {
					return resp.Err("ERR wrong number of arguments for 'readonly|eventual'"), false
				}
				mode.Eventual = true
			default:
				return resp.Err("ERR syntax error"), false
			}
		}
		st.mode = mode
		return resp.OK, false
	case "READWRITE":
		st.mode = ReadMode{}
		return resp.OK, false
	case "MULTI":
		if st.inMulti {
			return resp.Err("ERR MULTI calls can not be nested"), false
		}
		st.inMulti = true
		st.queued = nil
		st.multiErr = false
		return resp.OK, false
	case "DISCARD":
		if !st.inMulti {
			return resp.Err("ERR DISCARD without MULTI"), false
		}
		st.inMulti = false
		st.queued = nil
		return resp.OK, false
	case "EXEC":
		if !st.inMulti {
			return resp.Err("ERR EXEC without MULTI"), false
		}
		st.inMulti = false
		cmds := st.queued
		st.queued = nil
		if st.multiErr {
			return resp.Err("EXECABORT Transaction discarded because of previous errors."), false
		}
		if len(cmds) == 0 {
			return resp.ArrayV(), false
		}
		ctx, root, traced := s.mintSpan("cmd:EXEC")
		v, err := s.cfg.Backend.DoBatch(ctx, cmds, st.mode)
		if traced {
			s.cfg.Trace.Finish(root)
		}
		if err != nil {
			return resp.Errf("ERR backend: %v", err), false
		}
		return v, false
	case "AUTH":
		// Authentication/ACLs are control-plane features we accept and
		// ignore in this reproduction.
		return resp.OK, false
	case "CLUSTER":
		if co, ok := s.cfg.Backend.(ClusterOps); ok {
			return co.ClusterCommand(s.ctx, argv), false
		}
		return resp.Err("ERR This instance has cluster support disabled"), false
	case "SELECT":
		if len(argv) == 2 && string(argv[1]) == "0" {
			return resp.OK, false
		}
		return resp.Err("ERR DB index is out of range"), false
	}

	if st.inMulti {
		// Queue; malformed commands poison the transaction like Redis.
		cp := make([][]byte, len(argv))
		for i, a := range argv {
			cp[i] = append([]byte(nil), a...)
		}
		st.queued = append(st.queued, cp)
		return resp.Queued, false
	}

	ctx, root, traced := s.mintSpan("cmd:" + name)
	if s.cfg.Multiplex {
		item := muxItem{argv: argv, mode: st.mode, replyCh: make(chan resp.Value, 1)}
		if traced {
			item.ctx = ctx
		}
		select {
		case s.muxQ <- item:
		case <-s.ctx.Done():
			return resp.Err("ERR server shutting down"), true
		}
		select {
		case v := <-item.replyCh:
			if traced {
				// The root covers queue wait in the dispatch pool too.
				s.cfg.Trace.Finish(root)
			}
			return v, false
		case <-s.ctx.Done():
			return resp.Err("ERR server shutting down"), true
		}
	}
	v, err := s.cfg.Backend.Do(ctx, argv, st.mode)
	if traced {
		s.cfg.Trace.Finish(root)
	}
	if err != nil {
		return resp.Errf("ERR backend: %v", err), false
	}
	return v, false
}

// mintSpan draws the sampling coin at command parse. On a hit it returns
// a ctx carrying the fresh trace's span context (the backend's stages
// become children) plus the front-end root span, finished when the reply
// is ready to write.
func (s *Server) mintSpan(name string) (context.Context, trace.Span, bool) {
	if s.cfg.Trace == nil {
		return s.ctx, trace.Span{}, false
	}
	sc, ok := s.cfg.Trace.Sample()
	if !ok {
		return s.ctx, trace.Span{}, false
	}
	root := s.cfg.Trace.Root(sc, name, "server")
	return trace.NewContext(s.ctx, sc), root, true
}
