package server

import (
	"testing"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/obs"
)

// TestServerRecordsFrontEndStages checks that the TCP front-end feeds the
// shared registry: after a few commands over a real socket, read_parse and
// reply_write both carry samples.
func TestServerRecordsFrontEndStages(t *testing.T) {
	m := obs.New(obs.Options{})
	node := baseline.NewPrimary(baseline.Config{NodeID: "b1"})
	t.Cleanup(node.Stop)
	srv := New(Config{Addr: "127.0.0.1:0", Backend: BaselineBackend{Node: node}, Obs: m})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	c := dial(t, srv.Addr().String())
	const cmds = 5
	for i := 0; i < cmds; i++ {
		if v := c.do(t, "PING"); v.Text() != "PONG" {
			t.Fatalf("PING = %v", v)
		}
	}

	if got := m.Stage(obs.StageReadParse).Count(); got < cmds {
		t.Errorf("read_parse count = %d, want >= %d", got, cmds)
	}
	if got := m.Stage(obs.StageReplyWrite).Count(); got < cmds {
		t.Errorf("reply_write count = %d, want >= %d", got, cmds)
	}
	if max := m.Stage(obs.StageReplyWrite).Max(); max <= 0 || max > time.Second {
		t.Errorf("reply_write max = %v, want small positive duration", max)
	}
}
