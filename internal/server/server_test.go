package server

import (
	"net"
	"testing"
	"time"

	"memorydb/internal/baseline"
	"memorydb/internal/clock"
	"memorydb/internal/core"
	"memorydb/internal/election"
	"memorydb/internal/netsim"
	"memorydb/internal/resp"
	"memorydb/internal/txlog"
)

// startMemoryDBServer boots a single-node MemoryDB behind a TCP server.
func startMemoryDBServer(t *testing.T, multiplex bool) (*Server, *core.Node) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{Clock: clock.NewReal(), CommitLatency: netsim.Zero{}})
	log, _ := svc.CreateLog("s1")
	n, err := core.NewNode(core.Config{
		NodeID: "n1", ShardID: "s1", Log: log,
		Lease: 200 * time.Millisecond, Backoff: 260 * time.Millisecond,
		RenewEvery: 50 * time.Millisecond, ReplicaPoll: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	t.Cleanup(n.Stop)
	deadline := time.Now().Add(3 * time.Second)
	for n.Role() != election.RolePrimary {
		if time.Now().After(deadline) {
			t.Fatal("node never became primary")
		}
		time.Sleep(time.Millisecond)
	}
	srv := New(Config{Addr: "127.0.0.1:0", Backend: NodeBackend{Node: n}, Multiplex: multiplex})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, n
}

type testClient struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

func (c *testClient) do(t *testing.T, args ...string) resp.Value {
	t.Helper()
	if err := c.w.WriteCommandStrings(args...); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := c.r.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerBasicCommands(t *testing.T) {
	for _, multiplex := range []bool{false, true} {
		srv, _ := startMemoryDBServer(t, multiplex)
		c := dial(t, srv.Addr().String())
		if v := c.do(t, "PING"); v.Text() != "PONG" {
			t.Fatalf("PING = %v", v)
		}
		if v := c.do(t, "SET", "k", "v"); v.Text() != "OK" {
			t.Fatalf("SET = %v", v)
		}
		if v := c.do(t, "GET", "k"); v.Text() != "v" {
			t.Fatalf("GET = %v", v)
		}
		if v := c.do(t, "HSET", "h", "f", "1"); v.Int != 1 {
			t.Fatalf("HSET = %v", v)
		}
	}
}

func TestServerMultiExec(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "MULTI"); v.Text() != "OK" {
		t.Fatalf("MULTI = %v", v)
	}
	if v := c.do(t, "SET", "a", "1"); v.Text() != "QUEUED" {
		t.Fatalf("queued = %v", v)
	}
	if v := c.do(t, "INCR", "a"); v.Text() != "QUEUED" {
		t.Fatalf("queued = %v", v)
	}
	v := c.do(t, "EXEC")
	if v.Type != resp.Array || len(v.Array) != 2 || v.Array[1].Int != 2 {
		t.Fatalf("EXEC = %v", v)
	}
	// The transaction applied atomically.
	if v := c.do(t, "GET", "a"); v.Text() != "2" {
		t.Fatalf("after EXEC = %v", v)
	}
}

func TestServerMultiDiscardAndErrors(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "EXEC"); !v.IsError() {
		t.Fatalf("EXEC without MULTI = %v", v)
	}
	if v := c.do(t, "DISCARD"); !v.IsError() {
		t.Fatalf("DISCARD without MULTI = %v", v)
	}
	c.do(t, "MULTI")
	if v := c.do(t, "MULTI"); !v.IsError() {
		t.Fatalf("nested MULTI = %v", v)
	}
	c.do(t, "SET", "x", "1")
	if v := c.do(t, "DISCARD"); v.Text() != "OK" {
		t.Fatalf("DISCARD = %v", v)
	}
	if v := c.do(t, "GET", "x"); !v.Null {
		t.Fatalf("discarded write applied: %v", v)
	}
}

func TestServerReadOnlyState(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "READONLY"); v.Text() != "OK" {
		t.Fatalf("READONLY = %v", v)
	}
	if v := c.do(t, "READWRITE"); v.Text() != "OK" {
		t.Fatalf("READWRITE = %v", v)
	}
}

func TestServerSelectAndAuth(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "SELECT", "0"); v.Text() != "OK" {
		t.Fatalf("SELECT 0 = %v", v)
	}
	if v := c.do(t, "SELECT", "1"); !v.IsError() {
		t.Fatalf("SELECT 1 = %v", v)
	}
	if v := c.do(t, "AUTH", "password"); v.Text() != "OK" {
		t.Fatalf("AUTH = %v", v)
	}
}

func TestServerQuitClosesConnection(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "QUIT"); v.Text() != "OK" {
		t.Fatalf("QUIT = %v", v)
	}
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := c.r.ReadValue(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

func TestServerInlineCommands(t *testing.T) {
	srv, _ := startMemoryDBServer(t, false)
	c := dial(t, srv.Addr().String())
	if _, err := c.conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	v, err := c.r.ReadValue()
	if err != nil || v.Text() != "PONG" {
		t.Fatalf("inline PING = %v %v", v, err)
	}
}

func TestServerBaselineBackend(t *testing.T) {
	node := baseline.NewPrimary(baseline.Config{NodeID: "r1"})
	t.Cleanup(node.Stop)
	srv := New(Config{Addr: "127.0.0.1:0", Backend: BaselineBackend{Node: node}})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "SET", "k", "v"); v.Text() != "OK" {
		t.Fatalf("SET = %v", v)
	}
	if v := c.do(t, "GET", "k"); v.Text() != "v" {
		t.Fatalf("GET = %v", v)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv, _ := startMemoryDBServer(t, true)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(id int) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			r, w := resp.NewReader(conn), resp.NewWriter(conn)
			for i := 0; i < 50; i++ {
				if err := w.WriteCommandStrings("INCR", "counter"); err != nil {
					done <- err
					return
				}
				w.Flush()
				if _, err := r.ReadValue(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, srv.Addr().String())
	if v := c.do(t, "GET", "counter"); v.Text() != "400" {
		t.Fatalf("counter = %v, want 400", v)
	}
}
