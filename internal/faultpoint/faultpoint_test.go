package faultpoint

import (
	"bytes"
	"testing"
	"time"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if d := r.Hit(SiteFlushPre); d.Kind != None {
		t.Fatalf("nil registry fired %v", d.Kind)
	}
	if r.Hits(SiteFlushPre) != 0 || r.Fired(SiteFlushPre, Crash) != 0 {
		t.Fatal("nil registry accounted hits")
	}
}

func TestArmFiresOnceAfterN(t *testing.T) {
	r := New(1)
	r.Arm(SiteFlushPre, Crash, 2)
	for i := 0; i < 2; i++ {
		if d := r.Hit(SiteFlushPre); d.Kind != None {
			t.Fatalf("hit %d fired early: %v", i, d.Kind)
		}
	}
	if d := r.Hit(SiteFlushPre); d.Kind != Crash {
		t.Fatalf("3rd hit: got %v, want crash", d.Kind)
	}
	if d := r.Hit(SiteFlushPre); d.Kind != None {
		t.Fatalf("one-shot fired twice: %v", d.Kind)
	}
	if got := r.Fired(SiteFlushPre, Crash); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	if got := r.Hits(SiteFlushPre); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
	if r.ArmedCount(SiteFlushPre) != 0 {
		t.Fatal("armed fault not consumed")
	}
}

func TestPlanIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) []Kind {
		r := New(seed)
		r.SetPlan(SiteAppendPre, 0.5, time.Millisecond, Error, Delay)
		out := make([]Kind, 64)
		for i := range out {
			out[i] = r.Hit(SiteAppendPre).Kind
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != None {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("plan with prob 0.5 never fired in 64 hits")
	}
}

func TestCorruptionHelpers(t *testing.T) {
	r := New(7)
	orig := bytes.Repeat([]byte{0xAB}, 128)
	flipped := r.FlipByte(orig)
	if bytes.Equal(orig, flipped) {
		t.Fatal("FlipByte returned identical bytes")
	}
	if len(flipped) != len(orig) {
		t.Fatal("FlipByte changed length")
	}
	torn := r.TornWrite(orig)
	if len(torn) >= len(orig) {
		t.Fatalf("TornWrite did not truncate: %d >= %d", len(torn), len(orig))
	}
}

func TestParse(t *testing.T) {
	r, err := Parse("core.flush.pre=crash@3; core.append.pre=error:1.0 ,core.renew=delay:2ms:1.0", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if d := r.Hit(SiteFlushPre); d.Kind != None {
			t.Fatalf("flush.pre fired early at %d", i)
		}
	}
	if d := r.Hit(SiteFlushPre); d.Kind != Crash {
		t.Fatalf("flush.pre: got %v, want crash", d.Kind)
	}
	if d := r.Hit(SiteAppendPre); d.Kind != Error {
		t.Fatalf("append.pre: got %v, want error", d.Kind)
	}
	if d := r.Hit(SiteRenew); d.Kind != Delay || d.Delay != 2*time.Millisecond {
		t.Fatalf("renew: got %v/%v, want delay/2ms", d.Kind, d.Delay)
	}
	if _, err := Parse("core.renew", 0); err == nil {
		t.Fatal("clause without = accepted")
	}
	if _, err := Parse("x=explode", 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAllSitesPreRegistered(t *testing.T) {
	r := New(0)
	names := r.Names()
	if len(names) != len(AllSites()) {
		t.Fatalf("registered %d sites, want %d", len(names), len(AllSites()))
	}
}
