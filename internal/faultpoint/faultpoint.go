// Package faultpoint implements deterministic crash-fault injection for
// the recovery harness. The critical write paths (workloop appends,
// group-commit flushes, tracker release, lease renewal, off-box snapshot
// build/upload) each consult a named fault site before proceeding; a
// Registry decides, per hit, whether the site should crash the process,
// delay, fail with a transient error, or corrupt the bytes in flight.
//
// Decisions are seedable (fixed-seed schedules reproduce exactly) and the
// registry keeps per-site hit/fired accounting, which is how the crash
// harness proves every registered site was actually exercised by a
// schedule. A nil *Registry is a valid no-op: production code paths call
// Hit unconditionally and pay only a nil check.
//
// Interpretation of a decision is owned by the host:
//   - a node treats Crash as process death at that instant (it freezes in
//     place — no cleanup, no replies, in-flight appends left in limbo);
//   - the off-box snapshotter treats Crash as the ephemeral cluster dying
//     (the run aborts);
//   - Corrupt is only meaningful at byte-producing sites (snapshot build
//     and upload) and is ignored elsewhere.
package faultpoint

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is the action a fault site takes when a decision fires.
type Kind uint8

// Fault kinds.
const (
	// None: proceed normally (the common case).
	None Kind = iota
	// Crash: the process dies at this instant.
	Crash
	// Delay: the operation stalls for Decision.Delay before proceeding.
	Delay
	// Error: the operation fails with a transient error.
	Error
	// Corrupt: the bytes produced at this site are damaged (flipped or
	// truncated, site-specific).
	Corrupt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// ParseKind parses a kind name.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "crash":
		return Crash, nil
	case "delay":
		return Delay, nil
	case "error":
		return Error, nil
	case "corrupt":
		return Corrupt, nil
	}
	return None, fmt.Errorf("faultpoint: unknown kind %q", s)
}

// Decision is what a site must do for one hit.
type Decision struct {
	Kind  Kind
	Delay time.Duration
}

// Canonical site names instrumented across the write and snapshot paths.
// The crash harness asserts every one of these is hit under its schedule.
const (
	// SiteAppendPre fires before a transaction-log conditional append is
	// issued (workloop side: data flushes, checksums, renewals, control).
	SiteAppendPre = "core.append.pre"
	// SiteAppendPost fires after the log assigned the entry but before the
	// node records the new tail — a crash here leaves a durable entry the
	// dead node never knew about.
	SiteAppendPost = "core.append.post"
	// SiteFlushPre fires at the head of a group-commit flush, before the
	// batched entry is handed to the log.
	SiteFlushPre = "core.flush.pre"
	// SiteFlushPost fires after the flushed entry reached quorum but
	// before any reply is released — the committed-but-unacknowledged
	// window.
	SiteFlushPost = "core.flush.post"
	// SiteTrackerRelease fires immediately before the tracker releases
	// gated replies for a committed entry.
	SiteTrackerRelease = "core.tracker.release"
	// SiteRenew fires before a lease-renewal append.
	SiteRenew = "core.renew"
	// SiteSnapBuild fires after an off-box snapshot is serialized but
	// before upload; Corrupt flips a byte (silent bit rot in the build).
	SiteSnapBuild = "snapshot.build"
	// SiteSnapUpload fires at the upload step; Corrupt truncates the
	// object — the torn-write case (§7.2.1).
	SiteSnapUpload = "snapshot.upload"
	// SiteS3Put fires at the S3 PUT issued by the off-box run.
	SiteS3Put = "s3.put"
	// SiteLogSealPre fires before a closed log segment's footer is
	// computed; Error/Crash defers the seal (retried on a later commit),
	// Delay stalls the sealer.
	SiteLogSealPre = "txlog.seal.pre"
	// SiteLogSealPost fires after a segment sealed durably.
	SiteLogSealPost = "txlog.seal.post"
	// SiteLogTrimPre fires at the head of a Trim call; Error/Crash aborts
	// the trim with no state change (the coordinator retries next tick).
	SiteLogTrimPre = "txlog.trim.pre"
	// SiteLogTrimPost fires after a Trim call completed (whether or not
	// any segment was dropped).
	SiteLogTrimPost = "txlog.trim.post"
	// SiteLogCorruptRecord fires on every data append; Corrupt silently
	// flips a byte of the stored payload while keeping the record's CRC —
	// the bit-rot case read-time verification must catch.
	SiteLogCorruptRecord = "txlog.corrupt_record"
	// SiteDeltaBuild fires after the forkless builder serializes a delta
	// snapshot but before upload; Corrupt flips a byte (bit rot in the
	// delta image).
	SiteDeltaBuild = "snapshot.delta.build"
	// SiteDeltaUpload fires at the delta's S3 PUT; Corrupt truncates the
	// object (a torn delta in the middle of a chain).
	SiteDeltaUpload = "snapshot.delta.upload"
	// SiteCompact fires when the builder compacts a full+delta chain into
	// a new full snapshot; Crash kills the builder mid-compaction.
	SiteCompact = "snapshot.compact"
	// SiteBuilderLag fires on every builder lag check against the log's
	// trim horizon; Delay stalls the builder (inducing lag), Error forces
	// a re-bootstrap from the latest chain.
	SiteBuilderLag = "builder.lag"
)

// AllSites returns the canonical instrumented sites, in a stable order.
func AllSites() []string {
	return []string{
		SiteAppendPre, SiteAppendPost,
		SiteFlushPre, SiteFlushPost,
		SiteTrackerRelease, SiteRenew,
		SiteSnapBuild, SiteSnapUpload, SiteS3Put,
		SiteLogSealPre, SiteLogSealPost,
		SiteLogTrimPre, SiteLogTrimPost,
		SiteLogCorruptRecord,
		SiteDeltaBuild, SiteDeltaUpload,
		SiteCompact, SiteBuilderLag,
	}
}

// armed is a one-shot fault scheduled to fire once site hits exceed a
// threshold.
type armed struct {
	kind  Kind
	after int64 // fire on the first hit with count > after
	delay time.Duration
}

// site is per-site accounting plus its active schedule.
type site struct {
	hits  int64
	fired map[Kind]int64
	armed []armed
	// Probabilistic plan: each hit fires one of kinds with probability
	// prob (one-shots take precedence).
	prob  float64
	kinds []Kind
	delay time.Duration
}

// Registry holds the named fault sites of one host (a node, or an
// off-box snapshot runner) and decides, deterministically from its seed,
// what each hit does.
type Registry struct {
	mu       sync.Mutex
	rng      *rand.Rand
	sites    map[string]*site
	observer func(site string, k Kind)
}

// SetObserver installs a callback invoked after every fault decision
// that actually fires (Kind != None), outside the registry lock. The
// flight recorder uses it to put injected faults on the cluster
// timeline. The callback must not call back into the registry.
func (r *Registry) SetObserver(fn func(site string, k Kind)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observer = fn
	r.mu.Unlock()
}

// New returns a registry with every canonical site pre-registered (so
// coverage accounting can see never-hit sites) and all decisions seeded.
func New(seed int64) *Registry {
	r := &Registry{rng: rand.New(rand.NewSource(seed)), sites: make(map[string]*site)}
	for _, name := range AllSites() {
		r.sites[name] = &site{fired: make(map[Kind]int64)}
	}
	return r
}

func (r *Registry) siteLocked(name string) *site {
	s, ok := r.sites[name]
	if !ok {
		s = &site{fired: make(map[Kind]int64)}
		r.sites[name] = s
	}
	return s
}

// Hit records one pass through the named site and returns the decision
// for it. Safe on a nil registry (always None) and for concurrent use.
func (r *Registry) Hit(name string) Decision {
	if r == nil {
		return Decision{}
	}
	r.mu.Lock()
	s := r.siteLocked(name)
	s.hits++
	var d Decision
	for i, a := range s.armed {
		if s.hits > a.after {
			s.armed = append(s.armed[:i], s.armed[i+1:]...)
			s.fired[a.kind]++
			d = Decision{Kind: a.kind, Delay: a.delay}
			break
		}
	}
	if d.Kind == None && s.prob > 0 && len(s.kinds) > 0 && r.rng.Float64() < s.prob {
		k := s.kinds[r.rng.Intn(len(s.kinds))]
		s.fired[k]++
		d = Decision{Kind: k, Delay: s.delay}
	}
	obs := r.observer
	r.mu.Unlock()
	if d.Kind != None && obs != nil {
		obs(name, d.Kind)
	}
	return d
}

// Arm schedules a one-shot fault at the named site: it fires on the first
// hit after `after` more hits pass (after=0 means the very next hit).
func (r *Registry) Arm(name string, k Kind, after int) {
	r.ArmDelay(name, k, after, 0)
}

// ArmDelay is Arm with an explicit stall duration (Delay kind).
func (r *Registry) ArmDelay(name string, k Kind, after int, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.siteLocked(name)
	s.armed = append(s.armed, armed{kind: k, after: s.hits + int64(after), delay: d})
}

// SetPlan installs a probabilistic schedule at the named site: each hit
// fires one of kinds (uniformly) with probability prob. delay applies to
// Delay decisions. prob=0 clears the plan.
func (r *Registry) SetPlan(name string, prob float64, delay time.Duration, kinds ...Kind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.siteLocked(name)
	s.prob = prob
	s.kinds = append([]Kind(nil), kinds...)
	s.delay = delay
}

// Hits returns how many times the named site was passed.
func (r *Registry) Hits(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s.hits
	}
	return 0
}

// Fired returns how many decisions of kind k the named site has fired.
func (r *Registry) Fired(name string, k Kind) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s.fired[k]
	}
	return 0
}

// ArmedCount returns the number of one-shot faults still pending at the
// named site (harnesses poll this to know a trigger fired).
func (r *Registry) ArmedCount(name string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return len(s.armed)
	}
	return 0
}

// Names returns every registered site name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.sites))
	for name := range r.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FlipByte returns a copy of b with one seeded byte flipped — the silent
// bit-rot corruption a body checksum must catch.
func (r *Registry) FlipByte(b []byte) []byte {
	cp := append([]byte(nil), b...)
	if len(cp) == 0 {
		return cp
	}
	r.mu.Lock()
	i := r.rng.Intn(len(cp))
	r.mu.Unlock()
	cp[i] ^= 0xFF
	return cp
}

// TornWrite returns a seeded strict prefix of b — the torn-write
// truncation of an interrupted upload.
func (r *Registry) TornWrite(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	r.mu.Lock()
	n := r.rng.Intn(len(b))
	r.mu.Unlock()
	return append([]byte(nil), b[:n]...)
}

// Parse builds a registry from a ;- or ,-separated spec, one clause per
// site:
//
//	site=kind            one-shot, fires on the next hit
//	site=kind@N          one-shot, fires after N more hits
//	site=error:P         probabilistic: each hit errors with prob P
//	site=delay:DUR:P     probabilistic: each hit stalls DUR with prob P
//
// e.g. "core.flush.pre=crash@3;core.append.pre=error:0.05;core.renew=delay:2ms:0.1".
// This is the grammar behind the MEMORYDB_FAULTPOINTS environment knob.
func Parse(spec string, seed int64) (*Registry, error) {
	r := New(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return r, nil
	}
	for _, clause := range strings.FieldsFunc(spec, func(c rune) bool { return c == ';' || c == ',' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rhs, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultpoint: bad clause %q (want site=action)", clause)
		}
		name = strings.TrimSpace(name)
		parts := strings.Split(rhs, ":")
		kindStr, after := parts[0], 0
		if ks, n, ok := strings.Cut(kindStr, "@"); ok {
			v, err := strconv.Atoi(n)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("faultpoint: bad @count in %q", clause)
			}
			kindStr, after = ks, v
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		switch {
		case len(parts) == 1:
			r.Arm(name, kind, after)
		case kind == Error && len(parts) == 2:
			p, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("faultpoint: bad probability in %q", clause)
			}
			r.SetPlan(name, p, 0, Error)
		case kind == Delay && len(parts) == 3:
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return nil, fmt.Errorf("faultpoint: bad duration in %q", clause)
			}
			p, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("faultpoint: bad probability in %q", clause)
			}
			r.SetPlan(name, p, d, Delay)
		default:
			return nil, fmt.Errorf("faultpoint: bad clause %q", clause)
		}
	}
	return r, nil
}
