package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// EventKind classifies flight-recorder events. The taxonomy covers
// every "significant" cluster transition: if an operator would want it
// on an incident timeline, it has a kind here.
type EventKind uint8

const (
	EvNone EventKind = iota
	EvRoleChange
	EvDemotion
	EvFencing
	EvAlarm
	EvFaultFire
	EvBarrier
	EvSegmentSeal
	EvSegmentTrim
	EvSegmentQuarantine
	EvTailerRebootstrap
	EvBuilderLag
	EvWatermarkFence
	EvAbort
	EvKill
	EvRestart
	EvResurrect
)

var eventKindNames = [...]string{
	EvNone:              "none",
	EvRoleChange:        "role_change",
	EvDemotion:          "demotion",
	EvFencing:           "fencing",
	EvAlarm:             "alarm",
	EvFaultFire:         "fault_fire",
	EvBarrier:           "barrier",
	EvSegmentSeal:       "segment_seal",
	EvSegmentTrim:       "segment_trim",
	EvSegmentQuarantine: "segment_quarantine",
	EvTailerRebootstrap: "tailer_rebootstrap",
	EvBuilderLag:        "builder_lag",
	EvWatermarkFence:    "watermark_fence",
	EvAbort:             "abort",
	EvKill:              "kill",
	EvRestart:           "restart",
	EvResurrect:         "resurrect",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one flight-recorder entry. At is Now() nanoseconds; Pos
// carries a log position or epoch when relevant (0 otherwise); Detail
// is free-form and should be a pre-existing string on hot paths so
// recording stays allocation-free.
type Event struct {
	Seq    uint64 // per-ring sequence, 1-based, never reused
	At     int64
	Node   string
	Kind   EventKind
	Pos    uint64
	Detail string
}

// DefaultFlightEvents bounds the per-node ring when no size is given.
const DefaultFlightEvents = 512

// Flight is the per-node black-box recorder: a fixed ring of the last
// N significant events. Record claims a slot with one atomic add —
// writers never contend on a shared lock (only on the same slot one
// full lap apart) and never allocate, so the recorder stays on in
// production. The ring is bounded: old events are overwritten, never
// dropped on the way in.
type Flight struct {
	node  string
	seq   atomic.Uint64
	slots []flightSlot
}

type flightSlot struct {
	mu sync.Mutex
	ev Event
}

// NewFlight returns a recorder for the named node. size bounds the
// ring (DefaultFlightEvents if <= 0).
func NewFlight(node string, size int) *Flight {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	return &Flight{node: node, slots: make([]flightSlot, size)}
}

// Node returns the node identity the ring records for.
func (f *Flight) Node() string {
	if f == nil {
		return ""
	}
	return f.node
}

// Record appends one event. Safe from any goroutine; nil receiver is a
// no-op so call sites need no guards. Zero allocations when detail is
// a pre-existing string.
func (f *Flight) Record(k EventKind, pos uint64, detail string) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	at := Now()
	s := &f.slots[(seq-1)%uint64(len(f.slots))]
	s.mu.Lock()
	s.ev = Event{Seq: seq, At: at, Node: f.node, Kind: k, Pos: pos, Detail: detail}
	s.mu.Unlock()
}

// Recordf is Record with formatting — for rare events (alarms,
// quarantines) where the allocation is irrelevant.
func (f *Flight) Recordf(k EventKind, pos uint64, format string, args ...any) {
	if f == nil {
		return
	}
	f.Record(k, pos, fmt.Sprintf(format, args...))
}

// Total returns how many events have ever been recorded (>= retained).
func (f *Flight) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Events returns the retained events, oldest first.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	hi := f.seq.Load()
	lo := uint64(1)
	if n := uint64(len(f.slots)); hi > n {
		lo = hi - n + 1
	}
	out := make([]Event, 0, hi-lo+1)
	for i := range f.slots {
		f.slots[i].mu.Lock()
		ev := f.slots[i].ev
		f.slots[i].mu.Unlock()
		// Writers may have lapped past hi since we loaded it; keep
		// whatever the slot holds as long as it is a real event.
		if ev.Seq >= lo && ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Merge combines rings from many nodes into one causally-ordered
// timeline. All in-process rings share the Now() clock, so timestamp
// order is causal order; ties break by node then sequence.
func Merge(flights ...*Flight) []Event {
	var all []Event
	for _, f := range flights {
		all = append(all, f.Events()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].Node != all[j].Node {
			return all[i].Node < all[j].Node
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}

// FormatTimeline renders events as a readable incident report, one
// line per event, timestamps relative to the first event.
func FormatTimeline(events []Event) string {
	if len(events) == 0 {
		return "(flight recorder empty)"
	}
	base := events[0].At
	var b strings.Builder
	fmt.Fprintf(&b, "flight timeline: %d events\n", len(events))
	for _, e := range events {
		fmt.Fprintf(&b, "%+12.3fms  %-12s %-18s", float64(e.At-base)/1e6, e.Node, e.Kind.String())
		if e.Pos != 0 {
			fmt.Fprintf(&b, " pos=%d", e.Pos)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
