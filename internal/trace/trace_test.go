package trace

import (
	"context"
	"testing"
)

func TestSampleDeterministicAcrossSeeds(t *testing.T) {
	draw := func(seed int64) []bool {
		c := NewCollector(0.25, seed, 64)
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = c.Sample()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate 0.25 sampled %d/%d", hits, len(a))
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	c := NewCollector(1, 1, 64)
	sc, ok := c.Sample()
	if !ok {
		t.Fatal("rate 1 did not sample")
	}
	root := c.Root(sc, "cmd:SET", "n1")
	c.Emit(sc, "queue_wait", "n1", -1, 0, root.Start, root.Start+10)
	appendID := c.NewSpanID()
	c.EmitWithID(appendID, sc, "append", "n1", 0, root.Start+10, root.Start+50)
	parent := SpanContext{TraceID: sc.TraceID, SpanID: appendID}
	c.Emit(parent, "az_ack", "az-1", 1, -1, root.Start+12, root.Start+30)
	c.Emit(parent, "replica_apply", "n2", -1, -1, root.Start+60, root.Start+70)
	c.Finish(root)

	spans := c.Trace(sc.TraceID)
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	ids := map[uint64]bool{}
	roots := 0
	for _, s := range spans {
		ids[s.SpanID] = true
		if s.ParentID == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want 1", roots)
	}
	for _, s := range spans {
		if s.ParentID != 0 && !ids[s.ParentID] {
			t.Fatalf("span %q parent %d not in trace", s.Name, s.ParentID)
		}
	}
	recent := c.RecentTraces(4)
	if len(recent) != 1 || recent[0] != sc.TraceID {
		t.Fatalf("RecentTraces = %v, want [%d]", recent, sc.TraceID)
	}
	c.Reset()
	if got := c.Trace(sc.TraceID); got != nil {
		t.Fatalf("Reset left %d spans", len(got))
	}
}

func TestContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context carried a span")
	}
	sc := SpanContext{TraceID: 9, SpanID: 10}
	got, ok := FromContext(NewContext(context.Background(), sc))
	if !ok || got != sc {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
}
