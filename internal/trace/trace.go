// Package trace provides cross-node causal tracing and an always-on
// bounded flight recorder for the cluster.
//
// Tracing: a SpanContext (trace ID + parent span ID) is minted at
// command parse (or at workloop submit when no front-end is present),
// carried through the workloop task, stamped onto the group-commit
// batch's txlog.Entry, and picked up again by the per-AZ quorum acks
// and the replica tailers — so one sampled SET yields a single span
// tree covering primary stages, log-service AZ acks, and replica
// applies on other nodes. Sampling is deterministic and seed-driven
// (same xorshift64* discipline as the internal/obs tracer) so chaos
// schedules replay with the same commands traced.
//
// The flight recorder is a fixed-size per-node ring of significant
// events (role transitions, fencings, fault fires, segment lifecycle,
// tailer rebootstraps...). Writers claim a slot with one atomic
// increment — no shared lock, no allocation, no lost events — so it is
// safe to leave on in the hottest paths. Rings from every node merge
// into one causally-ordered cluster timeline (timestamps come from a
// single process-wide monotonic clock, internal/obs.Now).
package trace

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"memorydb/internal/obs"
)

// Now returns monotonic nanoseconds since process start — the same
// clock internal/obs stamps stage boundaries with, so span edges can
// reuse already-taken obs timestamps and flight events from different
// in-process nodes merge into one ordered timeline.
func Now() int64 { return obs.Now() }

// SpanContext identifies a position in a trace: which trace, and which
// span new children should attach under. The zero value means "not
// sampled" (TraceID 0 is never minted).
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Sampled reports whether the context belongs to a sampled trace.
func (sc SpanContext) Sampled() bool { return sc.TraceID != 0 }

// Span is one completed operation in a trace. Start/End are Now()
// nanoseconds. AZ is -1 except for per-AZ log acks; Shard is -1 when
// the span is not bound to an execution shard.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for the root span
	Name     string
	Node     string
	AZ       int
	Shard    int
	Start    int64
	End      int64
}

// Dur returns the span duration in nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Start }

type ctxKey struct{}

// NewContext returns ctx carrying sc.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts a span context placed by NewContext.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// Collector samples traces and keeps completed spans in a bounded ring.
// One Collector is shared by every node (and the log service) of an
// in-process cluster; the production server has one per process.
type Collector struct {
	rateBits atomic.Uint64 // math.Float64bits fast-path gate
	ids      atomic.Uint64 // trace + span ID allocator (never 0)
	sampled  atomic.Int64  // traces minted
	spans    atomic.Int64  // spans recorded (including overwritten)

	mu     sync.Mutex
	rng    uint64 // xorshift64* state, seeded for determinism
	ring   []Span
	next   int
	filled bool
}

// DefaultSpanRing bounds the completed-span ring when no size is given.
const DefaultSpanRing = 4096

// NewCollector returns a collector sampling the given fraction of
// commands ([0,1]), deterministically from seed. ringSize bounds the
// completed-span ring (DefaultSpanRing if <= 0).
func NewCollector(rate float64, seed int64, ringSize int) *Collector {
	if ringSize <= 0 {
		ringSize = DefaultSpanRing
	}
	if seed == 0 {
		seed = 1
	}
	c := &Collector{rng: uint64(seed), ring: make([]Span, ringSize)}
	c.SetRate(rate)
	return c
}

// SetRate changes the sampling rate at runtime.
func (c *Collector) SetRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	c.rateBits.Store(math.Float64bits(rate))
}

// Rate returns the current sampling rate.
func (c *Collector) Rate() float64 { return math.Float64frombits(c.rateBits.Load()) }

// Sample draws the deterministic sampling coin; when it fires it mints
// a fresh root span context. With rate 0 the cost is one atomic load.
func (c *Collector) Sample() (SpanContext, bool) {
	rate := math.Float64frombits(c.rateBits.Load())
	if rate <= 0 {
		return SpanContext{}, false
	}
	c.mu.Lock()
	c.rng ^= c.rng >> 12
	c.rng ^= c.rng << 25
	c.rng ^= c.rng >> 27
	draw := float64((c.rng*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	c.mu.Unlock()
	if draw >= rate {
		return SpanContext{}, false
	}
	return c.ForceSample(), true
}

// ForceSample mints a root span context unconditionally (tests, and
// explicit TRACE-me surfaces).
func (c *Collector) ForceSample() SpanContext {
	c.sampled.Add(1)
	return SpanContext{TraceID: c.ids.Add(1), SpanID: c.ids.Add(1)}
}

// NewSpanID allocates a span ID for a span whose identity must be
// known before it completes (the batch append span is stamped onto the
// log entry so remote children can attach under it).
func (c *Collector) NewSpanID() uint64 { return c.ids.Add(1) }

// Root returns the started root span for a freshly minted context.
// Record it with Finish once the command's reply is written.
func (c *Collector) Root(sc SpanContext, name, node string) Span {
	return Span{TraceID: sc.TraceID, SpanID: sc.SpanID, Name: name, Node: node, AZ: -1, Shard: -1, Start: Now()}
}

// Child returns a started span under parent. Record with Finish.
func (c *Collector) Child(parent SpanContext, name, node string, shard int) Span {
	return Span{TraceID: parent.TraceID, SpanID: c.ids.Add(1), ParentID: parent.SpanID,
		Name: name, Node: node, AZ: -1, Shard: shard, Start: Now()}
}

// Finish stamps the end time (if unset) and records the span.
func (c *Collector) Finish(s Span) {
	if s.TraceID == 0 {
		return
	}
	if s.End == 0 {
		s.End = Now()
	}
	c.record(s)
}

// Emit records a completed child span under parent with explicit
// edges — used where both timestamps were already taken (reusing the
// obs stage stamps) or are simulated (per-AZ ack latency draws).
func (c *Collector) Emit(parent SpanContext, name, node string, az, shard int, start, end int64) {
	if parent.TraceID == 0 {
		return
	}
	c.record(Span{TraceID: parent.TraceID, SpanID: c.ids.Add(1), ParentID: parent.SpanID,
		Name: name, Node: node, AZ: az, Shard: shard, Start: start, End: end})
}

// EmitWithID is Emit with a pre-allocated span ID (from NewSpanID) —
// the append span's ID is fixed before the entry ships so AZ acks and
// replica applies can parent under it.
func (c *Collector) EmitWithID(id uint64, parent SpanContext, name, node string, shard int, start, end int64) {
	if parent.TraceID == 0 {
		return
	}
	c.record(Span{TraceID: parent.TraceID, SpanID: id, ParentID: parent.SpanID,
		Name: name, Node: node, AZ: -1, Shard: shard, Start: start, End: end})
}

func (c *Collector) record(s Span) {
	c.spans.Add(1)
	c.mu.Lock()
	c.ring[c.next] = s
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.filled = true
	}
	c.mu.Unlock()
}

// SampledCount returns how many traces have been minted.
func (c *Collector) SampledCount() int64 { return c.sampled.Load() }

// SpanCount returns how many spans have been recorded (ever, not the
// current ring occupancy).
func (c *Collector) SpanCount() int64 { return c.spans.Load() }

// Trace returns every retained span of the given trace, parents before
// children where starts are equal, earliest first.
func (c *Collector) Trace(id uint64) []Span {
	if id == 0 {
		return nil
	}
	var out []Span
	c.mu.Lock()
	n := c.next
	if c.filled {
		n = len(c.ring)
	}
	for i := 0; i < n; i++ {
		if c.ring[i].TraceID == id {
			out = append(out, c.ring[i])
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// RecentTraces returns up to n distinct trace IDs, newest recording
// first.
func (c *Collector) RecentTraces(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	var out []uint64
	seen := map[uint64]bool{}
	c.mu.Lock()
	total := c.next
	if c.filled {
		total = len(c.ring)
	}
	for i := 0; i < total && len(out) < n; i++ {
		idx := c.next - 1 - i
		if idx < 0 {
			idx += len(c.ring)
		}
		id := c.ring[idx].TraceID
		if id != 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	c.mu.Unlock()
	return out
}

// Reset drops retained spans (the ID allocator and counters keep
// going, so old trace IDs stay unique).
func (c *Collector) Reset() {
	c.mu.Lock()
	for i := range c.ring {
		c.ring[i] = Span{}
	}
	c.next = 0
	c.filled = false
	c.mu.Unlock()
}
