package trace

import (
	"strings"
	"sync"
	"testing"
)

// The flight ring must not lose events under concurrent writers: every
// Record claims a distinct sequence number, and as long as fewer
// events than the ring size are written, every one must surface in
// Events(). Run with -race (scripts/check.sh covers this package).
func TestFlightConcurrentWritersLoseNothing(t *testing.T) {
	const writers, perWriter = 8, 32
	f := NewFlight("n1", writers*perWriter+16)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Alternate kinds so role transitions interleave with
				// other traffic, as on a real failover.
				if i%2 == 0 {
					f.Record(EvRoleChange, uint64(w), "primary")
				} else {
					f.Record(EvFaultFire, uint64(w), "core.append.pre")
				}
			}
		}(w)
	}
	wg.Wait()
	if got := f.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	evs := f.Events()
	if len(evs) != writers*perWriter {
		t.Fatalf("retained %d events, want %d", len(evs), writers*perWriter)
	}
	seen := map[uint64]bool{}
	roles := 0
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Kind == EvRoleChange {
			roles++
		}
		if e.Node != "n1" {
			t.Fatalf("node = %q", e.Node)
		}
	}
	if roles != writers*perWriter/2 {
		t.Fatalf("role_change events = %d, want %d", roles, writers*perWriter/2)
	}
}

// Recording with a pre-existing detail string must not allocate — the
// recorder is always on, including on the write hot path's rare-event
// branches.
func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlight("n1", 64)
	if n := testing.AllocsPerRun(1000, func() {
		f.Record(EvRoleChange, 7, "replica")
	}); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
}

// An unsampled Sample() call (the steady state at low rates) must stay
// allocation-free too.
func TestCollectorSampleMissZeroAlloc(t *testing.T) {
	c := NewCollector(0, 42, 64)
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Sample(); ok {
			t.Fatal("rate 0 sampled")
		}
	}); n != 0 {
		t.Fatalf("Sample (rate 0) allocates %v/op, want 0", n)
	}
}

func TestFlightRingBounded(t *testing.T) {
	f := NewFlight("n1", 8)
	for i := 1; i <= 20; i++ {
		f.Record(EvBarrier, uint64(i), "WAIT")
	}
	evs := f.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestMergeOrdersAcrossNodes(t *testing.T) {
	a, b := NewFlight("a", 16), NewFlight("b", 16)
	a.Record(EvKill, 0, "")
	b.Record(EvRoleChange, 3, "primary")
	a.Record(EvRestart, 0, "")
	merged := Merge(a, b, nil)
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	text := FormatTimeline(merged)
	for _, want := range []string{"kill", "role_change", "restart", "pos=3", "primary"} {
		if !strings.Contains(text, want) {
			t.Fatalf("timeline missing %q:\n%s", want, text)
		}
	}
}
