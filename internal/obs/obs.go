// Package obs is the dependency-free observability substrate: lock-free
// log-linear latency histograms, per-command write-path stage spans, a
// sampled trace ring, a slowlog, a bounded alarm ring, and Prometheus
// text exposition over stdlib net/http. It imports nothing from the
// rest of the tree so every layer (server, core, txlog, snapshot,
// cluster, bench) can record into one shared Metrics instance.
package obs

import "time"

// Stage identifies one hop of the linearizable write path, in pipeline
// order. A command's end-to-end latency decomposes as
//
//	read_parse → queue_wait → execute → batch_wait → append
//	           → quorum_wait → tracker_release → reply_write
//
// where read_parse/reply_write are measured by the server front-end
// around the node, batch_wait/append/quorum_wait are per group-commit
// batch (each buffered command observes its own batch residency, the
// batch observes one append and one quorum wait), and e2e spans
// submit-to-reply inside the node.
type Stage int

const (
	// StageReadParse: server reading+parsing the RESP command off the
	// socket. Includes wire idle time on keepalive connections, so its
	// tail reflects client think time, not server work.
	StageReadParse Stage = iota
	// StageQueueWait: submit-to-dequeue wait in the workloop task queue.
	StageQueueWait
	// StageExecute: engine execution inside the workloop.
	StageExecute
	// StageBatchWait: a mutation's residency in the group-commit buffer
	// between engine execution and the batch starting its append.
	StageBatchWait
	// StageAppend: conditional-append submission to the transaction log
	// (once per batch).
	StageAppend
	// StageQuorumWait: append-submitted to 2-of-3 AZ quorum ack (once
	// per batch).
	StageQuorumWait
	// StageTrackerRelease: quorum ack to the tracker delivering the
	// gated reply.
	StageTrackerRelease
	// StageReplicaReadWait: a linearizable replica read parked in the
	// ReadGate between capturing the committed tail and the replica's
	// applied position covering it (zero on the primary path).
	StageReplicaReadWait
	// StageReplyWrite: server serializing+flushing the reply.
	StageReplyWrite
	// StageE2E: node submit to reply delivery (queue+execute+commit).
	StageE2E
	// NumStages sizes per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"read_parse",
	"queue_wait",
	"execute",
	"batch_wait",
	"append",
	"quorum_wait",
	"tracker_release",
	"replica_read_wait",
	"reply_write",
	"e2e",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// StageByName resolves a snake_case stage name; ok is false if unknown.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// base anchors the process-local monotonic clock. time.Since reads the
// monotonic component of base, so Now() is immune to wall-clock steps
// and allocation-free.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. Stage stamps
// are differences of Now() values; zero means "not stamped".
func Now() int64 {
	n := int64(time.Since(base))
	if n == 0 {
		n = 1
	}
	return n
}
