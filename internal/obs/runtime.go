package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// Go runtime, build, and uptime metrics, appended to every scrape. The
// go_* families follow the conventional client_golang names so existing
// dashboards and alerts apply unmodified; memorydb_build_info carries
// the module version and VCS revision as labels with a constant value of
// 1 (the standard join-key idiom for version dashboards).

var processStart = time.Now()

// buildVersion/buildCommit are resolved once from the binary's embedded
// build info: module version, plus the vcs.revision stamped by `go build`
// in a git checkout ("unknown" outside one).
var buildVersion, buildCommit = func() (string, string) {
	version, commit := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	return version, commit
}()

// BuildID returns the module version and VCS revision embedded in the
// running binary ("unknown" when not stamped). Shared by /metrics
// exposition and the bench artifact metadata envelope.
func BuildID() (version, commit string) {
	return buildVersion, buildCommit
}

// writeRuntimeMetrics emits process-level health: goroutines, GC pause
// totals, heap gauges, uptime, and build identity. ReadMemStats costs a
// brief stop-the-world, which is fine at scrape cadence.
func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %s\n", promFloat(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(w, "# TYPE go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# TYPE go_heap_sys_bytes gauge\n")
	fmt.Fprintf(w, "go_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(w, "# TYPE go_heap_objects gauge\n")
	fmt.Fprintf(w, "go_heap_objects %d\n", ms.HeapObjects)
	fmt.Fprintf(w, "# TYPE memorydb_uptime_seconds gauge\n")
	fmt.Fprintf(w, "memorydb_uptime_seconds %s\n", promFloat(time.Since(processStart).Seconds()))
	fmt.Fprintf(w, "# TYPE memorydb_build_info gauge\n")
	fmt.Fprintf(w, "memorydb_build_info{version=%q,commit=%q,go=%q} 1\n",
		buildVersion, buildCommit, runtime.Version())
}
