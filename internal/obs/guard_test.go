package obs

import (
	"testing"
	"time"
)

// TestObsOverheadGuardAllocs enforces the always-on budget: the full
// per-command record path — stage observes plus FinishCommand with
// sampling off and the command under the slowlog threshold — must not
// allocate. This is the half of the overhead guard that is
// deterministic, so it runs in every test invocation; the throughput
// half lives in internal/core (TestObsOverheadGuardWorkloop) behind
// MEMORYDB_OBS_GUARD=1 because wall-clock comparisons flake on loaded
// CI machines.
func TestObsOverheadGuardAllocs(t *testing.T) {
	m := New(Options{SlowlogThreshold: time.Hour}) // sampling off, nothing slow
	argv := [][]byte{[]byte("SET"), []byte("key"), []byte("value")}
	allocs := testing.AllocsPerRun(1000, func() {
		start := Now()
		m.Stage(StageQueueWait).ObserveNanos(120)
		m.Stage(StageExecute).ObserveNanos(300)
		m.Stage(StageBatchWait).ObserveNanos(800)
		m.Stage(StageAppend).ObserveNanos(1500)
		m.Stage(StageQuorumWait).ObserveNanos(40000)
		m.Stage(StageTrackerRelease).ObserveNanos(900)
		m.FinishCommand("SET", argv, Now()-start+45000, 120, 300, 0)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v per command with sampling off; budget is 0", allocs)
	}
}

func BenchmarkObsRecordPath(b *testing.B) {
	m := New(Options{SlowlogThreshold: time.Hour})
	argv := [][]byte{[]byte("SET"), []byte("key"), []byte("value")}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			start := Now()
			m.Stage(StageQueueWait).ObserveNanos(120)
			m.Stage(StageExecute).ObserveNanos(300)
			m.FinishCommand("SET", argv, Now()-start+45000, 120, 300, 0)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNanos(int64(i)&0xFFFFF + 1000)
	}
}
