package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options parameterizes a Metrics instance. The zero value is usable:
// a 10ms slowlog threshold, 128-entry slowlog, trace sampling off.
type Options struct {
	// SlowlogThreshold: commands slower than this end-to-end are noted
	// in the slowlog. <=0 uses the 10ms default; use a huge value to
	// effectively disable.
	SlowlogThreshold time.Duration
	// SlowlogSize bounds the slowlog ring (default 128).
	SlowlogSize int
	// TraceSampleRate in [0,1] is the fraction of commands whose stage
	// breakdown is captured in the trace ring. 0 disables sampling and
	// keeps the per-command path allocation-free.
	TraceSampleRate float64
	// TraceSeed fixes the sampling PRNG for deterministic tests.
	TraceSeed int64
	// TraceRingSize bounds the trace ring (default 256).
	TraceRingSize int
}

// Metrics is the shared observability registry: fixed per-stage
// histograms, a per-command histogram map, named histograms and counter
// callbacks registered by other layers for export, plus the slowlog and
// trace ring. One instance is shared by the server front-end, the node,
// and the log service so INFO, the RESP commands, and /metrics all read
// the same data.
type Metrics struct {
	stages [NumStages]Histogram

	// shardStages holds per-execution-shard queue_wait/execute histograms
	// for nodes running sharded workloops. The slice is installed once via
	// EnsureShards and read lock-free on the per-command hot path.
	shardStages atomic.Pointer[[]*ShardStages]

	cmdMu sync.RWMutex
	cmds  map[string]*Histogram

	regMu   sync.Mutex
	named   []NamedHistogram
	counter []Counter
	gauges  []Gauge

	// Slow is the slowlog; always non-nil on instances from New.
	Slow *Slowlog
	// Traces is the sampled stage-span ring; always non-nil from New.
	Traces *Tracer
}

// NamedHistogram is a histogram registered for export under an explicit
// metric name (e.g. per-AZ append latency, snapshot build duration).
type NamedHistogram struct {
	// Name is the bare metric name; Prometheus exposition prefixes
	// "memorydb_" and suffixes "_duration_seconds".
	Name string
	// Label is an optional single `key="value"` pair.
	Label string
	H     *Histogram
}

// Counter is a monotonic counter exported by callback, letting existing
// atomic counters (core.Stats and friends) appear in /metrics without
// changing how they are recorded.
type Counter struct {
	// Name is the bare metric name; exposition prefixes "memorydb_"
	// and suffixes "_total".
	Name  string
	Label string
	Fn    func() int64
}

// Gauge is an instantaneous value exported by callback (queue depths,
// imbalance ratios). Exposition prefixes "memorydb_" with no suffix.
type Gauge struct {
	Name  string
	Label string
	Fn    func() int64
}

// ShardStages is the pair of per-shard write-path histograms a sharded
// node records: time queued behind the shard's workloop and time executing
// on its engine.
type ShardStages struct {
	QueueWait Histogram
	Execute   Histogram
}

// New creates a Metrics registry.
func New(opts Options) *Metrics {
	if opts.SlowlogThreshold <= 0 {
		opts.SlowlogThreshold = 10 * time.Millisecond
	}
	if opts.SlowlogSize <= 0 {
		opts.SlowlogSize = 128
	}
	if opts.TraceRingSize <= 0 {
		opts.TraceRingSize = 256
	}
	return &Metrics{
		cmds:   make(map[string]*Histogram),
		Slow:   newSlowlog(opts.SlowlogThreshold, opts.SlowlogSize),
		Traces: newTracer(opts.TraceSampleRate, opts.TraceSeed, opts.TraceRingSize),
	}
}

// Stage returns the histogram for one write-path stage.
func (m *Metrics) Stage(s Stage) *Histogram {
	if m == nil || s < 0 || s >= NumStages {
		return nil
	}
	return &m.stages[s]
}

// Command returns (creating on first use) the end-to-end latency
// histogram for one command name. The read path is a shared-lock map
// hit with no allocation.
func (m *Metrics) Command(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.cmdMu.RLock()
	h := m.cmds[name]
	m.cmdMu.RUnlock()
	if h != nil {
		return h
	}
	m.cmdMu.Lock()
	defer m.cmdMu.Unlock()
	if m.cmds == nil {
		m.cmds = make(map[string]*Histogram)
	}
	if h = m.cmds[name]; h == nil {
		h = &Histogram{}
		m.cmds[name] = h
	}
	return h
}

// EachCommand calls fn for every per-command histogram in sorted name
// order.
func (m *Metrics) EachCommand(fn func(name string, h *Histogram)) {
	if m == nil {
		return
	}
	m.cmdMu.RLock()
	names := make([]string, 0, len(m.cmds))
	for n := range m.cmds {
		names = append(names, n)
	}
	hists := make(map[string]*Histogram, len(m.cmds))
	for n, h := range m.cmds {
		hists[n] = h
	}
	m.cmdMu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		fn(n, hists[n])
	}
}

// RegisterHistogram exposes an externally-owned histogram (per-AZ append
// latency, snapshot build time, …) in Prometheus exposition.
func (m *Metrics) RegisterHistogram(name, label string, h *Histogram) {
	if m == nil || h == nil {
		return
	}
	m.regMu.Lock()
	m.named = append(m.named, NamedHistogram{Name: name, Label: label, H: h})
	m.regMu.Unlock()
}

// Named returns (creating and registering on first use) a histogram
// owned by the registry under the given metric name with no label.
func (m *Metrics) Named(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	for _, nh := range m.named {
		if nh.Name == name && nh.Label == "" {
			return nh.H
		}
	}
	h := &Histogram{}
	m.named = append(m.named, NamedHistogram{Name: name, H: h})
	return h
}

// RegisterCounter exposes a monotonic counter by callback.
func (m *Metrics) RegisterCounter(name, label string, fn func() int64) {
	if m == nil || fn == nil {
		return
	}
	m.regMu.Lock()
	m.counter = append(m.counter, Counter{Name: name, Label: label, Fn: fn})
	m.regMu.Unlock()
}

// RegisterGauge exposes an instantaneous value by callback.
func (m *Metrics) RegisterGauge(name, label string, fn func() int64) {
	if m == nil || fn == nil {
		return
	}
	m.regMu.Lock()
	m.gauges = append(m.gauges, Gauge{Name: name, Label: label, Fn: fn})
	m.regMu.Unlock()
}

// EnsureShards grows the per-shard stage histogram set to at least n
// entries. Call it at node construction, before the workloops start;
// existing entries keep their recorded samples, so registries shared by
// several nodes size to the widest node.
func (m *Metrics) EnsureShards(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.regMu.Lock()
	defer m.regMu.Unlock()
	var cur []*ShardStages
	if p := m.shardStages.Load(); p != nil {
		cur = *p
	}
	if len(cur) >= n {
		return
	}
	next := make([]*ShardStages, n)
	copy(next, cur)
	for i := len(cur); i < n; i++ {
		next[i] = &ShardStages{}
	}
	m.shardStages.Store(&next)
}

// ShardStage returns the stage histogram pair for shard i, or nil if the
// registry has not been sized to cover it. Lock-free and allocation-free.
func (m *Metrics) ShardStage(i int) *ShardStages {
	if m == nil || i < 0 {
		return nil
	}
	p := m.shardStages.Load()
	if p == nil || i >= len(*p) {
		return nil
	}
	return (*p)[i]
}

// NumShardStages returns how many shard stage slots are allocated.
func (m *Metrics) NumShardStages() int {
	if m == nil {
		return 0
	}
	p := m.shardStages.Load()
	if p == nil {
		return 0
	}
	return len(*p)
}

func (m *Metrics) gaugeSnapshot() []Gauge {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	return append([]Gauge(nil), m.gauges...)
}

func (m *Metrics) namedSnapshot() []NamedHistogram {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	return append([]NamedHistogram(nil), m.named...)
}

func (m *Metrics) counterSnapshot() []Counter {
	m.regMu.Lock()
	defer m.regMu.Unlock()
	return append([]Counter(nil), m.counter...)
}

// FinishCommand records a completed command: end-to-end and per-command
// histograms, slowlog check, and (if sampled) a trace-ring entry. The
// stage inputs are nanoseconds; commit time — everything between engine
// execution and reply delivery (batch wait, append, quorum, release) —
// is derived as total-queue-exec. shard is the execution shard that
// handled the command (-1 for the barrier path), retained on slowlog and
// trace entries so hot-shard skew shows up in LATENCY TRACES / SLOWLOG
// output. With sampling off and the command under the slowlog threshold
// this path performs zero allocations.
func (m *Metrics) FinishCommand(name string, argv [][]byte, totalNanos, queueNanos, execNanos int64, shard int) {
	if m == nil {
		return
	}
	m.stages[StageE2E].ObserveNanos(totalNanos)
	if name != "" {
		m.Command(name).ObserveNanos(totalNanos)
	}
	commit := totalNanos - queueNanos - execNanos
	if commit < 0 {
		commit = 0
	}
	m.Slow.maybeNote(name, argv, totalNanos, queueNanos, execNanos, commit, shard)
	m.Traces.maybeRecord(name, totalNanos, queueNanos, execNanos, commit, shard)
}

// ResetLatency zeroes every stage and per-command histogram (the RESP
// `LATENCY RESET` operation).
func (m *Metrics) ResetLatency() {
	if m == nil {
		return
	}
	for i := range m.stages {
		m.stages[i].Reset()
	}
	if p := m.shardStages.Load(); p != nil {
		for _, ss := range *p {
			ss.QueueWait.Reset()
			ss.Execute.Reset()
		}
	}
	m.cmdMu.RLock()
	for _, h := range m.cmds {
		h.Reset()
	}
	m.cmdMu.RUnlock()
}
