package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values below subCount nanoseconds get exact
// unit buckets; above that, each power-of-two octave is split into
// subCount linear sub-buckets (HDR-style log-linear ladder). With
// subBits=4 the relative quantization error of any reported percentile
// is at most 1/16 ≈ 6.25%, which is far below run-to-run latency noise
// while keeping the whole ladder small enough to embed per stage and
// per command.
const (
	subBits  = 4
	subCount = 1 << subBits
	// maxExp caps the ladder at 2^40ns ≈ 18.3 minutes; anything slower
	// collapses into the top bucket (Max still records the exact value).
	maxExp = 40
	// NumBuckets = exact unit buckets + (maxExp-subBits) octaves of
	// subCount sub-buckets each.
	NumBuckets = subCount + (maxExp-subBits)*subCount
)

// Histogram is a lock-free log-linear latency histogram. The zero value
// is ready to use; all methods are safe for concurrent use and the
// recording path performs no allocation and takes no lock.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	u := uint64(v)
	exp := bits.Len64(u) - 1
	if exp >= maxExp {
		return NumBuckets - 1
	}
	sub := int(u>>(uint(exp)-subBits)) - subCount
	return subCount + (exp-subBits)*subCount + sub
}

// BucketUpper returns the inclusive upper bound (in nanoseconds) of
// bucket i. For the exact unit buckets the bound equals the value itself.
func BucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	oct := (i - subCount) / subCount
	sub := (i - subCount) % subCount
	exp := oct + subBits
	lower := int64(1)<<uint(exp) + int64(sub)<<uint(exp-subBits)
	return lower + int64(1)<<uint(exp-subBits) - 1
}

// ObserveNanos records one latency sample in nanoseconds. Negative
// values (possible from non-monotonic subtraction bugs) clamp to zero
// rather than corrupting the ladder.
func (h *Histogram) ObserveNanos(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all recorded samples in nanoseconds.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded sample, exactly (not quantized).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the arithmetic mean of recorded samples.
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Percentile returns the latency at quantile q in (0, 1]. The result is
// the bucket upper bound containing the q-th sample, clamped to the
// exact observed max — so it never under-reports a sample's true value
// and over-reports by at most the bucket width (≤6.25%).
func (h *Histogram) Percentile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			upper := BucketUpper(i)
			if m := h.max.Load(); m < upper {
				return time.Duration(m)
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max.Load())
}

// Quantiles is the standard percentile bundle reported by INFO and the
// RESP LATENCY command.
type Quantiles struct {
	P50, P95, P99, P999, Max time.Duration
}

// Quantiles returns p50/p95/p99/p999 plus the exact max in one call.
func (h *Histogram) Quantiles() Quantiles {
	return Quantiles{
		P50:  h.Percentile(0.50),
		P95:  h.Percentile(0.95),
		P99:  h.Percentile(0.99),
		P999: h.Percentile(0.999),
		Max:  h.Max(),
	}
}

// Merge adds every sample recorded in other into h. Safe against
// concurrent recording on either side; the merged view is a consistent
// superset of both at some point during the call.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := 0; i < NumBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Reset zeroes all counters. Not atomic with respect to concurrent
// observers: samples recorded during the reset may be partially lost,
// which is acceptable for an operator-initiated counter reset.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := 0; i < NumBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// EachBucket calls fn for every non-empty bucket in ascending order with
// the bucket's inclusive upper bound in nanoseconds and its count.
func (h *Histogram) EachBucket(fn func(upperNanos int64, count uint64)) {
	if h == nil {
		return
	}
	for i := 0; i < NumBuckets; i++ {
		if c := h.counts[i].Load(); c != 0 {
			fn(BucketUpper(i), c)
		}
	}
}

// CumulativeAtNanos returns, for each bound in bounds (ascending,
// nanoseconds), the number of samples whose bucket upper bound is ≤ that
// bound — the cumulative counts Prometheus histogram exposition needs.
// Samples above the last bound are only visible via Count().
func (h *Histogram) CumulativeAtNanos(bounds []int64) []uint64 {
	out := make([]uint64, len(bounds))
	if h == nil {
		return out
	}
	j := 0
	var cum uint64
	for i := 0; i < NumBuckets && j < len(bounds); i++ {
		for j < len(bounds) && BucketUpper(i) > bounds[j] {
			out[j] = cum
			j++
		}
		if j >= len(bounds) {
			break
		}
		cum += h.counts[i].Load()
	}
	for ; j < len(bounds); j++ {
		out[j] = cum
	}
	return out
}
