package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexContinuity(t *testing.T) {
	// Every value maps to exactly one bucket, indices are monotonically
	// nondecreasing in the value, and each bucket's upper bound actually
	// contains the values mapped to it.
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 1023, 1024,
		1<<20 - 1, 1 << 20, 1<<30 + 12345, 1<<39 + 7, 1<<40 - 1, 1 << 40, 1 << 50} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic: v=%d idx=%d prev=%d", v, idx, prev)
		}
		prev = idx
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if v < 1<<maxExp && BucketUpper(idx) < v {
			t.Fatalf("BucketUpper(%d)=%d < value %d", idx, BucketUpper(idx), v)
		}
	}
	// Exhaustive low range: indices 0..subCount-1 are exact.
	for v := int64(0); v < subCount; v++ {
		if bucketIndex(v) != int(v) || BucketUpper(int(v)) != v {
			t.Fatalf("exact bucket broken at %d", v)
		}
	}
	// Bucket uppers strictly increase.
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not increasing at %d: %d <= %d", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

// TestPercentileOracle compares histogram percentiles against a
// sorted-slice oracle: the histogram may over-report by at most one
// sub-bucket width (6.25%) and never under-report.
func TestPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~1µs..1s, the realistic latency range.
		v := int64(float64(time.Microsecond) * math.Pow(10, rng.Float64()*6))
		samples = append(samples, v)
		h.ObserveNanos(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
		idx := int(q*float64(len(samples))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		oracle := samples[idx]
		got := int64(h.Percentile(q))
		if got < oracle {
			t.Errorf("q=%v: histogram %d under-reports oracle %d", q, got, oracle)
		}
		if float64(got) > float64(oracle)*1.0626+1 {
			t.Errorf("q=%v: histogram %d exceeds oracle %d by more than bucket width", q, got, oracle)
		}
	}
	if h.Max() != time.Duration(samples[len(samples)-1]) {
		t.Errorf("Max=%v want exact %v", h.Max(), time.Duration(samples[len(samples)-1]))
	}
	var sum int64
	for _, s := range samples {
		sum += s
	}
	if h.Sum() != sum {
		t.Errorf("Sum=%d want %d", h.Sum(), sum)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, both := &Histogram{}, &Histogram{}, &Histogram{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(int64(100 * time.Millisecond))
		if i%2 == 0 {
			a.ObserveNanos(v)
		} else {
			b.ObserveNanos(v)
		}
		both.ObserveNanos(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %v/%v",
			a.Count(), both.Count(), a.Sum(), both.Sum(), a.Max(), both.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Percentile(q) != both.Percentile(q) {
			t.Fatalf("merged percentile q=%v: %v != %v", q, a.Percentile(q), both.Percentile(q))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.ObserveNanos(rng.Int63n(int64(time.Second)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count=%d want %d", h.Count(), workers*perWorker)
	}
	var bucketSum uint64
	h.EachBucket(func(_ int64, c uint64) { bucketSum += c })
	if bucketSum != workers*perWorker {
		t.Fatalf("bucket sum=%d want %d", bucketSum, workers*perWorker)
	}
}

func TestHistogramReset(t *testing.T) {
	h := &Histogram{}
	h.Observe(5 * time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatalf("reset left state behind: %+v", h.Quantiles())
	}
}

func TestCumulativeAtNanos(t *testing.T) {
	h := &Histogram{}
	for _, v := range []time.Duration{5 * time.Microsecond, 40 * time.Microsecond,
		2 * time.Millisecond, 30 * time.Millisecond, 4 * time.Second} {
		h.Observe(v)
	}
	bounds := []int64{int64(10 * time.Microsecond), int64(time.Millisecond),
		int64(100 * time.Millisecond), int64(10 * time.Second)}
	cum := h.CumulativeAtNanos(bounds)
	want := []uint64{1, 2, 4, 5}
	for i := range want {
		// Bucketization may push a value's upper bound just past a
		// boundary; allow exact expected counts here because the chosen
		// samples sit far from the bounds.
		if cum[i] != want[i] {
			t.Fatalf("cum[%d]=%d want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	// Monotonic.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts not monotonic: %v", cum)
		}
	}
}
