package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one sampled command with its stage breakdown.
type Trace struct {
	// Seq is the 1-based index of this command among *sampled* commands.
	Seq int64
	At  time.Time
	Cmd string
	// Total = Queue + Exec + Commit (commit spans batch residency,
	// append, quorum wait and tracker release).
	Total, Queue, Exec, Commit time.Duration
	// Shard is the execution shard that handled the command (-1 for the
	// all-shard barrier path).
	Shard int
}

// Tracer samples a fixed fraction of completed commands into a bounded
// ring. Sampling decisions come from a seeded xorshift PRNG so tests
// (and incident repro) are deterministic; with rate 0 the per-command
// cost is one atomic-free mutex-free branch and no allocation.
type Tracer struct {
	rateBits atomic.Uint64 // math.Float64bits of the rate

	mu      sync.Mutex
	rng     uint64
	ring    []Trace
	nextIdx int
	filled  bool
	sampled int64
}

func newTracer(rate float64, seed int64, size int) *Tracer {
	t := &Tracer{ring: make([]Trace, size)}
	t.setRate(rate)
	t.rng = uint64(seed)
	if t.rng == 0 {
		t.rng = 0x9e3779b97f4a7c15
	}
	return t
}

func (t *Tracer) setRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.rateBits.Store(math.Float64bits(rate))
}

// Rate returns the configured sample rate.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.rateBits.Load())
}

// Sampled returns how many commands have been sampled so far.
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampled
}

// maybeRecord draws the sampling coin and, on a hit, appends a trace.
func (t *Tracer) maybeRecord(cmd string, total, queue, exec, commit int64, shard int) {
	if t == nil {
		return
	}
	rate := math.Float64frombits(t.rateBits.Load())
	if rate <= 0 {
		// Fast path: sampling off costs one atomic load, no lock, no
		// allocation.
		return
	}
	t.mu.Lock()
	// xorshift64* — tiny, deterministic, good enough for sampling.
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	draw := float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
	if draw >= rate {
		t.mu.Unlock()
		return
	}
	t.sampled++
	tr := Trace{
		Seq:    t.sampled,
		At:     time.Now(),
		Cmd:    cmd,
		Total:  time.Duration(total),
		Queue:  time.Duration(queue),
		Exec:   time.Duration(exec),
		Commit: time.Duration(commit),
		Shard:  shard,
	}
	t.ring[t.nextIdx] = tr
	t.nextIdx++
	if t.nextIdx == len(t.ring) {
		t.nextIdx = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// Recent returns up to n traces, newest first.
func (t *Tracer) Recent(n int) []Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.nextIdx
	if t.filled {
		have = len(t.ring)
	}
	if n > have {
		n = have
	}
	out := make([]Trace, 0, n)
	idx := t.nextIdx
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx = len(t.ring) - 1
		}
		out = append(out, t.ring[idx])
	}
	return out
}
