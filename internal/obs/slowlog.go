package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one slowlog record: a command whose end-to-end latency
// crossed the threshold, with its stage breakdown for attribution.
type SlowEntry struct {
	// ID is a monotonically increasing sequence number (survives ring
	// eviction, so operators can detect gaps).
	ID int64
	// At is the wall-clock completion time.
	At time.Time
	// Cmd is the uppercase command name; Args are the arguments
	// (truncated copies — the originals belong to the connection).
	Cmd  string
	Args []string
	// Total is end-to-end; Queue/Exec/Commit decompose it into workloop
	// queue wait, engine execution, and everything durability-related
	// after execution (batch residency + append + quorum + release).
	Total, Queue, Exec, Commit time.Duration
	// Shard is the execution shard that handled the command (-1 for the
	// all-shard barrier path).
	Shard int
}

// Slowlog is a bounded ring of slow commands. The fast path — checking
// a command below threshold — is one atomic load.
type Slowlog struct {
	threshold atomic.Int64 // nanoseconds
	total     atomic.Int64 // entries ever recorded (including evicted)

	mu      sync.Mutex
	ring    []SlowEntry
	nextIdx int
	filled  bool
	nextID  int64
}

const slowlogMaxArgs = 8
const slowlogMaxArgLen = 64

func newSlowlog(threshold time.Duration, size int) *Slowlog {
	s := &Slowlog{ring: make([]SlowEntry, size)}
	s.threshold.Store(int64(threshold))
	return s
}

// Threshold returns the current slowlog threshold.
func (s *Slowlog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.threshold.Load())
}

// SetThreshold updates the threshold; <=0 disables the slowlog.
func (s *Slowlog) SetThreshold(d time.Duration) {
	if s == nil {
		return
	}
	s.threshold.Store(int64(d))
}

// Total returns how many entries were ever recorded, including ones
// evicted from the ring.
func (s *Slowlog) Total() int64 {
	if s == nil {
		return 0
	}
	return s.total.Load()
}

// Len returns the number of entries currently held.
func (s *Slowlog) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.filled {
		return len(s.ring)
	}
	return s.nextIdx
}

// maybeNote records the command if it crossed the threshold.
func (s *Slowlog) maybeNote(name string, argv [][]byte, total, queue, exec, commit int64, shard int) {
	if s == nil {
		return
	}
	thr := s.threshold.Load()
	if thr <= 0 || total < thr {
		return
	}
	var args []string
	n := len(argv)
	if n > slowlogMaxArgs {
		n = slowlogMaxArgs
	}
	if n > 0 {
		args = make([]string, n)
		for i := 0; i < n; i++ {
			a := argv[i]
			if len(a) > slowlogMaxArgLen {
				a = a[:slowlogMaxArgLen]
			}
			args[i] = string(a)
		}
	}
	e := SlowEntry{
		At:     time.Now(),
		Cmd:    name,
		Args:   args,
		Total:  time.Duration(total),
		Queue:  time.Duration(queue),
		Exec:   time.Duration(exec),
		Commit: time.Duration(commit),
		Shard:  shard,
	}
	s.total.Add(1)
	s.mu.Lock()
	e.ID = s.nextID
	s.nextID++
	s.ring[s.nextIdx] = e
	s.nextIdx++
	if s.nextIdx == len(s.ring) {
		s.nextIdx = 0
		s.filled = true
	}
	s.mu.Unlock()
}

// Recent returns up to n entries, newest first.
func (s *Slowlog) Recent(n int) []SlowEntry {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.nextIdx
	if s.filled {
		have = len(s.ring)
	}
	if n > have {
		n = have
	}
	out := make([]SlowEntry, 0, n)
	idx := s.nextIdx
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx = len(s.ring) - 1
		}
		out = append(out, s.ring[idx])
	}
	return out
}

// Reset drops all entries (keeps the threshold and total counter).
func (s *Slowlog) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.nextIdx = 0
	s.filled = false
	s.mu.Unlock()
}

// Alarm is one operational alarm with its wall-clock time.
type Alarm struct {
	At  time.Time
	Msg string
}

// AlarmLog is a bounded ring of operational alarms (snapshot
// verification failures, primaryless shards, …). It replaces unbounded
// `[]string` accumulation and — unlike an optional callback — never
// drops history when no pager is wired up.
type AlarmLog struct {
	mu      sync.Mutex
	ring    []Alarm
	nextIdx int
	filled  bool
	total   int64
}

// NewAlarmLog creates an alarm ring holding the last size alarms.
func NewAlarmLog(size int) *AlarmLog {
	if size <= 0 {
		size = 64
	}
	return &AlarmLog{ring: make([]Alarm, size)}
}

// Raise records an alarm.
func (a *AlarmLog) Raise(msg string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.ring[a.nextIdx] = Alarm{At: time.Now(), Msg: msg}
	a.nextIdx++
	if a.nextIdx == len(a.ring) {
		a.nextIdx = 0
		a.filled = true
	}
	a.total++
	a.mu.Unlock()
}

// Total returns how many alarms were ever raised.
func (a *AlarmLog) Total() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Recent returns up to n alarms, newest first.
func (a *AlarmLog) Recent(n int) []Alarm {
	if a == nil || n <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	have := a.nextIdx
	if a.filled {
		have = len(a.ring)
	}
	if n > have {
		n = have
	}
	out := make([]Alarm, 0, n)
	idx := a.nextIdx
	for i := 0; i < n; i++ {
		idx--
		if idx < 0 {
			idx = len(a.ring) - 1
		}
		out = append(out, a.ring[idx])
	}
	return out
}

// Oldest returns up to n alarms, oldest first (the order an unbounded
// append-only slice would have preserved).
func (a *AlarmLog) Oldest(n int) []Alarm {
	rec := a.Recent(n)
	for i, j := 0, len(rec)-1; i < j; i, j = i+1, j-1 {
		rec[i], rec[j] = rec[j], rec[i]
	}
	return rec
}
