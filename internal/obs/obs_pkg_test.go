package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTracerDeterministicSampling(t *testing.T) {
	// Two tracers with the same seed and rate must make identical
	// sampling decisions over the same command stream.
	run := func() []Trace {
		tr := newTracer(0.25, 1234, 64)
		for i := 0; i < 400; i++ {
			tr.maybeRecord(fmt.Sprintf("CMD%d", i), int64(i+1), 0, 0, int64(i+1), 0)
		}
		return tr.Recent(64)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.25 over 400 commands sampled nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sample count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cmd != b[i].Cmd || a[i].Seq != b[i].Seq || a[i].Total != b[i].Total {
			t.Fatalf("trace %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Sanity: ~25% of 400 should be sampled, not everything.
	tr := newTracer(0.25, 1234, 1024)
	for i := 0; i < 400; i++ {
		tr.maybeRecord("X", 1, 0, 0, 1, 0)
	}
	if s := tr.Sampled(); s < 50 || s > 200 {
		t.Fatalf("sampled %d of 400 at rate 0.25", s)
	}
}

func TestTracerRateZeroSamplesNothing(t *testing.T) {
	tr := newTracer(0, 99, 16)
	for i := 0; i < 1000; i++ {
		tr.maybeRecord("SET", 1000, 10, 10, 980, 0)
	}
	if tr.Sampled() != 0 || len(tr.Recent(16)) != 0 {
		t.Fatalf("rate-0 tracer recorded traces")
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := newTracer(1.0, 5, 8)
	for i := 0; i < 20; i++ {
		tr.maybeRecord("C", int64(i+1), 0, 0, 0, 0)
	}
	rec := tr.Recent(100)
	if len(rec) != 8 {
		t.Fatalf("ring holds %d, want 8", len(rec))
	}
	if rec[0].Total != 20 || rec[7].Total != 13 {
		t.Fatalf("ring order wrong: newest=%v oldest=%v", rec[0].Total, rec[7].Total)
	}
	if tr.Sampled() != 20 {
		t.Fatalf("sampled=%d want 20", tr.Sampled())
	}
}

func TestSlowlogThreshold(t *testing.T) {
	s := newSlowlog(5*time.Millisecond, 4)
	argv := [][]byte{[]byte("SET"), []byte("k"), []byte("v")}
	s.maybeNote("SET", argv, int64(time.Millisecond), 0, 0, 0, 0) // below
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("below-threshold command was logged")
	}
	s.maybeNote("SET", argv, int64(7*time.Millisecond), int64(time.Millisecond), int64(2*time.Millisecond), int64(4*time.Millisecond), 0)
	if s.Len() != 1 || s.Total() != 1 {
		t.Fatal("above-threshold command was not logged")
	}
	e := s.Recent(1)[0]
	if e.Cmd != "SET" || e.Total != 7*time.Millisecond || e.Queue != time.Millisecond ||
		e.Exec != 2*time.Millisecond || e.Commit != 4*time.Millisecond {
		t.Fatalf("entry wrong: %+v", e)
	}
	if len(e.Args) != 3 || e.Args[0] != "SET" {
		t.Fatalf("args wrong: %v", e.Args)
	}
	// Ring bound: 10 slow entries in a 4-ring keep the newest 4; IDs
	// keep counting.
	for i := 0; i < 10; i++ {
		s.maybeNote("GET", nil, int64(time.Duration(10+i)*time.Millisecond), 0, 0, 0, 0)
	}
	if s.Len() != 4 || s.Total() != 11 {
		t.Fatalf("len=%d total=%d want 4/11", s.Len(), s.Total())
	}
	rec := s.Recent(4)
	if rec[0].Total != 19*time.Millisecond || rec[0].ID != 10 {
		t.Fatalf("newest entry wrong: %+v", rec[0])
	}
	// Threshold is adjustable at runtime.
	s.SetThreshold(time.Second)
	s.maybeNote("GET", nil, int64(500*time.Millisecond), 0, 0, 0, 0)
	if s.Total() != 11 {
		t.Fatal("raised threshold did not filter")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset kept entries")
	}
}

func TestAlarmLogRing(t *testing.T) {
	a := NewAlarmLog(3)
	if a.Total() != 0 || len(a.Recent(5)) != 0 {
		t.Fatal("fresh alarm log not empty")
	}
	for i := 0; i < 5; i++ {
		a.Raise(fmt.Sprintf("alarm-%d", i))
	}
	if a.Total() != 5 {
		t.Fatalf("total=%d want 5", a.Total())
	}
	rec := a.Recent(10)
	if len(rec) != 3 || rec[0].Msg != "alarm-4" || rec[2].Msg != "alarm-2" {
		t.Fatalf("recent wrong: %+v", rec)
	}
	old := a.Oldest(10)
	if old[0].Msg != "alarm-2" || old[2].Msg != "alarm-4" {
		t.Fatalf("oldest wrong: %+v", old)
	}
}

func TestFinishCommandRecordsEverything(t *testing.T) {
	m := New(Options{SlowlogThreshold: 5 * time.Millisecond, TraceSampleRate: 1.0, TraceSeed: 1})
	m.FinishCommand("SET", [][]byte{[]byte("SET"), []byte("k")}, int64(10*time.Millisecond), int64(time.Millisecond), int64(2*time.Millisecond), 0)
	if m.Stage(StageE2E).Count() != 1 {
		t.Fatal("e2e histogram not recorded")
	}
	if m.Command("SET").Count() != 1 {
		t.Fatal("per-command histogram not recorded")
	}
	if m.Slow.Len() != 1 {
		t.Fatal("slowlog missed a 10ms command at 5ms threshold")
	}
	tr := m.Traces.Recent(1)
	if len(tr) != 1 || tr[0].Cmd != "SET" || tr[0].Commit != 7*time.Millisecond {
		t.Fatalf("trace wrong: %+v", tr)
	}
	m.ResetLatency()
	if m.Stage(StageE2E).Count() != 0 || m.Command("SET").Count() != 0 {
		t.Fatal("ResetLatency left samples")
	}
}

// TestPrometheusExposition validates the /metrics output: parseable
// lines, monotonic cumulative buckets, +Inf equal to _count, and
// presence of registered counters and named histograms.
func TestPrometheusExposition(t *testing.T) {
	m := New(Options{})
	m.Stage(StageQueueWait).Observe(50 * time.Microsecond)
	m.Stage(StageAppend).Observe(2 * time.Millisecond)
	m.Command("SET").Observe(time.Millisecond)
	azh := &Histogram{}
	azh.Observe(300 * time.Microsecond)
	m.RegisterHistogram("az_append", `az="az-1"`, azh)
	m.Named("snapshot_build").Observe(80 * time.Millisecond)
	m.RegisterCounter("commands", `node="n1"`, func() int64 { return 42 })
	m.RegisterCounter("appends_failed", "", func() int64 { return 3 })

	rr := httptest.NewRecorder()
	Handler(m).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`memorydb_stage_duration_seconds_bucket{stage="queue_wait",le="+Inf"} 1`,
		`memorydb_command_duration_seconds_count{cmd="SET"} 1`,
		`memorydb_az_append_duration_seconds_count{az="az-1"} 1`,
		"memorydb_snapshot_build_duration_seconds_count 1",
		`memorydb_commands_total{node="n1"} 42`,
		"memorydb_appends_failed_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	validatePromText(t, strings.NewReader(body))
}

// validatePromText checks every line is a comment or `name value` /
// `name{labels} value` with a parseable float, and that within each
// histogram the bucket counts are nondecreasing and +Inf == _count.
func validatePromText(t *testing.T, r io.Reader) {
	t.Helper()
	sc := bufio.NewScanner(r)
	lastBucket := map[string]float64{}
	infCount := map[string]float64{}
	countVal := map[string]float64{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			series := name[:strings.Index(name, "le=")]
			if val < lastBucket[series] {
				t.Fatalf("bucket counts decrease in %q", line)
			}
			lastBucket[series] = val
			if strings.Contains(name, `le="+Inf"`) {
				infCount[series] = val
			}
		case strings.Contains(name, "_count"):
			// Normalize `family_count{labels}` / `family_count` to the
			// same series key bucket lines produce (family_bucket{labels,).
			var base string
			if i := strings.Index(name, "_count{"); i >= 0 {
				base = name[:i] + "_bucket{" + strings.TrimSuffix(name[i+len("_count{"):], "}") + ","
			} else {
				base = strings.TrimSuffix(name, "_count") + "_bucket{"
			}
			countVal[base] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for base, c := range countVal {
		if inf, ok := infCount[base]; ok && inf != c {
			t.Fatalf("series %q: le=+Inf %v != _count %v", base, inf, c)
		}
	}
	if len(infCount) == 0 {
		t.Fatal("no histogram buckets found")
	}
}
