package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// promBounds is the coarse exposition ladder in nanoseconds. The fine
// 592-bucket ladder stays internal (percentiles are computed from it);
// scrape output re-buckets onto this Redis-latency-shaped ladder so
// dashboards get ~20 series per histogram instead of ~600.
var promBounds = []int64{
	int64(10 * time.Microsecond),
	int64(25 * time.Microsecond),
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writePromHistogram emits one histogram series in Prometheus text
// exposition format (seconds, cumulative le buckets, _sum, _count).
func writePromHistogram(w io.Writer, name, label string, h *Histogram) {
	cum := h.CumulativeAtNanos(promBounds)
	sep := ""
	if label != "" {
		sep = ","
	}
	for i, b := range promBounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, label, sep, promFloat(float64(b)/1e9), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, label, sep, h.Count())
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, label, promFloat(float64(h.Sum())/1e9))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(float64(h.Sum())/1e9))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

// WritePrometheus writes the full registry — stage histograms,
// per-command histograms, registered named histograms, and counter
// callbacks — as Prometheus text exposition (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) {
	if m == nil {
		return
	}
	fmt.Fprintf(w, "# HELP memorydb_stage_duration_seconds Write-path stage latency.\n")
	fmt.Fprintf(w, "# TYPE memorydb_stage_duration_seconds histogram\n")
	for s := Stage(0); s < NumStages; s++ {
		writePromHistogram(w, "memorydb_stage_duration_seconds",
			fmt.Sprintf("stage=%q", s.String()), &m.stages[s])
	}
	if n := m.NumShardStages(); n > 0 {
		fmt.Fprintf(w, "# HELP memorydb_shard_stage_duration_seconds Per-execution-shard stage latency.\n")
		fmt.Fprintf(w, "# TYPE memorydb_shard_stage_duration_seconds histogram\n")
		for i := 0; i < n; i++ {
			ss := m.ShardStage(i)
			writePromHistogram(w, "memorydb_shard_stage_duration_seconds",
				fmt.Sprintf("shard=\"%d\",stage=\"queue_wait\"", i), &ss.QueueWait)
			writePromHistogram(w, "memorydb_shard_stage_duration_seconds",
				fmt.Sprintf("shard=\"%d\",stage=\"execute\"", i), &ss.Execute)
		}
	}
	fmt.Fprintf(w, "# HELP memorydb_command_duration_seconds End-to-end command latency by command.\n")
	fmt.Fprintf(w, "# TYPE memorydb_command_duration_seconds histogram\n")
	m.EachCommand(func(name string, h *Histogram) {
		writePromHistogram(w, "memorydb_command_duration_seconds",
			fmt.Sprintf("cmd=%q", name), h)
	})
	// Named histograms, grouped by metric name so TYPE headers appear
	// once per family.
	named := m.namedSnapshot()
	byName := map[string][]NamedHistogram{}
	names := []string{}
	for _, nh := range named {
		if _, ok := byName[nh.Name]; !ok {
			names = append(names, nh.Name)
		}
		byName[nh.Name] = append(byName[nh.Name], nh)
	}
	sort.Strings(names)
	for _, n := range names {
		full := "memorydb_" + n + "_duration_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", full)
		for _, nh := range byName[n] {
			writePromHistogram(w, full, nh.Label, nh.H)
		}
	}
	// Counters, grouped the same way.
	ctrs := m.counterSnapshot()
	byCtr := map[string][]Counter{}
	cnames := []string{}
	for _, c := range ctrs {
		if _, ok := byCtr[c.Name]; !ok {
			cnames = append(cnames, c.Name)
		}
		byCtr[c.Name] = append(byCtr[c.Name], c)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		// Registered names that already carry the conventional counter
		// suffix (e.g. snapshot_deltas_emitted_total, which INFO reports
		// verbatim) must not have it doubled on exposition.
		full := "memorydb_" + n
		if !strings.HasSuffix(n, "_total") {
			full += "_total"
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", full)
		for _, c := range byCtr[n] {
			if c.Label != "" {
				fmt.Fprintf(w, "%s{%s} %d\n", full, c.Label, c.Fn())
			} else {
				fmt.Fprintf(w, "%s %d\n", full, c.Fn())
			}
		}
	}
	// Gauges, grouped by name like counters but with no suffix.
	gs := m.gaugeSnapshot()
	byGauge := map[string][]Gauge{}
	gnames := []string{}
	for _, g := range gs {
		if _, ok := byGauge[g.Name]; !ok {
			gnames = append(gnames, g.Name)
		}
		byGauge[g.Name] = append(byGauge[g.Name], g)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		full := "memorydb_" + n
		fmt.Fprintf(w, "# TYPE %s gauge\n", full)
		for _, g := range byGauge[n] {
			if g.Label != "" {
				fmt.Fprintf(w, "%s{%s} %d\n", full, g.Label, g.Fn())
			} else {
				fmt.Fprintf(w, "%s %d\n", full, g.Fn())
			}
		}
	}
	// Slowlog depth as a gauge-ish counter pair for alerting.
	fmt.Fprintf(w, "# TYPE memorydb_slowlog_entries_total counter\n")
	fmt.Fprintf(w, "memorydb_slowlog_entries_total %d\n", m.Slow.Total())
	fmt.Fprintf(w, "# TYPE memorydb_traces_sampled_total counter\n")
	fmt.Fprintf(w, "memorydb_traces_sampled_total %d\n", m.Traces.Sampled())
	writeRuntimeMetrics(w)
}

// Handler serves the registry at any path (mount it at /metrics) in
// Prometheus text exposition format. stdlib net/http only.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
}
