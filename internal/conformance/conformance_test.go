package conformance

import (
	"fmt"
	"testing"

	"memorydb/internal/engine"
)

// TestDifferentialReplication is the §7.2.2.2 workhorse: thousands of
// biased commands over a tiny key pool (maximal type collisions), with
// the replica applying the effect stream; the final keyspaces must be
// byte-identical and error paths must never leak effects.
func TestDifferentialReplication(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := NewGenerator(GenConfig{Seed: seed})
			p, r := NewEnginePair()
			divergence, okCount, errCount := RunDifferential(g, p, r, 3000)
			if divergence != "" {
				t.Fatal(divergence)
			}
			if okCount < 500 {
				t.Fatalf("only %d/%d commands succeeded — generator not exercising the API", okCount, okCount+errCount)
			}
			if errCount == 0 {
				t.Fatal("no error paths exercised — argument biasing broken")
			}
		})
	}
}

// TestDifferentialPureFuzz runs spec-derived fuzzing only (no curated
// templates): almost everything errors, and none of it may diverge.
func TestDifferentialPureFuzz(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 99, TemplateBias: -1})
	p, r := NewEnginePair()
	if divergence, _, _ := RunDifferential(g, p, r, 3000); divergence != "" {
		t.Fatal(divergence)
	}
}

// TestTwoReplicasConverge: the same effect stream applied to two
// replicas yields identical state (replica determinism).
func TestTwoReplicasConverge(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 7})
	p, r1 := NewEnginePair()
	_, r2 := NewEnginePair()
	for i := 0; i < 2000; i++ {
		args := g.Next()
		argv := make([][]byte, len(args))
		for j, a := range args {
			argv[j] = []byte(a)
		}
		res := p.Exec(argv)
		if res.Reply.IsError() || !res.Mutated() {
			continue
		}
		record := engine.EncodeRecord(res.Effects)
		if err := r1.Apply(record); err != nil {
			t.Fatalf("r1: %v", err)
		}
		if err := r2.Apply(record); err != nil {
			t.Fatalf("r2: %v", err)
		}
	}
	if d1, d2 := StateDigest(r1), StateDigest(r2); d1 != d2 {
		t.Fatalf("replicas diverged from the same stream:\n%s\nvs\n%s", d1, d2)
	}
}

// TestDumpRebuildMatchesDigest: DumpCommands (the slot-migration
// serialization) rebuilds a byte-identical keyspace.
func TestDumpRebuildMatchesDigest(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 13})
	p, _ := NewEnginePair()
	for i := 0; i < 1500; i++ {
		args := g.Next()
		argv := make([][]byte, len(args))
		for j, a := range args {
			argv[j] = []byte(a)
		}
		p.Exec(argv)
	}
	_, rebuilt := NewEnginePair()
	for _, key := range p.DB().Keys("*", p.Now()) {
		for _, argv := range p.DumpCommands(key) {
			if res := rebuilt.Exec(argv); res.Reply.IsError() {
				t.Fatalf("dump command %q failed: %v", argv, res.Reply)
			}
		}
	}
	if a, b := StateDigest(p), StateDigest(rebuilt); a != b {
		t.Fatalf("dump rebuild diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestGeneratorCoversCommandTable: over enough rounds, the generator
// must touch a large majority of registered commands.
func TestGeneratorCoversCommandTable(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 21, TemplateBias: 0.5})
	seen := map[string]bool{}
	for i := 0; i < 20000; i++ {
		args := g.Next()
		seen[normalize(args[0])] = true
	}
	total := len(engine.CommandNames())
	if len(seen) < total*8/10 {
		t.Fatalf("generator covered %d/%d commands", len(seen), total)
	}
}

func normalize(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		out[i] = c
	}
	return string(out)
}
