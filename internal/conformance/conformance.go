// Package conformance implements the consistency testing framework of
// paper §7.2.2.2: commands are generated from the engine's own command
// table (so coverage tracks the API as it grows), with *argument
// biasing* toward small key pools and edge-case values, and the
// replication contract is checked differentially — a replica that
// applies the primary's effect stream must reach an identical keyspace,
// no matter how non-deterministic the original commands were.
package conformance

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/store"
)

// GenConfig tunes the command generator.
type GenConfig struct {
	Seed int64
	// Keys is the key-pool size; small pools maximize type collisions
	// (the edge cases WRONGTYPE handling must survive).
	Keys int
	// TemplateBias is the probability of drawing from the curated valid
	// templates instead of fuzzing from the command spec.
	TemplateBias float64
}

// Generator produces biased command invocations covering the whole
// registered command table.
type Generator struct {
	cfg   GenConfig
	rng   *rand.Rand
	names []string
}

// NewGenerator builds a generator over the engine's command table.
func NewGenerator(cfg GenConfig) *Generator {
	if cfg.Keys <= 0 {
		cfg.Keys = 6
	}
	if cfg.TemplateBias == 0 {
		cfg.TemplateBias = 0.6
	}
	return &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		names: engine.CommandNames(),
	}
}

// Curated templates: $k expands to a pooled key, $v to a biased value,
// $i to a small integer, $f to a float, $m to a member name.
var templates = [][]string{
	{"SET", "$k", "$v"},
	{"SET", "$k", "$v", "EX", "$i"},
	{"SET", "$k", "$v", "NX"},
	{"SET", "$k", "$v", "XX"},
	{"GET", "$k"},
	{"GETSET", "$k", "$v"},
	{"GETDEL", "$k"},
	{"APPEND", "$k", "$v"},
	{"INCR", "$k"},
	{"INCRBY", "$k", "$i"},
	{"INCRBYFLOAT", "$k", "$f"},
	{"SETRANGE", "$k", "$i", "$v"},
	{"GETRANGE", "$k", "0", "-1"},
	{"STRLEN", "$k"},
	{"DEL", "$k"},
	{"EXISTS", "$k"},
	{"EXPIRE", "$k", "$i"},
	{"PEXPIREAT", "$k", "99999999999999"},
	{"PERSIST", "$k"},
	{"TTL", "$k"},
	{"TYPE", "$k"},
	{"RENAME", "$k", "$k"},
	{"HSET", "$k", "$m", "$v"},
	{"HSET", "$k", "$m", "$v", "$m", "$v"},
	{"HGET", "$k", "$m"},
	{"HDEL", "$k", "$m"},
	{"HGETALL", "$k"},
	{"HINCRBY", "$k", "$m", "$i"},
	{"HRANDFIELD", "$k", "$i"},
	{"LPUSH", "$k", "$v", "$v"},
	{"RPUSH", "$k", "$v"},
	{"LPOP", "$k"},
	{"RPOP", "$k", "$i"},
	{"LRANGE", "$k", "0", "-1"},
	{"LREM", "$k", "0", "$v"},
	{"LTRIM", "$k", "0", "$i"},
	{"LSET", "$k", "0", "$v"},
	{"LINSERT", "$k", "BEFORE", "$v", "$v"},
	{"LPOS", "$k", "$v"},
	{"RPOPLPUSH", "$k", "$k"},
	{"SADD", "$k", "$m", "$m"},
	{"SREM", "$k", "$m"},
	{"SPOP", "$k"},
	{"SPOP", "$k", "$i"},
	{"SRANDMEMBER", "$k", "$i"},
	{"SMEMBERS", "$k"},
	{"SMOVE", "$k", "$k", "$m"},
	{"SINTERSTORE", "$k", "$k", "$k"},
	{"SUNIONSTORE", "$k", "$k", "$k"},
	{"SDIFFSTORE", "$k", "$k", "$k"},
	{"ZADD", "$k", "$f", "$m"},
	{"ZADD", "$k", "GT", "$f", "$m"},
	{"ZINCRBY", "$k", "$f", "$m"},
	{"ZREM", "$k", "$m"},
	{"ZPOPMIN", "$k"},
	{"ZPOPMAX", "$k", "$i"},
	{"ZRANGEBYSCORE", "$k", "-inf", "+inf"},
	{"ZREMRANGEBYRANK", "$k", "0", "$i"},
	{"ZREMRANGEBYSCORE", "$k", "0", "$f"},
	{"XADD", "$k", "*", "$m", "$v"},
	{"XTRIM", "$k", "MAXLEN", "$i"},
	{"XRANGE", "$k", "-", "+"},
	{"PFADD", "$k", "$v", "$v"},
	{"PFCOUNT", "$k"},
	{"PFMERGE", "$k", "$k"},
	{"SETBIT", "$k", "$i", "1"},
	{"GETBIT", "$k", "$i"},
	{"GETEX", "$k", "EX", "$i"},
	{"MSET", "$k", "$v", "$k", "$v"},
	{"MSETNX", "$k", "$v"},
	{"SETNX", "$k", "$v"},
	{"SETEX", "$k", "$i", "$v"},
}

// biased scalar pools (§7.2.2.2 argument biasing).
var (
	biasedValues = []string{"", "0", "1", "-1", "x", "value", "9223372036854775807", "with spaces", "\x00bin\xff"}
	biasedInts   = []string{"0", "1", "2", "5", "-1", "100"}
	biasedFloats = []string{"0", "1.5", "-2.25", "1e3", "3.14159"}
	biasedMember = []string{"m1", "m2", "m3", "field", "a"}
)

// Next returns one command invocation.
func (g *Generator) Next() []string {
	if g.rng.Float64() < g.cfg.TemplateBias {
		t := templates[g.rng.Intn(len(templates))]
		out := make([]string, len(t))
		for i, tok := range t {
			out[i] = g.expand(tok)
		}
		return out
	}
	return g.fuzzFromSpec()
}

func (g *Generator) expand(tok string) string {
	switch tok {
	case "$k":
		return fmt.Sprintf("key%d", g.rng.Intn(g.cfg.Keys))
	case "$v":
		if g.rng.Intn(3) == 0 {
			return biasedValues[g.rng.Intn(len(biasedValues))]
		}
		return fmt.Sprintf("v%d", g.rng.Intn(1000))
	case "$i":
		return biasedInts[g.rng.Intn(len(biasedInts))]
	case "$f":
		return biasedFloats[g.rng.Intn(len(biasedFloats))]
	case "$m":
		return biasedMember[g.rng.Intn(len(biasedMember))]
	}
	return tok
}

// fuzzFromSpec builds an invocation straight from the command table: key
// positions get pooled keys, everything else gets biased scalars. Most
// results are semantic errors — which is the point: error paths must be
// deterministic and effect-free too.
func (g *Generator) fuzzFromSpec() []string {
	name := g.names[g.rng.Intn(len(g.names))]
	cmd, _ := engine.LookupCommand(name)
	argc := cmd.Arity
	if argc < 0 {
		argc = -argc
	}
	argc += g.rng.Intn(3)
	if argc < 1 {
		argc = 1
	}
	out := make([]string, argc)
	out[0] = strings.ToLower(name)
	for i := 1; i < argc; i++ {
		isKey := cmd.FirstKey > 0 && i >= cmd.FirstKey &&
			(cmd.LastKey < 0 || i <= cmd.LastKey) &&
			(cmd.KeyStep <= 1 || (i-cmd.FirstKey)%cmd.KeyStep == 0)
		if isKey {
			out[i] = fmt.Sprintf("key%d", g.rng.Intn(g.cfg.Keys))
			continue
		}
		pools := [][]string{biasedValues, biasedInts, biasedFloats, biasedMember}
		pool := pools[g.rng.Intn(len(pools))]
		out[i] = pool[g.rng.Intn(len(pool))]
	}
	return out
}

// NewEnginePair returns two engines on the same frozen simulated clock,
// so time-dependent state (TTLs, stream auto-IDs) is comparable.
func NewEnginePair() (primary, replica *engine.Engine) {
	start := time.Unix(1700000000, 0)
	return engine.New(clock.NewSim(start)), engine.New(clock.NewSim(start))
}

// StateDigest canonically serializes an engine's full keyspace: keys
// sorted, container contents in deterministic order, TTLs included. Two
// engines with equal digests are observably identical.
func StateDigest(e *engine.Engine) string {
	db := e.DB()
	var keys []string
	db.ForEach(time.Time{}, func(k string, _ *store.Object, _ int64) bool {
		keys = append(keys, k)
		return true
	})
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		obj, _ := db.Peek(k)
		fmt.Fprintf(&b, "%q %s ", k, obj.Kind)
		switch obj.Kind {
		case store.KindString:
			fmt.Fprintf(&b, "%q", obj.Str)
		case store.KindHash:
			fields := make([]string, 0, len(obj.Hash))
			for f := range obj.Hash {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				fmt.Fprintf(&b, "%q=%q ", f, obj.Hash[f])
			}
		case store.KindList:
			obj.List.Walk(func(v []byte) bool {
				fmt.Fprintf(&b, "%q ", v)
				return true
			})
		case store.KindSet:
			members := make([]string, 0, len(obj.Set))
			for m := range obj.Set {
				members = append(members, m)
			}
			sort.Strings(members)
			for _, m := range members {
				fmt.Fprintf(&b, "%q ", m)
			}
		case store.KindZSet:
			for _, en := range obj.ZSet.Range(0, obj.ZSet.Len()-1) {
				fmt.Fprintf(&b, "%q=%v ", en.Member, en.Score)
			}
		case store.KindStream:
			obj.Stream.Walk(func(en store.StreamEntry) bool {
				fmt.Fprintf(&b, "%s[", en.ID)
				for _, f := range en.Fields {
					fmt.Fprintf(&b, "%q ", f)
				}
				b.WriteString("] ")
				return true
			})
		}
		if exp, ok := db.ExpireAt(k); ok {
			fmt.Fprintf(&b, "ttl=%d", exp)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunDifferential executes rounds generated commands on primary,
// applies each resulting effect record to replica, and reports the
// first divergence (empty string = none). It also returns how many
// commands succeeded vs errored, so callers can assert real coverage.
func RunDifferential(g *Generator, primary, replica *engine.Engine, rounds int) (divergence string, okCount, errCount int) {
	for i := 0; i < rounds; i++ {
		args := g.Next()
		argv := make([][]byte, len(args))
		for j, a := range args {
			argv[j] = []byte(a)
		}
		res := primary.Exec(argv)
		if res.Reply.IsError() {
			errCount++
			if res.Mutated() {
				return fmt.Sprintf("command %q errored (%s) but produced effects", args, res.Reply.Text()), okCount, errCount
			}
			continue
		}
		okCount++
		if res.Mutated() {
			if err := replica.Apply(engine.EncodeRecord(res.Effects)); err != nil {
				return fmt.Sprintf("replica rejected effects of %q: %v", args, err), okCount, errCount
			}
		}
	}
	pd, rd := StateDigest(primary), StateDigest(replica)
	if pd != rd {
		return fmt.Sprintf("state divergence after %d rounds:\nprimary:\n%s\nreplica:\n%s", rounds, pd, rd), okCount, errCount
	}
	return "", okCount, errCount
}
