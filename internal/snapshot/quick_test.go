package snapshot

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// Property: any keyspace of string values round-trips through the
// snapshot format byte-for-byte, with metadata intact.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(pairs map[string]string, seq uint64, sum uint64) bool {
		db := store.NewDB()
		for k, v := range pairs {
			if k == "" {
				continue
			}
			db.Set(k, &store.Object{Kind: store.KindString, Str: []byte(v)})
		}
		meta := Meta{ShardID: "q", EngineVersion: 2, LogPos: txlog.EntryID{Seq: seq}, LogChecksum: sum}
		var buf bytes.Buffer
		if err := Write(&buf, db, meta); err != nil {
			return false
		}
		got, gotMeta, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil || gotMeta != meta || got.Len() != db.Len() {
			return false
		}
		for k, v := range pairs {
			if k == "" {
				continue
			}
			obj, ok := got.Peek(k)
			if !ok || string(obj.Str) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-byte corruption anywhere in the body region is always
// detected.
func TestQuickCorruptionAlwaysDetected(t *testing.T) {
	db := store.NewDB()
	for i := 0; i < 20; i++ {
		db.Set(fmt.Sprintf("k%02d", i), &store.Object{Kind: store.KindString, Str: []byte("payload-payload")})
	}
	var buf bytes.Buffer
	if err := Write(&buf, db, Meta{ShardID: "q"}); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	// The header region (magic + meta) is guarded by structure checks;
	// the body by CRC64. Flip one byte at a sample of positions.
	headerLen := len(magicHeaderV2) + 4 + len("q") + 4 + 8 + 8 + 1 + 8 + 4 + 8
	for pos := headerLen; pos < len(pristine)-10; pos += 7 {
		corrupted := append([]byte(nil), pristine...)
		corrupted[pos] ^= 0x01
		if _, _, err := Read(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("corruption at byte %d undetected", pos)
		}
	}
}
