// Package snapshot implements MemoryDB's point-in-time snapshots: a
// compact, checksummed serialization of the keyspace stamped with the
// transaction log position (and running log checksum) it covers. The
// package also provides the off-box snapshotter (§4.2.2), the restore
// rehearsal verifier (§7.2.1), and the freshness-based scheduler (§4.2.3).
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"time"

	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// Magic values framing a snapshot file. V1 framed self-contained full
// snapshots only; V2 adds the chain fields (kind, base position, chain
// depth) the forkless builder needs for incremental deltas. The decoder
// accepts both, so pre-chain snapshots remain restorable.
var (
	magicHeaderV1 = []byte("MDBSNAP1")
	magicHeaderV2 = []byte("MDBSNAP2")
	magicFooter   = []byte("MDBSNAPE")
)

// Kind distinguishes self-contained full snapshots from incremental
// deltas that only make sense applied on top of their parent.
type Kind uint8

const (
	// KindFull is a complete keyspace image; restore starts here.
	KindFull Kind = 0
	// KindDelta holds only the objects changed (and tombstones for keys
	// deleted) since the parent snapshot at Meta.BasePos.
	KindDelta Kind = 1
)

// String names the kind for alarms and INFO.
func (k Kind) String() string {
	if k == KindDelta {
		return "delta"
	}
	return "full"
}

// Meta is the snapshot's provenance: which shard, which engine version
// produced it, and exactly which transaction log prefix it captures.
type Meta struct {
	ShardID       string
	EngineVersion uint32
	// LogPos is the positional identifier of the last log entry included.
	LogPos txlog.EntryID
	// LogChecksum is the log's running checksum as of LogPos; restore
	// rehearsal chains from this value (§7.2.1).
	LogChecksum uint64
	// Kind marks this file as a full image or an incremental delta.
	Kind Kind
	// BasePos is the parent snapshot's LogPos for a delta (the chain
	// link); ZeroID for a full snapshot.
	BasePos txlog.EntryID
	// ChainDepth is the number of deltas between this file and the
	// chain's full base (0 for a full snapshot).
	ChainDepth uint32
}

// Errors returned by the decoder.
var (
	ErrBadSnapshot = errors.New("snapshot: malformed snapshot")
	ErrChecksum    = errors.New("snapshot: data checksum mismatch")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// timeZero is the "no expiry filtering" instant passed to keyspace
// iteration: snapshots capture every stored key verbatim — expiry is
// enforced by the engine and replicated as explicit deletes, so the
// snapshot must not second-guess it with its own clock.
func timeZero() time.Time { return time.Time{} }

// writeFile frames meta+body with the V2 header and whole-file CRC64.
// Everything before the stored sum — header, meta, body length, and body
// — is covered, so a flipped byte anywhere in the file (not just the
// body; a corrupted LogPos, BasePos or LogChecksum would silently poison
// the restore rehearsal or snap the chain) is detected before a restore
// is attempted.
func writeFile(w io.Writer, meta Meta, body []byte) error {
	bw := bufio.NewWriterSize(w, 256<<10)
	h := crc64.New(crcTable)
	mw := io.MultiWriter(bw, h)
	if _, err := mw.Write(magicHeaderV2); err != nil {
		return err
	}
	if err := writeString(mw, meta.ShardID); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, meta.EngineVersion); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, meta.LogPos.Seq); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, meta.LogChecksum); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, uint8(meta.Kind)); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, meta.BasePos.Seq); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, meta.ChainDepth); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.BigEndian, uint64(len(body))); err != nil {
		return err
	}
	if _, err := mw.Write(body); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, h.Sum64()); err != nil {
		return err
	}
	if _, err := bw.Write(magicFooter); err != nil {
		return err
	}
	return bw.Flush()
}

// Write serializes db and meta to w as a full snapshot body.
func Write(w io.Writer, db *store.DB, meta Meta) error {
	var body bytes.Buffer
	var encodeErr error
	// Snapshot writers run on quiescent copies (off-box replicas, the
	// builder's private keyspace), so a plain iteration is a consistent
	// cut.
	db.ForEach(timeZero(), func(key string, obj *store.Object, expireAt int64) bool {
		if err := encodeObject(&body, key, obj, expireAt); err != nil {
			encodeErr = err
			return false
		}
		return true
	})
	if encodeErr != nil {
		return encodeErr
	}
	return writeFile(w, meta, body.Bytes())
}

// WriteDelta serializes an incremental snapshot: for each key in keys,
// the current object in db (replacing whatever the parent chain held) or
// a tombstone if the key no longer exists. meta must carry Kind=KindDelta
// and the parent link in BasePos.
func WriteDelta(w io.Writer, db *store.DB, keys []string, meta Meta) error {
	var body bytes.Buffer
	for _, key := range keys {
		obj, ok := db.Peek(key)
		if !ok {
			if err := encodeTombstone(&body, key); err != nil {
				return err
			}
			continue
		}
		expireAt, _ := db.ExpireAt(key)
		if err := encodeObject(&body, key, obj, expireAt); err != nil {
			return err
		}
	}
	return writeFile(w, meta, body.Bytes())
}

// Read parses a snapshot, returning a freshly built keyspace and its
// meta. For a delta file the returned DB holds only the changed objects
// (tombstones deleting from an empty keyspace are no-ops); chain restores
// use ReadInto to layer deltas onto their base.
func Read(r io.Reader) (*store.DB, Meta, error) {
	db := store.NewDB()
	meta, err := ReadInto(r, db)
	if err != nil {
		return nil, meta, err
	}
	return db, meta, nil
}

// ReadInto parses a snapshot and applies its records onto db: objects
// replace existing keys, tombstones delete them — exactly the layering a
// full+delta chain restore needs. The whole-file checksum (header + meta
// + body) is verified before any record is applied, so a torn or
// bit-rotted file never half-applies.
func ReadInto(r io.Reader, db *store.DB) (Meta, error) {
	meta, body, err := readFile(r)
	if err != nil {
		return meta, err
	}
	return meta, applyBody(body, db)
}

// applyBody decodes a verified body's records into db.
func applyBody(body []byte, db *store.DB) error {
	rd := bytes.NewReader(body)
	for rd.Len() > 0 {
		if err := decodeObject(rd, db); err != nil {
			return err
		}
	}
	return nil
}

// readFile verifies a snapshot file's framing and whole-file checksum and
// returns its meta plus the still-encoded body. Chain resolution uses
// this to validate and order every link before applying any of them.
func readFile(r io.Reader) (Meta, []byte, error) {
	br := bufio.NewReaderSize(r, 256<<10)
	h := crc64.New(crcTable)
	tr := io.TeeReader(br, h)
	var meta Meta
	hdr := make([]byte, len(magicHeaderV2))
	if _, err := io.ReadFull(tr, hdr); err != nil {
		return meta, nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	v2 := bytes.Equal(hdr, magicHeaderV2)
	if !v2 && !bytes.Equal(hdr, magicHeaderV1) {
		return meta, nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	shardID, err := readString(tr)
	if err != nil {
		return meta, nil, err
	}
	meta.ShardID = shardID
	if err := binary.Read(tr, binary.BigEndian, &meta.EngineVersion); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := binary.Read(tr, binary.BigEndian, &meta.LogPos.Seq); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := binary.Read(tr, binary.BigEndian, &meta.LogChecksum); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if v2 {
		var kind uint8
		if err := binary.Read(tr, binary.BigEndian, &kind); err != nil {
			return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if kind > uint8(KindDelta) {
			return meta, nil, fmt.Errorf("%w: unknown snapshot kind %d", ErrBadSnapshot, kind)
		}
		meta.Kind = Kind(kind)
		if err := binary.Read(tr, binary.BigEndian, &meta.BasePos.Seq); err != nil {
			return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if err := binary.Read(tr, binary.BigEndian, &meta.ChainDepth); err != nil {
			return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}
	var bodyLen uint64
	if err := binary.Read(tr, binary.BigEndian, &bodyLen); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if bodyLen > 16<<30 {
		return meta, nil, fmt.Errorf("%w: implausible body length %d", ErrBadSnapshot, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(tr, body); err != nil {
		return meta, nil, fmt.Errorf("%w: short body: %v", ErrBadSnapshot, err)
	}
	var storedSum uint64
	if err := binary.Read(br, binary.BigEndian, &storedSum); err != nil {
		return meta, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	ftr := make([]byte, len(magicFooter))
	if _, err := io.ReadFull(br, ftr); err != nil || !bytes.Equal(ftr, magicFooter) {
		return meta, nil, fmt.Errorf("%w: bad footer", ErrBadSnapshot)
	}
	if h.Sum64() != storedSum {
		return meta, nil, ErrChecksum
	}
	return meta, body, nil
}

// object kinds on the wire (decoupled from store.Kind ordering).
const (
	wireString byte = 1
	wireHash   byte = 2
	wireList   byte = 3
	wireSet    byte = 4
	wireZSet   byte = 5
	wireStream byte = 6
	// wireTombstone marks a key deleted since the parent snapshot; it
	// carries no payload and only appears in delta bodies.
	wireTombstone byte = 7
)

// encodeTombstone writes a deletion record for key (delta bodies only).
func encodeTombstone(w *bytes.Buffer, key string) error {
	if err := writeString(w, key); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, int64(0)); err != nil {
		return err
	}
	w.WriteByte(wireTombstone)
	return nil
}

func encodeObject(w *bytes.Buffer, key string, obj *store.Object, expireAt int64) error {
	if err := writeString(w, key); err != nil {
		return err
	}
	if err := binary.Write(w, binary.BigEndian, expireAt); err != nil {
		return err
	}
	switch obj.Kind {
	case store.KindString:
		w.WriteByte(wireString)
		return writeBytes(w, obj.Str)
	case store.KindHash:
		w.WriteByte(wireHash)
		if err := writeCount(w, len(obj.Hash)); err != nil {
			return err
		}
		for f, v := range obj.Hash {
			if err := writeString(w, f); err != nil {
				return err
			}
			if err := writeBytes(w, v); err != nil {
				return err
			}
		}
		return nil
	case store.KindList:
		w.WriteByte(wireList)
		if err := writeCount(w, obj.List.Len()); err != nil {
			return err
		}
		var walkErr error
		obj.List.Walk(func(v []byte) bool {
			walkErr = writeBytes(w, v)
			return walkErr == nil
		})
		return walkErr
	case store.KindSet:
		w.WriteByte(wireSet)
		if err := writeCount(w, len(obj.Set)); err != nil {
			return err
		}
		for m := range obj.Set {
			if err := writeString(w, m); err != nil {
				return err
			}
		}
		return nil
	case store.KindZSet:
		w.WriteByte(wireZSet)
		if err := writeCount(w, obj.ZSet.Len()); err != nil {
			return err
		}
		for _, en := range obj.ZSet.Range(0, obj.ZSet.Len()-1) {
			if err := writeString(w, en.Member); err != nil {
				return err
			}
			if err := binary.Write(w, binary.BigEndian, math.Float64bits(en.Score)); err != nil {
				return err
			}
		}
		return nil
	case store.KindStream:
		w.WriteByte(wireStream)
		if err := writeCount(w, obj.Stream.Len()); err != nil {
			return err
		}
		var walkErr error
		obj.Stream.Walk(func(en store.StreamEntry) bool {
			if err := binary.Write(w, binary.BigEndian, en.ID.Ms); err != nil {
				walkErr = err
				return false
			}
			if err := binary.Write(w, binary.BigEndian, en.ID.Seq); err != nil {
				walkErr = err
				return false
			}
			if err := writeCount(w, len(en.Fields)); err != nil {
				walkErr = err
				return false
			}
			for _, f := range en.Fields {
				if err := writeBytes(w, f); err != nil {
					walkErr = err
					return false
				}
			}
			return true
		})
		return walkErr
	}
	return fmt.Errorf("snapshot: cannot encode kind %v", obj.Kind)
}

func decodeObject(r *bytes.Reader, db *store.DB) error {
	key, err := readStringR(r)
	if err != nil {
		return err
	}
	var expireAt int64
	if err := binary.Read(r, binary.BigEndian, &expireAt); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if kind == wireTombstone {
		db.Delete(key, timeZero())
		return nil
	}
	obj := &store.Object{}
	switch kind {
	case wireString:
		obj.Kind = store.KindString
		obj.Str, err = readBytesR(r)
		if err != nil {
			return err
		}
	case wireHash:
		obj.Kind = store.KindHash
		n, err := readCount(r)
		if err != nil {
			return err
		}
		obj.Hash = make(map[string][]byte, n)
		for i := 0; i < n; i++ {
			f, err := readStringR(r)
			if err != nil {
				return err
			}
			v, err := readBytesR(r)
			if err != nil {
				return err
			}
			obj.Hash[f] = v
		}
	case wireList:
		obj.Kind = store.KindList
		n, err := readCount(r)
		if err != nil {
			return err
		}
		obj.List = store.NewList()
		for i := 0; i < n; i++ {
			v, err := readBytesR(r)
			if err != nil {
				return err
			}
			obj.List.PushBack(v)
		}
	case wireSet:
		obj.Kind = store.KindSet
		n, err := readCount(r)
		if err != nil {
			return err
		}
		obj.Set = make(map[string]struct{}, n)
		for i := 0; i < n; i++ {
			m, err := readStringR(r)
			if err != nil {
				return err
			}
			obj.Set[m] = struct{}{}
		}
	case wireZSet:
		obj.Kind = store.KindZSet
		n, err := readCount(r)
		if err != nil {
			return err
		}
		obj.ZSet = store.NewZSet()
		for i := 0; i < n; i++ {
			m, err := readStringR(r)
			if err != nil {
				return err
			}
			var bits uint64
			if err := binary.Read(r, binary.BigEndian, &bits); err != nil {
				return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			obj.ZSet.Add(m, math.Float64frombits(bits))
		}
	case wireStream:
		obj.Kind = store.KindStream
		n, err := readCount(r)
		if err != nil {
			return err
		}
		obj.Stream = store.NewStream()
		for i := 0; i < n; i++ {
			var id store.StreamID
			if err := binary.Read(r, binary.BigEndian, &id.Ms); err != nil {
				return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			if err := binary.Read(r, binary.BigEndian, &id.Seq); err != nil {
				return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
			}
			nf, err := readCount(r)
			if err != nil {
				return err
			}
			fields := make([][]byte, nf)
			for j := 0; j < nf; j++ {
				fields[j], err = readBytesR(r)
				if err != nil {
					return err
				}
			}
			if _, err := obj.Stream.Add(id, false, 0, fields); err != nil {
				return fmt.Errorf("%w: out-of-order stream entry: %v", ErrBadSnapshot, err)
			}
		}
	default:
		return fmt.Errorf("%w: unknown object kind %d", ErrBadSnapshot, kind)
	}
	db.Set(key, obj)
	if expireAt > 0 {
		db.Expire(key, expireAt, timeZero())
	}
	return nil
}

func writeCount(w *bytes.Buffer, n int) error {
	return binary.Write(w, binary.BigEndian, uint32(n))
}

func readCount(r *bytes.Reader) (int, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if n > 1<<28 {
		return 0, fmt.Errorf("%w: implausible count %d", ErrBadSnapshot, n)
	}
	return int(n), nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeBytes(w *bytes.Buffer, b []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if n > 1<<28 {
		return "", fmt.Errorf("%w: implausible string length %d", ErrBadSnapshot, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return string(b), nil
}

func readStringR(r *bytes.Reader) (string, error) { return readString(r) }

func readBytesR(r *bytes.Reader) ([]byte, error) {
	s, err := readString(r)
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}
