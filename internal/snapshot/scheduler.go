package snapshot

import (
	"context"
	"fmt"
	"sync"

	"memorydb/internal/clock"
	"memorydb/internal/obs"
	"memorydb/internal/txlog"
	"time"
)

// Policy decides when a shard's latest snapshot has become too stale
// (paper §4.2.3). Freshness is the snapshot's distance from the log tail;
// it deteriorates faster under high write throughput, and larger data
// sets tolerate less replay before restores stop being snapshot-dominant.
type Policy struct {
	// MaxLogDistance triggers a snapshot once the tail has moved this
	// many entries past the latest snapshot.
	MaxLogDistance uint64
	// ReplayPerEntry and LoadPerByte model restore costs; a snapshot is
	// also scheduled when estimated replay time exceeds estimated
	// snapshot load time (the "snapshot-dominant" restoration rule).
	ReplayPerEntry time.Duration
	LoadPerByte    time.Duration
}

// DefaultPolicy mirrors the shape of the production heuristic: bounded
// log replay with a dominance ratio.
func DefaultPolicy() Policy {
	return Policy{
		MaxLogDistance: 10000,
		ReplayPerEntry: 50 * time.Microsecond,
		LoadPerByte:    2 * time.Nanosecond,
	}
}

// Stale reports whether a new snapshot should be created given the log
// distance since the last snapshot and the data set size in bytes.
func (p Policy) Stale(distance uint64, datasetBytes int64) bool {
	if p.MaxLogDistance > 0 && distance > p.MaxLogDistance {
		return true
	}
	replay := time.Duration(distance) * p.ReplayPerEntry
	load := time.Duration(datasetBytes) * p.LoadPerByte
	// Keep restores snapshot-dominant: replay must stay below load time.
	return replay > load && distance > 0
}

// Shard is the scheduler's view of one shard: its log plus a callback
// reporting the current data set size (sampled from live clusters by the
// monitoring service in the paper).
type Shard struct {
	ShardID     string
	Log         *txlog.Log
	DatasetSize func() int64
}

// Scheduler polls shard freshness and runs off-box snapshots (with
// verification) when a shard goes stale.
type Scheduler struct {
	Policy   Policy
	Offbox   *Offbox
	Interval time.Duration
	Clock    clock.Clock
	// Verify enables the restore rehearsal after each snapshot; a failed
	// verification quarantines (deletes) the just-produced snapshot so it
	// can never serve a restore, leaving the previous version as latest.
	Verify bool
	// AlarmFn, when set, is invoked with a description each time a
	// produced snapshot fails verification — the monitoring hook that
	// pages instead of letting a bad snapshot rot silently in S3. The
	// alarm is also always retained in a bounded ring (RecentAlarms), so
	// history survives even with no pager wired up — previously a nil
	// AlarmFn silently discarded the message.
	AlarmFn func(msg string)

	mu     sync.Mutex
	shards []Shard
	alarms *obs.AlarmLog
	// counters for tests/metrics
	created  int
	verified int
	failures int
}

// alarm records msg in the bounded ring and forwards it to AlarmFn.
func (s *Scheduler) alarm(msg string) {
	s.mu.Lock()
	if s.alarms == nil {
		s.alarms = obs.NewAlarmLog(64)
	}
	ring := s.alarms
	s.mu.Unlock()
	ring.Raise(msg)
	if s.AlarmFn != nil {
		s.AlarmFn(msg)
	}
}

// RecentAlarms returns up to n retained alarms, newest first — the
// post-mortem view of quarantined snapshots.
func (s *Scheduler) RecentAlarms(n int) []obs.Alarm {
	s.mu.Lock()
	ring := s.alarms
	s.mu.Unlock()
	if ring == nil {
		return nil
	}
	return ring.Recent(n)
}

// AddShard registers a shard for monitoring.
func (s *Scheduler) AddShard(sh Shard) {
	s.mu.Lock()
	s.shards = append(s.shards, sh)
	s.mu.Unlock()
}

// Stats returns (snapshots created, verified, failures).
func (s *Scheduler) Stats() (created, verified, failures int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created, s.verified, s.failures
}

// Tick performs one monitoring pass over all shards, creating snapshots
// where freshness is too stale. Run calls this on an interval; tests may
// call it directly.
func (s *Scheduler) Tick(ctx context.Context) {
	s.mu.Lock()
	shards := append([]Shard(nil), s.shards...)
	s.mu.Unlock()
	for _, sh := range shards {
		tail := sh.Log.CommittedTail()
		last, _, err := s.Offbox.Manager.LatestPos(sh.ShardID)
		if err != nil {
			s.countFailure()
			continue
		}
		distance := tail.Seq - last.Seq
		var size int64
		if sh.DatasetSize != nil {
			size = sh.DatasetSize()
		}
		if !s.Policy.Stale(distance, size) {
			continue
		}
		meta, err := s.Offbox.Run(ctx, sh.ShardID, sh.Log)
		if err != nil {
			s.countFailure()
			continue
		}
		s.mu.Lock()
		s.created++
		s.mu.Unlock()
		if s.Verify {
			if err := Verify(ctx, s.Offbox.Manager, sh.ShardID, sh.Log, s.Clock); err != nil {
				// The freshest version failed its restore rehearsal:
				// quarantine it (idempotent delete) so no restore can pick
				// it up, and page — a shard silently accumulating bad
				// snapshots is one trim away from unrecoverable.
				_ = s.Offbox.Manager.Remove(sh.ShardID, meta.LogPos)
				s.alarm(fmt.Sprintf("snapshot verification failed for shard %s at seq %d: %v",
					sh.ShardID, meta.LogPos.Seq, err))
				s.countFailure()
				continue
			}
			s.mu.Lock()
			s.verified++
			s.mu.Unlock()
		}
	}
}

func (s *Scheduler) countFailure() {
	s.mu.Lock()
	s.failures++
	s.mu.Unlock()
}

// Run ticks until ctx is cancelled.
func (s *Scheduler) Run(ctx context.Context) {
	clk := s.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	interval := s.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
			s.Tick(ctx)
		}
	}
}
