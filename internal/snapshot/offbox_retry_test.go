package snapshot

import (
	"context"
	"errors"
	"testing"
	"time"

	"memorydb/internal/retry"
	"memorydb/internal/s3"
)

// TestOffboxSurvivesBriefS3Outage: a scheduled off-box snapshot must not
// fail because S3 blipped — the retrying wrapper absorbs the outage and
// the run completes (satellite: snapshot/S3 retry discipline).
func TestOffboxSurvivesBriefS3Outage(t *testing.T) {
	log, _ := buildLoggedShard(t, 10)
	store := s3.New()
	mgr := NewManager(store, "snaps")
	ob := &Offbox{
		Manager:       mgr,
		EngineVersion: 2,
		Retry:         retry.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond, Attempts: 12},
	}

	// Outage raised before the run, healed mid-run: the restore leg must
	// retry through it rather than fail the snapshot.
	store.SetUnavailable(true)
	go func() {
		time.Sleep(15 * time.Millisecond)
		store.SetUnavailable(false)
	}()
	meta, err := ob.Run(context.Background(), "s1", log)
	if err != nil {
		t.Fatalf("off-box run across S3 blip: %v", err)
	}
	if meta.LogPos != log.CommittedTail() {
		t.Fatalf("snapshot at %v, want %v", meta.LogPos, log.CommittedTail())
	}
	if _, _, ok, err := mgr.Latest("s1"); err != nil || !ok {
		t.Fatalf("snapshot not retrievable after run: %v %v", ok, err)
	}

	// A persistent outage still fails (bounded attempts, not forever).
	store.SetUnavailable(true)
	if _, err := ob.Run(context.Background(), "s1", log); !errors.Is(err, s3.ErrUnavailable) {
		t.Fatalf("persistent outage: err = %v, want ErrUnavailable", err)
	}
}
