package snapshot

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/s3"
	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

func populatedEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(clock.NewSim(time.Unix(1700000000, 0)))
	for _, cmd := range [][]string{
		{"SET", "str", "value"},
		{"SET", "volatile", "v", "EX", "3600"},
		{"HSET", "hash", "f1", "a", "f2", "b"},
		{"RPUSH", "list", "x", "y"},
		{"SADD", "set", "m1", "m2", "m3"},
		{"ZADD", "zset", "1.5", "a", "-2", "b"},
		{"XADD", "stream", "5-1", "f", "v"},
		{"PFADD", "hll", "e1", "e2", "e3"},
	} {
		argv := make([][]byte, len(cmd))
		for i, a := range cmd {
			argv[i] = []byte(a)
		}
		if r := e.Exec(argv); r.Reply.IsError() {
			t.Fatalf("%v: %v", cmd, r.Reply)
		}
	}
	return e
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := populatedEngine(t)
	meta := Meta{ShardID: "s1", EngineVersion: 2, LogPos: txlog.EntryID{Seq: 42}, LogChecksum: 0xabc}
	var buf bytes.Buffer
	if err := Write(&buf, e.DB(), meta); err != nil {
		t.Fatal(err)
	}
	db, gotMeta, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
	if db.Len() != e.DB().Len() {
		t.Fatalf("restored %d keys, want %d", db.Len(), e.DB().Len())
	}
	// Compare every object through engine probes.
	restored := engine.New(clock.NewSim(time.Unix(1700000000, 0)))
	restored.ResetDB(db)
	for _, probe := range [][]string{
		{"GET", "str"}, {"PTTL", "volatile"}, {"HGETALL", "hash"},
		{"LRANGE", "list", "0", "-1"}, {"SMEMBERS", "set"},
		{"ZRANGE", "zset", "0", "-1", "WITHSCORES"},
		{"XRANGE", "stream", "-", "+"}, {"PFCOUNT", "hll"},
	} {
		argv := make([][]byte, len(probe))
		for i, a := range probe {
			argv[i] = []byte(a)
		}
		a := e.Exec(argv).Reply
		b := restored.Exec(argv).Reply
		if !a.Equal(b) {
			t.Fatalf("%v: original %v, restored %v", probe, a, b)
		}
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	e := populatedEngine(t)
	var buf bytes.Buffer
	if err := Write(&buf, e.DB(), Meta{ShardID: "s1"}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the body.
	data[len(data)/2] ^= 0xff
	if _, _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupted snapshot accepted: %v", err)
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	e := populatedEngine(t)
	var buf bytes.Buffer
	Write(&buf, e.DB(), Meta{ShardID: "s1"})
	data := buf.Bytes()
	for _, n := range []int{0, 4, len(data) / 2, len(data) - 1} {
		if _, _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) accepted", n)
		}
	}
}

func TestSnapshotRejectsBadMagic(t *testing.T) {
	if _, _, err := Read(bytes.NewReader([]byte("NOTASNAPSHOT....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestManagerLatestOrdering(t *testing.T) {
	mgr := NewManager(s3.New(), "snaps")
	db := store.NewDB()
	for _, seq := range []uint64{5, 100, 20} {
		meta := Meta{ShardID: "s1", LogPos: txlog.EntryID{Seq: seq}}
		if err := mgr.Save(db, meta); err != nil {
			t.Fatal(err)
		}
	}
	_, meta, ok, err := mgr.Latest("s1")
	if err != nil || !ok {
		t.Fatalf("Latest: %v %v", ok, err)
	}
	if meta.LogPos.Seq != 100 {
		t.Fatalf("Latest picked seq %d, want 100 (zero-padded key ordering)", meta.LogPos.Seq)
	}
	pos, ok, _ := mgr.LatestPos("s1")
	if !ok || pos.Seq != 100 {
		t.Fatalf("LatestPos = %v %v", pos, ok)
	}
	if _, _, ok, _ := mgr.Latest("other-shard"); ok {
		t.Fatal("Latest for unknown shard reported ok")
	}
}

// buildLoggedShard appends n SET commands to a log through an engine and
// returns (log, engine) — a minimal primary stand-in for offbox tests.
func buildLoggedShard(t *testing.T, n int) (*txlog.Log, *engine.Engine) {
	t.Helper()
	svc := txlog.NewService(txlog.Config{})
	log, _ := svc.CreateLog("s1")
	e := engine.New(clock.NewReal())
	after := txlog.ZeroID
	ctx := context.Background()
	for i := 0; i < n; i++ {
		res := e.Exec([][]byte{[]byte("SET"), []byte("k" + string(rune('a'+i%26))), []byte{byte('0' + i%10)}})
		payload := engine.EncodeRecord(res.Effects)
		id, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		after = id
	}
	return log, e
}

func TestOffboxSnapshotAndRestore(t *testing.T) {
	log, primary := buildLoggedShard(t, 40)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	meta, err := ob.Run(ctx, "s1", log)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LogPos != log.CommittedTail() {
		t.Fatalf("snapshot pos %v, tail %v", meta.LogPos, log.CommittedTail())
	}
	db, gotMeta, ok, err := mgr.Latest("s1")
	if err != nil || !ok {
		t.Fatalf("Latest: %v %v", ok, err)
	}
	if gotMeta.LogChecksum == 0 {
		t.Fatal("snapshot did not record the running log checksum")
	}
	if db.Len() != primary.DB().Len() {
		t.Fatalf("offbox snapshot has %d keys, primary %d", db.Len(), primary.DB().Len())
	}
}

func TestOffboxIncrementalFromPreviousSnapshot(t *testing.T) {
	log, _ := buildLoggedShard(t, 10)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	if _, err := ob.Run(ctx, "s1", log); err != nil {
		t.Fatal(err)
	}
	// More writes, then a second snapshot that starts from the first.
	e := engine.New(clock.NewReal())
	after := log.CommittedTail()
	res := e.Exec([][]byte{[]byte("SET"), []byte("extra"), []byte("v")})
	if _, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: engine.EncodeRecord(res.Effects)}); err != nil {
		t.Fatal(err)
	}
	meta2, err := ob.Run(ctx, "s1", log)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.LogPos != log.CommittedTail() {
		t.Fatalf("second snapshot pos %v", meta2.LogPos)
	}
	db, _, _, _ := mgr.Latest("s1")
	if _, ok := db.Peek("extra"); !ok {
		t.Fatal("second snapshot missing suffix write")
	}
}

func TestVerifyAcceptsGoodSnapshot(t *testing.T) {
	log, _ := buildLoggedShard(t, 30)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	if _, err := ob.Run(ctx, "s1", log); err != nil {
		t.Fatal(err)
	}
	if err := Verify(ctx, mgr, "s1", log, nil); err != nil {
		t.Fatalf("Verify rejected a good snapshot: %v", err)
	}
}

func TestVerifyRejectsTamperedSnapshot(t *testing.T) {
	log, _ := buildLoggedShard(t, 30)
	mgr := NewManager(s3.New(), "snaps")
	ob := &Offbox{Manager: mgr, EngineVersion: 2}
	ctx := context.Background()
	meta, err := ob.Run(ctx, "s1", log)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the stored snapshot with one claiming the same position
	// but different content (well-formed, wrong data) — the log-checksum
	// gate must catch it.
	bad := engine.New(clock.NewReal())
	bad.Exec([][]byte{[]byte("SET"), []byte("evil"), []byte("data")})
	var buf bytes.Buffer
	if err := Write(&buf, bad.DB(), Meta{ShardID: "s1", LogPos: meta.LogPos, LogChecksum: 0xbad}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SaveRaw("s1", meta.LogPos, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := Verify(ctx, mgr, "s1", log, nil); err == nil {
		t.Fatal("Verify accepted a snapshot whose checksum does not match its log prefix")
	}
}

func TestVerifyChecksumEntriesDuringReplay(t *testing.T) {
	// Build a log with primary-injected checksum entries and snapshot at
	// an early position so Verify replays across them.
	svc := txlog.NewService(txlog.Config{})
	log, _ := svc.CreateLog("s1")
	e := engine.New(clock.NewReal())
	ctx := context.Background()
	after := txlog.ZeroID
	var running uint64
	for i := 0; i < 20; i++ {
		res := e.Exec([][]byte{[]byte("SET"), []byte{byte('a' + i%26)}, []byte("v")})
		payload := engine.EncodeRecord(res.Effects)
		id, err := log.Append(ctx, after, txlog.Entry{Type: txlog.EntryData, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		after = id
		running = txlog.ChainChecksum(running, payload)
		if i%5 == 4 {
			id, err = log.Append(ctx, after, txlog.Entry{Type: txlog.EntryChecksum, Payload: txlog.EncodeChecksumPayload(running)})
			if err != nil {
				t.Fatal(err)
			}
			after = id
		}
	}
	mgr := NewManager(s3.New(), "snaps")
	// Snapshot at position zero: empty dataset, checksum 0.
	if err := mgr.Save(store.NewDB(), Meta{ShardID: "s1", LogPos: txlog.ZeroID}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(ctx, mgr, "s1", log, nil); err != nil {
		t.Fatalf("Verify with checksum entries: %v", err)
	}
}

func TestSchedulerPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.Stale(0, 1<<30) {
		t.Fatal("zero distance must not be stale")
	}
	if !p.Stale(p.MaxLogDistance+1, 0) {
		t.Fatal("distance over limit must be stale")
	}
	// Dominance rule: long replay over a small dataset.
	if !p.Stale(9000, 1024) {
		t.Fatal("replay-dominant restore must trigger a snapshot")
	}
}

func TestSchedulerTickCreatesAndVerifies(t *testing.T) {
	log, e := buildLoggedShard(t, 50)
	mgr := NewManager(s3.New(), "snaps")
	sched := &Scheduler{
		Policy: Policy{MaxLogDistance: 10},
		Offbox: &Offbox{Manager: mgr, EngineVersion: 2},
		Verify: true,
	}
	sched.AddShard(Shard{ShardID: "s1", Log: log, DatasetSize: func() int64 { return e.DB().UsedBytes() }})
	sched.Tick(context.Background())
	created, verified, failures := sched.Stats()
	if created != 1 || verified != 1 || failures != 0 {
		t.Fatalf("stats = %d %d %d", created, verified, failures)
	}
	// Fresh snapshot: second tick does nothing.
	sched.Tick(context.Background())
	created, _, _ = sched.Stats()
	if created != 1 {
		t.Fatalf("second tick created another snapshot (created=%d)", created)
	}
}
