package snapshot

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/txlog"
)

// Verify rehearses restoring the freshest snapshot chain of shardID on
// an off-box cluster (paper §7.2.1):
//
//  1. validate every link of the newest chain — full base plus each
//     delta — against its own whole-file checksum, and materialize the
//     layered keyspace; the newest tip must resolve, no falling back to
//     an older survivor;
//  2. confirm the tip's stored log checksum matches the log's running
//     checksum at the tip's positional identifier — i.e. the chain is
//     equivalent to its corresponding log prefix;
//  3. replay the subsequent transaction log, recomputing the running
//     checksum from the tip's stored value and comparing it against
//     every checksum entry encountered.
//
// Only snapshots that pass all three gates should be made available for
// customer restores.
func Verify(ctx context.Context, m *Manager, shardID string, log *txlog.Log, clk clock.Clock) error {
	if clk == nil {
		clk = clock.NewReal()
	}
	// Gate 1: every link's checksum is validated during chain resolution.
	db, chain, ok, err := m.NewestChain(shardID)
	if err != nil {
		return fmt.Errorf("snapshot: content validation failed: %w", err)
	}
	if !ok {
		return fmt.Errorf("snapshot: no snapshot to verify for %q", shardID)
	}
	meta := chain.Tip
	// Gate 2: tip checksum vs the log prefix the chain claims to capture.
	want, err := log.ChecksumAt(meta.LogPos)
	if err != nil {
		return fmt.Errorf("snapshot: log prefix unavailable at %v: %w", meta.LogPos, err)
	}
	if want != meta.LogChecksum {
		return fmt.Errorf("snapshot: log checksum mismatch at %v: snapshot has %#x, log has %#x",
			meta.LogPos, meta.LogChecksum, want)
	}
	// Gate 3: restore rehearsal — replay the suffix, chaining the running
	// checksum from the tip's stored value and comparing against every
	// checksum entry encountered.
	eng := engine.New(clk)
	eng.ResetDB(db)
	running := meta.LogChecksum
	table := crc64.MakeTable(crc64.ECMA)
	r := log.NewReader(meta.LogPos)
	target := log.CommittedTail()
	for r.Position().Less(target) {
		e, err := r.Next(ctx)
		if err != nil {
			return err
		}
		switch e.Type {
		case txlog.EntryData:
			running = crc64.Update(running, table, e.Payload)
			if err := eng.Apply(e.Payload); err != nil {
				return fmt.Errorf("snapshot: rehearsal replay failed at %v: %w", e.ID, err)
			}
		case txlog.EntryChecksum:
			persisted := binary.BigEndian.Uint64(e.Payload)
			if persisted != running {
				return fmt.Errorf("snapshot: rehearsal checksum mismatch at %v: recomputed %#x, log persisted %#x",
					e.ID, running, persisted)
			}
		}
		if e.ID.Seq >= target.Seq {
			break
		}
	}
	return nil
}
