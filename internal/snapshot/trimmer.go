package snapshot

import (
	"context"
	"sync"
	"time"

	"memorydb/internal/clock"
)

// Trimmer is the snapshot-coordinated log-trim coordinator (paper §4.2.3:
// the log is bounded because everything below the latest snapshot is
// redundant). It watches each shard's snapshot store and trims the
// transaction log only up to positions that a *durable, verified* snapshot
// strictly covers — and the log itself only drops whole sealed segments at
// or below that position. The two gates compose into the trim-safety
// invariant: any replica or restore path that needs entry N either finds a
// snapshot at position >= N, or the log still holds N. A reader that still
// hits ErrTrimmed after re-bootstrapping from the latest snapshot has
// found a coordinator bug, which core surfaces as the loud
// ErrLogTrimmedGap — never a normal condition.
//
// Trimmer deliberately re-verifies via Manager.LatestUsable rather than
// trusting LatestPos: a snapshot that exists but fails its checksum or
// replay rehearsal must not authorize discarding the log suffix that could
// rebuild it.
type Trimmer struct {
	Manager  *Manager
	Interval time.Duration
	Clock    clock.Clock

	mu     sync.Mutex
	shards []Shard
	// lastPos memoizes the snapshot position each shard was last trimmed
	// against, so an unchanged snapshot store costs one List, not a full
	// verification pass.
	lastPos map[string]uint64
	// counters for tests/metrics
	trimmed int64 // segments dropped across all shards
	passes  int64 // verification passes actually run
}

// AddShard registers a shard for trim coordination.
func (t *Trimmer) AddShard(sh Shard) {
	t.mu.Lock()
	t.shards = append(t.shards, sh)
	t.mu.Unlock()
}

// Stats returns (segments trimmed, verification passes run).
func (t *Trimmer) Stats() (trimmed, passes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.trimmed, t.passes
}

// Tick performs one trim pass over all shards. Run calls this on an
// interval; tests may call it directly after forcing a snapshot.
func (t *Trimmer) Tick() {
	t.mu.Lock()
	shards := append([]Shard(nil), t.shards...)
	t.mu.Unlock()
	for _, sh := range shards {
		t.tickShard(sh)
	}
}

func (t *Trimmer) tickShard(sh Shard) {
	// Cheap freshness probe first: if the newest snapshot position hasn't
	// moved past what we already trimmed against, skip the expensive
	// verified-read entirely.
	pos, ok, err := t.Manager.LatestPos(sh.ShardID)
	if err != nil || !ok {
		return
	}
	t.mu.Lock()
	if t.lastPos == nil {
		t.lastPos = make(map[string]uint64)
	}
	seen := t.lastPos[sh.ShardID]
	t.mu.Unlock()
	if pos.Seq <= seen {
		return
	}

	// The verified gate: LatestUsableChain re-checks every link's
	// checksum and walks back to the newest chain that actually loads.
	// Only that chain's *base* (its full snapshot) may authorize a trim:
	// restoring past a damaged tip delta falls back to an older prefix of
	// the chain and needs log replay from that lower position, so
	// trimming to the tip would strand every delta above the base. The
	// horizon advances to the tip only when the builder compacts (the new
	// full becomes its own base).
	_, chain, _, usable, err := t.Manager.LatestUsableChain(sh.ShardID)
	t.mu.Lock()
	t.passes++
	t.mu.Unlock()
	if err != nil || !usable {
		return
	}
	n := sh.Log.Trim(chain.Base.LogPos)
	t.mu.Lock()
	t.trimmed += int64(n)
	t.lastPos[sh.ShardID] = chain.Tip.LogPos.Seq
	t.mu.Unlock()
}

// Run ticks until ctx is cancelled.
func (t *Trimmer) Run(ctx context.Context) {
	clk := t.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	interval := t.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
			t.Tick()
		}
	}
}
