package snapshot

import (
	"context"
	"strings"
	"testing"

	"memorydb/internal/faultpoint"
	"memorydb/internal/s3"
)

// TestSchedulerRetainsAlarmsWithoutAlarmFn covers the dropped-alarm fix: a
// scheduler with no pager wired up (AlarmFn == nil) must still retain
// verification-failure alarms in its bounded ring, where post-mortems can
// find them. Previously the message was silently discarded.
func TestSchedulerRetainsAlarmsWithoutAlarmFn(t *testing.T) {
	log, _ := buildLoggedShard(t, 20)
	mgr := NewManager(s3.New(), "snaps")
	faults := faultpoint.New(1)
	faults.Arm(faultpoint.SiteSnapBuild, faultpoint.Corrupt, 0)
	sched := &Scheduler{
		Policy: Policy{MaxLogDistance: 1},
		Offbox: &Offbox{Manager: mgr, EngineVersion: 1, Faults: faults},
		Verify: true,
		// AlarmFn deliberately nil.
	}
	sched.AddShard(Shard{ShardID: "s1", Log: log})

	if got := sched.RecentAlarms(8); len(got) != 0 {
		t.Fatalf("alarms before any tick: %v", got)
	}
	sched.Tick(context.Background())
	if _, _, failures := sched.Stats(); failures == 0 {
		t.Fatal("corrupt snapshot did not count as a failure")
	}
	alarms := sched.RecentAlarms(8)
	if len(alarms) != 1 || !strings.Contains(alarms[0].Msg, "verification failed") {
		t.Fatalf("retained alarms = %+v, want one verification failure", alarms)
	}

	// When a pager IS wired, it gets the message too — the ring is in
	// addition to AlarmFn, not instead of it.
	var paged []string
	sched.AlarmFn = func(msg string) { paged = append(paged, msg) }
	faults.Arm(faultpoint.SiteSnapBuild, faultpoint.Corrupt, 0)
	sched.Tick(context.Background())
	if len(paged) != 1 || !strings.Contains(paged[0], "verification failed") {
		t.Fatalf("AlarmFn pages = %v, want one verification failure", paged)
	}
	if got := sched.RecentAlarms(8); len(got) != 2 {
		t.Fatalf("retained alarms after second failure = %d, want 2", len(got))
	}
}
