package snapshot

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"memorydb/internal/retry"
	"memorydb/internal/s3"
	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// Manager names, stores, and retrieves snapshots in S3. Keys are
// "<prefix>/<shardID>/<logPos padded>" so the lexically greatest key for a
// shard is also the freshest snapshot.
type Manager struct {
	store  s3.Interface
	prefix string
}

// NewManager returns a manager writing under prefix. st is typically a
// *s3.Store, or an *s3.Retrying wrapping one so transient storage blips
// are absorbed instead of failing a scheduled snapshot or a restore.
func NewManager(st s3.Interface, prefix string) *Manager {
	if prefix == "" {
		prefix = "snapshots"
	}
	return &Manager{store: st, prefix: prefix}
}

// WithRetries returns a Manager reading and writing through a retrying
// wrapper with the given policy, sharing the underlying store.
func (m *Manager) WithRetries(pol retry.Policy) *Manager {
	return &Manager{store: s3.WithRetry(m.store, pol), prefix: m.prefix}
}

func (m *Manager) key(shardID string, pos txlog.EntryID) string {
	return fmt.Sprintf("%s/%s/%020d", m.prefix, shardID, pos.Seq)
}

// Save serializes db+meta and uploads it.
func (m *Manager) Save(db *store.DB, meta Meta) error {
	var buf bytes.Buffer
	if err := Write(&buf, db, meta); err != nil {
		return err
	}
	return m.store.Put(m.key(meta.ShardID, meta.LogPos), buf.Bytes())
}

// SaveRaw uploads pre-serialized snapshot bytes (used by verification
// rehearsal, which must store exactly what it validated).
func (m *Manager) SaveRaw(shardID string, pos txlog.EntryID, data []byte) error {
	return m.store.Put(m.key(shardID, pos), data)
}

// Latest fetches the freshest snapshot for shardID. ok=false when the
// shard has no snapshot yet (cold start replays the whole log).
func (m *Manager) Latest(shardID string) (*store.DB, Meta, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, Meta{}, false, err
	}
	if len(keys) == 0 {
		return nil, Meta{}, false, nil
	}
	data, err := m.store.Get(keys[len(keys)-1])
	if err != nil {
		return nil, Meta{}, false, err
	}
	db, meta, err := Read(bytes.NewReader(data))
	if err != nil {
		return nil, Meta{}, false, err
	}
	return db, meta, true, nil
}

// LatestRaw returns the freshest snapshot's raw bytes and log position.
func (m *Manager) LatestRaw(shardID string) ([]byte, txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return nil, txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	data, err := m.store.Get(k)
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	seqStr := k[strings.LastIndexByte(k, '/')+1:]
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return nil, txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return data, txlog.EntryID{Seq: seq}, true, nil
}

// LatestPos returns the log position of the freshest snapshot without
// fetching its body (the scheduler polls this to compute freshness).
func (m *Manager) LatestPos(shardID string) (txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	seq, err := strconv.ParseUint(k[strings.LastIndexByte(k, '/')+1:], 10, 64)
	if err != nil {
		return txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return txlog.EntryID{Seq: seq}, true, nil
}
