package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"memorydb/internal/retry"
	"memorydb/internal/s3"
	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// Manager names, stores, and retrieves snapshots in S3. Keys are
// "<prefix>/<shardID>/<logPos padded>" so the lexically greatest key for a
// shard is also the freshest snapshot.
type Manager struct {
	store  s3.Interface
	prefix string
	// torn counts corrupt/truncated snapshot versions skipped by
	// LatestUsable across all shards. Shared (by pointer) with every
	// WithRetries derivative so the count survives rewrapping.
	torn *atomic.Int64
	// health carries the forkless builder's exported gauges/counters,
	// shared with derivatives so nodes can read them off any handle.
	health *BuilderHealth
	// AlarmFn, when set, is invoked each time chain resolution
	// quarantines a damaged link — the same monitoring hook the
	// scheduler's verification failures page through.
	AlarmFn func(msg string)
}

// NewManager returns a manager writing under prefix. st is typically a
// *s3.Store, or an *s3.Retrying wrapping one so transient storage blips
// are absorbed instead of failing a scheduled snapshot or a restore.
func NewManager(st s3.Interface, prefix string) *Manager {
	if prefix == "" {
		prefix = "snapshots"
	}
	return &Manager{store: st, prefix: prefix, torn: new(atomic.Int64), health: &BuilderHealth{}}
}

// WithRetries returns a Manager reading and writing through a retrying
// wrapper with the given policy, sharing the underlying store.
func (m *Manager) WithRetries(pol retry.Policy) *Manager {
	return &Manager{store: s3.WithRetry(m.store, pol), prefix: m.prefix,
		torn: m.torn, health: m.health, AlarmFn: m.AlarmFn}
}

// Health returns the builder health block shared by every derivative of
// this manager — the node-side observability reads lag, delta and
// compaction counts from here.
func (m *Manager) Health() *BuilderHealth { return m.health }

// alarm forwards a quarantine description to AlarmFn when wired.
func (m *Manager) alarm(msg string) {
	if m.AlarmFn != nil {
		m.AlarmFn(msg)
	}
}

// TornDetected returns how many corrupt or torn snapshot versions this
// manager (and its retrying derivatives) has skipped during restores.
func (m *Manager) TornDetected() int64 { return m.torn.Load() }

func (m *Manager) key(shardID string, pos txlog.EntryID) string {
	return fmt.Sprintf("%s/%s/%020d", m.prefix, shardID, pos.Seq)
}

// Save serializes db+meta and uploads it.
func (m *Manager) Save(db *store.DB, meta Meta) error {
	var buf bytes.Buffer
	if err := Write(&buf, db, meta); err != nil {
		return err
	}
	return m.store.Put(m.key(meta.ShardID, meta.LogPos), buf.Bytes())
}

// SaveRaw uploads pre-serialized snapshot bytes (used by verification
// rehearsal, which must store exactly what it validated).
func (m *Manager) SaveRaw(shardID string, pos txlog.EntryID, data []byte) error {
	return m.store.Put(m.key(shardID, pos), data)
}

// Latest fetches the freshest usable snapshot for shardID. ok=false when
// the shard has no usable snapshot yet (cold start replays the whole
// log). Corrupt or torn versions are skipped; see LatestUsable.
func (m *Manager) Latest(shardID string) (*store.DB, Meta, bool, error) {
	db, meta, _, ok, err := m.LatestUsable(shardID)
	return db, meta, ok, err
}

// Chain describes a resolved restore chain: the full snapshot at its
// base, zero or more deltas, and the tip whose LogPos restore replays
// from. Depth is the number of deltas layered on the base.
type Chain struct {
	Tip   Meta
	Base  Meta
	Depth int
}

// MaxChainDepth bounds chain resolution: a chain longer than this (the
// builder compacts far earlier) indicates a corrupted parent link loop
// and is treated as damage, not followed forever.
const MaxChainDepth = 64

// errChainDamaged marks a candidate tip whose chain cannot be completed
// (torn/corrupt/missing link); resolution falls back to an older tip.
var errChainDamaged = errors.New("snapshot: damaged chain link")

// LatestUsable walks the shard's snapshot versions newest → oldest and
// returns the materialized keyspace of the first *restorable chain*: a
// full snapshot for a self-contained version, or full+deltas layered in
// order for an incremental tip. A version whose chain is damaged — a
// link truncated by a torn write, silently corrupted at rest, or missing
// — fails the §7.2.1 checksum gates and is skipped, falling back to the
// next-older tip; damaged *parent* links are quarantined (removed +
// alarmed) so no later restore retries a chain through them, while a
// damaged candidate tip is left in place so every recovering node counts
// it independently. Exhausting every version falls back to
// pure log replay (ok=false), never a hard restore failure. skipped
// reports how many unusable tips were passed over (damaged files are
// also accumulated in TornDetected). Only genuine storage errors abort
// the walk: a restore must not silently time-travel past a snapshot that
// is merely unreachable right now.
func (m *Manager) LatestUsable(shardID string) (*store.DB, Meta, int, bool, error) {
	db, chain, skipped, ok, err := m.LatestUsableChain(shardID)
	return db, chain.Tip, skipped, ok, err
}

// LatestUsableChain is LatestUsable exposing the whole chain: trim
// coordination needs the *base* position (trimming past it would strand
// the deltas above), and observability reports the depth.
func (m *Manager) LatestUsableChain(shardID string) (*store.DB, Chain, int, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, Chain{}, 0, false, err
	}
	index := make(map[uint64]string, len(keys))
	for _, k := range keys {
		if seq, ok := seqOfKey(k); ok {
			index[seq] = k
		}
	}
	skipped := 0
	for i := len(keys) - 1; i >= 0; i-- {
		files, err := m.walkChain(shardID, index, keys[i])
		if err != nil {
			if errors.Is(err, errChainDamaged) {
				skipped++
				continue
			}
			return nil, Chain{}, skipped, false, err
		}
		if files == nil {
			// Tip vanished between List and Get (quarantine or trim races
			// are benign): not even a skip.
			continue
		}
		db := store.NewDB()
		applied := true
		for _, f := range files {
			if err := applyBody(f.body, db); err != nil {
				// The CRC passed but the body does not decode — treat as
				// damage at that link and fall back.
				m.torn.Add(1)
				m.quarantine(shardID, f.meta.LogPos, fmt.Sprintf("body decode failed: %v", err))
				applied = false
				break
			}
		}
		if !applied {
			skipped++
			continue
		}
		tip, base := files[len(files)-1].meta, files[0].meta
		return db, Chain{Tip: tip, Base: base, Depth: len(files) - 1}, skipped, true, nil
	}
	return nil, Chain{}, skipped, false, nil
}

// NewestChain resolves the chain ending at the newest stored version
// *without falling back*: verification must judge the snapshot just
// produced, not whatever older survivor a restore would settle for. A
// damaged link fails the call (after quarantining it); ok=false means the
// shard has no snapshot at all.
func (m *Manager) NewestChain(shardID string) (*store.DB, Chain, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, Chain{}, false, err
	}
	if len(keys) == 0 {
		return nil, Chain{}, false, nil
	}
	index := make(map[uint64]string, len(keys))
	for _, k := range keys {
		if seq, ok := seqOfKey(k); ok {
			index[seq] = k
		}
	}
	files, err := m.walkChain(shardID, index, keys[len(keys)-1])
	if err != nil {
		return nil, Chain{}, false, err
	}
	if files == nil {
		return nil, Chain{}, false, nil
	}
	db := store.NewDB()
	for _, f := range files {
		if err := applyBody(f.body, db); err != nil {
			m.torn.Add(1)
			m.quarantine(shardID, f.meta.LogPos, fmt.Sprintf("body decode failed: %v", err))
			return nil, Chain{}, false, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}
	tip, base := files[len(files)-1].meta, files[0].meta
	return db, Chain{Tip: tip, Base: base, Depth: len(files) - 1}, true, nil
}

// chainFile is one verified link: its meta plus the still-encoded body.
type chainFile struct {
	meta Meta
	body []byte
}

// walkChain fetches and checksum-verifies the chain ending at tipKey,
// returning its links ordered base → tip. A damaged *parent* link (bad
// CRC, malformed frame, implausible parent pointer) is quarantined via the
// Remove/alarm path — every delta above it is already unrestorable, so no
// later restore should retry it. A damaged candidate *tip* is only
// skipped, not removed: every resolver (each recovering node) must see and
// count it independently, exactly like the flat-version fallback always
// has. A link missing from the store fails the walk without quarantining
// (the file is already gone). (nil, nil) means the tip itself disappeared
// between List and Get. Genuine storage errors are returned verbatim.
func (m *Manager) walkChain(shardID string, index map[uint64]string, tipKey string) ([]chainFile, error) {
	var down []chainFile // tip → base while walking
	key := tipKey
	for {
		if len(down) > MaxChainDepth {
			m.torn.Add(1)
			m.quarantine(shardID, down[len(down)-1].meta.LogPos,
				fmt.Sprintf("chain deeper than %d links", MaxChainDepth))
			return nil, errChainDamaged
		}
		data, err := m.store.Get(key)
		if err != nil {
			if errors.Is(err, s3.ErrNoSuchKey) {
				if len(down) == 0 {
					return nil, nil
				}
				// A parent link was quarantined or lost: every delta above
				// it is unrestorable from this tip.
				return nil, errChainDamaged
			}
			return nil, err
		}
		meta, body, err := readFile(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, ErrBadSnapshot) || errors.Is(err, ErrChecksum) {
				m.torn.Add(1)
				if len(down) > 0 {
					m.quarantineKey(shardID, key, fmt.Sprintf("checksum/framing: %v", err))
				}
				return nil, errChainDamaged
			}
			return nil, err
		}
		down = append(down, chainFile{meta: meta, body: body})
		if meta.Kind == KindFull {
			break
		}
		if meta.BasePos.Seq >= meta.LogPos.Seq {
			// A delta claiming a parent at or above itself is corrupt
			// provenance even with a valid CRC.
			m.torn.Add(1)
			m.quarantineKey(shardID, key, fmt.Sprintf("delta base %d not below tip %d",
				meta.BasePos.Seq, meta.LogPos.Seq))
			return nil, errChainDamaged
		}
		parent, ok := index[meta.BasePos.Seq]
		if !ok {
			return nil, errChainDamaged
		}
		key = parent
	}
	// Reverse to base → tip application order.
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return down, nil
}

// quarantine removes a damaged chain link and pages through AlarmFn —
// the same Remove/alarm path the scheduler uses for snapshots that fail
// their restore rehearsal.
func (m *Manager) quarantine(shardID string, pos txlog.EntryID, reason string) {
	_ = m.Remove(shardID, pos)
	m.alarm(fmt.Sprintf("snapshot: quarantined %s seq %d: %s", shardID, pos.Seq, reason))
}

func (m *Manager) quarantineKey(shardID, key, reason string) {
	_ = m.store.Delete(key)
	seq, _ := seqOfKey(key)
	m.alarm(fmt.Sprintf("snapshot: quarantined %s seq %d: %s", shardID, seq, reason))
}

// seqOfKey parses the log position encoded in a snapshot key.
func seqOfKey(key string) (uint64, bool) {
	seq, err := strconv.ParseUint(key[strings.LastIndexByte(key, '/')+1:], 10, 64)
	return seq, err == nil
}

// Remove deletes the snapshot version at pos (idempotent). The scheduler
// quarantines a just-produced snapshot that fails verification so it can
// never be picked up by a restore.
func (m *Manager) Remove(shardID string, pos txlog.EntryID) error {
	return m.store.Delete(m.key(shardID, pos))
}

// LatestRaw returns the freshest snapshot's raw bytes and log position.
func (m *Manager) LatestRaw(shardID string) ([]byte, txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return nil, txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	data, err := m.store.Get(k)
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	seqStr := k[strings.LastIndexByte(k, '/')+1:]
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return nil, txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return data, txlog.EntryID{Seq: seq}, true, nil
}

// LatestPos returns the log position of the freshest snapshot without
// fetching its body (the scheduler polls this to compute freshness).
func (m *Manager) LatestPos(shardID string) (txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	seq, err := strconv.ParseUint(k[strings.LastIndexByte(k, '/')+1:], 10, 64)
	if err != nil {
		return txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return txlog.EntryID{Seq: seq}, true, nil
}
