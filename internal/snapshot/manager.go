package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"memorydb/internal/retry"
	"memorydb/internal/s3"
	"memorydb/internal/store"
	"memorydb/internal/txlog"
)

// Manager names, stores, and retrieves snapshots in S3. Keys are
// "<prefix>/<shardID>/<logPos padded>" so the lexically greatest key for a
// shard is also the freshest snapshot.
type Manager struct {
	store  s3.Interface
	prefix string
	// torn counts corrupt/truncated snapshot versions skipped by
	// LatestUsable across all shards. Shared (by pointer) with every
	// WithRetries derivative so the count survives rewrapping.
	torn *atomic.Int64
}

// NewManager returns a manager writing under prefix. st is typically a
// *s3.Store, or an *s3.Retrying wrapping one so transient storage blips
// are absorbed instead of failing a scheduled snapshot or a restore.
func NewManager(st s3.Interface, prefix string) *Manager {
	if prefix == "" {
		prefix = "snapshots"
	}
	return &Manager{store: st, prefix: prefix, torn: new(atomic.Int64)}
}

// WithRetries returns a Manager reading and writing through a retrying
// wrapper with the given policy, sharing the underlying store.
func (m *Manager) WithRetries(pol retry.Policy) *Manager {
	return &Manager{store: s3.WithRetry(m.store, pol), prefix: m.prefix, torn: m.torn}
}

// TornDetected returns how many corrupt or torn snapshot versions this
// manager (and its retrying derivatives) has skipped during restores.
func (m *Manager) TornDetected() int64 { return m.torn.Load() }

func (m *Manager) key(shardID string, pos txlog.EntryID) string {
	return fmt.Sprintf("%s/%s/%020d", m.prefix, shardID, pos.Seq)
}

// Save serializes db+meta and uploads it.
func (m *Manager) Save(db *store.DB, meta Meta) error {
	var buf bytes.Buffer
	if err := Write(&buf, db, meta); err != nil {
		return err
	}
	return m.store.Put(m.key(meta.ShardID, meta.LogPos), buf.Bytes())
}

// SaveRaw uploads pre-serialized snapshot bytes (used by verification
// rehearsal, which must store exactly what it validated).
func (m *Manager) SaveRaw(shardID string, pos txlog.EntryID, data []byte) error {
	return m.store.Put(m.key(shardID, pos), data)
}

// Latest fetches the freshest usable snapshot for shardID. ok=false when
// the shard has no usable snapshot yet (cold start replays the whole
// log). Corrupt or torn versions are skipped; see LatestUsable.
func (m *Manager) Latest(shardID string) (*store.DB, Meta, bool, error) {
	db, meta, _, ok, err := m.LatestUsable(shardID)
	return db, meta, ok, err
}

// LatestUsable walks the shard's snapshot versions newest → oldest and
// returns the first one that deserializes with a valid body checksum.
// A version whose bytes are damaged — truncated by a torn write, or
// silently corrupted at rest — fails the §7.2.1 checksum gates
// (ErrBadSnapshot / ErrChecksum) and is skipped, falling back to the
// next-older version; exhausting every version falls back to pure log
// replay (ok=false), never a hard restore failure. skipped reports how
// many damaged versions were passed over (also accumulated in
// TornDetected). Only genuine storage errors abort the walk: a restore
// must not silently time-travel past a snapshot that is merely
// unreachable right now.
func (m *Manager) LatestUsable(shardID string) (*store.DB, Meta, int, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, Meta{}, 0, false, err
	}
	skipped := 0
	for i := len(keys) - 1; i >= 0; i-- {
		data, err := m.store.Get(keys[i])
		if err != nil {
			if errors.Is(err, s3.ErrNoSuchKey) {
				// Deleted between List and Get (quarantine or trim races
				// are benign): treat like any other unusable version.
				continue
			}
			return nil, Meta{}, skipped, false, err
		}
		db, meta, err := Read(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, ErrBadSnapshot) || errors.Is(err, ErrChecksum) {
				skipped++
				m.torn.Add(1)
				continue
			}
			return nil, Meta{}, skipped, false, err
		}
		return db, meta, skipped, true, nil
	}
	return nil, Meta{}, skipped, false, nil
}

// Remove deletes the snapshot version at pos (idempotent). The scheduler
// quarantines a just-produced snapshot that fails verification so it can
// never be picked up by a restore.
func (m *Manager) Remove(shardID string, pos txlog.EntryID) error {
	return m.store.Delete(m.key(shardID, pos))
}

// LatestRaw returns the freshest snapshot's raw bytes and log position.
func (m *Manager) LatestRaw(shardID string) ([]byte, txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return nil, txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	data, err := m.store.Get(k)
	if err != nil {
		return nil, txlog.ZeroID, false, err
	}
	seqStr := k[strings.LastIndexByte(k, '/')+1:]
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return nil, txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return data, txlog.EntryID{Seq: seq}, true, nil
}

// LatestPos returns the log position of the freshest snapshot without
// fetching its body (the scheduler polls this to compute freshness).
func (m *Manager) LatestPos(shardID string) (txlog.EntryID, bool, error) {
	keys, err := m.store.List(m.prefix + "/" + shardID + "/")
	if err != nil {
		return txlog.ZeroID, false, err
	}
	if len(keys) == 0 {
		return txlog.ZeroID, false, nil
	}
	k := keys[len(keys)-1]
	seq, err := strconv.ParseUint(k[strings.LastIndexByte(k, '/')+1:], 10, 64)
	if err != nil {
		return txlog.ZeroID, false, fmt.Errorf("snapshot: bad key %q: %w", k, err)
	}
	return txlog.EntryID{Seq: seq}, true, nil
}
