package snapshot

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/faultpoint"
	"memorydb/internal/obs"
	"memorydb/internal/retry"
	"memorydb/internal/trace"
	"memorydb/internal/txlog"
)

// BuilderHealth is the builder's exported health block, hung off the
// shard's snapshot Manager so every node holding the manager can export
// it (Prometheus gauges, INFO # Robustness) without holding the builder.
type BuilderHealth struct {
	// LagEntries is the builder's distance behind the committed tail.
	LagEntries atomic.Int64
	// DeltasEmitted / Compactions count snapshots produced.
	DeltasEmitted atomic.Int64
	Compactions   atomic.Int64
	// ChainDepth is the current chain length at the newest emitted tip.
	ChainDepth atomic.Int64
	// LagAlarms counts times the builder fell behind the trim horizon.
	LagAlarms atomic.Int64
}

// Builder is the forkless checkpointer (Taurus-style "the log is the
// database"): instead of forking the engine and paying COW+swap for a
// BGSave, it runs a dedicated transaction-log reader — exactly like a
// replica tailer — into a private materialized keyspace that lives
// entirely off the critical path. At a configurable log-distance cadence
// it emits an *incremental delta* (only the objects changed since the
// previous snapshot, plus tombstones for deletions), and every
// CompactEvery deltas it compacts the chain by dumping its materialized
// copy as a fresh full snapshot. The engine never forks, never pauses,
// and write latency stays flat while snapshots stream out.
type Builder struct {
	Manager *Manager
	Log     *txlog.Log
	ShardID string
	// EngineVersion stamps produced snapshots (pinned to the oldest
	// running version during mixed-version upgrades, §7.1).
	EngineVersion uint32
	// DeltaInterval is the log-distance cadence: a delta is emitted once
	// this many entries accumulated since the last snapshot (default 512).
	DeltaInterval uint64
	// CompactEvery bounds chain length: after this many deltas the next
	// emit is a full snapshot, resetting the chain (default 8).
	CompactEvery int
	// Interval paces Run's ticks (default 25ms).
	Interval time.Duration
	Clock    clock.Clock
	// Retry shapes S3 upload backoff, like the off-box path.
	Retry retry.Policy
	// Faults injects crash faults into the delta/compaction pipeline
	// (snapshot.delta.build, snapshot.delta.upload, snapshot.compact,
	// builder.lag). Production leaves it nil.
	Faults *faultpoint.Registry
	// Obs, when set, records snapshot_delta_build and
	// snapshot_delta_upload durations into named histograms.
	Obs *obs.Metrics
	// AlarmFn pages when the builder falls behind the log's trim horizon
	// — the monitoring hook for a checkpointer that stopped keeping up.
	AlarmFn func(msg string)
	// Flight, when set, records builder-lag incidents on the node's
	// black-box timeline alongside the page.
	Flight *trace.Flight

	mu       sync.Mutex
	eng      *engine.Engine
	reader   *txlog.Reader
	pos      txlog.EntryID // last log entry applied to the private copy
	lastEmit txlog.EntryID // position of the last emitted snapshot
	// chain bookkeeping for the next emit's meta
	chainDepth      uint32
	deltasSinceFull int
	dirty           map[string]struct{}
	// needFull forces the next emit to be a full snapshot: set on
	// bootstrap (no base yet) and on wholesale rewrites (FLUSHALL) that
	// per-key deltas cannot describe.
	needFull     bool
	booted       bool
	rebootstraps int64
}

// ErrBuilderCrashed reports that a fault schedule killed the builder
// mid-run; its in-memory materialized copy is gone and the next tick
// re-bootstraps from the durable chain, exactly like a restarted process.
var ErrBuilderCrashed = errors.New("builder: crashed by fault schedule")

func (b *Builder) clk() clock.Clock {
	if b.Clock == nil {
		b.Clock = clock.NewReal()
	}
	return b.Clock
}

func (b *Builder) deltaInterval() uint64 {
	if b.DeltaInterval == 0 {
		return 512
	}
	return b.DeltaInterval
}

func (b *Builder) compactEvery() int {
	if b.CompactEvery == 0 {
		return 8
	}
	return b.CompactEvery
}

func (b *Builder) mgr() *Manager {
	pol := b.Retry
	if pol.Clock == nil {
		pol.Clock = b.clk()
	}
	return b.Manager.WithRetries(pol)
}

// BuilderStats is a test/inspection view of builder progress.
type BuilderStats struct {
	Pos             txlog.EntryID
	LastEmit        txlog.EntryID
	ChainDepth      uint32
	DeltasSinceFull int
	Rebootstraps    int64
	DirtyKeys       int
}

// Stats returns the builder's current progress counters.
func (b *Builder) Stats() BuilderStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BuilderStats{
		Pos: b.pos, LastEmit: b.lastEmit,
		ChainDepth: b.chainDepth, DeltasSinceFull: b.deltasSinceFull,
		Rebootstraps: b.rebootstraps, DirtyKeys: len(b.dirty),
	}
}

// bootstrap (re)builds the private materialized copy from the durable
// chain — the same path a recovering replica takes — and points the
// tailer at the chain tip.
func (b *Builder) bootstrap() error {
	eng := engine.New(b.clk())
	pos := txlog.ZeroID
	depth := uint32(0)
	deltas := 0
	db, chain, _, ok, err := b.mgr().LatestUsableChain(b.ShardID)
	if err != nil {
		return fmt.Errorf("builder: bootstrap: %w", err)
	}
	if ok {
		eng.ResetDB(db)
		pos = chain.Tip.LogPos
		depth = chain.Tip.ChainDepth
		deltas = chain.Depth
	}
	b.eng = eng
	b.pos = pos
	b.lastEmit = pos
	b.chainDepth = depth
	b.deltasSinceFull = deltas
	b.dirty = make(map[string]struct{})
	b.needFull = !ok
	b.reader = b.Log.NewReader(pos)
	b.booted = true
	return nil
}

// rebootstrap drops the private copy and counts the restart; the caller's
// next step rebuilds from the chain.
func (b *Builder) rebootstrap() {
	b.booted = false
	b.rebootstraps++
}

// Tick performs one builder pass: check the trim horizon, drain every
// committed entry into the private copy (tracking changed keys), and emit
// a delta or compaction snapshot when the log-distance cadence is due.
// Transient log unavailability ends the drain early; ErrTrimmed or a
// quarantined segment under the tailer re-bootstraps from the chain, and
// a crash decision kills the in-memory copy (ErrBuilderCrashed).
func (b *Builder) Tick(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tickLocked(ctx)
}

func (b *Builder) tickLocked(ctx context.Context) error {
	// Lag gate: every pass consults builder.lag with the current horizon.
	switch d := b.Faults.Hit(faultpoint.SiteBuilderLag); d.Kind {
	case faultpoint.Crash:
		b.rebootstrap()
		return ErrBuilderCrashed
	case faultpoint.Error:
		// Injected loss of the materialized copy.
		b.rebootstrap()
	case faultpoint.Delay:
		b.clk().Sleep(d.Delay)
	}
	if !b.booted {
		if err := b.bootstrap(); err != nil {
			return err
		}
	}
	// A builder below the trim horizon has lost the suffix it was tailing
	// — the alarmable condition the trim-safety invariant exists to
	// prevent. Recover by re-bootstrapping from the chain (which the
	// trimmer guaranteed is at or above the horizon).
	if base := b.Log.TrimBase(); b.pos.Seq < base.Seq {
		b.Manager.Health().LagAlarms.Add(1)
		b.Flight.Recordf(trace.EvBuilderLag, b.pos.Seq, "%s lag exceeded trim horizon (base %d)", b.ShardID, base.Seq)
		if b.AlarmFn != nil {
			b.AlarmFn(fmt.Sprintf("builder: %s lag exceeded trim horizon (pos %d < base %d)",
				b.ShardID, b.pos.Seq, base.Seq))
		}
		if err := b.bootstrap(); err != nil {
			return err
		}
	}
	if err := b.drain(); err != nil {
		return err
	}
	health := b.Manager.Health()
	health.LagEntries.Store(int64(b.Log.CommittedTail().Seq - b.pos.Seq))
	if b.pos.Seq-b.lastEmit.Seq >= b.deltaInterval() {
		return b.emit(ctx)
	}
	return nil
}

// drain applies every currently committed entry to the private copy.
func (b *Builder) drain() error {
	for {
		e, ok, err := b.reader.TryNext()
		if err != nil {
			if errors.Is(err, txlog.ErrUnavailable) {
				return nil // transient: cursor unchanged, retry next tick
			}
			if errors.Is(err, txlog.ErrTrimmed) || errors.Is(err, txlog.ErrCorruptSegment) {
				b.rebootstrap()
				return b.bootstrap()
			}
			return err
		}
		if !ok {
			return nil // caught up
		}
		b.pos = e.ID
		if e.Type != txlog.EntryData {
			continue
		}
		keys, wholesale, err := b.eng.ApplyTracked(e.Payload)
		if err != nil {
			return fmt.Errorf("builder: apply at %v: %w", e.ID, err)
		}
		if wholesale {
			// FLUSHALL-style rewrites invalidate per-key tracking; the
			// next emit must be a full image.
			b.needFull = true
			b.dirty = make(map[string]struct{})
		}
		for _, k := range keys {
			b.dirty[k] = struct{}{}
		}
	}
}

// emit produces the due snapshot: a compaction (full dump of the private
// copy, resetting the chain) when forced or when the chain hit
// CompactEvery, otherwise an incremental delta of the dirty keys.
func (b *Builder) emit(ctx context.Context) error {
	_ = ctx
	full := b.needFull || b.deltasSinceFull >= b.compactEvery()
	pos := b.pos
	sum, err := b.Log.ChecksumAt(pos)
	if err != nil {
		return fmt.Errorf("builder: checksum at %v: %w", pos, err)
	}
	if full {
		return b.emitFull(pos, sum)
	}
	return b.emitDelta(pos, sum)
}

func (b *Builder) emitFull(pos txlog.EntryID, sum uint64) error {
	meta := Meta{
		ShardID: b.ShardID, EngineVersion: b.EngineVersion,
		LogPos: pos, LogChecksum: sum,
		Kind: KindFull, BasePos: txlog.ZeroID, ChainDepth: 0,
	}
	var buf bytes.Buffer
	if err := Write(&buf, b.eng.DB(), meta); err != nil {
		return fmt.Errorf("builder: compact serialize: %w", err)
	}
	data := buf.Bytes()
	// Crash-mid-compaction site: a crash here leaves the previous chain
	// intact in S3 — restores keep working off the old links.
	switch d := b.Faults.Hit(faultpoint.SiteCompact); d.Kind {
	case faultpoint.Crash:
		b.rebootstrap()
		return ErrBuilderCrashed
	case faultpoint.Error:
		return errors.New("builder: compact: injected fault")
	case faultpoint.Delay:
		b.clk().Sleep(d.Delay)
	case faultpoint.Corrupt:
		data = b.Faults.FlipByte(data)
	}
	if err := b.mgr().SaveRaw(b.ShardID, pos, data); err != nil {
		return fmt.Errorf("builder: compact upload: %w", err)
	}
	b.lastEmit = pos
	b.chainDepth = 0
	b.deltasSinceFull = 0
	b.dirty = make(map[string]struct{})
	b.needFull = false
	health := b.Manager.Health()
	health.Compactions.Add(1)
	health.ChainDepth.Store(0)
	return nil
}

func (b *Builder) emitDelta(pos txlog.EntryID, sum uint64) error {
	buildStart := obs.Now()
	keys := make([]string, 0, len(b.dirty))
	for k := range b.dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic bodies for a given dirty set
	meta := Meta{
		ShardID: b.ShardID, EngineVersion: b.EngineVersion,
		LogPos: pos, LogChecksum: sum,
		Kind: KindDelta, BasePos: b.lastEmit, ChainDepth: b.chainDepth + 1,
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, b.eng.DB(), keys, meta); err != nil {
		return fmt.Errorf("builder: delta serialize: %w", err)
	}
	data := buf.Bytes()
	if b.Obs != nil {
		b.Obs.Named("snapshot_delta_build").ObserveNanos(obs.Now() - buildStart)
	}
	// Crash-mid-delta sites. Corrupt at the build site is silent bit rot
	// inside a chain link; at the upload site it is a torn delta — both
	// must be caught by chain resolution's per-link checksum, falling
	// back to the longest intact prefix of the chain.
	switch d := b.Faults.Hit(faultpoint.SiteDeltaBuild); d.Kind {
	case faultpoint.Crash:
		b.rebootstrap()
		return ErrBuilderCrashed
	case faultpoint.Error:
		return errors.New("builder: delta build: injected fault")
	case faultpoint.Delay:
		b.clk().Sleep(d.Delay)
	case faultpoint.Corrupt:
		data = b.Faults.FlipByte(data)
	}
	uploadStart := obs.Now()
	switch d := b.Faults.Hit(faultpoint.SiteDeltaUpload); d.Kind {
	case faultpoint.Crash:
		b.rebootstrap()
		return ErrBuilderCrashed
	case faultpoint.Error:
		return errors.New("builder: delta upload: injected fault")
	case faultpoint.Delay:
		b.clk().Sleep(d.Delay)
	case faultpoint.Corrupt:
		data = b.Faults.TornWrite(data)
	}
	if err := b.mgr().SaveRaw(b.ShardID, pos, data); err != nil {
		return fmt.Errorf("builder: delta upload: %w", err)
	}
	if b.Obs != nil {
		b.Obs.Named("snapshot_delta_upload").ObserveNanos(obs.Now() - uploadStart)
	}
	b.lastEmit = pos
	b.chainDepth++
	b.deltasSinceFull++
	b.dirty = make(map[string]struct{})
	health := b.Manager.Health()
	health.DeltasEmitted.Add(1)
	health.ChainDepth.Store(int64(b.chainDepth))
	return nil
}

// Run ticks until ctx is cancelled. Emit failures (including injected
// crashes) are absorbed: the dirty set and cursor survive — or
// re-bootstrap from the chain — and the next tick retries.
func (b *Builder) Run(ctx context.Context) {
	clk := b.clk()
	interval := b.Interval
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
			_ = b.Tick(ctx)
		}
	}
}
