package snapshot

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"memorydb/internal/clock"
	"memorydb/internal/engine"
	"memorydb/internal/s3"
	"memorydb/internal/txlog"
)

// shardHarness is a minimal primary stand-in for builder tests: an engine
// whose effects are appended to a real segmented log, plus a model map of
// the expected final string keyspace.
type shardHarness struct {
	t     *testing.T
	log   *txlog.Log
	eng   *engine.Engine
	after txlog.EntryID
	want  map[string]string
}

func newShardHarness(t *testing.T, segEntries int) *shardHarness {
	t.Helper()
	svc := txlog.NewService(txlog.Config{SegmentEntries: segEntries})
	log, err := svc.CreateLog("s1")
	if err != nil {
		t.Fatal(err)
	}
	return &shardHarness{
		t: t, log: log, eng: engine.New(clock.NewReal()),
		want: make(map[string]string),
	}
}

// do executes one command on the primary engine and appends its effects.
func (h *shardHarness) do(args ...string) {
	h.t.Helper()
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	res := h.eng.Exec(argv)
	if res.Reply.IsError() {
		h.t.Fatalf("%v: %s", args, res.Reply.Text())
	}
	id, err := h.log.Append(context.Background(), h.after,
		txlog.Entry{Type: txlog.EntryData, Payload: engine.EncodeRecord(res.Effects)})
	if err != nil {
		h.t.Fatal(err)
	}
	h.after = id
	switch args[0] {
	case "SET":
		h.want[args[1]] = args[2]
	case "DEL":
		delete(h.want, args[1])
	case "FLUSHALL":
		h.want = make(map[string]string)
	}
}

// checkRestore materializes the newest usable chain, replays the log
// suffix above its tip, and requires the result to equal the model.
func (h *shardHarness) checkRestore(mgr *Manager) Chain {
	h.t.Helper()
	db, chain, _, ok, err := mgr.LatestUsableChain("s1")
	if err != nil {
		h.t.Fatal(err)
	}
	replayFrom := txlog.ZeroID
	eng := engine.New(clock.NewReal())
	if ok {
		eng.ResetDB(db)
		replayFrom = chain.Tip.LogPos
	}
	r := h.log.NewReader(replayFrom)
	for {
		e, more, err := r.TryNext()
		if err != nil {
			h.t.Fatalf("replay above chain tip %v: %v", replayFrom, err)
		}
		if !more {
			break
		}
		if e.Type != txlog.EntryData {
			continue
		}
		if err := eng.Apply(e.Payload); err != nil {
			h.t.Fatalf("replay apply at %v: %v", e.ID, err)
		}
	}
	if got, want := eng.DB().Len(), len(h.want); got != want {
		h.t.Fatalf("restored keyspace has %d keys, want %d", got, want)
	}
	for k, want := range h.want {
		res := eng.Exec([][]byte{[]byte("GET"), []byte(k)})
		if res.Reply.Text() != want {
			h.t.Fatalf("restored GET %s = %q, want %q", k, res.Reply.Text(), want)
		}
	}
	return chain
}

// TestBuilderDeltaAndCompactionCadence drives the forkless builder through
// its full production cycle: a bootstrap full snapshot, DeltaInterval-paced
// incremental deltas, and a chain-resetting compaction after CompactEvery
// deltas — checking the health counters and chain meta at each step.
func TestBuilderDeltaAndCompactionCadence(t *testing.T) {
	h := newShardHarness(t, 8)
	mgr := NewManager(s3.New(), "snaps")
	b := &Builder{Manager: mgr, Log: h.log, ShardID: "s1", EngineVersion: 1,
		DeltaInterval: 4, CompactEvery: 3}
	ctx := context.Background()

	// First cadence worth of writes: bootstrap found no chain, so the
	// first emit must be a full snapshot.
	for i := 0; i < 4; i++ {
		h.do("SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Health().Compactions.Load(); got != 1 {
		t.Fatalf("first emit produced %d compactions, want 1 (no chain to extend)", got)
	}
	chain := h.checkRestore(mgr)
	if chain.Tip.Kind != KindFull || chain.Depth != 0 {
		t.Fatalf("first emit = %v depth %d, want full depth 0", chain.Tip.Kind, chain.Depth)
	}

	// Three more cadences: each must extend the chain by one delta.
	for d := 1; d <= 3; d++ {
		for i := 0; i < 4; i++ {
			h.do("SET", fmt.Sprintf("k%d-%d", d, i), "x")
		}
		if err := b.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		chain = h.checkRestore(mgr)
		if chain.Tip.Kind != KindDelta || chain.Depth != d {
			t.Fatalf("emit %d: tip %v depth %d, want delta depth %d", d, chain.Tip.Kind, chain.Depth, d)
		}
		if chain.Tip.BasePos.Seq == 0 {
			t.Fatalf("delta %d has no parent link", d)
		}
	}
	if got := mgr.Health().DeltasEmitted.Load(); got != 3 {
		t.Fatalf("DeltasEmitted = %d, want 3", got)
	}
	if got := mgr.Health().ChainDepth.Load(); got != 3 {
		t.Fatalf("ChainDepth gauge = %d, want 3", got)
	}

	// The fourth cadence hits CompactEvery: the chain resets to a fresh
	// full snapshot at depth 0.
	for i := 0; i < 4; i++ {
		h.do("SET", fmt.Sprintf("c%d", i), "y")
	}
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	chain = h.checkRestore(mgr)
	if chain.Tip.Kind != KindFull || chain.Depth != 0 {
		t.Fatalf("post-compaction chain = %v depth %d, want full depth 0", chain.Tip.Kind, chain.Depth)
	}
	if got := mgr.Health().Compactions.Load(); got != 2 {
		t.Fatalf("Compactions = %d, want 2", got)
	}
	if got := mgr.Health().ChainDepth.Load(); got != 0 {
		t.Fatalf("ChainDepth gauge = %d after compaction, want 0", got)
	}
}

// TestBuilderDeltaCarriesTombstones: a key deleted between emits must be
// recorded in the next delta as a tombstone, so a chain restore does not
// resurrect it from the base full snapshot.
func TestBuilderDeltaCarriesTombstones(t *testing.T) {
	h := newShardHarness(t, 8)
	mgr := NewManager(s3.New(), "snaps")
	b := &Builder{Manager: mgr, Log: h.log, ShardID: "s1", EngineVersion: 1,
		DeltaInterval: 3, CompactEvery: 10}
	ctx := context.Background()

	h.do("SET", "keep", "1")
	h.do("SET", "doomed", "2")
	h.do("SET", "pad0", "x")
	if err := b.Tick(ctx); err != nil { // full: contains "doomed"
		t.Fatal(err)
	}
	h.do("DEL", "doomed")
	h.do("SET", "pad1", "x")
	h.do("SET", "pad2", "x")
	if err := b.Tick(ctx); err != nil { // delta: tombstone for "doomed"
		t.Fatal(err)
	}
	chain := h.checkRestore(mgr)
	if chain.Tip.Kind != KindDelta {
		t.Fatalf("second emit kind = %v, want delta", chain.Tip.Kind)
	}
	db, _, _, ok, err := mgr.LatestUsableChain("s1")
	if err != nil || !ok {
		t.Fatalf("chain restore: ok=%v err=%v", ok, err)
	}
	if _, present := db.Peek("doomed"); present {
		t.Fatal("deleted key resurrected by chain restore — delta lacks its tombstone")
	}
	if _, present := db.Peek("keep"); !present {
		t.Fatal("kept key missing after chain restore")
	}
}

// TestBuilderFlushAllForcesFull: wholesale rewrites invalidate per-key
// dirty tracking, so the next emit after FLUSHALL must be a full snapshot
// even though the chain is nowhere near CompactEvery.
func TestBuilderFlushAllForcesFull(t *testing.T) {
	h := newShardHarness(t, 8)
	mgr := NewManager(s3.New(), "snaps")
	b := &Builder{Manager: mgr, Log: h.log, ShardID: "s1", EngineVersion: 1,
		DeltaInterval: 3, CompactEvery: 100}
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		h.do("SET", fmt.Sprintf("a%d", i), "1")
	}
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	h.do("SET", "b0", "2")
	h.do("FLUSHALL")
	h.do("SET", "after-flush", "3")
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	chain := h.checkRestore(mgr)
	if chain.Tip.Kind != KindFull {
		t.Fatalf("emit after FLUSHALL = %v, want full", chain.Tip.Kind)
	}
	db, _, _, _, err := mgr.LatestUsableChain("s1")
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("post-FLUSHALL snapshot has %d keys, want 1", db.Len())
	}
}

// TestChainFallbackAnyDamagedSuffix is the chain-resolution property test:
// for every length j of damaged newest links and every damage mode (bit
// rot, torn truncation, missing file), resolution must quarantine or skip
// the damaged suffix and restore from the longest intact prefix — and the
// chain restore plus log replay must still reproduce the exact keyspace.
// Damaging every link (j = depth+1 reaches the base full snapshot) must
// degrade to pure log replay (ok=false), never a hard failure.
func TestChainFallbackAnyDamagedSuffix(t *testing.T) {
	const depth = 4
	for _, mode := range []string{"corrupt", "torn", "missing"} {
		for j := 1; j <= depth+1; j++ {
			t.Run(fmt.Sprintf("%s-%d", mode, j), func(t *testing.T) {
				h := newShardHarness(t, 8)
				mgr := NewManager(s3.New(), "snaps")
				b := &Builder{Manager: mgr, Log: h.log, ShardID: "s1", EngineVersion: 1,
					DeltaInterval: 3, CompactEvery: 100}
				ctx := context.Background()
				// Build full + depth deltas, mixing SETs, overwrites, DELs.
				for d := 0; d <= depth; d++ {
					h.do("SET", fmt.Sprintf("link%d", d), fmt.Sprintf("v%d", d))
					h.do("SET", "rolling", fmt.Sprintf("r%d", d))
					if d%2 == 1 {
						h.do("DEL", fmt.Sprintf("link%d", d-1))
					} else {
						h.do("SET", "pad", fmt.Sprintf("p%d", d))
					}
					if err := b.Tick(ctx); err != nil {
						t.Fatal(err)
					}
				}
				// Damage the newest j links.
				keys, err := mgr.store.List(mgr.prefix + "/s1/")
				if err != nil {
					t.Fatal(err)
				}
				if len(keys) != depth+1 {
					t.Fatalf("chain has %d links, want %d", len(keys), depth+1)
				}
				for i := 0; i < j; i++ {
					k := keys[len(keys)-1-i]
					switch mode {
					case "corrupt":
						data, err := mgr.store.Get(k)
						if err != nil {
							t.Fatal(err)
						}
						data[len(data)/3] ^= 0xff
						if err := mgr.store.Put(k, data); err != nil {
							t.Fatal(err)
						}
					case "torn":
						data, err := mgr.store.Get(k)
						if err != nil {
							t.Fatal(err)
						}
						if err := mgr.store.Put(k, data[:len(data)*2/3]); err != nil {
							t.Fatal(err)
						}
					case "missing":
						if err := mgr.store.Delete(k); err != nil {
							t.Fatal(err)
						}
					}
				}
				db, chain, _, ok, err := mgr.LatestUsableChain("s1")
				if err != nil {
					t.Fatalf("resolution failed hard: %v", err)
				}
				if j <= depth {
					if !ok {
						t.Fatalf("no usable chain with %d intact links remaining", depth+1-j)
					}
					if wantDepth := depth - j; chain.Depth != wantDepth {
						t.Fatalf("restored chain depth %d, want %d", chain.Depth, wantDepth)
					}
					_ = db
				} else if ok {
					t.Fatal("every link damaged but resolution still claimed a chain")
				}
				// The survivor prefix plus log replay reproduces the keyspace.
				h.checkRestore(mgr)
				if mode != "missing" && mgr.TornDetected() == 0 {
					t.Fatal("damaged links left TornDetected at 0")
				}
			})
		}
	}
}

// TestBuilderTrimRace runs the builder, the trim coordinator, and a paced
// writer concurrently (meaningful under -race): because the trimmer gates
// on the chain *base*, the builder's tailer — which is always at or above
// the chain tip — must never observe a trimmed gap, re-bootstrap, or raise
// a lag alarm, no matter how the ticks interleave.
func TestBuilderTrimRace(t *testing.T) {
	h := newShardHarness(t, 4)
	mgr := NewManager(s3.New(), "snaps")
	b := &Builder{Manager: mgr, Log: h.log, ShardID: "s1", EngineVersion: 1,
		DeltaInterval: 4, CompactEvery: 3}
	tr := &Trimmer{Manager: mgr}
	tr.AddShard(Shard{ShardID: "s1", Log: h.log})
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // builder ticks as fast as it can
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.Tick(ctx); err != nil {
				t.Errorf("builder tick: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // trimmer races the builder
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tr.Tick()
			time.Sleep(300 * time.Microsecond)
		}
	}()
	for i := 0; i < 400; i++ {
		h.do("SET", fmt.Sprintf("race-%d", i%40), fmt.Sprintf("v%d", i))
		time.Sleep(50 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	if trimmed, _ := tr.Stats(); trimmed == 0 {
		t.Fatal("race never trimmed a segment — segment threshold too large to exercise the invariant")
	}
	if mgr.Health().DeltasEmitted.Load() == 0 {
		t.Fatal("race never emitted a delta")
	}
	st := b.Stats()
	if st.Rebootstraps != 0 {
		t.Fatalf("builder re-bootstrapped %d times — trim passed its tailer", st.Rebootstraps)
	}
	if got := mgr.Health().LagAlarms.Load(); got != 0 {
		t.Fatalf("builder raised %d lag alarms during the race", got)
	}
	// Final settle: one more tick drains the tail, and the chain restores
	// the exact keyspace.
	if err := b.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	h.checkRestore(mgr)
}
